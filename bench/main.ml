(* Benchmark harness: regenerates every table (T1-T8) and figure series
   (F1-F5) defined in DESIGN.md section 5, plus the correctness experiment
   suite (E1-E6) recorded in EXPERIMENTS.md.

   Run all:          dune exec bench/main.exe
   Run a subset:     dune exec bench/main.exe -- T1 T3 F2 E
   Machine-readable: dune exec bench/main.exe -- --json [tags]
                     additionally writes BENCH_explore.json (schema
                     Workload.Bench_json: every ns/op estimate, the T5
                     persist-event counts and the T6/T7/T8 explore rows),
                     so the perf trajectory is tracked across PRs.

   The paper (PODC'18) has no empirical evaluation; these benchmarks are
   the evaluation a systems reader would expect, with the expected shapes
   documented in DESIGN.md. *)

let selected = ref []

(* {1 machine-readable output (--json)} *)

let json_requested = ref false
let current_section = ref ""
let json_ns : Workload.Bench_json.ns_row list ref = ref []
let json_persist : Workload.Bench_json.persist_row list ref = ref []
let json_explore : Workload.Bench_json.explore_row list ref = ref []

(* throughput sections record their rows as ns/op too: one latency axis
   for the whole document *)
let record_ns name ns =
  json_ns :=
    { Workload.Bench_json.ns_section = !current_section; ns_name = name; ns_ns = ns }
    :: !json_ns

let record_rate name ops_per_sec =
  record_ns name (if ops_per_sec > 0. then 1e9 /. ops_per_sec else nan)

let record_explore ~sect ~scenario ~nprocs ~ops ~jobs ~dedup ~trail ?(sym = false) ~mode
    (stats : Machine.Explore.stats) seconds =
  json_explore :=
    {
      Workload.Bench_json.er_section = sect;
      er_scenario = scenario;
      er_nprocs = nprocs;
      er_ops = ops;
      er_jobs = jobs;
      er_dedup = dedup;
      er_trail = trail;
      er_sym = sym;
      er_mode = mode;
      er_terminals = stats.Machine.Explore.terminals;
      er_nodes = stats.Machine.Explore.nodes;
      er_dup = stats.Machine.Explore.dup;
      er_seconds = seconds;
    }
    :: !json_explore

let write_json path =
  Workload.Bench_json.write ~path
    {
      Workload.Bench_json.domains_available = Domain.recommended_domain_count ();
      ns_per_op = List.rev !json_ns;
      persist_events = List.rev !json_persist;
      explore = List.rev !json_explore;
    };
  Printf.printf "\nwrote %s\n%!" path

let want tag =
  !selected = []
  || List.exists
       (fun s -> String.length s > 0 && String.length s <= String.length tag
                 && String.sub tag 0 (String.length s) = s)
       !selected

let section tag title =
  current_section := tag;
  Printf.printf "\n== %s: %s ==\n%!" tag title

(* {1 Bechamel helper: estimated ns/op for a thunk} *)

let estimate_ns name fn =
  let open Bechamel in
  let test = Test.make ~name (Staged.stage fn) in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.4) ~kde:None () in
  let tbl = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock tbl
  in
  let ns =
    match Hashtbl.fold (fun _ v acc -> v :: acc) results [] with
    | [ ols ] -> (match Analyze.OLS.estimates ols with Some (t :: _) -> t | _ -> nan)
    | _ -> nan
  in
  record_ns name ns;
  ns

let row3 a b c = Printf.printf "  %-34s %14s %14s\n%!" a b c
let ns v = Printf.sprintf "%.1f ns" v
let ratio a b = Printf.sprintf "%.2fx" (a /. b)

(* {1 T1: recoverable vs plain register latency} *)

let t1 () =
  section "T1" "latency of recoverable vs plain register operations (1 domain)";
  let nprocs = 4 in
  let plain = Runtime.Rrw.Plain.create (0, 0) in
  let reco = Runtime.Rrw.create ~nprocs (0, 0) in
  let seq = ref 0 in
  let plain_write =
    estimate_ns "plain write" (fun () ->
        incr seq;
        Runtime.Rrw.Plain.write plain (0, !seq))
  in
  let reco_write =
    estimate_ns "recoverable write" (fun () ->
        incr seq;
        Runtime.Rrw.write reco ~pid:0 (0, !seq))
  in
  let plain_read = estimate_ns "plain read" (fun () -> Runtime.Rrw.Plain.read plain) in
  let reco_read = estimate_ns "recoverable read" (fun () -> Runtime.Rrw.read reco) in
  row3 "operation" "plain" "recoverable";
  row3 "WRITE" (ns plain_write) (ns reco_write);
  row3 "READ" (ns plain_read) (ns reco_read);
  row3 "WRITE overhead" "" (ratio reco_write plain_write);
  row3 "READ overhead" "" (ratio reco_read plain_read)

(* {1 T2: recoverable vs plain CAS / TAS latency} *)

let t2 () =
  section "T2" "latency of recoverable vs plain CAS and TAS (1 domain)";
  let nprocs = 4 in
  (* steady-state successful CAS: always CAS from the current value *)
  let plain_c = Runtime.Rcas.Plain.create 0 in
  let pc = ref 0 in
  let plain_cas =
    estimate_ns "plain cas" (fun () ->
        let old = !pc in
        let nw = old + 1 in
        if Runtime.Rcas.Plain.cas plain_c ~old ~new_:nw then pc := nw)
  in
  (* the recoverable rows measure the unboxed Int specializations — the
     shipped native hot paths; the boxed polymorphic originals keep
     "(poly)" rows so the specialization win stays visible *)
  let reco_c = Runtime.Rcas.Int.create ~nprocs 0 in
  let rc = ref 0 in
  let reco_cas =
    estimate_ns "recoverable cas" (fun () ->
        let old = !rc in
        let nw = old + 1 in
        if Runtime.Rcas.Int.cas reco_c ~pid:0 ~old ~new_:nw then rc := nw)
  in
  (* failed-CAS path (read + compare only) *)
  let reco_cas_fail =
    estimate_ns "recoverable cas (failing)" (fun () ->
        ignore (Runtime.Rcas.Int.cas reco_c ~pid:1 ~old:(-1) ~new_:(-2)))
  in
  let poly_c = Runtime.Rcas.create ~nprocs 0 in
  let pc2 = ref 0 in
  let poly_cas =
    estimate_ns "recoverable cas (poly)" (fun () ->
        let old = !pc2 in
        let nw = old + 1 in
        if Runtime.Rcas.cas poly_c ~pid:0 ~old ~new_:nw then pc2 := nw)
  in
  (* TAS: the lose path is repeatable; the win path needs a fresh object *)
  let lost = Runtime.Rtas.create ~nprocs in
  ignore (Runtime.Rtas.test_and_set lost ~pid:0);
  let reco_tas_lose =
    estimate_ns "recoverable t&s (lose path)" (fun () ->
        ignore (Runtime.Rtas.test_and_set lost ~pid:1))
  in
  let plain_alloc =
    estimate_ns "alloc plain tas" (fun () -> Runtime.Rtas.Plain.create ())
  in
  let plain_tas_win =
    estimate_ns "plain t&s (fresh)" (fun () ->
        Runtime.Rtas.Plain.test_and_set (Runtime.Rtas.Plain.create ()))
  in
  let reco_alloc = estimate_ns "alloc reco tas" (fun () -> Runtime.Rtas.create ~nprocs) in
  let reco_tas_win =
    estimate_ns "recoverable t&s (fresh, win)" (fun () ->
        Runtime.Rtas.test_and_set (Runtime.Rtas.create ~nprocs) ~pid:0)
  in
  (* native retry-loop objects vs their conventional counterparts *)
  let plain_faa_c = Atomic.make 0 in
  let plain_faa =
    estimate_ns "atomic faa" (fun () -> ignore (Atomic.fetch_and_add plain_faa_c 1))
  in
  let rfaa = Runtime.Rfaa.Int.create ~nprocs () in
  let reco_faa =
    estimate_ns "recoverable faa" (fun () -> ignore (Runtime.Rfaa.Int.faa rfaa ~pid:0 1))
  in
  let rfaa_poly = Runtime.Rfaa.create ~nprocs () in
  let poly_faa =
    estimate_ns "recoverable faa (poly)" (fun () ->
        ignore (Runtime.Rfaa.faa rfaa_poly ~pid:0 1))
  in
  let plain_stack = Atomic.make [] in
  let plain_push_pop =
    estimate_ns "plain list stack" (fun () ->
        let l = Atomic.get plain_stack in
        Atomic.set plain_stack (1 :: l);
        match Atomic.get plain_stack with
        | _ :: tl -> Atomic.set plain_stack tl
        | [] -> ())
  in
  let rstack = Runtime.Rstack.Int.create ~nprocs () in
  let reco_push_pop =
    estimate_ns "recoverable stack" (fun () ->
        ignore (Runtime.Rstack.Int.push rstack ~pid:0 1);
        ignore (Runtime.Rstack.Int.pop rstack ~pid:0))
  in
  let rstack_poly = Runtime.Rstack.create ~nprocs () in
  let poly_push_pop =
    estimate_ns "recoverable stack (poly)" (fun () ->
        ignore (Runtime.Rstack.push rstack_poly ~pid:0 1);
        ignore (Runtime.Rstack.pop rstack_poly ~pid:0))
  in
  row3 "operation" "plain" "recoverable";
  row3 "CAS (success)" (ns plain_cas) (ns reco_cas);
  row3 "CAS (success, poly)" "-" (ns poly_cas);
  row3 "CAS (failure)" "-" (ns reco_cas_fail);
  row3 "CAS overhead" "" (ratio reco_cas plain_cas);
  row3 "T&S win (alloc-corrected)"
    (ns (plain_tas_win -. plain_alloc))
    (ns (reco_tas_win -. reco_alloc));
  row3 "T&S lose path" "-" (ns reco_tas_lose);
  row3 "FAA (native, via strict CAS)" (ns plain_faa) (ns reco_faa);
  row3 "FAA (poly)" "-" (ns poly_faa);
  row3 "stack push+pop (native)" (ns plain_push_pop) (ns reco_push_pop);
  row3 "stack push+pop (poly)" "-" (ns poly_push_pop)

(* {1 T3: counter throughput scaling on real domains} *)

let t3 () =
  section "T3" "recoverable counter throughput vs domains (inc-only and 10% read)";
  let max_d = Runtime.Par.max_domains ~cap:8 () in
  Printf.printf "  %-8s %16s %16s %16s\n%!" "domains" "recoverable" "plain-array" "faa-atomic";
  let iters = 100_000 in
  let rec sweep d =
    if d <= max_d then begin
      let reco = Runtime.Rcounter.create ~nprocs:d in
      let r1 =
        Runtime.Par.run ~domains:d ~iters (fun ~pid ~i ->
            ignore i;
            Runtime.Rcounter.inc reco ~pid)
      in
      let plain = Runtime.Rcounter.Plain.create ~nprocs:d in
      let r2 =
        Runtime.Par.run ~domains:d ~iters (fun ~pid ~i ->
            ignore i;
            Runtime.Rcounter.Plain.inc plain ~pid)
      in
      let faa = Runtime.Rcounter.Faa.create () in
      let r3 =
        Runtime.Par.run ~domains:d ~iters (fun ~pid ~i ->
            ignore pid;
            ignore i;
            Runtime.Rcounter.Faa.inc faa)
      in
      Printf.printf "  %-8d %13.0f/s %13.0f/s %13.0f/s\n%!" d r1.Runtime.Par.ops_per_sec
        r2.Runtime.Par.ops_per_sec r3.Runtime.Par.ops_per_sec;
      record_rate (Printf.sprintf "counter inc recoverable d=%d" d) r1.Runtime.Par.ops_per_sec;
      record_rate (Printf.sprintf "counter inc plain-array d=%d" d) r2.Runtime.Par.ops_per_sec;
      record_rate (Printf.sprintf "counter inc faa-atomic d=%d" d) r3.Runtime.Par.ops_per_sec;
      sweep (d * 2)
    end
  in
  sweep 1;
  Printf.printf "  (90%% inc / 10%% read, recoverable):\n%!";
  let rec sweep2 d =
    if d <= max_d then begin
      let reco = Runtime.Rcounter.create ~nprocs:d in
      let r =
        Runtime.Par.run ~domains:d ~iters (fun ~pid ~i ->
            if i mod 10 = 9 then ignore (Runtime.Rcounter.read reco ~pid)
            else Runtime.Rcounter.inc reco ~pid)
      in
      Printf.printf "  %-8d %13.0f/s\n%!" d r.Runtime.Par.ops_per_sec;
      record_rate (Printf.sprintf "counter 90/10 recoverable d=%d" d) r.Runtime.Par.ops_per_sec;
      sweep2 (d * 2)
    end
  in
  sweep2 1

(* {1 T4: simulator throughput and NRL-check cost} *)

let t4 () =
  section "T4" "simulator step throughput and NRL-check cost";
  let scen = Workload.Scenarios.register ~nprocs:3 ~ops:20 () in
  let t0 = Obs.Clock.now_s () in
  let total_steps = ref 0 in
  let trials = 50 in
  for seed = 1 to trials do
    let sim, _ = Workload.Trial.run ~seed ~crash_prob:0.02 scen in
    total_steps := !total_steps + Machine.Sim.total_steps sim
  done;
  let dt = Obs.Clock.now_s () -. t0 in
  Printf.printf "  machine steps/s (incl. NRL check per trial): %.0f (%d steps, %.2fs)\n%!"
    (float_of_int !total_steps /. dt)
    !total_steps dt;
  record_rate "machine step incl. NRL check" (float_of_int !total_steps /. dt);
  let t0 = Obs.Clock.now_s () in
  let steps = ref 0 in
  for seed = 1 to trials do
    let sim = Machine.Sim.create ~seed ~nprocs:3 () in
    scen.Workload.Trial.build sim;
    ignore (Machine.Schedule.run sim (Machine.Schedule.round_robin ()));
    steps := !steps + Machine.Sim.total_steps sim
  done;
  let dt = Obs.Clock.now_s () -. t0 in
  Printf.printf "  machine steps/s (stepping only):             %.0f\n%!"
    (float_of_int !steps /. dt);
  record_rate "machine step only" (float_of_int !steps /. dt)

(* {1 T5: shared-access (persist-event) counts per operation} *)

(* In the paper's model every shared access is immediately persistent, so
   the number of shared accesses per operation is the model's analogue of
   flush complexity.  Measured by running one operation solo on a fresh
   object and reading the memory statistics. *)
let t5 () =
  section "T5" "shared accesses per operation (persist events), vs process count N";
  let measure ~nprocs build =
    let sim = Machine.Sim.create ~nprocs () in
    let script = build sim in
    Machine.Sim.set_script sim 0 script;
    Nvm.Memory.reset_stats (Machine.Sim.mem sim);
    (match Machine.Schedule.run sim (Machine.Schedule.round_robin ()) with
    | Machine.Schedule.Completed -> ()
    | _ -> failwith "t5: did not complete");
    let st = Nvm.Memory.stats (Machine.Sim.mem sim) in
    st.Nvm.Memory.reads + st.Nvm.Memory.writes + st.Nvm.Memory.rmws
  in
  let rows =
    [
      ( "register WRITE",
        fun sim ->
          let i = Objects.Rw_obj.make sim ~name:"R" in
          [ (i, "WRITE", Machine.Sim.Args [| Workload.Opgen.tagged 0 1 |]) ] );
      ( "register READ",
        fun sim ->
          let i = Objects.Rw_obj.make sim ~name:"R" in
          [ (i, "READ", Machine.Sim.Args [||]) ] );
      ( "cas CAS (success)",
        fun sim ->
          let i = Objects.Cas_obj.make sim ~name:"C" in
          [ Workload.Opgen.cas_fixed ~pid:0 i ~old:Nvm.Value.Null ~seq:1 ] );
      ( "tas T&S (win)",
        fun sim ->
          let i = Objects.Tas_obj.make sim ~name:"T" in
          [ (i, "T&S", Machine.Sim.Args [||]) ] );
      ( "counter INC",
        fun sim ->
          let i = Objects.Counter_obj.make sim ~name:"K" in
          [ (i, "INC", Machine.Sim.Args [||]) ] );
      ( "counter READ",
        fun sim ->
          let i = Objects.Counter_obj.make sim ~name:"K" in
          [ (i, "READ", Machine.Sim.Args [||]) ] );
      ( "elect ELECT (slot 0)",
        fun sim ->
          let i = Objects.Elect_obj.make sim ~name:"E" in
          [ (i, "ELECT", Machine.Sim.Args [||]) ] );
      ( "faa FAA",
        fun sim ->
          let i = Objects.Faa_obj.make sim ~name:"F" in
          [ (i, "FAA", Machine.Sim.Args [| Nvm.Value.Int 1 |]) ] );
      ( "stack PUSH",
        fun sim ->
          let i = Objects.Stack_obj.make sim ~name:"S" in
          [ (i, "PUSH", Machine.Sim.Args [| Nvm.Value.Int 1 |]) ] );
      ( "stack PUSH+POP",
        fun sim ->
          let i = Objects.Stack_obj.make sim ~name:"S" in
          [ (i, "PUSH", Machine.Sim.Args [| Nvm.Value.Int 1 |]); (i, "POP", Machine.Sim.Args [||]) ] );
      ( "queue ENQ+DEQ",
        fun sim ->
          let i = Objects.Queue_obj.make sim ~name:"Q" in
          [ (i, "ENQ", Machine.Sim.Args [| Nvm.Value.Int 1 |]); (i, "DEQ", Machine.Sim.Args [||]) ] );
      ( "max WRITE_MAX (install)",
        fun sim ->
          let i = Objects.Max_register_obj.make sim ~name:"M" in
          [ (i, "WRITE_MAX", Machine.Sim.Args [| Nvm.Value.Int 5 |]) ] );
      ( "histogram RECORD",
        fun sim ->
          let i = Objects.Histogram_obj.make ~k:4 sim ~name:"H" in
          [ (i, "RECORD", Machine.Sim.Args [| Nvm.Value.Int 0 |]) ] );
      ( "histogram TOTAL (k=4)",
        fun sim ->
          let i = Objects.Histogram_obj.make ~k:4 sim ~name:"H" in
          [ (i, "TOTAL", Machine.Sim.Args [||]) ] );
    ]
  in
  Printf.printf "  %-26s %8s %8s %8s
%!" "operation" "N=2" "N=4" "N=8";
  List.iter
    (fun (name, build) ->
      let a2 = measure ~nprocs:2 build in
      let a4 = measure ~nprocs:4 build in
      let a8 = measure ~nprocs:8 build in
      List.iter
        (fun (n, a) ->
          json_persist :=
            { Workload.Bench_json.pe_op = name; pe_nprocs = n; pe_accesses = a }
            :: !json_persist)
        [ (2, a2); (4, a4); (8, a8) ];
      Printf.printf "  %-26s %8d %8d %8d
%!" name a2 a4 a8)
    rows

(* {1 T6: work-stealing jobs scaling (trail on/off, incremental checking)} *)

(* The work-stealing engine on a fixed mid-sized instance: wall-clock and
   nodes/sec at 1/2/4 domains, for both branching disciplines, with the
   shared sharded visited store and incremental checking on throughout —
   the configuration the speedup gate cares about.  Statistics must be
   identical down every column: the partition of the tree into stolen
   subtree tasks may vary, the counted tree may not.  Speedup needs real
   cores (see [domains_available] in the JSON); on a narrower host the
   higher rows measure oversubscription, which after this rearchitecture
   should cost percents, not multiples. *)
let t6 () =
  section "T6" "explore jobs scaling, work-stealing (register, 3 procs, 1 op, 1 crash)";
  (* the bechamel sections leave a large fragmented major heap that would
     throttle the allocation-heavy search: measure from a compacted heap *)
  Gc.compact ();
  let nprocs = 3 and ops = 1 in
  let scen = Workload.Scenarios.register ~nprocs ~ops () in
  let build () =
    let sim = Machine.Sim.create ~nprocs () in
    scen.Workload.Trial.build sim;
    sim
  in
  let cfg =
    { Machine.Explore.default_config with max_steps = 100; max_crashes = 1; crash_procs = [ 0 ] }
  in
  Printf.printf "  domains available: %d\n%!" (Domain.recommended_domain_count ());
  Printf.printf "  %-8s %-8s %12s %10s %10s %12s %10s\n%!" "jobs" "trail" "nodes" "dup"
    "seconds" "nodes/s" "speedup";
  List.iter
    (fun trail ->
      let base = ref nan in
      List.iter
        (fun jobs ->
          let t0 = Obs.Clock.now_s () in
          let viol, stats =
            Machine.Explore.find_violation ~cfg ~jobs ~dedup:true ~trail
              ~check_mode:(`Incremental (Workload.Check.nrl_incremental ()))
              ~check:Workload.Check.nrl_violation (build ())
          in
          let dt = Obs.Clock.now_s () -. t0 in
          assert (viol = None);
          if jobs = 1 then base := dt;
          Printf.printf "  %-8d %-8b %12d %10d %10.2f %12.0f %9.2fx\n%!" jobs trail
            stats.Machine.Explore.nodes stats.Machine.Explore.dup dt
            (float_of_int stats.Machine.Explore.nodes /. dt)
            (!base /. dt);
          record_explore ~sect:"T6" ~scenario:"register" ~nprocs ~ops ~jobs ~dedup:true
            ~trail ~mode:"check-incremental" stats dt)
        [ 1; 2; 4 ])
    [ false; true ]

(* {1 T8: process-symmetry quotienting on an exhaustive symmetric instance} *)

(* A scenario the detector accepts: every process runs the same erased
   script (WRITE of its own tagged value, then READ) on one recoverable
   register, whose recovery is pid-oblivious — so the full symmetric
   group applies even with crashes enabled (crash set = all processes).
   The quotient explores one representative per orbit; the uncanonical
   run is the ground truth the verdict is pinned against. *)
let t8 () =
  section "T8" "process-symmetry quotienting (rw, 4 procs, 2 ops each, 1 crash)";
  Gc.compact ();
  let nprocs = 4 and ops = 2 in
  let build () =
    let sim = Machine.Sim.create ~nprocs () in
    let inst = Objects.Rw_obj.make sim ~name:"R" in
    for p = 0 to nprocs - 1 do
      Machine.Sim.set_script sim p
        [
          (inst, "WRITE", Machine.Sim.Args [| Workload.Opgen.tagged p 0 |]);
          (inst, "READ", Machine.Sim.Args [||]);
        ]
    done;
    sim
  in
  let cfg =
    {
      Machine.Explore.default_config with
      max_steps = 400;
      max_crashes = 1;
      crash_procs = [ 0; 1; 2; 3 ];
    }
  in
  Printf.printf "  %-10s %12s %10s %12s %10s %12s\n%!" "symmetry" "nodes" "dup" "terminals"
    "seconds" "nodes/s";
  let run ~symmetry =
    let t0 = Obs.Clock.now_s () in
    let viol, stats =
      Machine.Explore.find_violation ~cfg ~dedup:true ~symmetry
        ~check_mode:(`Incremental (Workload.Check.nrl_incremental ()))
        ~check:Workload.Check.nrl_violation (build ())
    in
    let dt = Obs.Clock.now_s () -. t0 in
    assert (viol = None);
    assert (stats.Machine.Explore.truncated = 0);
    Printf.printf "  %-10b %12d %10d %12d %10.2f %12.0f\n%!" symmetry
      stats.Machine.Explore.nodes stats.Machine.Explore.dup
      stats.Machine.Explore.terminals dt
      (float_of_int stats.Machine.Explore.nodes /. dt);
    record_explore ~sect:"T8" ~scenario:"rw-symmetric" ~nprocs ~ops ~jobs:1 ~dedup:true
      ~trail:true ~sym:symmetry ~mode:"check-incremental" stats dt;
    stats.Machine.Explore.nodes
  in
  let off = run ~symmetry:false in
  let on_ = run ~symmetry:true in
  Printf.printf "  state-space reduction:  %s\n%!"
    (ratio (float_of_int off) (float_of_int on_))

(* {1 T7: branching-discipline and check-mode throughput (1 domain)} *)

(* The two axes PR 2 adds to the engine, on the T6 instance at jobs = 1:
   trail-based in-place backtracking vs the historical clone-per-branch
   discipline (raw enumeration, no checking), and prefix-shared
   incremental NRL checking vs re-checking every terminal from scratch
   (both on the trail engine).  Statistics are identical across all four
   rows — only the rates move. *)
let t7 () =
  section "T7" "trail vs clone, incremental vs terminal (register, 3 procs, 1 op, 1 crash)";
  Gc.compact ();
  let nprocs = 3 and ops = 1 in
  let scen = Workload.Scenarios.register ~nprocs ~ops () in
  let build () =
    let sim = Machine.Sim.create ~nprocs () in
    scen.Workload.Trial.build sim;
    sim
  in
  let cfg =
    { Machine.Explore.default_config with max_steps = 100; max_crashes = 1; crash_procs = [ 0 ] }
  in
  Printf.printf "  %-20s %-6s %12s %10s %10s %12s %12s\n%!" "mode" "trail" "nodes" "terminals"
    "seconds" "nodes/s" "terminals/s";
  let run ~mode ~trail =
    let t0 = Obs.Clock.now_s () in
    let stats =
      match mode with
      | "dfs" -> Machine.Explore.dfs ~cfg ~trail ~on_terminal:ignore (build ())
      | "check-terminal" ->
        let viol, stats =
          Machine.Explore.find_violation ~cfg ~trail ~check:Workload.Check.nrl_violation
            (build ())
        in
        assert (viol = None);
        stats
      | "check-incremental" ->
        let viol, stats =
          Machine.Explore.find_violation ~cfg ~trail
            ~check_mode:(`Incremental (Workload.Check.nrl_incremental ()))
            ~check:Workload.Check.nrl_violation (build ())
        in
        assert (viol = None);
        stats
      | _ -> assert false
    in
    let dt = Obs.Clock.now_s () -. t0 in
    Printf.printf "  %-20s %-6b %12d %10d %10.2f %12.0f %12.0f\n%!" mode trail
      stats.Machine.Explore.nodes stats.Machine.Explore.terminals dt
      (float_of_int stats.Machine.Explore.nodes /. dt)
      (float_of_int stats.Machine.Explore.terminals /. dt);
    record_explore ~sect:"T7" ~scenario:"register" ~nprocs ~ops ~jobs:1 ~dedup:false ~trail
      ~mode stats dt;
    float_of_int stats.Machine.Explore.nodes /. dt
  in
  let clone_dfs = run ~mode:"dfs" ~trail:false in
  let trail_dfs = run ~mode:"dfs" ~trail:true in
  let term = run ~mode:"check-terminal" ~trail:true in
  let inc = run ~mode:"check-incremental" ~trail:true in
  Printf.printf "  trail vs clone (enumeration):   %s\n" (ratio trail_dfs clone_dfs);
  Printf.printf "  incremental vs terminal check:  %s\n%!" (ratio inc term)

(* {1 F1: recovery latency vs crash position} *)

let f1 () =
  section "F1" "recovery latency vs crash position (real runtime, 1 domain)";
  (* pre-build arrays of crashed objects, then time only the recovery
     calls: no setup noise in the measured region *)
  let batch = 20_000 in
  Printf.printf "  WRITE (Algorithm 1), crash position -> recovery ns/op:\n";
  for k = 0 to 3 do
    let objs =
      Array.init batch (fun _ ->
          let r = Runtime.Rrw.create ~nprocs:2 (0, 0) in
          let cp = Runtime.Crash.create () in
          Runtime.Crash.arm cp k;
          (try Runtime.Rrw.write ~cp r ~pid:0 (0, 1) with Runtime.Crash.Crashed -> ());
          r)
    in
    let t0 = Obs.Clock.now_s () in
    Array.iter (fun r -> Runtime.Rrw.write_recover r ~pid:0 (0, 1)) objs;
    let dt = (Obs.Clock.now_s () -. t0) /. float_of_int batch *. 1e9 in
    Printf.printf "    crash@%d: %8.1f ns\n%!" k dt
  done;
  Printf.printf "  T&S (Algorithm 3), solo, crash position -> recovery ns/op:\n";
  for k = 0 to 7 do
    let objs =
      Array.init batch (fun _ ->
          let t = Runtime.Rtas.create ~nprocs:1 in
          let cp = Runtime.Crash.create () in
          Runtime.Crash.arm cp k;
          (try ignore (Runtime.Rtas.test_and_set ~cp t ~pid:0)
           with Runtime.Crash.Crashed -> ());
          t)
    in
    let t0 = Obs.Clock.now_s () in
    Array.iter (fun t -> ignore (Runtime.Rtas.recover t ~pid:0)) objs;
    let dt = (Obs.Clock.now_s () -. t0) /. float_of_int batch *. 1e9 in
    Printf.printf "    crash@%d: %8.1f ns\n%!" k dt
  done;
  Printf.printf "  CAS (Algorithm 2), crash position -> recovery ns/op (N=4):\n";
  for k = 0 to 1 do
    let objs =
      Array.init batch (fun _ ->
          let c = Runtime.Rcas.create ~nprocs:4 0 in
          let cp = Runtime.Crash.create () in
          Runtime.Crash.arm cp k;
          (try ignore (Runtime.Rcas.cas ~cp c ~pid:0 ~old:0 ~new_:1)
           with Runtime.Crash.Crashed -> ());
          c)
    in
    let t0 = Obs.Clock.now_s () in
    Array.iter (fun c -> ignore (Runtime.Rcas.cas_recover c ~pid:0 ~old:0 ~new_:1)) objs;
    let dt = (Obs.Clock.now_s () -. t0) /. float_of_int batch *. 1e9 in
    Printf.printf "    crash@%d: %8.1f ns\n%!" k dt
  done

(* {1 F2: NRL checker cost vs history length} *)

let f2 () =
  section "F2" "NRL check cost vs history length (register scenario, 3 procs)";
  Printf.printf "  %-14s %10s %12s\n%!" "ops/process" "hist len" "check ms";
  List.iter
    (fun ops ->
      let scen = Workload.Scenarios.register ~nprocs:3 ~ops () in
      let sim = Machine.Sim.create ~seed:7 ~nprocs:3 () in
      scen.Workload.Trial.build sim;
      let policy = Machine.Schedule.random ~crash_prob:0.02 ~max_crashes:4 ~seed:99 () in
      ignore (Machine.Schedule.run sim policy);
      let h = Machine.Sim.history sim in
      let t0 = Obs.Clock.now_s () in
      let reps = 50 in
      for _ = 1 to reps do
        ignore (Workload.Check.nrl sim)
      done;
      let dt = (Obs.Clock.now_s () -. t0) /. float_of_int reps *. 1e3 in
      Printf.printf "  %-14d %10d %12.3f\n%!" ops (History.length h) dt)
    [ 4; 8; 12; 16; 24; 32 ]

(* {1 F3: CAS helping-matrix recovery scan vs N (ablation)} *)

let f3 () =
  section "F3" "CAS recovery row-scan cost vs process count N (Algorithm 2 ablation)";
  Printf.printf "  %-6s %14s\n%!" "N" "recover ns";
  List.iter
    (fun n ->
      let c = Runtime.Rcas.create ~nprocs:n 0 in
      (* worst helpful case: the evidence sits in the last matrix slot *)
      Atomic.set c.Runtime.Rcas.r.(0).(n - 1) (Some 1);
      Atomic.set c.Runtime.Rcas.c (1, 999) (* C no longer holds p0's pair *);
      let t =
        estimate_ns
          (Printf.sprintf "scan%d" n)
          (fun () -> ignore (Runtime.Rcas.cas_recover c ~pid:0 ~old:0 ~new_:1))
      in
      Printf.printf "  %-6d %14.1f\n%!" n t)
    [ 2; 4; 8; 16; 32; 64; 128 ]

(* {1 F4: TAS under crash rates; recovery blocking} *)

let f4 () =
  section "F4" "TAS: outcome vs crash rate, and recovery blocking (simulator)";
  Printf.printf "  crash-rate sweep (4 procs, 200 trials each):\n";
  Printf.printf "  %-12s %10s %10s %10s\n%!" "crash prob" "completed" "crashes" "NRL pass";
  List.iter
    (fun p ->
      let scen = Workload.Scenarios.tas ~nprocs:4 () in
      let s = Workload.Trial.batch ~crash_prob:p ~max_crashes:8 ~trials:200 scen in
      Printf.printf "  %-12.2f %10d %10d %9d%%\n%!" p s.Workload.Trial.completed
        s.Workload.Trial.total_crashes
        (100 * s.Workload.Trial.passed / s.Workload.Trial.trials))
    [ 0.0; 0.02; 0.05; 0.1; 0.2 ];
  Printf.printf "  recovery blocking: p0 crashes after its base t&s while others sit\n";
  Printf.printf "  inside the doorway; p0's solo recovery must spin until they finish:\n";
  Printf.printf "  %-22s %12s\n%!" "concurrent processes" "solo steps";
  List.iter
    (fun n ->
      let sim = Machine.Sim.create ~seed:5 ~nprocs:n () in
      let inst = Objects.Tas_obj.make sim ~name:"T" in
      for p = 0 to n - 1 do
        Machine.Sim.set_script sim p [ (inst, "T&S", Machine.Sim.Args [||]) ]
      done;
      (* p0 runs through its base t&s, everyone else enters the doorway *)
      for _ = 1 to 7 do
        Machine.Sim.step sim 0
      done;
      for q = 1 to n - 1 do
        for _ = 1 to 4 do
          Machine.Sim.step sim q
        done
      done;
      Machine.Sim.crash sim 0;
      Machine.Sim.recover sim 0;
      let spins = ref 0 in
      let budget = 2000 in
      while !spins < budget && Machine.Sim.results sim 0 = [] do
        Machine.Sim.step sim 0;
        incr spins
      done;
      let blocked = Machine.Sim.results sim 0 = [] in
      Printf.printf "  %-22d %12s\n%!" n
        (if blocked then Printf.sprintf ">%d (blocked)" budget else string_of_int !spins))
    [ 2; 3; 4; 6 ]

(* {1 F5: exhaustive-exploration capacity} *)

(* How large an instance the bounded-exhaustive checker covers, and at
   what cost: terminal executions and wall-clock versus per-process
   operation count, register object, 2 processes, 1 crash. *)
let f5 () =
  section "F5" "exhaustive exploration capacity (register, 2 procs, 1 crash)";
  Printf.printf "  %-14s %14s %10s %12s
%!" "ops/process" "terminals" "nodes" "seconds";
  List.iter
    (fun ops ->
      let build () =
        let sim = Machine.Sim.create ~nprocs:2 () in
        let inst = Objects.Rw_obj.make sim ~name:"R" in
        for p = 0 to 1 do
          Machine.Sim.set_script sim p
            (List.init ops (fun k ->
                 if k mod 2 = 0 then
                   (inst, "WRITE", Machine.Sim.Args [| Workload.Opgen.tagged p (k + 1) |])
                 else (inst, "READ", Machine.Sim.Args [||])))
        done;
        sim
      in
      let cfg =
        {
          Machine.Explore.default_config with
          max_steps = 60 * ops;
          max_crashes = 1;
          crash_procs = [ 0 ];
        }
      in
      let t0 = Obs.Clock.now_s () in
      let viol, stats =
        Machine.Explore.find_violation ~cfg ~check:Workload.Check.nrl_violation (build ())
      in
      assert (viol = None);
      Printf.printf "  %-14d %14d %10d %12.2f
%!" ops stats.Machine.Explore.terminals
        stats.Machine.Explore.nodes
        (Obs.Clock.now_s () -. t0))
    [ 1; 2 ];
  Printf.printf
    "  (3 ops/process: ~6.8M terminals, minutes of CPU and GBs of heap --\n";
  Printf.printf
    "   reproduce explicitly with `nrlsim explore register --ops 3`)\n%!"

(* {1 E-suite: correctness experiments (recorded in EXPERIMENTS.md)} *)

let e_suite () =
  section "E1-E4" "NRL pass rates for the paper's algorithms (must be 100%)";
  Printf.printf "  %-26s %10s %10s %10s\n%!" "scenario" "trials" "passed" "crashes";
  List.iter
    (fun scen ->
      let s = Workload.Trial.batch ~crash_prob:0.08 ~max_crashes:6 ~trials:300 scen in
      Printf.printf "  %-26s %10d %10d %10d\n%!" scen.Workload.Trial.scen_name
        s.Workload.Trial.trials s.Workload.Trial.passed s.Workload.Trial.total_crashes)
    (Workload.Scenarios.all_paper ~nprocs:3 ()
    @ [
        Workload.Scenarios.elect ~nprocs:3 ();
        Workload.Scenarios.faa ~nprocs:3 ();
        Workload.Scenarios.stack ~nprocs:3 ();
        Workload.Scenarios.histogram ~nprocs:3 ();
        Workload.Scenarios.queue ~nprocs:3 ();
        Workload.Scenarios.max_register ~nprocs:3 ();
      ]);
  section "E5" "Theorem 4: valency analysis and candidate refutation";
  Format.printf "%a@." Impossibility.Theorem.pp_report
    (Impossibility.Theorem.analyze_paper_algorithm ());
  List.iter
    (fun c ->
      Format.printf "%a@." Impossibility.Theorem.pp_report
        (Impossibility.Theorem.analyze_candidate c))
    Impossibility.Candidates.all;
  section "E6" "NRL violation detection for naive baselines";
  Printf.printf "  %-30s %10s %10s\n%!" "baseline" "trials" "violations";
  List.iter
    (fun scen ->
      let s = Workload.Trial.batch ~crash_prob:0.15 ~max_crashes:6 ~trials:300 scen in
      Printf.printf "  %-30s %10d %10d\n%!" scen.Workload.Trial.scen_name
        s.Workload.Trial.trials s.Workload.Trial.failed)
    [
      Workload.Scenarios.naive_rw ~strategy:`Optimistic ();
      Workload.Scenarios.naive_rw ~strategy:`Reexecute ();
      Workload.Scenarios.naive_cas ~strategy:`Optimistic ();
      Workload.Scenarios.naive_cas ~strategy:`Reexecute ();
      Workload.Scenarios.naive_tas ~nprocs:3 ();
    ];
  Printf.printf "  (naive-rw-reexec fails by *value resurrection*: a re-executed write\n";
  Printf.printf "   makes an already-overwritten value reappear; reads observe a,b,a.\n";
  Printf.printf "   Algorithm 1's conditional recovery exists to close this window.)\n%!"

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  json_requested := List.mem "--json" args;
  selected := List.filter (fun a -> a <> "--json") args;
  Printf.printf "NRL benchmark harness (tables T1-T8, figures F1-F5, experiments E1-E6)\n";
  Printf.printf "domains available: %d\n%!" (Domain.recommended_domain_count ());
  if want "T1" then t1 ();
  if want "T2" then t2 ();
  if want "T3" then t3 ();
  if want "T4" then t4 ();
  if want "T5" then t5 ();
  if want "T6" then t6 ();
  if want "T7" then t7 ();
  if want "T8" then t8 ();
  if want "F1" then f1 ();
  if want "F2" then f2 ();
  if want "F3" then f3 ();
  if want "F4" then f4 ();
  if want "F5" then f5 ();
  if want "E" then e_suite ();
  if !json_requested then write_json "BENCH_explore.json";
  Printf.printf "\ndone.\n%!"
