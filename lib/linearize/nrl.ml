(** Nesting-safe recoverable linearizability (Definition 4).

    A finite history [H] satisfies NRL if it is recoverable well-formed
    (Definition 3) and [N(H)] — [H] with all crash and recovery steps
    removed — is linearizable.  Linearizability of [N(H)] is established
    object by object (locality). *)

type result = {
  rwf : History.Wellformed.result;
  objects : Checker.object_report list;  (** per-object verdicts on [N(H)] *)
}

let ok r =
  History.Wellformed.is_ok r.rwf
  && List.for_all
       (fun (o : Checker.object_report) ->
         match o.verdict with
         | Some v -> Checker.is_linearizable v
         | None -> true)
       r.objects

(** Objects whose subhistory of [N(H)] is not linearizable. *)
let failing_objects r =
  List.filter
    (fun (o : Checker.object_report) ->
      match o.verdict with Some v -> not (Checker.is_linearizable v) | None -> false)
    r.objects

let check ~spec_for ~nprocs (h : History.t) : result =
  let rwf = History.Wellformed.check_recoverable_well_formed h in
  let objects =
    if History.Wellformed.is_ok rwf then
      Checker.check_all ~spec_for ~nprocs (History.n_of h)
    else []
  in
  { rwf; objects }

let explain r =
  if ok r then "satisfies NRL"
  else
    match r.rwf with
    | History.Wellformed.Violation m -> "not recoverable well-formed: " ^ m
    | History.Wellformed.Ok ->
      Fmt.str "N(H) not linearizable for object(s): %a"
        Fmt.(
          list ~sep:comma (fun ppf (o : Checker.object_report) ->
              Fmt.pf ppf "%s (%s)" o.obj_name
                (match o.verdict with
                | Some (Checker.Not_linearizable m) -> m
                | _ -> "?")))
        (failing_objects r)

let pp ppf r = Fmt.string ppf (explain r)

(** Definition 1 (strict recoverable operations): every response of an
    operation that declares a designated per-process persistent response
    variable must find its response value already persisted there.  The
    machine stamps each response step with that fact; this function
    returns the stamped-false responses. *)
let strictness_violations (h : History.t) =
  List.filter
    (function
      | History.Step.Res { persisted = Some false; _ } -> true
      | _ -> false)
    (History.to_list h)
