(** Nesting-safe recoverable linearizability (Definition 4).

    A finite history [H] satisfies NRL if it is recoverable well-formed
    (Definition 3) and [N(H)] — [H] with all crash and recovery steps
    removed — is linearizable.  Linearizability of [N(H)] is established
    object by object (locality). *)

type result = {
  rwf : History.Wellformed.result;
  objects : Checker.object_report list;  (** per-object verdicts on [N(H)] *)
}

let ok r =
  History.Wellformed.is_ok r.rwf
  && List.for_all
       (fun (o : Checker.object_report) ->
         match o.verdict with
         | Some v -> Checker.is_linearizable v
         | None -> true)
       r.objects

(** Objects whose subhistory of [N(H)] is not linearizable. *)
let failing_objects r =
  List.filter
    (fun (o : Checker.object_report) ->
      match o.verdict with Some v -> not (Checker.is_linearizable v) | None -> false)
    r.objects

let check ?obs ~spec_for ~nprocs (h : History.t) : result =
  (match obs with
  | Some reg -> Obs.Metrics.Counter.incr (Obs.Metrics.counter reg Obs.Names.nrl_checks)
  | None -> ());
  let rwf = History.Wellformed.check_recoverable_well_formed h in
  let objects =
    if History.Wellformed.is_ok rwf then
      Checker.check_all ?obs ~spec_for ~nprocs (History.n_of h)
    else []
  in
  { rwf; objects }

let explain r =
  if ok r then "satisfies NRL"
  else
    match r.rwf with
    | History.Wellformed.Violation m -> "not recoverable well-formed: " ^ m
    | History.Wellformed.Ok ->
      Fmt.str "N(H) not linearizable for object(s): %a"
        Fmt.(
          list ~sep:comma (fun ppf (o : Checker.object_report) ->
              Fmt.pf ppf "%s (%s)" o.obj_name
                (match o.verdict with
                | Some (Checker.Not_linearizable m) -> m
                | _ -> "?")))
        (failing_objects r)

let pp ppf r = Fmt.string ppf (explain r)

(** Incremental NRL checking: the whole Definition 4 condition as an
    automaton over history steps, designed to be threaded down a
    depth-first schedule exploration so that work done on a shared
    schedule prefix is shared by every terminal history below it.

    The state is purely functional (persistent lists and maps, plus
    copy-on-write arrays), so keeping the state of an interior DFS node
    alive while its subtrees are explored costs nothing and needs no
    undo.

    {b Recoverable well-formedness} (Definition 3) is tracked directly:
    per process, a [crashed] flag (any step after a crash other than the
    matching recovery is a violation, as is a recovery without a crash)
    and a stack of open operations (an invocation on an object with an
    operation already pending on it breaks per-object alternation; a
    response not matching the inner-most open operation breaks the
    nesting discipline).

    {b Linearizability of N(H)} (Definition 2, per object by locality) is
    tracked as a set of {e configurations} per object — each a set of
    speculatively linearized pending operations (with their chosen
    responses) plus the specification state reached.  Invocations extend
    the pending universe and leave configurations untouched; all search
    happens at response steps, where each configuration is closed under
    linearizing pending operations until the responding operation is
    placed with its actual response value.  Deferring the linearization
    of every {e other} pending operation to a later event is sound
    because currently-pending operations are mutually concurrent and no
    specification transition happens between events except
    linearizations themselves: any ordering realisable now is equally
    realisable at the next response step from the surviving
    configuration.  Requiring the responding operation to be placed at
    its own response step is exactly the Wing & Gong real-time frontier —
    every operation invoked later must be linearized after it.  A
    terminal history is linearizable iff the configuration set is
    non-empty: still-pending operations not in a configuration's
    speculative set are dropped, the others completed, as Definition 2's
    completions allow.  Emptiness is detected at the response step that
    causes it and recorded sticky, so exploration below a doomed prefix
    fails fast.

    The per-event closure memoises on {!Checker.Memo_key} — the
    linearized-set bitset over the event's pending universe, paired with
    the specification state [repr] extended (chained [Value.Pair]s) with
    the chosen responses, which future response steps observe. *)
module Incremental = struct
  module Imap = Map.Make (Int)

  type pending_op = {
    p_call : int;
    p_pid : int;
    p_op : string;
    p_args : Nvm.Value.t array;
  }

  (** One speculative configuration: pending operations already
      linearized (sorted by call id, with the chosen response) and the
      specification state reached. *)
  type config = {
    c_lin : (int * Nvm.Value.t) list;
    c_st : Spec.state;
  }

  type obj_state = {
    o_name : string;
    o_pending : pending_op list;  (** invocation order *)
    o_configs : config list;  (** non-empty (emptiness is a sticky violation) *)
  }

  type pstate = {
    ps_crashed : bool;  (** p's last step was a crash *)
    ps_stack : (int * int) list;  (** open operations, (obj, call_id), inner-most first *)
  }

  type t = {
    i_spec_for : int -> Spec.t option;
    i_nprocs : int;
    i_objs : obj_state Imap.t;
    i_skip : unit Imap.t;  (** objects with no known specification *)
    i_procs : pstate array;  (** copy-on-write; never mutated in place *)
    i_consumed : int;  (** history steps folded in so far *)
    i_violation : string option;  (** sticky: set by the first violating step *)
  }

  let create ~spec_for ~nprocs =
    {
      i_spec_for = spec_for;
      i_nprocs = nprocs;
      i_objs = Imap.empty;
      i_skip = Imap.empty;
      i_procs = Array.make (max 1 nprocs) { ps_crashed = false; ps_stack = [] };
      i_consumed = 0;
      i_violation = None;
    }

  let consumed t = t.i_consumed
  let violation t = t.i_violation

  let set_proc t pid ps =
    let procs = Array.copy t.i_procs in
    procs.(pid) <- ps;
    { t with i_procs = procs }

  let rec insert_lin ((c, _) as e) = function
    | [] -> [ e ]
    | ((c', _) as e') :: rest ->
      if c < c' then e :: e' :: rest else e' :: insert_lin e rest

  (* The chosen responses are part of a configuration's identity (a
     later response step filters on them), so chain them onto the state
     repr to form the [Value] half of the structural memo key. *)
  let encode_config lin repr =
    List.fold_left (fun acc (_, ret) -> Nvm.Value.Pair (ret, acc)) repr lin

  (* Close [os.o_configs] under linearizing pending operations until the
     responding operation [call_id] is placed with response [ret];
     configurations that already placed it survive iff the chosen
     response matches.  Returns the surviving configurations with the
     responding operation removed from both the speculative sets and the
     pending universe, deduplicated. *)
  let res_transition ?obs os ~call_id ~ret =
    let pend = Array.of_list os.o_pending in
    let n = Array.length pend in
    let idx = Hashtbl.create (2 * n) in
    Array.iteri (fun i p -> Hashtbl.replace idx p.p_call i) pend;
    let mask_of lin =
      List.fold_left (fun m (c, _) -> Bitset.add m (Hashtbl.find idx c)) (Bitset.create n) lin
    in
    let memo : unit Checker.Memo.t = Checker.Memo.create 64 in
    (* memo traffic counts in local refs; summed into [obs] once below *)
    let memo_hits = ref 0 and memo_misses = ref 0 in
    let survivors = ref [] in
    let rec go mask lin (st : Spec.state) =
      let key = (mask, encode_config lin st.Spec.repr) in
      if Checker.Memo.mem memo key then incr memo_hits
      else begin
        Checker.Memo.add memo key ();
        incr memo_misses;
        Array.iteri
          (fun i p ->
            if not (Bitset.mem mask i) then begin
              let target = p.p_call = call_id in
              let outcomes = st.Spec.apply ~pid:p.p_pid ~op:p.p_op ~args:p.p_args in
              let outcomes =
                if target then
                  List.filter (fun (r, _) -> Nvm.Value.equal r ret) outcomes
                else outcomes
              in
              List.iter
                (fun (r, st') ->
                  let lin' = insert_lin (p.p_call, r) lin in
                  if target then survivors := { c_lin = lin'; c_st = st' } :: !survivors
                  else go (Bitset.add mask i) lin' st')
                outcomes
            end)
          pend
      end
    in
    List.iter
      (fun c ->
        match List.assoc_opt call_id c.c_lin with
        | Some r0 -> if Nvm.Value.equal r0 ret then survivors := c :: !survivors
        | None -> go (mask_of c.c_lin) c.c_lin c.c_st)
      os.o_configs;
    (match obs with
    | Some reg ->
      Obs.Metrics.Counter.incr
        (Obs.Metrics.counter reg Obs.Names.nrl_inc_res_transitions);
      Obs.Metrics.Counter.add (Obs.Metrics.counter reg Obs.Names.nrl_inc_memo_hits) !memo_hits;
      Obs.Metrics.Counter.add
        (Obs.Metrics.counter reg Obs.Names.nrl_inc_memo_misses)
        !memo_misses
    | None -> ());
    (* commit: the responding operation leaves the pending universe *)
    let pending' = List.filter (fun p -> p.p_call <> call_id) os.o_pending in
    let idx' = Hashtbl.create (2 * n) in
    List.iteri (fun i p -> Hashtbl.replace idx' p.p_call i) pending';
    let n' = List.length pending' in
    let dedup : unit Checker.Memo.t = Checker.Memo.create 16 in
    let configs' =
      List.filter_map
        (fun c ->
          let lin = List.remove_assoc call_id c.c_lin in
          let mask =
            List.fold_left
              (fun m (cid, _) -> Bitset.add m (Hashtbl.find idx' cid))
              (Bitset.create n') lin
          in
          let key = (mask, encode_config lin c.c_st.Spec.repr) in
          if Checker.Memo.mem dedup key then None
          else begin
            Checker.Memo.add dedup key ();
            Some { c_lin = lin; c_st = c.c_st }
          end)
        !survivors
    in
    { os with o_pending = pending'; o_configs = configs' }

  let fail t m = { t with i_violation = Some m }

  let obj_inv t (opref : History.Step.opref) ~pid ~args ~call_id =
    let o = opref.History.Step.obj in
    if Imap.mem o t.i_skip then t
    else
      match Imap.find_opt o t.i_objs with
      | Some os ->
        let p = { p_call = call_id; p_pid = pid; p_op = opref.History.Step.op; p_args = args } in
        { t with i_objs = Imap.add o { os with o_pending = os.o_pending @ [ p ] } t.i_objs }
      | None -> (
        match t.i_spec_for o with
        | None -> { t with i_skip = Imap.add o () t.i_skip }
        | Some spec ->
          let os =
            {
              o_name = opref.History.Step.obj_name;
              o_pending =
                [ { p_call = call_id; p_pid = pid; p_op = opref.History.Step.op; p_args = args } ];
              o_configs = [ { c_lin = []; c_st = spec.Spec.initial ~nprocs:t.i_nprocs } ];
            }
          in
          { t with i_objs = Imap.add o os t.i_objs })

  let obj_res ?obs t (opref : History.Step.opref) ~call_id ~ret =
    let o = opref.History.Step.obj in
    if Imap.mem o t.i_skip then t
    else
      match Imap.find_opt o t.i_objs with
      | None ->
        fail t
          (Fmt.str "response on object %s without a tracked invocation"
             opref.History.Step.obj_name)
      | Some os ->
        let os' = res_transition ?obs os ~call_id ~ret in
        if os'.o_configs = [] then
          fail t
            (Fmt.str "N(H) not linearizable for object(s): %s (no configuration admits %s -> %a)"
               os.o_name opref.History.Step.op Nvm.Value.pp ret)
        else { t with i_objs = Imap.add o os' t.i_objs }

  (** Fold one history step into the automaton.  Violations are sticky:
      once set, further steps only advance the consumed count. *)
  let step ?obs t (s : History.Step.t) =
    (match obs with
    | Some reg -> Obs.Metrics.Counter.incr (Obs.Metrics.counter reg Obs.Names.nrl_inc_steps)
    | None -> ());
    let t = { t with i_consumed = t.i_consumed + 1 } in
    if t.i_violation <> None then t
    else begin
      let pid = History.Step.pid s in
      let ps = t.i_procs.(pid) in
      match s with
      | History.Step.Rec _ ->
        if not ps.ps_crashed then
          fail t (Fmt.str "p%d: recovery step without preceding crash" pid)
        else set_proc t pid { ps with ps_crashed = false }
      | _ when ps.ps_crashed ->
        fail t (Fmt.str "p%d: crash step not followed by a matching recovery step" pid)
      | History.Step.Crash _ ->
        (* the crashed operation stays pending in its object's automaton;
           N(H) simply omits the crash step *)
        set_proc t pid { ps with ps_crashed = true }
      | History.Step.Inv { opref; args; call_id; _ } ->
        if List.exists (fun (o, _) -> o = opref.History.Step.obj) ps.ps_stack then
          fail t
            (Fmt.str "p%d invoked a second operation on object %d while one is pending" pid
               opref.History.Step.obj)
        else
          let t =
            set_proc t pid
              { ps with ps_stack = (opref.History.Step.obj, call_id) :: ps.ps_stack }
          in
          obj_inv t opref ~pid ~args ~call_id
      | History.Step.Res { opref; ret; call_id; _ } -> (
        match ps.ps_stack with
        | (o, c) :: rest when c = call_id && o = opref.History.Step.obj ->
          let t = set_proc t pid { ps with ps_stack = rest } in
          obj_res ?obs t opref ~call_id ~ret
        | _ ->
          fail t
            (Fmt.str "p%d: response does not match the inner-most pending invocation" pid))
    end

  let steps ?obs t l = List.fold_left (fun t s -> step ?obs t s) t l
end

(** Definition 1 (strict recoverable operations): every response of an
    operation that declares a designated per-process persistent response
    variable must find its response value already persisted there.  The
    machine stamps each response step with that fact; this function
    returns the stamped-false responses. *)
let strictness_violations (h : History.t) =
  List.filter
    (function
      | History.Step.Res { persisted = Some false; _ } -> true
      | _ -> false)
    (History.to_list h)
