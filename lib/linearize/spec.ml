(** Sequential specifications.

    The sequential specification of an object is the set of its legal
    sequential histories.  We represent it operationally: a state plus a
    transition function listing, for each operation, the legal
    response/next-state pairs.  Non-singleton result lists express the
    freedom the linearizability checker has when completing pending
    operations (Definition 2 allows appending {e some} legal response).

    States carry a canonical {!Nvm.Value.t} encoding ([repr]) so the
    checker can memoise visited search nodes. *)

type state = {
  apply :
    pid:int -> op:string -> args:Nvm.Value.t array -> (Nvm.Value.t * state) list;
  repr : Nvm.Value.t;
}

type t = {
  spec_name : string;
  initial : nprocs:int -> state;
}

let unknown_op name op =
  invalid_arg (Printf.sprintf "spec %s: unknown operation %s" name op)

(** Read/write register holding an arbitrary value.  [WRITE v] returns
    [ack]; [READ] returns the current value.  (The paper's recoverable
    register additionally assumes all written values are distinct; that is
    a property of the {e workload}, enforced by the generators, not of the
    sequential type.) *)
let register ?(init = Nvm.Value.Null) () =
  let rec mk v =
    {
      repr = v;
      apply =
        (fun ~pid:_ ~op ~args ->
          match op with
          | "READ" -> [ (v, mk v) ]
          | "WRITE" -> [ (Nvm.Value.ack, mk args.(0)) ]
          | op -> unknown_op "register" op);
    }
  in
  { spec_name = "register"; initial = (fun ~nprocs:_ -> mk init) }

(** Compare-and-swap object (paper §3.2): [CAS (old, new)] swaps to [new]
    and returns [true] iff the current value is [old]; [READ] returns the
    current value. *)
let cas ?(init = Nvm.Value.Null) () =
  let rec mk v =
    {
      repr = v;
      apply =
        (fun ~pid:_ ~op ~args ->
          match op with
          | "READ" -> [ (v, mk v) ]
          | "CAS" ->
            if Nvm.Value.equal v args.(0) then [ (Nvm.Value.Bool true, mk args.(1)) ]
            else [ (Nvm.Value.Bool false, mk v) ]
          | op -> unknown_op "cas" op);
    }
  in
  { spec_name = "cas"; initial = (fun ~nprocs:_ -> mk init) }

(** Non-resettable test-and-set (paper §3.3): initialised to 0; [T&S]
    atomically writes 1 and returns the previous value. *)
let tas () =
  let rec mk bit =
    {
      repr = Nvm.Value.Int bit;
      apply =
        (fun ~pid:_ ~op ~args:_ ->
          match op with
          | "T&S" -> [ (Nvm.Value.Int bit, mk 1) ]
          | "READ" -> [ (Nvm.Value.Int bit, mk bit) ]
          | op -> unknown_op "tas" op);
    }
  in
  { spec_name = "tas"; initial = (fun ~nprocs:_ -> mk 0) }

(** Counter (paper §3.4): [INC] increments and returns [ack]; [READ]
    returns the current value. *)
let counter () =
  let rec mk n =
    {
      repr = Nvm.Value.Int n;
      apply =
        (fun ~pid:_ ~op ~args:_ ->
          match op with
          | "INC" -> [ (Nvm.Value.ack, mk (n + 1)) ]
          | "READ" -> [ (Nvm.Value.Int n, mk n) ]
          | op -> unknown_op "counter" op);
    }
  in
  { spec_name = "counter"; initial = (fun ~nprocs:_ -> mk 0) }

(** Max-register: [WRITE_MAX v] raises the stored maximum; [READ] returns
    it.  Used by the modular-construction example built on recoverable
    registers. *)
let max_register () =
  let rec mk m =
    {
      repr = Nvm.Value.Int m;
      apply =
        (fun ~pid:_ ~op ~args ->
          match op with
          | "WRITE_MAX" -> [ (Nvm.Value.ack, mk (max m (Nvm.Value.as_int args.(0)))) ]
          | "READ" -> [ (Nvm.Value.Int m, mk m) ]
          | op -> unknown_op "max_register" op);
    }
  in
  { spec_name = "max_register"; initial = (fun ~nprocs:_ -> mk 0) }

(** Fetch-and-add register over integers. *)
let faa_register ?(init = 0) () =
  let rec mk n =
    {
      repr = Nvm.Value.Int n;
      apply =
        (fun ~pid:_ ~op ~args ->
          match op with
          | "FAA" -> [ (Nvm.Value.Int n, mk (n + Nvm.Value.as_int args.(0))) ]
          | "READ" -> [ (Nvm.Value.Int n, mk n) ]
          | op -> unknown_op "faa_register" op);
    }
  in
  { spec_name = "faa_register"; initial = (fun ~nprocs:_ -> mk init) }

(** Slot allocator over [k] slots: [ELECT] returns {e some} currently free
    slot (a deliberately nondeterministic specification) and marks it
    taken, or [-1] when none is free.  Used by the modular election object
    built from recoverable TAS instances. *)
let slot_allocator ~k () =
  let rec mk taken =
    {
      repr = Nvm.Value.Int taken;
      apply =
        (fun ~pid:_ ~op ~args:_ ->
          match op with
          | "ELECT" ->
            let free =
              List.filter (fun i -> taken land (1 lsl i) = 0) (List.init k Fun.id)
            in
            if free = [] then [ (Nvm.Value.Int (-1), mk taken) ]
            else
              List.map (fun i -> (Nvm.Value.Int i, mk (taken lor (1 lsl i)))) free
          | op -> unknown_op "slot_allocator" op);
    }
  in
  { spec_name = "slot_allocator"; initial = (fun ~nprocs:_ -> mk 0) }

(** Histogram over [k] buckets: [RECORD b] increments bucket [b] and
    returns [ack]; [BUCKET b] returns its count; [TOTAL] returns the sum.
    Used by the three-level modular construction (histogram over counters
    over registers). *)
let histogram ~k () =
  let repr_of counts =
    Array.fold_left (fun acc c -> Nvm.Value.Pair (acc, Nvm.Value.Int c)) Nvm.Value.Null counts
  in
  let rec mk counts =
    {
      repr = repr_of counts;
      apply =
        (fun ~pid:_ ~op ~args ->
          match op with
          | "RECORD" ->
            let b = Nvm.Value.as_int args.(0) in
            if b < 0 || b >= k then []
            else begin
              let counts' = Array.copy counts in
              counts'.(b) <- counts'.(b) + 1;
              [ (Nvm.Value.ack, mk counts') ]
            end
          | "BUCKET" ->
            let b = Nvm.Value.as_int args.(0) in
            if b < 0 || b >= k then [] else [ (Nvm.Value.Int counts.(b), mk counts) ]
          | "TOTAL" ->
            [ (Nvm.Value.Int (Array.fold_left ( + ) 0 counts), mk counts) ]
          | op -> unknown_op "histogram" op);
    }
  in
  { spec_name = "histogram"; initial = (fun ~nprocs:_ -> mk (Array.make k 0)) }

(** Stack: [PUSH x] returns [ack]; [POP] returns the top value or
    ["empty"]; [PEEK] reads the top without removing it. *)
let stack () =
  let empty = Nvm.Value.Str "empty" in
  let repr_of l = List.fold_left (fun acc v -> Nvm.Value.Pair (v, acc)) Nvm.Value.Null (List.rev l) in
  let rec mk l =
    {
      repr = repr_of l;
      apply =
        (fun ~pid:_ ~op ~args ->
          match op, l with
          | "PUSH", _ -> [ (Nvm.Value.ack, mk (args.(0) :: l)) ]
          | "POP", [] -> [ (empty, mk []) ]
          | "POP", hd :: tl -> [ (hd, mk tl) ]
          | "PEEK", [] -> [ (empty, mk l) ]
          | "PEEK", hd :: _ -> [ (hd, mk l) ]
          | op, _ -> unknown_op "stack" op);
    }
  in
  { spec_name = "stack"; initial = (fun ~nprocs:_ -> mk []) }

(** FIFO queue: [ENQ x] returns [ack]; [DEQ] returns the front value or
    ["empty"]; [FRONT] reads the front without removing it. *)
let queue () =
  let empty = Nvm.Value.Str "empty" in
  let repr_of l = List.fold_left (fun acc v -> Nvm.Value.Pair (v, acc)) Nvm.Value.Null (List.rev l) in
  let rec mk l =
    {
      repr = repr_of l;
      apply =
        (fun ~pid:_ ~op ~args ->
          match op, l with
          | "ENQ", _ -> [ (Nvm.Value.ack, mk (l @ [ args.(0) ])) ]
          | "DEQ", [] -> [ (empty, mk []) ]
          | "DEQ", hd :: tl -> [ (hd, mk tl) ]
          | "FRONT", [] -> [ (empty, mk l) ]
          | "FRONT", hd :: _ -> [ (hd, mk l) ]
          | op, _ -> unknown_op "queue" op);
    }
  in
  { spec_name = "queue"; initial = (fun ~nprocs:_ -> mk []) }

(** Select a specification by the object-type tag carried by instances. *)
let of_otype = function
  | "rw" | "register" -> Some (register ())
  | "cas" -> Some (cas ())
  | "tas" -> Some (tas ())
  | "counter" -> Some (counter ())
  | "max_register" -> Some (max_register ())
  | "faa_register" -> Some (faa_register ())
  | "stack" -> Some (stack ())
  | "queue" -> Some (queue ())
  | _ -> None
