(** Sequential specifications.

    The sequential specification of an object is represented
    operationally: a state plus a transition function listing, for each
    operation, the legal response/next-state pairs.  Non-singleton result
    lists express nondeterminism, which the linearizability checker uses
    when completing pending operations (Definition 2 allows appending
    {e some} legal response).

    States carry a canonical {!Nvm.Value.t} encoding ([repr]) so the
    checker can memoise visited search nodes. *)

type state = {
  apply :
    pid:int -> op:string -> args:Nvm.Value.t array -> (Nvm.Value.t * state) list;
  repr : Nvm.Value.t;
}

type t = {
  spec_name : string;
  initial : nprocs:int -> state;
}

val register : ?init:Nvm.Value.t -> unit -> t
(** Read/write register: [WRITE v] returns [ack]; [READ] returns the
    current value. *)

val cas : ?init:Nvm.Value.t -> unit -> t
(** Compare-and-swap object (paper §3.2): [CAS (old, new)] swaps and
    returns [true] iff the current value is [old]; [READ]. *)

val tas : unit -> t
(** Non-resettable test-and-set (paper §3.3): [T&S] writes 1, returns the
    previous value. *)

val counter : unit -> t
(** Counter (paper §3.4): [INC] returns [ack]; [READ]. *)

val max_register : unit -> t
(** [WRITE_MAX v] raises the stored maximum; [READ]. *)

val faa_register : ?init:int -> unit -> t
(** [FAA d] adds [d], returns the previous value; [READ]. *)

val slot_allocator : k:int -> unit -> t
(** [ELECT] returns {e some} currently free slot in [0..k-1] (a
    nondeterministic specification) and marks it taken; [-1] if full. *)

val histogram : k:int -> unit -> t
(** [RECORD b] increments bucket [b]; [BUCKET b] reads it; [TOTAL] sums. *)

val stack : unit -> t
(** [PUSH x] returns [ack]; [POP] pops or returns ["empty"]; [PEEK]. *)

val queue : unit -> t
(** [ENQ x] returns [ack]; [DEQ] dequeues or returns ["empty"];
    [FRONT]. *)

val of_otype : string -> t option
(** Specification for an object-type tag, with default initial values.
    Prefer {!Workload.Check.spec_for}, which also threads instance
    initial values and sizes. *)
