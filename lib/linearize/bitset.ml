(** Small fixed-capacity bit sets used by the linearizability checker to
    track which operations have been linearized along a search branch.
    Represented as bytes so they can serve directly as hash-table keys. *)

type t = Bytes.t

let create n = Bytes.make ((n + 7) / 8) '\000'

let copy = Bytes.copy

let mem t i =
  Char.code (Bytes.get t (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add t i =
  let b = Bytes.copy t in
  Bytes.set b (i lsr 3) (Char.chr (Char.code (Bytes.get b (i lsr 3)) lor (1 lsl (i land 7))));
  b

let cardinal t =
  let c = ref 0 in
  Bytes.iter
    (fun ch ->
      let x = ref (Char.code ch) in
      while !x <> 0 do
        x := !x land (!x - 1);
        incr c
      done)
    t;
  !c

let key t = Bytes.to_string t

let equal = Bytes.equal

(* FNV-1a over the words; complete (every byte participates), unlike the
   generic [Hashtbl.hash] which stops after a size limit *)
let hash t =
  let h = ref 0x811c9dc5 in
  Bytes.iter (fun c -> h := ((!h lxor Char.code c) * 0x01000193) land max_int) t;
  !h
