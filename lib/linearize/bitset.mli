(** Small fixed-capacity persistent bit sets used by the linearizability
    checker to track linearized operations along a search branch; the
    byte representation doubles as a hash-table key. *)

type t

val create : int -> t
(** [create n]: an empty set over a universe of [n] elements. *)

val copy : t -> t
val mem : t -> int -> bool

val add : t -> int -> t
(** Functional insertion (the input set is unchanged). *)

val cardinal : t -> int

val key : t -> string
(** The raw bytes as a string (allocates; prefer {!equal}/{!hash} for
    memoisation keys). *)

val equal : t -> t -> bool

val hash : t -> int
(** Complete hash over the set's words (no truncation), suitable for
    [Hashtbl.Make]. *)
