(** Nesting-safe recoverable linearizability (Definition 4): a finite
    history satisfies NRL if it is recoverable well-formed (Definition 3)
    and its crash-free projection [N(H)] is linearizable. *)

type result = {
  rwf : History.Wellformed.result;
  objects : Checker.object_report list;  (** per-object verdicts on [N(H)] *)
}

val ok : result -> bool

val failing_objects : result -> Checker.object_report list
(** Objects whose subhistory of [N(H)] is not linearizable. *)

val check : spec_for:(int -> Spec.t option) -> nprocs:int -> History.t -> result

val explain : result -> string
val pp : result Fmt.t

val strictness_violations : History.t -> History.Step.t list
(** Responses of operations declared strict (Definition 1) whose value
    was {e not} found in the designated persistent variable at response
    time, as stamped by the machine. *)
