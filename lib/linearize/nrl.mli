(** Nesting-safe recoverable linearizability (Definition 4): a finite
    history satisfies NRL if it is recoverable well-formed (Definition 3)
    and its crash-free projection [N(H)] is linearizable. *)

type result = {
  rwf : History.Wellformed.result;
  objects : Checker.object_report list;  (** per-object verdicts on [N(H)] *)
}

val ok : result -> bool
(** The whole Definition 4 condition: recoverable well-formed {e and}
    every per-object verdict linearizable. *)

val failing_objects : result -> Checker.object_report list
(** Objects whose subhistory of [N(H)] is not linearizable. *)

val check :
  ?obs:Obs.Metrics.t ->
  spec_for:(int -> Spec.t option) ->
  nprocs:int ->
  History.t ->
  result
(** Check a full history against Definition 4: recoverable
    well-formedness first, then per-object linearizability of [N(H)]
    (skipped when well-formedness already failed).

    [obs] counts the work into a metric registry: [nrl.checks] once per
    call, plus the per-object search counters documented at
    {!Checker.check_object}. *)

val explain : result -> string
(** One line: "satisfies NRL" or which half failed and why. *)

val pp : result Fmt.t
(** Prints {!explain}. *)

(** Incremental NRL checking: Definition 4 as an automaton over history
    steps, for threading down a depth-first schedule exploration so work
    done on a shared schedule prefix is shared by every terminal below
    it.  The state is persistent — keeping an interior DFS node's state
    alive while its subtrees are explored needs no undo.

    Recoverable well-formedness is tracked per process (crash/recovery
    discipline, per-object alternation, nesting of open operations);
    linearizability of [N(H)] is tracked per object as a set of
    (speculatively linearized pending operations, specification state)
    configurations, closed at each response step under linearizing
    pending operations — memoised on {!Checker.Memo_key} — until the
    responding operation is placed with its actual response.  A violation
    is detected at the earliest step that dooms every extension and is
    sticky from then on.

    The verdict at a terminal history equals {!Nrl.check}'s on the same
    sequence of steps (the test suite cross-checks the pair on every
    exploration scenario); messages may be phrased differently. *)
module Incremental : sig
  type t

  val create : spec_for:(int -> Spec.t option) -> nprocs:int -> t
  (** The empty-history automaton state.  [spec_for] resolves an object
      id to its sequential specification ([None] objects are skipped,
      as in {!Checker.check_all}). *)

  val step : ?obs:Obs.Metrics.t -> t -> History.Step.t -> t
  (** Fold one history step into the automaton.  Pure in [t]: the input
      state remains valid (and is shared structurally), which is what
      makes per-branch threading free.

      [obs] counts the work into a metric registry: [nrl.inc.steps] once
      per call, [nrl.inc.res_transitions] once per response step that
      reaches the configuration closure, and [nrl.inc.memo.hits] /
      [nrl.inc.memo.misses] for the closure's memo table.  The memo is
      local to each response step, so the counts depend only on the step
      sequence — identical wherever the same prefix is replayed. *)

  val steps : ?obs:Obs.Metrics.t -> t -> History.Step.t list -> t
  (** Fold a suffix of steps, in order, with [obs] applied to each. *)

  val consumed : t -> int
  (** Number of steps folded so far — callers use it to know where the
      next suffix starts (see {!Machine.Sim.history_suffix}). *)

  val violation : t -> string option
  (** [Some reason] once any folded prefix violated NRL (sticky);
      [None] means every completion of the consumed history by dropping
      still-pending operations satisfies NRL so far. *)
end

val strictness_violations : History.t -> History.Step.t list
(** Responses of operations declared strict (Definition 1) whose value
    was {e not} found in the designated persistent variable at response
    time, as stamped by the machine. *)
