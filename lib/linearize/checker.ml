(** Linearizability checker (Definition 2), in the style of Wing & Gong
    with Lowe's memoisation.

    Given a crash-free history of a single object and the object's
    sequential specification, the checker searches for a completion and a
    legal sequential ordering that respects the real-time (happens-before)
    order.  Pending operations may either be linearized with some legal
    response or dropped, exactly as Definition 2's notion of completion
    allows.  Visited (linearized-set, specification-state) pairs are
    memoised, which keeps the search tractable on the history sizes the
    simulator produces. *)

type linearization = (History.op_record * Nvm.Value.t) list

type verdict =
  | Linearizable of linearization
  | Not_linearizable of string

let is_linearizable = function Linearizable _ -> true | Not_linearizable _ -> false

let pp_verdict ppf = function
  | Linearizable w ->
    Fmt.pf ppf "linearizable: @[<h>%a@]"
      Fmt.(
        list ~sep:sp (fun ppf ((r : History.op_record), ret) ->
            Fmt.pf ppf "p%d:%s->%a" r.pid r.opref.History.Step.op Nvm.Value.pp ret))
      w
  | Not_linearizable msg -> Fmt.pf ppf "NOT linearizable: %s" msg

exception Success of linearization

(* The memoisation key: which operations have been linearized, plus the
   specification state reached.  Structural — the bitset's words and the
   spec-state value are hashed and compared directly, so the hot path
   allocates no intermediate strings (the former key concatenated
   [Bitset.key] with [Value.to_string] at every visited node). *)
module Memo_key = struct
  type t = Bitset.t * Nvm.Value.t

  let equal (b1, v1) (b2, v2) = Bitset.equal b1 b2 && Nvm.Value.equal v1 v2
  let hash (b, v) = ((Bitset.hash b * 0x01000193) lxor Nvm.Value.hash v) land max_int
end

module Memo = Hashtbl.Make (Memo_key)

(** [check_object ~spec ~nprocs h] checks the crash-free single-object
    history [h].  All completed operations must be linearized; pending
    invocations may be completed with a legal response or dropped.
    [memo] (default true) enables Lowe-style memoisation of visited
    (linearized-set, spec-state) pairs; the verdict is identical with it
    off, only slower — the switch exists so tests can cross-check the
    memoised search against the plain one. *)
let check_object ?(memo = true) ?obs ~(spec : Spec.t) ~nprocs (h : History.t) : verdict =
  let ops = Array.of_list (History.ops_of h) in
  let n = Array.length ops in
  let completed = Array.map (fun (r : History.op_record) -> r.ret <> None) ops in
  let n_completed = Array.fold_left (fun a c -> if c then a + 1 else a) 0 completed in
  let seen : unit Memo.t = Memo.create 1024 in
  let best_progress = ref 0 in
  (* memo traffic lands in plain local refs on the hot path and is summed
     into [obs] once per check, whatever exit is taken *)
  let memo_hits = ref 0 and expanded = ref 0 in
  (* minimal response position among unlinearized completed ops: an op can
     be linearized next only if it was invoked before that response *)
  let min_res linearized =
    let m = ref max_int in
    Array.iteri
      (fun i (r : History.op_record) ->
        if (not (Bitset.mem linearized i)) && completed.(i) then
          match r.res_pos with Some p -> if p < !m then m := p | None -> ())
      ops;
    !m
  in
  let rec go linearized state acc done_completed =
    if done_completed = n_completed then raise (Success (List.rev acc));
    let key = (linearized, state.Spec.repr) in
    if memo && Memo.mem seen key then incr memo_hits
    else begin
      if memo then Memo.add seen key ();
      incr expanded;
      if done_completed > !best_progress then best_progress := done_completed;
      let frontier = min_res linearized in
      Array.iteri
        (fun i (r : History.op_record) ->
          if (not (Bitset.mem linearized i)) && r.inv_pos < frontier then begin
            let outcomes =
              state.Spec.apply ~pid:r.pid ~op:r.opref.History.Step.op ~args:r.args
            in
            let outcomes =
              match r.ret with
              | Some ret ->
                List.filter (fun (ret', _) -> Nvm.Value.equal ret ret') outcomes
              | None -> outcomes
            in
            List.iter
              (fun (ret, state') ->
                go (Bitset.add linearized i) state' ((r, ret) :: acc)
                  (if completed.(i) then done_completed + 1 else done_completed))
              outcomes
          end)
        ops
    end
  in
  let finish verdict =
    (match obs with
    | Some reg ->
      Obs.Metrics.Counter.incr (Obs.Metrics.counter reg Obs.Names.checker_object_checks);
      Obs.Metrics.Counter.add (Obs.Metrics.counter reg Obs.Names.checker_memo_hits) !memo_hits;
      Obs.Metrics.Counter.add (Obs.Metrics.counter reg Obs.Names.checker_memo_misses) !expanded
    | None -> ());
    verdict
  in
  if n = 0 then finish (Linearizable [])
  else
    finish
      (try
         go (Bitset.create n) (spec.Spec.initial ~nprocs) [] 0;
         Not_linearizable
           (Fmt.str "no legal linearization (best: %d of %d completed ops ordered)"
              !best_progress n_completed)
       with Success w -> Linearizable w)

type object_report = {
  obj : int;
  obj_name : string;
  verdict : verdict option;  (** [None] if no specification is known *)
}

(** Check every object of a crash-free history, using linearizability's
    locality: the history is linearizable iff each per-object subhistory
    is. *)
let check_all ?obs ~spec_for ~nprocs (h : History.t) : object_report list =
  List.map
    (fun o ->
      let events =
        History.filter
          (function
            | History.Step.Inv { opref; _ } | History.Step.Res { opref; _ } ->
              opref.History.Step.obj = o
            | _ -> false)
          h
      in
      let name =
        match History.ops_of events with
        | r :: _ -> r.opref.History.Step.obj_name
        | [] -> Printf.sprintf "obj%d" o
      in
      match spec_for o with
      | None -> { obj = o; obj_name = name; verdict = None }
      | Some spec ->
        { obj = o; obj_name = name; verdict = Some (check_object ?obs ~spec ~nprocs events) })
    (History.objects h)
