(** Linearizability checker (Definition 2), in the style of Wing & Gong
    with Lowe's memoisation.

    The checker searches for a completion and a legal sequential ordering
    of a crash-free single-object history that respects the real-time
    (happens-before) order.  Pending operations may be linearized with
    some legal response or dropped, per Definition 2's completions. *)

type linearization = (History.op_record * Nvm.Value.t) list
(** A witness: operations in linearization order with their (possibly
    completed) responses. *)

(** The structural memoisation key — (linearized-set, encoded state) —
    and its hash table.  Exposed so other search layers (notably
    {!Nrl.Incremental}'s per-event closure) memoise on the same cheap
    key instead of re-inventing a string-based one. *)
module Memo_key : sig
  type t = Bitset.t * Nvm.Value.t

  val equal : t -> t -> bool
  (** Structural equality on both halves. *)

  val hash : t -> int
  (** Structural hash consistent with {!equal}. *)
end

module Memo : Hashtbl.S with type key = Memo_key.t

type verdict =
  | Linearizable of linearization
  | Not_linearizable of string

val is_linearizable : verdict -> bool
(** [true] on [Linearizable _]. *)

val pp_verdict : verdict Fmt.t
(** Renders the witness order, or the failure reason. *)

val check_object :
  ?memo:bool -> ?obs:Obs.Metrics.t -> spec:Spec.t -> nprocs:int -> History.t -> verdict
(** Check a crash-free history containing the invocation/response steps
    of a single object.  [memo] (default true) enables Lowe-style
    memoisation on a structural (linearized-set, spec-state) key; the
    verdict does not depend on it — the switch lets tests cross-check
    the memoised search against the plain one.

    [obs] counts the search into a metric registry:
    [checker.object_checks] once per call, [checker.memo.hits] per
    search node skipped because its key was already visited and
    [checker.memo.misses] per node expanded (with [memo = false] every
    node is a miss).  The counts are a function of the history and the
    specification alone, so they are identical wherever and however
    often the same check runs — see {!Obs.Names}. *)

type object_report = {
  obj : int;
  obj_name : string;
  verdict : verdict option;  (** [None] if no specification is known *)
}

val check_all :
  ?obs:Obs.Metrics.t ->
  spec_for:(int -> Spec.t option) ->
  nprocs:int ->
  History.t ->
  object_report list
(** Check every object of a crash-free history separately
    (linearizability is local).  [obs] is passed to every
    {!check_object}. *)
