(** Recoverable fetch-and-add on real multicore, nested on the strict CAS
    ({!Rscas}) — the native counterpart of the simulator's
    {!Objects.Faa_obj}, using the same persisted per-attempt tag
    protocol.

    The [committed] flag plays the role the machine's [LI_p] plays in
    simulation: the caller's wrapper (the "system") keeps it across the
    crash and passes it to {!recover} — it is set exactly when the
    attempt's tag has been persisted (the commit point). *)

type t = {
  c : int Rscas.t;
  seq : int Atomic.t array;  (** per-process attempt tags *)
  att : (int * int) Atomic.t array;  (** per-process <seq, value read> *)
  own : (int * int) Atomic.t array;  (** per-process <seq, response> *)
  nprocs : int;
}

let create ~nprocs ?(init = 0) () =
  {
    c = Rscas.create ~nprocs init;
    seq = Array.init nprocs (fun _ -> Atomic.make 0);
    att = Array.init nprocs (fun _ -> Atomic.make (-1, 0));
    own = Array.init nprocs (fun _ -> Atomic.make (-1, 0));
    nprocs;
  }

let read ?cp t = Rscas.read ?cp t.c

(* one attempt: returns (Some prev) on success, None on CAS failure *)
let attempt ?(cp = Crash.none) t ~pid ~delta ~committed =
  Crash.point cp;
  let s = Atomic.get t.seq.(pid) + 1 in
  Crash.point cp;
  Atomic.set t.seq.(pid) s;
  (match committed with Some r -> r := true | None -> ());
  let (_, v) as content = Rscas.read_content ~cp t.c in
  Crash.point cp;
  Atomic.set t.att.(pid) (s, v);
  if Rscas.cas_content ~cp t.c ~pid ~content ~new_:(v + delta) ~seq:s then begin
    Crash.point cp;
    Atomic.set t.own.(pid) (s, v);
    Some v
  end
  else None

let rec faa ?(cp = Crash.none) ?committed t ~pid delta =
  (match committed with Some r -> r := false | None -> ());
  match attempt ~cp t ~pid ~delta ~committed with
  | Some v -> v
  | None -> faa ~cp ?committed t ~pid delta

(** [FAA.RECOVER].  [committed] is the wrapper-preserved commit flag of
    the {e latest} attempt (false if the crash predates the tag
    persistence, in which case the whole operation re-executes — safe,
    since an uncommitted attempt invoked no CAS and a preceding committed
    attempt only retries after a persisted failure). *)
let recover ?(cp = Crash.none) ?(committed = true) t ~pid delta =
  if not committed then faa ~cp t ~pid delta
  else begin
    Crash.point cp;
    let s = Atomic.get t.seq.(pid) in
    Crash.point cp;
    let os, ov = Atomic.get t.own.(pid) in
    if os = s then ov
    else begin
      Crash.point cp;
      let ats, atv = Atomic.get t.att.(pid) in
      if ats <> s then
        (* the attempt never reached its CAS (the att write precedes it) *)
        faa ~cp t ~pid delta
      else begin
        (* the CAS may have been invoked and even have taken effect with
           its response lost mid-persist: ask the CAS level for evidence *)
        match Rscas.outcome ~cp t.c ~pid ~new_:(atv + delta) ~seq:s with
        | Some true ->
          Crash.point cp;
          Atomic.set t.own.(pid) (s, atv);
          atv
        | Some false | None -> faa ~cp t ~pid delta
      end
    end
  end
