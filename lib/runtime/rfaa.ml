(** Recoverable fetch-and-add on real multicore, nested on the strict CAS
    ({!Rscas}) — the native counterpart of the simulator's
    {!Objects.Faa_obj}, using the same persisted per-attempt tag
    protocol.

    The [committed] flag plays the role the machine's [LI_p] plays in
    simulation: the caller's wrapper (the "system") keeps it across the
    crash and passes it to {!recover} — it is set exactly when the
    attempt's tag has been persisted (the commit point).

    {!Int} nests on {!Rscas.Int} and keeps all per-process metadata
    ([seq]/[att]/[own]) in {e plain} padded slots: the metadata is
    owner-only (written by [p], read by [p]'s recovery on the same
    domain).  A <seq, value> pair is two plain stores with no crash
    point between them — crashes fire only at [Crash.point], so the
    pair is crash-atomic, and the pair's seq slot is written second so
    a torn pair is simply invisible. *)

(* Local [@inline] copies of the hot one-liners: dev builds compile with
   -opaque, which turns every cross-module call (Crash.point, the Pad
   slot arithmetic, the Enc packing) into an indirect call through the
   module block, so the shared definitions cannot inline here.  Mirror
   crash.ml / pad.ml / enc.ml exactly. *)
let[@inline] point (cp : Crash.t) = if cp.Crash.live then Crash.slow_point cp
let[@inline] slot p = (p + 1) lsl 3
let[@inline] slot2 ~n row col = ((row * n) + col + 1) lsl 3
let[@inline] pack ~id v = ((id + 1) lsl 48) lor (v land ((1 lsl 48) - 1))
let[@inline] value c = (c lsl 15) asr 15
let[@inline] id_of c = (c lsr 48) - 1
let[@inline] res_pack ~seq ret = (seq lsl 1) lor (if ret then 1 else 0)

type t = {
  c : int Rscas.t;
  seq : int Atomic.t array;  (** per-process attempt tags *)
  att : (int * int) Atomic.t array;  (** per-process <seq, value read> *)
  own : (int * int) Atomic.t array;  (** per-process <seq, response> *)
  nprocs : int;
}

let create ~nprocs ?(init = 0) () =
  {
    c = Rscas.create ~nprocs init;
    seq = Array.init nprocs (fun _ -> Atomic.make 0);
    att = Array.init nprocs (fun _ -> Atomic.make (-1, 0));
    own = Array.init nprocs (fun _ -> Atomic.make (-1, 0));
    nprocs;
  }

let read ?(cp = Crash.none) t = Rscas.read ~cp t.c

(* one attempt: returns (Some prev) on success, None on CAS failure *)
let attempt_cp cp t ~pid ~delta ~committed =
  point cp;
  let s = Atomic.get t.seq.(pid) + 1 in
  point cp;
  Atomic.set t.seq.(pid) s;
  (match committed with Some r -> r := true | None -> ());
  let (_, v) as content = Rscas.read_content_cp cp t.c in
  point cp;
  Atomic.set t.att.(pid) (s, v);
  if Rscas.cas_content_cp cp t.c ~pid ~content ~new_:(v + delta) ~seq:s then begin
    point cp;
    Atomic.set t.own.(pid) (s, v);
    Some v
  end
  else None

let rec faa_cp cp committed t ~pid delta =
  (match committed with Some r -> r := false | None -> ());
  match attempt_cp cp t ~pid ~delta ~committed with
  | Some v -> v
  | None -> faa_cp cp committed t ~pid delta

let faa ?(cp = Crash.none) ?committed t ~pid delta = faa_cp cp committed t ~pid delta

(** [FAA.RECOVER].  [committed] is the wrapper-preserved commit flag of
    the {e latest} attempt (false if the crash predates the tag
    persistence, in which case the whole operation re-executes — safe,
    since an uncommitted attempt invoked no CAS and a preceding committed
    attempt only retries after a persisted failure). *)
let recover ?(cp = Crash.none) ?(committed = true) t ~pid delta =
  if not committed then faa_cp cp None t ~pid delta
  else begin
    point cp;
    let s = Atomic.get t.seq.(pid) in
    point cp;
    let os, ov = Atomic.get t.own.(pid) in
    if os = s then ov
    else begin
      point cp;
      let ats, atv = Atomic.get t.att.(pid) in
      if ats <> s then
        (* the attempt never reached its CAS (the att write precedes it) *)
        faa_cp cp None t ~pid delta
      else begin
        (* the CAS may have been invoked and even have taken effect with
           its response lost mid-persist: ask the CAS level for evidence *)
        match Rscas.outcome_cp cp t.c ~pid ~new_:(atv + delta) ~seq:s with
        | Some true ->
          point cp;
          Atomic.set t.own.(pid) (s, atv);
          atv
        | Some false | None -> faa_cp cp None t ~pid delta
      end
    end
  end

(** Unboxed int specialization on {!Rscas.Int}; per-process metadata in
    plain padded slots (layout per process: seq, att_seq, att_v,
    own_seq, own_v — all within the process's own cache line).
    Allocation-free on the crash-free path. *)
module Int = struct
  type t = {
    c : Rscas.Int.t;
    meta : int array;  (** flat padded: seq, att_seq, att_v, own_seq, own_v *)
  }

  let create ~nprocs ?(init = 0) () =
    let meta = Pad.flat_make nprocs 0 in
    for p = 0 to nprocs - 1 do
      let b = slot p in
      meta.(b + 1) <- -1;
      (* att_seq *)
      meta.(b + 3) <- -1 (* own_seq *)
    done;
    { c = Rscas.Int.create ~nprocs init; meta }

  let read ?(cp = Crash.none) t = Rscas.Int.read_cp cp t.c

  (* the attempt is inlined into the retry loop (the polymorphic code's
     [attempt_cp] returns an option; boxing [Some v] per op would be the
     hot path's only allocation), and so is the nested strict-CAS step
     ([read_content] + [cas_content] + response persist): under -opaque
     each [Rscas.Int] call would be an indirect [caml_apply].  The
     crash-point sequence is identical to the call-based version. *)
  let rec faa_cp cp committed t ~pid delta =
    (match committed with Some r -> r := false | None -> ());
    let b = slot pid in
    point cp;
    let s = t.meta.(b) + 1 in
    point cp;
    t.meta.(b) <- s;
    (match committed with Some r -> r := true | None -> ());
    let sc = t.c in
    point cp;
    let content = Atomic.get sc.Rscas.Int.c in
    let v = value content in
    point cp;
    t.meta.(b + 2) <- v;
    t.meta.(b + 1) <- s;
    let id = id_of content in
    if id >= 0 then begin
      point cp;
      sc.Rscas.Int.r.(slot2 ~n:sc.Rscas.Int.nprocs id pid) <- v
    end;
    point cp;
    let ok = Atomic.compare_and_set sc.Rscas.Int.c content (pack ~id:pid (v + delta)) in
    point cp;
    sc.Rscas.Int.res.(slot pid) <- res_pack ~seq:s ok;
    if ok then begin
      point cp;
      t.meta.(b + 4) <- v;
      t.meta.(b + 3) <- s;
      v
    end
    else faa_cp cp committed t ~pid delta

  let faa ?(cp = Crash.none) ?committed t ~pid delta = faa_cp cp committed t ~pid delta

  let recover ?(cp = Crash.none) ?(committed = true) t ~pid delta =
    if not committed then faa_cp cp None t ~pid delta
    else begin
      let b = slot pid in
      point cp;
      let s = t.meta.(b) in
      point cp;
      if t.meta.(b + 3) = s then t.meta.(b + 4)
      else begin
        point cp;
        if t.meta.(b + 1) <> s then faa_cp cp None t ~pid delta
        else begin
          let atv = t.meta.(b + 2) in
          match Rscas.Int.outcome_cp cp t.c ~pid ~new_:(atv + delta) ~seq:s with
          | Some true ->
            point cp;
            t.meta.(b + 4) <- atv;
            t.meta.(b + 3) <- s;
            atv
          | Some false | None -> faa_cp cp None t ~pid delta
        end
      end
    end
end
