(** Recoverable fetch-and-add on real multicore, nested on {!Rscas} with
    the persisted per-attempt tag protocol.  The [committed] flag is
    wrapper-preserved system metadata: set exactly when the current
    attempt's tag has been persisted. *)

type t = {
  c : int Rscas.t;
  seq : int Atomic.t array;
  att : (int * int) Atomic.t array;  (** <seq, value read by the attempt> *)
  own : (int * int) Atomic.t array;  (** <seq, response> *)
  nprocs : int;
}

val create : nprocs:int -> ?init:int -> unit -> t
val read : ?cp:Crash.t -> t -> int

val faa : ?cp:Crash.t -> ?committed:bool ref -> t -> pid:int -> int -> int
(** Add a positive delta; returns the previous value. *)

val recover : ?cp:Crash.t -> ?committed:bool -> t -> pid:int -> int -> int
(** [FAA.RECOVER] with the wrapper-preserved commit flag of the latest
    attempt. *)

(** Unboxed int specialization on {!Rscas.Int}: per-process [seq]/[att]/
    [own] metadata in plain padded slots (owner-only state; <seq, value>
    pairs are crash-atomic because no crash point separates their two
    stores).  Allocation-free on the crash-free path. *)
module Int : sig
  type t = {
    c : Rscas.Int.t;
    meta : int array;
  }

  val create : nprocs:int -> ?init:int -> unit -> t
  val read : ?cp:Crash.t -> t -> int
  val faa : ?cp:Crash.t -> ?committed:bool ref -> t -> pid:int -> int -> int
  val recover : ?cp:Crash.t -> ?committed:bool -> t -> pid:int -> int -> int
end
