(* Int-sentinel encodings shared by the specialized (unboxed) native
   objects.  One OCaml int carries a CAS object's full <id, value>
   content: writer id + 1 in bits 48..62 (0 = the paper's null) and a
   48-bit signed value in bits 0..47.  Responses pack <seq, ret> as
   (seq lsl 1) lor ret.  Sentinels are chosen outside the 48-bit value
   range so "no evidence" is never a legal value. *)

let value_bits = 48

let max_procs = 8191
(* ids must fit 13 bits so a stack stamp (seq lsl 13 | pid) stays
   writer-unique; the <id, value> packing itself allows 15. *)

let value_min = -(1 lsl (value_bits - 1))
let value_max = (1 lsl (value_bits - 1)) - 1

let[@inline] fits v = v >= value_min && v <= value_max

let[@inline] pack ~id v = ((id + 1) lsl 48) lor (v land ((1 lsl value_bits) - 1))

(* bits 48..62 are the id field: shift it out, then sign-extend the
   48-bit value (OCaml ints are 63-bit, hence the 15) *)
let[@inline] value c = (c lsl 15) asr 15

let[@inline] id c = (c lsr 48) - 1

let none = min_int
(** Helping-cell sentinel: bit 62 set, unreachable by any packed value. *)

let[@inline] res_pack ~seq ret = (seq lsl 1) lor (if ret then 1 else 0)

let[@inline] res_seq r = r asr 1

let[@inline] res_ret r = r land 1 = 1

let res_none = -1
(** [res_seq res_none = -1], which no non-negative invocation tag
    matches. *)

let check_nprocs n =
  if n < 1 || n > max_procs then
    invalid_arg (Printf.sprintf "nprocs %d outside 1..%d" n max_procs)
