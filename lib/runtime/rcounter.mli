(** Algorithm 4 on real multicore: recoverable counter nested on {!Rrw}
    recoverable registers.  [read] is strict (persists its response in
    [res] before returning). *)

type t = {
  regs : int Rrw.t array;  (** per-process single-writer recoverable registers *)
  res : int Atomic.t array;  (** [Res_p] for strict READ; -1 = none *)
  nprocs : int;
}

val create : nprocs:int -> t
val inc : ?cp:Crash.t -> t -> pid:int -> unit

val inc_recover : ?cp:Crash.t -> t -> pid:int -> li_before_write:bool -> unit
(** [INC.RECOVER].  [li_before_write] is the harness-supplied [LI_p < 4]
    bit: whether the crash occurred before the nested WRITE started.  If
    the crash hit {e inside} the WRITE, first run [Rrw.write_recover] on
    the register, then call this with [li_before_write:false]. *)

val read : ?cp:Crash.t -> t -> pid:int -> int
val read_recover : ?cp:Crash.t -> t -> pid:int -> int

(** Plain array counter with the same layout but no recovery machinery. *)
module Plain : sig
  type t

  val create : nprocs:int -> t
  val inc : t -> pid:int -> unit
  val read : t -> int
end

(** Conventional fetch-and-add counter baseline. *)
module Faa : sig
  type t

  val create : unit -> t
  val inc : t -> unit
  val read : t -> int
end

(** Unboxed specialization on {!Rrw.Int}: padded per-process registers,
    plain padded [S_p]/[Res_p] slots; INC allocates nothing. *)
module Int : sig
  type t = {
    regs : Rrw.Int.t array;
    res : int array;
    nprocs : int;
  }

  val create : nprocs:int -> t
  val inc : ?cp:Crash.t -> t -> pid:int -> unit
  val inc_recover : ?cp:Crash.t -> t -> pid:int -> li_before_write:bool -> unit

  val reg_write_recover : ?cp:Crash.t -> t -> pid:int -> int -> unit
  (** Register-level recovery for a crash inside the nested WRITE; the
      intended value (temp + 1) comes from the system's preserved LI
      metadata (in drills, from the harness). *)

  val reg_read : ?cp:Crash.t -> t -> pid:int -> int
  (** The caller's own register — what the nested recovery drill needs
      to recompute temp + 1. *)

  val read : ?cp:Crash.t -> t -> pid:int -> int
  val read_recover : ?cp:Crash.t -> t -> pid:int -> int

  val response : t -> pid:int -> int
  (** The strict READ's persisted [Res_p] (-1 before any READ). *)

  val inc_cp : Crash.t -> t -> pid:int -> unit
  val read_cp : Crash.t -> t -> pid:int -> int
end
