(** Algorithm 4 on real multicore: recoverable counter nested on {!Rrw}
    recoverable registers.  [read] is strict (persists its response in
    [res] before returning). *)

type t = {
  regs : int Rrw.t array;  (** per-process single-writer recoverable registers *)
  res : int Atomic.t array;  (** [Res_p] for strict READ; -1 = none *)
  nprocs : int;
}

val create : nprocs:int -> t
val inc : ?cp:Crash.t -> t -> pid:int -> unit

val inc_recover : ?cp:Crash.t -> t -> pid:int -> li_before_write:bool -> unit
(** [INC.RECOVER].  [li_before_write] is the harness-supplied [LI_p < 4]
    bit: whether the crash occurred before the nested WRITE started.  If
    the crash hit {e inside} the WRITE, first run [Rrw.write_recover] on
    the register, then call this with [li_before_write:false]. *)

val read : ?cp:Crash.t -> t -> pid:int -> int
val read_recover : ?cp:Crash.t -> t -> pid:int -> int

(** Plain array counter with the same layout but no recovery machinery. *)
module Plain : sig
  type t

  val create : nprocs:int -> t
  val inc : t -> pid:int -> unit
  val read : t -> int
end

(** Conventional fetch-and-add counter baseline. *)
module Faa : sig
  type t

  val create : unit -> t
  val inc : t -> unit
  val read : t -> int
end
