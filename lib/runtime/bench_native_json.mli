(** The [BENCH_native.json] document (schema ["nrl-native/1"]) written
    by [nrlsim bench-native]: native-runtime throughput, latency and
    allocation rows.  Self-contained writer — the bench harness's
    {!Workload.Bench_json} is its sibling for the simulator suite. *)

val schema_version : string

type tp_row = {
  tp_object : string;  (** ["cas"], ["counter"], ["faa"] or ["stack"] *)
  tp_impl : string;  (** ["recoverable"] or ["plain"] *)
  tp_mode : string;  (** ["contended"] or ["uncontended"] *)
  tp_width : int;  (** number of locations in the contention array *)
  tp_domains : int;
  tp_ops : int;  (** summed per-domain op counters; CAS rows count attempts *)
  tp_seconds : float;
  tp_ops_per_sec : float;
}

type ns_row = { ns_name : string; ns_ns : float }

type alloc_row = { al_name : string; al_words : float }

type t = {
  domains_available : int;
  duration_s : float;
  throughput : tp_row list;
  latency : ns_row list;
  alloc_per_op : alloc_row list;
}

val render : t -> string
val write : path:string -> t -> unit
