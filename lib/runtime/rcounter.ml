(** Algorithm 4 on real multicore: recoverable counter nested on
    {!Rrw} recoverable registers.

    INC reads and rewrites the caller's own register through the
    recoverable operations; READ sums all registers and persists its
    response in [Res_p] before returning (strict).  The recovery drill
    interface mirrors the paper: [inc_recover] takes the [li] progress
    marker ("had the WRITE of line 4 started?") which a real system would
    keep in the per-process non-volatile [LI_p] slot — here the harness
    supplies it, as the machine's scheduler does in simulation. *)

(* Local [@inline] copies of the hot one-liners: dev builds compile with
   -opaque, which turns every cross-module call (Crash.point, Pad.slot)
   into an indirect call through the module block, so the shared
   definitions cannot inline here.  Mirror crash.ml / pad.ml exactly. *)
let[@inline] point (cp : Crash.t) = if cp.Crash.live then Crash.slow_point cp
let[@inline] slot p = (p + 1) lsl 3

type t = {
  regs : int Rrw.t array;  (** R[p], single-writer recoverable registers *)
  res : int Atomic.t array;  (** Res_p for strict READ; -1 = none *)
  nprocs : int;
}

let create ~nprocs =
  {
    regs = Array.init nprocs (fun _ -> Rrw.create ~nprocs 0);
    res = Array.init nprocs (fun _ -> Atomic.make (-1));
    nprocs;
  }

let inc ?(cp = Crash.none) t ~pid =
  let temp = Rrw.read ~cp t.regs.(pid) in  (* line 2 *)
  Rrw.write_cp cp t.regs.(pid) ~pid (temp + 1)  (* lines 3-4 *)

(** [li_before_write] says whether the crash occurred before the nested
    WRITE of line 4 started (the machine's [LI_p < 4] test).  If the crash
    hit {e inside} the WRITE, call [Rrw.write_recover] on the register
    first, then [inc_recover ~li_before_write:false]. *)
let inc_recover ?(cp = Crash.none) t ~pid ~li_before_write =
  if li_before_write then inc ~cp t ~pid  (* lines 7-8 *)
  else ()  (* line 10 *)

let read ?(cp = Crash.none) t ~pid =
  let val_ = ref 0 in
  for i = 0 to t.nprocs - 1 do
    val_ := !val_ + Rrw.read_cp cp t.regs.(i)  (* lines 12-14 *)
  done;
  point cp;
  Atomic.set t.res.(pid) !val_;  (* line 15 *)
  !val_

let read_recover ?cp t ~pid = read ?cp t ~pid  (* line 18: proceed from line 12 *)

(** Baseline: plain array counter with the same structure (per-process
    slot, sum on read) but no recovery machinery — isolates the cost of
    recoverability rather than of the data layout. *)
module Plain = struct
  type t = int Atomic.t array

  let create ~nprocs = Array.init nprocs (fun _ -> Atomic.make 0)
  let inc t ~pid = Atomic.set t.(pid) (Atomic.get t.(pid) + 1)

  let read t =
    let v = ref 0 in
    Array.iter (fun c -> v := !v + Atomic.get c) t;
    !v
end

(** Second baseline: a fetch-and-add counter (the conventional
    non-recoverable multicore counter). *)
module Faa = struct
  type t = int Atomic.t

  let create () = Atomic.make 0
  let inc t = ignore (Atomic.fetch_and_add t 1)
  let read t = Atomic.get t
end

(** Unboxed specialization on {!Rrw.Int}: each per-process register is a
    cache-line-padded atomic (no two processes' INC targets share a
    line), with the registers' owner-only [S_p] slots and the strict
    READ's [Res_p] in plain padded slots.  INC costs two atomic loads,
    one fenced store and two plain stores; nothing allocates. *)
module Int = struct
  type t = {
    regs : Rrw.Int.t array;  (** R[p], padded single-writer registers *)
    res : int array;  (** plain padded Res_p slots; -1 = none *)
    nprocs : int;
  }

  let create ~nprocs =
    Enc.check_nprocs nprocs;
    {
      regs = Array.init nprocs (fun _ -> Rrw.Int.create ~nprocs 0);
      res = Pad.flat_make nprocs (-1);
      nprocs;
    }

  (* the nested register's READ + WRITE steps are inlined (under -opaque
     each [Rrw.Int] call would be an indirect [caml_apply]); the
     crash-point sequence is identical to the call-based version *)
  let[@inline] inc_cp cp t ~pid =
    let reg = t.regs.(pid) in
    point cp;
    let temp = Atomic.get reg.Rrw.Int.r in  (* line 2: nested READ *)
    let v = temp + 1 in
    (* lines 3-4: nested WRITE (Algorithm 1 lines 2-5) *)
    point cp;
    let prev = Atomic.get reg.Rrw.Int.r in
    point cp;
    reg.Rrw.Int.s.(slot pid) <- (prev lsl 1) lor 1;
    point cp;
    Atomic.set reg.Rrw.Int.r v;
    point cp;
    reg.Rrw.Int.s.(slot pid) <- v lsl 1

  let inc ?(cp = Crash.none) t ~pid = inc_cp cp t ~pid

  let inc_recover ?(cp = Crash.none) t ~pid ~li_before_write =
    if li_before_write then inc_cp cp t ~pid else ()

  (* register-level recovery for a crash inside the nested WRITE; [v] is
     the intended value (temp + 1), which the system's LI metadata
     preserves — the drill harness supplies it *)
  let reg_write_recover ?(cp = Crash.none) t ~pid v =
    Rrw.Int.write_recover_cp cp t.regs.(pid) ~pid v

  let reg_read ?(cp = Crash.none) t ~pid = Rrw.Int.read_cp cp t.regs.(pid)

  let read_cp cp t ~pid =
    let val_ = ref 0 in
    for i = 0 to t.nprocs - 1 do
      point cp;
      val_ := !val_ + Atomic.get t.regs.(i).Rrw.Int.r  (* lines 12-14 *)
    done;
    point cp;
    t.res.(slot pid) <- !val_;  (* line 15, owner-only plain slot *)
    !val_

  let read ?(cp = Crash.none) t ~pid = read_cp cp t ~pid
  let read_recover ?(cp = Crash.none) t ~pid = read_cp cp t ~pid
  let response t ~pid = t.res.(slot pid)
end
