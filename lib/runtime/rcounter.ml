(** Algorithm 4 on real multicore: recoverable counter nested on
    {!Rrw} recoverable registers.

    INC reads and rewrites the caller's own register through the
    recoverable operations; READ sums all registers and persists its
    response in [Res_p] before returning (strict).  The recovery drill
    interface mirrors the paper: [inc_recover] takes the [li] progress
    marker ("had the WRITE of line 4 started?") which a real system would
    keep in the per-process non-volatile [LI_p] slot — here the harness
    supplies it, as the machine's scheduler does in simulation. *)

type t = {
  regs : int Rrw.t array;  (** R[p], single-writer recoverable registers *)
  res : int Atomic.t array;  (** Res_p for strict READ; -1 = none *)
  nprocs : int;
}

let create ~nprocs =
  {
    regs = Array.init nprocs (fun _ -> Rrw.create ~nprocs 0);
    res = Array.init nprocs (fun _ -> Atomic.make (-1));
    nprocs;
  }

let inc ?(cp = Crash.none) t ~pid =
  let temp = Rrw.read ~cp t.regs.(pid) in  (* line 2 *)
  Rrw.write ~cp t.regs.(pid) ~pid (temp + 1)  (* lines 3-4 *)

(** [li_before_write] says whether the crash occurred before the nested
    WRITE of line 4 started (the machine's [LI_p < 4] test).  If the crash
    hit {e inside} the WRITE, call [Rrw.write_recover] on the register
    first, then [inc_recover ~li_before_write:false]. *)
let inc_recover ?(cp = Crash.none) t ~pid ~li_before_write =
  if li_before_write then inc ~cp t ~pid  (* lines 7-8 *)
  else ()  (* line 10 *)

let read ?(cp = Crash.none) t ~pid =
  let val_ = ref 0 in
  for i = 0 to t.nprocs - 1 do
    val_ := !val_ + Rrw.read ~cp t.regs.(i)  (* lines 12-14 *)
  done;
  Crash.point cp;
  Atomic.set t.res.(pid) !val_;  (* line 15 *)
  !val_

let read_recover ?cp t ~pid = read ?cp t ~pid  (* line 18: proceed from line 12 *)

(** Baseline: plain array counter with the same structure (per-process
    slot, sum on read) but no recovery machinery — isolates the cost of
    recoverability rather than of the data layout. *)
module Plain = struct
  type t = int Atomic.t array

  let create ~nprocs = Array.init nprocs (fun _ -> Atomic.make 0)
  let inc t ~pid = Atomic.set t.(pid) (Atomic.get t.(pid) + 1)

  let read t =
    let v = ref 0 in
    Array.iter (fun c -> v := !v + Atomic.get c) t;
    !v
end

(** Second baseline: a fetch-and-add counter (the conventional
    non-recoverable multicore counter). *)
module Faa = struct
  type t = int Atomic.t

  let create () = Atomic.make 0
  let inc t = ignore (Atomic.fetch_and_add t 1)
  let read t = Atomic.get t
end
