(** Crash-point injection for the real-multicore implementations.

    Aborting an OCaml function with {!Crashed} discards its local
    variables exactly as a crash discards volatile registers, while the
    "NVRAM" ([Atomic] cells) keeps its contents; the harness then invokes
    the algorithm's recovery function, as the system would.  Each shared
    access in an operation is preceded by a {!point} with an increasing
    index.  An unarmed, fuseless [t] costs one branch per access. *)

exception Crashed

exception Livelock
(** Raised by {!point} when the current attempt traversed more crash
    points than the {!set_fuse} bound without completing — the probe the
    torture harness's watchdog uses to detect a non-terminating
    recovery. *)

type t = {
  mutable live : bool;  (** [armed >= 0 || fuse > 0] — the hot-path check *)
  mutable armed : int;  (** crash-point index to fire at; [-1] = disarmed *)
  mutable next : int;  (** points traversed since the last arm/disarm *)
  mutable fuse : int;  (** livelock bound; [0] = disabled *)
}
(** Concrete (not abstract) on purpose: dev builds compile with
    [-opaque], which turns every cross-module call — including
    [Crash.point] — into an indirect call through the module block.
    Exposing the record lets each recoverable object define a local
    [let[@inline] point cp = if cp.Crash.live then Crash.slow_point cp]
    whose disarmed cost is one direct field load plus one predictable
    branch.  Treat the fields as read-only outside this module; mutate
    only through {!arm}/{!disarm}/{!set_fuse}. *)

val none : t
(** A shared never-firing instance (the default of the [?cp] arguments).
    Never arm it or set its fuse: it is shared between domains precisely
    because it is immutable in its default state. *)

val create : unit -> t

val arm : t -> int -> unit
(** Crash when crash point [k] (0-based since arming) is reached. *)

val disarm : t -> unit

val set_fuse : t -> int -> unit
(** [set_fuse t n] bounds every attempt to [n] crash-point traversals
    ([n <= 0] disables the fuse, the default).  The bound applies whether
    or not the instance is armed, and resets at each {!arm}/{!disarm}. *)

val fuse : t -> int
(** The current fuse bound (0 when disabled). *)

val point : t -> unit
(** Mark a crash point.
    @raise Crashed if armed for this index.
    @raise Livelock if the attempt overran the fuse. *)

val slow_point : t -> unit
(** The out-of-line bookkeeping behind {!point}; call only when [live]
    is set (hot modules inline the [live] test locally, see {!t}). *)

val traversed : t -> int
(** Crash points passed since the last {!arm}/{!disarm}. *)
