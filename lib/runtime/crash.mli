(** Crash-point injection for the real-multicore implementations.

    Aborting an OCaml function with {!Crashed} discards its local
    variables exactly as a crash discards volatile registers, while the
    "NVRAM" ([Atomic] cells) keeps its contents; the harness then invokes
    the algorithm's recovery function, as the system would.  Each shared
    access in an operation is preceded by a {!point} with an increasing
    index.  An unarmed, fuseless [t] costs one branch per access. *)

exception Crashed

exception Livelock
(** Raised by {!point} when the current attempt traversed more crash
    points than the {!set_fuse} bound without completing — the probe the
    torture harness's watchdog uses to detect a non-terminating
    recovery. *)

type t

val none : t
(** A shared never-firing instance (the default of the [?cp] arguments).
    Never arm it or set its fuse: it is shared between domains precisely
    because it is immutable in its default state. *)

val create : unit -> t

val arm : t -> int -> unit
(** Crash when crash point [k] (0-based since arming) is reached. *)

val disarm : t -> unit

val set_fuse : t -> int -> unit
(** [set_fuse t n] bounds every attempt to [n] crash-point traversals
    ([n <= 0] disables the fuse, the default).  The bound applies whether
    or not the instance is armed, and resets at each {!arm}/{!disarm}. *)

val fuse : t -> int
(** The current fuse bound (0 when disabled). *)

val point : t -> unit
(** Mark a crash point.
    @raise Crashed if armed for this index.
    @raise Livelock if the attempt overran the fuse. *)

val traversed : t -> int
(** Crash points passed since the last {!arm}/{!disarm}. *)
