(** Crash-point injection for the real-multicore implementations.

    Aborting an OCaml function with {!Crashed} discards its local
    variables exactly as a crash discards volatile registers, while the
    "NVRAM" ([Atomic] cells) keeps its contents; the harness then invokes
    the algorithm's recovery function, as the system would.  Each shared
    access in an operation is preceded by a {!point} with an increasing
    index.  An unarmed [t] costs one branch per access. *)

exception Crashed

type t

val none : t
(** A shared never-firing instance (the default of the [?cp] arguments). *)

val create : unit -> t

val arm : t -> int -> unit
(** Crash when crash point [k] (0-based since arming) is reached. *)

val disarm : t -> unit

val point : t -> unit
(** Mark a crash point.
    @raise Crashed if armed for this index. *)

val traversed : t -> int
(** Crash points passed since the last {!arm}/{!disarm}. *)
