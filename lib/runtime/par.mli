(** Multi-domain throughput harness: spawn domains, synchronise on a
    start barrier, run a per-domain iteration body, report wall-clock
    time and aggregate throughput. *)

type result = {
  domains : int;
  iters_per_domain : int;
  seconds : float;
  ops_per_sec : float;
}

val run : domains:int -> iters:int -> (pid:int -> i:int -> unit) -> result
val pp_result : result Fmt.t

val max_domains : ?cap:int -> unit -> int
(** Available hardware parallelism, capped (default 8). *)
