(** Multi-domain throughput harness, memento-style: workers park on a
    two-phase start barrier; the monotonic {!Obs.Clock} is read only
    after every domain has checked in and before the go flag is raised,
    so domain-spawn cost never pollutes the measured window. *)

type result = {
  domains : int;
  iters_per_domain : int;
  seconds : float;
  ops_per_sec : float;
}

type timed = {
  t_domains : int;  (** worker domains (the timer domain is not counted) *)
  t_total_ops : int;  (** sum of the per-domain op counters *)
  t_seconds : float;  (** measured window (barrier release to last join) *)
  t_ops_per_sec : float;
}

val run : domains:int -> iters:int -> (pid:int -> i:int -> unit) -> result
(** Fixed iteration count per domain. *)

val run_for : domains:int -> duration:float -> (pid:int -> i:int -> unit) -> timed
(** Fixed wall-clock duration: every worker loops [body] until the
    timer domain (spawned in addition to the [domains] workers) raises
    the stop flag, counting its own ops; [i] is the worker's running op
    index.  This is the contended suite's mode. *)

val pp_result : result Fmt.t
val pp_timed : timed Fmt.t

val max_domains : ?cap:int -> unit -> int
(** Available hardware parallelism, capped (default 8). *)
