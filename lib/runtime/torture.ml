(** Real-multicore crash torture.

    Wraps each recoverable operation the way the paper's {e system} does:
    the wrapper (not the operation) holds the operation's arguments —
    they are "system metadata" that survives the crash — and, when an
    armed crash point fires, consults how far the operation got
    ({!Crash.traversed}) to invoke the right recovery function, exactly
    as the model's [LI_p] does.  Crashes can hit the recovery functions
    too (repeated failures), and recovery is retried until it completes.

    This gives genuinely parallel executions (OCaml domains) in which
    operations abort at random shared-access boundaries and recover,
    letting the tests check algorithm postconditions (conservation,
    unique winner) under real interleavings — complementing the
    simulator, which checks full NRL on serialised interleavings. *)

(* deterministic per-domain PRNG; Random's global state would serialise
   domains *)
type rng = { mutable s : int }

let rng_create seed = { s = (if seed = 0 then 0x9e3779b9 else seed land max_int) }

let rng_bits r =
  let s = r.s in
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  let s = s lxor (s lsl 17) in
  r.s <- s land max_int;
  r.s

let rng_int r n = if n <= 0 then 0 else rng_bits r mod n

type stats = { mutable crashes : int; mutable ops : int }

(* Metric handles resolved once per harness loop, not once per op.
   Counters are plain mutable ints: in a multi-domain torture run each
   domain must be given its own registry (merged afterwards with
   {!Obs.Metrics.merge}), exactly like the parallel explorer's
   per-worker registries. *)
type meters = {
  tm_ops : Obs.Metrics.counter;
  tm_crashes : Obs.Metrics.counter;
  tm_retries : Obs.Metrics.counter;
}

let meters_of reg =
  {
    tm_ops = Obs.Metrics.counter reg Obs.Names.torture_ops;
    tm_crashes = Obs.Metrics.counter reg Obs.Names.torture_crashes;
    tm_retries = Obs.Metrics.counter reg Obs.Names.torture_retries;
  }

(** Run [op] with a crash armed at a random position with probability
    [crash_prob]; on a crash, call [recover ~traversed] (which may itself
    crash again at a random position) until the operation completes.
    Returns the operation's (or final recovery's) result.

    [obs] mirrors the harness activity into a metric registry:
    [torture.ops] per wrapped operation, [torture.crashes] per injected
    crash (initial or during recovery), [torture.retries] per recovery
    attempt. *)
let with_crashes ~rng ~crash_prob ~stats ?obs ~op ~recover () =
  let om = Option.map meters_of obs in
  let bump sel =
    match om with Some m -> Obs.Metrics.Counter.incr (sel m) | None -> ()
  in
  let cp = Crash.create () in
  let arm () =
    if rng_int rng 1000 < int_of_float (crash_prob *. 1000.) then
      Crash.arm cp (rng_int rng 12)
    else Crash.disarm cp
  in
  arm ();
  stats.ops <- stats.ops + 1;
  bump (fun m -> m.tm_ops);
  match op ~cp with
  | v ->
    Crash.disarm cp;
    v
  | exception Crash.Crashed ->
    stats.crashes <- stats.crashes + 1;
    bump (fun m -> m.tm_crashes);
    let rec retry () =
      let traversed = Crash.traversed cp in
      arm ();
      bump (fun m -> m.tm_retries);
      match recover ~cp ~traversed with
      | v ->
        Crash.disarm cp;
        v
      | exception Crash.Crashed ->
        stats.crashes <- stats.crashes + 1;
        bump (fun m -> m.tm_crashes);
        retry ()
    in
    retry ()

(** A recoverable-register WRITE under random crashes.  The wrapper holds
    the argument (system metadata); any crash position is recovered by
    [Rrw.write_recover], which decides re-execution itself. *)
let rrw_write ~rng ~crash_prob ~stats ?obs reg ~pid v =
  with_crashes ~rng ~crash_prob ~stats ?obs
    ~op:(fun ~cp -> Rrw.write ~cp reg ~pid v)
    ~recover:(fun ~cp ~traversed ->
      ignore traversed;
      Rrw.write_recover ~cp reg ~pid v)
    ()

(** A recoverable-counter INC under random crashes.  The wrapper
    remembers the value the nested WRITE was invoked with (the system
    preserves nested-operation arguments), so a crash inside the WRITE
    first runs the register's recovery and then INC's, mirroring the
    cascade. *)
let rcounter_inc ~rng ~crash_prob ~stats ?obs (c : Rcounter.t) ~pid =
  let pending_write = ref None in
  let body ~cp =
    Crash.point cp;
    let temp = Rrw.read c.Rcounter.regs.(pid) in
    (* line 2 *)
    let v = temp + 1 in
    pending_write := Some v;
    (* the write of line 4: its argument is now system metadata *)
    Rrw.write ~cp c.Rcounter.regs.(pid) ~pid v
  in
  let recover ~cp ~traversed =
    match !pending_write with
    | None ->
      ignore traversed;
      body ~cp (* crashed before the write started: re-execute *)
    | Some v ->
      (* crash at or after the nested write's invocation: the register's
         recovery linearizes it exactly once; INC then just returns *)
      Rrw.write_recover ~cp c.Rcounter.regs.(pid) ~pid v
  in
  with_crashes ~rng ~crash_prob ~stats ?obs ~op:body ~recover ()

(** A recoverable T&S under random crashes. *)
let rtas ~rng ~crash_prob ~stats ?obs t ~pid =
  with_crashes ~rng ~crash_prob ~stats ?obs
    ~op:(fun ~cp -> Rtas.test_and_set ~cp t ~pid)
    ~recover:(fun ~cp ~traversed ->
      ignore traversed;
      Rtas.recover ~cp t ~pid)
    ()

(** A recoverable CAS under random crashes; the wrapper holds [old] and
    [new_]. *)
let rcas ~rng ~crash_prob ~stats ?obs c ~pid ~old ~new_ =
  with_crashes ~rng ~crash_prob ~stats ?obs
    ~op:(fun ~cp -> Rcas.cas ~cp c ~pid ~old ~new_)
    ~recover:(fun ~cp ~traversed ->
      ignore traversed;
      Rcas.cas_recover ~cp c ~pid ~old ~new_)
    ()
