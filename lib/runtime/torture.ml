(** Real-multicore crash torture.

    Wraps each recoverable operation the way the paper's {e system} does:
    the wrapper (not the operation) holds the operation's arguments —
    they are "system metadata" that survives the crash — and, when an
    armed crash point fires, consults how far the operation got
    ({!Crash.traversed}) to invoke the right recovery function, exactly
    as the model's [LI_p] does.  Crashes can hit the recovery functions
    too (repeated failures); recovery is retried under a {e watchdog}:
    bounded retries with deterministic backoff, plus a traversal fuse
    that converts a non-terminating recovery — exactly the failure mode
    Theorem 4 warns about — into a reported {!Recovery_stuck} failure
    instead of a hung test suite.

    This gives genuinely parallel executions (OCaml domains) in which
    operations abort at random shared-access boundaries and recover,
    letting the tests check algorithm postconditions (conservation,
    unique winner) under real interleavings — complementing the
    simulator, which checks full NRL on serialised interleavings. *)

(* deterministic per-domain PRNG; Random's global state would serialise
   domains *)
type rng = { mutable s : int }

let rng_create seed = { s = (if seed = 0 then 0x9e3779b9 else seed land max_int) }

let rng_bits r =
  let s = r.s in
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  let s = s lxor (s lsl 17) in
  r.s <- s land max_int;
  r.s

let rng_int r n = if n <= 0 then 0 else rng_bits r mod n

(** Harness counters.  Pinned relation (the regression tests check it):
    [crashes = retries + aborted_recoveries] — every fired crash point
    leads to exactly one more recovery attempt, except the one that
    exhausts the retry budget.  Livelocked attempts add to [livelocks]
    without adding a crash. *)
type stats = {
  mutable crashes : int;
  mutable ops : int;
  mutable retries : int;
  mutable livelocks : int;
  mutable aborted_recoveries : int;
}

let stats_zero () =
  { crashes = 0; ops = 0; retries = 0; livelocks = 0; aborted_recoveries = 0 }

(** The recovery watchdog.  [wd_max_retries] bounds how often a crashed
    operation's recovery is re-invoked; [wd_max_traversed] is the
    per-attempt crash-point fuse ({!Crash.set_fuse}) that detects an
    attempt spinning without progress; [wd_backoff] runs between retries
    with the attempt number (1-based) — deterministic, so seeded runs
    replay. *)
type watchdog = {
  wd_max_retries : int;
  wd_max_traversed : int;
  wd_backoff : int -> unit;
}

(* Exponential spin backoff: cheap, deterministic, and it keeps the
   domain out of the contended lines while others make progress. *)
let backoff_spin ?(base = 16) attempt =
  let n = base * (1 lsl min attempt 10) in
  for _ = 1 to n do
    Domain.cpu_relax ()
  done

let default_watchdog =
  { wd_max_retries = 1_000; wd_max_traversed = 100_000; wd_backoff = (fun _ -> ()) }

(** A recovery the watchdog gave up on.  [stuck_attempts] counts the
    recovery attempts made; [stuck_traversed] how far the last attempt
    got (crash points). *)
exception
  Recovery_stuck of {
    stuck_kind : [ `Livelock | `Retries_exhausted ];
    stuck_attempts : int;
    stuck_traversed : int;
  }

let pp_stuck ppf = function
  | Recovery_stuck { stuck_kind; stuck_attempts; stuck_traversed } ->
    Format.fprintf ppf "recovery %s after %d attempt(s), %d crash point(s) traversed"
      (match stuck_kind with
      | `Livelock -> "livelocked (traversal fuse blown)"
      | `Retries_exhausted -> "abandoned (retry budget exhausted)")
      stuck_attempts stuck_traversed
  | e -> raise (Invalid_argument ("Torture.pp_stuck: " ^ Printexc.to_string e))

(** Per-domain heartbeats: each worker bumps its slot as it makes
    progress (the harness beats once per wrapped operation and once per
    recovery attempt); a monitor snapshots the array and calls a domain
    stalled when its beat count did not advance between snapshots. *)
type heartbeat = int Atomic.t array

let heartbeat ~domains = Array.init (max 1 domains) (fun _ -> Atomic.make 0)
let beat hb pid = if pid >= 0 && pid < Array.length hb then Atomic.incr hb.(pid)
let beats hb = Array.map Atomic.get hb

let stalled ~prev hb =
  let n = min (Array.length prev) (Array.length hb) in
  List.filter (fun i -> Atomic.get hb.(i) <= prev.(i)) (List.init n Fun.id)

(* Metric handles resolved once per harness loop, not once per op.
   Counters are plain mutable ints: in a multi-domain torture run each
   domain must be given its own registry (merged afterwards with
   {!Obs.Metrics.merge}), exactly like the parallel explorer's
   per-worker registries. *)
type meters = {
  tm_ops : Obs.Metrics.counter;
  tm_crashes : Obs.Metrics.counter;
  tm_retries : Obs.Metrics.counter;
  tm_livelocks : Obs.Metrics.counter;
  tm_aborted : Obs.Metrics.counter;
}

let meters_of reg =
  {
    tm_ops = Obs.Metrics.counter reg Obs.Names.torture_ops;
    tm_crashes = Obs.Metrics.counter reg Obs.Names.torture_crashes;
    tm_retries = Obs.Metrics.counter reg Obs.Names.torture_retries;
    tm_livelocks = Obs.Metrics.counter reg Obs.Names.torture_livelocks;
    tm_aborted = Obs.Metrics.counter reg Obs.Names.torture_aborted_recoveries;
  }

(** Run [op] with a crash armed at a random position with probability
    [crash_prob]; on a crash, call [recover ~traversed] (which may itself
    crash again at a random position) until the operation completes or
    the [watchdog] gives up ({!Recovery_stuck}).  Returns the operation's
    (or final recovery's) result.

    [hb] is an optional [(heartbeat, slot)] pair beaten once per wrapped
    operation and once per recovery attempt.

    [obs] mirrors the harness activity into a metric registry:
    [torture.ops] per wrapped operation, [torture.crashes] per injected
    crash (initial or during recovery), [torture.retries] per recovery
    attempt, [torture.livelocks] / [torture.aborted_recoveries] per
    watchdog intervention — always in lockstep with [stats]. *)
let with_crashes ~rng ~crash_prob ~stats ?obs ?(watchdog = default_watchdog) ?hb ~op
    ~recover () =
  let om = Option.map meters_of obs in
  let bump sel =
    match om with Some m -> Obs.Metrics.Counter.incr (sel m) | None -> ()
  in
  let pulse () = match hb with Some (h, slot) -> beat h slot | None -> () in
  let cp = Crash.create () in
  Crash.set_fuse cp watchdog.wd_max_traversed;
  let arm () =
    if rng_int rng 1000 < int_of_float (crash_prob *. 1000.) then
      Crash.arm cp (rng_int rng 12)
    else Crash.disarm cp
  in
  let livelocked ~attempts () =
    stats.livelocks <- stats.livelocks + 1;
    bump (fun m -> m.tm_livelocks);
    raise
      (Recovery_stuck
         {
           stuck_kind = `Livelock;
           stuck_attempts = attempts;
           stuck_traversed = Crash.traversed cp;
         })
  in
  arm ();
  pulse ();
  stats.ops <- stats.ops + 1;
  bump (fun m -> m.tm_ops);
  match op ~cp with
  | v ->
    Crash.disarm cp;
    v
  | exception Crash.Livelock -> livelocked ~attempts:0 ()
  | exception Crash.Crashed ->
    stats.crashes <- stats.crashes + 1;
    bump (fun m -> m.tm_crashes);
    let rec retry attempt =
      if attempt > watchdog.wd_max_retries then begin
        stats.aborted_recoveries <- stats.aborted_recoveries + 1;
        bump (fun m -> m.tm_aborted);
        raise
          (Recovery_stuck
             {
               stuck_kind = `Retries_exhausted;
               stuck_attempts = attempt - 1;
               stuck_traversed = Crash.traversed cp;
             })
      end;
      let traversed = Crash.traversed cp in
      watchdog.wd_backoff attempt;
      arm ();
      pulse ();
      stats.retries <- stats.retries + 1;
      bump (fun m -> m.tm_retries);
      match recover ~cp ~traversed with
      | v ->
        Crash.disarm cp;
        v
      | exception Crash.Livelock -> livelocked ~attempts:attempt ()
      | exception Crash.Crashed ->
        stats.crashes <- stats.crashes + 1;
        bump (fun m -> m.tm_crashes);
        retry (attempt + 1)
    in
    retry 1

(** A recoverable-register WRITE under random crashes.  The wrapper holds
    the argument (system metadata); any crash position is recovered by
    [Rrw.write_recover], which decides re-execution itself. *)
let rrw_write ~rng ~crash_prob ~stats ?obs ?watchdog ?hb reg ~pid v =
  with_crashes ~rng ~crash_prob ~stats ?obs ?watchdog ?hb
    ~op:(fun ~cp -> Rrw.write ~cp reg ~pid v)
    ~recover:(fun ~cp ~traversed ->
      ignore traversed;
      Rrw.write_recover ~cp reg ~pid v)
    ()

(** A recoverable-counter INC under random crashes.  The wrapper
    remembers the value the nested WRITE was invoked with (the system
    preserves nested-operation arguments), so a crash inside the WRITE
    first runs the register's recovery and then INC's, mirroring the
    cascade. *)
let rcounter_inc ~rng ~crash_prob ~stats ?obs ?watchdog ?hb (c : Rcounter.t) ~pid =
  let pending_write = ref None in
  let body ~cp =
    Crash.point cp;
    let temp = Rrw.read c.Rcounter.regs.(pid) in
    (* line 2 *)
    let v = temp + 1 in
    pending_write := Some v;
    (* the write of line 4: its argument is now system metadata *)
    Rrw.write ~cp c.Rcounter.regs.(pid) ~pid v
  in
  let recover ~cp ~traversed =
    match !pending_write with
    | None ->
      ignore traversed;
      body ~cp (* crashed before the write started: re-execute *)
    | Some v ->
      (* crash at or after the nested write's invocation: the register's
         recovery linearizes it exactly once; INC then just returns *)
      Rrw.write_recover ~cp c.Rcounter.regs.(pid) ~pid v
  in
  with_crashes ~rng ~crash_prob ~stats ?obs ?watchdog ?hb ~op:body ~recover ()

(** A recoverable T&S under random crashes. *)
let rtas ~rng ~crash_prob ~stats ?obs ?watchdog ?hb t ~pid =
  with_crashes ~rng ~crash_prob ~stats ?obs ?watchdog ?hb
    ~op:(fun ~cp -> Rtas.test_and_set ~cp t ~pid)
    ~recover:(fun ~cp ~traversed ->
      ignore traversed;
      Rtas.recover ~cp t ~pid)
    ()

(** A recoverable CAS under random crashes; the wrapper holds [old] and
    [new_]. *)
let rcas ~rng ~crash_prob ~stats ?obs ?watchdog ?hb c ~pid ~old ~new_ =
  with_crashes ~rng ~crash_prob ~stats ?obs ?watchdog ?hb
    ~op:(fun ~cp -> Rcas.cas ~cp c ~pid ~old ~new_)
    ~recover:(fun ~cp ~traversed ->
      ignore traversed;
      Rcas.cas_recover ~cp c ~pid ~old ~new_)
    ()
