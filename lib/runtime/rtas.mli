(** Algorithm 3 on real multicore: recoverable test-and-set over OCaml 5
    [Atomic] cells.  [test_and_set] is wait-free and strict (the response
    is persisted in [res] before returning); [recover] busy-waits on
    other processes' state, as Theorem 4 proves necessary. *)

type t = {
  r : int Atomic.t array;  (** per-process state, 0..4 *)
  winner : int Atomic.t;  (** -1 = null *)
  doorway : bool Atomic.t;
  t : bool Atomic.t;  (** the base t&s bit *)
  res : int Atomic.t array;  (** persisted responses; -1 = none *)
  nprocs : int;
}

val null_id : int
val create : nprocs:int -> t

val test_and_set : ?cp:Crash.t -> t -> pid:int -> int
(** Returns 0 to the unique winner, 1 to everyone else.  At most one
    invocation per process. *)

val recover : ?cp:Crash.t -> t -> pid:int -> int
(** [T&S.RECOVER]; may spin until concurrent in-doorway processes
    finish. *)

(** Plain (non-recoverable) test-and-set baseline. *)
module Plain : sig
  type t

  val create : unit -> t
  val test_and_set : t -> int
end
