(** Algorithm 3 on real multicore: recoverable test-and-set over OCaml 5
    [Atomic] cells.  [test_and_set] is wait-free and strict (the response
    is persisted before returning); [recover] busy-waits on other
    processes' state, as Theorem 4 proves necessary.

    The paper's per-process [R_p] (state) and [Res_p] (response) cells
    are merged into one atomic word (state in bits 0..2, response + 1 in
    bits 3..4), making the completion protocol a single store — see
    rtas.ml for the soundness argument.  Use {!response} where the old
    code read [res.(pid)]. *)

type t = {
  st : int Atomic.t array;  (** merged state (bits 0..2) | response + 1 (bits 3..4) *)
  doorway : int Atomic.t;  (** 1 = open *)
  tas : int Atomic.t;
      (** base t&s bit fused with the winner announcement:
          0 = free, [(winner lsl 1) lor 1] = taken *)
  nprocs : int;
}

val null_id : int
val create : nprocs:int -> t

val response : t -> pid:int -> int
(** The persisted response of [pid]'s operation: 0 or 1 once it
    completed (state 3), -1 before. *)

val test_and_set : ?cp:Crash.t -> t -> pid:int -> int
(** Returns 0 to the unique winner, 1 to everyone else.  At most one
    invocation per process. *)

val recover : ?cp:Crash.t -> t -> pid:int -> int
(** [T&S.RECOVER]; may spin until concurrent in-doorway processes
    finish. *)

val test_and_set_cp : Crash.t -> t -> pid:int -> int
val recover_cp : Crash.t -> t -> pid:int -> int

(** Plain (non-recoverable) test-and-set baseline. *)
module Plain : sig
  type t

  val create : unit -> t
  val test_and_set : t -> int
end
