(** Int-sentinel encodings for the specialized native objects.

    A CAS object's <id, value> content packs into one OCaml int: writer
    id + 1 in bits 48..62 ([id = -1] — the paper's null — encodes as 0)
    and the value, signed, in bits 0..47.  A packed content compares
    with [=] exactly like the boxed pair did, so
    [Atomic.compare_and_set] needs no structural detour and the hot
    paths never allocate. *)

val value_bits : int

val max_procs : int
(** Process ids must fit 13 bits (stack stamps append them to a
    sequence number). *)

val value_min : int

val value_max : int
(** Values live in [value_min .. value_max] (48-bit signed); {!pack}
    truncates silently, so callers of the Int objects must stay in
    range. *)

val fits : int -> bool

val pack : id:int -> int -> int
val value : int -> int
val id : int -> int

val none : int
(** Helping-cell sentinel ([min_int]): not a packed value. *)

val res_pack : seq:int -> bool -> int
val res_seq : int -> int
val res_ret : int -> bool

val res_none : int
(** Response-cell sentinel: its [res_seq] is [-1], matching no
    non-negative invocation tag. *)

val check_nprocs : int -> unit
(** @raise Invalid_argument outside [1 .. max_procs]. *)
