(** Crash-point injection for the real-multicore implementations.

    The paper's crash model kills a process at an arbitrary point and
    discards its volatile state.  For native OCaml code we emulate this by
    aborting an operation with an exception at a chosen {e crash point} —
    each shared-memory access inside an operation is preceded by a
    [point] call with an increasing index.  Aborting the OCaml function
    discards its local variables exactly as a crash discards volatile
    registers; the "NVRAM" ([Atomic] cells) keeps its contents.  The
    harness then invokes the recovery function, as the system would.

    Hot-path cost: [point] is [@inline always] and reads a single
    [live] flag that is false iff the instance is unarmed and fuseless,
    so production use (the [none] instance) is one load + one
    predictable branch, with the bookkeeping out of line in
    [slow_point].  [armed] is an int with [-1] = disarmed rather than
    an [int option] so arming never allocates.

    The {e fuse} is the livelock detector's probe: when set to [n > 0],
    an attempt (the span between two [arm]/[disarm] calls) that traverses
    more than [n] crash points without completing raises {!Livelock} —
    a recovery spinning on state it will never observe change trips the
    fuse instead of hanging the harness (cf. Theorem 4's bounded-recovery
    concern and the abortable-RME line of work). *)

exception Crashed
exception Livelock

type t = {
  mutable live : bool; (* armed >= 0 || fuse > 0 *)
  mutable armed : int; (* -1 = disarmed *)
  mutable next : int;
  mutable fuse : int;
}

let none = { live = false; armed = -1; next = 0; fuse = 0 }

let create () = { live = false; armed = -1; next = 0; fuse = 0 }

let[@inline] refresh_live t = t.live <- t.armed >= 0 || t.fuse > 0

(** Arm: crash when crash point [k] (0-based) is reached. *)
let arm t k =
  t.armed <- k;
  t.next <- 0;
  t.live <- true

let disarm t =
  t.armed <- -1;
  t.next <- 0;
  refresh_live t

let set_fuse t n =
  t.fuse <- n;
  refresh_live t

let fuse t = t.fuse

let[@inline never] slow_point t =
  let k = t.armed in
  if k < 0 then begin
    (* fuse-only instance *)
    t.next <- t.next + 1;
    if t.next > t.fuse then raise Livelock
  end
  else begin
    let i = t.next in
    t.next <- i + 1;
    if i = k then raise Crashed;
    if t.fuse > 0 && t.next > t.fuse then raise Livelock
  end

(** Mark a crash point; raises {!Crashed} if armed for this index,
    {!Livelock} if the attempt overran the fuse. *)
let[@inline always] point t = if t.live then slow_point t

(** Number of crash points traversed since the last [arm]/[disarm]. *)
let traversed t = t.next
