(** Crash-point injection for the real-multicore implementations.

    The paper's crash model kills a process at an arbitrary point and
    discards its volatile state.  For native OCaml code we emulate this by
    aborting an operation with an exception at a chosen {e crash point} —
    each shared-memory access inside an operation is preceded by a
    [point] call with an increasing index.  Aborting the OCaml function
    discards its local variables exactly as a crash discards volatile
    registers; the "NVRAM" ([Atomic] cells) keeps its contents.  The
    harness then invokes the recovery function, as the system would.

    A [t] with [armed = None] never fires, so production use costs one
    branch per access. *)

exception Crashed

type t = { mutable armed : int option; mutable next : int }

let none = { armed = None; next = 0 }

let create () = { armed = None; next = 0 }

(** Arm: crash when crash point [k] (0-based) is reached. *)
let arm t k =
  t.armed <- Some k;
  t.next <- 0

let disarm t =
  t.armed <- None;
  t.next <- 0

(** Mark a crash point; raises {!Crashed} if armed for this index. *)
let point t =
  match t.armed with
  | None -> ()
  | Some k ->
    let i = t.next in
    t.next <- i + 1;
    if i = k then raise Crashed

(** Number of crash points traversed since the last [arm]/[disarm]. *)
let traversed t = t.next
