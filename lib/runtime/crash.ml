(** Crash-point injection for the real-multicore implementations.

    The paper's crash model kills a process at an arbitrary point and
    discards its volatile state.  For native OCaml code we emulate this by
    aborting an operation with an exception at a chosen {e crash point} —
    each shared-memory access inside an operation is preceded by a
    [point] call with an increasing index.  Aborting the OCaml function
    discards its local variables exactly as a crash discards volatile
    registers; the "NVRAM" ([Atomic] cells) keeps its contents.  The
    harness then invokes the recovery function, as the system would.

    A [t] with [armed = None] and no fuse never fires, so production use
    costs one branch per access.

    The {e fuse} is the livelock detector's probe: when set to [n > 0],
    an attempt (the span between two [arm]/[disarm] calls) that traverses
    more than [n] crash points without completing raises {!Livelock} —
    a recovery spinning on state it will never observe change trips the
    fuse instead of hanging the harness (cf. Theorem 4's bounded-recovery
    concern and the abortable-RME line of work). *)

exception Crashed
exception Livelock

type t = { mutable armed : int option; mutable next : int; mutable fuse : int }

let none = { armed = None; next = 0; fuse = 0 }

let create () = { armed = None; next = 0; fuse = 0 }

(** Arm: crash when crash point [k] (0-based) is reached. *)
let arm t k =
  t.armed <- Some k;
  t.next <- 0

let disarm t =
  t.armed <- None;
  t.next <- 0

let set_fuse t n = t.fuse <- n
let fuse t = t.fuse

(** Mark a crash point; raises {!Crashed} if armed for this index,
    {!Livelock} if the attempt overran the fuse. *)
let point t =
  match t.armed with
  | None ->
    if t.fuse > 0 then begin
      t.next <- t.next + 1;
      if t.next > t.fuse then raise Livelock
    end
  | Some k ->
    let i = t.next in
    t.next <- i + 1;
    if i = k then raise Crashed;
    if t.fuse > 0 && t.next > t.fuse then raise Livelock

(** Number of crash points traversed since the last [arm]/[disarm]. *)
let traversed t = t.next
