(** The native benchmark suite behind [nrlsim bench-native]: single-domain
    latency and allocation rows plus a memento-style contended/uncontended
    throughput sweep over the recoverable objects and their plain
    baselines.

    Everything here is hand-rolled on the monotonic {!Obs.Clock} —
    bechamel stays a test-only dependency of the bechamel-based harness
    in bench/, which [nrlsim] must not link.  Latency is the median of
    [repeats] equal batches (calibrated to at least [min_batch_ns] per
    batch); allocation is the {!Gc.minor_words} delta across a long loop
    divided by the iteration count, so the measurement's own float boxes
    vanish in the denominator.

    The throughput harness follows the memento evaluation shape: each
    (object, impl, mode, width, domains) cell builds a fresh contention
    array of [width] locations, then {!Par.run_for} runs every domain's
    op loop for a fixed wall-clock window behind a two-phase start
    barrier, counting ops in domain-local counters.  [Contended] picks
    the location per op with a per-domain xorshift; [Uncontended] gives
    each domain its own location ([width >= domains]).  CAS cells count
    {e attempts} (one read + CAS pair per op) — under contention the
    success rate drops, which is exactly the effect the sweep exists to
    show.  Values written are [(seq lsl 13) lor pid] with a per-domain
    sequence, satisfying the paper's distinct-values assumption. *)

let median a =
  Array.sort compare a;
  a.(Array.length a / 2)

let estimate_ns ?(repeats = 9) ?(min_batch_ns = 2_000_000) f =
  for _ = 1 to 8 do f () done;
  let rec calibrate n =
    let t0 = Obs.Clock.now_ns () in
    for _ = 1 to n do f () done;
    let dt = Obs.Clock.now_ns () - t0 in
    if dt >= min_batch_ns then n else calibrate (n * 2)
  in
  let n = calibrate 16 in
  let samples =
    Array.init repeats (fun _ ->
        let t0 = Obs.Clock.now_ns () in
        for _ = 1 to n do f () done;
        float_of_int (Obs.Clock.now_ns () - t0) /. float_of_int n)
  in
  median samples

let alloc_words_per_op ?(iters = 20_000) f =
  for _ = 1 to 256 do f () done;
  let w0 = Gc.minor_words () in
  for _ = 1 to iters do f () done;
  let w1 = Gc.minor_words () in
  (w1 -. w0) /. float_of_int iters

(* plain Treiber baseline for the stack rows *)
module Plain_stack = struct
  type node = Nil | Cons of { v : int; next : node }
  type t = node Atomic.t

  let create () : t = Pad.make_any Nil

  let rec push t v =
    let cur = Atomic.get t in
    if not (Atomic.compare_and_set t cur (Cons { v; next = cur })) then push t v

  let rec pop t =
    match Atomic.get t with
    | Nil -> None
    | Cons { v; next } as cur ->
      if Atomic.compare_and_set t cur next then Some v else pop t
end

(* ---- single-domain latency and allocation rows ----
   Row names are shared with the bechamel harness (bench/main.ml) so the
   two documents can be cross-read. *)

let lat_nprocs = 4

let latency_thunks () =
  [
    ( "plain cas",
      let c = Pad.make_int 0 and s = ref 0 in
      fun () ->
        let cur = Atomic.get c in
        incr s;
        ignore (Atomic.compare_and_set c cur !s : bool) );
    ( "recoverable cas",
      let t = Rcas.Int.create ~nprocs:lat_nprocs 0 and s = ref 0 in
      fun () ->
        let cur = Rcas.Int.read t in
        incr s;
        ignore (Rcas.Int.cas t ~pid:0 ~old:cur ~new_:!s : bool) );
    ( "recoverable t&s (fresh, win)",
      fun () -> ignore (Rtas.test_and_set (Rtas.create ~nprocs:lat_nprocs) ~pid:0 : int)
    );
    ( "atomic faa",
      let c = Pad.make_int 0 in
      fun () -> ignore (Atomic.fetch_and_add c 1 : int) );
    ( "recoverable faa",
      let t = Rfaa.Int.create ~nprocs:lat_nprocs () in
      fun () -> ignore (Rfaa.Int.faa t ~pid:0 1 : int) );
    ( "recoverable counter inc",
      let t = Rcounter.Int.create ~nprocs:lat_nprocs in
      fun () -> Rcounter.Int.inc t ~pid:0 );
    ( "plain stack push+pop",
      let t = Plain_stack.create () and s = ref 0 in
      fun () ->
        incr s;
        Plain_stack.push t !s;
        ignore (Plain_stack.pop t : int option) );
    ( "recoverable stack push+pop",
      let t = Rstack.Int.create ~nprocs:lat_nprocs () and s = ref 0 in
      fun () ->
        incr s;
        ignore (Rstack.Int.push t ~pid:0 !s : int);
        ignore (Rstack.Int.pop t ~pid:0 : int) );
  ]

(* the hot paths the tentpole claims allocation-free, plus the stack
   (three small blocks per push+pop pair, reported honestly) *)
let alloc_names =
  [
    "recoverable cas";
    "recoverable faa";
    "recoverable counter inc";
    "recoverable stack push+pop";
  ]

(* ---- memento-style throughput sweep ---- *)

type mode = Contended | Uncontended

let mode_name = function Contended -> "contended" | Uncontended -> "uncontended"

let[@inline] xorshift x =
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  x lxor (x lsl 17)

(* per-domain location pick over [w] slots; rng state in padded cells *)
let mk_pick ~mode ~domains ~w =
  match mode with
  | Uncontended -> fun pid -> pid mod w
  | Contended ->
    if w = 1 then fun _ -> 0
    else begin
      let st = Pad.flat_make domains 0 in
      for p = 0 to domains - 1 do
        st.(Pad.slot p) <- ((p + 1) * 0x9E3779B9) lor 1
      done;
      fun pid ->
        let s = Pad.slot pid in
        let x = xorshift st.(s) in
        st.(s) <- x;
        (x land max_int) mod w
    end

let cas_reco ~domains ~w ~pick =
  let cells = Array.init w (fun _ -> Rcas.Int.create ~nprocs:domains 0) in
  let seqs = Pad.flat_make domains 0 in
  fun ~pid ~i:_ ->
    let c = cells.(pick pid) in
    let cur = Rcas.Int.read c in
    let s = seqs.(Pad.slot pid) + 1 in
    seqs.(Pad.slot pid) <- s;
    ignore (Rcas.Int.cas c ~pid ~old:cur ~new_:((s lsl 13) lor pid) : bool)

let cas_plain ~domains ~w ~pick =
  let cells = Array.init w (fun _ -> Pad.make_int 0) in
  let seqs = Pad.flat_make domains 0 in
  fun ~pid ~i:_ ->
    let c = cells.(pick pid) in
    let cur = Atomic.get c in
    let s = seqs.(Pad.slot pid) + 1 in
    seqs.(Pad.slot pid) <- s;
    ignore (Atomic.compare_and_set c cur ((s lsl 13) lor pid) : bool)

let counter_reco ~domains ~w ~pick =
  let cells = Array.init w (fun _ -> Rcounter.Int.create ~nprocs:domains) in
  fun ~pid ~i:_ -> Rcounter.Int.inc cells.(pick pid) ~pid

let counter_plain ~domains ~w ~pick =
  let cells = Array.init w (fun _ -> Rcounter.Plain.create ~nprocs:domains) in
  fun ~pid ~i:_ -> Rcounter.Plain.inc cells.(pick pid) ~pid

let faa_reco ~domains ~w ~pick =
  let cells = Array.init w (fun _ -> Rfaa.Int.create ~nprocs:domains ()) in
  fun ~pid ~i:_ -> ignore (Rfaa.Int.faa cells.(pick pid) ~pid 1 : int)

let faa_plain ~domains:_ ~w ~pick =
  let cells = Array.init w (fun _ -> Pad.make_int 0) in
  fun ~pid ~i:_ -> ignore (Atomic.fetch_and_add cells.(pick pid) 1 : int)

let stack_reco ~domains ~w ~pick =
  let cells = Array.init w (fun _ -> Rstack.Int.create ~nprocs:domains ()) in
  fun ~pid ~i ->
    let c = cells.(pick pid) in
    if i land 1 = 0 then ignore (Rstack.Int.push c ~pid ((i lsl 13) lor pid) : int)
    else ignore (Rstack.Int.pop c ~pid : int)

let stack_plain ~domains:_ ~w ~pick =
  let cells = Array.init w (fun _ -> Plain_stack.create ()) in
  fun ~pid ~i ->
    let c = cells.(pick pid) in
    if i land 1 = 0 then Plain_stack.push c ((i lsl 13) lor pid)
    else ignore (Plain_stack.pop c : int option)

let builders =
  [
    ("cas", "recoverable", cas_reco);
    ("cas", "plain", cas_plain);
    ("counter", "recoverable", counter_reco);
    ("counter", "plain", counter_plain);
    ("faa", "recoverable", faa_reco);
    ("faa", "plain", faa_plain);
    ("stack", "recoverable", stack_reco);
    ("stack", "plain", stack_plain);
  ]

type config = { domains_list : int list; width : int; duration : float }

let default_config = { domains_list = [ 1; 2 ]; width = 1; duration = 0.5 }

let throughput_rows ~log cfg =
  List.concat_map
    (fun domains ->
      List.concat_map
        (fun (obj, impl, build) ->
          List.map
            (fun mode ->
              let w =
                match mode with
                | Contended -> cfg.width
                | Uncontended -> max domains cfg.width
              in
              let pick = mk_pick ~mode ~domains ~w in
              let body = build ~domains ~w ~pick in
              let t = Par.run_for ~domains ~duration:cfg.duration body in
              log
                (Printf.sprintf "  %-7s %-11s %-11s w=%-3d d=%-2d %12.0f ops/s"
                   obj impl (mode_name mode) w domains t.Par.t_ops_per_sec);
              {
                Bench_native_json.tp_object = obj;
                tp_impl = impl;
                tp_mode = mode_name mode;
                tp_width = w;
                tp_domains = domains;
                tp_ops = t.Par.t_total_ops;
                tp_seconds = t.Par.t_seconds;
                tp_ops_per_sec = t.Par.t_ops_per_sec;
              })
            [ Contended; Uncontended ])
        builders)
    cfg.domains_list

let run ?(log = fun (_ : string) -> ()) cfg =
  log "latency (single domain, median of calibrated batches):";
  let thunks = latency_thunks () in
  let latency =
    List.map
      (fun (name, f) ->
        let ns = estimate_ns f in
        log (Printf.sprintf "  %-32s %10.1f ns/op" name ns);
        { Bench_native_json.ns_name = name; ns_ns = ns })
      thunks
  in
  log "allocation (minor words per op):";
  let alloc_per_op =
    List.filter_map
      (fun (name, f) ->
        if not (List.mem name alloc_names) then None
        else begin
          let words = alloc_words_per_op f in
          log (Printf.sprintf "  %-32s %10.3f words/op" name words);
          Some { Bench_native_json.al_name = name; al_words = words }
        end)
      (latency_thunks ())
  in
  log
    (Printf.sprintf "throughput (%gs windows, contended width %d):" cfg.duration
       cfg.width);
  let throughput = throughput_rows ~log cfg in
  {
    Bench_native_json.domains_available = Domain.recommended_domain_count ();
    duration_s = cfg.duration;
    throughput;
    latency;
    alloc_per_op;
  }
