(* Cache-line padding primitives for the native backend.

   OCaml 5.1 has no [Atomic.make_contended]; the established idiom
   (multicore-magic) is to allocate an oversized block and reinterpret
   it as an ['a Atomic.t]: the atomic primitives operate on field 0 and
   the remaining words are dead padding, so two padded atomics never
   share a 64-byte cache line.  [Obj.new_block 0 words] initializes
   every field to the unit value, which is a valid immediate for both
   the [int] and the pointer cases. *)

let line_words = 8

let make_int (v : int) : int Atomic.t =
  let b = Obj.new_block 0 line_words in
  let a : int Atomic.t = Obj.magic b in
  Atomic.set a v;
  a

let make_any (v : 'a) : 'a Atomic.t =
  let b = Obj.new_block 0 line_words in
  let a : 'a Atomic.t = Obj.magic b in
  Atomic.set a v;
  a

let array_int n v = Array.init n (fun _ -> make_int v)

(* Flat int arrays with one logical slot per cache line.  Slot 0 of the
   backing array is skipped so a slot never shares a line with the
   array header, mirroring what a padded-atomic block does. *)

let stride = line_words

let[@inline] slot i = (i + 1) * stride

let flat_make n v = Array.make (slot n) v

(* Flattened n×n matrix, one padded slot per (row, col). *)
let[@inline] slot2 ~n row col = ((row * n) + col + 1) * stride

let flat2_make n v = Array.make (slot2 ~n n 0) v
