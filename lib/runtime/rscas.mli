(** Strict recoverable CAS on real multicore: {!Rcas} plus per-invocation
    tagged response persistence, mirroring the simulator's
    {!Objects.Scas_obj}.  The caller supplies a [seq] tag, distinct and
    non-negative across its invocations.  The [_cp] variants take the
    crash point positionally (optional re-passing allocates). *)

type 'a t = {
  c : (int * 'a) Atomic.t;  (** <last successful writer (-1 = null), value> *)
  r : 'a option Atomic.t array array;  (** helping matrix *)
  res : (int * bool) Atomic.t array;  (** per-process <seq, ret> *)
  nprocs : int;
}

val null_id : int
val create : nprocs:int -> 'a -> 'a t
val read : ?cp:Crash.t -> 'a t -> 'a

val read_content : ?cp:Crash.t -> 'a t -> int * 'a
(** The full <id, value> content, for retry loops that CAS on the
    physical content. *)

val persist : ?cp:Crash.t -> 'a t -> pid:int -> seq:int -> bool -> bool
(** Persist [<seq, ret>] into [res.(pid)], returning [ret]. *)

val cas : ?cp:Crash.t -> 'a t -> pid:int -> old:'a -> new_:'a -> seq:int -> bool
(** Algorithm 2's CAS, persisting [<seq, ret>] before returning. *)

val cas_content :
  ?cp:Crash.t -> 'a t -> pid:int -> content:int * 'a -> new_:'a -> seq:int -> bool
(** Like {!cas} but from a content previously obtained with
    {!read_content} (OCaml's [Atomic.compare_and_set] is physical). *)

val cas_recover : ?cp:Crash.t -> 'a t -> pid:int -> old:'a -> new_:'a -> seq:int -> bool
(** [CAS.RECOVER]: answer from the persisted verdict or the evidence, or
    re-execute. *)

val outcome : ?cp:Crash.t -> 'a t -> pid:int -> new_:'a -> seq:int -> bool option
(** Evidence-only verdict for the invocation tagged [seq]: [Some r] if
    the persisted response, [C]'s contents or the helping row decide it
    (persisting on the way out); [None] when there is no evidence — by
    Lemma 3's argument the cas then never took effect.  Nesting callers'
    recoveries need this (the machine gets it from the recovery cascade;
    native code must ask). *)

val read_content_cp : Crash.t -> 'a t -> int * 'a
val cas_content_cp : Crash.t -> 'a t -> pid:int -> content:int * 'a -> new_:'a -> seq:int -> bool
val outcome_cp : Crash.t -> 'a t -> pid:int -> new_:'a -> seq:int -> bool option

(** Unboxed int specialization: packed <id, value> content in one padded
    atomic; flat stride-padded plain helping matrix (memory-model
    argument in rcas.ml); [res] as plain padded slots (owner-only
    state).  Allocation-free on every path; values 48-bit signed. *)
module Int : sig
  type t = {
    c : int Atomic.t;
    r : int array;
    res : int array;
    nprocs : int;
  }

  val create : nprocs:int -> int -> t
  val read : ?cp:Crash.t -> t -> int

  val read_content : ?cp:Crash.t -> t -> int
  (** The packed <id, value> content — itself the retry-loop token
      ([Enc.value]/[Enc.id] decode it). *)

  val persist : ?cp:Crash.t -> t -> pid:int -> seq:int -> bool -> bool
  val cas : ?cp:Crash.t -> t -> pid:int -> old:int -> new_:int -> seq:int -> bool

  val cas_content :
    ?cp:Crash.t -> t -> pid:int -> content:int -> new_:int -> seq:int -> bool

  val cas_recover :
    ?cp:Crash.t -> t -> pid:int -> old:int -> new_:int -> seq:int -> bool

  val outcome : ?cp:Crash.t -> t -> pid:int -> new_:int -> seq:int -> bool option
  val read_cp : Crash.t -> t -> int
  val read_content_cp : Crash.t -> t -> int

  val cas_content_cp :
    Crash.t -> t -> pid:int -> content:int -> new_:int -> seq:int -> bool

  val outcome_cp : Crash.t -> t -> pid:int -> new_:int -> seq:int -> bool option
end
