(** Algorithm 2 on real multicore: recoverable CAS object over OCaml 5
    [Atomic] cells.

    [C] holds [<id, val>] where [id = -1] encodes the paper's [null]; the
    [N x N] helping matrix [R] holds value options.  Assumptions as in the
    paper: never [old = new], per-process distinct new values. *)

type 'a t = {
  c : (int * 'a) Atomic.t;  (** <last successful writer (-1 = null), value> *)
  r : 'a option Atomic.t array array;  (** helping matrix *)
  nprocs : int;
}

let null_id = -1

let create ~nprocs init =
  {
    c = Atomic.make (null_id, init);
    r = Array.init nprocs (fun _ -> Array.init nprocs (fun _ -> Atomic.make None));
    nprocs;
  }

let read ?(cp = Crash.none) t =
  Crash.point cp;
  snd (Atomic.get t.c)  (* line 10 *)

let read_recover ?cp t = read ?cp t

let rec cas ?(cp = Crash.none) t ~pid ~old ~new_ =
  Crash.point cp;
  let (id, v) as content = Atomic.get t.c in  (* line 2 *)
  if v <> old then false  (* lines 3-4 *)
  else begin
    if id <> null_id then begin
      Crash.point cp;
      t.r.(id).(pid) |> fun cell -> Atomic.set cell (Some v)  (* lines 5-6 *)
    end;
    Crash.point cp;
    Atomic.compare_and_set t.c content (pid, new_)  (* lines 7-8 *)
  end

and cas_recover ?(cp = Crash.none) t ~pid ~old ~new_ =
  Crash.point cp;
  (* line 13, left term first *)
  if Atomic.get t.c = (pid, new_) then true
  else begin
    let found = ref false in
    let j = ref 0 in
    while (not !found) && !j < t.nprocs do
      Crash.point cp;
      (match Atomic.get t.r.(pid).(!j) with
      | Some v when v = new_ -> found := true
      | _ -> ());
      incr j
    done;
    if !found then true  (* line 14 *)
    else cas ~cp t ~pid ~old ~new_  (* line 16: proceed from line 2 *)
  end

(** Baseline: plain (non-recoverable) CAS object with the same interface. *)
module Plain = struct
  type 'a t = 'a Atomic.t

  let create init = Atomic.make init
  let read t = Atomic.get t
  let cas t ~old ~new_ = Atomic.compare_and_set t old new_
end
