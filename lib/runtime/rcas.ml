(** Algorithm 2 on real multicore: recoverable CAS object over OCaml 5
    [Atomic] cells.

    [C] holds [<id, val>] where [id = -1] encodes the paper's [null]; the
    [N x N] helping matrix [R] holds value options.  Assumptions as in the
    paper: never [old = new], per-process distinct new values.

    {!Int} is the unboxed specialization: content packed into one int
    ({!Enc}), the helping matrix flattened into a stride-padded plain
    array.  Why plain cells are sound under the OCaml memory model: a
    helper's write to [R[id][q]] program-precedes its CAS on [C], and
    every update of [C] is a successful CAS — an atomic RMW.  A
    recovering process reads [C] atomically; if its value is gone from
    [C], the overwriter's successful CAS is in [C]'s RMW chain, so the
    read happens-after it, and transitively happens-after the
    overwriter's earlier plain help write.  Evidence the recovery needs
    is thus always visible; help entries of {e failed} CAS attempts may
    be stale, but those are never needed (if the value is gone, the
    successful overwriter's entry decides). *)

(* Local [@inline] copies of the hot one-liners: dev builds compile with
   -opaque, which turns every cross-module call (Crash.point, Pad.slot2,
   the Enc packing) into an indirect call through the module block, so
   the shared definitions cannot inline here.  Mirror crash.ml / pad.ml
   / enc.ml exactly. *)
let[@inline] point (cp : Crash.t) = if cp.Crash.live then Crash.slow_point cp
let[@inline] slot2 ~n row col = ((row * n) + col + 1) lsl 3
let[@inline] pack ~id v = ((id + 1) lsl 48) lor (v land ((1 lsl 48) - 1))
let[@inline] value c = (c lsl 15) asr 15
let[@inline] id_of c = (c lsr 48) - 1

type 'a t = {
  c : (int * 'a) Atomic.t;  (** <last successful writer (-1 = null), value> *)
  r : 'a option Atomic.t array array;  (** helping matrix *)
  nprocs : int;
}

let null_id = -1

let create ~nprocs init =
  {
    c = Atomic.make (null_id, init);
    r = Array.init nprocs (fun _ -> Array.init nprocs (fun _ -> Atomic.make None));
    nprocs;
  }

let[@inline] read_cp cp t =
  point cp;
  snd (Atomic.get t.c)  (* line 10 *)

let read ?(cp = Crash.none) t = read_cp cp t
let read_recover ?(cp = Crash.none) t = read_cp cp t

let cas_cp cp t ~pid ~old ~new_ =
  point cp;
  let (id, v) as content = Atomic.get t.c in  (* line 2 *)
  if v <> old then false  (* lines 3-4 *)
  else begin
    if id <> null_id then begin
      point cp;
      Atomic.set t.r.(id).(pid) (Some v)  (* lines 5-6 *)
    end;
    point cp;
    Atomic.compare_and_set t.c content (pid, new_)  (* lines 7-8 *)
  end

let cas_recover_cp cp t ~pid ~old ~new_ =
  point cp;
  (* line 13, left term first *)
  if Atomic.get t.c = (pid, new_) then true
  else begin
    let found = ref false in
    let j = ref 0 in
    while (not !found) && !j < t.nprocs do
      point cp;
      (match Atomic.get t.r.(pid).(!j) with
      | Some v when v = new_ -> found := true
      | _ -> ());
      incr j
    done;
    if !found then true  (* line 14 *)
    else cas_cp cp t ~pid ~old ~new_  (* line 16: proceed from line 2 *)
  end

let cas ?(cp = Crash.none) t ~pid ~old ~new_ = cas_cp cp t ~pid ~old ~new_
let cas_recover ?(cp = Crash.none) t ~pid ~old ~new_ = cas_recover_cp cp t ~pid ~old ~new_

(** Baseline: plain (non-recoverable) CAS object with the same interface. *)
module Plain = struct
  type 'a t = 'a Atomic.t

  let create init = Atomic.make init
  let read t = Atomic.get t
  let cas t ~old ~new_ = Atomic.compare_and_set t old new_
end

(** Unboxed int specialization: [C] is one padded atomic holding the
    packed <id, value> ({!Enc.pack}); the helping matrix is a flat
    stride-padded {e plain} int array ([Enc.none] = no evidence) — see
    the memory-model argument above.  Allocation-free on every path;
    values are 48-bit signed. *)
module Int = struct
  type t = {
    c : int Atomic.t;  (** packed <id, value> *)
    r : int array;  (** flat padded helping matrix, [Enc.none] = empty *)
    nprocs : int;
  }

  let create ~nprocs init =
    Enc.check_nprocs nprocs;
    {
      c = Pad.make_int (pack ~id:null_id init);
      r = Pad.flat2_make nprocs Enc.none;
      nprocs;
    }

  let[@inline] read_cp cp t =
    point cp;
    value (Atomic.get t.c)

  let read ?(cp = Crash.none) t = read_cp cp t
  let read_recover ?(cp = Crash.none) t = read_cp cp t

  let cas_cp cp t ~pid ~old ~new_ =
    point cp;
    let content = Atomic.get t.c in  (* line 2 *)
    let v = value content in
    if v <> old then false  (* lines 3-4 *)
    else begin
      let id = id_of content in
      if id >= 0 then begin
        point cp;
        t.r.(slot2 ~n:t.nprocs id pid) <- v  (* lines 5-6, plain help write *)
      end;
      point cp;
      Atomic.compare_and_set t.c content (pack ~id:pid new_)  (* lines 7-8 *)
    end

  let cas_recover_cp cp t ~pid ~old ~new_ =
    point cp;
    if Atomic.get t.c = pack ~id:pid new_ then true  (* line 13, left term *)
    else begin
      let found = ref false in
      let j = ref 0 in
      while (not !found) && !j < t.nprocs do
        point cp;
        if t.r.(slot2 ~n:t.nprocs pid !j) = new_ then found := true;
        incr j
      done;
      if !found then true  (* line 14 *)
      else cas_cp cp t ~pid ~old ~new_  (* line 16 *)
    end

  let cas ?(cp = Crash.none) t ~pid ~old ~new_ = cas_cp cp t ~pid ~old ~new_

  let cas_recover ?(cp = Crash.none) t ~pid ~old ~new_ =
    cas_recover_cp cp t ~pid ~old ~new_
end
