(** Recoverable Treiber stack on real multicore, nested on the strict CAS
    ({!Rscas}) — the native counterpart of the simulator's
    {!Objects.Stack_obj}.

    The whole stack lives in the CAS cell as a stamped immutable list;
    the stamp [(pid, seq)] makes contents writer-unique (distinct-values
    assumption, ABA immunity).  Responses are encoded as ['a option]
    ([None] = empty).  The [committed] flag is the wrapper-preserved
    commit marker, as in {!Rfaa}. *)

type 'a response = Pushed | Popped of 'a | Empty

type 'a t = {
  c : ((int * int) * 'a list) Rscas.t;
  seq : int Atomic.t array;
  att : (int * ('a response * ((int * int) * 'a list))) Atomic.t array;
      (** <seq, (would-be response, value the attempt CASes in)> — the new
          value is needed by the recovery's CAS-level evidence check *)
  own : (int * 'a response) Atomic.t array;  (** <seq, response> *)
  nprocs : int;
}

let create ~nprocs () =
  {
    c = Rscas.create ~nprocs ((Rscas.null_id, 0), []);
    seq = Array.init nprocs (fun _ -> Atomic.make 0);
    att = Array.init nprocs (fun _ -> Atomic.make (-1, (Empty, ((Rscas.null_id, 0), []))));
    own = Array.init nprocs (fun _ -> Atomic.make (-1, Empty));
    nprocs;
  }

let peek ?cp t = match snd (Rscas.read ?cp t.c) with x :: _ -> Some x | [] -> None

let commit_tag ?(cp = Crash.none) t ~pid ~committed =
  Crash.point cp;
  let s = Atomic.get t.seq.(pid) + 1 in
  Crash.point cp;
  Atomic.set t.seq.(pid) s;
  (match committed with Some r -> r := true | None -> ());
  s

let finish ?(cp = Crash.none) t ~pid ~s resp =
  Crash.point cp;
  Atomic.set t.own.(pid) (s, resp);
  resp

let rec push ?(cp = Crash.none) ?committed t ~pid x =
  (match committed with Some r -> r := false | None -> ());
  let s = commit_tag ~cp t ~pid ~committed in
  let ((_, (_, l)) as content) = Rscas.read_content ~cp t.c in
  let new_ = ((pid, s), x :: l) in
  Crash.point cp;
  Atomic.set t.att.(pid) (s, (Pushed, new_));
  if Rscas.cas_content ~cp t.c ~pid ~content ~new_ ~seq:s then finish ~cp t ~pid ~s Pushed
  else push ~cp ?committed t ~pid x

let rec pop ?(cp = Crash.none) ?committed t ~pid =
  (match committed with Some r -> r := false | None -> ());
  let s = commit_tag ~cp t ~pid ~committed in
  let ((_, (_, l)) as content) = Rscas.read_content ~cp t.c in
  match l with
  | [] -> finish ~cp t ~pid ~s Empty
  | x :: tl ->
    let new_ = ((pid, s), tl) in
    Crash.point cp;
    Atomic.set t.att.(pid) (s, (Popped x, new_));
    if Rscas.cas_content ~cp t.c ~pid ~content ~new_ ~seq:s then
      finish ~cp t ~pid ~s (Popped x)
    else pop ~cp ?committed t ~pid

(* the shared recovery: decide the latest attempt's fate from the
   persisted tags, asking the CAS level for evidence when the crash may
   have hit between the physical cas and the response persistence;
   otherwise re-execute *)
let recover_with ?(cp = Crash.none) ~committed ~redo t ~pid =
  if not committed then redo ()
  else begin
    Crash.point cp;
    let s = Atomic.get t.seq.(pid) in
    Crash.point cp;
    let os, ov = Atomic.get t.own.(pid) in
    if os = s then ov
    else begin
      Crash.point cp;
      let ats, (aresp, anew) = Atomic.get t.att.(pid) in
      if ats <> s then redo ()
      else begin
        match Rscas.outcome ~cp t.c ~pid ~new_:anew ~seq:s with
        | Some true -> finish ~cp t ~pid ~s aresp
        | Some false | None -> redo ()
      end
    end
  end

let push_recover ?(cp = Crash.none) ?(committed = true) t ~pid x =
  recover_with ~cp ~committed ~redo:(fun () -> push ~cp t ~pid x) t ~pid

let pop_recover ?(cp = Crash.none) ?(committed = true) t ~pid =
  recover_with ~cp ~committed ~redo:(fun () -> pop ~cp t ~pid) t ~pid
