(** Recoverable Treiber stack on real multicore, nested on the strict CAS
    ({!Rscas}) — the native counterpart of the simulator's
    {!Objects.Stack_obj}.

    The whole stack lives in the CAS cell as a stamped immutable list;
    the stamp [(pid, seq)] makes contents writer-unique (distinct-values
    assumption, ABA immunity).  Responses are encoded as ['a option]
    ([None] = empty).  The [committed] flag is the wrapper-preserved
    commit marker, as in {!Rfaa}. *)

(* Local [@inline] copies of the hot one-liners: dev builds compile with
   -opaque, which turns every cross-module call (Crash.point, the Pad
   slot arithmetic, the Enc response packing) into an indirect call
   through the module block, so the shared definitions cannot inline
   here.  Mirror crash.ml / pad.ml / enc.ml exactly. *)
let[@inline] point (cp : Crash.t) = if cp.Crash.live then Crash.slow_point cp
let[@inline] slot p = (p + 1) lsl 3
let[@inline] slot2 ~n row col = ((row * n) + col + 1) lsl 3
let[@inline] res_pack ~seq ret = (seq lsl 1) lor (if ret then 1 else 0)
let[@inline] res_seq r = r asr 1
let[@inline] res_ret r = r land 1 = 1
let max_procs = 8191  (* = Enc.max_procs, the 13-bit stamp pid mask *)

type 'a response = Pushed | Popped of 'a | Empty

type 'a t = {
  c : ((int * int) * 'a list) Rscas.t;
  seq : int Atomic.t array;
  att : (int * ('a response * ((int * int) * 'a list))) Atomic.t array;
      (** <seq, (would-be response, value the attempt CASes in)> — the new
          value is needed by the recovery's CAS-level evidence check *)
  own : (int * 'a response) Atomic.t array;  (** <seq, response> *)
  nprocs : int;
}

let create ~nprocs () =
  {
    c = Rscas.create ~nprocs ((Rscas.null_id, 0), []);
    seq = Array.init nprocs (fun _ -> Atomic.make 0);
    att = Array.init nprocs (fun _ -> Atomic.make (-1, (Empty, ((Rscas.null_id, 0), []))));
    own = Array.init nprocs (fun _ -> Atomic.make (-1, Empty));
    nprocs;
  }

let peek ?cp t = match snd (Rscas.read ?cp t.c) with x :: _ -> Some x | [] -> None

let commit_tag_cp cp t ~pid ~committed =
  point cp;
  let s = Atomic.get t.seq.(pid) + 1 in
  point cp;
  Atomic.set t.seq.(pid) s;
  (match committed with Some r -> r := true | None -> ());
  s

let finish_cp cp t ~pid ~s resp =
  point cp;
  Atomic.set t.own.(pid) (s, resp);
  resp

let rec push_cp cp committed t ~pid x =
  (match committed with Some r -> r := false | None -> ());
  let s = commit_tag_cp cp t ~pid ~committed in
  let ((_, (_, l)) as content) = Rscas.read_content_cp cp t.c in
  let new_ = ((pid, s), x :: l) in
  point cp;
  Atomic.set t.att.(pid) (s, (Pushed, new_));
  if Rscas.cas_content_cp cp t.c ~pid ~content ~new_ ~seq:s then
    finish_cp cp t ~pid ~s Pushed
  else push_cp cp committed t ~pid x

let rec pop_cp cp committed t ~pid =
  (match committed with Some r -> r := false | None -> ());
  let s = commit_tag_cp cp t ~pid ~committed in
  let ((_, (_, l)) as content) = Rscas.read_content_cp cp t.c in
  match l with
  | [] -> finish_cp cp t ~pid ~s Empty
  | x :: tl ->
    let new_ = ((pid, s), tl) in
    point cp;
    Atomic.set t.att.(pid) (s, (Popped x, new_));
    if Rscas.cas_content_cp cp t.c ~pid ~content ~new_ ~seq:s then
      finish_cp cp t ~pid ~s (Popped x)
    else pop_cp cp committed t ~pid

let push ?(cp = Crash.none) ?committed t ~pid x = push_cp cp committed t ~pid x
let pop ?(cp = Crash.none) ?committed t ~pid = pop_cp cp committed t ~pid

(* the shared recovery: decide the latest attempt's fate from the
   persisted tags, asking the CAS level for evidence when the crash may
   have hit between the physical cas and the response persistence;
   otherwise re-execute *)
let recover_with ?(cp = Crash.none) ~committed ~redo t ~pid =
  if not committed then redo ()
  else begin
    point cp;
    let s = Atomic.get t.seq.(pid) in
    point cp;
    let os, ov = Atomic.get t.own.(pid) in
    if os = s then ov
    else begin
      point cp;
      let ats, (aresp, anew) = Atomic.get t.att.(pid) in
      if ats <> s then redo ()
      else begin
        match Rscas.outcome_cp cp t.c ~pid ~new_:anew ~seq:s with
        | Some true -> finish_cp cp t ~pid ~s aresp
        | Some false | None -> redo ()
      end
    end
  end

let push_recover ?(cp = Crash.none) ?(committed = true) t ~pid x =
  recover_with ~cp ~committed ~redo:(fun () -> push_cp cp None t ~pid x) t ~pid

let pop_recover ?(cp = Crash.none) ?(committed = true) t ~pid =
  recover_with ~cp ~committed ~redo:(fun () -> pop_cp cp None t ~pid) t ~pid

(** Unboxed int specialization.  The list is a chain of immutable
    two-field nodes ending in the cyclic [nil] sentinel, reached through
    a freshly-allocated stamped [head] record — the head's
    [stamp = (seq lsl 13) lor pid] is what makes every installed content
    writer-unique (a pop cannot install the predecessor node directly:
    identity and recovery evidence live in the stamp).  The strict-CAS
    layer is inlined and specialized: physical CAS on the head pointer,
    helping matrix of head pointers in flat padded plain cells,
    <seq, ret> responses and per-process [seq]/[att]/[own] metadata in
    plain padded int slots (owner-only / helping-publication arguments
    as in rcas.ml).  Stamp equality replaces structural content
    comparison everywhere, so evidence checks are integer compares.
    Responses are packed ints ({!resp_pushed}, {!resp_empty},
    [Popped v] = [(v lsl 2) lor 2]); a push+pop pair allocates three
    small blocks (node + two heads) and nothing else. *)
module Int = struct
  type node = { nv : int; next : node }

  let rec nil = { nv = 0; next = nil }

  type head = { stamp : int; top : node }
  (** [stamp < 0]: initial content (the paper's null writer) *)

  let no_evidence = { stamp = min_int; top = nil }

  type t = {
    c : head Atomic.t;  (** padded *)
    r : head array;  (** flat padded helping matrix, [no_evidence] = empty *)
    res : int array;  (** plain padded, packed <seq, ret> *)
    meta : int array;  (** flat padded: seq, att_seq, att_resp, own_seq, own_resp *)
    nprocs : int;
  }

  let resp_pushed = 0
  let resp_empty = 1
  let[@inline] resp_popped v = (v lsl 2) lor 2

  let decode r = if r = 0 then Pushed else if r = 1 then Empty else Popped (r asr 2)

  let create ~nprocs () =
    Enc.check_nprocs nprocs;
    let meta = Pad.flat_make nprocs 0 in
    for p = 0 to nprocs - 1 do
      let b = slot p in
      meta.(b + 1) <- -1;
      (* att_seq *)
      meta.(b + 3) <- -1 (* own_seq *)
    done;
    {
      c = Pad.make_any { stamp = -1; top = nil };
      r = Array.make (slot2 ~n:nprocs nprocs 0) no_evidence;
      res = Pad.flat_make nprocs Enc.res_none;
      meta;
      nprocs;
    }

  let[@inline] id_of h = if h.stamp < 0 then -1 else h.stamp land max_procs

  let peek ?(cp = Crash.none) t =
    point cp;
    let h = Atomic.get t.c in
    if h.top == nil then None else Some h.top.nv

  (* the inlined strict-CAS step: help, physical CAS, persist <seq, ret> *)
  let[@inline] cas_head_cp cp t ~pid ~(h : head) ~(nh : head) ~s =
    let id = id_of h in
    if id >= 0 then begin
      point cp;
      t.r.(slot2 ~n:t.nprocs id pid) <- h
    end;
    point cp;
    let ok = Atomic.compare_and_set t.c h nh in
    point cp;
    t.res.(slot pid) <- res_pack ~seq:s ok;
    ok

  let[@inline] finish_cp cp t ~b ~s resp =
    point cp;
    t.meta.(b + 4) <- resp;
    t.meta.(b + 3) <- s;
    resp

  let rec push_cp cp committed t ~pid x =
    (match committed with Some r -> r := false | None -> ());
    let b = slot pid in
    point cp;
    let s = t.meta.(b) + 1 in
    point cp;
    t.meta.(b) <- s;
    (match committed with Some r -> r := true | None -> ());
    point cp;
    let h = Atomic.get t.c in
    let nh = { stamp = (s lsl 13) lor pid; top = { nv = x; next = h.top } } in
    point cp;
    t.meta.(b + 2) <- resp_pushed;
    t.meta.(b + 1) <- s;
    if cas_head_cp cp t ~pid ~h ~nh ~s then finish_cp cp t ~b ~s resp_pushed
    else push_cp cp committed t ~pid x

  let rec pop_cp cp committed t ~pid =
    (match committed with Some r -> r := false | None -> ());
    let b = slot pid in
    point cp;
    let s = t.meta.(b) + 1 in
    point cp;
    t.meta.(b) <- s;
    (match committed with Some r -> r := true | None -> ());
    point cp;
    let h = Atomic.get t.c in
    if h.top == nil then finish_cp cp t ~b ~s resp_empty
    else begin
      let x = h.top.nv in
      let nh = { stamp = (s lsl 13) lor pid; top = h.top.next } in
      let resp = resp_popped x in
      point cp;
      t.meta.(b + 2) <- resp;
      t.meta.(b + 1) <- s;
      if cas_head_cp cp t ~pid ~h ~nh ~s then finish_cp cp t ~b ~s resp
      else pop_cp cp committed t ~pid
    end

  let push ?(cp = Crash.none) ?committed t ~pid x = push_cp cp committed t ~pid x
  let pop ?(cp = Crash.none) ?committed t ~pid = pop_cp cp committed t ~pid

  (* evidence-only verdict for the attempt stamped <pid, s>: the
     persisted <seq, ret>, the head in C, or the helping row decide;
     None = the CAS never took effect (Lemma 3) *)
  let outcome_cp cp t ~pid ~s =
    let stamp = (s lsl 13) lor pid in
    point cp;
    let res = t.res.(slot pid) in
    if res_seq res = s then Some (res_ret res)
    else begin
      point cp;
      if (Atomic.get t.c).stamp = stamp then begin
        point cp;
        t.res.(slot pid) <- res_pack ~seq:s true;
        Some true
      end
      else begin
        let found = ref false in
        for j = 0 to t.nprocs - 1 do
          point cp;
          if t.r.(slot2 ~n:t.nprocs pid j).stamp = stamp then found := true
        done;
        if !found then begin
          point cp;
          t.res.(slot pid) <- res_pack ~seq:s true;
          Some true
        end
        else None
      end
    end

  let recover_with cp ~committed ~redo t ~pid =
    if not committed then redo ()
    else begin
      let b = slot pid in
      point cp;
      let s = t.meta.(b) in
      point cp;
      if t.meta.(b + 3) = s then t.meta.(b + 4)
      else begin
        point cp;
        if t.meta.(b + 1) <> s then redo ()
        else begin
          let aresp = t.meta.(b + 2) in
          match outcome_cp cp t ~pid ~s with
          | Some true -> finish_cp cp t ~b ~s aresp
          | Some false | None -> redo ()
        end
      end
    end

  let push_recover ?(cp = Crash.none) ?(committed = true) t ~pid x =
    recover_with cp ~committed ~redo:(fun () -> push_cp cp None t ~pid x) t ~pid

  let pop_recover ?(cp = Crash.none) ?(committed = true) t ~pid =
    recover_with cp ~committed ~redo:(fun () -> pop_cp cp None t ~pid) t ~pid
end
