(** Algorithm 1 on real multicore: recoverable read/write register over
    OCaml 5 [Atomic] cells.

    Values are polymorphic and compared structurally; as in the paper, all
    values written must be distinct (tag them with writer id and sequence
    number — see {!Rvalue}).  Each shared access is preceded by a crash
    point so single-process recovery drills can abort the operation at any
    position and then run [write_recover]/[read_recover].

    Internal call chains take the crash point as an explicit argument:
    re-passing an optional [?cp] re-boxes it in a fresh [Some] on every
    call, which would put an allocation on every hot-path operation.
    The public [?cp] wrappers remain for the drills.  {!Int} is the
    unboxed specialization the derived int objects build on. *)

(* Local [@inline] copies of the hot one-liners: dev builds compile with
   -opaque, which turns every cross-module call (Crash.point, Pad.slot)
   into an indirect call through the module block, so the shared
   definitions cannot inline here.  Mirror crash.ml / pad.ml exactly. *)
let[@inline] point (cp : Crash.t) = if cp.Crash.live then Crash.slow_point cp
let[@inline] slot p = (p + 1) lsl 3

type 'a t = {
  r : 'a Atomic.t;
  s : (int * 'a) Atomic.t array;  (** [S_p]: <flag, previous value> *)
}

let create ~nprocs init =
  { r = Atomic.make init; s = Array.init nprocs (fun _ -> Atomic.make (0, init)) }

let[@inline] read_cp cp t =
  point cp;
  Atomic.get t.r  (* line 8 *)

let read ?(cp = Crash.none) t = read_cp cp t
let read_recover ?(cp = Crash.none) t = read_cp cp t

let write_cp cp t ~pid v =
  point cp;
  let temp = Atomic.get t.r in  (* line 2 *)
  point cp;
  Atomic.set t.s.(pid) (1, temp);  (* line 3 *)
  point cp;
  Atomic.set t.r v;  (* line 4 *)
  point cp;
  Atomic.set t.s.(pid) (0, v)  (* line 5 *)

let write_recover_cp cp t ~pid v =
  point cp;
  let flag, curr = Atomic.get t.s.(pid) in  (* line 11 *)
  if flag = 0 && curr <> v then write_cp cp t ~pid v  (* lines 12-13 *)
  else begin
    point cp;
    if flag = 1 && curr = Atomic.get t.r then write_cp cp t ~pid v  (* lines 14-15 *)
    else begin
      point cp;
      Atomic.set t.s.(pid) (0, v)  (* line 16 *)
    end
  end

let write ?(cp = Crash.none) t ~pid v = write_cp cp t ~pid v
let write_recover ?(cp = Crash.none) t ~pid v = write_recover_cp cp t ~pid v

(** Baseline: plain (non-recoverable) register with the same interface. *)
module Plain = struct
  type 'a t = 'a Atomic.t

  let create init = Atomic.make init
  let read t = Atomic.get t
  let write t v = Atomic.set t v
end

(** Unboxed int specialization.  [S_p] packs <flag, previous value> as
    [(prev lsl 1) lor flag] in a {e plain} (non-atomic) padded slot:
    Algorithm 1's [S_p] is written and read only by process [p] itself
    (its recovery runs on the same domain — a crash is an in-domain
    exception), so no cross-domain visibility is required and the write
    costs a plain store instead of a fenced one.  [R] is a padded
    atomic.  Values must fit 62-bit signed ints (the flag steals one
    bit). *)
module Int = struct
  type t = {
    r : int Atomic.t;
    s : int array;  (** plain padded slots, [(prev lsl 1) lor flag] *)
  }

  let create ~nprocs init =
    Enc.check_nprocs nprocs;
    { r = Pad.make_int init; s = Pad.flat_make nprocs (init lsl 1) }

  let[@inline] read_cp cp t =
    point cp;
    Atomic.get t.r

  let read ?(cp = Crash.none) t = read_cp cp t
  let read_recover ?(cp = Crash.none) t = read_cp cp t

  let write_cp cp t ~pid v =
    point cp;
    let temp = Atomic.get t.r in  (* line 2 *)
    point cp;
    t.s.(slot pid) <- (temp lsl 1) lor 1;  (* line 3 *)
    point cp;
    Atomic.set t.r v;  (* line 4 *)
    point cp;
    t.s.(slot pid) <- v lsl 1  (* line 5 *)

  let write_recover_cp cp t ~pid v =
    point cp;
    let sp = t.s.(slot pid) in  (* line 11 *)
    let flag = sp land 1 and curr = sp asr 1 in
    if flag = 0 && curr <> v then write_cp cp t ~pid v  (* lines 12-13 *)
    else begin
      point cp;
      if flag = 1 && curr = Atomic.get t.r then write_cp cp t ~pid v  (* lines 14-15 *)
      else begin
        point cp;
        t.s.(slot pid) <- v lsl 1  (* line 16 *)
      end
    end

  let write ?(cp = Crash.none) t ~pid v = write_cp cp t ~pid v
  let write_recover ?(cp = Crash.none) t ~pid v = write_recover_cp cp t ~pid v
end
