(** Algorithm 1 on real multicore: recoverable read/write register over
    OCaml 5 [Atomic] cells.

    Values are polymorphic and compared structurally; as in the paper, all
    values written must be distinct (tag them with writer id and sequence
    number — see {!Rvalue}).  Each shared access is preceded by a crash
    point so single-process recovery drills can abort the operation at any
    position and then run [write_recover]/[read_recover]. *)

type 'a t = {
  r : 'a Atomic.t;
  s : (int * 'a) Atomic.t array;  (** [S_p]: <flag, previous value> *)
}

let create ~nprocs init =
  { r = Atomic.make init; s = Array.init nprocs (fun _ -> Atomic.make (0, init)) }

let read ?(cp = Crash.none) t =
  Crash.point cp;
  Atomic.get t.r  (* line 8 *)

let read_recover ?cp t = read ?cp t

let rec write ?(cp = Crash.none) t ~pid v =
  Crash.point cp;
  let temp = Atomic.get t.r in  (* line 2 *)
  Crash.point cp;
  Atomic.set t.s.(pid) (1, temp);  (* line 3 *)
  Crash.point cp;
  Atomic.set t.r v;  (* line 4 *)
  Crash.point cp;
  Atomic.set t.s.(pid) (0, v)  (* line 5 *)

and write_recover ?(cp = Crash.none) t ~pid v =
  Crash.point cp;
  let flag, curr = Atomic.get t.s.(pid) in  (* line 11 *)
  if flag = 0 && curr <> v then write ~cp t ~pid v  (* lines 12-13 *)
  else begin
    Crash.point cp;
    if flag = 1 && curr = Atomic.get t.r then write ~cp t ~pid v  (* lines 14-15 *)
    else begin
      Crash.point cp;
      Atomic.set t.s.(pid) (0, v)  (* line 16 *)
    end
  end

(** Baseline: plain (non-recoverable) register with the same interface. *)
module Plain = struct
  type 'a t = 'a Atomic.t

  let create init = Atomic.make init
  let read t = Atomic.get t
  let write t v = Atomic.set t v
end
