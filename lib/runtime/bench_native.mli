(** The native benchmark suite behind [nrlsim bench-native]:
    single-domain latency and allocation rows plus the memento-style
    contended/uncontended throughput sweep.  Hand-rolled on the
    monotonic {!Obs.Clock} — no bechamel dependency.  See
    docs/native.md for the methodology. *)

val estimate_ns : ?repeats:int -> ?min_batch_ns:int -> (unit -> unit) -> float
(** Median ns/op over [repeats] batches, each calibrated (by doubling)
    to run at least [min_batch_ns] of wall clock. *)

val alloc_words_per_op : ?iters:int -> (unit -> unit) -> float
(** Minor-heap words allocated per call of the thunk ([Gc.minor_words]
    delta over [iters] calls, after a warm-up). *)

type config = {
  domains_list : int list;  (** worker-domain counts to sweep *)
  width : int;  (** contention-array width of the contended mode *)
  duration : float;  (** seconds per throughput cell *)
}

val default_config : config

val run : ?log:(string -> unit) -> config -> Bench_native_json.t
(** The full suite: latency rows, alloc rows, then one throughput cell
    per (object, impl, mode, domains).  [log] receives human-readable
    progress lines as rows complete.  [domains_available] in the result
    is this host's honest [Domain.recommended_domain_count ()]. *)
