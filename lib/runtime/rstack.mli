(** Recoverable Treiber stack on real multicore, nested on {!Rscas}; the
    whole stack lives in the CAS cell as a writer-stamped immutable
    list. *)

type 'a response = Pushed | Popped of 'a | Empty

type 'a t = {
  c : ((int * int) * 'a list) Rscas.t;
  seq : int Atomic.t array;
  att : (int * ('a response * ((int * int) * 'a list))) Atomic.t array;
  own : (int * 'a response) Atomic.t array;
  nprocs : int;
}

val create : nprocs:int -> unit -> 'a t
val peek : ?cp:Crash.t -> 'a t -> 'a option
val push : ?cp:Crash.t -> ?committed:bool ref -> 'a t -> pid:int -> 'a -> 'a response
val pop : ?cp:Crash.t -> ?committed:bool ref -> 'a t -> pid:int -> 'a response

val push_recover :
  ?cp:Crash.t -> ?committed:bool -> 'a t -> pid:int -> 'a -> 'a response

val pop_recover : ?cp:Crash.t -> ?committed:bool -> 'a t -> pid:int -> 'a response

(** Unboxed int specialization: immutable node chain behind a
    freshly-allocated stamped head record per installed content
    ([stamp = (seq lsl 13) lor pid] keeps contents writer-unique), the
    strict-CAS layer inlined with physical CAS on the head pointer and
    stamp-equality evidence checks.  Responses are packed ints; a
    push+pop pair allocates three small blocks. *)
module Int : sig
  type node = { nv : int; next : node }
  type head = { stamp : int; top : node }

  type t = {
    c : head Atomic.t;
    r : head array;
    res : int array;
    meta : int array;
    nprocs : int;
  }

  val resp_pushed : int
  val resp_empty : int
  val resp_popped : int -> int

  val decode : int -> int response
  (** Unpack a response for assertions/pretty-printing (allocates for
      [Popped]). *)

  val create : nprocs:int -> unit -> t
  val peek : ?cp:Crash.t -> t -> int option
  val push : ?cp:Crash.t -> ?committed:bool ref -> t -> pid:int -> int -> int
  val pop : ?cp:Crash.t -> ?committed:bool ref -> t -> pid:int -> int
  val push_recover : ?cp:Crash.t -> ?committed:bool -> t -> pid:int -> int -> int
  val pop_recover : ?cp:Crash.t -> ?committed:bool -> t -> pid:int -> int
end
