(** Recoverable Treiber stack on real multicore, nested on {!Rscas}; the
    whole stack lives in the CAS cell as a writer-stamped immutable
    list. *)

type 'a response = Pushed | Popped of 'a | Empty

type 'a t = {
  c : ((int * int) * 'a list) Rscas.t;
  seq : int Atomic.t array;
  att : (int * ('a response * ((int * int) * 'a list))) Atomic.t array;
  own : (int * 'a response) Atomic.t array;
  nprocs : int;
}

val create : nprocs:int -> unit -> 'a t
val peek : ?cp:Crash.t -> 'a t -> 'a option
val push : ?cp:Crash.t -> ?committed:bool ref -> 'a t -> pid:int -> 'a -> 'a response
val pop : ?cp:Crash.t -> ?committed:bool ref -> 'a t -> pid:int -> 'a response

val push_recover :
  ?cp:Crash.t -> ?committed:bool -> 'a t -> pid:int -> 'a -> 'a response

val pop_recover : ?cp:Crash.t -> ?committed:bool -> 'a t -> pid:int -> 'a response
