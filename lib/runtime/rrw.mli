(** Algorithm 1 on real multicore: recoverable read/write register over
    OCaml 5 [Atomic] cells.

    Values are compared structurally; all written values must be distinct
    (tag them with writer id and sequence number).  The [?cp] arguments
    are crash points for single-process recovery drills. *)

type 'a t = {
  r : 'a Atomic.t;
  s : (int * 'a) Atomic.t array;  (** [S_p]: <flag, previous value> *)
}

val create : nprocs:int -> 'a -> 'a t
val read : ?cp:Crash.t -> 'a t -> 'a
val read_recover : ?cp:Crash.t -> 'a t -> 'a
val write : ?cp:Crash.t -> 'a t -> pid:int -> 'a -> unit

val write_recover : ?cp:Crash.t -> 'a t -> pid:int -> 'a -> unit
(** [WRITE.RECOVER]: re-executes exactly when the interrupted write could
    not have been linearized (lines 11-17 of the paper). *)

(** Plain (non-recoverable) register baseline. *)
module Plain : sig
  type 'a t

  val create : 'a -> 'a t
  val read : 'a t -> 'a
  val write : 'a t -> 'a -> unit
end
