(** Algorithm 1 on real multicore: recoverable read/write register over
    OCaml 5 [Atomic] cells.

    Values are compared structurally; all written values must be distinct
    (tag them with writer id and sequence number).  The [?cp] arguments
    are crash points for single-process recovery drills.  The [_cp]
    variants take the crash point positionally — internal call chains
    use them because re-passing an optional argument allocates a [Some]
    per call. *)

type 'a t = {
  r : 'a Atomic.t;
  s : (int * 'a) Atomic.t array;  (** [S_p]: <flag, previous value> *)
}

val create : nprocs:int -> 'a -> 'a t
val read : ?cp:Crash.t -> 'a t -> 'a
val read_recover : ?cp:Crash.t -> 'a t -> 'a
val write : ?cp:Crash.t -> 'a t -> pid:int -> 'a -> unit

val write_recover : ?cp:Crash.t -> 'a t -> pid:int -> 'a -> unit
(** [WRITE.RECOVER]: re-executes exactly when the interrupted write could
    not have been linearized (lines 11-17 of the paper). *)

val read_cp : Crash.t -> 'a t -> 'a
val write_cp : Crash.t -> 'a t -> pid:int -> 'a -> unit
val write_recover_cp : Crash.t -> 'a t -> pid:int -> 'a -> unit

(** Plain (non-recoverable) register baseline. *)
module Plain : sig
  type 'a t

  val create : 'a -> 'a t
  val read : 'a t -> 'a
  val write : 'a t -> 'a -> unit
end

(** Unboxed int specialization: [R] is a cache-line-padded atomic;
    [S_p] packs <flag, prev> as [(prev lsl 1) lor flag] in a plain
    padded slot (owner-only state — recovery runs on the owner's
    domain).  Allocation-free on every path; values must fit 62-bit
    signed ints. *)
module Int : sig
  type t = {
    r : int Atomic.t;
    s : int array;
  }

  val create : nprocs:int -> int -> t
  val read : ?cp:Crash.t -> t -> int
  val read_recover : ?cp:Crash.t -> t -> int
  val write : ?cp:Crash.t -> t -> pid:int -> int -> unit
  val write_recover : ?cp:Crash.t -> t -> pid:int -> int -> unit
  val write_cp : Crash.t -> t -> pid:int -> int -> unit
  val write_recover_cp : Crash.t -> t -> pid:int -> int -> unit
  val read_cp : Crash.t -> t -> int
end
