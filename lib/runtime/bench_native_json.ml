(** Machine-readable output of the native benchmark suite: the
    [BENCH_native.json] document [nrlsim bench-native] writes, tracked
    across PRs as a CI artifact.

    Schema ["nrl-native/1"]:

    - [domains_available]: [Domain.recommended_domain_count ()] on the
      measuring host — read it before trusting any scaling row (a
      1-core container still produces the document, honestly);
    - [duration_s]: the per-cell measured window of the throughput
      suite;
    - [throughput]: one row per (object, impl, mode, width, domains)
      cell, with the summed per-domain op counters, the measured
      window and the derived rate.  For CAS objects [ops] counts
      {e attempts} (a read + CAS pair), not successes;
    - [latency]: single-domain ns/op rows (median-of-batches on the
      monotonic clock), names shared with the bechamel harness's
      BENCH_explore.json so the two can be cross-read;
    - [alloc_per_op]: minor-heap words allocated per operation
      ([Gc.minor_words] deltas) — the hot-path allocation-freedom
      evidence. *)

let schema_version = "nrl-native/1"

type tp_row = {
  tp_object : string;  (** ["cas"], ["counter"], ["faa"] or ["stack"] *)
  tp_impl : string;  (** ["recoverable"] or ["plain"] *)
  tp_mode : string;  (** ["contended"] or ["uncontended"] *)
  tp_width : int;  (** number of locations in the contention array *)
  tp_domains : int;
  tp_ops : int;
  tp_seconds : float;
  tp_ops_per_sec : float;
}

type ns_row = { ns_name : string; ns_ns : float }

type alloc_row = { al_name : string; al_words : float }

type t = {
  domains_available : int;
  duration_s : float;
  throughput : tp_row list;
  latency : ns_row list;
  alloc_per_op : alloc_row list;
}

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* infinities (a zero-duration window) have no JSON literal: emit null *)
let number v = if Float.is_finite v then Printf.sprintf "%.3f" v else "null"

let add_rows buf rows render =
  List.iteri
    (fun i r ->
      Buffer.add_string buf (render r);
      Buffer.add_string buf (if i = List.length rows - 1 then "\n" else ",\n"))
    rows

let render t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"schema\": \"%s\",\n" schema_version);
  Buffer.add_string buf
    (Printf.sprintf "  \"domains_available\": %d,\n" t.domains_available);
  Buffer.add_string buf
    (Printf.sprintf "  \"duration_s\": %s,\n" (number t.duration_s));
  Buffer.add_string buf "  \"throughput\": [\n";
  add_rows buf t.throughput (fun r ->
      Printf.sprintf
        "    {\"object\": \"%s\", \"impl\": \"%s\", \"mode\": \"%s\", \"width\": %d, \
         \"domains\": %d, \"ops\": %d, \"seconds\": %s, \"ops_per_sec\": %s}"
        (escape r.tp_object) (escape r.tp_impl) (escape r.tp_mode) r.tp_width
        r.tp_domains r.tp_ops (number r.tp_seconds) (number r.tp_ops_per_sec));
  Buffer.add_string buf "  ],\n  \"latency\": [\n";
  add_rows buf t.latency (fun r ->
      Printf.sprintf "    {\"name\": \"%s\", \"ns\": %s}" (escape r.ns_name)
        (number r.ns_ns));
  Buffer.add_string buf "  ],\n  \"alloc_per_op\": [\n";
  add_rows buf t.alloc_per_op (fun r ->
      Printf.sprintf "    {\"name\": \"%s\", \"words\": %s}" (escape r.al_name)
        (number r.al_words));
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let write ~path t =
  let oc = open_out path in
  output_string oc (render t);
  close_out oc
