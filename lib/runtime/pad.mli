(** Cache-line padding for the native backend's shared cells.

    The hot-path objects keep per-process helping/response state; if
    adjacent processes' cells share a 64-byte cache line, every help
    write by one domain invalidates the line under its neighbours
    (false sharing), which dominates contended cost.  Two remedies are
    provided:

    - {e padded atomics}: an ['a Atomic.t] allocated inside an 8-word
      block ([Obj.new_block] + [Obj.magic], the multicore-magic idiom —
      OCaml 5.1 lacks [Atomic.make_contended]).  The atomic primitives
      act on field 0; the rest is padding.
    - {e stride-padded flat arrays}: plain [int array]s where logical
      slot [i] lives at index [slot i] = [(i+1) * stride], one slot per
      line, with index 0 sacrificed so no slot shares a line with the
      array header. *)

val line_words : int
(** Words per x86-64 cache line (8 × 8 bytes = 64 B). *)

val make_int : int -> int Atomic.t
(** A cache-line-padded int atomic. *)

val make_any : 'a -> 'a Atomic.t
(** A cache-line-padded atomic of any type. *)

val array_int : int -> int -> int Atomic.t array
(** [array_int n v] is [n] independent padded int atomics, each [v]. *)

val stride : int
(** Element stride (in array slots) of flat padded arrays. *)

val slot : int -> int
(** Backing index of logical slot [i] in a {!flat_make} array. *)

val flat_make : int -> int -> int array
(** [flat_make n v] backs [n] padded slots, all initialized to [v];
    address slot [i] as [a.(slot i)]. *)

val slot2 : n:int -> int -> int -> int
(** Backing index of matrix cell [(row, col)] in a {!flat2_make}
    array of logical size [n×n]. *)

val flat2_make : int -> int -> int array
(** [flat2_make n v] backs an [n×n] padded matrix; address cell
    [(r, c)] as [a.(slot2 ~n r c)]. *)
