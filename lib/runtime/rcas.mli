(** Algorithm 2 on real multicore: recoverable CAS object over OCaml 5
    [Atomic] cells.  Assumptions as in the paper: never [old = new],
    per-process distinct new values.  The [_cp] variants take the crash
    point positionally (optional re-passing allocates). *)

type 'a t = {
  c : (int * 'a) Atomic.t;  (** <last successful writer (-1 = null), value> *)
  r : 'a option Atomic.t array array;  (** helping matrix *)
  nprocs : int;
}

val null_id : int

val create : nprocs:int -> 'a -> 'a t
val read : ?cp:Crash.t -> 'a t -> 'a
val read_recover : ?cp:Crash.t -> 'a t -> 'a
val cas : ?cp:Crash.t -> 'a t -> pid:int -> old:'a -> new_:'a -> bool

val cas_recover : ?cp:Crash.t -> 'a t -> pid:int -> old:'a -> new_:'a -> bool
(** [CAS.RECOVER]: reports success iff [C] still holds this process's
    pair or the helping matrix row carries the evidence; otherwise
    re-executes (line 13-16 of the paper). *)

val cas_cp : Crash.t -> 'a t -> pid:int -> old:'a -> new_:'a -> bool
val cas_recover_cp : Crash.t -> 'a t -> pid:int -> old:'a -> new_:'a -> bool

(** Plain (non-recoverable) CAS baseline.  [old] must be physically the
    value previously read (integers are safest). *)
module Plain : sig
  type 'a t

  val create : 'a -> 'a t
  val read : 'a t -> 'a
  val cas : 'a t -> old:'a -> new_:'a -> bool
end

(** Unboxed int specialization: packed <id, value> content in one
    padded atomic, flat stride-padded plain helping matrix (sound under
    the OCaml memory model — see rcas.ml).  Allocation-free; values are
    48-bit signed ({!Enc}). *)
module Int : sig
  type t = {
    c : int Atomic.t;
    r : int array;
    nprocs : int;
  }

  val create : nprocs:int -> int -> t
  val read : ?cp:Crash.t -> t -> int
  val read_recover : ?cp:Crash.t -> t -> int
  val cas : ?cp:Crash.t -> t -> pid:int -> old:int -> new_:int -> bool
  val cas_recover : ?cp:Crash.t -> t -> pid:int -> old:int -> new_:int -> bool
  val cas_cp : Crash.t -> t -> pid:int -> old:int -> new_:int -> bool
  val cas_recover_cp : Crash.t -> t -> pid:int -> old:int -> new_:int -> bool
  val read_cp : Crash.t -> t -> int
end
