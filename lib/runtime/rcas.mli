(** Algorithm 2 on real multicore: recoverable CAS object over OCaml 5
    [Atomic] cells.  Assumptions as in the paper: never [old = new],
    per-process distinct new values. *)

type 'a t = {
  c : (int * 'a) Atomic.t;  (** <last successful writer (-1 = null), value> *)
  r : 'a option Atomic.t array array;  (** helping matrix *)
  nprocs : int;
}

val null_id : int

val create : nprocs:int -> 'a -> 'a t
val read : ?cp:Crash.t -> 'a t -> 'a
val read_recover : ?cp:Crash.t -> 'a t -> 'a
val cas : ?cp:Crash.t -> 'a t -> pid:int -> old:'a -> new_:'a -> bool

val cas_recover : ?cp:Crash.t -> 'a t -> pid:int -> old:'a -> new_:'a -> bool
(** [CAS.RECOVER]: reports success iff [C] still holds this process's
    pair or the helping matrix row carries the evidence; otherwise
    re-executes (line 13-16 of the paper). *)

(** Plain (non-recoverable) CAS baseline.  [old] must be physically the
    value previously read (integers are safest). *)
module Plain : sig
  type 'a t

  val create : 'a -> 'a t
  val read : 'a t -> 'a
  val cas : 'a t -> old:'a -> new_:'a -> bool
end
