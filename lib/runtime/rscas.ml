(** The strict recoverable CAS on real multicore: {!Rcas} plus
    per-invocation tagged response persistence ([res] holds
    [<seq, ret>]), mirroring the simulator's {!Objects.Scas_obj}.

    The caller supplies a [seq] tag, distinct and non-negative across its
    invocations; a recovering caller can then decide from [res.(pid)]
    whether its pending CAS completed and with which response.

    {!Int} is the unboxed specialization the derived FAA builds on:
    packed content, flat plain helping matrix (memory-model argument in
    rcas.ml), and [res] as {e plain} padded slots — [Res_p] is
    owner-only state (written by [p], read by [p]'s recovery on the
    same domain), so it needs no fence. *)

(* Local [@inline] copies of the hot one-liners: dev builds compile with
   -opaque, which turns every cross-module call (Crash.point, the Pad
   slot arithmetic, the Enc packing) into an indirect call through the
   module block, so the shared definitions cannot inline here.  Mirror
   crash.ml / pad.ml / enc.ml exactly. *)
let[@inline] point (cp : Crash.t) = if cp.Crash.live then Crash.slow_point cp
let[@inline] slot p = (p + 1) lsl 3
let[@inline] slot2 ~n row col = ((row * n) + col + 1) lsl 3
let[@inline] pack ~id v = ((id + 1) lsl 48) lor (v land ((1 lsl 48) - 1))
let[@inline] value c = (c lsl 15) asr 15
let[@inline] id_of c = (c lsr 48) - 1
let[@inline] res_pack ~seq ret = (seq lsl 1) lor (if ret then 1 else 0)
let[@inline] res_seq r = r asr 1
let[@inline] res_ret r = r land 1 = 1

type 'a t = {
  c : (int * 'a) Atomic.t;  (** <last successful writer (-1 = null), value> *)
  r : 'a option Atomic.t array array;
  res : (int * bool) Atomic.t array;  (** per-process <seq, ret>; seq -1 = none *)
  nprocs : int;
}

let null_id = -1

let create ~nprocs init =
  {
    c = Atomic.make (null_id, init);
    r = Array.init nprocs (fun _ -> Array.init nprocs (fun _ -> Atomic.make None));
    res = Array.init nprocs (fun _ -> Atomic.make (-1, false));
    nprocs;
  }

let[@inline] read_cp cp t =
  point cp;
  snd (Atomic.get t.c)

let read ?(cp = Crash.none) t = read_cp cp t

(* read the full <id, value> content (needed by retry loops that CAS on
   the physical content) *)
let[@inline] read_content_cp cp t =
  point cp;
  Atomic.get t.c

let read_content ?(cp = Crash.none) t = read_content_cp cp t

let persist_cp cp t ~pid ~seq ret =
  point cp;
  Atomic.set t.res.(pid) (seq, ret);
  ret

let persist ?(cp = Crash.none) t ~pid ~seq ret = persist_cp cp t ~pid ~seq ret

let cas_cp cp t ~pid ~old ~new_ ~seq =
  point cp;
  let (id, v) as content = Atomic.get t.c in
  if v <> old then persist_cp cp t ~pid ~seq false
  else begin
    if id <> null_id then begin
      point cp;
      Atomic.set t.r.(id).(pid) (Some v)
    end;
    point cp;
    let ok = Atomic.compare_and_set t.c content (pid, new_) in
    persist_cp cp t ~pid ~seq ok
  end

let cas ?(cp = Crash.none) t ~pid ~old ~new_ ~seq = cas_cp cp t ~pid ~old ~new_ ~seq

(** Like {!cas} but comparing against (and swapping from) the exact
    content previously obtained with {!read_content} — what retry loops
    need, since OCaml's [Atomic.compare_and_set] is physical. *)
let cas_content_cp cp t ~pid ~content ~new_ ~seq =
  let id, _v = content in
  if id <> null_id then begin
    point cp;
    Atomic.set t.r.(id).(pid) (Some (snd content))
  end;
  point cp;
  let ok = Atomic.compare_and_set t.c content (pid, new_) in
  persist_cp cp t ~pid ~seq ok

let cas_content ?(cp = Crash.none) t ~pid ~content ~new_ ~seq =
  cas_content_cp cp t ~pid ~content ~new_ ~seq

(** Evidence-only verdict for the CAS invocation tagged [seq] with value
    [new_]: [Some r] if the persisted response, [C]'s contents or the
    helping matrix row decide it (persisting the verdict on the way out);
    [None] if there is no evidence — by the paper's Lemma 3 argument the
    cas then never took effect and the caller may safely re-execute at
    its own level.  This is what a {e nesting} caller's recovery needs
    (the machine gets it for free from the recovery cascade; native code
    must ask explicitly). *)
let outcome_cp cp t ~pid ~new_ ~seq =
  point cp;
  let s, r = Atomic.get t.res.(pid) in
  if s = seq then Some r
  else begin
    point cp;
    if Atomic.get t.c = (pid, new_) then Some (persist_cp cp t ~pid ~seq true)
    else begin
      let found = ref false in
      for j = 0 to t.nprocs - 1 do
        point cp;
        match Atomic.get t.r.(pid).(j) with
        | Some v when v = new_ -> found := true
        | _ -> ()
      done;
      if !found then Some (persist_cp cp t ~pid ~seq true) else None
    end
  end

let outcome ?(cp = Crash.none) t ~pid ~new_ ~seq = outcome_cp cp t ~pid ~new_ ~seq

let cas_recover ?(cp = Crash.none) t ~pid ~old ~new_ ~seq =
  match outcome_cp cp t ~pid ~new_ ~seq with
  | Some r -> r
  | None -> cas_cp cp t ~pid ~old ~new_ ~seq

(** Unboxed int specialization: packed <id, value> content in one
    padded atomic; flat stride-padded plain helping matrix; [res] as
    plain padded slots packing <seq, ret> ({!Enc.res_pack}).
    Allocation-free on every path; values are 48-bit signed, [seq] tags
    non-negative 61-bit. *)
module Int = struct
  type t = {
    c : int Atomic.t;  (** packed <id, value> *)
    r : int array;  (** flat padded helping matrix, [Enc.none] = empty *)
    res : int array;  (** plain padded slots, packed <seq, ret> *)
    nprocs : int;
  }

  let create ~nprocs init =
    Enc.check_nprocs nprocs;
    {
      c = Pad.make_int (pack ~id:null_id init);
      r = Pad.flat2_make nprocs Enc.none;
      res = Pad.flat_make nprocs Enc.res_none;
      nprocs;
    }

  let[@inline] read_cp cp t =
    point cp;
    value (Atomic.get t.c)

  let read ?(cp = Crash.none) t = read_cp cp t

  (* the packed content is itself the retry-loop token *)
  let[@inline] read_content_cp cp t =
    point cp;
    Atomic.get t.c

  let read_content ?(cp = Crash.none) t = read_content_cp cp t

  let[@inline] persist_cp cp t ~pid ~seq ret =
    point cp;
    t.res.(slot pid) <- res_pack ~seq ret;
    ret

  let persist ?(cp = Crash.none) t ~pid ~seq ret = persist_cp cp t ~pid ~seq ret

  let cas_cp cp t ~pid ~old ~new_ ~seq =
    point cp;
    let content = Atomic.get t.c in
    let v = value content in
    if v <> old then persist_cp cp t ~pid ~seq false
    else begin
      let id = id_of content in
      if id >= 0 then begin
        point cp;
        t.r.(slot2 ~n:t.nprocs id pid) <- v
      end;
      point cp;
      let ok = Atomic.compare_and_set t.c content (pack ~id:pid new_) in
      persist_cp cp t ~pid ~seq ok
    end

  let cas ?(cp = Crash.none) t ~pid ~old ~new_ ~seq = cas_cp cp t ~pid ~old ~new_ ~seq

  let cas_content_cp cp t ~pid ~content ~new_ ~seq =
    let id = id_of content in
    if id >= 0 then begin
      point cp;
      t.r.(slot2 ~n:t.nprocs id pid) <- value content
    end;
    point cp;
    let ok = Atomic.compare_and_set t.c content (pack ~id:pid new_) in
    persist_cp cp t ~pid ~seq ok

  let cas_content ?(cp = Crash.none) t ~pid ~content ~new_ ~seq =
    cas_content_cp cp t ~pid ~content ~new_ ~seq

  let outcome_cp cp t ~pid ~new_ ~seq =
    point cp;
    let res = t.res.(slot pid) in
    if res_seq res = seq then Some (res_ret res)
    else begin
      point cp;
      if Atomic.get t.c = pack ~id:pid new_ then
        Some (persist_cp cp t ~pid ~seq true)
      else begin
        let found = ref false in
        for j = 0 to t.nprocs - 1 do
          point cp;
          if t.r.(slot2 ~n:t.nprocs pid j) = new_ then found := true
        done;
        if !found then Some (persist_cp cp t ~pid ~seq true) else None
      end
    end

  let outcome ?(cp = Crash.none) t ~pid ~new_ ~seq = outcome_cp cp t ~pid ~new_ ~seq

  let cas_recover ?(cp = Crash.none) t ~pid ~old ~new_ ~seq =
    match outcome_cp cp t ~pid ~new_ ~seq with
    | Some r -> r
    | None -> cas_cp cp t ~pid ~old ~new_ ~seq
end
