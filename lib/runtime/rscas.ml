(** The strict recoverable CAS on real multicore: {!Rcas} plus
    per-invocation tagged response persistence ([res] holds
    [<seq, ret>]), mirroring the simulator's {!Objects.Scas_obj}.

    The caller supplies a [seq] tag, distinct and non-negative across its
    invocations; a recovering caller can then decide from [res.(pid)]
    whether its pending CAS completed and with which response. *)

type 'a t = {
  c : (int * 'a) Atomic.t;  (** <last successful writer (-1 = null), value> *)
  r : 'a option Atomic.t array array;
  res : (int * bool) Atomic.t array;  (** per-process <seq, ret>; seq -1 = none *)
  nprocs : int;
}

let null_id = -1

let create ~nprocs init =
  {
    c = Atomic.make (null_id, init);
    r = Array.init nprocs (fun _ -> Array.init nprocs (fun _ -> Atomic.make None));
    res = Array.init nprocs (fun _ -> Atomic.make (-1, false));
    nprocs;
  }

let read ?(cp = Crash.none) t =
  Crash.point cp;
  snd (Atomic.get t.c)

(* read the full <id, value> content (needed by retry loops that CAS on
   the physical content) *)
let read_content ?(cp = Crash.none) t =
  Crash.point cp;
  Atomic.get t.c

let persist ?(cp = Crash.none) t ~pid ~seq ret =
  Crash.point cp;
  Atomic.set t.res.(pid) (seq, ret);
  ret

let cas ?(cp = Crash.none) t ~pid ~old ~new_ ~seq =
  Crash.point cp;
  let (id, v) as content = Atomic.get t.c in
  if v <> old then persist ~cp t ~pid ~seq false
  else begin
    if id <> null_id then begin
      Crash.point cp;
      Atomic.set t.r.(id).(pid) (Some v)
    end;
    Crash.point cp;
    let ok = Atomic.compare_and_set t.c content (pid, new_) in
    persist ~cp t ~pid ~seq ok
  end

(** Like {!cas} but comparing against (and swapping from) the exact
    content previously obtained with {!read_content} — what retry loops
    need, since OCaml's [Atomic.compare_and_set] is physical. *)
let cas_content ?(cp = Crash.none) t ~pid ~content ~new_ ~seq =
  let id, _v = content in
  if id <> null_id then begin
    Crash.point cp;
    Atomic.set t.r.(id).(pid) (Some (snd content))
  end;
  Crash.point cp;
  let ok = Atomic.compare_and_set t.c content (pid, new_) in
  persist ~cp t ~pid ~seq ok

(** Evidence-only verdict for the CAS invocation tagged [seq] with value
    [new_]: [Some r] if the persisted response, [C]'s contents or the
    helping matrix row decide it (persisting the verdict on the way out);
    [None] if there is no evidence — by the paper's Lemma 3 argument the
    cas then never took effect and the caller may safely re-execute at
    its own level.  This is what a {e nesting} caller's recovery needs
    (the machine gets it for free from the recovery cascade; native code
    must ask explicitly). *)
let outcome ?(cp = Crash.none) t ~pid ~new_ ~seq =
  Crash.point cp;
  let s, r = Atomic.get t.res.(pid) in
  if s = seq then Some r
  else begin
    Crash.point cp;
    if Atomic.get t.c = (pid, new_) then Some (persist ~cp t ~pid ~seq true)
    else begin
      let found = ref false in
      for j = 0 to t.nprocs - 1 do
        Crash.point cp;
        match Atomic.get t.r.(pid).(j) with
        | Some v when v = new_ -> found := true
        | _ -> ()
      done;
      if !found then Some (persist ~cp t ~pid ~seq true) else None
    end
  end

let cas_recover ?(cp = Crash.none) t ~pid ~old ~new_ ~seq =
  match outcome ~cp t ~pid ~new_ ~seq with
  | Some r -> r
  | None -> cas ~cp t ~pid ~old ~new_ ~seq
