(** Multi-domain throughput harness, memento-style.

    Both entry points follow the same discipline (the one
    kaist-cp/memento uses to evaluate NRL-CAS): workers park on a
    two-phase start barrier, the monotonic clock ({!Obs.Clock}) is read
    only after every domain has checked in, and only then is the go
    flag raised — so domain spawn cost and barrier convergence are
    excluded from the measured window.  [run] executes a fixed
    iteration count per domain; [run_for] runs a fixed wall-clock
    duration with a per-domain op counter kept in the worker's own
    stack frame (collected at join, so counting shares nothing),
    which is the mode the contended suite uses (a fixed-duration window
    measures slow and fast configurations with equal noise). *)

type result = {
  domains : int;
  iters_per_domain : int;
  seconds : float;
  ops_per_sec : float;
}

type timed = {
  t_domains : int;
  t_total_ops : int;
  t_seconds : float;
  t_ops_per_sec : float;
}

(* Spawn [domains] workers running [work pid], release them together,
   and return (elapsed seconds, per-domain results): the clock starts
   after the last worker reaches the barrier and stops after the last
   join, so it covers the work plus only the stragglers' drain. *)
let measured ~domains work =
  let ready = Atomic.make 0 in
  let go = Atomic.make false in
  let body pid () =
    Atomic.incr ready;
    while not (Atomic.get go) do
      Domain.cpu_relax ()
    done;
    work pid
  in
  let ds = List.init domains (fun pid -> Domain.spawn (body pid)) in
  while Atomic.get ready < domains do
    Domain.cpu_relax ()
  done;
  let t0 = Obs.Clock.now_ns () in
  Atomic.set go true;
  let rs = List.map Domain.join ds in
  let t1 = Obs.Clock.now_ns () in
  (float_of_int (t1 - t0) /. 1e9, rs)

let run ~domains ~iters body =
  let dt, _ =
    measured ~domains (fun pid ->
        for i = 0 to iters - 1 do
          body ~pid ~i
        done)
  in
  {
    domains;
    iters_per_domain = iters;
    seconds = dt;
    ops_per_sec = float_of_int (domains * iters) /. dt;
  }

let run_for ~domains ~duration body =
  let stop = Atomic.make false in
  let dt, ops =
    measured ~domains:(domains + 1) (fun pid ->
        if pid = domains then begin
          (* the timer domain: workers never block, so a dedicated
             sleeper keeps the measured window free of polling *)
          Unix.sleepf duration;
          Atomic.set stop true;
          0
        end
        else begin
          let n = ref 0 in
          while not (Atomic.get stop) do
            body ~pid ~i:!n;
            incr n
          done;
          !n
        end)
  in
  let total = List.fold_left ( + ) 0 ops in
  {
    t_domains = domains;
    t_total_ops = total;
    t_seconds = dt;
    t_ops_per_sec = float_of_int total /. dt;
  }

let pp_result ppf r =
  Fmt.pf ppf "%d domains x %d iters: %.3fs, %.0f ops/s" r.domains r.iters_per_domain
    r.seconds r.ops_per_sec

let pp_timed ppf r =
  Fmt.pf ppf "%d domains, %d ops in %.3fs: %.0f ops/s" r.t_domains r.t_total_ops
    r.t_seconds r.t_ops_per_sec

(** Available hardware parallelism, capped for benchmark sweeps. *)
let max_domains ?(cap = 8) () = min cap (Domain.recommended_domain_count ())
