(** Multi-domain throughput harness.

    Spawns [domains] OCaml domains, synchronises them on a start barrier,
    runs [iters] iterations of [body ~pid ~i] in each, and reports elapsed
    wall-clock time and aggregate throughput. *)

type result = {
  domains : int;
  iters_per_domain : int;
  seconds : float;
  ops_per_sec : float;
}

let run ~domains ~iters body =
  let barrier = Atomic.make 0 in
  let work pid () =
    Atomic.incr barrier;
    while Atomic.get barrier < domains do
      Domain.cpu_relax ()
    done;
    for i = 0 to iters - 1 do
      body ~pid ~i
    done
  in
  let t0 = Unix.gettimeofday () in
  let ds = List.init domains (fun pid -> Domain.spawn (work pid)) in
  List.iter Domain.join ds;
  let dt = Unix.gettimeofday () -. t0 in
  {
    domains;
    iters_per_domain = iters;
    seconds = dt;
    ops_per_sec = float_of_int (domains * iters) /. dt;
  }

let pp_result ppf r =
  Fmt.pf ppf "%d domains x %d iters: %.3fs, %.0f ops/s" r.domains r.iters_per_domain
    r.seconds r.ops_per_sec

(** Available hardware parallelism, capped for benchmark sweeps. *)
let max_domains ?(cap = 8) () = min cap (Domain.recommended_domain_count ())
