(** Algorithm 3 on real multicore: recoverable test-and-set over OCaml 5
    [Atomic] cells.  [T&S] is wait-free and strict (its response is
    persisted in [Res_p] before returning); [T&S.RECOVER] busy-waits on
    other processes' state as the paper prescribes (and Theorem 4 proves
    necessary). *)

type t = {
  r : int Atomic.t array;  (** per-process state, 0..4 *)
  winner : int Atomic.t;  (** -1 = null *)
  doorway : bool Atomic.t;  (** true = open *)
  t : bool Atomic.t;  (** the base t&s bit *)
  res : int Atomic.t array;  (** persisted responses; -1 = none *)
  nprocs : int;
}

let null_id = -1

let create ~nprocs =
  {
    r = Array.init nprocs (fun _ -> Atomic.make 0);
    winner = Atomic.make null_id;
    doorway = Atomic.make true;
    t = Atomic.make false;
    res = Array.init nprocs (fun _ -> Atomic.make (-1));
    nprocs;
  }

(* the base primitive: atomically set, return previous *)
let base_tas t = if Atomic.exchange t.t true then 1 else 0

let finish ?(cp = Crash.none) t ~pid ret =
  Crash.point cp;
  Atomic.set t.res.(pid) ret;  (* line 11/32 *)
  Crash.point cp;
  Atomic.set t.r.(pid) 3;  (* line 12/33 *)
  ret

let test_and_set ?(cp = Crash.none) t ~pid =
  Crash.point cp;
  Atomic.set t.r.(pid) 1;  (* line 2 *)
  Crash.point cp;
  if not (Atomic.get t.doorway) then finish ~cp t ~pid 1  (* lines 3-5 *)
  else begin
    Crash.point cp;
    Atomic.set t.r.(pid) 2;  (* line 6 *)
    Crash.point cp;
    Atomic.set t.doorway false;  (* line 7 *)
    Crash.point cp;
    let ret = base_tas t in  (* line 8 *)
    if ret = 0 then begin
      Crash.point cp;
      Atomic.set t.winner pid  (* lines 9-10 *)
    end;
    finish ~cp t ~pid ret
  end

let rec recover ?(cp = Crash.none) t ~pid =
  Crash.point cp;
  if Atomic.get t.r.(pid) < 2 then test_and_set ~cp t ~pid  (* lines 15-16 *)
  else begin
    Crash.point cp;
    if Atomic.get t.r.(pid) = 3 then begin
      Crash.point cp;
      Atomic.get t.res.(pid)  (* lines 17-19 *)
    end
    else begin
      Crash.point cp;
      if Atomic.get t.winner <> null_id then conclude ~cp t ~pid  (* lines 20-21 *)
      else begin
        Crash.point cp;
        Atomic.set t.doorway false;  (* line 22 *)
        Crash.point cp;
        Atomic.set t.r.(pid) 4;  (* line 23 *)
        Crash.point cp;
        ignore (base_tas t);  (* line 24 *)
        for i = 0 to pid - 1 do
          (* line 26: await(R[i] = 0 \/ R[i] = 3) *)
          let rec await () =
            Crash.point cp;
            let v = Atomic.get t.r.(i) in
            if not (v = 0 || v = 3) then begin
              Domain.cpu_relax ();
              await ()
            end
          in
          await ()
        done;
        for i = pid + 1 to t.nprocs - 1 do
          (* line 28: await(R[i] = 0 \/ R[i] > 2) *)
          let rec await () =
            Crash.point cp;
            let v = Atomic.get t.r.(i) in
            if not (v = 0 || v > 2) then begin
              Domain.cpu_relax ();
              await ()
            end
          in
          await ()
        done;
        Crash.point cp;
        if Atomic.get t.winner = null_id then begin
          Crash.point cp;
          Atomic.set t.winner pid  (* lines 29-30 *)
        end;
        conclude ~cp t ~pid
      end
    end
  end

(* lines 31-34 *)
and conclude ?(cp = Crash.none) t ~pid =
  Crash.point cp;
  let ret = if Atomic.get t.winner = pid then 0 else 1 in
  finish ~cp t ~pid ret

(** Baseline: plain (non-recoverable) test-and-set. *)
module Plain = struct
  type t = bool Atomic.t

  let create () = Atomic.make false
  let test_and_set t = if Atomic.exchange t true then 1 else 0
end
