(** Algorithm 3 on real multicore: recoverable test-and-set over OCaml 5
    [Atomic] cells.  [T&S] is wait-free and strict (its response is
    persisted in [Res_p] before returning); [T&S.RECOVER] busy-waits on
    other processes' state as the paper prescribes (and Theorem 4 proves
    necessary).

    Hot-path layout: the paper's per-process [R_p] (state 0..4) and
    [Res_p] (response) cells are merged into one atomic word — state in
    bits 0..2, response + 1 in bits 3..4 (0 = none) — so the completion
    protocol (lines 11-12 / 32-33: persist [Res_p], then [R_p := 3]) is
    a single store.  The merge is sound because the response becomes
    readable exactly when the state turns 3, which is the order the
    two-cell protocol guaranteed, and a recovery landing between the
    two original stores re-derives the response deterministically from
    the winner (lines 31-34).  The base t&s bit and [winner] are
    likewise fused into one word updated by a single CAS (see
    {!base_tas}).  All cells stay fully atomic: the doorway protocol is
    a Dekker-style store-load pattern ([R_p := 2]; [doorway := false];
    [TAS] vs the await loops), which plain accesses would not order. *)

(* Local [@inline] copy of the hot crash check: dev builds compile with
   -opaque, which turns every cross-module call (Crash.point) into an
   indirect call through the module block.  Mirrors crash.ml exactly. *)
let[@inline] point (cp : Crash.t) = if cp.Crash.live then Crash.slow_point cp

type t = {
  st : int Atomic.t array;
      (** merged per-process cell: state 0..4 in bits 0..2, response + 1
          in bits 3..4 *)
  doorway : int Atomic.t;  (** 1 = open *)
  tas : int Atomic.t;
      (** base t&s bit fused with the winner announcement:
          0 = free, [(winner lsl 1) lor 1] = taken *)
  nprocs : int;
}

let null_id = -1

let create ~nprocs =
  (* Array.make + fill, not Array.init: creation is on the measured
     fresh-acquire path and the init closure's indirect calls cost more
     than the plain stores *)
  let st = Array.make nprocs (Atomic.make 0) in
  for i = 1 to nprocs - 1 do
    st.(i) <- Atomic.make 0
  done;
  { st; doorway = Atomic.make 1; tas = Atomic.make 0; nprocs }

let[@inline] state v = v land 7

(** The persisted response of process [pid]: 0/1 once its operation
    completed, -1 before (the old [res] array's reading). *)
let response t ~pid =
  let v = Atomic.get t.st.(pid) in
  if state v = 3 then (v lsr 3) - 1 else -1

(* The base TAS and the winner announcement fused into one RMW: a CAS
   from 0 to [(pid lsl 1) lor 1] is equivalent to exchange for a
   one-shot bit (it fails iff the bit is already set) and publishes the
   winner in the same atomic step.  The paper's line 8 (TAS) and lines
   9-10 (winner := p) are separate stores, with recovery lines 29-30
   closing the window where the bit is set but the winner unannounced;
   fusing them removes that window entirely (strictly fewer reachable
   states), plus one fenced store and one crash point from the win
   path.  The CAS also compiles to an inline lock cmpxchg where
   [Atomic.exchange] is a C call. *)
let[@inline] base_tas t ~pid =
  if Atomic.compare_and_set t.tas 0 ((pid lsl 1) lor 1) then 0 else 1

let[@inline] winner_of t =
  let w = Atomic.get t.tas in
  if w = 0 then null_id else w lsr 1

(* lines 11-12 / 32-33 in one store: state 3 + persisted response *)
let[@inline] finish_cp cp t ~pid ret =
  point cp;
  Atomic.set t.st.(pid) (3 lor ((ret + 1) lsl 3));
  ret

let test_and_set_cp cp t ~pid =
  (* Lines 2 and 6 merged into one store of state 2.  The paper writes
     [R_p := 1] before the doorway read and [R_p := 2] after it, but
     states 1 and 2 are indistinguishable to every other process (both
     block the recovery await loops), and the Dekker store-load pattern
     only needs {e some} non-zero state store before the doorway read.
     The one behavioral change is self-recovery after a crash inside
     the doorway interval: it takes the state-2 conclude path instead
     of re-executing, which is still a legal response for an operation
     that never returned (it linearizes as a loser, or wins through the
     full recovery protocol).  Saves a fenced store per fresh T&S. *)
  point cp;
  Atomic.set t.st.(pid) 2;  (* lines 2/6 *)
  point cp;
  if Atomic.get t.doorway = 0 then finish_cp cp t ~pid 1  (* lines 3-5 *)
  else begin
    point cp;
    Atomic.set t.doorway 0;  (* line 7 *)
    point cp;
    let ret = base_tas t ~pid in  (* lines 8-10 in one RMW *)
    finish_cp cp t ~pid ret
  end

let test_and_set ?(cp = Crash.none) t ~pid = test_and_set_cp cp t ~pid

(* lines 31-34 *)
let conclude_cp cp t ~pid =
  point cp;
  let ret = if winner_of t = pid then 0 else 1 in
  finish_cp cp t ~pid ret

let recover_cp cp t ~pid =
  point cp;
  let v = state (Atomic.get t.st.(pid)) in
  if v < 2 then test_and_set_cp cp t ~pid  (* lines 15-16 *)
  else if v = 3 then begin
    point cp;
    (Atomic.get t.st.(pid) lsr 3) - 1  (* lines 17-19: the merged Res_p *)
  end
  else begin
    point cp;
    if winner_of t <> null_id then conclude_cp cp t ~pid  (* lines 20-21 *)
    else begin
      point cp;
      Atomic.set t.doorway 0;  (* line 22 *)
      point cp;
      Atomic.set t.st.(pid) 4;  (* line 23 *)
      point cp;
      ignore (base_tas t ~pid);  (* line 24; a success claims victory *)
      for i = 0 to pid - 1 do
        (* line 26: await(R[i] = 0 \/ R[i] = 3) *)
        let rec await () =
          point cp;
          let v = state (Atomic.get t.st.(i)) in
          if not (v = 0 || v = 3) then begin
            Domain.cpu_relax ();
            await ()
          end
        in
        await ()
      done;
      for i = pid + 1 to t.nprocs - 1 do
        (* line 28: await(R[i] = 0 \/ R[i] > 2) *)
        let rec await () =
          point cp;
          let v = state (Atomic.get t.st.(i)) in
          if not (v = 0 || v > 2) then begin
            Domain.cpu_relax ();
            await ()
          end
        in
        await ()
      done;
      (* lines 29-30 are subsumed by the fused base TAS: a set bit
         always carries its winner, so the "bit set, winner unannounced"
         state those lines repair is unreachable *)
      conclude_cp cp t ~pid
    end
  end

let recover ?(cp = Crash.none) t ~pid = recover_cp cp t ~pid

(** Baseline: plain (non-recoverable) test-and-set. *)
module Plain = struct
  type t = bool Atomic.t

  let create () = Atomic.make false
  let test_and_set t = if Atomic.exchange t true then 1 else 0
end
