(** Histories and their sub-histories (paper, Section 2). *)

module Step = Step

type t = Step.t array

val of_list : Step.t list -> t
val to_list : t -> Step.t list
val length : t -> int
val is_empty : t -> bool
val pp : t Fmt.t

val filter : (Step.t -> bool) -> t -> t

val by_proc : t -> int -> t
(** [H|p]: all steps by process [p]. *)

val by_object : t -> int -> t
(** [H|O]: invoke/response steps on [O], crash steps whose crashed
    operation is on [O], and their matching recovery steps. *)

val proj : t -> int -> int -> t
(** [H|<p,O>]: all steps on object [O] by process [p]. *)

val n_of : t -> t
(** [N(H)]: the history with all crash and recovery steps removed. *)

val is_crash_free : t -> bool

val objects : t -> int list
(** Object ids appearing in the history, sorted. *)

val procs : t -> int list
(** Process ids appearing in the history, sorted. *)

(** An operation instance extracted from a history. *)
type op_record = {
  pid : int;
  opref : Step.opref;
  args : Nvm.Value.t array;
  ret : Nvm.Value.t option;  (** [None] while pending *)
  inv_pos : int;  (** index of the invocation step *)
  res_pos : int option;
  call_id : int;
}

val ops_of : t -> op_record list
(** Operation records (completed and pending), ordered by invocation;
    crash/recovery steps are ignored. *)

val happens_before : op_record -> op_record -> bool
(** [a]'s response step precedes [b]'s invocation step. *)

val concurrent : op_record -> op_record -> bool

(** Well-formedness (Section 2): crash-free well-formedness, and
    Definition 3's recoverable well-formedness. *)
module Wellformed : sig
  type result = Ok | Violation of string

  val is_ok : result -> bool
  val pp_result : result Fmt.t

  val check_alternating : p:int -> o:int -> t -> result
  (** [H|<p,O>] must alternate matching invocations and responses,
      starting with an invocation. *)

  val check_nesting : p:int -> t -> result
  (** Requirement (2): matched pairs of one process are properly nested
      (if [i1 < i2 < r1] then [r2 < r1]). *)

  val check_well_formed : t -> result
  (** Crash-free well-formedness: every [H|O] well-formed, plus the
      nesting requirement. *)

  val check_recoverable_well_formed : t -> result
  (** Definition 3: every crash step of [p] is [p]'s last step or is
      followed in [H|p] by a matching recovery step, and [N(H)] is
      well-formed. *)
end
