(** Steps of a history (paper, Section 2): invocation, response, crash and
    recovery steps.  Each operation execution carries a unique [call_id]
    linking its invocation to its response; the well-formedness checkers
    validate the matching structurally. *)

type opref = {
  obj : int;  (** object instance identifier *)
  obj_name : string;
  op : string;  (** operation name, e.g. "WRITE" *)
}

val pp_opref : opref Fmt.t

type t =
  | Inv of { pid : int; opref : opref; args : Nvm.Value.t array; call_id : int }
  | Res of {
      pid : int;
      opref : opref;
      ret : Nvm.Value.t;
      call_id : int;
      persisted : bool option;
          (** [Some true] iff, at response time, the operation's
              designated persistent response variable held [ret]
              (Definition 1, strictness); [None] when the object declares
              no such variable *)
    }
  | Crash of { pid : int; crashed : (opref * int) option }
      (** [crashed] identifies the crashed operation — the inner-most
          pending recoverable operation — or is [None] for a process with
          no pending operation *)
  | Rec of { pid : int }

val pid : t -> int
val pp : t Fmt.t
