(** Histories and their sub-histories, following Section 2 of the paper. *)

module Step = Step

type t = Step.t array

let of_list = Array.of_list
let to_list = Array.to_list
let length = Array.length
let is_empty h = Array.length h = 0

let pp ppf (h : t) =
  Fmt.pf ppf "@[<v>";
  Array.iteri (fun i s -> Fmt.pf ppf "%3d: %a@," i Step.pp s) h;
  Fmt.pf ppf "@]"

let filter f (h : t) : t =
  Array.of_list (List.filter f (Array.to_list h))

(** [H|p]: the subhistory of all steps by process [p]. *)
let by_proc (h : t) p = filter (fun s -> Step.pid s = p) h

(** [H|O]: all invoke and response steps on object [o], plus any crash step
    whose crashed operation is on [o] and the matching recovery step by the
    same process (if present).  Matching recovery steps are identified as
    the first [Rec] step of the crashing process after the crash. *)
let by_object (h : t) o : t =
  let n = Array.length h in
  let keep = Array.make n false in
  for i = 0 to n - 1 do
    match h.(i) with
    | Step.Inv { opref; _ } | Step.Res { opref; _ } ->
      if opref.Step.obj = o then keep.(i) <- true
    | Step.Crash { pid; crashed = Some (opref, _) } when opref.Step.obj = o ->
      keep.(i) <- true;
      (* the matching recovery step is p's next step, if it is a Rec *)
      let rec find j =
        if j >= n then ()
        else
          match h.(j) with
          | Step.Rec { pid = q } when q = pid -> keep.(j) <- true
          | s when Step.pid s = pid -> ()
          | _ -> find (j + 1)
      in
      find (i + 1)
    | Step.Crash _ | Step.Rec _ -> ()
  done;
  let out = ref [] in
  for i = n - 1 downto 0 do
    if keep.(i) then out := h.(i) :: !out
  done;
  Array.of_list !out

(** [H|<p,O>]: all steps on object [o] by process [p]. *)
let proj (h : t) p o =
  filter
    (fun s ->
      Step.pid s = p
      &&
      match s with
      | Step.Inv { opref; _ } | Step.Res { opref; _ } -> opref.Step.obj = o
      | Step.Crash { crashed = Some (opref, _); _ } -> opref.Step.obj = o
      | Step.Crash { crashed = None; _ } | Step.Rec _ -> false)
    h

(** [N(H)]: the history obtained by removing all crash and recovery steps. *)
let n_of (h : t) : t =
  filter (function Step.Crash _ | Step.Rec _ -> false | _ -> true) h

let is_crash_free (h : t) =
  Array.for_all (function Step.Crash _ | Step.Rec _ -> false | _ -> true) h

(** All object ids appearing in [h]. *)
let objects (h : t) =
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun s ->
      match s with
      | Step.Inv { opref; _ } | Step.Res { opref; _ } ->
        Hashtbl.replace tbl opref.Step.obj ()
      | Step.Crash { crashed = Some (opref, _); _ } ->
        Hashtbl.replace tbl opref.Step.obj ()
      | Step.Crash _ | Step.Rec _ -> ())
    h;
  List.sort Int.compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])

(** All process ids appearing in [h]. *)
let procs (h : t) =
  let tbl = Hashtbl.create 8 in
  Array.iter (fun s -> Hashtbl.replace tbl (Step.pid s) ()) h;
  List.sort Int.compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])

(** A completed operation of a crash-free object subhistory, for the
    happens-before order and for the linearizability checker. *)
type op_record = {
  pid : int;
  opref : Step.opref;
  args : Nvm.Value.t array;
  ret : Nvm.Value.t option;  (** [None] while pending *)
  inv_pos : int;  (** index of the invocation step in the source history *)
  res_pos : int option;
  call_id : int;
}

(** Extract operation records (completed and pending) from a history,
    ignoring crash/recovery steps.  Records are ordered by invocation. *)
let ops_of (h : t) : op_record list =
  let open Step in
  let pending : (int, op_record) Hashtbl.t = Hashtbl.create 16 in
  let out = ref [] in
  Array.iteri
    (fun i s ->
      match s with
      | Inv { pid; opref; args; call_id } ->
        let r =
          { pid; opref; args; ret = None; inv_pos = i; res_pos = None; call_id }
        in
        Hashtbl.replace pending call_id r;
        out := r :: !out
      | Res { ret; call_id; _ } -> (
        match Hashtbl.find_opt pending call_id with
        | None -> ()
        | Some r ->
          Hashtbl.remove pending call_id;
          let r' = { r with ret = Some ret; res_pos = Some i } in
          out := List.map (fun x -> if x.call_id = call_id then r' else x) !out)
      | Crash _ | Rec _ -> ())
    h;
  List.rev !out

(** [happens_before a b] per the paper: [a]'s response step precedes [b]'s
    invocation step. *)
let happens_before a b =
  match a.res_pos with Some r -> r < b.inv_pos | None -> false

let concurrent a b = (not (happens_before a b)) && not (happens_before b a)

(** Well-formedness checks from Section 2 (Definitions preceding Def. 3 and
    Definition 3 itself). *)
module Wellformed = struct
  type result = Ok | Violation of string

  let is_ok = function Ok -> true | Violation _ -> false

  let pp_result ppf = function
    | Ok -> Fmt.string ppf "well-formed"
    | Violation msg -> Fmt.pf ppf "violation: %s" msg

  (* A crash-free subhistory [H|<p,O>] must be a sequence of alternating,
     matching invocation and response steps, starting with an invocation
     (possibly ending with a pending invocation). *)
  let check_alternating ~p ~o (h : t) =
    let open Step in
    let state = ref None (* pending call_id *) in
    let bad = ref None in
    Array.iter
      (fun s ->
        if !bad = None then
          match s, !state with
          | Inv { call_id; _ }, None -> state := Some call_id
          | Inv _, Some _ ->
            bad :=
              Some
                (Fmt.str "p%d invoked a second operation on object %d while one is pending"
                   p o)
          | Res { call_id; _ }, Some pending when call_id = pending -> state := None
          | Res _, Some _ ->
            bad := Some (Fmt.str "p%d: response does not match pending invocation on object %d" p o)
          | Res _, None ->
            bad := Some (Fmt.str "p%d: response without invocation on object %d" p o)
          | (Crash _ | Rec _), _ -> ())
      h;
    match !bad with Some m -> Violation m | None -> Ok

  (* Requirement (2) of crash-free well-formedness: per process, matched
     invocation/response pairs are properly nested: if i1 < i2 < r1 then
     r2 < r1. *)
  let check_nesting ~p (h : t) =
    let ops =
      List.filter (fun (r : op_record) -> r.pid = p && r.res_pos <> None) (ops_of h)
    in
    let bad = ref None in
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            if a.call_id <> b.call_id && !bad = None then
              match a.res_pos, b.res_pos with
              | Some r1, Some r2 ->
                if a.inv_pos < b.inv_pos && b.inv_pos < r1 && not (r2 < r1) then
                  bad :=
                    Some
                      (Fmt.str
                         "p%d: operation %s (#%d) invoked inside %s (#%d) responds after it"
                         p b.opref.Step.op b.call_id a.opref.Step.op a.call_id)
              | _ -> ())
          ops)
      ops;
    match !bad with Some m -> Violation m | None -> Ok

  (* Also require that a pending inner operation blocks the outer from
     responding: if i1 < i2, op2 pending, then op1 must be pending too.
     This is implied by requirement (2) read contrapositively and holds in
     all histories the machine produces. *)

  (** Crash-free well-formedness: (1) every [H|O] is well-formed; (2) the
      per-process nesting condition. *)
  let check_well_formed (h : t) =
    if not (is_crash_free h) then
      Violation "history contains crash/recovery steps (use recoverable well-formedness)"
    else
      let results =
        List.concat_map
          (fun o ->
            List.map (fun p -> check_alternating ~p ~o (proj h p o)) (procs h))
          (objects h)
        @ List.map (fun p -> check_nesting ~p (by_proc h p)) (procs h)
      in
      match List.find_opt (fun r -> not (is_ok r)) results with
      | Some v -> v
      | None -> Ok

  (** Definition 3 (Recoverable Well-Formedness): (1) every crash step of
      [p] is either [p]'s last step or is followed in [H|p] by a matching
      recovery step; (2) [N(H)] is well-formed. *)
  let check_recoverable_well_formed (h : t) =
    let open Step in
    let crash_rule =
      List.fold_left
        (fun acc p ->
          if not (is_ok acc) then acc
          else begin
            let hp = by_proc h p in
            let n = Array.length hp in
            let bad = ref None in
            Array.iteri
              (fun i s ->
                if !bad = None then
                  match s with
                  | Crash _ ->
                    if i < n - 1 then begin
                      match hp.(i + 1) with
                      | Rec _ -> ()
                      | _ ->
                        bad :=
                          Some
                            (Fmt.str "p%d: crash step not followed by a matching recovery step" p)
                    end
                  | Rec _ ->
                    if i = 0 then
                      bad := Some (Fmt.str "p%d: recovery step without preceding crash" p)
                    else begin
                      match hp.(i - 1) with
                      | Crash _ -> ()
                      | _ ->
                        bad := Some (Fmt.str "p%d: recovery step without preceding crash" p)
                    end
                  | Inv _ | Res _ -> ())
              hp;
            match !bad with Some m -> Violation m | None -> Ok
          end)
        Ok (procs h)
    in
    if not (is_ok crash_rule) then crash_rule else check_well_formed (n_of h)
end
