(** Steps of a history, following Section 2 of the paper.

    A history is a sequence of four kinds of steps:
    - an {e invocation} step [(INV, p, O, Op)],
    - a {e response} step [(RES, p, O, Op, ret)],
    - a {e crash} step [(CRASH, p)] whose {e crashed operation} is the
      inner-most recoverable operation of [p] pending when the crash
      occurred, and
    - a {e recovery} step [(REC, p)], the only step of [p] allowed to
      follow a crash step of [p].

    Each operation execution carries a unique [call_id] linking its
    invocation to its response; the well-formedness checkers validate the
    matching structurally and do not trust the ids blindly. *)

type opref = {
  obj : int;  (** object instance identifier *)
  obj_name : string;
  op : string;  (** operation name, e.g. "WRITE" *)
}

let pp_opref ppf r = Fmt.pf ppf "%s.%s" r.obj_name r.op

type t =
  | Inv of { pid : int; opref : opref; args : Nvm.Value.t array; call_id : int }
  | Res of {
      pid : int;
      opref : opref;
      ret : Nvm.Value.t;
      call_id : int;
      persisted : bool option;
          (** [Some true] if at the moment of the response the designated
              per-process persistent response variable held [ret]
              (Definition 1, strictness); [None] when the object declares
              no such variable. *)
    }
  | Crash of { pid : int; crashed : (opref * int) option }
      (** [crashed] identifies the crashed operation (inner-most pending
          recoverable operation), or [None] if the process had no pending
          operation when it failed. *)
  | Rec of { pid : int }

let pid = function
  | Inv { pid; _ } | Res { pid; _ } | Crash { pid; _ } | Rec { pid } -> pid

let pp ppf = function
  | Inv { pid; opref; args; call_id } ->
    Fmt.pf ppf "(INV, p%d, %a(%a)) #%d" pid pp_opref opref
      Fmt.(array ~sep:comma Nvm.Value.pp)
      args call_id
  | Res { pid; opref; ret; call_id; _ } ->
    Fmt.pf ppf "(RES, p%d, %a, %a) #%d" pid pp_opref opref Nvm.Value.pp ret call_id
  | Crash { pid; crashed = Some (r, id) } ->
    Fmt.pf ppf "(CRASH, p%d) [crashed: %a #%d]" pid pp_opref r id
  | Crash { pid; crashed = None } -> Fmt.pf ppf "(CRASH, p%d) [idle]" pid
  | Rec { pid } -> Fmt.pf ppf "(REC, p%d)" pid
