(** Coverage-guided fuzzing campaigns over scenario descriptors.

    A campaign runs descriptors sampled at seed indices [0 .. seeds-1];
    index [i]'s descriptor is a pure function of [(base_seed, i)], so the
    campaign is deterministic, restartable at any index, and extensible
    (the corpus stamp excludes the seed count — re-running with a larger
    budget resumes where the last run stopped).  Coverage is the set of
    configuration fingerprints seen after any applied decision of any
    run; a seed that discovers new fingerprints is kept in the corpus
    together with the hashes it discovered, which is what lets a resume
    rebuild the exact coverage set and the final corpus come out
    byte-identical to an uninterrupted run's. *)

module Prng = Machine.Schedule.Prng

type cfg = {
  base_seed : int;
  seeds : int;  (** seed indices to run: [0 .. seeds - 1] *)
  kinds : string list;
  shrink : bool;
  corpus_path : string option;
  resume : bool;
}

let default_cfg =
  {
    base_seed = 1;
    seeds = 100;
    kinds = Gen.base_kinds;
    shrink = true;
    corpus_path = None;
    resume = false;
  }

let stamp cfg =
  [
    ("what", "fuzz-campaign");
    ("base_seed", string_of_int cfg.base_seed);
    ("kinds", String.concat "+" cfg.kinds);
  ]

(* Index [i]'s descriptor seed: a fixed odd-constant mix so neighbouring
   indices land far apart in the PRNG's state space. *)
let index_seed base i = ((base * 1_000_003) + (i * 8191) + 1) land max_int

let descriptor cfg i = Gen.sample ~rng:(Prng.create (index_seed cfg.base_seed i)) ~kinds:cfg.kinds

type report = {
  r_stats : Corpus.stats;
  r_entries : Corpus.entry list;
  r_violations : Corpus.violation list;
  r_finished : bool;  (** ran the whole seed budget (vs stopped early) *)
}

type counters = {
  c_runs : Obs.Metrics.counter option;
  c_cov : Obs.Metrics.counter option;
  c_viol : Obs.Metrics.counter option;
  c_entries : Obs.Metrics.counter option;
}

let counters_of obs =
  let c name = Option.map (fun o -> Obs.Metrics.counter o name) obs in
  {
    c_runs = c Obs.Names.fuzz_runs;
    c_cov = c Obs.Names.fuzz_new_coverage;
    c_viol = c Obs.Names.fuzz_violations;
    c_entries = c Obs.Names.fuzz_corpus_entries;
  }

let bump c = Option.iter Obs.Metrics.Counter.incr c
let bump_by c n = Option.iter (fun c -> Obs.Metrics.Counter.add c n) c

let tr_event trace name fields =
  Option.iter (fun t -> Obs.Trace.event t ~name fields) trace

(* One seed index: sample, run with coverage collection, judge, shrink.
   Returns the corpus records to append and the stats delta. *)
let run_index ?obs ?trace ~shrink ~coverage cfg i =
  let cs = counters_of obs in
  let d = descriptor cfg i in
  let fresh = ref [] in
  let collect h =
    if not (Hashtbl.mem coverage h) then begin
      Hashtbl.replace coverage h ();
      fresh := h :: !fresh
    end
  in
  let verdict = Gen.run ?obs ~collect d in
  bump cs.c_runs;
  let cov = List.rev !fresh in
  bump_by cs.c_cov (List.length cov);
  let entry =
    if cov = [] then None
    else begin
      bump cs.c_entries;
      tr_event trace "fuzz.new_coverage"
        [
          ("index", Obs.Trace.Int i);
          ("desc", Obs.Trace.Str (Gen.to_string d));
          ("fingerprints", Obs.Trace.Int (List.length cov));
        ];
      Some { Corpus.e_index = i; e_desc = Gen.to_string d; e_cov = cov }
    end
  in
  let violation =
    match verdict.Gen.v_violation with
    | None -> None
    | Some reason ->
      bump cs.c_viol;
      tr_event trace "fuzz.violation"
        [
          ("index", Obs.Trace.Int i);
          ("desc", Obs.Trace.Str (Gen.to_string d));
          ("reason", Obs.Trace.Str reason);
        ];
      let shrunk, shrunk_reason, steps =
        if shrink then begin
          let o = Shrink.minimize ?obs d ~reason in
          tr_event trace "fuzz.shrunk"
            [
              ("index", Obs.Trace.Int i);
              ("desc", Obs.Trace.Str (Gen.to_string o.Shrink.s_desc));
              ("steps", Obs.Trace.Int o.Shrink.s_steps);
            ];
          (Some (Gen.to_string o.Shrink.s_desc), Some o.Shrink.s_reason, o.Shrink.s_steps)
        end
        else (None, None, 0)
      in
      Some
        {
          Corpus.x_index = i;
          x_desc = Gen.to_string d;
          x_reason = reason;
          x_shrunk = shrunk;
          x_shrunk_reason = shrunk_reason;
          x_shrink_steps = steps;
        }
  in
  (entry, violation)

let save_cadence = 16

let run ?obs ?trace ?progress ?(should_stop = fun () -> false) cfg =
  let coverage = Hashtbl.create 4096 in
  let start =
    match cfg.corpus_path with
    | Some path when cfg.resume && Sys.file_exists path -> (
      match Corpus.load path with
      | Error m -> Error m
      | Ok c ->
        if c.Corpus.stamp <> stamp cfg then
          Error
            (Printf.sprintf "%s: corpus stamp does not match this campaign (was: %s)" path
               (String.concat ", "
                  (List.map (fun (k, v) -> k ^ "=" ^ v) c.Corpus.stamp)))
        else begin
          List.iter
            (fun e -> List.iter (fun h -> Hashtbl.replace coverage h ()) e.Corpus.e_cov)
            c.Corpus.entries;
          Ok c
        end)
    | _ ->
      Ok
        {
          Corpus.stamp = stamp cfg;
          entries = [];
          violations = [];
          next = 0;
          stats = Corpus.zero_stats;
          result = None;
        }
  in
  match start with
  | Error m -> Error m
  | Ok c0 ->
    (* accumulate in reverse, serialise in discovery order *)
    let entries = ref (List.rev c0.Corpus.entries) in
    let violations = ref (List.rev c0.Corpus.violations) in
    let stats = ref c0.Corpus.stats in
    let snapshot ~next ~result =
      {
        Corpus.stamp = stamp cfg;
        entries = List.rev !entries;
        violations = List.rev !violations;
        next;
        stats = !stats;
        result;
      }
    in
    let save ~next ~result =
      Option.iter (fun path -> Corpus.save ~path (snapshot ~next ~result)) cfg.corpus_path
    in
    let stopped = ref false in
    let i = ref c0.Corpus.next in
    let dirty = ref false in
    Option.iter (fun p -> Obs.Progress.set_tasks p (cfg.seeds - !i)) progress;
    while (not !stopped) && !i < cfg.seeds do
      if should_stop () then stopped := true
      else begin
        let entry, violation =
          run_index ?obs ?trace ~shrink:cfg.shrink ~coverage cfg !i
        in
        let s = !stats in
        stats :=
          {
            Corpus.runs = s.Corpus.runs + 1;
            new_coverage =
              (s.Corpus.new_coverage
              + match entry with Some e -> List.length e.Corpus.e_cov | None -> 0);
            violations = (s.Corpus.violations + if violation = None then 0 else 1);
            shrink_steps =
              (s.Corpus.shrink_steps
              + match violation with Some x -> x.Corpus.x_shrink_steps | None -> 0);
            corpus_entries = (s.Corpus.corpus_entries + if entry = None then 0 else 1);
          };
        Option.iter (fun e -> entries := e :: !entries) entry;
        Option.iter (fun x -> violations := x :: !violations) violation;
        dirty := !dirty || entry <> None || violation <> None;
        incr i;
        Option.iter
          (fun p ->
            Obs.Progress.task_done p;
            Obs.Progress.tick p ~nodes:1)
          progress;
        if !dirty || !i mod save_cadence = 0 then begin
          save ~next:!i ~result:None;
          dirty := false
        end
      end
    done;
    let finished = !i >= cfg.seeds in
    let result =
      if not finished then None
      else
        match List.rev !violations with
        | [] -> Some ("clean", "")
        | x :: _ -> Some ("violation", x.Corpus.x_reason)
    in
    save ~next:!i ~result;
    Ok
      {
        r_stats = !stats;
        r_entries = List.rev !entries;
        r_violations = List.rev !violations;
        r_finished = finished;
      }

(* {2 Zoo detection} *)

type detection = {
  z_mutant : Objects.Zoo.mutant;
  z_seeds_tried : int;
  z_found : (Gen.t * string) option;  (** first violating descriptor and why *)
  z_shrunk : Shrink.outcome option;
}

let default_zoo_budget = 150

let zoo ?obs ?trace ?(should_stop = fun () -> false) ?(shrink = true)
    ?(budget_seeds = default_zoo_budget) ?(mutants = Objects.Zoo.all) ~base_seed () =
  let cs = counters_of obs in
  List.map
    (fun m ->
      let mutant_base = base_seed lxor Hashtbl.hash m.Objects.Zoo.m_name in
      let kinds = [ m.Objects.Zoo.m_name ] in
      let rec hunt i =
        if i >= budget_seeds || should_stop () then (i, None)
        else begin
          let d = Gen.sample ~rng:(Prng.create (index_seed mutant_base i)) ~kinds in
          let verdict = Gen.run ?obs d in
          bump cs.c_runs;
          match verdict.Gen.v_violation with
          | Some reason -> (i + 1, Some (d, reason))
          | None -> hunt (i + 1)
        end
      in
      let tried, found = hunt 0 in
      (match found with
      | Some (d, reason) ->
        bump cs.c_viol;
        tr_event trace "fuzz.zoo.detected"
          [
            ("mutant", Obs.Trace.Str m.Objects.Zoo.m_name);
            ("seeds", Obs.Trace.Int tried);
            ("desc", Obs.Trace.Str (Gen.to_string d));
            ("reason", Obs.Trace.Str reason);
          ]
      | None ->
        tr_event trace "fuzz.zoo.missed"
          [
            ("mutant", Obs.Trace.Str m.Objects.Zoo.m_name);
            ("seeds", Obs.Trace.Int tried);
          ]);
      let shrunk =
        match found with
        | Some (d, reason) when shrink -> Some (Shrink.minimize ?obs d ~reason)
        | _ -> None
      in
      { z_mutant = m; z_seeds_tried = tried; z_found = found; z_shrunk = shrunk })
    mutants

let pp_detection ppf z =
  match z.z_found with
  | None ->
    Fmt.pf ppf "%-26s MISSED after %d seeds" z.z_mutant.Objects.Zoo.m_name z.z_seeds_tried
  | Some (_, reason) ->
    Fmt.pf ppf "%-26s detected at seed %d%a: %s" z.z_mutant.Objects.Zoo.m_name
      (z.z_seeds_tried - 1)
      Fmt.(
        option (fun ppf (o : Shrink.outcome) ->
            Fmt.pf ppf " (shrunk in %d runs)" o.Shrink.s_steps))
      z.z_shrunk reason
