(** Counterexample shrinking: greedy delta-debugging over descriptors.

    Given a violating descriptor, repeatedly propose structurally smaller
    variants — fewer processes, shorter scripts, fewer crash points,
    shorter schedules, simpler junk — re-run the checker on each, adopt
    the first variant that still violates (any violation counts: the
    minimal reproducer need not fail for the original reason), and loop
    to a fixpoint.  Every attempt is one full machine run, counted into
    [fuzz.shrink_steps]. *)

(* Smaller-first candidate moves.  Halving moves come before decrements so
   big descriptors collapse in O(log) adopted steps; each move must
   strictly shrink some component or it would loop. *)
let candidates (d : Gen.t) =
  List.filter_map
    (fun x -> x)
    [
      (if d.nprocs > 2 then Some { d with nprocs = d.nprocs - 1 } else None);
      (if d.ops > 1 && d.ops / 2 < d.ops then Some { d with ops = max 1 (d.ops / 2) } else None);
      (if d.ops > 1 then Some { d with ops = d.ops - 1 } else None);
      (if d.max_crashes > 1 && d.max_crashes / 2 < d.max_crashes then
         Some { d with max_crashes = max 1 (d.max_crashes / 2) }
       else None);
      (if d.max_crashes > 1 then Some { d with max_crashes = d.max_crashes - 1 } else None);
      (if d.max_steps > 100 then Some { d with max_steps = max 100 (d.max_steps / 2) } else None);
      (if d.system_pm > 0 then Some { d with system_pm = 0 } else None);
      (if d.junk <> "zeros" then Some { d with junk = "zeros" } else None);
    ]

type outcome = {
  s_desc : Gen.t;  (** the minimised descriptor (possibly the input) *)
  s_reason : string;  (** why the minimised descriptor still violates *)
  s_steps : int;  (** candidate runs executed *)
}

let default_max_attempts = 400

let minimize ?(max_attempts = default_max_attempts) ?obs d ~reason =
  let steps = ref 0 in
  let shrink_steps = Option.map (fun o -> Obs.Metrics.counter o Obs.Names.fuzz_shrink_steps) obs in
  let runs = Option.map (fun o -> Obs.Metrics.counter o Obs.Names.fuzz_runs) obs in
  let try_one c =
    incr steps;
    Option.iter Obs.Metrics.Counter.incr shrink_steps;
    Option.iter Obs.Metrics.Counter.incr runs;
    (Gen.run ?obs c).v_violation
  in
  let rec fixpoint d reason =
    let rec first = function
      | [] -> (d, reason)
      | c :: rest when !steps < max_attempts -> (
        match try_one c with
        | Some r -> fixpoint c r
        | None -> first rest)
      | _ -> (d, reason)
    in
    if !steps >= max_attempts then (d, reason) else first (candidates d)
  in
  let s_desc, s_reason = fixpoint d reason in
  { s_desc; s_reason; s_steps = !steps }
