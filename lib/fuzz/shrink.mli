(** Counterexample shrinking: greedy delta-debugging over descriptors.

    Starting from a violating descriptor, propose structurally smaller
    variants — drop a process, halve or shorten the per-process script,
    halve the crash budget, shorten the schedule, zero the system-crash
    probability, simplify the junk strategy — re-run the full checker on
    each candidate, adopt the first that still violates (any violation
    counts, not necessarily the original reason), and iterate to a
    fixpoint.  Deterministic: candidates are proposed in a fixed order
    and each candidate run is a pure function of its descriptor. *)

val candidates : Gen.t -> Gen.t list
(** The shrinking moves applicable to a descriptor, smaller-first
    (halvings before decrements).  Every candidate is strictly smaller in
    some component, so adopting candidates terminates. *)

type outcome = {
  s_desc : Gen.t;  (** the minimised descriptor (possibly the input) *)
  s_reason : string;  (** why the minimised descriptor still violates *)
  s_steps : int;  (** candidate runs executed *)
}

val default_max_attempts : int
(** 400. *)

val minimize : ?max_attempts:int -> ?obs:Obs.Metrics.t -> Gen.t -> reason:string -> outcome
(** Shrink a violating descriptor.  [reason] is the violation the input
    is known to exhibit (returned unchanged if nothing smaller
    violates).  Each candidate run bumps [fuzz.shrink_steps] and
    [fuzz.runs] in [obs]. *)
