(** Coverage-guided fuzzing campaigns over scenario descriptors.

    A campaign runs the descriptors sampled at seed indices
    [0 .. seeds-1]; index [i]'s descriptor is a pure function of
    [(base_seed, i)], which makes the campaign deterministic, restartable
    at any index ([--resume]) and extensible (the corpus stamp excludes
    the seed count, so re-running with a larger [seeds] continues where
    the finished corpus stopped).  Coverage is the set of configuration
    fingerprints ({!Machine.Fingerprint}) observed after any applied
    decision of any run; seeds that discover new fingerprints are kept in
    the corpus with the hashes they discovered, so a resume rebuilds the
    exact coverage set and the final corpus is byte-identical to an
    uninterrupted run's.

    Counters ({!Obs.Names}): [fuzz.runs], [fuzz.new_coverage],
    [fuzz.violations], [fuzz.shrink_steps], [fuzz.corpus_entries].
    Trace events: [fuzz.new_coverage], [fuzz.violation], [fuzz.shrunk],
    [fuzz.zoo.detected], [fuzz.zoo.missed]. *)

type cfg = {
  base_seed : int;
  seeds : int;  (** seed indices to run: [0 .. seeds - 1] *)
  kinds : string list;  (** drawn from {!Gen.all_kinds} *)
  shrink : bool;  (** minimise each violating descriptor *)
  corpus_path : string option;  (** persist/resume the campaign here *)
  resume : bool;  (** continue from [corpus_path] if it exists *)
}

val default_cfg : cfg
(** [base_seed = 1], [seeds = 100], the four base kinds, shrinking on,
    no corpus file. *)

val stamp : cfg -> (string * string) list
(** What a corpus must match to be resumed: base seed and kind list —
    {e not} the seed count, so a campaign can be extended. *)

val descriptor : cfg -> int -> Gen.t
(** The descriptor at a seed index — pure in [(cfg.base_seed, index)]. *)

type report = {
  r_stats : Corpus.stats;
  r_entries : Corpus.entry list;
  r_violations : Corpus.violation list;
  r_finished : bool;  (** ran the whole seed budget (vs stopped early) *)
}

val run :
  ?obs:Obs.Metrics.t ->
  ?trace:Obs.Trace.t ->
  ?progress:Obs.Progress.t ->
  ?should_stop:(unit -> bool) ->
  cfg ->
  (report, string) result
(** Run (or resume) a campaign.  [should_stop] is polled between seed
    indices — on budget exhaustion or a signal the campaign saves a
    resumable corpus and returns with [r_finished = false].  [Error]
    reports an unreadable corpus or a stamp mismatch.  Stats in the
    report are cumulative across resumes (they ride in the corpus);
    [obs] counters only reflect work done by this process. *)

(** {1 Zoo detection} *)

type detection = {
  z_mutant : Objects.Zoo.mutant;
  z_seeds_tried : int;
  z_found : (Gen.t * string) option;  (** first violating descriptor and why *)
  z_shrunk : Shrink.outcome option;
}

val default_zoo_budget : int
(** 150 — the per-mutant seed budget the pinned detection test allows
    ({!zoo}'s default).  Empirically every mutant falls within 60 seeds
    at [base_seed = 1]; the slack absorbs generator-range tweaks. *)

val zoo :
  ?obs:Obs.Metrics.t ->
  ?trace:Obs.Trace.t ->
  ?should_stop:(unit -> bool) ->
  ?shrink:bool ->
  ?budget_seeds:int ->
  ?mutants:Objects.Zoo.mutant list ->
  base_seed:int ->
  unit ->
  detection list
(** Measure detection power: for each mutant, fuzz scenarios restricted
    to that mutant's kind until it violates or the per-mutant seed budget
    runs out, then shrink the counterexample.  Deterministic in
    [base_seed]. *)

val pp_detection : detection Fmt.t
