(** Scenario descriptors: the fuzzer's genotype.

    A descriptor packs {e every} parameter a fuzzed run depends on — the
    object kind, process count, operation mix, crash schedule shape, junk
    strategy, and both seeds — into a flat record of small integers and
    names.  {!run} is a pure function of the descriptor, so its printed
    form ({!to_string}) is a complete, replayable reproducer
    ([nrlsim fuzz --replay]).  Probabilities are per-mille integers to
    keep the text form exact. *)

type t = {
  kind : string;  (** base scenario kind or zoo mutant name *)
  nprocs : int;
  ops : int;  (** per-process operation count (ignored by tas workloads) *)
  mix_pm : int;  (** mutating-op ratio (write/cas/inc), per mille *)
  scen_seed : int;  (** machine seed: junk generator + workload rng *)
  sched_seed : int;  (** random-schedule seed *)
  crash_pm : int;  (** per-process crash probability, per mille *)
  recover_pm : int;  (** recovery probability per consideration, per mille *)
  system_pm : int;  (** full-system crash probability, per mille *)
  max_crashes : int;
  max_steps : int;
  junk : string;  (** junk strategy name ({!Machine.Junk.strategy_names}) *)
}

val base_kinds : string list
(** The four paper algorithms: ["register"; "cas"; "tas"; "counter"]. *)

val all_kinds : string list
(** {!base_kinds} plus every zoo mutant name ({!Objects.Zoo.all}). *)

val algo_of : string -> string
(** The workload shape a kind wants: itself for base kinds, the base
    algorithm for zoo mutants.  @raise Invalid_argument on unknown kinds. *)

val to_string : t -> string
(** Canonical one-line form, e.g.
    ["kind=cas,n=4,ops=7,mix=700,seed=123,sched=456,crash=80,rec=500,sys=0,maxc=5,steps=1200,junk=lure"].
    [of_string (to_string d) = Ok d]. *)

val of_string : string -> (t, string) result

val sample : rng:Machine.Schedule.Prng.t -> kinds:string list -> t
(** Draw a descriptor uniformly from the generator's ranges, restricted to
    the given kinds.  The ranges deliberately exceed the exhaustive
    explorer's envelope (2-5 processes, 2-10 ops, up to 10 crashes, every
    junk strategy).  @raise Invalid_argument on an empty or unknown kind
    list. *)

val build : t -> Machine.Sim.t -> unit
(** Allocate the descriptor's object and install its per-process scripts
    (the {!Workload.Trial.scenario} build function). *)

val scenario : t -> Workload.Trial.scenario
(** The descriptor as a {!Workload.Trial.scenario} (name = {!to_string}). *)

type verdict = {
  v_outcome : Machine.Schedule.outcome;
  v_steps : int;
  v_violation : string option;
      (** an NRL counterexample or a Definition 1 (strictness) breach;
          [None] for a clean run *)
}

val judge : Machine.Sim.t -> string option
(** The fuzzer's violation predicate on a finished machine: the NRL
    verdict, or failing that a count of unpersisted strict responses. *)

val run : ?obs:Obs.Metrics.t -> ?collect:(int -> unit) -> t -> verdict
(** Execute the descriptor: build the machine, apply the junk strategy,
    drive the seeded random schedule to completion or [max_steps], then
    {!judge}.  [collect] receives the configuration fingerprint hash
    after every applied decision — the campaign's coverage signal —
    masked to 53 bits so corpus files round-trip it exactly through
    JSON doubles.
    Deterministic: equal descriptors yield equal verdicts and equal
    [collect] sequences. *)
