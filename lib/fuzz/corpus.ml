(** On-disk fuzzing corpus: NDJSON, schema ["nrl-corpus/1"].

    The file is the campaign's whole resumable state: the stamp of what
    was being fuzzed, one record per coverage-increasing seed (with the
    fingerprint hashes it discovered, so the global coverage set
    reconstructs exactly on resume), one record per violation (with its
    shrunk reproducer), a progress record with the next index and the
    running statistics, and — once the campaign ran its budget — a result
    record.  Like {!Machine.Checkpoint}: saves are atomic
    (write-to-temporary then rename), loads are strict, and nothing
    nondeterministic (no timestamps) is written, so a fixed-seed campaign
    produces a byte-identical file however often it is re-run or
    resumed. *)

module Json = Machine.Checkpoint.Json

let schema_version = "nrl-corpus/1"

type entry = {
  e_index : int;
  e_desc : string;
  e_cov : int list;  (** fingerprint hashes this run saw first, in order *)
}

type violation = {
  x_index : int;
  x_desc : string;
  x_reason : string;
  x_shrunk : string option;  (** minimised descriptor, when shrinking ran *)
  x_shrunk_reason : string option;
  x_shrink_steps : int;
}

type stats = {
  runs : int;
  new_coverage : int;
  violations : int;
  shrink_steps : int;
  corpus_entries : int;
}

let zero_stats = { runs = 0; new_coverage = 0; violations = 0; shrink_steps = 0; corpus_entries = 0 }

type t = {
  stamp : (string * string) list;
  entries : entry list;  (** in discovery order *)
  violations : violation list;  (** in discovery order *)
  next : int;  (** first seed index not yet run *)
  stats : stats;
  result : (string * string) option;
}

(* {2 Writing} *)

let esc = Machine.Checkpoint.json_escape

let buf_entry b e =
  Buffer.add_string b
    (Printf.sprintf "{\"type\":\"entry\",\"index\":%d,\"desc\":\"%s\",\"cov\":[" e.e_index
       (esc e.e_desc));
  List.iteri
    (fun i h ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (string_of_int h))
    e.e_cov;
  Buffer.add_string b "]}\n"

let buf_violation b x =
  Buffer.add_string b
    (Printf.sprintf "{\"type\":\"violation\",\"index\":%d,\"desc\":\"%s\",\"reason\":\"%s\""
       x.x_index (esc x.x_desc) (esc x.x_reason));
  (match x.x_shrunk, x.x_shrunk_reason with
  | Some d, Some r ->
    Buffer.add_string b
      (Printf.sprintf ",\"shrunk\":\"%s\",\"shrunk_reason\":\"%s\"" (esc d) (esc r))
  | _ -> ());
  Buffer.add_string b (Printf.sprintf ",\"shrink_steps\":%d}\n" x.x_shrink_steps)

let to_string t =
  let b = Buffer.create 4096 in
  Buffer.add_string b (Printf.sprintf "{\"schema\":\"%s\"}\n" schema_version);
  List.iter
    (fun (k, v) ->
      Buffer.add_string b
        (Printf.sprintf "{\"type\":\"stamp\",\"key\":\"%s\",\"value\":\"%s\"}\n" (esc k) (esc v)))
    t.stamp;
  List.iter (buf_entry b) t.entries;
  List.iter (buf_violation b) t.violations;
  Buffer.add_string b
    (Printf.sprintf
       "{\"type\":\"progress\",\"next\":%d,\"runs\":%d,\"new_coverage\":%d,\"violations\":%d,\"shrink_steps\":%d,\"corpus_entries\":%d}\n"
       t.next t.stats.runs t.stats.new_coverage t.stats.violations t.stats.shrink_steps
       t.stats.corpus_entries);
  (match t.result with
  | Some (verdict, detail) ->
    Buffer.add_string b
      (Printf.sprintf "{\"type\":\"result\",\"verdict\":\"%s\",\"detail\":\"%s\"}\n" (esc verdict)
         (esc detail))
  | None -> ());
  Buffer.contents b

let save ~path t =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (to_string t);
  close_out oc;
  Sys.rename tmp path

(* {2 Reading} *)

let load path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let lines = ref [] in
        (try
           while true do
             let l = input_line ic in
             if String.trim l <> "" then lines := l :: !lines
           done
         with End_of_file -> ());
        List.rev !lines)
  with
  | exception Sys_error m -> Error m
  | [] -> Error (path ^ ": empty corpus")
  | header :: rest -> (
    try
      let j = Json.parse header in
      let schema = Json.to_string (Json.member "schema" j) in
      if schema <> schema_version then
        Error (Printf.sprintf "%s: schema %S, expected %S" path schema schema_version)
      else begin
        let stamp = ref [] and entries = ref [] and violations = ref [] in
        let next = ref 0 and stats = ref zero_stats and result = ref None in
        List.iter
          (fun line ->
            let j = Json.parse line in
            match Json.to_string (Json.member "type" j) with
            | "stamp" ->
              stamp :=
                (Json.to_string (Json.member "key" j), Json.to_string (Json.member "value" j))
                :: !stamp
            | "entry" ->
              entries :=
                {
                  e_index = Json.to_int (Json.member "index" j);
                  e_desc = Json.to_string (Json.member "desc" j);
                  e_cov = List.map Json.to_int (Json.to_list (Json.member "cov" j));
                }
                :: !entries
            | "violation" ->
              let opt_str k =
                match Json.member k j with
                | s -> Some (Json.to_string s)
                | exception Json.Bad _ -> None
              in
              violations :=
                {
                  x_index = Json.to_int (Json.member "index" j);
                  x_desc = Json.to_string (Json.member "desc" j);
                  x_reason = Json.to_string (Json.member "reason" j);
                  x_shrunk = opt_str "shrunk";
                  x_shrunk_reason = opt_str "shrunk_reason";
                  x_shrink_steps = Json.to_int (Json.member "shrink_steps" j);
                }
                :: !violations
            | "progress" ->
              next := Json.to_int (Json.member "next" j);
              stats :=
                {
                  runs = Json.to_int (Json.member "runs" j);
                  new_coverage = Json.to_int (Json.member "new_coverage" j);
                  violations = Json.to_int (Json.member "violations" j);
                  shrink_steps = Json.to_int (Json.member "shrink_steps" j);
                  corpus_entries = Json.to_int (Json.member "corpus_entries" j);
                }
            | "result" ->
              result :=
                Some
                  ( Json.to_string (Json.member "verdict" j),
                    Json.to_string (Json.member "detail" j) )
            | other -> raise (Json.Bad (Printf.sprintf "unknown record type %S" other)))
          rest;
        Ok
          {
            stamp = List.rev !stamp;
            entries = List.rev !entries;
            violations = List.rev !violations;
            next = !next;
            stats = !stats;
            result = !result;
          }
      end
    with
    | Json.Bad m -> Error (Printf.sprintf "%s: %s" path m)
    | Failure m -> Error (Printf.sprintf "%s: %s" path m))
