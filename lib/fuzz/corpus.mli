(** On-disk fuzzing corpus: NDJSON, schema ["nrl-corpus/1"] (documented
    field by field in docs/fuzzing.md).

    The corpus is the campaign's whole resumable state: a stamp of what
    was being fuzzed (a resume must present an equal stamp or be
    rejected), one record per coverage-increasing seed — including the
    fingerprint hashes it discovered, so the global coverage set
    reconstructs {e exactly} on resume — one record per violation with
    its shrunk reproducer, a progress record, and a result record once
    the budget ran out.  {!save} is atomic (write-to-temporary, then
    [Sys.rename]) and writes nothing nondeterministic, so a fixed-seed
    campaign produces a byte-identical corpus however often it is re-run
    or resumed. *)

val schema_version : string
(** ["nrl-corpus/1"]. *)

type entry = {
  e_index : int;  (** seed index within the campaign *)
  e_desc : string;  (** the descriptor, {!Gen.to_string} form *)
  e_cov : int list;  (** fingerprint hashes this run saw first, in order *)
}

type violation = {
  x_index : int;
  x_desc : string;  (** the descriptor that violated *)
  x_reason : string;
  x_shrunk : string option;  (** minimised descriptor, when shrinking ran *)
  x_shrunk_reason : string option;
  x_shrink_steps : int;
}

type stats = {
  runs : int;
  new_coverage : int;
  violations : int;
  shrink_steps : int;
  corpus_entries : int;
}

val zero_stats : stats

type t = {
  stamp : (string * string) list;
  entries : entry list;  (** in discovery order *)
  violations : violation list;  (** in discovery order *)
  next : int;  (** first seed index not yet run *)
  stats : stats;
  result : (string * string) option;
      (** [("clean", "")] or [("violation", first reason)] once the
          campaign ran its whole budget; [None] while resumable *)
}

val to_string : t -> string
(** The serialised NDJSON document (what {!save} writes). *)

val save : path:string -> t -> unit
(** Serialize atomically: write [path ^ ".tmp"], then rename over
    [path]. *)

val load : string -> (t, string) result
(** Parse a corpus file; [Error] describes unreadable files, malformed
    records and schema mismatches. *)
