(** Scenario descriptors: the fuzzer's genotype.

    A descriptor is a flat record of small integers and two names — every
    parameter a fuzzed run depends on.  The integers include the scenario
    and schedule seeds, so a descriptor is a {e complete} replay recipe:
    [run (parse s)] reproduces a run bit-for-bit from its printed form.
    Probabilities are stored in per-mille (so descriptors round-trip
    through text without float formatting hazards). *)

module Prng = Machine.Schedule.Prng

type t = {
  kind : string;  (** base scenario kind or zoo mutant name *)
  nprocs : int;
  ops : int;  (** per-process operation count (ignored by tas workloads) *)
  mix_pm : int;  (** mutating-op ratio (write/cas/inc), per mille *)
  scen_seed : int;  (** machine seed: junk generator + workload rng *)
  sched_seed : int;  (** random-schedule seed *)
  crash_pm : int;  (** per-process crash probability, per mille *)
  recover_pm : int;  (** recovery probability per consideration, per mille *)
  system_pm : int;  (** full-system crash probability, per mille *)
  max_crashes : int;
  max_steps : int;
  junk : string;  (** junk strategy name, see {!Machine.Junk.strategy_names} *)
}

let base_kinds = [ "register"; "cas"; "tas"; "counter" ]

let all_kinds = base_kinds @ List.map (fun m -> m.Objects.Zoo.m_name) Objects.Zoo.all

let validate_kind k =
  if not (List.mem k all_kinds) then
    invalid_arg (Printf.sprintf "Fuzz.Gen: unknown scenario kind %S" k)

(* The workload shape a kind wants: its own name for base kinds, the base
   algorithm's for zoo mutants. *)
let algo_of kind =
  match Objects.Zoo.find kind with
  | Some m -> m.Objects.Zoo.m_algo
  | None ->
    validate_kind kind;
    kind

(* {2 Printing and parsing} *)

let to_string d =
  Printf.sprintf
    "kind=%s,n=%d,ops=%d,mix=%d,seed=%d,sched=%d,crash=%d,rec=%d,sys=%d,maxc=%d,steps=%d,junk=%s"
    d.kind d.nprocs d.ops d.mix_pm d.scen_seed d.sched_seed d.crash_pm d.recover_pm
    d.system_pm d.max_crashes d.max_steps d.junk

let of_string s =
  let fail fmt = Printf.ksprintf (fun m -> Error ("Fuzz.Gen.of_string: " ^ m)) fmt in
  let fields = String.split_on_char ',' s in
  let kvs =
    List.map
      (fun f ->
        match String.index_opt f '=' with
        | Some i -> (String.sub f 0 i, String.sub f (i + 1) (String.length f - i - 1))
        | None -> (f, ""))
      fields
  in
  let str k = Option.to_result ~none:(Printf.sprintf "missing field %s" k) (List.assoc_opt k kvs) in
  let int k =
    Result.bind (str k) (fun v ->
        match int_of_string_opt v with
        | Some n -> Ok n
        | None -> Error (Printf.sprintf "field %s: not an integer: %S" k v))
  in
  let ( let* ) = Result.bind in
  match
    let* kind = str "kind" in
    let* nprocs = int "n" in
    let* ops = int "ops" in
    let* mix_pm = int "mix" in
    let* scen_seed = int "seed" in
    let* sched_seed = int "sched" in
    let* crash_pm = int "crash" in
    let* recover_pm = int "rec" in
    let* system_pm = int "sys" in
    let* max_crashes = int "maxc" in
    let* max_steps = int "steps" in
    let* junk = str "junk" in
    if not (List.mem kind all_kinds) then Error (Printf.sprintf "unknown kind %S" kind)
    else if not (List.mem junk Machine.Junk.strategy_names) then
      Error (Printf.sprintf "unknown junk strategy %S" junk)
    else if nprocs < 1 || ops < 1 || max_steps < 1 || max_crashes < 0 then
      Error "out-of-range field"
    else
      Ok
        {
          kind;
          nprocs;
          ops;
          mix_pm;
          scen_seed;
          sched_seed;
          crash_pm;
          recover_pm;
          system_pm;
          max_crashes;
          max_steps;
          junk;
        }
  with
  | Ok d -> Ok d
  | Error m -> fail "%s (in %S)" m s

(* {2 Sampling} *)

(* Ranges deliberately reach beyond the exhaustive-exploration envelope
   (explore tops out around 3 processes and a couple of ops): more
   processes, longer scripts, many crashes, all junk strategies. *)
let sample ~rng ~kinds =
  (match kinds with [] -> invalid_arg "Fuzz.Gen.sample: empty kind list" | _ -> ());
  List.iter validate_kind kinds;
  let kind = Prng.pick rng kinds in
  let nprocs = 2 + Prng.int rng 4 in
  let ops = 2 + Prng.int rng 9 in
  let mix_pm = 100 + Prng.int rng 801 in
  let scen_seed = 1 + Prng.int rng 1_000_000 in
  let sched_seed = 1 + Prng.int rng 1_000_000 in
  let crash_pm = 20 + Prng.int rng 281 in
  let recover_pm = 200 + Prng.int rng 701 in
  let system_pm = if Prng.int rng 5 = 0 then 10 + Prng.int rng 91 else 0 in
  let max_crashes = 2 + Prng.int rng 9 in
  let max_steps = 600 + (200 * Prng.int rng 18) in
  let junk = Prng.pick rng Machine.Junk.strategy_names in
  {
    kind;
    nprocs;
    ops;
    mix_pm;
    scen_seed;
    sched_seed;
    crash_pm;
    recover_pm;
    system_pm;
    max_crashes;
    max_steps;
    junk;
  }

(* {2 Building and running} *)

let script_for d ~rng ~pid ~cell inst =
  let ratio = float_of_int d.mix_pm /. 1000.0 in
  match algo_of d.kind with
  | "register" ->
    Workload.Opgen.register_ops ~rng ~pid ~count:d.ops ~write_ratio:ratio inst
  | "cas" ->
    let cell =
      match cell with
      | Some c -> c
      | None -> invalid_arg "Fuzz.Gen: cas workload without a C cell"
    in
    Workload.Opgen.cas_ops ~rng ~pid ~count:d.ops ~cas_ratio:ratio inst ~cell
  | "tas" -> Workload.Opgen.tas_ops inst
  | "counter" -> Workload.Opgen.counter_ops ~rng ~count:d.ops ~inc_ratio:ratio inst
  | other -> invalid_arg (Printf.sprintf "Fuzz.Gen: unknown workload shape %S" other)

let build d sim =
  let inst, cell =
    match d.kind with
    | "register" -> (Objects.Rw_obj.make sim ~name:"R", None)
    | "cas" ->
      let inst, cells = Objects.Cas_obj.make_ex sim ~name:"C" in
      (inst, Some cells.Objects.Cas_obj.c)
    | "tas" -> (Objects.Tas_obj.make sim ~name:"T", None)
    | "counter" -> (Objects.Counter_obj.make sim ~name:"CTR", None)
    | kind -> (
      match Objects.Zoo.find kind with
      | Some m -> Objects.Zoo.make m sim ~name:"Z"
      | None -> invalid_arg (Printf.sprintf "Fuzz.Gen: unknown scenario kind %S" kind))
  in
  let rng = Prng.create d.scen_seed in
  for p = 0 to d.nprocs - 1 do
    Machine.Sim.set_script sim p (script_for d ~rng ~pid:p ~cell inst)
  done

let scenario d =
  { Workload.Trial.scen_name = to_string d; nprocs = d.nprocs; build = build d }

type verdict = {
  v_outcome : Machine.Schedule.outcome;
  v_steps : int;
  v_violation : string option;
}

let judge sim =
  match Workload.Check.nrl_violation sim with
  | Some reason -> Some reason
  | None -> (
    match Workload.Check.strictness_violations sim with
    | [] -> None
    | vs ->
      Some (Printf.sprintf "strictness: %d completed responses never persisted" (List.length vs)))

(* Like {!Workload.Trial.run} but driving the schedule loop ourselves so a
   [collect] callback can fingerprint the configuration after every applied
   decision — the campaign's coverage signal. *)
let run ?obs ?collect d =
  let sim = Machine.Sim.create ~seed:d.scen_seed ~nprocs:d.nprocs () in
  Machine.Sim.set_obs sim obs;
  build d sim;
  Machine.Sim.apply_junk_strategy sim d.junk;
  let policy =
    Machine.Schedule.random
      ~crash_prob:(float_of_int d.crash_pm /. 1000.0)
      ~recover_prob:(float_of_int d.recover_pm /. 1000.0)
      ~max_crashes:d.max_crashes
      ~system_crash_prob:(float_of_int d.system_pm /. 1000.0)
      ~seed:d.sched_seed ()
  in
  (* masked to 53 bits so corpus hashes survive the JSON float round-trip
     exactly (doubles represent integers up to 2^53) *)
  let touch () =
    match collect with
    | None -> ()
    | Some f ->
      f (Machine.Fingerprint.hash (Machine.Fingerprint.of_sim sim) land 0x1F_FFFF_FFFF_FFFF)
  in
  let rec loop steps =
    if Machine.Sim.all_done sim then Machine.Schedule.Completed
    else if steps >= d.max_steps then Machine.Schedule.Out_of_steps
    else
      match policy sim with
      | Machine.Schedule.Dhalt -> Machine.Schedule.Halted
      | dec ->
        Machine.Schedule.apply sim dec;
        touch ();
        loop (steps + 1)
  in
  let outcome = loop 0 in
  {
    v_outcome = outcome;
    v_steps = Machine.Sim.total_steps sim;
    v_violation = judge sim;
  }
