(** Machine-readable benchmark output: the [BENCH_explore.json] document
    the bench harness writes with [--json], tracked across PRs as a CI
    artifact.

    Schema ["nrl-bench/3"]:

    - [domains_available]: [Domain.recommended_domain_count ()] on the
      measuring host — read it before trusting any jobs-scaling row;
    - [ns_per_op]: one row per latency estimate (tables T1-T4 and the
      figure sweeps that fit an OLS model), [{section; name; ns}] with
      [ns = null] when the fit failed;
    - [persist_events]: table T5 — shared accesses (the model's persist
      events) per operation at each process count;
    - [explore]: tables T6 (work-stealing jobs scaling), T7
      (branching-discipline and check-mode throughput) and T8
      (process-symmetry quotienting), each row carrying the full engine
      configuration ([jobs]/[dedup]/[trail]/[mode]/[symmetry]) plus the
      statistics and the derived [nodes_per_sec] / [terminals_per_sec]
      rates.

    Version 2 lacked the [symmetry] field on [explore] rows; version 1
    had only [ns_per_op] (left empty by the explore-only CI smoke run)
    and [explore] rows without the [section]/[trail]/[mode] fields. *)

let schema_version = "nrl-bench/3"

type ns_row = { ns_section : string; ns_name : string; ns_ns : float }

type persist_row = { pe_op : string; pe_nprocs : int; pe_accesses : int }

type explore_row = {
  er_section : string;  (** ["T6"], ["T7"] or ["T8"] *)
  er_scenario : string;
  er_nprocs : int;
  er_ops : int;
  er_jobs : int;
  er_dedup : bool;
  er_trail : bool;
  er_sym : bool;  (** process-symmetry quotienting active for this run *)
  er_mode : string;  (** ["dfs"], ["check-terminal"] or ["check-incremental"] *)
  er_terminals : int;
  er_nodes : int;
  er_dup : int;
  er_seconds : float;
}

type t = {
  domains_available : int;
  ns_per_op : ns_row list;
  persist_events : persist_row list;
  explore : explore_row list;
}

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* nan (a failed OLS fit) and infinities (a zero-duration measurement)
   have no JSON literal: emit null *)
let number v = if Float.is_finite v then Printf.sprintf "%.3f" v else "null"

let rate num seconds = if seconds > 0. then float_of_int num /. seconds else nan

let add_rows buf rows render =
  List.iteri
    (fun i r ->
      Buffer.add_string buf (render r);
      Buffer.add_string buf (if i = List.length rows - 1 then "\n" else ",\n"))
    rows

let render t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"schema\": \"%s\",\n" schema_version);
  Buffer.add_string buf
    (Printf.sprintf "  \"domains_available\": %d,\n" t.domains_available);
  Buffer.add_string buf "  \"ns_per_op\": [\n";
  add_rows buf t.ns_per_op (fun r ->
      Printf.sprintf "    {\"section\": \"%s\", \"name\": \"%s\", \"ns\": %s}"
        (escape r.ns_section) (escape r.ns_name) (number r.ns_ns));
  Buffer.add_string buf "  ],\n  \"persist_events\": [\n";
  add_rows buf t.persist_events (fun r ->
      Printf.sprintf "    {\"op\": \"%s\", \"nprocs\": %d, \"accesses\": %d}"
        (escape r.pe_op) r.pe_nprocs r.pe_accesses);
  Buffer.add_string buf "  ],\n  \"explore\": [\n";
  add_rows buf t.explore (fun r ->
      Printf.sprintf
        "    {\"section\": \"%s\", \"scenario\": \"%s\", \"nprocs\": %d, \"ops\": %d, \
         \"jobs\": %d, \"dedup\": %b, \"trail\": %b, \"symmetry\": %b, \"mode\": \"%s\", \
         \"terminals\": %d, \"nodes\": %d, \"dup\": %d, \"seconds\": %s, \
         \"nodes_per_sec\": %s, \"terminals_per_sec\": %s}"
        (escape r.er_section) (escape r.er_scenario) r.er_nprocs r.er_ops r.er_jobs
        r.er_dedup r.er_trail r.er_sym (escape r.er_mode) r.er_terminals r.er_nodes r.er_dup
        (number r.er_seconds)
        (number (rate r.er_nodes r.er_seconds))
        (number (rate r.er_terminals r.er_seconds)));
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let write ~path t =
  let oc = open_out path in
  output_string oc (render t);
  close_out oc
