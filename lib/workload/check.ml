(** Glue between the machine and the checkers: look up sequential
    specifications from the machine's object registry and run the NRL
    condition on a simulation's history. *)

let spec_for sim o =
  let inst = Machine.Objdef.find (Machine.Sim.registry sim) o in
  match inst.Machine.Objdef.otype with
  | "rw" | "register" -> Some (Linearize.Spec.register ~init:inst.Machine.Objdef.init_value ())
  | "cas" -> Some (Linearize.Spec.cas ~init:inst.Machine.Objdef.init_value ())
  | "max_register" ->
    (* the spec's initial maximum defaults to 0; the instance records its
       own in init_value — thread it through a seeded WRITE_MAX *)
    let init = Nvm.Value.as_int inst.Machine.Objdef.init_value in
    let spec = Linearize.Spec.max_register () in
    Some
      (if init = 0 then spec
       else
         {
           spec with
           Linearize.Spec.initial =
             (fun ~nprocs ->
               let st = spec.Linearize.Spec.initial ~nprocs in
               match
                 st.Linearize.Spec.apply ~pid:0 ~op:"WRITE_MAX"
                   ~args:[| Nvm.Value.Int init |]
               with
               | [ (_, st') ] -> st'
               | _ -> st);
         })
  | "faa_register" ->
    Some
      (Linearize.Spec.faa_register
         ~init:(Nvm.Value.as_int inst.Machine.Objdef.init_value) ())
  | "histogram" ->
    Some (Linearize.Spec.histogram ~k:(Nvm.Value.as_int inst.Machine.Objdef.init_value) ())
  | "slot_allocator" ->
    (* the instance records its slot count in [init_value] *)
    Some (Linearize.Spec.slot_allocator ~k:(Nvm.Value.as_int inst.Machine.Objdef.init_value) ())
  | otype -> Linearize.Spec.of_otype otype

(** Check the full NRL condition (Definition 4) on [sim]'s history.
    Counts land in the machine's attached metric registry, if any
    ({!Machine.Sim.set_obs}) — under the parallel explorer each worker's
    machine points at that worker's registry, so attribution follows the
    machine automatically. *)
let nrl sim =
  Linearize.Nrl.check ?obs:(Machine.Sim.obs sim) ~spec_for:(spec_for sim)
    ~nprocs:(Machine.Sim.nprocs sim) (Machine.Sim.history sim)

(** [None] if the history satisfies NRL, [Some reason] otherwise. *)
let nrl_violation sim =
  let r = nrl sim in
  if Linearize.Nrl.ok r then None else Some (Linearize.Nrl.explain r)

(** Strictness violations (Definition 1) recorded in [sim]'s history. *)
let strictness_violations sim =
  Linearize.Nrl.strictness_violations (Machine.Sim.history sim)

(** A path checker for {!Machine.Explore.find_violation}'s
    [`Incremental] mode: threads {!Linearize.Nrl.Incremental} state down
    the DFS, feeding it exactly the history suffix each decision
    appended ({!Machine.Sim.history_length} tells the automaton where
    the suffix starts).  The automaton state is persistent, so sibling
    branches share every prefix's work. *)
let nrl_incremental () =
  Machine.Explore.Path
    {
      init =
        (fun sim ->
          let st =
            Linearize.Nrl.Incremental.create ~spec_for:(spec_for sim)
              ~nprocs:(Machine.Sim.nprocs sim)
          in
          Linearize.Nrl.Incremental.steps ?obs:(Machine.Sim.obs sim) st
            (Machine.Sim.history_suffix sim 0));
      step =
        (fun st sim ->
          Linearize.Nrl.Incremental.steps ?obs:(Machine.Sim.obs sim) st
            (Machine.Sim.history_suffix sim (Linearize.Nrl.Incremental.consumed st)));
      terminal = (fun st _sim -> Linearize.Nrl.Incremental.violation st);
    }
