(** Workload generators: per-process operation scripts that respect the
    assumptions the paper's algorithms state (distinct written values,
    never [old = new], one T&S per process). *)

val tagged : int -> int -> Nvm.Value.t
(** [tagged pid seq] — a distinct value [<pid, seq>], the paper's
    suggested tagging discipline. *)

val register_ops :
  rng:Machine.Schedule.Prng.t ->
  pid:int ->
  count:int ->
  write_ratio:float ->
  Machine.Objdef.instance ->
  (Machine.Objdef.instance * string * Machine.Sim.arg_spec) list
(** READ/WRITE mix; writes carry distinct tagged values. *)

val cas_ops :
  rng:Machine.Schedule.Prng.t ->
  pid:int ->
  count:int ->
  cas_ratio:float ->
  Machine.Objdef.instance ->
  cell:Nvm.Memory.addr ->
  (Machine.Objdef.instance * string * Machine.Sim.arg_spec) list
(** CAS/READ mix; each CAS uses the object's current value as [old]
    (computed at invocation) and a fresh tagged value as [new]. *)

val cas_fixed :
  pid:int ->
  Machine.Objdef.instance ->
  old:Nvm.Value.t ->
  seq:int ->
  Machine.Objdef.instance * string * Machine.Sim.arg_spec
(** One CAS with fixed arguments (for exhaustive exploration). *)

val tas_ops :
  Machine.Objdef.instance ->
  (Machine.Objdef.instance * string * Machine.Sim.arg_spec) list
(** A single [T&S]. *)

val counter_ops :
  rng:Machine.Schedule.Prng.t ->
  count:int ->
  inc_ratio:float ->
  Machine.Objdef.instance ->
  (Machine.Objdef.instance * string * Machine.Sim.arg_spec) list
(** INC/READ mix. *)
