(** Glue between the machine and the checkers. *)

val spec_for : Machine.Sim.t -> int -> Linearize.Spec.t option
(** The sequential specification for an object instance, selected by its
    type tag and instantiated with its initial value (and size, for
    parameterised objects). *)

val nrl : Machine.Sim.t -> Linearize.Nrl.result
(** Check the full NRL condition (Definition 4) on the machine's
    history. *)

val nrl_violation : Machine.Sim.t -> string option
(** [None] if the history satisfies NRL, [Some reason] otherwise. *)

val strictness_violations : Machine.Sim.t -> History.Step.t list
(** Strictness violations (Definition 1) recorded in the history. *)

val nrl_incremental : unit -> Machine.Explore.path_checker
(** A path checker for {!Machine.Explore.find_violation}'s
    [`Incremental] mode: prefix-shared NRL checking via
    {!Linearize.Nrl.Incremental}.  Returns the same verdict as
    {!nrl_violation} run at each terminal, with the work for shared
    schedule prefixes done once. *)
