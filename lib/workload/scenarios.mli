(** Ready-made scenarios: one per algorithm of the paper, one per
    extension, and one per naive baseline; parameterised by process and
    operation counts.  Used by tests, experiments, examples and the
    CLI. *)

module Prng = Machine.Schedule.Prng

val register :
  ?nprocs:int -> ?ops:int -> ?write_ratio:float -> ?rng_seed:int -> unit -> Trial.scenario
(** Algorithm 1 under a READ/WRITE mix. *)

val cas :
  ?nprocs:int -> ?ops:int -> ?cas_ratio:float -> ?rng_seed:int -> unit -> Trial.scenario
(** Algorithm 2 under a CAS/READ mix. *)

val tas : ?nprocs:int -> unit -> Trial.scenario
(** Algorithm 3: one T&S per process. *)

val counter :
  ?nprocs:int -> ?ops:int -> ?inc_ratio:float -> ?rng_seed:int -> unit -> Trial.scenario
(** Algorithm 4 under an INC/READ mix. *)

val elect : ?nprocs:int -> ?k:int -> unit -> Trial.scenario
(** The Elect extension: one ELECT per process. *)

val faa :
  ?nprocs:int -> ?ops:int -> ?faa_ratio:float -> ?rng_seed:int -> unit -> Trial.scenario
(** The nested-FAA extension under an FAA/READ mix (deltas in 1..3). *)

val histogram :
  ?nprocs:int -> ?ops:int -> ?k:int -> ?rng_seed:int -> unit -> Trial.scenario
(** The three-level histogram under a RECORD/BUCKET/TOTAL mix. *)

val stack :
  ?nprocs:int -> ?ops:int -> ?rng_seed:int -> unit -> Trial.scenario
(** The recoverable-stack extension under a PUSH/POP/PEEK mix. *)

val queue :
  ?nprocs:int -> ?ops:int -> ?rng_seed:int -> unit -> Trial.scenario
(** The recoverable-queue extension under an ENQ/DEQ/FRONT mix. *)

val max_register :
  ?nprocs:int -> ?ops:int -> ?rng_seed:int -> unit -> Trial.scenario
(** The recoverable max-register under a WRITE_MAX/READ mix. *)

val naive_rw :
  strategy:[ `Optimistic | `Reexecute ] ->
  ?nprocs:int -> ?ops:int -> ?write_ratio:float -> ?rng_seed:int -> unit -> Trial.scenario

val naive_cas :
  strategy:[ `Optimistic | `Reexecute ] ->
  ?nprocs:int -> ?ops:int -> ?cas_ratio:float -> ?rng_seed:int -> unit -> Trial.scenario

val naive_tas : ?nprocs:int -> unit -> Trial.scenario

val all_paper : ?nprocs:int -> unit -> Trial.scenario list
(** The four scenarios covering the paper's Algorithms 1-4. *)
