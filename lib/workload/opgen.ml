(** Workload generators: per-process operation scripts that respect the
    assumptions the paper's algorithms state.

    - Register workloads tag every written value with the writing process
      id and a per-process sequence number, satisfying Algorithm 1's
      distinct-values assumption exactly as the paper suggests.
    - CAS workloads never use [old = new] and give each process distinct
      new values; the [old] argument is computed at invocation time from
      the object's current contents, modelling a client that CASes from
      the value it last observed (this exercises both successful and
      failing CAS paths).
    - TAS workloads invoke [T&S] at most once per process. *)

module Prng = Machine.Schedule.Prng

(** A distinct tagged value: [<pid, seq>]. *)
let tagged pid seq = Nvm.Value.Pair (Nvm.Value.Pid pid, Nvm.Value.Int seq)

(** Script of [count] READ/WRITE operations on register [inst] for process
    [pid]; writes carry distinct tagged values. *)
let register_ops ~rng ~pid ~count ~write_ratio inst =
  List.init count (fun k ->
      if Prng.float rng < write_ratio then
        (inst, "WRITE", Machine.Sim.Args [| tagged pid (k + 1) |])
      else (inst, "READ", Machine.Sim.Args [||]))

(** Script of [count] CAS/READ operations on CAS object [inst].  A CAS uses
    the object's current value as [old] (computed at invocation) and a
    fresh tagged value as [new]. *)
let cas_ops ~rng ~pid ~count ~cas_ratio inst ~cell =
  List.init count (fun k ->
      if Prng.float rng < cas_ratio then
        ( inst,
          "CAS",
          Machine.Sim.Compute
            (fun mem ->
              let current = Nvm.Value.snd (Nvm.Memory.peek mem cell) in
              [| current; tagged pid (k + 1) |]) )
      else (inst, "READ", Machine.Sim.Args [||]))

(** CAS operations with a {e fixed} old value (for schedules that need
    deterministic argument values, e.g. exhaustive exploration). *)
let cas_fixed ~pid inst ~old ~seq = (inst, "CAS", Machine.Sim.Args [| old; tagged pid seq |])

(** One [T&S] per process. *)
let tas_ops inst = [ (inst, "T&S", Machine.Sim.Args [||]) ]

(** Script of [count] INC/READ operations on counter [inst]. *)
let counter_ops ~rng ~count ~inc_ratio inst =
  List.init count (fun _ ->
      if Prng.float rng < inc_ratio then (inst, "INC", Machine.Sim.Args [||])
      else (inst, "READ", Machine.Sim.Args [||]))
