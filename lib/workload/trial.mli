(** Randomized crash-torture trials: build a scenario, run it under a
    seeded random schedule with crash injection, and check NRL. *)

type scenario = {
  scen_name : string;
  nprocs : int;
  build : Machine.Sim.t -> unit;
      (** allocate the scenario's objects and install per-process scripts *)
}

type result = {
  outcome : Machine.Schedule.outcome;
  steps : int;
  crashes : int;
  nrl_ok : bool;
  nrl_reason : string option;
  strict_violations : int;
  history_len : int;
}

val run :
  ?max_steps:int ->
  ?crash_prob:float ->
  ?recover_prob:float ->
  ?max_crashes:int ->
  ?system_crash_prob:float ->
  ?junk:string ->
  ?obs:Obs.Metrics.t ->
  seed:int ->
  scenario ->
  Machine.Sim.t * result
(** One seeded trial; returns the machine (with its history) and the
    verdict.  [obs] is attached to the trial's machine
    ({!Machine.Sim.set_obs}) before it runs, so simulator and checker
    counters for the trial accumulate there.  [junk] selects the
    adversarial junk strategy by name
    ({!Machine.Sim.apply_junk_strategy}, applied after the scenario is
    built); defaults to the seeded scramble. *)

type summary = {
  trials : int;
  completed : int;
  passed : int;
  failed : int;
  total_crashes : int;
  total_ops : int;
  first_failure : (int * string) option;  (** seed and reason *)
}

val batch :
  ?max_steps:int ->
  ?crash_prob:float ->
  ?recover_prob:float ->
  ?max_crashes:int ->
  ?system_crash_prob:float ->
  ?base_seed:int ->
  ?junk:string ->
  ?obs:Obs.Metrics.t ->
  trials:int ->
  scenario ->
  summary
(** Independent trials with seeds [base_seed .. base_seed + trials - 1].
    [obs] accumulates across all trials of the batch. *)

val pp_summary : summary Fmt.t
