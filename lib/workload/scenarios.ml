(** Ready-made scenarios: one per algorithm of the paper and per naive
    baseline, parameterised by process count and per-process operation
    count.  Used by tests, experiments and the CLI. *)

module Prng = Machine.Schedule.Prng

let register ?(nprocs = 3) ?(ops = 6) ?(write_ratio = 0.6) ?(rng_seed = 42) () =
  {
    Trial.scen_name = Printf.sprintf "register/n%d/ops%d" nprocs ops;
    nprocs;
    build =
      (fun sim ->
        let inst = Objects.Rw_obj.make sim ~name:"R" in
        let rng = Prng.create rng_seed in
        for p = 0 to nprocs - 1 do
          Machine.Sim.set_script sim p
            (Opgen.register_ops ~rng ~pid:p ~count:ops ~write_ratio inst)
        done);
  }

let cas ?(nprocs = 3) ?(ops = 6) ?(cas_ratio = 0.7) ?(rng_seed = 42) () =
  {
    Trial.scen_name = Printf.sprintf "cas/n%d/ops%d" nprocs ops;
    nprocs;
    build =
      (fun sim ->
        let inst, cells = Objects.Cas_obj.make_ex sim ~name:"C" in
        let rng = Prng.create rng_seed in
        for p = 0 to nprocs - 1 do
          Machine.Sim.set_script sim p
            (Opgen.cas_ops ~rng ~pid:p ~count:ops ~cas_ratio inst ~cell:cells.Objects.Cas_obj.c)
        done);
  }

let tas ?(nprocs = 3) () =
  {
    Trial.scen_name = Printf.sprintf "tas/n%d" nprocs;
    nprocs;
    build =
      (fun sim ->
        let inst = Objects.Tas_obj.make sim ~name:"T" in
        for p = 0 to nprocs - 1 do
          Machine.Sim.set_script sim p (Opgen.tas_ops inst)
        done);
  }

let counter ?(nprocs = 3) ?(ops = 5) ?(inc_ratio = 0.7) ?(rng_seed = 42) () =
  {
    Trial.scen_name = Printf.sprintf "counter/n%d/ops%d" nprocs ops;
    nprocs;
    build =
      (fun sim ->
        let inst = Objects.Counter_obj.make sim ~name:"CTR" in
        let rng = Prng.create rng_seed in
        for p = 0 to nprocs - 1 do
          Machine.Sim.set_script sim p (Opgen.counter_ops ~rng ~count:ops ~inc_ratio inst)
        done);
  }

let elect ?(nprocs = 3) ?k () =
  {
    Trial.scen_name = Printf.sprintf "elect/n%d" nprocs;
    nprocs;
    build =
      (fun sim ->
        let inst = Objects.Elect_obj.make ?k sim ~name:"E" in
        for p = 0 to nprocs - 1 do
          Machine.Sim.set_script sim p [ (inst, "ELECT", Machine.Sim.Args [||]) ]
        done);
  }

let faa ?(nprocs = 3) ?(ops = 4) ?(faa_ratio = 0.75) ?(rng_seed = 42) () =
  {
    Trial.scen_name = Printf.sprintf "faa/n%d/ops%d" nprocs ops;
    nprocs;
    build =
      (fun sim ->
        let inst = Objects.Faa_obj.make sim ~name:"F" in
        let rng = Prng.create rng_seed in
        for p = 0 to nprocs - 1 do
          Machine.Sim.set_script sim p
            (List.init ops (fun _ ->
                 if Prng.float rng < faa_ratio then
                   (inst, "FAA", Machine.Sim.Args [| Nvm.Value.Int (1 + Prng.int rng 3) |])
                 else (inst, "READ", Machine.Sim.Args [||])))
        done);
  }

let histogram ?(nprocs = 3) ?(ops = 4) ?(k = 3) ?(rng_seed = 42) () =
  {
    Trial.scen_name = Printf.sprintf "histogram/n%d/ops%d" nprocs ops;
    nprocs;
    build =
      (fun sim ->
        let inst = Objects.Histogram_obj.make ~k sim ~name:"H" in
        let rng = Prng.create rng_seed in
        for p = 0 to nprocs - 1 do
          Machine.Sim.set_script sim p
            (List.init ops (fun _ ->
                 match Prng.int rng 4 with
                 | 0 -> (inst, "TOTAL", Machine.Sim.Args [||])
                 | 1 -> (inst, "BUCKET", Machine.Sim.Args [| Nvm.Value.Int (Prng.int rng k) |])
                 | _ -> (inst, "RECORD", Machine.Sim.Args [| Nvm.Value.Int (Prng.int rng k) |])))
        done);
  }

let stack ?(nprocs = 3) ?(ops = 4) ?(rng_seed = 42) () =
  {
    Trial.scen_name = Printf.sprintf "stack/n%d/ops%d" nprocs ops;
    nprocs;
    build =
      (fun sim ->
        let inst = Objects.Stack_obj.make sim ~name:"S" in
        let rng = Prng.create rng_seed in
        for p = 0 to nprocs - 1 do
          Machine.Sim.set_script sim p
            (List.init ops (fun k ->
                 match Prng.int rng 5 with
                 | 0 | 1 -> (inst, "PUSH", Machine.Sim.Args [| Opgen.tagged p (k + 1) |])
                 | 2 | 3 -> (inst, "POP", Machine.Sim.Args [||])
                 | _ -> (inst, "PEEK", Machine.Sim.Args [||])))
        done);
  }

let queue ?(nprocs = 3) ?(ops = 4) ?(rng_seed = 42) () =
  {
    Trial.scen_name = Printf.sprintf "queue/n%d/ops%d" nprocs ops;
    nprocs;
    build =
      (fun sim ->
        let inst = Objects.Queue_obj.make sim ~name:"Q" in
        let rng = Prng.create rng_seed in
        for p = 0 to nprocs - 1 do
          Machine.Sim.set_script sim p
            (List.init ops (fun k ->
                 match Prng.int rng 5 with
                 | 0 | 1 -> (inst, "ENQ", Machine.Sim.Args [| Opgen.tagged p (k + 1) |])
                 | 2 | 3 -> (inst, "DEQ", Machine.Sim.Args [||])
                 | _ -> (inst, "FRONT", Machine.Sim.Args [||])))
        done);
  }

let max_register ?(nprocs = 3) ?(ops = 4) ?(rng_seed = 42) () =
  {
    Trial.scen_name = Printf.sprintf "max-register/n%d/ops%d" nprocs ops;
    nprocs;
    build =
      (fun sim ->
        let inst = Objects.Max_register_obj.make sim ~name:"M" in
        let rng = Prng.create rng_seed in
        for p = 0 to nprocs - 1 do
          Machine.Sim.set_script sim p
            (List.init ops (fun _ ->
                 if Prng.int rng 3 < 2 then
                   (inst, "WRITE_MAX", Machine.Sim.Args [| Nvm.Value.Int (1 + Prng.int rng 50) |])
                 else (inst, "READ", Machine.Sim.Args [||])))
        done);
  }

(* Naive baselines: same workloads, unsound recovery. *)

let naive_rw ~strategy ?(nprocs = 3) ?(ops = 6) ?(write_ratio = 0.6) ?(rng_seed = 42) () =
  {
    Trial.scen_name =
      Printf.sprintf "naive-rw-%s/n%d/ops%d"
        (match strategy with `Optimistic -> "optimistic" | `Reexecute -> "reexec")
        nprocs ops;
    nprocs;
    build =
      (fun sim ->
        let inst = Objects.Naive.make_rw ~strategy sim ~name:"R" in
        let rng = Prng.create rng_seed in
        for p = 0 to nprocs - 1 do
          Machine.Sim.set_script sim p
            (Opgen.register_ops ~rng ~pid:p ~count:ops ~write_ratio inst)
        done);
  }

let naive_cas ~strategy ?(nprocs = 3) ?(ops = 6) ?(cas_ratio = 0.7) ?(rng_seed = 42) () =
  {
    Trial.scen_name =
      Printf.sprintf "naive-cas-%s/n%d/ops%d"
        (match strategy with `Optimistic -> "optimistic" | `Reexecute -> "reexec")
        nprocs ops;
    nprocs;
    build =
      (fun sim ->
        let inst, cell = Objects.Naive.make_cas_ex ~strategy sim ~name:"C" in
        let rng = Prng.create rng_seed in
        for p = 0 to nprocs - 1 do
          Machine.Sim.set_script sim p
            (List.init ops (fun k ->
                 if Prng.float rng < cas_ratio then
                   ( inst,
                     "CAS",
                     Machine.Sim.Compute
                       (fun mem -> [| Nvm.Memory.peek mem cell; Opgen.tagged p (k + 1) |]) )
                 else (inst, "READ", Machine.Sim.Args [||])))
        done);
  }

let naive_tas ?(nprocs = 3) () =
  {
    Trial.scen_name = Printf.sprintf "naive-tas-reexec/n%d" nprocs;
    nprocs;
    build =
      (fun sim ->
        let inst = Objects.Naive.make_tas ~strategy:`Reexecute sim ~name:"T" in
        for p = 0 to nprocs - 1 do
          Machine.Sim.set_script sim p (Opgen.tas_ops inst)
        done);
  }

let all_paper ?(nprocs = 3) () =
  [ register ~nprocs (); cas ~nprocs (); tas ~nprocs (); counter ~nprocs () ]
