(** Machine-readable benchmark output: the [BENCH_explore.json] document
    the bench harness writes with [--json], tracked across PRs as a CI
    artifact.  Living in the library (rather than the harness) so the
    test suite can validate the emitted schema. *)

val schema_version : string
(** ["nrl-bench/3"].  Version 2 lacked the [symmetry] field on
    [explore] rows; version 1 had only an [ns_per_op] array (left empty
    by the explore-only CI smoke run) and [explore] rows without the
    [section]/[trail]/[mode]/[terminals_per_sec] fields. *)

type ns_row = {
  ns_section : string;  (** the table or figure tag, e.g. ["T1"] *)
  ns_name : string;
  ns_ns : float;  (** estimated ns per operation; [nan] emits [null] *)
}

type persist_row = {
  pe_op : string;
  pe_nprocs : int;
  pe_accesses : int;  (** shared accesses = persist events, table T5 *)
}

type explore_row = {
  er_section : string;
      (** ["T6"] (work-stealing jobs scaling), ["T7"] (throughput) or
          ["T8"] (symmetry quotienting) *)
  er_scenario : string;
  er_nprocs : int;
  er_ops : int;
  er_jobs : int;
  er_dedup : bool;
  er_trail : bool;  (** in-place backtracking vs clone-per-branch *)
  er_sym : bool;  (** process-symmetry quotienting active for this run *)
  er_mode : string;
      (** ["dfs"] (no checking), ["check-terminal"] or
          ["check-incremental"] *)
  er_terminals : int;
  er_nodes : int;
  er_dup : int;
  er_seconds : float;
}

type t = {
  domains_available : int;
      (** [Domain.recommended_domain_count ()] on the measuring host;
          jobs-scaling rows above this are oversubscription measurements *)
  ns_per_op : ns_row list;
  persist_events : persist_row list;
  explore : explore_row list;
}

val render : t -> string
(** The complete JSON document (rates [nodes_per_sec] and
    [terminals_per_sec] are derived here; non-finite floats emit
    [null]). *)

val write : path:string -> t -> unit
