(** Randomized crash-torture trials: build a scenario, run it under a
    seeded random schedule with crash injection, and check NRL.  The
    experiment suites and the property-based tests are built on this. *)

type scenario = {
  scen_name : string;
  nprocs : int;
  build : Machine.Sim.t -> unit;
      (** allocate the scenario's objects and install per-process scripts *)
}

type result = {
  outcome : Machine.Schedule.outcome;
  steps : int;
  crashes : int;
  nrl_ok : bool;
  nrl_reason : string option;
  strict_violations : int;
  history_len : int;
}

let run ?(max_steps = 200_000) ?(crash_prob = 0.02) ?(recover_prob = 0.5)
    ?(max_crashes = 8) ?(system_crash_prob = 0.0) ?junk ?obs ~seed scenario =
  let sim = Machine.Sim.create ~seed ~nprocs:scenario.nprocs () in
  Machine.Sim.set_obs sim obs;
  scenario.build sim;
  (* after [build]: the lure strategy draws its pool from the NVRAM the
     scenario just initialised *)
  Option.iter (Machine.Sim.apply_junk_strategy sim) junk;
  let policy =
    Machine.Schedule.random ~crash_prob ~recover_prob ~max_crashes ~system_crash_prob
      ~seed:(seed * 7919 + 13) ()
  in
  let outcome = Machine.Schedule.run ~max_steps sim policy in
  let h = Machine.Sim.history sim in
  let r = Check.nrl sim in
  let crashes =
    List.length
      (List.filter
         (function History.Step.Crash _ -> true | _ -> false)
         (History.to_list h))
  in
  ( sim,
    {
      outcome;
      steps = Machine.Sim.total_steps sim;
      crashes;
      nrl_ok = Linearize.Nrl.ok r;
      nrl_reason = (if Linearize.Nrl.ok r then None else Some (Linearize.Nrl.explain r));
      strict_violations = List.length (Check.strictness_violations sim);
      history_len = History.length h;
    } )

type summary = {
  trials : int;
  completed : int;
  passed : int;
  failed : int;
  total_crashes : int;
  total_ops : int;
  first_failure : (int * string) option;  (** seed and reason *)
}

(** Run [trials] independent trials with seeds [base_seed .. base_seed +
    trials - 1] and summarise. *)
let batch ?(max_steps = 200_000) ?(crash_prob = 0.02) ?(recover_prob = 0.5)
    ?(max_crashes = 8) ?(system_crash_prob = 0.0) ?(base_seed = 1) ?junk ?obs ~trials
    scenario =
  let summary =
    ref
      {
        trials;
        completed = 0;
        passed = 0;
        failed = 0;
        total_crashes = 0;
        total_ops = 0;
        first_failure = None;
      }
  in
  for i = 0 to trials - 1 do
    let seed = base_seed + i in
    let _, r =
      run ~max_steps ~crash_prob ~recover_prob ~max_crashes ~system_crash_prob ?junk ?obs
        ~seed scenario
    in
    let s = !summary in
    summary :=
      {
        s with
        completed = (s.completed + if r.outcome = Machine.Schedule.Completed then 1 else 0);
        passed = (s.passed + if r.nrl_ok then 1 else 0);
        failed = (s.failed + if r.nrl_ok then 0 else 1);
        total_crashes = s.total_crashes + r.crashes;
        total_ops = s.total_ops + (r.history_len / 2);
        first_failure =
          (match s.first_failure, r.nrl_reason with
          | None, Some reason -> Some (seed, reason)
          | ff, _ -> ff);
      }
  done;
  !summary

let pp_summary ppf s =
  Fmt.pf ppf "%d/%d passed NRL (%d completed, %d crashes, ~%d ops)%a" s.passed s.trials
    s.completed s.total_crashes s.total_ops
    Fmt.(
      option (fun ppf (seed, reason) ->
          Fmt.pf ppf "; first failure seed=%d: %s" seed reason))
    s.first_failure
