(** The metric-name catalogue: the single source of truth for every
    counter, timer and histogram the instrumented subsystems emit.

    Instrumentation sites reference these constants instead of string
    literals, so the catalogue below, the [--stats] report sections and
    the tables in [docs/observability.md] cannot drift apart silently —
    a metric that exists in code but not here shows up in tests (see
    [test_obs.ml]).

    {b Engine invariance.}  A metric is {e engine-invariant} when its
    value depends only on the explored tree — not on [--jobs], [--trail]
    or any other engine knob: those metrics increment once per tree edge
    or per checker call, and the engines visit the same edges in every
    configuration.  The rest measure the machinery itself (task fan-out,
    undo traffic, wall time) and legitimately vary.  [--stats] prints
    the two groups in separate sections, and the invariant section is
    byte-identical across [--jobs] values — observability doubling as a
    determinism check. *)

type kind = Counter | Timer | Histogram

(** {1 Simulated machine} *)

val sim_steps : string
(** Machine steps executed ({!Machine.Sim.step}: scripted-operation
    starts and instruction executions). *)

val sim_invocations : string
(** Invocation (INV) steps recorded, nested invocations included. *)

val sim_responses : string
(** Response (RES) steps recorded, nested responses included. *)

val sim_crashes : string
(** Crash steps injected ({!Machine.Sim.crash}). *)

val sim_recoveries : string
(** Recovery steps executed ({!Machine.Sim.recover}). *)

(** {1 Undo trail} *)

val trail_undos : string
(** {!Machine.Sim.undo_to} calls (one per backtracked edge in trail
    mode).  Engine-dependent: work-stealing workers also undo when
    repositioning between tasks, so the count varies with [--jobs]. *)

val trail_undo_depth : string
(** Histogram of trail entries reverted per {!Machine.Sim.undo_to}. *)

(** {1 Explorer} *)

val explore_nodes : string
(** Tree nodes processed (after dedup pruning). *)

val explore_terminals : string
(** Complete executions reached. *)

val explore_truncated : string
(** Branches cut by the depth bound (or deadlocked). *)

val explore_dedup_pruned : string
(** Branches pruned by state deduplication (0 unless [--dedup]). *)

val explore_tasks : string
(** Subtree tasks created in the work-stealing pool, seeds included
    (0 for the plain single-domain engines). *)

val explore_ws_steals : string
(** Tasks stolen from another worker's deque (0 when [jobs = 1]). *)

val explore_time_idle : string
(** Wall time workers spent idle — own deque empty, nothing stealable. *)

val explore_store_contention : string
(** Visited-store CAS insertions lost to a racing domain (0 unless
    [--dedup] with [jobs > 1]). *)

val explore_time_step : string
(** Wall time applying decisions (clone or mark/apply/undo). *)

val explore_time_check : string
(** Wall time in checker callbacks (path-checker steps and terminal
    verdicts). *)

val explore_time_dedup : string
(** Wall time fingerprinting and probing the visited store. *)

val explore_time_total : string
(** Wall time of the whole exploration, expansion and join included. *)

(** {1 Linearizability checker (terminal mode)} *)

val nrl_checks : string
(** Full NRL verdicts computed ({!Linearize.Nrl.check} calls). *)

val checker_object_checks : string
(** Per-object WGL searches run ({!Linearize.Checker.check_object}). *)

val checker_memo_hits : string
(** WGL search nodes skipped because their (linearized-set, spec-state)
    key was already visited. *)

val checker_memo_misses : string
(** WGL search nodes expanded (and, with memoisation on, added to the
    memo table). *)

(** {1 Incremental NRL automaton} *)

val nrl_inc_steps : string
(** History steps folded into {!Linearize.Nrl.Incremental}. *)

val nrl_inc_res_transitions : string
(** Response-step closures run (the automaton's only search). *)

val nrl_inc_memo_hits : string
(** Closure nodes skipped by the per-event memo table. *)

val nrl_inc_memo_misses : string
(** Closure nodes expanded. *)

(** {1 Scenario fuzzer} *)

val fuzz_runs : string
(** Fuzz scenarios executed — campaign runs plus shrink re-runs
    ({!Fuzz.Gen.run} invocations made by the campaign and shrinker). *)

val fuzz_new_coverage : string
(** Configuration fingerprints ({!Machine.Fingerprint}) visited for the
    first time in the campaign — the coverage-feedback signal. *)

val fuzz_violations : string
(** Fuzz runs judged NRL- or Definition 1 (strictness)-violating. *)

val fuzz_shrink_steps : string
(** Shrink candidates executed while minimising counterexamples. *)

val fuzz_corpus_entries : string
(** Seeds kept in the corpus for discovering new coverage. *)

(** {1 Multicore torture harness} *)

val torture_ops : string
(** Operations started under {!Runtime.Torture.with_crashes}. *)

val torture_crashes : string
(** Armed crash points that fired (initial attempts and recoveries). *)

val torture_retries : string
(** Recovery attempts, crashes {e during} recovery included: every
    re-invocation of [recover] counts once, so the pinned relation is
    [crashes = retries + aborted_recoveries] (each fired crash point
    leads to either one more recovery attempt or an abandoned
    recovery). *)

val torture_livelocks : string
(** Recoveries aborted by the livelock detector: the attempt traversed
    more crash points than the watchdog's fuse allows without completing
    (see {!Runtime.Torture.watchdog}). *)

val torture_aborted_recoveries : string
(** Recoveries abandoned because the watchdog's retry budget was
    exhausted — the harness reports {!Runtime.Torture.Recovery_stuck}
    instead of retrying forever. *)

(** {1 The catalogue} *)

val all : (string * kind * string) list
(** Every metric above: name, kind, one-line description (the same text
    [docs/observability.md] tabulates). *)

val kind_of : string -> kind option
(** Catalogue lookup; [None] for names not in the catalogue. *)

val engine_invariant : string -> bool
(** Whether the metric is engine-invariant (see above).  Names outside
    the catalogue are conservatively reported as not invariant. *)
