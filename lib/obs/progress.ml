type t = {
  label : string;
  out : out_channel;
  interval_ns : int;
  start_ns : int;
  nodes : int Atomic.t;
  tasks_total : int Atomic.t;  (* 0 = unknown / sequential *)
  tasks_done : int Atomic.t;
  last : int Atomic.t;  (* Clock.now_ns of the last printed line *)
}

let create ?(out = stderr) ?(interval = 1.0) ~label () =
  let now = Clock.now_ns () in
  {
    label;
    out;
    interval_ns = int_of_float (interval *. 1e9);
    start_ns = now;
    nodes = Atomic.make 0;
    tasks_total = Atomic.make 0;
    tasks_done = Atomic.make 0;
    last = Atomic.make now;
  }

let set_tasks t n = Atomic.set t.tasks_total n

let task_done t = Atomic.incr t.tasks_done

let rate nodes elapsed_ns =
  if elapsed_ns <= 0 then "-"
  else begin
    let r = float_of_int nodes /. (float_of_int elapsed_ns /. 1e9) in
    if r >= 1e6 then Printf.sprintf "%.1fM/s" (r /. 1e6)
    else if r >= 1e3 then Printf.sprintf "%.1fk/s" (r /. 1e3)
    else Printf.sprintf "%.0f/s" r
  end

let print_line t ~now ~final =
  let nodes = Atomic.get t.nodes in
  let elapsed = now - t.start_ns in
  let b = Buffer.create 96 in
  Printf.bprintf b "%s: %d nodes (%s), %.1fs" t.label nodes (rate nodes elapsed)
    (float_of_int elapsed /. 1e9);
  let total = Atomic.get t.tasks_total in
  if total > 0 then begin
    let done_ = min (Atomic.get t.tasks_done) total in
    Printf.bprintf b ", tasks %d/%d" done_ total;
    (* extrapolate from the task completion rate; subtree sizes vary
       wildly, so this is an order-of-magnitude hint, not a promise *)
    if (not final) && done_ > 0 && done_ < total then
      Printf.bprintf b ", eta %.0fs"
        (float_of_int elapsed /. 1e9 /. float_of_int done_ *. float_of_int (total - done_))
  end;
  if final then Buffer.add_string b ", done";
  Buffer.add_char b '\n';
  output_string t.out (Buffer.contents b);
  flush t.out

let tick t ~nodes =
  ignore (Atomic.fetch_and_add t.nodes nodes);
  let now = Clock.now_ns () in
  let last = Atomic.get t.last in
  (* the compare-and-set elects a single printer per interval *)
  if now - last >= t.interval_ns && Atomic.compare_and_set t.last last now then
    print_line t ~now ~final:false

let finish t ~nodes =
  Atomic.set t.nodes nodes;
  print_line t ~now:(Clock.now_ns ()) ~final:true
