(** Periodic progress lines for long-running explorations.

    One reporter is shared by every worker domain: node ticks land in an
    atomic counter, and whichever domain crosses the reporting interval
    claims (by compare-and-set on the last-report timestamp) the right
    to print, so lines never interleave and the hot path is one atomic
    add per {e batch} of nodes — callers tick in batches, keeping the
    per-node cost at a single private increment.

    The line shows nodes explored, the node rate, how many frontier
    tasks remain (parallel runs), and an ETA extrapolated from the task
    completion rate.  It goes to stderr by default, so it composes with
    result output and with [--trace] on stdout-adjacent workflows. *)

type t

val create : ?out:out_channel -> ?interval:float -> label:string -> unit -> t
(** A reporter printing at most every [interval] seconds (default 1.0)
    to [out] (default [stderr]).  [label] prefixes every line. *)

val set_tasks : t -> int -> unit
(** Announce the frontier size (total task count) of a parallel run;
    enables the [tasks] and [eta] fields. *)

val task_done : t -> unit
(** One frontier task finished (called by workers). *)

val tick : t -> nodes:int -> unit
(** Add [nodes] freshly explored nodes, printing a line if the interval
    has elapsed.  Safe to call from any domain. *)

val finish : t -> nodes:int -> unit
(** Print the final line with the exact node total (tick batching means
    the atomic counter may lag slightly behind). *)
