(* Single-domain mutable registries, aggregated across domains only by
   explicit [merge] at join points — exact sums, never samples. *)

type counter = { mutable c_v : int }

type timer = { mutable t_ns : int; mutable t_n : int }

(* Power-of-two buckets: index = bit length of the value (0 for v <= 0),
   capped at the array's last slot.  63 slots cover every OCaml int. *)
let n_buckets = 63

type histogram = {
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_max : int;
  h_buckets : int array;
}

type metric = C of counter | T of timer | H of histogram

type t = { tbl : (string, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let kind_name = function C _ -> "counter" | T _ -> "timer" | H _ -> "histogram"

let wrong_kind name ~want found =
  invalid_arg
    (Printf.sprintf "Obs.Metrics: %s already exists as a %s (wanted a %s)" name
       (kind_name found) want)

let counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (C c) -> c
  | Some m -> wrong_kind name ~want:"counter" m
  | None ->
    let c = { c_v = 0 } in
    Hashtbl.add t.tbl name (C c);
    c

let timer t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (T tm) -> tm
  | Some m -> wrong_kind name ~want:"timer" m
  | None ->
    let tm = { t_ns = 0; t_n = 0 } in
    Hashtbl.add t.tbl name (T tm);
    tm

let histogram t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (H h) -> h
  | Some m -> wrong_kind name ~want:"histogram" m
  | None ->
    let h =
      { h_count = 0; h_sum = 0; h_max = 0; h_buckets = Array.make n_buckets 0 }
    in
    Hashtbl.add t.tbl name (H h);
    h

module Counter = struct
  let incr c = c.c_v <- c.c_v + 1
  let add c n = c.c_v <- c.c_v + n
  let value c = c.c_v
end

module Timer = struct
  let add tm ns =
    tm.t_ns <- tm.t_ns + ns;
    tm.t_n <- tm.t_n + 1

  let ns tm = tm.t_ns
  let intervals tm = tm.t_n
end

let bucket_of v =
  if v <= 0 then 0
  else begin
    let i = ref 0 and v = ref v in
    while !v <> 0 do
      incr i;
      v := !v lsr 1
    done;
    min !i (n_buckets - 1)
  end

module Histogram = struct
  let observe h v =
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum + v;
    if v > h.h_max then h.h_max <- v;
    let b = bucket_of v in
    h.h_buckets.(b) <- h.h_buckets.(b) + 1

  let count h = h.h_count
  let sum h = h.h_sum
  let max_value h = h.h_max
end

type view =
  | Counter of int
  | Timer of { ns : int; intervals : int }
  | Histogram of { count : int; sum : int; max_value : int; buckets : (int * int) list }

(* bucket i holds values of bit length i: upper (inclusive) bound 2^i - 1 *)
let bucket_le i = if i = 0 then 0 else (1 lsl i) - 1

let view_of = function
  | C c -> Counter c.c_v
  | T tm -> Timer { ns = tm.t_ns; intervals = tm.t_n }
  | H h ->
    let buckets = ref [] in
    for i = n_buckets - 1 downto 0 do
      if h.h_buckets.(i) > 0 then buckets := (bucket_le i, h.h_buckets.(i)) :: !buckets
    done;
    Histogram { count = h.h_count; sum = h.h_sum; max_value = h.h_max; buckets = !buckets }

let view t name = Option.map view_of (Hashtbl.find_opt t.tbl name)

let to_list t =
  Hashtbl.fold (fun name m acc -> (name, view_of m) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Inverse of [bucket_le]: a serialized upper bound [2^i - 1] has bit
   length [i], so [bucket_of le] recovers the bucket index exactly.  Out
   of range (a future format with more buckets) clamps like [bucket_of]
   does. *)
let absorb ~into name (v : view) =
  match v with
  | Counter n -> Counter.add (counter into name) n
  | Timer { ns; intervals } ->
    let d = timer into name in
    d.t_ns <- d.t_ns + ns;
    d.t_n <- d.t_n + intervals
  | Histogram { count; sum; max_value; buckets } ->
    let d = histogram into name in
    d.h_count <- d.h_count + count;
    d.h_sum <- d.h_sum + sum;
    if max_value > d.h_max then d.h_max <- max_value;
    List.iter
      (fun (le, n) ->
        let i = bucket_of le in
        d.h_buckets.(i) <- d.h_buckets.(i) + n)
      buckets

let merge ~into src =
  (* iterate in sorted order so creations in [into] are deterministic *)
  let entries =
    Hashtbl.fold (fun name m acc -> (name, m) :: acc) src.tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, m) ->
      match m with
      | C c -> Counter.add (counter into name) c.c_v
      | T tm ->
        let d = timer into name in
        d.t_ns <- d.t_ns + tm.t_ns;
        d.t_n <- d.t_n + tm.t_n
      | H h ->
        let d = histogram into name in
        d.h_count <- d.h_count + h.h_count;
        d.h_sum <- d.h_sum + h.h_sum;
        if h.h_max > d.h_max then d.h_max <- h.h_max;
        Array.iteri (fun i n -> d.h_buckets.(i) <- d.h_buckets.(i) + n) h.h_buckets)
    entries
