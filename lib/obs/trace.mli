(** NDJSON trace sink: one JSON object per line, schema ["nrl-trace/1"].

    The format follows the {!Workload.Bench_json} conventions (plain
    ASCII escaping, [nan]/[inf] rendered as [null]) but is a stream, not
    a document: tools can tail a trace while the run is still going.
    The first line is always a [meta] record carrying the schema tag and
    the clock contract; subsequent lines are [event], [span] and —
    usually at the end of the run — one line per metric ([counter],
    [timer], [histogram]).  The full schema, field by field, is
    documented in [docs/observability.md].

    All timestamps are {!Clock} readings: nanoseconds since process
    start.

    A sink serialises its writers with a mutex, so any domain may emit;
    the explorer nevertheless emits only from the coordinating domain
    (worker spans are recorded at the join), keeping hot loops free of
    even uncontended locks.

    {b Durability.}  Every record is flushed to the operating system as
    it is written, and {!create} registers an [at_exit] close: a run
    killed at any point — SIGTERM, SIGKILL, power loss of the test box —
    leaves a parseable NDJSON prefix, losing at most the record being
    written at the instant of death.  See docs/observability.md. *)

type t

val schema_version : string
(** ["nrl-trace/1"]. *)

(** Field values for [event]/[span] payloads. *)
type value = Bool of bool | Int of int | Float of float | Str of string

val create : path:string -> t
(** Open (truncating) [path] and write the [meta] line. *)

val event : ?ts_ns:int -> t -> name:string -> (string * value) list -> unit
(** A point-in-time event; [ts_ns] defaults to {!Clock.now_ns}[ ()]. *)

val span : t -> name:string -> start_ns:int -> dur_ns:int -> (string * value) list -> unit
(** A completed interval (spans are emitted when they end). *)

val metrics : t -> Metrics.t -> unit
(** One line per metric in the registry, in name order. *)

val close : t -> unit
(** Flush and close the underlying channel (idempotent). *)
