(** The one clock every observability consumer shares.

    Timestamps are nanoseconds {e relative to process start}, as an
    [int]: absolute epoch nanoseconds exceed a float's 53-bit mantissa,
    so subtracting two absolute readings taken close together loses the
    very digits a span duration is made of.  Anchoring at process start
    keeps every reading small enough to be exact, makes timestamps from
    one process directly comparable, and gives NDJSON traces a stable,
    documented origin ([t = 0] is process start).

    The underlying source is [CLOCK_MONOTONIC], read through a local C
    stub (the repo's baked-in dependencies offer no monotonic-clock
    binding): readings never go backwards and are unaffected by
    wall-clock adjustments, so the clock is safe both for coarse phase
    timers and for the native benchmark harness's measured windows,
    where a mid-run NTP step would otherwise corrupt throughput. *)

val now_ns : unit -> int
(** Nanoseconds since process start (monotonic). *)

val now_s : unit -> float
(** Seconds since process start (same origin as {!now_ns}). *)
