(** The one clock every observability consumer shares.

    Timestamps are nanoseconds {e relative to process start}, as an
    [int]: absolute epoch nanoseconds exceed a float's 53-bit mantissa,
    so subtracting two absolute readings taken close together loses the
    very digits a span duration is made of.  Anchoring at process start
    keeps every reading small enough to be exact, makes timestamps from
    one process directly comparable, and gives NDJSON traces a stable,
    documented origin ([t = 0] is process start).

    The underlying source is [Unix.gettimeofday] — the only wall clock
    the repo's baked-in dependencies offer — so readings are wall time,
    not a hardware monotonic counter; a clock adjustment mid-run can in
    principle move them backwards.  All uses here are coarse (phase
    timers, progress lines, span durations), where this is acceptable. *)

val now_ns : unit -> int
(** Nanoseconds since process start. *)

val now_s : unit -> float
(** Seconds since process start (same origin as {!now_ns}). *)
