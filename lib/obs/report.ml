(* End-of-run rendering.  The "counters" section only contains
   engine-invariant values (Names.engine_invariant), so its text is
   byte-identical across --jobs values for the same workload; everything
   engine-dependent lives in the sections below it. *)

let si n =
  if n >= 10_000_000 then Printf.sprintf "%.1fM" (float_of_int n /. 1e6)
  else if n >= 10_000 then Printf.sprintf "%.1fk" (float_of_int n /. 1e3)
  else string_of_int n

let seconds ns = float_of_int ns /. 1e9

let pp_section ppf title rows =
  if rows <> [] then begin
    Fmt.pf ppf "%s:@." title;
    List.iter (fun (name, v) -> Fmt.pf ppf "  %-28s %s@." name v) rows
  end

let pp_summary ppf reg =
  let all = Metrics.to_list reg in
  let counters, meters, histograms, timers =
    List.fold_right
      (fun (name, v) (cs, ms, hs, ts) ->
        match (v : Metrics.view) with
        | Metrics.Counter 0 -> (cs, ms, hs, ts)
        | Metrics.Counter n ->
          if Names.engine_invariant name then ((name, string_of_int n) :: cs, ms, hs, ts)
          else (cs, (name, string_of_int n) :: ms, hs, ts)
        | Metrics.Histogram { count = 0; _ } | Metrics.Timer { intervals = 0; _ } ->
          (cs, ms, hs, ts)
        | Metrics.Histogram { count; sum; max_value; _ } ->
          let row =
            Printf.sprintf "count=%d mean=%.1f max=%d" count
              (float_of_int sum /. float_of_int count)
              max_value
          in
          (cs, ms, (name, row) :: hs, ts)
        | Metrics.Timer { ns; intervals } ->
          (cs, ms, hs, (name, Printf.sprintf "%.3fs over %d intervals" (seconds ns) intervals) :: ts))
      all ([], [], [], [])
  in
  pp_section ppf "counters" counters;
  pp_section ppf "engine meters" meters;
  pp_section ppf "histograms" histograms;
  pp_section ppf "timers" timers;
  (* derived rates, each shown only when its inputs are present *)
  let cval name =
    match Metrics.view reg name with Some (Metrics.Counter n) -> n | _ -> 0
  in
  let tval name =
    match Metrics.view reg name with Some (Metrics.Timer { ns; _ }) -> ns | _ -> 0
  in
  let derived = ref [] in
  let add name v = derived := (name, v) :: !derived in
  let ratio name hits misses =
    let total = hits + misses in
    if total > 0 then add name (Printf.sprintf "%.1f%% (%s of %s)" (100. *. float_of_int hits /. float_of_int total) (si hits) (si total))
  in
  ratio "nrl.inc memo hit rate"
    (cval Names.nrl_inc_memo_hits)
    (cval Names.nrl_inc_memo_misses);
  ratio "checker memo hit rate" (cval Names.checker_memo_hits) (cval Names.checker_memo_misses);
  let pruned = cval Names.explore_dedup_pruned and nodes = cval Names.explore_nodes in
  if pruned > 0 then
    add "dedup hit rate"
      (Printf.sprintf "%.1f%% (%s of %s probes)"
         (100. *. float_of_int pruned /. float_of_int (pruned + nodes))
         (si pruned) (si (pruned + nodes)));
  let total_ns = tval Names.explore_time_total in
  if nodes > 0 && total_ns > 0 then
    add "nodes/s" (si (int_of_float (float_of_int nodes /. seconds total_ns)));
  pp_section ppf "derived" (List.rev !derived)
