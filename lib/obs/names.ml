type kind = Counter | Timer | Histogram

let sim_steps = "sim.steps"
let sim_invocations = "sim.invocations"
let sim_responses = "sim.responses"
let sim_crashes = "sim.crashes"
let sim_recoveries = "sim.recoveries"

let trail_undos = "trail.undos"
let trail_undo_depth = "trail.undo.depth"

let explore_nodes = "explore.nodes"
let explore_terminals = "explore.terminals"
let explore_truncated = "explore.truncated"
let explore_dedup_pruned = "explore.dedup.pruned"
let explore_tasks = "explore.tasks"
let explore_ws_steals = "explore.ws.steals"
let explore_time_idle = "explore.time.idle"
let explore_store_contention = "explore.store.contention"
let explore_time_step = "explore.time.step"
let explore_time_check = "explore.time.check"
let explore_time_dedup = "explore.time.dedup"
let explore_time_total = "explore.time.total"

let nrl_checks = "nrl.checks"
let checker_object_checks = "checker.object_checks"
let checker_memo_hits = "checker.memo.hits"
let checker_memo_misses = "checker.memo.misses"

let nrl_inc_steps = "nrl.inc.steps"
let nrl_inc_res_transitions = "nrl.inc.res_transitions"
let nrl_inc_memo_hits = "nrl.inc.memo.hits"
let nrl_inc_memo_misses = "nrl.inc.memo.misses"

let fuzz_runs = "fuzz.runs"
let fuzz_new_coverage = "fuzz.new_coverage"
let fuzz_violations = "fuzz.violations"
let fuzz_shrink_steps = "fuzz.shrink_steps"
let fuzz_corpus_entries = "fuzz.corpus_entries"

let torture_ops = "torture.ops"
let torture_crashes = "torture.crashes"
let torture_retries = "torture.retries"
let torture_livelocks = "torture.livelocks"
let torture_aborted_recoveries = "torture.aborted_recoveries"

(* (name, kind, engine-invariant, description); [all] below projects the
   public triple, [engine_invariant] the flag. *)
let catalogue =
  [
    (sim_steps, Counter, true, "machine steps executed (operation starts and instructions)");
    (sim_invocations, Counter, true, "invocation (INV) steps recorded, nested included");
    (sim_responses, Counter, true, "response (RES) steps recorded, nested included");
    (sim_crashes, Counter, true, "crash steps injected");
    (sim_recoveries, Counter, true, "recovery steps executed");
    (trail_undos, Counter, false, "Sim.undo_to calls (backtracked edges in trail mode)");
    (trail_undo_depth, Histogram, false, "trail entries reverted per Sim.undo_to");
    (explore_nodes, Counter, true, "tree nodes processed (after dedup pruning)");
    (explore_terminals, Counter, true, "complete executions reached");
    (explore_truncated, Counter, true, "branches cut by the depth bound (or deadlocked)");
    (explore_dedup_pruned, Counter, true, "branches pruned by state deduplication");
    (explore_tasks, Counter, false, "subtree tasks created in the work-stealing pool");
    (explore_ws_steals, Counter, false, "tasks stolen from another worker's deque");
    (explore_time_idle, Timer, false, "wall time workers spent idle waiting to steal");
    (explore_store_contention, Counter, false, "visited-store CAS insertions lost to a racing domain");
    (explore_time_step, Timer, false, "wall time applying decisions (clone or mark/apply/undo)");
    (explore_time_check, Timer, false, "wall time in checker callbacks");
    (explore_time_dedup, Timer, false, "wall time fingerprinting and probing the visited store");
    (explore_time_total, Timer, false, "wall time of the whole exploration");
    (nrl_checks, Counter, true, "full NRL verdicts computed (Nrl.check calls)");
    (checker_object_checks, Counter, true, "per-object WGL searches run");
    (checker_memo_hits, Counter, true, "WGL search nodes skipped by the memo table");
    (checker_memo_misses, Counter, true, "WGL search nodes expanded");
    (nrl_inc_steps, Counter, true, "history steps folded into the incremental automaton");
    (nrl_inc_res_transitions, Counter, true, "response-step closures run");
    (nrl_inc_memo_hits, Counter, true, "closure nodes skipped by the per-event memo");
    (nrl_inc_memo_misses, Counter, true, "closure nodes expanded");
    (fuzz_runs, Counter, true, "fuzz scenarios executed (campaign runs plus shrink re-runs)");
    (fuzz_new_coverage, Counter, true, "state fingerprints visited for the first time in the campaign");
    (fuzz_violations, Counter, true, "fuzz runs judged NRL- or strictness-violating");
    (fuzz_shrink_steps, Counter, true, "shrink candidates executed while minimising counterexamples");
    (fuzz_corpus_entries, Counter, true, "seeds kept in the corpus for discovering new coverage");
    (torture_ops, Counter, true, "operations started under Torture.with_crashes");
    (torture_crashes, Counter, true, "armed crash points that fired");
    (torture_retries, Counter, true, "recovery attempts (crashes = retries + aborted_recoveries)");
    (torture_livelocks, Counter, true, "recoveries aborted by the traversal-fuse livelock detector");
    (torture_aborted_recoveries, Counter, true, "recoveries abandoned after the retry budget");
  ]

let all = List.map (fun (n, k, _, d) -> (n, k, d)) catalogue

let kind_of name =
  List.find_map (fun (n, k, _, _) -> if String.equal n name then Some k else None) catalogue

let engine_invariant name =
  List.exists (fun (n, _, inv, _) -> inv && String.equal n name) catalogue
