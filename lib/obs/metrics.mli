(** A metric registry: monotonic counters, timers and power-of-two
    histograms, designed for single-domain mutation and cross-domain
    aggregation by explicit {!merge}.

    {b Threading model.}  A registry is {e not} thread-safe: exactly one
    domain may mutate it.  Parallel code gives each worker its own
    registry and merges them into the parent's at the join point, in
    worker order — so aggregated values are exact sums, deterministic
    for a deterministic workload, never sampled.  This is what lets the
    explorer promise counter values identical across [--jobs] values.

    {b Cost model.}  Handles ({!counter}, {!timer}, {!histogram}) are
    looked up (or created) once by name; increments through a handle are
    a single unboxed field bump — cheap enough to leave in the machine's
    hot loops behind an [option] match.  Instrumentation never touches
    memory shared between domains, so attaching a registry cannot change
    the concurrency behaviour of the code under observation. *)

type t
(** A registry (a mutable name → metric table). *)

type counter
type timer
type histogram

val create : unit -> t

val counter : t -> string -> counter
(** Find or create the counter [name]; starts at 0.
    @raise Invalid_argument if [name] exists with a different kind. *)

val timer : t -> string -> timer
(** Find or create the timer [name]; starts at 0 ns over 0 intervals.
    @raise Invalid_argument if [name] exists with a different kind. *)

val histogram : t -> string -> histogram
(** Find or create the histogram [name]; starts empty.
    @raise Invalid_argument if [name] exists with a different kind. *)

module Counter : sig
  val incr : counter -> unit
  val add : counter -> int -> unit
  val value : counter -> int
end

module Timer : sig
  val add : timer -> int -> unit
  (** Record one interval of the given length in nanoseconds. *)

  val ns : timer -> int
  (** Total nanoseconds across all recorded intervals. *)

  val intervals : timer -> int
  (** Number of intervals recorded. *)
end

module Histogram : sig
  val observe : histogram -> int -> unit
  (** Record one value.  Values are bucketed by bit length (bucket [i]
      holds values in [\[2{^i-1}, 2{^i})], bucket 0 holds [v <= 0]), so
      a histogram is a few dozen ints however many values it sees. *)

  val count : histogram -> int
  val sum : histogram -> int
  val max_value : histogram -> int
end

(** A read-only snapshot of one metric, for reporting and serialising.
    Histogram buckets are [(le, n)] pairs — [n] observations with value
    [<= le] and greater than the previous bucket's [le] — listing only
    non-empty buckets. *)
type view =
  | Counter of int
  | Timer of { ns : int; intervals : int }
  | Histogram of { count : int; sum : int; max_value : int; buckets : (int * int) list }

val view : t -> string -> view option

val to_list : t -> (string * view) list
(** Every metric in the registry, sorted by name. *)

val merge : into:t -> t -> unit
(** Add every metric of the source registry into [into], creating
    missing names.  Counters and timers add; histograms add bucket-wise
    (and take the max of maxima).  The source is left unchanged.
    @raise Invalid_argument on a name present in both with different
    kinds. *)

val absorb : into:t -> string -> view -> unit
(** Add one metric snapshot into the registry — the deserialising
    counterpart of {!merge}: absorbing every [(name, view)] of
    {!to_list} into a fresh registry reproduces the original exactly
    (histogram bucket bounds round-trip because they are the buckets'
    exact upper bounds).  Used to restore persisted metrics from a
    checkpoint.
    @raise Invalid_argument if [name] exists with a different kind. *)
