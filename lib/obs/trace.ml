let schema_version = "nrl-trace/1"

type value = Bool of bool | Int of int | Float of float | Str of string

type t = { oc : out_channel; m : Mutex.t; mutable closed : bool }

(* Same escaping discipline as Workload.Bench_json (which this library
   cannot depend on): ASCII control characters escaped, everything else
   passed through. *)
let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let number f =
  if Float.is_nan f || Float.abs f = Float.infinity then "null" else Printf.sprintf "%.17g" f

let value_str = function
  | Bool b -> if b then "true" else "false"
  | Int i -> string_of_int i
  | Float f -> number f
  | Str s -> Printf.sprintf "\"%s\"" (escape s)

let fields_str fs =
  String.concat ","
    (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (escape k) (value_str v)) fs)

(* Flush after every record: the sink's guarantee is that a run killed at
   any point — including by an uncatchable SIGKILL — leaves a parseable
   NDJSON prefix on disk, never a line cut mid-record by stdlib
   buffering. *)
let line t s =
  Mutex.lock t.m;
  if not t.closed then begin
    output_string t.oc s;
    output_char t.oc '\n';
    flush t.oc
  end;
  Mutex.unlock t.m

let rec create ~path =
  let oc = open_out path in
  let t = { oc; m = Mutex.create (); closed = false } in
  (* Belt and braces for catchable exits: flush-per-line already bounds
     loss to the record being written, but a clean [at_exit] close also
     releases the descriptor on normal termination paths that forget to
     call {!close}. *)
  at_exit (fun () -> close t);
  line t
    (Printf.sprintf "{\"schema\":\"%s\",\"type\":\"meta\",\"clock\":\"ns-since-process-start\"}"
       schema_version);
  t

and close t =
  Mutex.lock t.m;
  if not t.closed then begin
    t.closed <- true;
    close_out t.oc
  end;
  Mutex.unlock t.m

let event ?ts_ns t ~name fs =
  let ts = match ts_ns with Some ts -> ts | None -> Clock.now_ns () in
  let payload = if fs = [] then "" else Printf.sprintf ",\"fields\":{%s}" (fields_str fs) in
  line t
    (Printf.sprintf "{\"type\":\"event\",\"name\":\"%s\",\"ts_ns\":%d%s}" (escape name) ts payload)

let span t ~name ~start_ns ~dur_ns fs =
  let payload = if fs = [] then "" else Printf.sprintf ",\"fields\":{%s}" (fields_str fs) in
  line t
    (Printf.sprintf "{\"type\":\"span\",\"name\":\"%s\",\"start_ns\":%d,\"dur_ns\":%d%s}"
       (escape name) start_ns dur_ns payload)

let metrics t reg =
  List.iter
    (fun (name, v) ->
      let name = escape name in
      match (v : Metrics.view) with
      | Metrics.Counter n ->
        line t (Printf.sprintf "{\"type\":\"counter\",\"name\":\"%s\",\"value\":%d}" name n)
      | Metrics.Timer { ns; intervals } ->
        line t
          (Printf.sprintf "{\"type\":\"timer\",\"name\":\"%s\",\"ns\":%d,\"intervals\":%d}" name
             ns intervals)
      | Metrics.Histogram { count; sum; max_value; buckets } ->
        let bs =
          String.concat ","
            (List.map (fun (le, n) -> Printf.sprintf "{\"le\":%d,\"n\":%d}" le n) buckets)
        in
        line t
          (Printf.sprintf
             "{\"type\":\"histogram\",\"name\":\"%s\",\"count\":%d,\"sum\":%d,\"max\":%d,\"buckets\":[%s]}"
             name count sum max_value bs))
    (Metrics.to_list reg)

