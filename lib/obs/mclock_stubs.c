/* Monotonic clock for Obs.Clock.

   CLOCK_MONOTONIC readings in nanoseconds, returned as a tagged OCaml
   int.  63 bits of nanoseconds overflow after ~146 years of uptime, so
   Val_long is safe; the OCaml side re-anchors at process start anyway.
   [@@noalloc]-compatible: no OCaml allocation, no callbacks. */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value nrl_mclock_ns(value unit)
{
  struct timespec ts;
  (void)unit;
#ifdef CLOCK_MONOTONIC
  clock_gettime(CLOCK_MONOTONIC, &ts);
#else
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
