(* Relative-to-start readings from CLOCK_MONOTONIC (via the local C
   stub in mclock_stubs.c): immune to wall-clock adjustments, which
   matters now that benchmark measurement windows use this clock.
   Anchoring at process start keeps [now_ns] small enough to be exact
   and gives traces a stable origin. *)

external mclock_ns : unit -> int = "nrl_mclock_ns" [@@noalloc]

let t0 = mclock_ns ()

let[@inline] now_ns () = mclock_ns () - t0

let now_s () = float_of_int (now_ns ()) /. 1e9
