(* Relative-to-start readings: absolute epoch nanoseconds do not fit a
   float's 53-bit mantissa, so anchoring at process start is what makes
   [now_ns] exact (and keeps trace timestamps small and comparable). *)

let t0 = Unix.gettimeofday ()

let now_s () = Unix.gettimeofday () -. t0

let now_ns () = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9)
