(** Human-readable end-of-run rendering of a metric registry — what
    [nrlsim ... --stats] prints.

    The output has up to five sections, each omitted when empty:

    - {b counters}: engine-invariant counters (see {!Names}) — the
      section is byte-identical across [--jobs] values and branching
      disciplines for the same workload, which CI exploits as a
      determinism check.  Zero-valued counters are skipped (identically
      on every engine, since the values themselves are invariant).
    - {b engine meters}: counters that measure the machinery (task
      fan-out, undo traffic) and legitimately vary with [--jobs] and
      [--trail].
    - {b histograms}: count / mean / max per histogram.
    - {b timers}: total seconds and interval counts.
    - {b derived}: rates computed from the above — nodes/s, dedup hit
      rate, memo hit rates, mean trail undo depth — each shown only
      when its inputs are present and non-zero. *)

val pp_summary : Metrics.t Fmt.t
