(** Algorithm 4: nesting-safe recoverable counter, built {e modularly} from
    an array of recoverable read/write objects (Algorithm 1 instances).

    This is the paper's demonstration that NRL base objects compose: INC's
    write to [R\[p\]] goes through the {e recoverable} WRITE operation, so
    if the process crashes inside it, the system runs [WRITE.RECOVER]
    (whose NRL guarantee ensures the write is linearized exactly once and
    its response is obtainable) and INC then completes at line 5.  Only
    crashes that hit INC itself reach [INC.RECOVER], which consults [LI_p]
    to decide whether the write already happened.

    The distinct-written-values assumption of Algorithm 1 is satisfied for
    free: [R\[p\]] is written only by [p] with strictly increasing values.

    READ is implemented as a {e strict} recoverable operation (Definition
    1): it persists its response in [Res_p] (line 15) before returning.

    {v
    INC()                       INC.RECOVER()
    2: temp <- R[p].READ        7: if LI_p < 4 then
    3: temp <- temp + 1         8:   proceed from line 2
    4: R[p].WRITE(temp)         10: else return ack
    5: return ack

    READ()                      READ.RECOVER()
    12: val <- 0                18: proceed from line 12
    13: for i from 1 to N do
    14:   val <- val + R[i].READ
    15: Res_p <- val
    16: return val
    v}

    Recovery cascades: if the crash hit the nested WRITE of line 4, the
    system first completes [WRITE.RECOVER] (whose NRL guarantee linearizes
    the write exactly once) and then invokes [INC.RECOVER], which sees
    [LI_p = 4] — the write happened — and simply returns.  [LI_p] here is
    the last line of INC's own body that started executing, so [LI_p < 4]
    holds exactly when the write of line 4 had not started. *)

open Machine.Program

type cells = {
  regs : Machine.Objdef.instance array;  (** recoverable read/write objects *)
  reg_ids : int array;
  res : Nvm.Memory.addr;  (** per-process [Res_p] for strict READ *)
}

let inc_body c =
  make ~name:"INC"
    [
      (2, Invoke ("temp", (fun ctx _ -> c.reg_ids.(ctx.pid)), "READ", [||]));
      (3, Assign ("temp", add (local "temp") (int 1)));
      (4, Invoke ("ack4", (fun ctx _ -> c.reg_ids.(ctx.pid)), "WRITE", [| local "temp" |]));
      (5, Ret (const Nvm.Value.ack));
    ]

let inc_recover _c =
  make ~name:"INC.RECOVER"
    [
      (7, Branch_if ((fun ctx env -> ignore env; ctx.li_line < 4), 8));
      (10, Ret (const Nvm.Value.ack));
      (8, Resume 2);
    ]

let read_body c =
  make ~name:"READ"
    [
      (12, Assign ("val", int 0));
      (13, Assign ("i", int 0));
      (1301, Branch_if ((fun ctx env -> Nvm.Value.as_int (Machine.Env.get env "i") >= ctx.nprocs), 15));
      (14, Invoke ("tmp", (fun _ env -> c.reg_ids.(Nvm.Value.as_int (Machine.Env.get env "i"))), "READ", [||]));
      (1401, Assign ("val", add (local "val") (local "tmp")));
      (1402, Assign ("i", add (local "i") (int 1)));
      (1403, Jump 1301);
      (15, Write (my_slot c.res, local "val"));
      (16, Ret (local "val"));
    ]

let read_recover _c = make ~name:"READ.RECOVER" [ (18, Resume 12) ]

(** Create a recoverable counter instance in [sim]'s memory, together with
    its array of per-process recoverable read/write registers. *)
let make sim ~name =
  let mem = Machine.Sim.mem sim in
  let nprocs = Machine.Sim.nprocs sim in
  let regs =
    Array.init nprocs (fun i ->
        Rw_obj.make ~init:(Nvm.Value.Int 0) sim ~name:(Printf.sprintf "%s.R[%d]" name i))
  in
  let c =
    {
      regs;
      reg_ids = Array.map (fun (r : Machine.Objdef.instance) -> r.Machine.Objdef.id) regs;
      res = Nvm.Memory.alloc_array ~name:(name ^ ".Res") mem nprocs Nvm.Value.Null;
    }
  in
  let res_cells = Array.init nprocs (fun i -> c.res + i) in
  Machine.Objdef.register (Machine.Sim.registry sim) ~otype:"counter" ~name
    ~strict_cells:[ ("READ", res_cells) ]
    ~subobjects:(Array.to_list regs)
    [
      ("INC", { Machine.Objdef.op_name = "INC"; body = inc_body c; recover = inc_recover c });
      ("READ", { Machine.Objdef.op_name = "READ"; body = read_body c; recover = read_recover c });
    ]
