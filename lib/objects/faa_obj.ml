(** Extension: a recoverable fetch-and-add register, nested on the strict
    recoverable CAS via the generic {!Retry_loop} recipe.

    This demonstrates the nesting that plain Algorithm 2 cannot support:
    a crash {e after} a nested CAS completed loses the (volatile)
    response, and the caller cannot blindly re-invoke a CAS whose first
    execution may have taken effect.  The strict CAS persists
    [<seq, ret>]; the retry loop's persisted per-attempt tag lets the
    recovery interpret it (see {!Retry_loop} for the full protocol).

    The backing CAS holds the plain integer value: written values are
    strictly increasing (deltas must be positive), which satisfies the
    distinct-values assumption without stamping.

    Operations: strict [FAA d] ([d >= 1]; returns the previous value) and
    [READ]. *)

open Machine.Program

(* cur + d, where cur is the integer the attempt read *)
let plus_delta : expr =
 fun ctx env ->
  Nvm.Value.Int (Nvm.Value.as_int (Machine.Env.get env "cur") + Nvm.Value.as_int ctx.args.(0))

(** Create a recoverable fetch-and-add register (initially [init]) and its
    underlying strict CAS instance. *)
let make ?(init = 0) sim ~name =
  let nprocs = Machine.Sim.nprocs sim in
  let c = Retry_loop.alloc sim ~name ~init:(Nvm.Value.Int init) in
  let faa_body = Retry_loop.body c ~name:"FAA" ~resp:(local "cur") ~new_value:plus_delta () in
  let faa_recover = Retry_loop.recover c ~name:"FAA.RECOVER" in
  let read_body, read_recover = Retry_loop.reader c ~name:"READ" ~view:Fun.id in
  Machine.Objdef.register (Machine.Sim.registry sim) ~otype:"faa_register" ~name
    ~init_value:(Nvm.Value.Int init)
    ~strict_cells:[ ("FAA", Retry_loop.own_cells c ~nprocs) ]
    ~subobjects:[ c.Retry_loop.scas ]
    [
      ("FAA", { Machine.Objdef.op_name = "FAA"; body = faa_body; recover = faa_recover });
      ("READ", { Machine.Objdef.op_name = "READ"; body = read_body; recover = read_recover });
    ]
