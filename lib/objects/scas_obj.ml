(** Extension: a {e strict} recoverable CAS object.

    Algorithm 2 is recoverable but not strict: its response lives only in
    a volatile local when the operation returns, so a higher-level
    operation that crashes {e after} a nested CAS completed (but before
    consuming the response) cannot recover the outcome — the exact
    completion-boundary hazard the paper's Section 2 discussion of
    Definition 1 anticipates.

    This object closes the gap: it is Algorithm 2 plus a designated
    per-process persistent response cell [Res_p] written before every
    return, in both the body and the recovery function.  Because a single
    cell would be ambiguous across invocations ("whose response is
    this?"), the caller passes an {e invocation tag} [seq] as a third
    argument — any value distinct across the process's invocations (a
    per-process counter) — and [Res_p] stores [<seq, ret>].  A caller's
    recovery can then decide, from its own persistent state, whether its
    pending nested CAS ever completed and with which response.

    The extra writes touch only [Res_p], read and written by [p] alone,
    so the linearization argument of Algorithm 2 is unaffected.  Paper
    assumptions carry over: never [old = new], per-process distinct [new]
    values, and now also per-process distinct non-negative [seq] tags
    (the cell starts at [<-1, null>]).

    Operations: [CAS (old, new, seq)], [READ ()]. *)

open Machine.Program

type cells = {
  c : Nvm.Memory.addr;
  r : Nvm.Memory.addr;  (** helping matrix, row-major *)
  res : Nvm.Memory.addr;  (** per-process [<seq, ret>] *)
  n : int;
}

let alloc_cells mem ~nprocs ~name ~init =
  let c = Nvm.Memory.alloc ~name mem (Nvm.Value.Pair (Nvm.Value.Null, init)) in
  let r = Nvm.Memory.alloc_array ~name:(name ^ ".R") mem (nprocs * nprocs) Nvm.Value.Null in
  let res =
    Nvm.Memory.alloc_array ~name:(name ^ ".Res") mem nprocs
      (Nvm.Value.Pair (Nvm.Value.Int (-1), Nvm.Value.Null))
  in
  { c; r; res; n = nprocs }

let help_slot cells row_local : int exp =
 fun ctx env ->
  let q = Nvm.Value.as_pid (Nvm.Value.fst (Machine.Env.get env row_local)) in
  cells.r + (q * cells.n) + ctx.pid

let row_scan_slot cells : int exp =
 fun ctx env -> cells.r + (ctx.pid * cells.n) + Nvm.Value.as_int (Machine.Env.get env "j")

(* body: Algorithm 2 with [Res_p <- <seq, ret>] before each return *)
let cas_body cells =
  make ~name:"CAS"
    [
      (2, Read ("cv", at cells.c));
      (3, Branch_if (neq (snd_of (local "cv")) (arg 0), 4));
      (5, Branch_if (is_null (fst_of (local "cv")), 7));
      (6, Write (help_slot cells "cv", snd_of (local "cv")));
      (7, Cas_prim ("ret", at cells.c, local "cv", pair self (arg 1)));
      (701, Write (my_slot cells.res, pair (arg 2) (local "ret")));
      (8, Ret (local "ret"));
      (4, Write (my_slot cells.res, pair (arg 2) (bool false)));
      (401, Ret (bool false));
    ]

(* recovery: first consult Res_p (covers crashes after the decision was
   persisted), then Algorithm 2's evidence checks, persisting before
   every return *)
let cas_recover cells =
  make ~name:"CAS.RECOVER"
    [
      (12, Read ("rv", my_slot cells.res));
      (1201, Branch_if (eq (fst_of (local "rv")) (arg 2), 19));
      (13, Read ("c13", at cells.c));
      (1301, Branch_if (eq (local "c13") (pair self (arg 1)), 14));
      (1302, Assign ("j", int 0));
      ( 1303,
        Branch_if ((fun ctx env -> Nvm.Value.as_int (Machine.Env.get env "j") >= ctx.nprocs), 16) );
      (1304, Read ("rv2", row_scan_slot cells));
      (1305, Branch_if (eq (local "rv2") (arg 1), 14));
      (1306, Assign ("j", add (local "j") (int 1)));
      (1307, Jump 1303);
      (14, Write (my_slot cells.res, pair (arg 2) (bool true)));
      (1401, Ret (bool true));
      (16, Resume 2);
      (19, Ret (snd_of (local "rv")));
    ]

let read_body cells =
  make ~name:"READ" [ (10, Read ("cv", at cells.c)); (11, Ret (snd_of (local "cv"))) ]

let read_recover cells =
  make ~name:"READ.RECOVER"
    [ (18, Read ("cv", at cells.c)); (19, Ret (snd_of (local "cv"))) ]

(** Create a strict recoverable CAS instance; [init] is the object's
    initial abstract value. *)
let make_ex ?(init = Nvm.Value.Null) sim ~name =
  let mem = Machine.Sim.mem sim in
  let nprocs = Machine.Sim.nprocs sim in
  let cells = alloc_cells mem ~nprocs ~name ~init in
  let res_cells = Array.init nprocs (fun i -> cells.res + i) in
  let inst =
    Machine.Objdef.register (Machine.Sim.registry sim) ~otype:"cas" ~name ~init_value:init
      ~strict_cells:[ ("CAS", res_cells) ]
      [
        ( "CAS",
          { Machine.Objdef.op_name = "CAS"; body = cas_body cells; recover = cas_recover cells } );
        ( "READ",
          { Machine.Objdef.op_name = "READ"; body = read_body cells; recover = read_recover cells } );
      ]
  in
  (inst, cells)

let make ?init sim ~name = fst (make_ex ?init sim ~name)
