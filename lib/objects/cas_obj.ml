(** Algorithm 2: nesting-safe recoverable CAS object [C].

    [C] stores a pair [<id, val>]: the identifier of the last process to
    perform a successful CAS and the value it wrote (both initially
    [null]).  An [N x N] matrix [R] of single-reader-single-writer
    variables implements the helping mechanism: before attempting its own
    cas, a process [p] that read [<q, v>] from [C] writes [v] to
    [R\[q\]\[p\]], informing [q] that [q]'s CAS took effect.  On recovery,
    [p] concludes its CAS succeeded if [C] still holds [<p, new>] or [new]
    appears in row [R\[p\]\[.\]]; otherwise the CAS had no visible effect
    and is re-executed.

    Assumptions (from the paper, satisfied by the workload generators):
    CAS is never invoked with [old = new], and values written to [C] by the
    same process are distinct.

    Line numbers match the paper; line 13's multi-access condition is
    split into single-access instructions (1301..1307), evaluating the left
    term first as the proof requires.

    {v
    CAS(old,new)                       CAS.RECOVER(old,new)
    2: <id,val> <- C                   13: if C = <p,new> \/ new in R[p][*]
    3: if val <> old then              14:   return true
    4:   return false                  16: else proceed from line 2
    5: if id <> null then
    6:   R[id][p] <- val               READ() / READ.RECOVER()
    7: ret <- cas(C,<id,val>,<p,new>)  10: <id,val> <- C
    8: return ret                      11: return val
    v} *)

open Machine.Program

type cells = {
  c : Nvm.Memory.addr;  (** the [<id, val>] pair *)
  r : Nvm.Memory.addr;  (** base of the [N x N] helping matrix, row-major *)
  n : int;
}

let alloc_cells mem ~nprocs ~name =
  let c = Nvm.Memory.alloc ~name mem (Nvm.Value.Pair (Nvm.Value.Null, Nvm.Value.Null)) in
  let r = Nvm.Memory.alloc_array ~name:(name ^ ".R") mem (nprocs * nprocs) Nvm.Value.Null in
  { c; r; n = nprocs }

(* R[q][p] where q is the pid in the first field of the pair stored in a
   local and p is the executing process (line 6) *)
let help_slot cells row_local : int exp =
 fun ctx env ->
  let q = Nvm.Value.as_pid (Nvm.Value.fst (Machine.Env.get env row_local)) in
  cells.r + (q * cells.n) + ctx.pid

(* R[p][j] while scanning p's own row during recovery (line 13) *)
let row_scan_slot cells : int exp =
 fun ctx env -> cells.r + (ctx.pid * cells.n) + Nvm.Value.as_int (Machine.Env.get env "j")

let cas_body cells =
  make ~name:"CAS"
    [
      (2, Read ("cv", at cells.c));
      (3, Branch_if (neq (snd_of (local "cv")) (arg 0), 4));
      (5, Branch_if (is_null (fst_of (local "cv")), 7));
      (6, Write (help_slot cells "cv", snd_of (local "cv")));
      (7, Cas_prim ("ret", at cells.c, local "cv", pair self (arg 1)));
      (8, Ret (local "ret"));
      (4, Ret (bool false));
    ]

let cas_recover cells =
  make ~name:"CAS.RECOVER"
    [
      (13, Read ("c13", at cells.c));
      (1301, Branch_if (eq (local "c13") (pair self (arg 1)), 14));
      (1302, Assign ("j", int 0));
      ( 1303,
        Branch_if ((fun ctx env -> Nvm.Value.as_int (Machine.Env.get env "j") >= ctx.nprocs), 16) );
      (1304, Read ("rv", row_scan_slot cells));
      (1305, Branch_if (eq (local "rv") (arg 1), 14));
      (1306, Assign ("j", add (local "j") (int 1)));
      (1307, Jump 1303);
      (14, Ret (bool true));
      (16, Resume 2);
    ]

let read_body cells =
  make ~name:"READ" [ (10, Read ("cv", at cells.c)); (11, Ret (snd_of (local "cv"))) ]

let read_recover cells =
  make ~name:"READ.RECOVER"
    [ (18, Read ("cv", at cells.c)); (19, Ret (snd_of (local "cv"))) ]

(** Create a recoverable CAS object instance in [sim]'s memory, also
    returning its cell layout (used by workload generators and benches). *)
let make_ex sim ~name =
  let mem = Machine.Sim.mem sim in
  let nprocs = Machine.Sim.nprocs sim in
  let cells = alloc_cells mem ~nprocs ~name in
  Machine.Objdef.register (Machine.Sim.registry sim) ~otype:"cas" ~name
    ~sym:
      {
        (* Algorithm 2's bodies index [R] by helped-process id (taken
           from the Pid inside [C]) and own id only; the CAS recovery
           (lines 13'04 sqq.) scans its matrix row in fixed index order,
           so it is not oblivious. *)
        Machine.Objdef.body_oblivious = true;
        recover_oblivious = false;
        pid_arrays = [];
        pid_matrices = [ cells.r ];
      }
    [
      ( "CAS",
        { Machine.Objdef.op_name = "CAS"; body = cas_body cells; recover = cas_recover cells } );
      ( "READ",
        { Machine.Objdef.op_name = "READ"; body = read_body cells; recover = read_recover cells } );
    ]
  |> fun inst -> (inst, cells)

let make sim ~name = fst (make_ex sim ~name)
