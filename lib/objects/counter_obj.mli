(** Algorithm 4: nesting-safe recoverable counter, built modularly from
    per-process recoverable read/write registers (Algorithm 1).

    Operations: [INC] (returns [ack]) and strict [READ].  A crash inside
    the nested recoverable WRITE is first handled by the register's own
    recovery; [INC.RECOVER] then consults [LI_p] to decide whether the
    write of line 4 had started. *)

val make : Machine.Sim.t -> name:string -> Machine.Objdef.instance
(** Register a recoverable counter (object type ["counter"]) together
    with its array of per-process recoverable registers. *)
