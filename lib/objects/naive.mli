(** Naive baseline objects whose recovery strategies are {e not}
    nesting-safe: linearizable without crashes, rejected by the NRL
    checker under crash schedules.  Each failure mode is instructive —
    lost writes (optimistic WRITE), fabricated successes (optimistic
    CAS), contradicted visible effects (re-executed CAS — the paper's
    introductory scenario), lost wins (re-executed TAS), and value
    resurrection (re-executed WRITE observed between executions). *)

val make_rw :
  ?init:Nvm.Value.t ->
  strategy:[ `Optimistic | `Reexecute ] ->
  Machine.Sim.t ->
  name:string ->
  Machine.Objdef.instance

val make_cas :
  ?init:Nvm.Value.t ->
  strategy:[ `Optimistic | `Reexecute ] ->
  Machine.Sim.t ->
  name:string ->
  Machine.Objdef.instance

val make_cas_ex :
  ?init:Nvm.Value.t ->
  strategy:[ `Optimistic | `Reexecute ] ->
  Machine.Sim.t ->
  name:string ->
  Machine.Objdef.instance * Nvm.Memory.addr
(** Also returns the CAS cell's address (for workload generators). *)

val make_tas :
  strategy:[ `Reexecute ] -> Machine.Sim.t -> name:string -> Machine.Objdef.instance
