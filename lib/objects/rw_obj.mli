(** Algorithm 1: nesting-safe recoverable read/write object.

    Supports non-strict recoverable [WRITE] (argument: the value) and
    [READ] operations.  Requires all written values to be distinct; the
    workload generators tag values with the writer id and a sequence
    number, as the paper suggests.  See the implementation for the
    line-by-line transcription. *)

type cells = {
  r : Nvm.Memory.addr;  (** the register cell *)
  s : Nvm.Memory.addr;  (** base of the per-process [S_p] pair array *)
}

val make :
  ?init:Nvm.Value.t -> Machine.Sim.t -> name:string -> Machine.Objdef.instance
(** Allocate the object's cells in the machine's memory and register the
    instance (object type ["rw"]). *)

val make_ex :
  ?init:Nvm.Value.t -> Machine.Sim.t -> name:string -> Machine.Objdef.instance * cells
(** Like {!make}, also exposing the cell layout (for targeted tests and
    benchmarks). *)
