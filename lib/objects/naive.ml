(** Naive baseline objects whose recovery strategies are {e not}
    nesting-safe.  These are the foil for the paper's algorithms: under
    crash-free schedules they are perfectly linearizable, but targeted
    crash schedules produce histories that the NRL checker rejects,
    reproducing the failure modes the paper's introduction describes
    (most prominently: a CAS response lost in a volatile register, leaving
    the recovering process unable to tell whether its CAS took effect).

    Two naive recovery strategies are provided for each primitive:

    - {e optimistic}: assume the crashed operation's effect happened and
      return a fabricated response ("the write went through", "the CAS
      succeeded");
    - {e re-execute}: run the operation again from scratch, risking a
      duplicated effect or a response that contradicts the first
      execution's visible effect.

    All of these are unsound, each in an instructive way (tests and
    experiment E6):

    - optimistic WRITE recovery loses writes that never executed;
    - optimistic CAS recovery fabricates successes;
    - re-executed CAS contradicts its own visible success (the paper's
      introductory scenario), and re-executed TAS loses the win;
    - re-executed WRITE exhibits {e value resurrection}: once the write's
      first execution has been observed and overwritten, a recovery that
      re-executes makes the old value reappear — reads then observe
      [a, b, a] with a single WRITE(a) in the history, which no
      linearization order explains.  Two concurrent observations are not
      enough to expose it (the 2-process exhaustive search finds no
      violation), but one writer + one observer with three reads and a
      single crash suffice.  Algorithm 1's conditional recovery (line 14:
      do not re-execute if [R] changed since) exists precisely to close
      this window. *)

open Machine.Program

let reg_op sim ~otype ~name ?init_value ops =
  Machine.Objdef.register (Machine.Sim.registry sim) ~otype ~name ?init_value ops

let op ~name body recover = (name, { Machine.Objdef.op_name = name; body; recover })

(* {2 Naive read/write register} *)

let rw_read r =
  make ~name:"READ" [ (8, Read ("temp", at r)); (9, Ret (local "temp")) ]

let rw_read_rec r =
  make ~name:"READ.RECOVER" [ (19, Read ("temp", at r)); (20, Ret (local "temp")) ]

let rw_write r =
  make ~name:"WRITE" [ (2, Write (at r, arg 0)); (3, Ret (const Nvm.Value.ack)) ]

(** WRITE.RECOVER that assumes the write happened: loses the write when the
    crash hit before line 2 executed. *)
let rw_write_rec_optimistic =
  make ~name:"WRITE.RECOVER" [ (11, Ret (const Nvm.Value.ack)) ]

(** WRITE.RECOVER that re-executes the write unconditionally — unsound by
    value resurrection; see the module documentation. *)
let rw_write_rec_reexec = make ~name:"WRITE.RECOVER" [ (11, Resume 2) ]

let make_rw ?(init = Nvm.Value.Null) ~strategy sim ~name =
  let r = Nvm.Memory.alloc ~name (Machine.Sim.mem sim) init in
  let recover =
    match strategy with
    | `Optimistic -> rw_write_rec_optimistic
    | `Reexecute -> rw_write_rec_reexec
  in
  reg_op sim ~otype:"rw" ~name ~init_value:init
    [ op ~name:"WRITE" (rw_write r) recover; op ~name:"READ" (rw_read r) (rw_read_rec r) ]

(* {2 Naive CAS object} *)

let cas_body c =
  make ~name:"CAS"
    [ (2, Cas_prim ("ret", at c, arg 0, arg 1)); (3, Ret (local "ret")) ]

let cas_read c = make ~name:"READ" [ (10, Read ("v", at c)); (11, Ret (local "v")) ]

let cas_read_rec c =
  make ~name:"READ.RECOVER" [ (18, Read ("v", at c)); (19, Ret (local "v")) ]

(** CAS.RECOVER that claims success: wrong whenever the crash preceded the
    primitive cas, or the cas failed. *)
let cas_rec_optimistic = make ~name:"CAS.RECOVER" [ (13, Ret (bool true)) ]

(** CAS.RECOVER that re-executes: wrong whenever the first cas succeeded —
    the re-execution then fails (the value already changed) and the caller
    is told [false] although its CAS is visible to everyone.  This is
    precisely the introduction's motivating scenario. *)
let cas_rec_reexec = make ~name:"CAS.RECOVER" [ (13, Resume 2) ]

let make_cas_ex ?(init = Nvm.Value.Null) ~strategy sim ~name =
  let c = Nvm.Memory.alloc ~name (Machine.Sim.mem sim) init in
  let recover =
    match strategy with `Optimistic -> cas_rec_optimistic | `Reexecute -> cas_rec_reexec
  in
  let inst =
    reg_op sim ~otype:"cas" ~name ~init_value:init
      [ op ~name:"CAS" (cas_body c) recover; op ~name:"READ" (cas_read c) (cas_read_rec c) ]
  in
  (inst, c)

let make_cas ?init ~strategy sim ~name = fst (make_cas_ex ?init ~strategy sim ~name)

(* {2 Naive test-and-set} *)

let tas_body t =
  make ~name:"T&S" [ (2, Tas_prim ("ret", at t)); (3, Ret (local "ret")) ]

(** T&S.RECOVER that re-executes the primitive: a winner that crashes
    before persisting its response re-executes, reads 1, and no process
    ever learns it won — every completed T&S returns 1, which no
    sequential TAS history allows. *)
let tas_rec_reexec = make ~name:"T&S.RECOVER" [ (13, Resume 2) ]

let make_tas ~strategy sim ~name =
  let t = Nvm.Memory.alloc ~name (Machine.Sim.mem sim) (Nvm.Value.Int 0) in
  let recover = match strategy with `Reexecute -> tas_rec_reexec in
  reg_op sim ~otype:"tas" ~name [ op ~name:"T&S" (tas_body t) recover ]
