(** Extension: a recoverable max-register over the strict recoverable CAS
    via the generic {!Retry_loop} recipe.

    A max-register cannot be built by taking the maximum of a collect of
    per-process registers — that construction is not linearizable (a
    reader can return a maximum the object never held between two
    concurrent raises).  The single-CAS-cell construction is: [WRITE_MAX]
    either observes a current value at least as large — the retry loop's
    {e early} path, linearized at the read — or installs its value with a
    CAS, retrying on interference.

    The CAS cell stores [<stamp, m>] with a writer-unique stamp.

    Operations: strict [WRITE_MAX v] (integer [v]; returns [ack]) and
    [READ]. *)

open Machine.Program

let m_of (cur : expr) : int exp = fun ctx env -> Nvm.Value.as_int (Nvm.Value.snd (cur ctx env))

(** Create a recoverable max-register (initially [init], default 0). *)
let make ?(init = 0) sim ~name =
  let nprocs = Machine.Sim.nprocs sim in
  let c =
    Retry_loop.alloc sim ~name ~init:(Nvm.Value.Pair (Nvm.Value.Null, Nvm.Value.Int init))
  in
  let dominated ctx env = m_of (local "cur") ctx env >= Nvm.Value.as_int ctx.args.(0) in
  let body =
    Retry_loop.body c ~name:"WRITE_MAX"
      ~early:(dominated, const Nvm.Value.ack)
      ~resp:(const Nvm.Value.ack)
      ~new_value:(Retry_loop.stamped (arg 0))
      ()
  in
  let read_body, read_recover = Retry_loop.reader c ~name:"READ" ~view:snd_of in
  Machine.Objdef.register (Machine.Sim.registry sim) ~otype:"max_register" ~name
    ~init_value:(Nvm.Value.Int init)
    ~strict_cells:[ ("WRITE_MAX", Retry_loop.own_cells c ~nprocs) ]
    ~subobjects:[ c.Retry_loop.scas ]
    [
      ( "WRITE_MAX",
        { Machine.Objdef.op_name = "WRITE_MAX"; body;
          recover = Retry_loop.recover c ~name:"WRITE_MAX.RECOVER" } );
      ("READ", { Machine.Objdef.op_name = "READ"; body = read_body; recover = read_recover });
    ]
