(** Extension: a recoverable fetch-and-add register, nested on the strict
    recoverable CAS ({!Scas_obj}) via the classic CAS retry loop —
    demonstrating the general recipe by which strictness plus a persisted
    per-attempt tag make recoverable RMW loops nestable.

    Operations: strict [FAA d] (requires [d >= 1]; returns the previous
    value) and [READ]. *)

val make : ?init:int -> Machine.Sim.t -> name:string -> Machine.Objdef.instance
(** Register a fetch-and-add register (object type ["faa_register"])
    together with its underlying strict CAS instance. *)
