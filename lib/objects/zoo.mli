(** The mutation bug zoo: deliberately broken variants of Algorithms 1-4,
    each off by exactly one removed or reordered line — skipped persists,
    responses that outrun their persist, dropped helping announcements,
    recovery conditions off by one.  The fuzzer's detection power is
    measured against this catalogue: every mutant must be caught within a
    pinned seed budget (see [lib/fuzz] and docs/fuzzing.md).

    Mutants keep their base algorithm's object type, strictness and
    symmetry registration, so the unmodified NRL and Definition 1
    checkers judge them against the same specifications as the sound
    originals — and so symmetry-quotiented exploration can be pinned
    against unquotiented ground truth on every mutant (the mutations
    drop or reorder lines without introducing pid-dependence). *)

type mutant = {
  m_name : string;  (** zoo-wide unique, usable as a scenario kind *)
  m_algo : string;
      (** base algorithm's scenario kind: ["register"], ["cas"], ["tas"]
          or ["counter"] — selects the workload shape *)
  m_doc : string;  (** the mutation, and why it is unsound *)
}

val all : mutant list
(** The full catalogue, in a stable order. *)

val find : string -> mutant option
(** Look a mutant up by {!field-m_name}. *)

val make : mutant -> Machine.Sim.t -> name:string -> Machine.Objdef.instance * Nvm.Memory.addr option
(** Allocate and register the mutant's object in [sim].  For CAS-based
    mutants the second component is the address of the [C] cell (the
    workload generator computes CAS [old] arguments from it); [None]
    otherwise. *)
