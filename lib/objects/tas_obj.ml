(** Algorithm 3: nesting-safe recoverable test-and-set object [T].

    Uses a base atomic non-readable, non-resettable [t&s] primitive, a
    per-process state array [R] (values 0..4), a [Winner] register, a
    [Doorway] register, and per-process persistent response variables
    [Res_p] — the [T&S] operation is {e strict} (Definition 1): its
    response is persisted in [Res_p] before it returns.

    The [T&S] operation is wait-free, but [T&S.RECOVER] contains two
    busy-waiting loops (lines 25-28) and is therefore {e blocking} — which
    Theorem 4 proves is inevitable for this set of base objects.

    Per-process state in [R\[p\]]:
    - 0: no operation started
    - 1: trying to enter the doorway
    - 2: inside the doorway, competing
    - 3: operation complete, response persisted in [Res_p]
    - 4: recovering and competing again

    The paper assumes each process invokes [T&S] at most once (further
    invocations of a non-resettable TAS are bound to return 1); the
    workload generators respect this.  Line numbers match the paper;
    multi-access lines are split into single-access instructions. *)

open Machine.Program

type cells = {
  r : Nvm.Memory.addr;  (** base of the state array [R\[N\]], initially 0 *)
  winner : Nvm.Memory.addr;  (** initially null *)
  doorway : Nvm.Memory.addr;  (** initially true (open) *)
  t : Nvm.Memory.addr;  (** the base atomic t&s object *)
  res : Nvm.Memory.addr;  (** base of the per-process [Res_p] array *)
}

let alloc_cells mem ~nprocs ~name =
  let r = Nvm.Memory.alloc_array ~name:(name ^ ".R") mem nprocs (Nvm.Value.Int 0) in
  let winner = Nvm.Memory.alloc ~name:(name ^ ".Winner") mem Nvm.Value.Null in
  let doorway = Nvm.Memory.alloc ~name:(name ^ ".Doorway") mem (Nvm.Value.Bool true) in
  let t = Nvm.Memory.alloc ~name:(name ^ ".t") mem (Nvm.Value.Int 0) in
  let res = Nvm.Memory.alloc_array ~name:(name ^ ".Res") mem nprocs Nvm.Value.Null in
  { r; winner; doorway; t; res }

(* ret <- 0 if Winner = p else 1 (line 31's comparison, on the value just
   read into [w]) *)
let winner_test w : expr =
 fun ctx env ->
  if Nvm.Value.equal (Machine.Env.get env w) (Nvm.Value.Pid ctx.pid) then Nvm.Value.Int 0
  else Nvm.Value.Int 1

let tas_body c =
  make ~name:"T&S"
    [
      (2, Write (my_slot c.r, int 1));
      (3, Read ("dw", at c.doorway));
      (301, Branch_if (eq (local "dw") (bool true), 6));
      (4, Assign ("ret", int 1));
      (5, Jump 11);
      (6, Write (my_slot c.r, int 2));
      (7, Write (at c.doorway, bool false));
      (8, Tas_prim ("ret", at c.t));
      (9, Branch_if (neq (local "ret") (int 0), 11));
      (10, Write (at c.winner, self));
      (11, Write (my_slot c.res, local "ret"));
      (12, Write (my_slot c.r, int 3));
      (13, Ret (local "ret"));
    ]

(* Footnote 3 of the paper: with a *readable* base TAS, the doorway
   register is unnecessary — "the doorway is closed" is simply "T is
   already set".  Same line structure, with line 3 reading T and line 7
   gone. *)
let tas_body_readable c =
  make ~name:"T&S"
    [
      (2, Write (my_slot c.r, int 1));
      (3, Read ("dw", at c.t));
      (301, Branch_if (eq (local "dw") (int 0), 6));
      (4, Assign ("ret", int 1));
      (5, Jump 11);
      (6, Write (my_slot c.r, int 2));
      (8, Tas_prim ("ret", at c.t));
      (9, Branch_if (neq (local "ret") (int 0), 11));
      (10, Write (at c.winner, self));
      (11, Write (my_slot c.res, local "ret"));
      (12, Write (my_slot c.r, int 3));
      (13, Ret (local "ret"));
    ]

let tas_recover ?(readable_base = false) c =
  make ~name:"T&S.RECOVER"
    ([
      (15, Read ("r15", my_slot c.r));
      (1501, Branch_if (lt (local "r15") (int 2), 16));
      (17, Read ("r17", my_slot c.r));
      (1701, Branch_if (neq (local "r17") (int 3), 20));
      (18, Read ("ret", my_slot c.res));
      (19, Ret (local "ret"));
      (20, Read ("w20", at c.winner));
      (2001, Branch_if (not_null (local "w20"), 31));
    ]
    @ (if readable_base then [] else [ (22, Write (at c.doorway, bool false)) ])
    @ [
      (23, Write (my_slot c.r, int 4));
      (24, Tas_prim ("ignored", at c.t));
      (* lines 25-26: await, for each i < p, R[i] = 0 \/ R[i] = 3 *)
      (25, Assign ("i", int 0));
      (2501, Branch_if ((fun ctx env -> Nvm.Value.as_int (Machine.Env.get env "i") >= ctx.pid), 27));
      (26, Read ("rd", slot c.r (idx "i")));
      (2601, Branch_if (bnot (bor (eq (local "rd") (int 0)) (eq (local "rd") (int 3))), 26));
      (2602, Assign ("i", add (local "i") (int 1)));
      (2603, Jump 2501);
      (* lines 27-28: await, for each i > p, R[i] = 0 \/ R[i] > 2 *)
      (27, Assign ("i", (fun ctx env -> ignore env; Nvm.Value.Int (ctx.pid + 1))));
      (2701, Branch_if ((fun ctx env -> Nvm.Value.as_int (Machine.Env.get env "i") >= ctx.nprocs), 29));
      (28, Read ("rd", slot c.r (idx "i")));
      (2801, Branch_if (bnot (bor (eq (local "rd") (int 0)) (gt (local "rd") (int 2))), 28));
      (2802, Assign ("i", add (local "i") (int 1)));
      (2803, Jump 2701);
      (29, Read ("w29", at c.winner));
      (2901, Branch_if (not_null (local "w29"), 31));
      (30, Write (at c.winner, self));
      (31, Read ("w31", at c.winner));
      (3101, Assign ("ret", winner_test "w31"));
      (32, Write (my_slot c.res, local "ret"));
      (33, Write (my_slot c.r, int 3));
      (34, Ret (local "ret"));
      (16, Resume 2);
    ])

(** Create a recoverable test-and-set object instance in [sim]'s memory.
    The [T&S] operation is registered as strict, with [Res_p] as the
    designated persistent response variable of process [p].

    With [readable_base:true], the footnote-3 variant is built instead:
    the base TAS is readable and replaces the doorway register (one fewer
    shared variable, one fewer write on the winning path). *)
let make ?(readable_base = false) sim ~name =
  let mem = Machine.Sim.mem sim in
  let nprocs = Machine.Sim.nprocs sim in
  let c = alloc_cells mem ~nprocs ~name in
  let res_cells = Array.init nprocs (fun i -> c.res + i) in
  let body = if readable_base then tas_body_readable c else tas_body c in
  Machine.Objdef.register (Machine.Sim.registry sim) ~otype:"tas" ~name
    ~strict_cells:[ ("T&S", res_cells) ]
    ~sym:
      {
        (* The T&S body only touches [Winner]/[Doorway]/[T] and the
           caller's own slots of [R] and [Res]; the recovery (lines
           25–28) scans [R] in fixed index order, which does not commute
           with pid permutations — so only the body is oblivious and
           symmetry reduction stays off when crashes are possible. *)
        Machine.Objdef.body_oblivious = true;
        recover_oblivious = false;
        pid_arrays = [ c.r; c.res ];
        pid_matrices = [];
      }
    [
      ( "T&S",
        { Machine.Objdef.op_name = "T&S"; body; recover = tas_recover ~readable_base c } );
    ]
