(** Extension: a recoverable stack — the Treiber construction over the
    strict recoverable CAS, via the generic {!Retry_loop} recipe.

    The entire stack contents live in the CAS object's abstract value as
    [<stamp, list>], where [list] is a nested-pair list of the pushed
    values and [stamp = <pid, seq>] is writer-unique.  Stamping satisfies
    Algorithm 2's distinct-values assumption and rules out ABA (equal
    contents reached by different histories never compare equal).

    POP's empty case is the retry loop's {e early} path (no CAS, the
    operation is linearized at its read of the backing object).

    Operations: strict [PUSH x] (returns [ack]), strict [POP] (returns
    the popped value or ["empty"]), [PEEK]. *)

open Machine.Program

let empty = Nvm.Value.Str "empty"

(* list access inside the <stamp, list> value *)
let list_of e : expr = snd_of e
let head_of e : expr = fst_of (snd_of e)
let tail_of e : expr = snd_of (snd_of e)

let top_view (cur : expr) : expr =
 fun ctx env ->
  match cur ctx env with
  | Nvm.Value.Pair (_, Nvm.Value.Pair (h, _)) -> h
  | _ -> empty

(** Create a recoverable stack (initially empty) and its underlying
    strict CAS instance. *)
let make sim ~name =
  let nprocs = Machine.Sim.nprocs sim in
  let init = Nvm.Value.Pair (Nvm.Value.Null, Nvm.Value.Null) in
  let c = Retry_loop.alloc sim ~name ~init in
  let push_body =
    Retry_loop.body c ~name:"PUSH" ~resp:(const Nvm.Value.ack)
      ~new_value:(Retry_loop.stamped (pair (arg 0) (list_of (local "cur"))))
      ()
  in
  let pop_body =
    Retry_loop.body c ~name:"POP"
      ~early:(is_null (list_of (local "cur")), const empty)
      ~resp:(head_of (local "cur"))
      ~new_value:(Retry_loop.stamped (tail_of (local "cur")))
      ()
  in
  let peek_body, peek_recover = Retry_loop.reader c ~name:"PEEK" ~view:top_view in
  let own = Retry_loop.own_cells c ~nprocs in
  Machine.Objdef.register (Machine.Sim.registry sim) ~otype:"stack" ~name
    ~strict_cells:[ ("PUSH", own); ("POP", own) ]
    ~subobjects:[ c.Retry_loop.scas ]
    [
      ( "PUSH",
        { Machine.Objdef.op_name = "PUSH"; body = push_body;
          recover = Retry_loop.recover c ~name:"PUSH.RECOVER" } );
      ( "POP",
        { Machine.Objdef.op_name = "POP"; body = pop_body;
          recover = Retry_loop.recover c ~name:"POP.RECOVER" } );
      ("PEEK", { Machine.Objdef.op_name = "PEEK"; body = peek_body; recover = peek_recover });
    ]
