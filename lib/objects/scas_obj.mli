(** Extension: a {e strict} recoverable CAS object — Algorithm 2 plus
    per-invocation response persistence.

    [CAS (old, new, seq)] behaves like Algorithm 2's CAS but persists
    [<seq, ret>] in the caller's designated response cell before every
    return (body and recovery), where [seq] is a caller-supplied
    invocation tag, distinct and non-negative across the process's
    invocations.  This is what lets higher-level operations (see
    {!Faa_obj}) recover across the completion boundary of a nested CAS. *)

type cells = {
  c : Nvm.Memory.addr;
  r : Nvm.Memory.addr;  (** helping matrix, row-major *)
  res : Nvm.Memory.addr;  (** per-process [<seq, ret>] response cells *)
  n : int;
}

val make : ?init:Nvm.Value.t -> Machine.Sim.t -> name:string -> Machine.Objdef.instance
val make_ex :
  ?init:Nvm.Value.t -> Machine.Sim.t -> name:string -> Machine.Objdef.instance * cells
