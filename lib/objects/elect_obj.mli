(** Extension: a recoverable slot allocator ("elect"), built modularly
    from an array of recoverable TAS objects (Algorithm 3).

    [ELECT ()] returns the index of the first TAS the process wins; each
    slot is owned by at most one process.  The construction relies on the
    {e strictness} of the paper's T&S: ELECT's recovery reads the nested
    operation's persisted response [Res_p] to survive a crash at the
    completion boundary (after the nested T&S returned, before its
    volatile response was consumed). *)

val make : ?k:int -> Machine.Sim.t -> name:string -> Machine.Objdef.instance
(** Register a slot allocator over [k] slots (default: one per process);
    object type ["slot_allocator"], spec checked nondeterministically
    ("returns some free slot"). *)
