(** Extension: a recoverable max-register over the strict recoverable CAS
    (the per-process-collect construction is not linearizable; this one
    is).  Operations: strict [WRITE_MAX v] (integer), [READ]. *)

val make : ?init:int -> Machine.Sim.t -> name:string -> Machine.Objdef.instance
(** Register a max-register (object type ["max_register"]) together with
    its underlying strict CAS instance. *)
