(** The mutation bug zoo: deliberately broken variants of Algorithms 1-4.

    Each mutant removes or reorders {e one} line of a paper algorithm —
    exactly the class of subtle recovery bugs the detectability
    literature catalogues (lost response values, sequence bumps that
    outrun their persist, skipped helping announcements).  The zoo is
    the measuring stick for the fuzzer: a checker that "passes our
    scenarios" proves little, a checker that {e catches every zoo
    mutant within a pinned seed budget} has measured detection power.

    Every mutant keeps its base algorithm's object type, so the NRL
    checker judges it against the same sequential specification, and
    keeps the same strictness registration, so a skipped response
    persist is a Definition 1 violation rather than silent dead code.

    The catalogue is data ({!all}), so tests and the CLI iterate over it
    rather than hand-listing names. *)

open Machine.Program

type mutant = {
  m_name : string;  (** zoo-wide unique, usable as a scenario kind *)
  m_algo : string;
      (** base algorithm's scenario kind: ["register"], ["cas"],
          ["tas"] or ["counter"] — selects the workload shape *)
  m_doc : string;  (** the mutation, and why it is unsound *)
}

let all =
  [
    {
      m_name = "rw-skip-log";
      m_algo = "register";
      m_doc =
        "Alg 1 WRITE skips line 3 (S_p <- <1,temp>): a crash between the write \
         to R and the persist of S_p re-executes a write that already took \
         effect (value resurrection).";
    };
    {
      m_name = "rw-recover-skip-read";
      m_algo = "register";
      m_doc =
        "Alg 1 WRITE.RECOVER skips line 14's re-read of R: a crash between \
         lines 3 and 4 is treated as a completed write, losing the write \
         entirely.";
    };
    {
      m_name = "cas-skip-announce";
      m_algo = "cas";
      m_doc =
        "Alg 2 CAS skips line 6 (the helping write R[id][p] <- val): a winner \
         that crashed before returning finds neither C = <p,new> nor new in \
         its row, re-executes, and reports false for a CAS everyone saw.";
    };
    {
      m_name = "cas-recover-skip-rowscan";
      m_algo = "cas";
      m_doc =
        "Alg 2 CAS.RECOVER checks only C = <p,new> and skips the row scan of \
         line 13: a helped completion is missed and the CAS is re-executed \
         after its effect became visible.";
    };
    {
      m_name = "tas-res-after-state";
      m_algo = "tas";
      m_doc =
        "Alg 3 T&S bumps the state to 3 (line 12) before persisting the \
         response in Res_p (line 11): a crash between them makes recovery \
         read and return the unwritten Res_p.";
    };
    {
      m_name = "tas-skip-res";
      m_algo = "tas";
      m_doc =
        "Alg 3 T&S never persists its response in Res_p (line 11 dropped) \
         although the operation is registered strict: every completed T&S \
         violates Definition 1, and recovery after state 3 returns junk.";
    };
    {
      m_name = "counter-recover-reexec";
      m_algo = "counter";
      m_doc =
        "Alg 4 INC.RECOVER tests LI_p < 5 instead of LI_p < 4: a crash inside \
         the nested recoverable WRITE re-executes INC although the write's \
         NRL guarantee already linearized it — a double increment.";
    };
    {
      m_name = "counter-read-skip-persist";
      m_algo = "counter";
      m_doc =
        "Alg 4 READ skips line 15 (Res_p <- val) while staying registered \
         strict: every completed READ returns a response that was never \
         persisted (Definition 1 violation).";
    };
  ]

let find name = List.find_opt (fun m -> m.m_name = name) all

let reg_op sim ~otype ~name ?init_value ?strict_cells ?subobjects ?sym ops =
  Machine.Objdef.register (Machine.Sim.registry sim) ~otype ~name ?init_value
    ?strict_cells ?subobjects ?sym ops

let op ~name body recover = (name, { Machine.Objdef.op_name = name; body; recover })

(* {2 Algorithm 1 mutants}

   Cells as in {!Rw_obj}; programs transcribed from rw_obj.ml with the
   mutated line marked. *)

let rw_read c = make ~name:"READ" [ (8, Read ("temp", at c.Rw_obj.r)); (9, Ret (local "temp")) ]

let rw_read_recover c =
  make ~name:"READ.RECOVER" [ (19, Read ("temp", at c.Rw_obj.r)); (20, Ret (local "temp")) ]

let rw_write_recover c =
  make ~name:"WRITE.RECOVER"
    [
      (11, Read ("s", my_slot c.Rw_obj.s));
      ( 12,
        Branch_if
          (band (eq (fst_of (local "s")) (int 0)) (neq (snd_of (local "s")) (arg 0)), 13) );
      (14, Read ("r14", at c.Rw_obj.r));
      ( 1401,
        Branch_if
          (band (eq (fst_of (local "s")) (int 1)) (eq (snd_of (local "s")) (local "r14")), 15)
      );
      (16, Write (my_slot c.Rw_obj.s, pair (int 0) (arg 0)));
      (17, Ret (const Nvm.Value.ack));
      (13, Resume 2);
      (15, Resume 2);
    ]

(* MUTATION: line 3 (S_p <- <1,temp>) is gone, so the recovery function
   never sees flag = 1 and re-executes any write interrupted between
   lines 4 and 5. *)
let rw_skip_log_write c =
  make ~name:"WRITE"
    [
      (2, Read ("temp", at c.Rw_obj.r));
      (4, Write (at c.Rw_obj.r, arg 0));
      (5, Write (my_slot c.Rw_obj.s, pair (int 0) (arg 0)));
      (6, Ret (const Nvm.Value.ack));
    ]

let rw_write c =
  make ~name:"WRITE"
    [
      (2, Read ("temp", at c.Rw_obj.r));
      (3, Write (my_slot c.Rw_obj.s, pair (int 1) (local "temp")));
      (4, Write (at c.Rw_obj.r, arg 0));
      (5, Write (my_slot c.Rw_obj.s, pair (int 0) (arg 0)));
      (6, Ret (const Nvm.Value.ack));
    ]

(* MUTATION: line 14's re-read of R is gone — the flag = 1 case falls
   straight through to line 16 and returns ack without ever having
   written R (lost write when the crash hit between lines 3 and 4). *)
let rw_skip_read_recover c =
  make ~name:"WRITE.RECOVER"
    [
      (11, Read ("s", my_slot c.Rw_obj.s));
      ( 12,
        Branch_if
          (band (eq (fst_of (local "s")) (int 0)) (neq (snd_of (local "s")) (arg 0)), 13) );
      (16, Write (my_slot c.Rw_obj.s, pair (int 0) (arg 0)));
      (17, Ret (const Nvm.Value.ack));
      (13, Resume 2);
    ]

let make_rw_mutant variant ?(init = Nvm.Value.Null) sim ~name =
  let mem = Machine.Sim.mem sim in
  let nprocs = Machine.Sim.nprocs sim in
  let c =
    {
      Rw_obj.r = Nvm.Memory.alloc ~name mem init;
      s =
        Nvm.Memory.alloc_array ~name:(name ^ ".S") mem nprocs
          (Nvm.Value.Pair (Nvm.Value.Int 0, Nvm.Value.Null));
    }
  in
  let write, write_rec =
    match variant with
    | `Skip_log -> (rw_skip_log_write c, rw_write_recover c)
    | `Skip_read -> (rw_write c, rw_skip_read_recover c)
  in
  (* mutations drop or reorder lines but never introduce pid-dependence:
     the base algorithm's symmetry declaration still holds, which is what
     lets the soundness tests pin quotiented verdicts against ground
     truth on every mutant *)
  reg_op sim ~otype:"rw" ~name ~init_value:init
    ~sym:
      {
        Machine.Objdef.body_oblivious = true;
        recover_oblivious = true;
        pid_arrays = [ c.Rw_obj.s ];
        pid_matrices = [];
      }
    [ op ~name:"WRITE" write write_rec; op ~name:"READ" (rw_read c) (rw_read_recover c) ]

(* {2 Algorithm 2 mutants} *)

let cas_help_slot (cells : Cas_obj.cells) row_local : int exp =
 fun ctx env ->
  let q = Nvm.Value.as_pid (Nvm.Value.fst (Machine.Env.get env row_local)) in
  cells.Cas_obj.r + (q * cells.Cas_obj.n) + ctx.pid

let cas_row_scan_slot (cells : Cas_obj.cells) : int exp =
 fun ctx env ->
  cells.Cas_obj.r + (ctx.pid * cells.Cas_obj.n) + Nvm.Value.as_int (Machine.Env.get env "j")

let cas_body cells =
  make ~name:"CAS"
    [
      (2, Read ("cv", at cells.Cas_obj.c));
      (3, Branch_if (neq (snd_of (local "cv")) (arg 0), 4));
      (5, Branch_if (is_null (fst_of (local "cv")), 7));
      (6, Write (cas_help_slot cells "cv", snd_of (local "cv")));
      (7, Cas_prim ("ret", at cells.Cas_obj.c, local "cv", pair self (arg 1)));
      (8, Ret (local "ret"));
      (4, Ret (bool false));
    ]

(* MUTATION: lines 5-6 (the helping announcement) are gone — a crashed
   winner whose value was already overwritten finds no evidence of its
   success and re-executes. *)
let cas_skip_announce_body cells =
  make ~name:"CAS"
    [
      (2, Read ("cv", at cells.Cas_obj.c));
      (3, Branch_if (neq (snd_of (local "cv")) (arg 0), 4));
      (7, Cas_prim ("ret", at cells.Cas_obj.c, local "cv", pair self (arg 1)));
      (8, Ret (local "ret"));
      (4, Ret (bool false));
    ]

let cas_recover cells =
  make ~name:"CAS.RECOVER"
    [
      (13, Read ("c13", at cells.Cas_obj.c));
      (1301, Branch_if (eq (local "c13") (pair self (arg 1)), 14));
      (1302, Assign ("j", int 0));
      ( 1303,
        Branch_if
          ((fun ctx env -> Nvm.Value.as_int (Machine.Env.get env "j") >= ctx.nprocs), 16) );
      (1304, Read ("rv", cas_row_scan_slot cells));
      (1305, Branch_if (eq (local "rv") (arg 1), 14));
      (1306, Assign ("j", add (local "j") (int 1)));
      (1307, Jump 1303);
      (14, Ret (bool true));
      (16, Resume 2);
    ]

(* MUTATION: the row scan of line 13 is gone — only C = <p,new> counts
   as evidence of success, so a helped completion is re-executed. *)
let cas_skip_rowscan_recover cells =
  make ~name:"CAS.RECOVER"
    [
      (13, Read ("c13", at cells.Cas_obj.c));
      (1301, Branch_if (eq (local "c13") (pair self (arg 1)), 14));
      (16, Resume 2);
      (14, Ret (bool true));
    ]

let cas_read cells =
  make ~name:"READ" [ (10, Read ("cv", at cells.Cas_obj.c)); (11, Ret (snd_of (local "cv"))) ]

let cas_read_recover cells =
  make ~name:"READ.RECOVER"
    [ (18, Read ("cv", at cells.Cas_obj.c)); (19, Ret (snd_of (local "cv"))) ]

let make_cas_mutant variant sim ~name =
  let mem = Machine.Sim.mem sim in
  let nprocs = Machine.Sim.nprocs sim in
  let cells =
    {
      Cas_obj.c = Nvm.Memory.alloc ~name mem (Nvm.Value.Pair (Nvm.Value.Null, Nvm.Value.Null));
      r = Nvm.Memory.alloc_array ~name:(name ^ ".R") mem (nprocs * nprocs) Nvm.Value.Null;
      n = nprocs;
    }
  in
  let body, recover =
    match variant with
    | `Skip_announce -> (cas_skip_announce_body cells, cas_recover cells)
    | `Skip_rowscan -> (cas_body cells, cas_skip_rowscan_recover cells)
  in
  let inst =
    reg_op sim ~otype:"cas" ~name
      ~sym:
        {
          Machine.Objdef.body_oblivious = true;
          recover_oblivious = false;
          pid_arrays = [];
          pid_matrices = [ cells.Cas_obj.r ];
        }
      [ op ~name:"CAS" body recover; op ~name:"READ" (cas_read cells) (cas_read_recover cells) ]
  in
  (inst, cells.Cas_obj.c)

(* {2 Algorithm 3 mutants} *)

let winner_test w : expr =
 fun ctx env ->
  if Nvm.Value.equal (Machine.Env.get env w) (Nvm.Value.Pid ctx.pid) then Nvm.Value.Int 0
  else Nvm.Value.Int 1

(* MUTATION [`Res_after_state]: lines 11 and 12 swapped — the completion
   state R[p] = 3 is persisted before the response Res_p, so a crash
   between them makes recovery (line 18) read the unwritten Res_p.
   MUTATION [`Skip_res]: line 11 dropped entirely — Res_p is never
   written although T&S is registered strict. *)
let tas_mutant_body variant (c : Tas_obj.cells) =
  let tail =
    match variant with
    | `Res_after_state ->
      [ (11, Write (my_slot c.Tas_obj.r, int 3)); (12, Write (my_slot c.Tas_obj.res, local "ret")) ]
    | `Skip_res -> [ (11, Write (my_slot c.Tas_obj.r, int 3)) ]
  in
  make ~name:"T&S"
    ([
       (2, Write (my_slot c.Tas_obj.r, int 1));
       (3, Read ("dw", at c.Tas_obj.doorway));
       (301, Branch_if (eq (local "dw") (bool true), 6));
       (4, Assign ("ret", int 1));
       (5, Jump 11);
       (6, Write (my_slot c.Tas_obj.r, int 2));
       (7, Write (at c.Tas_obj.doorway, bool false));
       (8, Tas_prim ("ret", at c.Tas_obj.t));
       (9, Branch_if (neq (local "ret") (int 0), 11));
       (10, Write (at c.Tas_obj.winner, self));
     ]
    @ tail
    @ [ (13, Ret (local "ret")) ])

let tas_recover (c : Tas_obj.cells) =
  make ~name:"T&S.RECOVER"
    [
      (15, Read ("r15", my_slot c.Tas_obj.r));
      (1501, Branch_if (lt (local "r15") (int 2), 16));
      (17, Read ("r17", my_slot c.Tas_obj.r));
      (1701, Branch_if (neq (local "r17") (int 3), 20));
      (18, Read ("ret", my_slot c.Tas_obj.res));
      (19, Ret (local "ret"));
      (20, Read ("w20", at c.Tas_obj.winner));
      (2001, Branch_if (not_null (local "w20"), 31));
      (22, Write (at c.Tas_obj.doorway, bool false));
      (23, Write (my_slot c.Tas_obj.r, int 4));
      (24, Tas_prim ("ignored", at c.Tas_obj.t));
      (25, Assign ("i", int 0));
      ( 2501,
        Branch_if ((fun ctx env -> Nvm.Value.as_int (Machine.Env.get env "i") >= ctx.pid), 27) );
      (26, Read ("rd", slot c.Tas_obj.r (idx "i")));
      (2601, Branch_if (bnot (bor (eq (local "rd") (int 0)) (eq (local "rd") (int 3))), 26));
      (2602, Assign ("i", add (local "i") (int 1)));
      (2603, Jump 2501);
      (27, Assign ("i", (fun ctx env -> ignore env; Nvm.Value.Int (ctx.pid + 1))));
      ( 2701,
        Branch_if
          ((fun ctx env -> Nvm.Value.as_int (Machine.Env.get env "i") >= ctx.nprocs), 29) );
      (28, Read ("rd", slot c.Tas_obj.r (idx "i")));
      (2801, Branch_if (bnot (bor (eq (local "rd") (int 0)) (gt (local "rd") (int 2))), 28));
      (2802, Assign ("i", add (local "i") (int 1)));
      (2803, Jump 2701);
      (29, Read ("w29", at c.Tas_obj.winner));
      (2901, Branch_if (not_null (local "w29"), 31));
      (30, Write (at c.Tas_obj.winner, self));
      (31, Read ("w31", at c.Tas_obj.winner));
      (3101, Assign ("ret", winner_test "w31"));
      (32, Write (my_slot c.Tas_obj.res, local "ret"));
      (33, Write (my_slot c.Tas_obj.r, int 3));
      (34, Ret (local "ret"));
      (16, Resume 2);
    ]

let make_tas_mutant variant sim ~name =
  let mem = Machine.Sim.mem sim in
  let nprocs = Machine.Sim.nprocs sim in
  let c =
    {
      Tas_obj.r = Nvm.Memory.alloc_array ~name:(name ^ ".R") mem nprocs (Nvm.Value.Int 0);
      winner = Nvm.Memory.alloc ~name:(name ^ ".Winner") mem Nvm.Value.Null;
      doorway = Nvm.Memory.alloc ~name:(name ^ ".Doorway") mem (Nvm.Value.Bool true);
      t = Nvm.Memory.alloc ~name:(name ^ ".t") mem (Nvm.Value.Int 0);
      res = Nvm.Memory.alloc_array ~name:(name ^ ".Res") mem nprocs Nvm.Value.Null;
    }
  in
  let res_cells = Array.init nprocs (fun i -> c.Tas_obj.res + i) in
  reg_op sim ~otype:"tas" ~name
    ~strict_cells:[ ("T&S", res_cells) ]
    ~sym:
      {
        Machine.Objdef.body_oblivious = true;
        recover_oblivious = false;
        pid_arrays = [ c.Tas_obj.r; c.Tas_obj.res ];
        pid_matrices = [];
      }
    [ op ~name:"T&S" (tas_mutant_body variant c) (tas_recover c) ]

(* {2 Algorithm 4 mutants} *)

type counter_cells = { reg_ids : int array; res : Nvm.Memory.addr }

let counter_inc_body c =
  make ~name:"INC"
    [
      (2, Invoke ("temp", (fun ctx _ -> c.reg_ids.(ctx.pid)), "READ", [||]));
      (3, Assign ("temp", add (local "temp") (int 1)));
      (4, Invoke ("ack4", (fun ctx _ -> c.reg_ids.(ctx.pid)), "WRITE", [| local "temp" |]));
      (5, Ret (const Nvm.Value.ack));
    ]

let counter_inc_recover = make ~name:"INC.RECOVER"
    [
      (7, Branch_if ((fun ctx env -> ignore env; ctx.li_line < 4), 8));
      (10, Ret (const Nvm.Value.ack));
      (8, Resume 2);
    ]

(* MUTATION: the LI_p test is off by one (< 5 instead of < 4): a crash
   at line 4 re-executes INC although the nested recoverable WRITE's own
   recovery already linearized the write. *)
let counter_inc_recover_reexec = make ~name:"INC.RECOVER"
    [
      (7, Branch_if ((fun ctx env -> ignore env; ctx.li_line < 5), 8));
      (10, Ret (const Nvm.Value.ack));
      (8, Resume 2);
    ]

let counter_read_body c =
  make ~name:"READ"
    [
      (12, Assign ("val", int 0));
      (13, Assign ("i", int 0));
      ( 1301,
        Branch_if
          ((fun ctx env -> Nvm.Value.as_int (Machine.Env.get env "i") >= ctx.nprocs), 15) );
      ( 14,
        Invoke
          ( "tmp",
            (fun _ env -> c.reg_ids.(Nvm.Value.as_int (Machine.Env.get env "i"))),
            "READ",
            [||] ) );
      (1401, Assign ("val", add (local "val") (local "tmp")));
      (1402, Assign ("i", add (local "i") (int 1)));
      (1403, Jump 1301);
      (15, Write (my_slot c.res, local "val"));
      (16, Ret (local "val"));
    ]

(* MUTATION: line 15 (Res_p <- val) is gone while READ stays registered
   strict — every completed READ is a Definition 1 violation. *)
let counter_read_body_skip_persist c =
  make ~name:"READ"
    [
      (12, Assign ("val", int 0));
      (13, Assign ("i", int 0));
      ( 1301,
        Branch_if
          ((fun ctx env -> Nvm.Value.as_int (Machine.Env.get env "i") >= ctx.nprocs), 16) );
      ( 14,
        Invoke
          ( "tmp",
            (fun _ env -> c.reg_ids.(Nvm.Value.as_int (Machine.Env.get env "i"))),
            "READ",
            [||] ) );
      (1401, Assign ("val", add (local "val") (local "tmp")));
      (1402, Assign ("i", add (local "i") (int 1)));
      (1403, Jump 1301);
      (16, Ret (local "val"));
    ]

let counter_read_recover = make ~name:"READ.RECOVER" [ (18, Resume 12) ]

let make_counter_mutant variant sim ~name =
  let mem = Machine.Sim.mem sim in
  let nprocs = Machine.Sim.nprocs sim in
  let regs =
    Array.init nprocs (fun i ->
        Rw_obj.make ~init:(Nvm.Value.Int 0) sim ~name:(Printf.sprintf "%s.R[%d]" name i))
  in
  let c =
    {
      reg_ids = Array.map (fun (r : Machine.Objdef.instance) -> r.Machine.Objdef.id) regs;
      res = Nvm.Memory.alloc_array ~name:(name ^ ".Res") mem nprocs Nvm.Value.Null;
    }
  in
  let res_cells = Array.init nprocs (fun i -> c.res + i) in
  let inc_recover, read_body =
    match variant with
    | `Recover_reexec -> (counter_inc_recover_reexec, counter_read_body c)
    | `Read_skip_persist -> (counter_inc_recover, counter_read_body_skip_persist c)
  in
  reg_op sim ~otype:"counter" ~name
    ~strict_cells:[ ("READ", res_cells) ]
    ~subobjects:(Array.to_list regs)
    [
      op ~name:"INC" (counter_inc_body c) inc_recover;
      op ~name:"READ" read_body counter_read_recover;
    ]

(* {2 Dispatch} *)

let make m sim ~name =
  match m.m_name with
  | "rw-skip-log" -> (make_rw_mutant `Skip_log sim ~name, None)
  | "rw-recover-skip-read" -> (make_rw_mutant `Skip_read sim ~name, None)
  | "cas-skip-announce" ->
    let inst, cell = make_cas_mutant `Skip_announce sim ~name in
    (inst, Some cell)
  | "cas-recover-skip-rowscan" ->
    let inst, cell = make_cas_mutant `Skip_rowscan sim ~name in
    (inst, Some cell)
  | "tas-res-after-state" -> (make_tas_mutant `Res_after_state sim ~name, None)
  | "tas-skip-res" -> (make_tas_mutant `Skip_res sim ~name, None)
  | "counter-recover-reexec" -> (make_counter_mutant `Recover_reexec sim ~name, None)
  | "counter-read-skip-persist" -> (make_counter_mutant `Read_skip_persist sim ~name, None)
  | other -> invalid_arg (Printf.sprintf "Zoo.make: unknown mutant %S" other)
