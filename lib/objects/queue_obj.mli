(** Extension: a recoverable FIFO queue over the strict recoverable CAS
    via the {!Retry_loop} recipe.  Operations: strict [ENQ x] (returns
    [ack]), strict [DEQ] (returns the front value or ["empty"]),
    [FRONT]. *)

val empty : Nvm.Value.t
(** The ["empty"] response of [DEQ]/[FRONT] on an empty queue. *)

val make : Machine.Sim.t -> name:string -> Machine.Objdef.instance
(** Register a recoverable queue (object type ["queue"]) together with
    its underlying strict CAS instance. *)
