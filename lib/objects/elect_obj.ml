(** Extension (beyond the paper's examples): a recoverable {e slot
    allocator} ("elect"), built modularly from an array of recoverable TAS
    objects (Algorithm 3 instances).

    [ELECT()] scans slots [0 .. k-1] and returns the index of the first
    TAS it wins.  Each returned slot is owned by exactly one process.

    The construction showcases the role of {e strictness} (Definition 1)
    in nesting: the paper's T&S persists its response in [Res_p] before
    returning, which is exactly what lets ELECT's recovery function cope
    with a crash {e after} a nested T&S completed but {e before} its
    (volatile) response was consumed — ELECT.RECOVER reads the inner
    operation's own persisted response instead of guessing.  A per-process
    persistent progress cell [Prog_p] (written before each nested
    invocation) tells the recovery which slot was being attempted:

    - [T\[Prog_p\].Res_p = null]: the nested T&S never completed (a crash
      while it was pending is handled by {e its} recovery first, which
      always persists the response before the cascade reaches ELECT), so
      it was never invoked — re-invoke it;
    - [= 0]: that slot was won — persist and return it;
    - [= 1]: that slot was lost — move on to the next slot.

    The sequential specification ("return any currently free slot") is
    deliberately nondeterministic; see {!Linearize.Spec}-side
    [slot_allocator] in {!Workload.Check.spec_for}. *)

open Machine.Program

type cells = {
  tases : Machine.Objdef.instance array;
  tas_ids : int array;
  tas_res : Nvm.Memory.addr array;  (** base of each TAS instance's [Res] array *)
  prog : Nvm.Memory.addr;  (** per-process progress: slot being attempted *)
  res : Nvm.Memory.addr;  (** per-process persistent response of ELECT *)
  k : int;
}

(* address of T[i].Res_p where i is the value of a local *)
let inner_res c i_local : int exp =
 fun ctx env -> c.tas_res.(Nvm.Value.as_int (Machine.Env.get env i_local)) + ctx.pid

let elect_body c =
  make ~name:"ELECT"
    [
      (2, Assign ("i", int 0));
      (3, Write (my_slot c.prog, local "i"));
      (4, Invoke ("r", (fun _ env -> c.tas_ids.(Nvm.Value.as_int (Machine.Env.get env "i"))), "T&S", [||]));
      (5, Branch_if (eq (local "r") (int 0), 9));
      (6, Assign ("i", add (local "i") (int 1)));
      (7, Branch_if ((fun _ env -> Nvm.Value.as_int (Machine.Env.get env "i") < c.k), 3));
      (8, Ret (int (-1)));  (* all slots taken; unreachable when k >= nprocs *)
      (9, Write (my_slot c.res, local "i"));
      (10, Ret (local "i"));
    ]

let elect_recover c =
  make ~name:"ELECT.RECOVER"
    [
      (12, Read ("i", my_slot c.prog));
      (13, Read ("rr", inner_res c "i"));
      (* null: the attempt at slot i never completed; redo from line 3
         (Prog_p already holds i, rewriting it is harmless) *)
      (14, Branch_if (is_null (local "rr"), 20));
      (* 0: slot i was won; persist and return via lines 9-10 *)
      (15, Branch_if (eq (local "rr") (int 0), 21));
      (* 1: slot i was lost; continue scanning from i+1 *)
      (16, Assign ("i", add (local "i") (int 1)));
      (17, Branch_if ((fun _ env -> Nvm.Value.as_int (Machine.Env.get env "i") < c.k), 20));
      (18, Ret (int (-1)));
      (20, Resume 3);
      (21, Resume 9);
    ]

(** Create a recoverable slot allocator over [k] slots (default: one per
    process) in [sim]'s memory, together with its TAS instances. *)
let make ?k sim ~name =
  let mem = Machine.Sim.mem sim in
  let nprocs = Machine.Sim.nprocs sim in
  let k = Option.value k ~default:nprocs in
  let tases =
    Array.init k (fun i -> Tas_obj.make sim ~name:(Printf.sprintf "%s.T[%d]" name i))
  in
  let tas_res =
    Array.map
      (fun (t : Machine.Objdef.instance) ->
        match t.Machine.Objdef.strict_cells with
        | [ ("T&S", cells) ] -> cells.(0) (* base address: cells.(p) = base + p *)
        | _ -> invalid_arg "Elect_obj: TAS instance lacks strict cells")
      tases
  in
  let c =
    {
      tases;
      tas_ids = Array.map (fun (t : Machine.Objdef.instance) -> t.Machine.Objdef.id) tases;
      tas_res;
      prog = Nvm.Memory.alloc_array ~name:(name ^ ".Prog") mem nprocs (Nvm.Value.Int 0);
      res = Nvm.Memory.alloc_array ~name:(name ^ ".Res") mem nprocs Nvm.Value.Null;
      k;
    }
  in
  let res_cells = Array.init nprocs (fun i -> c.res + i) in
  Machine.Objdef.register (Machine.Sim.registry sim) ~otype:"slot_allocator" ~name
    ~init_value:(Nvm.Value.Int k) ~strict_cells:[ ("ELECT", res_cells) ]
    ~subobjects:(Array.to_list tases)
    [
      ( "ELECT",
        { Machine.Objdef.op_name = "ELECT"; body = elect_body c; recover = elect_recover c } );
    ]
