(** The recoverable CAS retry loop — the generic recipe behind the
    {!Faa_obj}, {!Stack_obj}, {!Queue_obj} and {!Max_register_obj}
    extensions.

    An operation over a strict-CAS-backed object runs {e attempts}.  Each
    attempt:

    + bumps and persists a per-process tag [Seq_p] ({e commit point} of
      the attempt, line 12);
    + reads the object's current value into the local ["cur"];
    + either takes an {e early} path (the operation needs no update — a
      POP of an empty stack, a WRITE_MAX dominated by the current
      maximum) and is linearized at that read, or persists its would-be
      response in [Att_p = <seq, resp>] and invokes the nested strict
      [CAS (cur, new, seq)];
    + on success persists [<seq, resp>] in [OwnRes_p] and returns; on
      failure starts a new attempt.

    The recovery function is the same for every such operation:

    - [LI_p < 12]: nothing committed — re-execute;
    - [OwnRes_p] carries the current tag: the operation already decided —
      return that response;
    - the CAS object's persisted response carries the current tag: the
      attempt's CAS completed — on success, persist and return the
      response saved in [Att_p]; on failure, retry;
    - otherwise the attempt's CAS never ran (had it been pending, its own
      recovery would have completed and persisted first) — retry.

    Response expressions may refer to the locals ["cur"] (the value read
    at line 13) and ["s"] (the attempt tag).  New values must embed a
    writer-unique stamp — use {!stamped} — to satisfy Algorithm 2's
    distinct-values assumption and to prevent ABA. *)

open Machine.Program

type t = {
  scas : Machine.Objdef.instance;
  scas_id : int;
  scas_res : Nvm.Memory.addr;
  seq : Nvm.Memory.addr;
  att : Nvm.Memory.addr;
  own : Nvm.Memory.addr;
}

(** Allocate the underlying strict CAS (holding [init]) and the loop's
    per-process bookkeeping cells. *)
let alloc sim ~name ~init =
  let mem = Machine.Sim.mem sim in
  let nprocs = Machine.Sim.nprocs sim in
  let scas, scells = Scas_obj.make_ex ~init sim ~name:(name ^ ".C") in
  {
    scas;
    scas_id = scas.Machine.Objdef.id;
    scas_res = scells.Scas_obj.res;
    seq = Nvm.Memory.alloc_array ~name:(name ^ ".Seq") mem nprocs (Nvm.Value.Int 0);
    att =
      Nvm.Memory.alloc_array ~name:(name ^ ".Att") mem nprocs
        (Nvm.Value.Pair (Nvm.Value.Int (-1), Nvm.Value.Null));
    own =
      Nvm.Memory.alloc_array ~name:(name ^ ".OwnRes") mem nprocs
        (Nvm.Value.Pair (Nvm.Value.Int (-1), Nvm.Value.Null));
  }

(** Per-process strict-response cells ([OwnRes_p]), for registration with
    {!Machine.Objdef.register}'s [strict_cells]. *)
let own_cells c ~nprocs = Array.init nprocs (fun i -> c.own + i)

(** [<<pid, s>, e>]: a writer-unique stamped value for the nested CAS. *)
let stamped (e : expr) : expr =
 fun ctx env ->
  Nvm.Value.Pair
    (Nvm.Value.Pair (Nvm.Value.Pid ctx.pid, Machine.Env.get env "s"), e ctx env)

(** The operation body.  [early] is an optional no-update path: when its
    condition (on ["cur"]) holds, the operation persists and returns its
    response without invoking the CAS.  [resp] is the response of an
    updating attempt; [new_value] the value it CASes in. *)
let body c ~name ?early ~resp ~new_value () =
  let early_cond, early_resp =
    match early with
    | Some (cond, r) -> (cond, r)
    | None -> ((fun _ _ -> false), const Nvm.Value.Null)
  in
  make ~name
    [
      (10, Read ("s", my_slot c.seq));
      (11, Assign ("s", add (local "s") (int 1)));
      (12, Write (my_slot c.seq, local "s"));
      (13, Invoke ("cur", (fun _ _ -> c.scas_id), "READ", [||]));
      (14, Branch_if (early_cond, 20));
      (15, Write (my_slot c.att, pair (local "s") resp));
      (16, Invoke ("ok", (fun _ _ -> c.scas_id), "CAS", [| local "cur"; new_value; local "s" |]));
      (17, Branch_if (eq (local "ok") (bool false), 23));
      (18, Write (my_slot c.own, pair (local "s") resp));
      (19, Ret resp);
      (20, Write (my_slot c.own, pair (local "s") early_resp));
      (21, Ret early_resp);
      (23, Jump 10);
    ]

(** The recovery function; identical for every retry-loop operation. *)
let recover c ~name =
  make ~name
    [
      (30, Branch_if ((fun ctx env -> ignore env; ctx.li_line < 12), 39));
      (31, Read ("s", my_slot c.seq));
      (32, Read ("own", my_slot c.own));
      (3201, Branch_if (eq (fst_of (local "own")) (local "s"), 40));
      (33, Read ("rv", (fun ctx env -> ignore env; c.scas_res + ctx.pid)));
      (3301, Branch_if (neq (fst_of (local "rv")) (local "s"), 39));
      (34, Branch_if (eq (snd_of (local "rv")) (bool false), 39));
      (35, Read ("attv", my_slot c.att));
      (36, Write (my_slot c.own, pair (local "s") (snd_of (local "attv"))));
      (37, Ret (snd_of (local "attv")));
      (39, Resume 10);
      (40, Ret (snd_of (local "own")));
    ]

(** A plain reader of the backing CAS value, transformed by [view]
    (linearized at the nested READ; recovery re-executes). *)
let reader c ~name ~(view : expr -> expr) =
  let b =
    make ~name
      [
        (50, Invoke ("cur", (fun _ _ -> c.scas_id), "READ", [||]));
        (51, Ret (view (local "cur")));
      ]
  in
  let r = make ~name:(name ^ ".RECOVER") [ (53, Resume 50) ] in
  (b, r)
