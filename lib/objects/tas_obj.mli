(** Algorithm 3: nesting-safe recoverable test-and-set object.

    Supports one {e strict} recoverable operation, [T&S] (each process
    may invoke it at most once).  The operation is wait-free; its
    recovery function busy-waits on other processes' state — blocking
    that Theorem 4 proves unavoidable with these base objects. *)

type cells = {
  r : Nvm.Memory.addr;  (** per-process state array, values 0..4 *)
  winner : Nvm.Memory.addr;
  doorway : Nvm.Memory.addr;
  t : Nvm.Memory.addr;  (** the base atomic t&s bit *)
  res : Nvm.Memory.addr;  (** per-process persisted responses [Res_p] *)
}

val make : ?readable_base:bool -> Machine.Sim.t -> name:string -> Machine.Objdef.instance
(** Register a recoverable TAS instance (object type ["tas"]); [T&S] is
    declared strict with [Res_p] as its designated response variable.
    [readable_base:true] builds the paper's footnote-3 variant: a
    {e readable} base TAS replaces the doorway register. *)
