(** Extension: a recoverable stack nested on the strict recoverable CAS —
    the Treiber construction made crash-recoverable via the persisted
    per-attempt tag recipe (see {!Faa_obj}).  The stack contents live in
    the CAS object's abstract value, stamped with writer-unique ids to
    satisfy Algorithm 2's distinct-values assumption and to rule out ABA.

    Operations: strict [PUSH x] (returns [ack]), strict [POP] (returns
    the popped value or ["empty"]), [PEEK]. *)

val empty : Nvm.Value.t
(** The ["empty"] response of [POP]/[PEEK] on an empty stack. *)

val make : Machine.Sim.t -> name:string -> Machine.Objdef.instance
(** Register a recoverable stack (object type ["stack"]) together with
    its underlying strict CAS instance. *)
