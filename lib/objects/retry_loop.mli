(** The recoverable CAS retry loop: the generic recipe by which
    {!Faa_obj}, {!Stack_obj}, {!Queue_obj} and {!Max_register_obj} nest
    update loops on the strict recoverable CAS.  Each attempt commits a
    persisted per-process tag before invoking the nested strict CAS; the
    shared recovery function decides the attempt's fate from the CAS's
    persisted [<seq, ret>] response.  See the implementation header for
    the full protocol. *)

type t = {
  scas : Machine.Objdef.instance;
  scas_id : int;
  scas_res : Nvm.Memory.addr;
  seq : Nvm.Memory.addr;  (** per-process attempt tags *)
  att : Nvm.Memory.addr;  (** per-process [<seq, would-be response>] *)
  own : Nvm.Memory.addr;  (** per-process [<seq, response>] (strict cells) *)
}

val alloc : Machine.Sim.t -> name:string -> init:Nvm.Value.t -> t
(** Allocate the underlying strict CAS (holding [init]) and the loop's
    bookkeeping cells. *)

val own_cells : t -> nprocs:int -> Nvm.Memory.addr array
(** The per-process strict-response cells, for [strict_cells]
    registration. *)

val stamped : Machine.Program.expr -> Machine.Program.expr
(** [<<pid, s>, e>]: writer-unique stamping for CASed values (satisfies
    the distinct-values assumption, prevents ABA). *)

val body :
  t ->
  name:string ->
  ?early:(bool Machine.Program.exp * Machine.Program.expr) ->
  resp:Machine.Program.expr ->
  new_value:Machine.Program.expr ->
  unit ->
  Machine.Program.t
(** The operation body.  Expressions may refer to the locals ["cur"] (the
    value read this attempt) and ["s"] (the attempt tag).  [early] is an
    optional no-update path (condition, response), linearized at the
    attempt's read. *)

val recover : t -> name:string -> Machine.Program.t
(** The recovery function — identical for every retry-loop operation. *)

val reader :
  t -> name:string -> view:(Machine.Program.expr -> Machine.Program.expr) ->
  Machine.Program.t * Machine.Program.t
(** A plain reader of the backing value transformed by [view]; returns
    (body, recovery). *)
