(** Extension: a recoverable histogram — three levels of nesting.

    The histogram keeps one recoverable counter (Algorithm 4) per bucket;
    each counter is itself built from recoverable read/write registers
    (Algorithm 1).  A [RECORD] therefore nests three deep:

    {v histogram.RECORD -> counter.INC -> register.READ / register.WRITE v}

    A crash anywhere in that stack exercises the full recovery cascade:
    the register's recovery completes first, then the counter's (using its
    [LI]), then the histogram's (using its own [LI]) — each level only
    reasoning about its own program, which is precisely the modularity NRL
    is designed to license.

    Operations:
    - [RECORD (bucket)]: increment the bucket's counter, return [ack];
    - [BUCKET (bucket)]: read one bucket's count (strict);
    - [TOTAL ()]: sum of all buckets (strict).

    [RECORD]'s recovery mirrors [INC.RECOVER]: if the nested [INC] of
    line 3 started ([LI_p >= 3]) its own recovery has already linearized
    it exactly once, so just return; otherwise re-execute. *)

open Machine.Program

type cells = {
  counters : Machine.Objdef.instance array;
  counter_ids : int array;
  res : Nvm.Memory.addr;  (** per-process strict response cells *)
  k : int;
}

let bucket_id c (e : expr) : int exp =
 fun ctx env -> c.counter_ids.(Nvm.Value.as_int (e ctx env))

let record_body c =
  make ~name:"RECORD"
    [
      (2, Assign ("b", arg 0));
      (3, Invoke ("a", bucket_id c (local "b"), "INC", [||]));
      (4, Ret (const Nvm.Value.ack));
    ]

let record_recover _c =
  make ~name:"RECORD.RECOVER"
    [
      (6, Branch_if ((fun ctx env -> ignore env; ctx.li_line < 3), 7));
      (8, Ret (const Nvm.Value.ack));
      (7, Resume 2);
    ]

let bucket_body c =
  make ~name:"BUCKET"
    [
      (10, Invoke ("v", bucket_id c (arg 0), "READ", [||]));
      (11, Write (my_slot c.res, local "v"));
      (12, Ret (local "v"));
    ]

let bucket_recover _c = make ~name:"BUCKET.RECOVER" [ (14, Resume 10) ]

let total_body c =
  make ~name:"TOTAL"
    [
      (16, Assign ("sum", int 0));
      (17, Assign ("i", int 0));
      (1701, Branch_if ((fun _ env -> Nvm.Value.as_int (Machine.Env.get env "i") >= c.k), 19));
      (18, Invoke ("v", bucket_id c (local "i"), "READ", [||]));
      (1801, Assign ("sum", add (local "sum") (local "v")));
      (1802, Assign ("i", add (local "i") (int 1)));
      (1803, Jump 1701);
      (19, Write (my_slot c.res, local "sum"));
      (20, Ret (local "sum"));
    ]

let total_recover _c = make ~name:"TOTAL.RECOVER" [ (22, Resume 16) ]

(** Create a recoverable histogram with [k] buckets. *)
let make ?(k = 4) sim ~name =
  let mem = Machine.Sim.mem sim in
  let nprocs = Machine.Sim.nprocs sim in
  let counters =
    Array.init k (fun b -> Counter_obj.make sim ~name:(Printf.sprintf "%s.b%d" name b))
  in
  let c =
    {
      counters;
      counter_ids = Array.map (fun (i : Machine.Objdef.instance) -> i.Machine.Objdef.id) counters;
      res = Nvm.Memory.alloc_array ~name:(name ^ ".Res") mem nprocs Nvm.Value.Null;
      k;
    }
  in
  let res_cells = Array.init nprocs (fun i -> c.res + i) in
  Machine.Objdef.register (Machine.Sim.registry sim) ~otype:"histogram" ~name
    ~init_value:(Nvm.Value.Int k)
    ~strict_cells:[ ("BUCKET", res_cells); ("TOTAL", res_cells) ]
    ~subobjects:(Array.to_list counters)
    [
      ("RECORD", { Machine.Objdef.op_name = "RECORD"; body = record_body c; recover = record_recover c });
      ("BUCKET", { Machine.Objdef.op_name = "BUCKET"; body = bucket_body c; recover = bucket_recover c });
      ("TOTAL", { Machine.Objdef.op_name = "TOTAL"; body = total_body c; recover = total_recover c });
    ]
