(** Algorithm 2: nesting-safe recoverable CAS object.

    Supports recoverable [CAS (old, new)] and [READ] operations.  The
    object stores the pair [<last successful writer, value>] and uses an
    [N x N] helping matrix so a recovering process can tell whether its
    CAS took effect.  Assumptions (ensured by workloads): never
    [old = new]; values written by one process are distinct. *)

type cells = {
  c : Nvm.Memory.addr;  (** the [<id, val>] pair *)
  r : Nvm.Memory.addr;  (** base of the [N x N] helping matrix, row-major *)
  n : int;
}

val make : Machine.Sim.t -> name:string -> Machine.Objdef.instance
(** Register a recoverable CAS instance (object type ["cas"], initial
    abstract value [null]). *)

val make_ex : Machine.Sim.t -> name:string -> Machine.Objdef.instance * cells
