(** Extension: a recoverable histogram — three levels of nesting
    (histogram -> counter -> register), exercising the full outward
    recovery cascade.

    Operations: [RECORD b] (returns [ack]), strict [BUCKET b], strict
    [TOTAL]. *)

val make : ?k:int -> Machine.Sim.t -> name:string -> Machine.Objdef.instance
(** Register a histogram with [k] buckets (default 4); object type
    ["histogram"]. *)
