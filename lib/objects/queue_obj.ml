(** Extension: a recoverable FIFO queue over the strict recoverable CAS
    via the generic {!Retry_loop} recipe.

    The queue contents live in the CAS object's abstract value as
    [<stamp, list>] with the front of the queue at the head of the list;
    [ENQ] appends at the tail (a pure value computation inside the
    attempt), [DEQ] removes the head.  As with the stack, writer-unique
    stamping provides the distinct-values assumption and ABA immunity.

    Operations: strict [ENQ x] (returns [ack]), strict [DEQ] (returns the
    front value or ["empty"]), [FRONT]. *)

open Machine.Program

let empty = Nvm.Value.Str "empty"

let list_of e : expr = snd_of e
let head_of e : expr = fst_of (snd_of e)
let tail_of e : expr = snd_of (snd_of e)

(* the list with x appended at the back *)
let append (l : expr) (x : expr) : expr =
 fun ctx env ->
  let xv = x ctx env in
  let rec app = function
    | Nvm.Value.Null -> Nvm.Value.Pair (xv, Nvm.Value.Null)
    | Nvm.Value.Pair (h, t) -> Nvm.Value.Pair (h, app t)
    | v -> raise (Nvm.Value.Type_error ("list", v))
  in
  app (l ctx env)

let front_view (cur : expr) : expr =
 fun ctx env ->
  match cur ctx env with
  | Nvm.Value.Pair (_, Nvm.Value.Pair (h, _)) -> h
  | _ -> empty

(** Create a recoverable queue (initially empty) and its underlying
    strict CAS instance. *)
let make sim ~name =
  let nprocs = Machine.Sim.nprocs sim in
  let init = Nvm.Value.Pair (Nvm.Value.Null, Nvm.Value.Null) in
  let c = Retry_loop.alloc sim ~name ~init in
  let enq_body =
    Retry_loop.body c ~name:"ENQ" ~resp:(const Nvm.Value.ack)
      ~new_value:(Retry_loop.stamped (append (list_of (local "cur")) (arg 0)))
      ()
  in
  let deq_body =
    Retry_loop.body c ~name:"DEQ"
      ~early:(is_null (list_of (local "cur")), const empty)
      ~resp:(head_of (local "cur"))
      ~new_value:(Retry_loop.stamped (tail_of (local "cur")))
      ()
  in
  let front_body, front_recover = Retry_loop.reader c ~name:"FRONT" ~view:front_view in
  let own = Retry_loop.own_cells c ~nprocs in
  Machine.Objdef.register (Machine.Sim.registry sim) ~otype:"queue" ~name
    ~strict_cells:[ ("ENQ", own); ("DEQ", own) ]
    ~subobjects:[ c.Retry_loop.scas ]
    [
      ( "ENQ",
        { Machine.Objdef.op_name = "ENQ"; body = enq_body;
          recover = Retry_loop.recover c ~name:"ENQ.RECOVER" } );
      ( "DEQ",
        { Machine.Objdef.op_name = "DEQ"; body = deq_body;
          recover = Retry_loop.recover c ~name:"DEQ.RECOVER" } );
      ("FRONT", { Machine.Objdef.op_name = "FRONT"; body = front_body; recover = front_recover });
    ]
