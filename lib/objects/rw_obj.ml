(** Algorithm 1: nesting-safe recoverable read/write object [R].

    Shared variables: the register cell [R] itself and, per process [p], a
    single-reader-single-writer pair [S_p], initially [<0, null>].  [S_p]
    stores [R]'s previous value together with a flag from which the
    recovery function infers where in WRITE the failure occurred:

    - [flag = 0] while [p] is not inside a WRITE (or has already performed
      line 5), and
    - [flag = 1] between the writes of lines 3 and 5.

    The algorithm assumes all values written to [R] are distinct; the
    workload generators satisfy this by tagging each written value with the
    writing process id and a per-process sequence number, as the paper
    suggests.  Line numbers match the paper; lines such as 14 that perform
    two shared accesses are split into consecutive instructions (1401,
    ...) each performing at most one access.

    {v
    WRITE(val)                      WRITE.RECOVER(val)
    2: temp <- R                    11: <flag,curr> <- S_p
    3: S_p <- <1,temp>              12: if flag = 0 /\ curr <> val then
    4: R <- val                     13:   proceed from line 2
    5: S_p <- <0,val>               14: else if flag = 1 /\ curr = R then
    6: return ack                   15:   proceed from line 2
                                    16: S_p <- <0,val>
    READ()                          17: return ack
    8: temp <- R
    9: return temp                  READ.RECOVER(): 19-20 as READ
    v} *)

open Machine.Program

type cells = {
  r : Nvm.Memory.addr;  (** the register cell *)
  s : Nvm.Memory.addr;  (** base of the per-process [S_p] array *)
}

let alloc_cells mem ~nprocs ~name ~init =
  let r = Nvm.Memory.alloc ~name mem init in
  let s =
    Nvm.Memory.alloc_array ~name:(name ^ ".S") mem nprocs
      (Nvm.Value.Pair (Nvm.Value.Int 0, Nvm.Value.Null))
  in
  { r; s }

let write_body c =
  make ~name:"WRITE"
    [
      (2, Read ("temp", at c.r));
      (3, Write (my_slot c.s, pair (int 1) (local "temp")));
      (4, Write (at c.r, arg 0));
      (5, Write (my_slot c.s, pair (int 0) (arg 0)));
      (6, Ret (const Nvm.Value.ack));
    ]

let write_recover c =
  make ~name:"WRITE.RECOVER"
    [
      (11, Read ("s", my_slot c.s));
      (* line 12: flag = 0 /\ curr <> val: WRITE never started its updates *)
      ( 12,
        Branch_if
          (band (eq (fst_of (local "s")) (int 0)) (neq (snd_of (local "s")) (arg 0)), 13)
      );
      (* line 14 reads R; the comparison uses the pair read at line 11 *)
      (14, Read ("r14", at c.r));
      ( 1401,
        Branch_if
          (band (eq (fst_of (local "s")) (int 1)) (eq (snd_of (local "s")) (local "r14")), 15)
      );
      (16, Write (my_slot c.s, pair (int 0) (arg 0)));
      (17, Ret (const Nvm.Value.ack));
      (13, Resume 2);
      (15, Resume 2);
    ]

let read_body c =
  make ~name:"READ" [ (8, Read ("temp", at c.r)); (9, Ret (local "temp")) ]

let read_recover c =
  make ~name:"READ.RECOVER" [ (19, Read ("temp", at c.r)); (20, Ret (local "temp")) ]

(** Create a recoverable read/write object instance in [sim]'s memory,
    also returning its cell layout. *)
let make_ex ?(init = Nvm.Value.Null) sim ~name =
  let mem = Machine.Sim.mem sim in
  let nprocs = Machine.Sim.nprocs sim in
  let c = alloc_cells mem ~nprocs ~name ~init in
  Machine.Objdef.register (Machine.Sim.registry sim) ~otype:"rw" ~name ~init_value:init
    ~sym:
      {
        (* Algorithm 1 is fully pid-oblivious: bodies and recoveries touch
           only [R] and the caller's own slot of [S]. *)
        Machine.Objdef.body_oblivious = true;
        recover_oblivious = true;
        pid_arrays = [ c.s ];
        pid_matrices = [];
      }
    [
      ("WRITE", { Machine.Objdef.op_name = "WRITE"; body = write_body c; recover = write_recover c });
      ("READ", { Machine.Objdef.op_name = "READ"; body = read_body c; recover = read_recover c });
    ]
  |> fun inst -> (inst, c)

let make ?init sim ~name = fst (make_ex ?init sim ~name)
