(** Volatile process-local variables.

    In the paper's model each process has local variables stored in volatile
    processor registers; a crash-failure resets them all to {e arbitrary}
    values.  We model the strongest reading of "arbitrary": a scrambled
    environment answers {e every} lookup (even of names that were never
    bound) with adversarially generated junk, so an algorithm that relies on
    any local value across a crash is certain to misbehave in tests. *)

type t = {
  tbl : (string, Nvm.Value.t) Hashtbl.t;
  mutable junk : Junk.t option;
      (** [Some j] once the environment has been scrambled by a crash:
          unbound lookups then produce junk instead of failing. *)
}

exception Unbound_local of string

let create () = { tbl = Hashtbl.create 8; junk = None }

(** A fresh environment in post-crash mode: empty, but reads of unbound
    names yield arbitrary junk instead of raising.  Recovery functions
    run in such environments — the paper's locals are "arbitrary" after a
    crash, so a recovery that reads before writing sees garbage (and the
    NRL checker catches any resulting misbehaviour) rather than aborting
    the simulation. *)
let create_post_crash junk = { tbl = Hashtbl.create 8; junk = Some junk }

let copy t = { tbl = Hashtbl.copy t.tbl; junk = Option.map Junk.copy t.junk }

let set t name v = Hashtbl.replace t.tbl name v

let get t name =
  match Hashtbl.find_opt t.tbl name with
  | Some v -> v
  | None -> (
    match t.junk with
    | Some j ->
      (* an uninitialised register read after a crash: arbitrary contents *)
      let v = Junk.next j in
      Hashtbl.replace t.tbl name v;
      v
    | None -> raise (Unbound_local name))

let mem t name = Hashtbl.mem t.tbl name

(** Reset every local variable to an arbitrary value (crash semantics). *)
let scramble t junk =
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl [] in
  List.iter (fun k -> Hashtbl.replace t.tbl k (Junk.next junk)) keys;
  t.junk <- Some junk

(** Generator state of a scrambled environment ([None] while strict).
    Part of what determines future behaviour: a scrambled environment
    answers unbound lookups from this stream. *)
let junk_state t = Option.map Junk.state t.junk

let bindings t =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tbl [])

let pp ppf t =
  Fmt.pf ppf "{%a}"
    Fmt.(list ~sep:semi (pair ~sep:(any "=") string Nvm.Value.pp))
    (bindings t)
