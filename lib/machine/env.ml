(** Volatile process-local variables.

    In the paper's model each process has local variables stored in volatile
    processor registers; a crash-failure resets them all to {e arbitrary}
    values.  We model the strongest reading of "arbitrary": a scrambled
    environment answers {e every} lookup (even of names that were never
    bound) with adversarially generated junk, so an algorithm that relies on
    any local value across a crash is certain to misbehave in tests. *)

type t = {
  tbl : (string, Nvm.Value.t) Hashtbl.t;
  mutable junk : Junk.t option;
      (** [Some j] once the environment has been scrambled by a crash:
          unbound lookups then produce junk instead of failing. *)
  mutable trail : Nvm.Trail.t option;
      (** when set, every binding mutation and junk draw logs an undo
          thunk; never propagated by {!copy} *)
}

exception Unbound_local of string

let create () = { tbl = Hashtbl.create 8; junk = None; trail = None }

(** A fresh environment in post-crash mode: empty, but reads of unbound
    names yield arbitrary junk instead of raising.  Recovery functions
    run in such environments — the paper's locals are "arbitrary" after a
    crash, so a recovery that reads before writing sees garbage (and the
    NRL checker catches any resulting misbehaviour) rather than aborting
    the simulation. *)
let create_post_crash junk = { tbl = Hashtbl.create 8; junk = Some junk; trail = None }

let copy t = { tbl = Hashtbl.copy t.tbl; junk = Option.map Junk.copy t.junk; trail = None }

let set_trail t trail = t.trail <- trail

(* Undo thunk for one binding: re-install its previous value, or remove
   it if it was absent. *)
let log_binding t name =
  match t.trail with
  | None -> ()
  | Some tr -> (
    match Hashtbl.find_opt t.tbl name with
    | Some old -> Nvm.Trail.push tr (fun () -> Hashtbl.replace t.tbl name old)
    | None -> Nvm.Trail.push tr (fun () -> Hashtbl.remove t.tbl name))

let set t name v =
  log_binding t name;
  Hashtbl.replace t.tbl name v

let get t name =
  match Hashtbl.find_opt t.tbl name with
  | Some v -> v
  | None -> (
    match t.junk with
    | Some j ->
      (* an uninitialised register read after a crash: arbitrary contents.
         The draw both caches a binding and advances the generator; trail
         both so a backtracked machine re-draws the same junk. *)
      (match t.trail with
      | None -> ()
      | Some tr ->
        let s = Junk.state j in
        Nvm.Trail.push tr (fun () ->
            Hashtbl.remove t.tbl name;
            Junk.set_state j s));
      let v = Junk.next j in
      Hashtbl.replace t.tbl name v;
      v
    | None -> raise (Unbound_local name))

let mem t name = Hashtbl.mem t.tbl name

(** Reset every local variable to an arbitrary value (crash semantics). *)
let scramble t junk =
  (match t.trail with
  | None -> ()
  | Some tr ->
    let old_junk = t.junk and s = Junk.state junk in
    let olds = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tbl [] in
    Nvm.Trail.push tr (fun () ->
        List.iter (fun (k, v) -> Hashtbl.replace t.tbl k v) olds;
        t.junk <- old_junk;
        Junk.set_state junk s));
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl [] in
  List.iter (fun k -> Hashtbl.replace t.tbl k (Junk.next junk)) keys;
  t.junk <- Some junk

(** Generator state of a scrambled environment ([None] while strict).
    Part of what determines future behaviour: a scrambled environment
    answers unbound lookups from this stream. *)
let junk_state t = Option.map Junk.state t.junk

let bindings t =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tbl [])

let pp ppf t =
  Fmt.pf ppf "{%a}"
    Fmt.(list ~sep:semi (pair ~sep:(any "=") string Nvm.Value.pp))
    (bindings t)
