(** Recoverable object definitions and the instance registry.

    A recoverable object is an object all of whose operations are
    recoverable: each operation comes with a program for its body and a
    program for its recovery function, which the system invokes (with the
    operation's original arguments and access to [LI_p]) when the
    operation is the crashed operation of a resurrected process. *)

type op_def = {
  op_name : string;
  body : Program.t;
  recover : Program.t;
}

type sym_spec = {
  body_oblivious : bool;
      (** every operation body is {e pid-oblivious}: the only use it makes
          of the executing process id is (a) indexing the declared
          [pid_arrays]/[pid_matrices] and (b) writing/comparing [Pid]
          {e values}.  Permuting process ids then commutes with every
          body step. *)
  recover_oblivious : bool;
      (** same property for every recovery program.  Objects whose
          recovery scans process slots in a fixed index order (e.g. the
          TAS recovery of Algorithm 3, lines 25–28) are {b not} recovery
          oblivious: the scan order breaks the commutation. *)
  pid_arrays : Nvm.Memory.addr list;
      (** base addresses of per-process arrays: cell [base + p] belongs to
          process [p] and moves to [base + π(p)] under a permutation π. *)
  pid_matrices : Nvm.Memory.addr list;
      (** base addresses of row-major [n × n] process matrices: cell
          [base + q*n + p] moves to [base + π(q)*n + π(p)]. *)
}
(** Declaration that an object's persistent footprint transforms
    predictably under a permutation of process ids — the per-object
    soundness obligation of symmetry reduction ({!Fingerprint.Symmetry}).
    Cells not covered by [pid_arrays]/[pid_matrices] may hold [Pid]
    values (which are renamed) but must not be {e located} by pid. *)

type instance = {
  id : int;
  otype : string;
      (** sequential type tag ("rw", "cas", "tas", "counter", ...) used to
          select a specification when checking *)
  obj_name : string;
  ops : (string * op_def) list;
  init_value : Nvm.Value.t;
      (** the object's initial abstract value, used to instantiate its
          sequential specification *)
  strict_cells : (string * Nvm.Memory.addr array) list;
      (** for each {e strict} operation (Definition 1), the designated
          per-process persistent cells holding the response — possibly
          tagged as [<seq, ret>] *)
  subobjects : instance list;
      (** recoverable base objects this instance was built from *)
  sym : sym_spec option;
      (** process-symmetry declaration; [None] disables symmetry
          reduction for scenarios using this object *)
}

val find_op : instance -> string -> op_def
(** @raise Invalid_argument on an unknown operation name. *)

val opref : instance -> string -> History.Step.opref

type registry

val create_registry : unit -> registry

val register :
  registry ->
  otype:string ->
  name:string ->
  ?init_value:Nvm.Value.t ->
  ?strict_cells:(string * Nvm.Memory.addr array) list ->
  ?subobjects:instance list ->
  ?sym:sym_spec ->
  (string * op_def) list ->
  instance
(** Allocate a fresh instance id and record the instance. *)

val find : registry -> int -> instance
(** @raise Invalid_argument on an unknown instance id. *)

val instances : registry -> instance list
(** All registered instances, sorted by id. *)
