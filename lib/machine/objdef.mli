(** Recoverable object definitions and the instance registry.

    A recoverable object is an object all of whose operations are
    recoverable: each operation comes with a program for its body and a
    program for its recovery function, which the system invokes (with the
    operation's original arguments and access to [LI_p]) when the
    operation is the crashed operation of a resurrected process. *)

type op_def = {
  op_name : string;
  body : Program.t;
  recover : Program.t;
}

type instance = {
  id : int;
  otype : string;
      (** sequential type tag ("rw", "cas", "tas", "counter", ...) used to
          select a specification when checking *)
  obj_name : string;
  ops : (string * op_def) list;
  init_value : Nvm.Value.t;
      (** the object's initial abstract value, used to instantiate its
          sequential specification *)
  strict_cells : (string * Nvm.Memory.addr array) list;
      (** for each {e strict} operation (Definition 1), the designated
          per-process persistent cells holding the response — possibly
          tagged as [<seq, ret>] *)
  subobjects : instance list;
      (** recoverable base objects this instance was built from *)
}

val find_op : instance -> string -> op_def
(** @raise Invalid_argument on an unknown operation name. *)

val opref : instance -> string -> History.Step.opref

type registry

val create_registry : unit -> registry

val register :
  registry ->
  otype:string ->
  name:string ->
  ?init_value:Nvm.Value.t ->
  ?strict_cells:(string * Nvm.Memory.addr array) list ->
  ?subobjects:instance list ->
  (string * op_def) list ->
  instance
(** Allocate a fresh instance id and record the instance. *)

val find : registry -> int -> instance
(** @raise Invalid_argument on an unknown instance id. *)

val instances : registry -> instance list
(** All registered instances, sorted by id. *)
