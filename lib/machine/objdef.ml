(** Recoverable object definitions and the instance registry.

    A recoverable object is an object all of whose operations are
    recoverable: each operation [Op] comes with a program for its body and a
    program for its recovery function [Op.Recover], which the system invokes
    (with [Op]'s original arguments and access to [LI_p]) when [Op] is the
    crashed operation of a resurrected process.

    Instances capture the persistent cells they allocated inside their
    programs' closures, so one definition can be instantiated many times in
    the same memory. *)

type op_def = {
  op_name : string;
  body : Program.t;
  recover : Program.t;
}

type sym_spec = {
  body_oblivious : bool;
  recover_oblivious : bool;
  pid_arrays : Nvm.Memory.addr list;
  pid_matrices : Nvm.Memory.addr list;
}

type instance = {
  id : int;
  otype : string;
      (** the sequential type of the object ("rw", "cas", "tas", "counter",
          ...), used to select a sequential specification when checking *)
  obj_name : string;
  ops : (string * op_def) list;
  init_value : Nvm.Value.t;
      (** the object's initial abstract value, needed to instantiate its
          sequential specification when checking *)
  strict_cells : (string * Nvm.Memory.addr array) list;
      (** for each {e strict} recoverable operation (Definition 1), the
          designated per-process persistent cells holding the response *)
  subobjects : instance list;
      (** recoverable base objects this instance was built from (e.g. the
          counter's array of recoverable read/write registers) *)
  sym : sym_spec option;
      (** process-symmetry declaration: how the object's persistent state
          transforms under a permutation of process ids (see
          {!Fingerprint.Symmetry}).  [None] means "not known to be
          oblivious" and disables symmetry reduction for scenarios using
          the object. *)
}

let find_op inst name =
  match List.assoc_opt name inst.ops with
  | Some d -> d
  | None ->
    invalid_arg
      (Printf.sprintf "object %s (%s) has no operation %s" inst.obj_name inst.otype name)

let opref inst op : History.Step.opref =
  { obj = inst.id; obj_name = inst.obj_name; op }

type registry = {
  mutable next_id : int;
  tbl : (int, instance) Hashtbl.t;
}

let create_registry () = { next_id = 0; tbl = Hashtbl.create 16 }

let register reg ~otype ~name ?(init_value = Nvm.Value.Null) ?(strict_cells = [])
    ?(subobjects = []) ?sym ops =
  let id = reg.next_id in
  reg.next_id <- id + 1;
  let inst = { id; otype; obj_name = name; ops; init_value; strict_cells; subobjects; sym } in
  Hashtbl.replace reg.tbl id inst;
  inst

let find reg id =
  match Hashtbl.find_opt reg.tbl id with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "unknown object instance %d" id)

let instances reg =
  List.sort
    (fun a b -> Int.compare a.id b.id)
    (Hashtbl.fold (fun _ i acc -> i :: acc) reg.tbl [])
