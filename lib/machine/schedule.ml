(** Schedules: who takes the next step, and when crash and recovery steps
    occur.  The machine is driven by a policy that inspects the simulator
    and picks the next decision; this module provides the standard
    policies (round-robin, seeded random with crash injection, scripted)
    and the driver loop. *)

type decision =
  | Dstep of int
  | Dcrash of int
  | Drecover of int
  | Dhalt

let pp_decision ppf = function
  | Dstep p -> Fmt.pf ppf "step p%d" p
  | Dcrash p -> Fmt.pf ppf "crash p%d" p
  | Drecover p -> Fmt.pf ppf "recover p%d" p
  | Dhalt -> Fmt.string ppf "halt"

type policy = Sim.t -> decision

(* step-level tracing: enable with a Logs reporter and
   [Logs.Src.set_level src (Some Debug)]; see bin/nrlsim's --verbose *)
let src = Logs.Src.create "nrl.machine" ~doc:"NRL machine decisions"

module Log = (val Logs.src_log src)

(** Apply one decision.  Raises [Invalid_argument] on an inapplicable
    decision, which indicates a policy bug. *)
let apply sim d =
  Log.debug (fun m ->
      m "%a | %a" pp_decision d
        Fmt.(array ~sep:sp Sim.pp_proc)
        (Array.init (Sim.nprocs sim) (Sim.proc sim)));
  match d with
  | Dstep p -> Sim.step sim p
  | Dcrash p -> Sim.crash sim p
  | Drecover p -> Sim.recover sim p
  | Dhalt -> invalid_arg "Schedule.apply: halt"

type outcome = Completed | Halted | Out_of_steps

(** Drive [sim] with [policy] until every process has completed its script,
    the policy halts, or [max_steps] machine steps have been taken. *)
let run ?(max_steps = 100_000) sim policy =
  let rec loop steps =
    if Sim.all_done sim then Completed
    else if steps >= max_steps then Out_of_steps
    else
      match policy sim with
      | Dhalt -> Halted
      | d ->
        apply sim d;
        loop (steps + 1)
  in
  loop 0

(** Round-robin over live processes; a crashed process is recovered as soon
    as its turn comes. *)
let round_robin () : policy =
  let cursor = ref 0 in
  fun sim ->
    let n = Sim.nprocs sim in
    let rec find k =
      if k >= n then Dhalt
      else
        let p = (!cursor + k) mod n in
        if Sim.can_recover sim p then begin
          cursor := (p + 1) mod n;
          Drecover p
        end
        else if Sim.enabled sim p then begin
          cursor := (p + 1) mod n;
          Dstep p
        end
        else find (k + 1)
    in
    find 0

(* A tiny self-contained PRNG so schedules are reproducible and independent
   of the global [Random] state. *)
module Prng = struct
  type t = { mutable s : int }

  let create seed = { s = (if seed = 0 then 0x2545f491 else seed land max_int) }

  let bits t =
    let s = t.s in
    let s = s lxor (s lsl 13) in
    let s = s lxor (s lsr 7) in
    let s = s lxor (s lsl 17) in
    t.s <- s land max_int;
    t.s

  let int t n = if n <= 0 then 0 else bits t mod n
  let float t = float_of_int (bits t land 0xFFFFFF) /. 16777216.0
  let pick t l = List.nth l (int t (List.length l))
end

(** Seeded uniform-random schedule with crash injection.

    - With probability [crash_prob], and while fewer than [max_crashes]
      crashes have been injected, crash a random live process that has a
      pending operation (crashes in the middle of operations are the
      interesting adversarial case; idle crashes are exercised separately).
    - A crashed process is recovered with probability [recover_prob] each
      time it is considered; otherwise other processes keep running first,
      modelling a slow resurrection. *)
let random ?(crash_prob = 0.0) ?(recover_prob = 0.5) ?(max_crashes = max_int)
    ?(system_crash_prob = 0.0) ~seed () : policy =
  let rng = Prng.create seed in
  let crashes = ref 0 in
  (* decisions queued by a system-wide crash: every live process fails at
     the same point, as in the full-system failure model *)
  let pending = ref [] in
  fun sim ->
    match !pending with
    | d :: rest ->
      pending := rest;
      d
    | [] ->
      let n = Sim.nprocs sim in
      let live_mid_op =
        List.filter
          (fun p -> Sim.can_crash ~mid_op_only:true sim p)
          (List.init n Fun.id)
      in
      let live = List.filter (fun p -> Sim.can_crash sim p) (List.init n Fun.id) in
      let crashed = List.filter (fun p -> Sim.can_recover sim p) (List.init n Fun.id) in
      let enabled = List.filter (fun p -> Sim.enabled sim p) (List.init n Fun.id) in
      if
        !crashes < max_crashes
        && live_mid_op <> []
        && Prng.float rng < system_crash_prob
      then begin
        incr crashes;
        match List.map (fun p -> Dcrash p) live with
        | [] -> Dhalt
        | d :: rest ->
          pending := rest;
          d
      end
      else if
        !crashes < max_crashes
        && live_mid_op <> []
        && Prng.float rng < crash_prob
      then begin
        incr crashes;
        Dcrash (Prng.pick rng live_mid_op)
      end
      else if crashed <> [] && (enabled = [] || Prng.float rng < recover_prob) then
        Drecover (Prng.pick rng crashed)
      else if enabled <> [] then Dstep (Prng.pick rng enabled)
      else if crashed <> [] then Drecover (Prng.pick rng crashed)
      else Dhalt

(** Replay an explicit decision list, then halt. *)
let scripted decisions : policy =
  let rest = ref decisions in
  fun _ ->
    match !rest with
    | [] -> Dhalt
    | d :: tl ->
      rest := tl;
      d
