(** Canonical structural fingerprint of a machine configuration.

    A fingerprint covers everything that determines the machine's future
    behaviour: the persistent memory contents, the junk-generator state
    (which fixes the values future crashes scramble locals to), and for
    each process its status, completed results, remaining script length
    and full frame stack — object, operation, phase, pc, [LI],
    interrupted flag, argument values, local bindings and the
    environment's post-crash mode.  History bookkeeping (call ids, step
    counters, the recorded history itself) is deliberately excluded: two
    configurations with equal fingerprints generate identical future
    event sequences even when they were reached by different
    interleavings.

    Unlike the string serialisation previously private to the
    impossibility analysis, the representation here is structural — no
    intermediate strings are built — with the hash computed once at
    construction, so fingerprints are cheap enough to take at every node
    of an exploration.  {!Store} packages a sharded, mutex-protected
    visited-set over fingerprints for use from multiple domains. *)

type frame_fp = {
  ff_obj : int;  (** instance id *)
  ff_op : string;
  ff_recovery : bool;
  ff_pc : int;
  ff_li : int;
  ff_interrupted : bool;
  ff_env : (string * Nvm.Value.t) list;  (** sorted bindings *)
  ff_env_junk : int option;  (** post-crash mode + its stream state *)
  ff_args : Nvm.Value.t array;
}

type proc_fp = {
  pf_crashed : bool;
  pf_script : int;  (** remaining script length *)
  pf_results : (string * Nvm.Value.t) list;
  pf_stack : frame_fp list;  (** inner-most first *)
}

type t = {
  fp_hash : int;
  fp_mem : Nvm.Value.t array;
  fp_junk : int;
  fp_procs : proc_fp array;
  fp_extra : int;
      (** caller-supplied path context that must keep otherwise-equal
          configurations distinct — the explorer passes its consumed
          crash budget, without which deduplication would merge states
          whose remaining futures differ (see {!Explore}) *)
}

let hash t = t.fp_hash

(* FNV-style mixing; Value.hash does the per-value work *)
let mix h k = ((h * 0x01000193) lxor k) land max_int

let hash_value_list h l =
  List.fold_left (fun h (s, v) -> mix (mix h (Hashtbl.hash s)) (Nvm.Value.hash v)) h l

let frame_of (f : Sim.frame) =
  {
    ff_obj = f.Sim.f_obj.Objdef.id;
    ff_op = f.Sim.f_op.Objdef.op_name;
    ff_recovery = (match f.Sim.f_phase with Sim.Body -> false | Sim.Recovery -> true);
    ff_pc = f.Sim.f_pc;
    ff_li = f.Sim.f_li;
    ff_interrupted = f.Sim.f_interrupted;
    ff_env = Env.bindings f.Sim.f_env;
    ff_env_junk = Env.junk_state f.Sim.f_env;
    ff_args = f.Sim.f_args;
  }

let hash_frame h f =
  let h = mix h f.ff_obj in
  let h = mix h (Hashtbl.hash f.ff_op) in
  let h = mix h (Bool.to_int f.ff_recovery lor (Bool.to_int f.ff_interrupted lsl 1)) in
  let h = mix h f.ff_pc in
  let h = mix h f.ff_li in
  let h = mix h (match f.ff_env_junk with None -> 0x5851 | Some s -> s) in
  let h = hash_value_list h f.ff_env in
  Array.fold_left (fun h v -> mix h (Nvm.Value.hash v)) h f.ff_args

let proc_of (pr : Sim.proc) =
  {
    pf_crashed = (match pr.Sim.status with Sim.Ready -> false | Sim.Crashed -> true);
    pf_script = List.length pr.Sim.script;
    pf_results = pr.Sim.results;
    pf_stack = List.map frame_of pr.Sim.stack;
  }

let hash_proc h p =
  let h = mix h (Bool.to_int p.pf_crashed) in
  let h = mix h p.pf_script in
  let h = hash_value_list h p.pf_results in
  List.fold_left hash_frame h p.pf_stack

let of_sim ?(extra = 0) sim =
  let fp_mem = Nvm.Memory.snapshot (Sim.mem sim) in
  let fp_junk = Sim.junk_state sim in
  let fp_procs = Array.init (Sim.nprocs sim) (fun p -> proc_of (Sim.proc sim p)) in
  let h = Array.fold_left (fun h v -> mix h (Nvm.Value.hash v)) 0x811c9dc5 fp_mem in
  let h = mix h fp_junk in
  let h = mix h extra in
  let h = Array.fold_left hash_proc h fp_procs in
  { fp_hash = h; fp_mem; fp_junk; fp_procs; fp_extra = extra }

(* Components are immutable first-order data (ints, bools, strings,
   values), so structural polymorphic equality is exact; the precomputed
   hash screens out almost all mismatches first. *)
let equal a b =
  a.fp_hash = b.fp_hash && a.fp_junk = b.fp_junk && a.fp_extra = b.fp_extra
  && a.fp_mem = b.fp_mem && a.fp_procs = b.fp_procs

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

(** Printable canonical serialisation (for diagnostics and the
    impossibility analysis's string-keyed maps). *)
let to_string t =
  let b = Buffer.create 256 in
  Array.iter
    (fun v ->
      Buffer.add_string b (Nvm.Value.to_string v);
      Buffer.add_char b '|')
    t.fp_mem;
  Buffer.add_string b (Printf.sprintf "~j%d" t.fp_junk);
  if t.fp_extra <> 0 then Buffer.add_string b (Printf.sprintf "~x%d" t.fp_extra);
  Array.iter
    (fun p ->
      Buffer.add_string b (if p.pf_crashed then "C" else "R");
      Buffer.add_string b (string_of_int p.pf_script);
      Buffer.add_char b ':';
      List.iter
        (fun (op, v) ->
          Buffer.add_string b op;
          Buffer.add_string b (Nvm.Value.to_string v);
          Buffer.add_char b ',')
        p.pf_results;
      Buffer.add_char b '[';
      List.iter
        (fun f ->
          Buffer.add_string b (string_of_int f.ff_obj);
          Buffer.add_char b '.';
          Buffer.add_string b f.ff_op;
          Buffer.add_string b (if f.ff_recovery then "/r" else "/b");
          Buffer.add_string b (Printf.sprintf "@%d;li%d" f.ff_pc f.ff_li);
          if f.ff_interrupted then Buffer.add_char b '!';
          (match f.ff_env_junk with
          | None -> ()
          | Some s -> Buffer.add_string b (Printf.sprintf "~e%d" s));
          Buffer.add_char b '{';
          List.iter
            (fun (k, v) ->
              Buffer.add_string b k;
              Buffer.add_char b '=';
              Buffer.add_string b (Nvm.Value.to_string v);
              Buffer.add_char b ';')
            f.ff_env;
          Buffer.add_char b '}';
          Array.iter
            (fun a ->
              Buffer.add_string b (Nvm.Value.to_string a);
              Buffer.add_char b ',')
            f.ff_args;
          Buffer.add_char b '/')
        p.pf_stack;
      Buffer.add_string b "]#")
    t.fp_procs;
  Buffer.contents b

(** Sharded visited-set, safe to share across domains.  The shard is
    picked by fingerprint hash, so contention is spread and two equal
    fingerprints always race on the same mutex. *)
module Store = struct
  type fp = t

  type t = { shards : (Mutex.t * unit Table.t) array }

  let create ?(shards = 64) () =
    { shards = Array.init (max 1 shards) (fun _ -> (Mutex.create (), Table.create 1024)) }

  (** [add s fp] is [true] iff [fp] was not in the store (and is now). *)
  let add t (fp : fp) =
    let m, tbl = t.shards.(fp.fp_hash mod Array.length t.shards) in
    Mutex.lock m;
    let fresh = not (Table.mem tbl fp) in
    if fresh then Table.add tbl fp ();
    Mutex.unlock m;
    fresh

  let cardinal t =
    Array.fold_left
      (fun acc (m, tbl) ->
        Mutex.lock m;
        let n = Table.length tbl in
        Mutex.unlock m;
        acc + n)
      0 t.shards
end
