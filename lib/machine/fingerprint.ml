(** Canonical structural fingerprint of a machine configuration.

    A fingerprint covers everything that determines the machine's future
    behaviour: the persistent memory contents, the junk-generator state
    (which fixes the values future crashes scramble locals to), and for
    each process its status, completed results, remaining script length
    and full frame stack — object, operation, phase, pc, [LI],
    interrupted flag, argument values, local bindings and the
    environment's post-crash mode.  History bookkeeping (call ids, step
    counters, the recorded history itself) is deliberately excluded: two
    configurations with equal fingerprints generate identical future
    event sequences even when they were reached by different
    interleavings.

    Unlike the string serialisation previously private to the
    impossibility analysis, the representation here is structural — no
    intermediate strings are built — with the hash computed once at
    construction, so fingerprints are cheap enough to take at every node
    of an exploration.  {!Store} packages a sharded, mutex-protected
    visited-set over fingerprints for use from multiple domains. *)

type frame_fp = {
  ff_obj : int;  (** instance id *)
  ff_op : string;
  ff_recovery : bool;
  ff_pc : int;
  ff_li : int;
  ff_interrupted : bool;
  ff_env : (string * Nvm.Value.t) list;  (** sorted bindings *)
  ff_env_junk : int option;  (** post-crash mode + its stream state *)
  ff_args : Nvm.Value.t array;
}

type proc_fp = {
  pf_crashed : bool;
  pf_script : int;  (** remaining script length *)
  pf_results : (string * Nvm.Value.t) list;
  pf_stack : frame_fp list;  (** inner-most first *)
}

type t = {
  fp_hash : int;
  fp_mem : Nvm.Value.t array;
  fp_junk : int;
  fp_procs : proc_fp array;
  fp_extra : int;
      (** caller-supplied path context that must keep otherwise-equal
          configurations distinct — the explorer passes its consumed
          crash budget, without which deduplication would merge states
          whose remaining futures differ (see {!Explore}) *)
}

let hash t = t.fp_hash

(* FNV-style mixing; Value.hash does the per-value work *)
let mix h k = ((h * 0x01000193) lxor k) land max_int

let hash_value_list h l =
  List.fold_left (fun h (s, v) -> mix (mix h (Hashtbl.hash s)) (Nvm.Value.hash v)) h l

let frame_of (f : Sim.frame) =
  {
    ff_obj = f.Sim.f_obj.Objdef.id;
    ff_op = f.Sim.f_op.Objdef.op_name;
    ff_recovery = (match f.Sim.f_phase with Sim.Body -> false | Sim.Recovery -> true);
    ff_pc = f.Sim.f_pc;
    ff_li = f.Sim.f_li;
    ff_interrupted = f.Sim.f_interrupted;
    ff_env = Env.bindings f.Sim.f_env;
    ff_env_junk = Env.junk_state f.Sim.f_env;
    ff_args = f.Sim.f_args;
  }

let hash_frame h f =
  let h = mix h f.ff_obj in
  let h = mix h (Hashtbl.hash f.ff_op) in
  let h = mix h (Bool.to_int f.ff_recovery lor (Bool.to_int f.ff_interrupted lsl 1)) in
  let h = mix h f.ff_pc in
  let h = mix h f.ff_li in
  let h = mix h (match f.ff_env_junk with None -> 0x5851 | Some s -> s) in
  let h = hash_value_list h f.ff_env in
  Array.fold_left (fun h v -> mix h (Nvm.Value.hash v)) h f.ff_args

let proc_of (pr : Sim.proc) =
  {
    pf_crashed = (match pr.Sim.status with Sim.Ready -> false | Sim.Crashed -> true);
    pf_script = List.length pr.Sim.script;
    pf_results = pr.Sim.results;
    pf_stack = List.map frame_of pr.Sim.stack;
  }

let hash_proc h p =
  let h = mix h (Bool.to_int p.pf_crashed) in
  let h = mix h p.pf_script in
  let h = hash_value_list h p.pf_results in
  List.fold_left hash_frame h p.pf_stack

let hash_of ~mem ~junk ~extra ~procs =
  let h = Array.fold_left (fun h v -> mix h (Nvm.Value.hash v)) 0x811c9dc5 mem in
  let h = mix h junk in
  let h = mix h extra in
  Array.fold_left hash_proc h procs

let of_sim ?(extra = 0) sim =
  let fp_mem = Nvm.Memory.snapshot (Sim.mem sim) in
  let fp_junk = Sim.junk_state sim in
  let fp_procs = Array.init (Sim.nprocs sim) (fun p -> proc_of (Sim.proc sim p)) in
  let fp_hash = hash_of ~mem:fp_mem ~junk:fp_junk ~extra ~procs:fp_procs in
  { fp_hash; fp_mem; fp_junk; fp_procs; fp_extra = extra }

(* Components are immutable first-order data (ints, bools, strings,
   values), so structural polymorphic equality is exact; the precomputed
   hash screens out almost all mismatches first. *)
let equal a b =
  a.fp_hash = b.fp_hash && a.fp_junk = b.fp_junk && a.fp_extra = b.fp_extra
  && a.fp_mem = b.fp_mem && a.fp_procs = b.fp_procs

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

(** Printable canonical serialisation (for diagnostics and the
    impossibility analysis's string-keyed maps). *)
let to_string t =
  let b = Buffer.create 256 in
  Array.iter
    (fun v ->
      Buffer.add_string b (Nvm.Value.to_string v);
      Buffer.add_char b '|')
    t.fp_mem;
  Buffer.add_string b (Printf.sprintf "~j%d" t.fp_junk);
  if t.fp_extra <> 0 then Buffer.add_string b (Printf.sprintf "~x%d" t.fp_extra);
  Array.iter
    (fun p ->
      Buffer.add_string b (if p.pf_crashed then "C" else "R");
      Buffer.add_string b (string_of_int p.pf_script);
      Buffer.add_char b ':';
      List.iter
        (fun (op, v) ->
          Buffer.add_string b op;
          Buffer.add_string b (Nvm.Value.to_string v);
          Buffer.add_char b ',')
        p.pf_results;
      Buffer.add_char b '[';
      List.iter
        (fun f ->
          Buffer.add_string b (string_of_int f.ff_obj);
          Buffer.add_char b '.';
          Buffer.add_string b f.ff_op;
          Buffer.add_string b (if f.ff_recovery then "/r" else "/b");
          Buffer.add_string b (Printf.sprintf "@%d;li%d" f.ff_pc f.ff_li);
          if f.ff_interrupted then Buffer.add_char b '!';
          (match f.ff_env_junk with
          | None -> ()
          | Some s -> Buffer.add_string b (Printf.sprintf "~e%d" s));
          Buffer.add_char b '{';
          List.iter
            (fun (k, v) ->
              Buffer.add_string b k;
              Buffer.add_char b '=';
              Buffer.add_string b (Nvm.Value.to_string v);
              Buffer.add_char b ';')
            f.ff_env;
          Buffer.add_char b '}';
          Array.iter
            (fun a ->
              Buffer.add_string b (Nvm.Value.to_string a);
              Buffer.add_char b ',')
            f.ff_args;
          Buffer.add_char b '/')
        p.pf_stack;
      Buffer.add_string b "]#")
    t.fp_procs;
  Buffer.contents b

(** Lock-free sharded visited-set, safe to share across domains.

    Each shard is an ordered chain of open-addressing segments of
    [fp option Atomic.t] slots.  Insertion probes the segments in one
    fixed global order — oldest segment first, and within each segment a
    bounded window of slots starting at a position derived from the
    fingerprint hash — and claims the first empty slot with a CAS.
    Because slots are monotone ([None] → [Some fp], never mutated
    again) and two equal fingerprints share the exact same probe
    sequence, they serialise on the first CAS-able slot of that
    sequence: whichever CAS wins inserts, and the loser re-reads the
    very slot it lost and observes the duplicate.  So [add] returns
    [true] exactly once per distinct fingerprint with no locks on the
    fast path.

    When every window in the chain is full, the shard grows by
    appending a segment of twice the last size — the only step taken
    under a (per-shard) mutex, and re-checked against concurrent
    growth before appending.  Earlier segments are never rehashed, so
    probes started before a growth still agree with probes after it. *)
module Store = struct
  type fp = t

  type shard = {
    mutable segs : fp option Atomic.t array array;
        (** oldest first; written only under [lock], read without it —
            the probe re-reads via [Atomic] slot operations only *)
    lock : Mutex.t;
    count : int Atomic.t;
  }

  type t = {
    shards : shard array;
    shard_bits : int;
    contention : int Atomic.t;  (** CAS insertions lost to a racing domain *)
  }

  let probe_window = 16
  let initial_segment = 1 lsl 10

  let create ?(shards = 64) () =
    let bits =
      let rec go b = if 1 lsl b >= max 1 (min shards 4096) then b else go (b + 1) in
      go 0
    in
    {
      shards =
        Array.init (1 lsl bits) (fun _ ->
            {
              segs = [| Array.init initial_segment (fun _ -> Atomic.make None) |];
              lock = Mutex.create ();
              count = Atomic.make 0;
            });
      shard_bits = bits;
      contention = Atomic.make 0;
    }

  type verdict = Fresh | Dup | Full

  let probe t segs (fp : fp) =
    let key = fp.fp_hash lsr t.shard_bits in
    let nsegs = Array.length segs in
    let verdict = ref Full in
    let s = ref 0 in
    while !verdict = Full && !s < nsegs do
      let seg = segs.(!s) in
      let m = Array.length seg in
      let base = key mod m in
      let window = min probe_window m in
      let i = ref 0 in
      while !verdict = Full && !i < window do
        let slot = seg.((base + !i) mod m) in
        (match Atomic.get slot with
        | Some v -> if equal v fp then verdict := Dup
        | None ->
          if Atomic.compare_and_set slot None (Some fp) then verdict := Fresh
          else begin
            Atomic.incr t.contention;
            (* the slot is monotone: re-read what beat us *)
            match Atomic.get slot with
            | Some v when equal v fp -> verdict := Dup
            | _ -> ()
          end);
        incr i
      done;
      incr s
    done;
    !verdict

  (** [add s fp] is [true] iff [fp] was not in the store (and is now). *)
  let rec add t (fp : fp) =
    let sh = t.shards.(fp.fp_hash land ((1 lsl t.shard_bits) - 1)) in
    let segs = sh.segs in
    match probe t segs fp with
    | Fresh ->
      Atomic.incr sh.count;
      true
    | Dup -> false
    | Full ->
      Mutex.lock sh.lock;
      (if sh.segs == segs then
         let last = segs.(Array.length segs - 1) in
         let grown = Array.init (2 * Array.length last) (fun _ -> Atomic.make None) in
         sh.segs <- Array.append segs [| grown |]);
      Mutex.unlock sh.lock;
      add t fp

  let cardinal t = Array.fold_left (fun acc sh -> acc + Atomic.get sh.count) 0 t.shards

  let contention t = Atomic.get t.contention
  let shards t = Array.length t.shards

  let shard_sizes t = Array.map (fun sh -> Atomic.get sh.count) t.shards
end

(* -------------------------------------------------------------------- *)
(* Process-id symmetry reduction                                         *)

(* Deterministic total order on fingerprints: hash first (cheap screen),
   then structural comparison of the immutable first-order components.
   Used to pick the canonical representative of an orbit. *)
let order a b =
  let c = Int.compare a.fp_hash b.fp_hash in
  if c <> 0 then c
  else
    Stdlib.compare
      (a.fp_junk, a.fp_extra, a.fp_mem, a.fp_procs)
      (b.fp_junk, b.fp_extra, b.fp_mem, b.fp_procs)

let rec rename_value pi v =
  match v with
  | Nvm.Value.Pid q -> if q >= 0 && q < Array.length pi then Nvm.Value.Pid pi.(q) else v
  | Nvm.Value.Pair (a, b) -> Nvm.Value.Pair (rename_value pi a, rename_value pi b)
  | v -> v

let map_frame_values f fr =
  {
    fr with
    ff_env = List.map (fun (k, v) -> (k, f v)) fr.ff_env;
    ff_args = Array.map f fr.ff_args;
  }

let map_proc_values f p =
  {
    p with
    pf_results = List.map (fun (op, v) -> (op, f v)) p.pf_results;
    pf_stack = List.map (map_frame_values f) p.pf_stack;
  }

let erased_proc_hash sim p =
  let own = Nvm.Value.Str "\001own" and other = Nvm.Value.Str "\001other" in
  let rec erase v =
    match v with
    | Nvm.Value.Pid q -> if q = p then own else other
    | Nvm.Value.Pair (a, b) -> Nvm.Value.Pair (erase a, erase b)
    | v -> v
  in
  hash_proc 0x9e3779b9 (map_proc_values erase (proc_of (Sim.proc sim p)))

module Symmetry = struct
  type group = {
    g_n : int;
    g_perms : int array list;  (** non-identity members of the group *)
    g_arrays : int list;
    g_matrices : int list;
  }

  let degree g = 1 + List.length g.g_perms
  let max_group = 5040 (* 7! — beyond this canonicalisation costs more than it prunes *)

  (* All non-identity permutations of 0..n-1 mapping the [keep] set onto
     itself (crash-enabled processes must stay crash-enabled). *)
  let perms_of n keep =
    let acc = ref [] in
    let pi = Array.make n (-1) in
    let used = Array.make n false in
    let rec go i =
      if i = n then begin
        if not (Array.for_all Fun.id (Array.mapi (fun k j -> k = j) pi)) then
          acc := Array.copy pi :: !acc
      end
      else
        for j = 0 to n - 1 do
          if (not used.(j)) && keep.(i) = keep.(j) then begin
            used.(j) <- true;
            pi.(i) <- j;
            go (i + 1);
            used.(j) <- false
          end
        done
    in
    go 0;
    List.rev !acc

  (* A script is symmetric when, after renaming the process's own pid to
     a neutral token, every process runs the same program.  Arguments
     mentioning a *foreign* pid, or computed at invocation time, make
     the scenario asymmetric (or unanalysable) — detection bails out. *)
  let erased_script own (pr : Sim.proc) =
    let own_tok = Nvm.Value.Str "\001own" in
    let rec erase v =
      match v with
      | Nvm.Value.Pid q -> if q = own then Some own_tok else None
      | Nvm.Value.Pair (a, b) -> (
        match (erase a, erase b) with
        | Some a, Some b -> Some (Nvm.Value.Pair (a, b))
        | _ -> None)
      | v -> Some v
    in
    let entry (inst, op, spec) =
      match spec with
      | Sim.Compute _ -> None
      | Sim.Args a ->
        let ea = Array.map erase a in
        if Array.exists Option.is_none ea then None
        else Some (inst.Objdef.id, op, Array.map Option.get ea)
    in
    let rec all = function
      | [] -> Some []
      | e :: tl -> (
        match (entry e, all tl) with Some k, Some ks -> Some (k :: ks) | _ -> None)
    in
    all pr.Sim.script

  let junk_pid_free sim =
    match Sim.junk_strategy sim with
    | Junk.Scramble | Junk.Zeros | Junk.Ones | Junk.MaxInt -> true
    | Junk.Lure pool ->
      let rec pid_free = function
        | Nvm.Value.Pid _ -> false
        | Nvm.Value.Pair (a, b) -> pid_free a && pid_free b
        | _ -> true
      in
      Array.for_all pid_free pool

  let fact n =
    let r = ref 1 in
    for i = 2 to n do
      r := !r * i
    done;
    !r

  let detect ?(crashes_possible = true) ~crash_procs sim =
    let n = Sim.nprocs sim in
    let insts = Objdef.instances (Sim.registry sim) in
    let objects_ok =
      insts <> []
      && List.for_all
           (fun (i : Objdef.instance) ->
             match i.Objdef.sym with
             | None -> false
             | Some s ->
               s.Objdef.body_oblivious && ((not crashes_possible) || s.Objdef.recover_oblivious))
           insts
    in
    let root_ok =
      let ok = ref true in
      for p = 0 to n - 1 do
        let pr = Sim.proc sim p in
        if pr.Sim.status <> Sim.Ready || pr.Sim.stack <> [] || pr.Sim.results <> [] then
          ok := false
      done;
      !ok
    in
    let scripts_ok =
      match erased_script 0 (Sim.proc sim 0) with
      | None -> false
      | Some k0 ->
        let rec same p =
          p >= n
          || (match erased_script p (Sim.proc sim p) with
             | Some kp when kp = k0 -> same (p + 1)
             | _ -> false)
        in
        same 1
    in
    if n < 2 || fact n > max_group || (not objects_ok) || (not root_ok) || (not scripts_ok)
       || not (junk_pid_free sim)
    then None
    else
      let keep = Array.init n (fun p -> List.mem p crash_procs) in
      match perms_of n keep with
      | [] -> None
      | perms ->
        let arrays, matrices =
          List.fold_left
            (fun (ars, mats) (i : Objdef.instance) ->
              match i.Objdef.sym with
              | None -> (ars, mats)
              | Some s -> (s.Objdef.pid_arrays @ ars, s.Objdef.pid_matrices @ mats))
            ([], []) insts
        in
        Some { g_n = n; g_perms = perms; g_arrays = arrays; g_matrices = matrices }

  (* Apply a permutation to a fingerprint: rename every Pid value, move
     per-process array cells to the slot of the renamed owner, move
     matrix cells likewise in both coordinates, and relocate each
     process's control state.  The junk stream and the extra path
     context are pid-free by construction, so they pass through. *)
  let permute g pi fp =
    let n = g.g_n in
    let renamed = Array.map (rename_value pi) fp.fp_mem in
    let mem = Array.copy renamed in
    List.iter
      (fun base ->
        if base >= 0 && base + n <= Array.length mem then
          for p = 0 to n - 1 do
            mem.(base + pi.(p)) <- renamed.(base + p)
          done)
      g.g_arrays;
    List.iter
      (fun base ->
        if base >= 0 && base + (n * n) <= Array.length mem then
          for q = 0 to n - 1 do
            for p = 0 to n - 1 do
              mem.(base + (pi.(q) * n) + pi.(p)) <- renamed.(base + (q * n) + p)
            done
          done)
      g.g_matrices;
    let procs = Array.make n fp.fp_procs.(0) in
    for p = 0 to n - 1 do
      procs.(pi.(p)) <- map_proc_values (rename_value pi) fp.fp_procs.(p)
    done;
    let fp_hash = hash_of ~mem ~junk:fp.fp_junk ~extra:fp.fp_extra ~procs in
    { fp_hash; fp_mem = mem; fp_junk = fp.fp_junk; fp_procs = procs; fp_extra = fp.fp_extra }

  let canonical g fp =
    if Array.length fp.fp_procs <> g.g_n then fp
    else
      List.fold_left
        (fun best pi ->
          let cand = permute g pi fp in
          if order cand best < 0 then cand else best)
        fp g.g_perms
end
