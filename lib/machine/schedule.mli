(** Schedules: who takes the next step, and when crash and recovery steps
    occur. *)

type decision =
  | Dstep of int
  | Dcrash of int
  | Drecover of int
  | Dhalt

val pp_decision : decision Fmt.t

type policy = Sim.t -> decision

val src : Logs.src
(** The machine's log source ("nrl.machine"): decisions are logged at
    debug level; install a reporter and set the level to see them. *)

val apply : Sim.t -> decision -> unit
(** Apply one decision.
    @raise Invalid_argument on an inapplicable decision (or [Dhalt]). *)

type outcome = Completed | Halted | Out_of_steps

val run : ?max_steps:int -> Sim.t -> policy -> outcome
(** Drive the machine until every process completed its script, the
    policy halts, or [max_steps] (default 100,000) steps were taken. *)

val round_robin : unit -> policy
(** Cycle over processes; a crashed process is recovered as soon as its
    turn comes.  (Note: this recovers crashed processes eagerly — for
    targeted schedules that keep a process down, drive {!Sim} directly.) *)

val random :
  ?crash_prob:float ->
  ?recover_prob:float ->
  ?max_crashes:int ->
  ?system_crash_prob:float ->
  seed:int ->
  unit ->
  policy
(** Seeded uniform-random schedule with crash injection: with probability
    [crash_prob] (and while under [max_crashes]) crash a random live
    process that has a pending operation; with probability
    [system_crash_prob], crash {e every} live process at the same point
    (the full-system failure model — the paper's individual-process model
    subsumes it as N simultaneous crashes).  Crashed processes recover
    with probability [recover_prob] per consideration (modelling slow
    resurrection). *)

val scripted : decision list -> policy
(** Replay an explicit decision list, then halt. *)

(** A tiny self-contained PRNG, also used by the workload generators so
    that schedules and workloads are reproducible and independent of the
    global [Random] state. *)
module Prng : sig
  type t

  val create : int -> t
  val bits : t -> int
  val int : t -> int -> int
  val float : t -> float
  val pick : t -> 'a list -> 'a
end
