(** The crash-recovery machine: executes recoverable-object programs under
    an external schedule, injecting crash and recovery steps, and records
    the resulting history.

    This is the executable form of the paper's individual-process
    crash-recovery model (Section 2):

    - shared variables live in simulated NVRAM ({!Nvm.Memory}) and survive
      crashes;
    - local variables are volatile ({!Env}) and are scrambled to arbitrary
      values by a crash;
    - each process runs a stack of frames, one per pending (possibly
      nested) recoverable operation; the stack structure, the operations'
      arguments and the program counters are system metadata and persist;
    - a recovery step resurrects a process by invoking [Op.Recover] of the
      inner-most pending operation, with [Op]'s original arguments and the
      persistent instruction index [LI_p];
    - a crash during recovery leaves the crashed operation unchanged, so
      the next recovery step re-invokes the same recovery function. *)

type phase = Body | Recovery

type frame = {
  f_obj : Objdef.instance;
  f_op : Objdef.op_def;
  f_args : Nvm.Value.t array;
  mutable f_phase : phase;
  mutable f_pc : int;  (** pc within the current program; persists (system metadata) *)
  mutable f_li : int;
      (** [LI_p]: paper line of the last instruction of the operation's
          {e body} that started executing; -1 before any did.  Updated as
          the body runs (an [Invoke] line stays current while the nested
          call is pending), frozen while the recovery function runs. *)
  mutable f_interrupted : bool;
      (** set by a crash for {e every} pending frame: when the inner
          operation's recovery completes, an interrupted parent runs its
          own recovery function instead of resuming normally (its locals
          were scrambled too) — this is what makes recovery cascade
          outward through the nesting, as the paper's counter requires *)
  mutable f_env : Env.t;  (** volatile locals *)
  f_dst : string option;  (** parent's local receiving the response *)
  f_call_id : int;
}

type status = Ready | Crashed

(** Arguments of a scripted operation: fixed values, or computed when the
    operation is invoked (a client that, e.g., CASes from the value it just
    observed).  Computation must be deterministic and must not mutate the
    machine. *)
type arg_spec = Args of Nvm.Value.t array | Compute of (Nvm.Memory.t -> Nvm.Value.t array)

type proc = {
  pid : int;
  mutable stack : frame list;  (** inner-most first *)
  mutable script : (Objdef.instance * string * arg_spec) list;
  mutable status : status;
  mutable results : (string * Nvm.Value.t) list;  (** completed top-level ops, newest first *)
  mutable crashes : int;
}

(** Pre-resolved metric handles for the machine's own counters: resolved
    once in {!set_obs}, so the hot paths below pay one [option] match and
    one field bump per event.  The counters are monotone and are {e not}
    rolled back by {!undo_to} — they count work performed, and an
    explorer visiting each tree edge exactly once therefore reads
    engine-invariant totals from them (see {!Obs.Names}). *)
type meters = {
  sm_reg : Obs.Metrics.t;
  sm_steps : Obs.Metrics.counter;
  sm_invs : Obs.Metrics.counter;
  sm_ress : Obs.Metrics.counter;
  sm_crashes : Obs.Metrics.counter;
  sm_recoveries : Obs.Metrics.counter;
  sm_undos : Obs.Metrics.counter;
  sm_undo_depth : Obs.Metrics.histogram;
}

type t = {
  mem : Nvm.Memory.t;
  reg : Objdef.registry;
  procs : proc array;
  junk : Junk.t;
  mutable hist_rev : History.Step.t list;
  mutable hist_len : int;  (** [List.length hist_rev], maintained incrementally *)
  mutable next_call : int;
  mutable total_steps : int;
  mutable trail : Nvm.Trail.t option;
      (** when set, every machine mutation below logs an undo thunk (or is
          covered by a {!mark} snapshot), enabling in-place backtracking *)
  mutable obs_m : meters option;
}

let create ?(seed = 1) ~nprocs () =
  {
    mem = Nvm.Memory.create ();
    reg = Objdef.create_registry ();
    procs =
      Array.init nprocs (fun pid ->
          { pid; stack = []; script = []; status = Ready; results = []; crashes = 0 });
    junk = Junk.create seed;
    hist_rev = [];
    hist_len = 0;
    next_call = 0;
    total_steps = 0;
    trail = None;
    obs_m = None;
  }

let set_obs t o =
  t.obs_m <-
    Option.map
      (fun reg ->
        {
          sm_reg = reg;
          sm_steps = Obs.Metrics.counter reg Obs.Names.sim_steps;
          sm_invs = Obs.Metrics.counter reg Obs.Names.sim_invocations;
          sm_ress = Obs.Metrics.counter reg Obs.Names.sim_responses;
          sm_crashes = Obs.Metrics.counter reg Obs.Names.sim_crashes;
          sm_recoveries = Obs.Metrics.counter reg Obs.Names.sim_recoveries;
          sm_undos = Obs.Metrics.counter reg Obs.Names.trail_undos;
          sm_undo_depth = Obs.Metrics.histogram reg Obs.Names.trail_undo_depth;
        })
      o

let obs t = Option.map (fun m -> m.sm_reg) t.obs_m

let mem t = t.mem
let registry t = t.reg
let nprocs t = Array.length t.procs
let total_steps t = t.total_steps
let history t = History.of_list (List.rev t.hist_rev)
let history_length t = t.hist_len

let history_suffix t n =
  if n < 0 || n > t.hist_len then
    invalid_arg
      (Printf.sprintf "Sim.history_suffix: index %d out of range (length %d)" n t.hist_len);
  let rec take k l acc =
    if k = 0 then acc
    else
      match l with
      | s :: rest -> take (k - 1) rest (s :: acc)
      | [] -> assert false
  in
  take (t.hist_len - n) t.hist_rev []

let junk_state t = Junk.state t.junk
let junk_strategy t = Junk.strategy t.junk
let set_junk_strategy t s = Junk.set_strategy t.junk s

(** The distinct values currently stored in NVRAM, sorted — the pool a
    [Junk.Lure] adversary draws from.  Take it after scenario setup so
    initial object state is represented. *)
let lure_pool t =
  Nvm.Memory.snapshot t.mem |> Array.to_list |> List.sort_uniq compare |> Array.of_list

let apply_junk_strategy t name =
  match name with
  | "lure" -> set_junk_strategy t (Junk.Lure (lure_pool t))
  | _ -> (
    match List.assoc_opt name Junk.constant_strategies with
    | Some s -> set_junk_strategy t s
    | None ->
      invalid_arg
        (Printf.sprintf "Sim.apply_junk_strategy: unknown strategy %S (expected one of %s)"
           name
           (String.concat ", " Junk.strategy_names)))

let proc t p = t.procs.(p)
let status t p = t.procs.(p).status
let results t p = List.rev t.procs.(p).results
let crash_count t p = t.procs.(p).crashes

let set_script t p ops = t.procs.(p).script <- ops

let append_script t p ops = t.procs.(p).script <- t.procs.(p).script @ ops

(** A process is enabled for a normal step if it is alive and has work:
    either a pending operation or a script entry to start. *)
let enabled t p =
  let pr = t.procs.(p) in
  pr.status = Ready && (pr.stack <> [] || pr.script <> [])

(** A crash step is allowed for any live process.  [mid_op_only] restricts
    to processes with a pending operation (the interesting case). *)
let can_crash ?(mid_op_only = false) t p =
  let pr = t.procs.(p) in
  pr.status = Ready && ((not mid_op_only) || pr.stack <> [])

let can_recover t p = t.procs.(p).status = Crashed

(** The process's next transition is "local": it touches no shared memory
    and can be fired eagerly by a partial-order-reduced exploration.
    Invocation and response steps are included: firing an invocation as
    early as possible and a response as soon as it is enabled yields the
    history with the {e most} real-time constraints among all schedules
    with the same shared-access interleaving, so a reduced search that
    only checks these histories is complete for violation finding. *)
let next_is_local t p =
  let pr = t.procs.(p) in
  pr.status = Ready
  &&
  match pr.stack with
  | [] -> pr.script <> []  (* starting a scripted operation records only INV *)
  | f :: _ -> (
    let prog = match f.f_phase with Body -> f.f_op.Objdef.body | Recovery -> f.f_op.Objdef.recover in
    f.f_pc >= 0 && f.f_pc < Program.length prog
    &&
    match Program.instr prog f.f_pc with
    | Program.Assign _ | Program.Branch_if _ | Program.Jump _ | Program.Ret _
    | Program.Resume _ | Program.Invoke _ ->
      true
    | Program.Read _ | Program.Write _ | Program.Cas_prim _ | Program.Tas_prim _
    | Program.Faa_prim _ ->
      false)

(** The process's next transition is a response step (operation return). *)
let next_is_ret t p =
  let pr = t.procs.(p) in
  pr.status = Ready
  &&
  match pr.stack with
  | [] -> false
  | f :: _ -> (
    let prog = match f.f_phase with Body -> f.f_op.Objdef.body | Recovery -> f.f_op.Objdef.recover in
    f.f_pc >= 0 && f.f_pc < Program.length prog
    && match Program.instr prog f.f_pc with Program.Ret _ -> true | _ -> false)

let all_done t =
  Array.for_all (fun pr -> pr.status = Ready && pr.stack = [] && pr.script = []) t.procs

(* History length, call counter, step counter, junk-generator state and
   memory access statistics are NOT trailed per mutation: they are scalar
   monotone counters, so a {!mark} snapshots them and {!undo_to} restores
   them wholesale.  Everything structural (heap cells, environments,
   stacks, frame fields, statuses) is trailed at its mutation site. *)
let record t s =
  t.hist_rev <- s :: t.hist_rev;
  t.hist_len <- t.hist_len + 1

let fresh_call t =
  let id = t.next_call in
  t.next_call <- id + 1;
  id

let current_program (f : frame) =
  match f.f_phase with Body -> f.f_op.Objdef.body | Recovery -> f.f_op.Objdef.recover

let ctx_of t (f : frame) p : Program.ctx =
  { pid = p; nprocs = Array.length t.procs; args = f.f_args; li_line = f.f_li }

let push_frame t pr (inst : Objdef.instance) opname args dst =
  let opdef = Objdef.find_op inst opname in
  let call_id = fresh_call t in
  let f =
    {
      f_obj = inst;
      f_op = opdef;
      f_args = args;
      f_phase = Body;
      f_pc = 0;
      f_li = -1;
      f_interrupted = false;
      f_env = Env.create ();
      f_dst = dst;
      f_call_id = call_id;
    }
  in
  (match t.trail with
  | None -> ()
  | Some tr ->
    Env.set_trail f.f_env t.trail;
    let old_stack = pr.stack in
    Nvm.Trail.push tr (fun () -> pr.stack <- old_stack));
  pr.stack <- f :: pr.stack;
  (match t.obs_m with Some m -> Obs.Metrics.Counter.incr m.sm_invs | None -> ());
  record t (Inv { pid = pr.pid; opref = Objdef.opref inst opname; args; call_id })

(* Check Definition 1 instrumentation: did the operation persist its
   response in its designated per-process cell before responding?  The
   cell may hold the response directly, or tagged with an invocation
   sequence number as [<seq, ret>] (the refinement strict objects use so
   a caller's recovery can tell *which* invocation the persisted response
   belongs to). *)
let persisted_flag t pr (f : frame) ret =
  match List.assoc_opt f.f_op.Objdef.op_name f.f_obj.Objdef.strict_cells with
  | None -> None
  | Some cells ->
    let stored = Nvm.Memory.peek t.mem cells.(pr.pid) in
    let matches =
      Nvm.Value.equal stored ret
      || (match stored with Nvm.Value.Pair (_, r) -> Nvm.Value.equal r ret | _ -> false)
    in
    Some matches

let complete_op t pr (f : frame) ret =
  (match t.trail with
  | None -> ()
  | Some tr -> (
    let old_stack = pr.stack and old_results = pr.results in
    match pr.stack with
    | _ :: parent :: _ ->
      let old_phase = parent.f_phase
      and old_pc = parent.f_pc
      and old_env = parent.f_env
      and old_intr = parent.f_interrupted in
      Nvm.Trail.push tr (fun () ->
          pr.stack <- old_stack;
          pr.results <- old_results;
          parent.f_phase <- old_phase;
          parent.f_pc <- old_pc;
          parent.f_env <- old_env;
          parent.f_interrupted <- old_intr)
    | _ ->
      Nvm.Trail.push tr (fun () ->
          pr.stack <- old_stack;
          pr.results <- old_results)));
  (match t.obs_m with Some m -> Obs.Metrics.Counter.incr m.sm_ress | None -> ());
  record t
    (Res
       {
         pid = pr.pid;
         opref = Objdef.opref f.f_obj f.f_op.Objdef.op_name;
         ret;
         call_id = f.f_call_id;
         persisted = persisted_flag t pr f ret;
       });
  (match pr.stack with
  | [] -> assert false
  | _ :: rest ->
    pr.stack <- rest;
    (match rest with
    | parent :: _ ->
      (* the response is stored into a local variable of the parent *)
      (match f.f_dst with Some dst -> Env.set parent.f_env dst ret | None -> ());
      if parent.f_interrupted then begin
        (* the parent was pending during a crash: its locals are scrambled,
           so instead of resuming it the system invokes its recovery
           function — recovery cascades outward through the nesting *)
        parent.f_phase <- Recovery;
        parent.f_pc <- 0;
        let env = Env.create_post_crash t.junk in
        Env.set_trail env t.trail;
        parent.f_env <- env;
        parent.f_interrupted <- false
      end
      else parent.f_pc <- parent.f_pc + 1
    | [] -> pr.results <- (f.f_op.Objdef.op_name, ret) :: pr.results))

exception Stuck of string

let exec_instr t pr (f : frame) =
  let prog = current_program f in
  if f.f_pc < 0 || f.f_pc >= Program.length prog then
    raise
      (Stuck
         (Printf.sprintf "p%d: pc %d out of range in %s" pr.pid f.f_pc (Program.name prog)));
  let ctx = ctx_of t f pr.pid in
  let env = f.f_env in
  (* one combined thunk covers every control-field write this instruction
     can make (pc, LI_p, phase — including [Resume]'s phase switch);
     heap, environment and stack effects are trailed at their own sites *)
  (match t.trail with
  | None -> ()
  | Some tr ->
    let old_pc = f.f_pc and old_li = f.f_li and old_phase = f.f_phase in
    Nvm.Trail.push tr (fun () ->
        f.f_pc <- old_pc;
        f.f_li <- old_li;
        f.f_phase <- old_phase));
  let jump_to line = f.f_pc <- Program.pc_of_line prog line in
  (* LI_p tracks the last body instruction that started executing *)
  (match f.f_phase with
  | Body -> f.f_li <- Program.line_of_pc prog f.f_pc
  | Recovery -> ());
  match Program.instr prog f.f_pc with
  | Assign (x, e) ->
    Env.set env x (e ctx env);
    f.f_pc <- f.f_pc + 1
  | Read (x, a) ->
    Env.set env x (Nvm.Memory.read t.mem (a ctx env));
    f.f_pc <- f.f_pc + 1
  | Write (a, e) ->
    Nvm.Memory.write t.mem (a ctx env) (e ctx env);
    f.f_pc <- f.f_pc + 1
  | Cas_prim (x, a, old_e, new_e) ->
    let ok =
      Nvm.Memory.cas t.mem (a ctx env) ~expected:(old_e ctx env) ~desired:(new_e ctx env)
    in
    Env.set env x (Nvm.Value.Bool ok);
    f.f_pc <- f.f_pc + 1
  | Tas_prim (x, a) ->
    Env.set env x (Nvm.Memory.tas t.mem (a ctx env));
    f.f_pc <- f.f_pc + 1
  | Faa_prim (x, a, d) ->
    let d = Nvm.Value.as_int (d ctx env) in
    Env.set env x (Nvm.Memory.fetch_and_add t.mem (a ctx env) d);
    f.f_pc <- f.f_pc + 1
  | Invoke (dst, oid, opname, arg_es) ->
    let inst = Objdef.find t.reg (oid ctx env) in
    let args = Array.map (fun e -> e ctx env) arg_es in
    (* the parent's pc stays at the Invoke; it advances when the child
       completes, so a crash in between leaves the nesting intact *)
    push_frame t pr inst opname args (Some dst)
  | Branch_if (c, line) -> if c ctx env then jump_to line else f.f_pc <- f.f_pc + 1
  | Jump line -> jump_to line
  | Ret e -> complete_op t pr f (e ctx env)
  | Resume line ->
    (* "proceed from line k": recovery continues executing the operation's
       own code; locals carry over (the resumed code re-establishes any it
       needs) *)
    f.f_phase <- Body;
    f.f_pc <- Program.pc_of_line f.f_op.Objdef.body line

(** Execute one step of process [p]: start the next scripted operation if
    idle, otherwise execute one instruction of the inner-most frame. *)
let step t p =
  let pr = t.procs.(p) in
  if pr.status <> Ready then invalid_arg (Printf.sprintf "Sim.step: p%d is not ready" p);
  t.total_steps <- t.total_steps + 1;
  (match t.obs_m with Some m -> Obs.Metrics.Counter.incr m.sm_steps | None -> ());
  match pr.stack with
  | f :: _ -> exec_instr t pr f
  | [] -> (
    match pr.script with
    | [] -> invalid_arg (Printf.sprintf "Sim.step: p%d has no work" p)
    | (inst, opname, spec) :: rest ->
      (match t.trail with
      | None -> ()
      | Some tr ->
        let old_script = pr.script in
        Nvm.Trail.push tr (fun () -> pr.script <- old_script));
      pr.script <- rest;
      let args =
        match spec with Args a -> a | Compute f -> f t.mem
      in
      push_frame t pr inst opname args None)

(** Crash-failure of process [p]: all local variables become arbitrary; the
    crashed operation is the inner-most pending recoverable operation. *)
let crash t p =
  let pr = t.procs.(p) in
  if pr.status <> Ready then invalid_arg (Printf.sprintf "Sim.crash: p%d is not ready" p);
  t.total_steps <- t.total_steps + 1;
  (match t.obs_m with Some m -> Obs.Metrics.Counter.incr m.sm_crashes | None -> ());
  (match t.trail with
  | None -> ()
  | Some tr ->
    let old_crashes = pr.crashes and old_status = pr.status in
    let old_intr = List.map (fun f -> (f, f.f_interrupted)) pr.stack in
    Nvm.Trail.push tr (fun () ->
        pr.crashes <- old_crashes;
        pr.status <- old_status;
        List.iter (fun (f, i) -> f.f_interrupted <- i) old_intr));
  pr.crashes <- pr.crashes + 1;
  List.iter
    (fun f ->
      (* [scramble] logs its own undo (old bindings + generator state) *)
      Env.scramble f.f_env t.junk;
      f.f_interrupted <- true)
    pr.stack;
  let crashed =
    match pr.stack with
    | [] -> None
    | f :: _ -> Some (Objdef.opref f.f_obj f.f_op.Objdef.op_name, f.f_call_id)
  in
  record t (Crash { pid = p; crashed });
  pr.status <- Crashed

(** Recovery step: the system resurrects [p], invoking [Op.Recover] of the
    crashed operation with fresh volatile locals. *)
let recover t p =
  let pr = t.procs.(p) in
  if pr.status <> Crashed then
    invalid_arg (Printf.sprintf "Sim.recover: p%d has not crashed" p);
  t.total_steps <- t.total_steps + 1;
  (match t.obs_m with Some m -> Obs.Metrics.Counter.incr m.sm_recoveries | None -> ());
  (match t.trail with
  | None -> ()
  | Some tr -> (
    let old_status = pr.status in
    match pr.stack with
    | [] -> Nvm.Trail.push tr (fun () -> pr.status <- old_status)
    | f :: _ ->
      let old_phase = f.f_phase
      and old_pc = f.f_pc
      and old_env = f.f_env
      and old_intr = f.f_interrupted in
      Nvm.Trail.push tr (fun () ->
          pr.status <- old_status;
          f.f_phase <- old_phase;
          f.f_pc <- old_pc;
          f.f_env <- old_env;
          f.f_interrupted <- old_intr)));
  record t (Rec { pid = p });
  (match pr.stack with
  | [] -> ()  (* no pending operation: the process simply resumes its script *)
  | f :: _ ->
    f.f_phase <- Recovery;
    f.f_pc <- 0;
    let env = Env.create_post_crash t.junk in
    Env.set_trail env t.trail;
    f.f_env <- env;
    f.f_interrupted <- false);
  pr.status <- Ready

(* ------------------------------------------------------------------ *)
(* Trail-based backtracking                                            *)

type mark = {
  mk_trail : Nvm.Trail.mark;
  mk_hist : History.Step.t list;  (* persistent list: sharing the old spine is the snapshot *)
  mk_hist_len : int;
  mk_next_call : int;
  mk_total_steps : int;
  mk_junk : int;
  mk_reads : int;
  mk_writes : int;
  mk_rmws : int;
}

let trail_enabled t = t.trail <> None

let enable_trail t =
  match t.trail with
  | Some _ -> ()
  | None ->
    let tr = Nvm.Trail.create () in
    t.trail <- Some tr;
    Nvm.Memory.set_trail t.mem (Some tr);
    (* frames created from here on attach the trail at creation; existing
       frames (machine set up before enabling) are adopted here *)
    Array.iter
      (fun pr -> List.iter (fun f -> Env.set_trail f.f_env (Some tr)) pr.stack)
      t.procs

let mark t =
  match t.trail with
  | None -> invalid_arg "Sim.mark: trail not enabled (call Sim.enable_trail first)"
  | Some tr ->
    let st = Nvm.Memory.stats t.mem in
    {
      mk_trail = Nvm.Trail.mark tr;
      mk_hist = t.hist_rev;
      mk_hist_len = t.hist_len;
      mk_next_call = t.next_call;
      mk_total_steps = t.total_steps;
      mk_junk = Junk.state t.junk;
      mk_reads = st.reads;
      mk_writes = st.writes;
      mk_rmws = st.rmws;
    }

let undo_to t m =
  match t.trail with
  | None -> invalid_arg "Sim.undo_to: trail not enabled"
  | Some tr ->
    (* [Trail.depth] walks the whole trail, so it is read only while
       observed (and only here, off the un-instrumented fast path) *)
    let d0 = match t.obs_m with Some _ -> Nvm.Trail.depth tr | None -> 0 in
    (* structural state first (thunks may also rewind env junk draws),
       then the counters snapshotted by [mark] *)
    Nvm.Trail.undo_to tr m.mk_trail;
    (match t.obs_m with
    | Some om ->
      Obs.Metrics.Counter.incr om.sm_undos;
      Obs.Metrics.Histogram.observe om.sm_undo_depth (d0 - Nvm.Trail.depth tr)
    | None -> ());
    t.hist_rev <- m.mk_hist;
    t.hist_len <- m.mk_hist_len;
    t.next_call <- m.mk_next_call;
    t.total_steps <- m.mk_total_steps;
    Junk.set_state t.junk m.mk_junk;
    let st = Nvm.Memory.stats t.mem in
    st.reads <- m.mk_reads;
    st.writes <- m.mk_writes;
    st.rmws <- m.mk_rmws

let clone t =
  let copy_frame (f : frame) =
    {
      f_obj = f.f_obj;
      f_op = f.f_op;
      f_args = f.f_args;
      f_phase = f.f_phase;
      f_pc = f.f_pc;
      f_li = f.f_li;
      f_interrupted = f.f_interrupted;
      f_env = Env.copy f.f_env;
      f_dst = f.f_dst;
      f_call_id = f.f_call_id;
    }
  in
  {
    mem = Nvm.Memory.copy t.mem;
    reg = t.reg;  (* instances are immutable; cell addresses coincide in the copied heap *)
    procs =
      Array.map
        (fun pr ->
          {
            pid = pr.pid;
            stack = List.map copy_frame pr.stack;
            script = pr.script;
            status = pr.status;
            results = pr.results;
            crashes = pr.crashes;
          })
        t.procs;
    junk = Junk.copy t.junk;
    hist_rev = t.hist_rev;
    hist_len = t.hist_len;
    next_call = t.next_call;
    total_steps = t.total_steps;
    (* a clone is an independent snapshot: it never shares (or inherits) a
       trail — the explorer re-enables one per cloned frontier task *)
    trail = None;
    (* metric handles ARE shared: a clone's work lands in the same
       registry.  Parallel explorers re-point each task's machine at the
       claiming worker's private registry via [set_obs]. *)
    obs_m = t.obs_m;
  }

(** Short description of a process state, for debugging and error reports. *)
let pp_proc ppf (pr : proc) =
  let pp_frame ppf f =
    Fmt.pf ppf "%s.%s@@%s:%d"
      f.f_obj.Objdef.obj_name f.f_op.Objdef.op_name
      (match f.f_phase with Body -> "body" | Recovery -> "recover")
      (Program.line_of_pc (current_program f) f.f_pc)
  in
  Fmt.pf ppf "p%d[%s; stack=%a; script=%d]" pr.pid
    (match pr.status with Ready -> "ready" | Crashed -> "crashed")
    Fmt.(list ~sep:comma pp_frame)
    pr.stack (List.length pr.script)
