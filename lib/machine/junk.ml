(** Deterministic, clonable generator of arbitrary values used to scramble
    the volatile local variables of a process when it incurs a
    crash-failure.  Keeping the generator state explicit makes whole-machine
    cloning (for exhaustive schedule exploration) and replay possible.

    The generator is parameterized by an adversarial {e strategy}: the
    default [Scramble] draws from a seeded xorshift stream, the constant
    strategies plant values chosen to trip algorithms that trust their
    locals after a crash, and [Lure] replays values that already exist in
    the system (the hardest junk to tell apart from legitimate state).
    Every strategy advances the same underlying state on every draw, so
    trail undo ({!set_state}) and fingerprinting ({!state}) are
    strategy-oblivious. *)

type strategy =
  | Scramble  (** seeded pseudo-random values (the historical default) *)
  | Zeros  (** every local becomes [Int 0] *)
  | Ones  (** every local becomes [Int (-1)] (all bits set) *)
  | MaxInt  (** every local becomes [Int max_int] *)
  | Lure of Nvm.Value.t array
      (** draw (pseudo-randomly) from a pool of plausible values — e.g. the
          values currently stored in NVRAM *)

type t = { mutable s : int; mutable strategy : strategy }

let create ?(strategy = Scramble) seed =
  { s = (if seed = 0 then 0x9e3779b9 else seed land max_int); strategy }

let copy t = { s = t.s; strategy = t.strategy }
let state t = t.s
let set_state t s = t.s <- s
let strategy t = t.strategy
let set_strategy t strategy = t.strategy <- strategy

let strategy_name = function
  | Scramble -> "scramble"
  | Zeros -> "zeros"
  | Ones -> "ones"
  | MaxInt -> "maxint"
  | Lure _ -> "lure"

let constant_strategies =
  [ ("scramble", Scramble); ("zeros", Zeros); ("ones", Ones); ("maxint", MaxInt) ]

let strategy_names = List.map fst constant_strategies @ [ "lure" ]

let bits t =
  let s = t.s in
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  let s = s lxor (s lsl 17) in
  t.s <- s land max_int;
  t.s

(* the historical stream; every strategy drives the state through this
   exact draw (variable bits consumed), so state traces — and with them
   undo trails and fingerprints — are identical whatever the strategy *)
let scramble_next t : Nvm.Value.t =
  match bits t mod 6 with
  | 0 -> Null
  | 1 -> Bool (bits t land 1 = 0)
  | 2 -> Int ((bits t mod 1024) - 512)
  | 3 -> Pid (bits t mod 16)
  | 4 -> Str "junk"
  | _ -> Pair (Int (bits t mod 64), Bool (bits t land 1 = 0))

let next t : Nvm.Value.t =
  let v = scramble_next t in
  match t.strategy with
  | Scramble -> v
  | Zeros -> Int 0
  | Ones -> Int (-1)
  | MaxInt -> Int max_int
  | Lure pool ->
    let n = Array.length pool in
    if n = 0 then Int 0 else pool.(t.s mod n)
