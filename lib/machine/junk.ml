(** Deterministic, clonable generator of arbitrary values used to scramble
    the volatile local variables of a process when it incurs a
    crash-failure.  Keeping the generator state explicit makes whole-machine
    cloning (for exhaustive schedule exploration) and replay possible. *)

type t = { mutable s : int }

let create seed = { s = (if seed = 0 then 0x9e3779b9 else seed land max_int) }
let copy t = { s = t.s }
let state t = t.s
let set_state t s = t.s <- s

let bits t =
  let s = t.s in
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  let s = s lxor (s lsl 17) in
  t.s <- s land max_int;
  t.s

let next t : Nvm.Value.t =
  match bits t mod 6 with
  | 0 -> Null
  | 1 -> Bool (bits t land 1 = 0)
  | 2 -> Int ((bits t mod 1024) - 512)
  | 3 -> Pid (bits t mod 16)
  | 4 -> Str "junk"
  | _ -> Pair (Int (bits t mod 64), Bool (bits t land 1 = 0))
