(** Deterministic, clonable generator of arbitrary values used to scramble
    volatile local variables on a crash-failure.  Explicit state makes
    whole-machine cloning and replay of failing executions possible.

    The value distribution is pluggable ({!strategy}): the paper only
    requires post-crash locals to hold {e arbitrary} values, so an
    adversarial checker should try several shapes of arbitrariness —
    random bits, constants an algorithm might treat as sentinels, and
    "lures" indistinguishable from legitimate data.  Whatever the
    strategy, every draw advances the same generator state, so undo
    trails and fingerprints are unaffected by the choice. *)

type strategy =
  | Scramble  (** seeded pseudo-random values (the historical default) *)
  | Zeros  (** every local becomes [Int 0] *)
  | Ones  (** every local becomes [Int (-1)] (all bits set) *)
  | MaxInt  (** every local becomes [Int max_int] *)
  | Lure of Nvm.Value.t array
      (** draw (pseudo-randomly) from a pool of plausible values — e.g. the
          values currently stored in NVRAM.  An empty pool degenerates to
          [Int 0]. *)

type t

val create : ?strategy:strategy -> int -> t
(** [create seed] — the stream is a pure function of the seed and the
    strategy (default [Scramble], byte-compatible with the historical
    generator). *)

val copy : t -> t
(** Independent copy with the same state and strategy. *)

val state : t -> int
(** The current generator state, without advancing it.  Two generators
    with equal states produce identical streams — this is what lets a
    machine fingerprint cover the junk source (see {!Fingerprint}). *)

val set_state : t -> int -> unit
(** Rewind (or fast-forward) the generator to a state previously observed
    with {!state}.  Used by undo trails to revert junk draws on
    backtrack. *)

val strategy : t -> strategy
val set_strategy : t -> strategy -> unit

val strategy_name : strategy -> string
(** Stable lowercase name: ["scramble"], ["zeros"], ["ones"], ["maxint"],
    ["lure"]. *)

val constant_strategies : (string * strategy) list
(** The strategies that need no pool, by name — everything but [Lure]. *)

val strategy_names : string list
(** All strategy names, for CLI help and campaign sweeps. *)

val next : t -> Nvm.Value.t
(** The next arbitrary value per the current strategy; always advances
    the state (even for constant strategies, so schedules replay
    identically whatever the strategy). *)

val bits : t -> int
(** Raw generator output (non-negative); advances the state. *)
