(** Deterministic, clonable generator of arbitrary values used to scramble
    volatile local variables on a crash-failure.  Explicit state makes
    whole-machine cloning and replay of failing executions possible. *)

type t

val create : int -> t
(** [create seed] — the stream is a pure function of the seed. *)

val copy : t -> t

val state : t -> int
(** The current generator state, without advancing it.  Two generators
    with equal states produce identical streams — this is what lets a
    machine fingerprint cover the junk source (see {!Fingerprint}). *)

val set_state : t -> int -> unit
(** Rewind (or fast-forward) the generator to a state previously observed
    with {!state}.  Used by undo trails to revert junk draws on
    backtrack. *)

val next : t -> Nvm.Value.t
(** The next arbitrary value; advances the state. *)

val bits : t -> int
(** Raw generator output (non-negative); advances the state. *)
