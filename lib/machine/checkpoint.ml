(** Versioned on-disk checkpoints for resumable exploration.

    A checkpoint captures everything {!Explore.sweep} needs to continue a
    partitioned search after the process is killed: the scenario stamp
    (so a resume with different parameters is rejected rather than
    silently diverging), the pending task set — each task's root
    identified by its {e decision path} from the search root, with the
    crash budget consumed on that path recorded explicitly — the
    statistics and metric views accumulated from completed tasks, and
    (once the search finished) the final verdict.

    {b Format.}  NDJSON, schema ["nrl-checkpoint/2"], first line a [meta]
    record carrying the schema tag.  One line per scenario pair, one
    [totals] line, one line per task (the index is implicit), one line
    per metric view (same encodings as the [nrl-trace/1] metric
    records), and at most one [result] line.  The format is append-free:
    every {!save} rewrites the whole file.

    Version 2 (the work-stealing engine) persists only the {e pending}
    task set — the totals/metrics cover exactly the completed work, so
    done flags became redundant.  Version-1 files (full partition plus
    per-task done flags) are still loaded; their done tasks are simply
    skipped by the resuming engine.

    {b Atomicity.}  {!save} writes to [path ^ ".tmp"] and renames over
    [path] ([Sys.rename] is atomic on POSIX), so a kill mid-checkpoint
    leaves the previous valid file in place. *)

let schema_version = "nrl-checkpoint/2"

(* accepted on load; [save] always writes the current version *)
let compatible_schemas = [ schema_version; "nrl-checkpoint/1" ]

(* ---------- JSON (subset) ---------- *)

(* The trace/bench writers in this codebase deliberately avoid a JSON
   dependency; the checkpoint reader keeps the symmetry with a ~60-line
   recursive-descent parser for the subset our own writer emits (and any
   standard-conforming equivalent). *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | Some c' -> bad "expected %c at %d, found %c" c !pos c'
      | None -> bad "expected %c at %d, found end of input" c !pos
    in
    let literal lit v =
      if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit then begin
        pos := !pos + String.length lit;
        v
      end
      else bad "bad literal at %d" !pos
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec loop () =
        if !pos >= n then bad "unterminated string";
        let c = s.[!pos] in
        advance ();
        if c = '"' then Buffer.contents b
        else if c = '\\' then begin
          (if !pos >= n then bad "unterminated escape";
           let e = s.[!pos] in
           advance ();
           match e with
           | '"' -> Buffer.add_char b '"'
           | '\\' -> Buffer.add_char b '\\'
           | '/' -> Buffer.add_char b '/'
           | 'n' -> Buffer.add_char b '\n'
           | 't' -> Buffer.add_char b '\t'
           | 'r' -> Buffer.add_char b '\r'
           | 'b' -> Buffer.add_char b '\b'
           | 'f' -> Buffer.add_char b '\012'
           | 'u' ->
             if !pos + 4 > n then bad "truncated \\u escape";
             let code = int_of_string ("0x" ^ String.sub s !pos 4) in
             pos := !pos + 4;
             (* our writer only escapes ASCII control characters; decode
                the low byte and keep going for anything exotic *)
             Buffer.add_char b (Char.chr (code land 0xff))
           | c -> bad "bad escape \\%c" c);
          loop ()
        end
        else begin
          Buffer.add_char b c;
          loop ()
        end
      in
      loop ()
    in
    let parse_number () =
      let start = !pos in
      let num_char c =
        match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
      in
      while (match peek () with Some c when num_char c -> true | _ -> false) do
        advance ()
      done;
      if !pos = start then bad "expected a number at %d" start;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> bad "bad number at %d" start
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '"' -> Str (parse_string ())
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              members ((k, v) :: acc)
            | Some '}' ->
              advance ();
              Obj (List.rev ((k, v) :: acc))
            | _ -> bad "expected , or } at %d" !pos
          in
          members []
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              elements (v :: acc)
            | Some ']' ->
              advance ();
              Arr (List.rev (v :: acc))
            | _ -> bad "expected , or ] at %d" !pos
          in
          elements []
        end
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (parse_number ())
      | None -> bad "unexpected end of input"
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then bad "trailing garbage at %d" !pos;
    v

  let member k = function
    | Obj kvs -> (
      match List.assoc_opt k kvs with Some v -> v | None -> bad "missing field %S" k)
    | _ -> bad "expected an object for field %S" k

  let to_int = function
    | Num f -> int_of_float f
    | _ -> bad "expected a number"

  let to_string = function Str s -> s | _ -> bad "expected a string"
  let to_bool = function Bool b -> b | _ -> bad "expected a boolean"
  let to_list = function Arr l -> l | _ -> bad "expected an array"
end

(* Same escaping discipline as Obs.Trace. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* ---------- decision paths ---------- *)

let decision_token = function
  | Schedule.Dstep p -> "s" ^ string_of_int p
  | Schedule.Dcrash p -> "c" ^ string_of_int p
  | Schedule.Drecover p -> "r" ^ string_of_int p
  | Schedule.Dhalt -> "h"

let decision_of_token tok =
  let fail () = failwith (Printf.sprintf "Checkpoint: bad decision token %S" tok) in
  if tok = "h" then Schedule.Dhalt
  else if String.length tok < 2 then fail ()
  else
    match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
    | None -> fail ()
    | Some p -> (
      match tok.[0] with
      | 's' -> Schedule.Dstep p
      | 'c' -> Schedule.Dcrash p
      | 'r' -> Schedule.Drecover p
      | _ -> fail ())

let path_to_string path = String.concat " " (List.map decision_token path)

let path_of_string s =
  String.split_on_char ' ' s
  |> List.filter (fun tok -> tok <> "")
  |> List.map decision_of_token

(* ---------- the checkpoint ---------- *)

type totals = {
  ck_nodes : int;
  ck_terminals : int;
  ck_truncated : int;
  ck_dup : int;
}

type task = {
  ck_path : Schedule.decision list;  (** decisions from the search root, in order *)
  ck_crashes : int;  (** crash budget consumed on the path *)
  ck_done : bool;
}

type t = {
  scenario : (string * string) list;
      (** what was being explored, as printable key/value pairs; a resume
          must present an equal stamp *)
  tasks : task array;
  totals : totals;
      (** statistics accumulated so far: expansion plus completed tasks
          (in-flight work is discarded at a kill and re-run on resume, so
          these are exact) *)
  metrics : (string * Obs.Metrics.view) list;
      (** metric views accumulated on the same basis as [totals] *)
  result : (string * string) option;
      (** final [(verdict, detail)] once the search finished —
          [("clean", "")] or [("violation", reason)]; [None] while
          resumable *)
}

let view_line name (v : Obs.Metrics.view) =
  let name = json_escape name in
  match v with
  | Obs.Metrics.Counter n ->
    Printf.sprintf "{\"type\":\"counter\",\"name\":\"%s\",\"value\":%d}" name n
  | Obs.Metrics.Timer { ns; intervals } ->
    Printf.sprintf "{\"type\":\"timer\",\"name\":\"%s\",\"ns\":%d,\"intervals\":%d}" name ns
      intervals
  | Obs.Metrics.Histogram { count; sum; max_value; buckets } ->
    let bs =
      String.concat ","
        (List.map (fun (le, n) -> Printf.sprintf "{\"le\":%d,\"n\":%d}" le n) buckets)
    in
    Printf.sprintf
      "{\"type\":\"histogram\",\"name\":\"%s\",\"count\":%d,\"sum\":%d,\"max\":%d,\"buckets\":[%s]}"
      name count sum max_value bs

let save ~path t =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  let line fmt = Printf.ksprintf (fun s -> output_string oc s; output_char oc '\n') fmt in
  line "{\"schema\":\"%s\",\"type\":\"meta\"}" schema_version;
  List.iter (fun (k, v) -> line "{\"type\":\"scenario\",\"k\":\"%s\",\"v\":\"%s\"}" (json_escape k) (json_escape v)) t.scenario;
  line "{\"type\":\"totals\",\"nodes\":%d,\"terminals\":%d,\"truncated\":%d,\"dup\":%d}"
    t.totals.ck_nodes t.totals.ck_terminals t.totals.ck_truncated t.totals.ck_dup;
  Array.iter
    (fun task ->
      line "{\"type\":\"task\",\"path\":\"%s\",\"crashes\":%d,\"done\":%b}"
        (json_escape (path_to_string task.ck_path))
        task.ck_crashes task.ck_done)
    t.tasks;
  List.iter (fun (name, v) -> line "%s" (view_line name v)) t.metrics;
  (match t.result with
  | Some (verdict, detail) ->
    line "{\"type\":\"result\",\"verdict\":\"%s\",\"reason\":\"%s\"}" (json_escape verdict)
      (json_escape detail)
  | None -> ());
  (* flush application and OS buffers before the rename makes it visible *)
  close_out oc;
  Sys.rename tmp path

let load path =
  try
    let ic = open_in path in
    let lines = ref [] in
    (try
       while true do
         let l = input_line ic in
         if String.trim l <> "" then lines := l :: !lines
       done
     with End_of_file -> close_in ic);
    let lines = List.rev !lines in
    match lines with
    | [] -> Error (Printf.sprintf "%s: empty checkpoint" path)
    | meta :: rest ->
      let open Json in
      let j = parse meta in
      let schema = to_string (member "schema" j) in
      if not (List.mem schema compatible_schemas) then
        Error (Printf.sprintf "%s: unsupported checkpoint schema %S (want %S)" path schema schema_version)
      else begin
        let scenario = ref [] in
        let tasks = ref [] in
        let totals = ref { ck_nodes = 0; ck_terminals = 0; ck_truncated = 0; ck_dup = 0 } in
        let metrics = ref [] in
        let result = ref None in
        List.iter
          (fun l ->
            let j = parse l in
            match to_string (member "type" j) with
            | "scenario" ->
              scenario := (to_string (member "k" j), to_string (member "v" j)) :: !scenario
            | "totals" ->
              totals :=
                {
                  ck_nodes = to_int (member "nodes" j);
                  ck_terminals = to_int (member "terminals" j);
                  ck_truncated = to_int (member "truncated" j);
                  ck_dup = to_int (member "dup" j);
                }
            | "task" ->
              tasks :=
                {
                  ck_path = path_of_string (to_string (member "path" j));
                  ck_crashes = to_int (member "crashes" j);
                  ck_done = to_bool (member "done" j);
                }
                :: !tasks
            | "counter" ->
              metrics :=
                (to_string (member "name" j), Obs.Metrics.Counter (to_int (member "value" j)))
                :: !metrics
            | "timer" ->
              metrics :=
                ( to_string (member "name" j),
                  Obs.Metrics.Timer
                    { ns = to_int (member "ns" j); intervals = to_int (member "intervals" j) }
                )
                :: !metrics
            | "histogram" ->
              let buckets =
                List.map
                  (fun b -> (to_int (member "le" b), to_int (member "n" b)))
                  (to_list (member "buckets" j))
              in
              metrics :=
                ( to_string (member "name" j),
                  Obs.Metrics.Histogram
                    {
                      count = to_int (member "count" j);
                      sum = to_int (member "sum" j);
                      max_value = to_int (member "max" j);
                      buckets;
                    } )
                :: !metrics
            | "result" ->
              result := Some (to_string (member "verdict" j), to_string (member "reason" j))
            | ty -> raise (Bad (Printf.sprintf "unknown record type %S" ty)))
          rest;
        Ok
          {
            scenario = List.rev !scenario;
            tasks = Array.of_list (List.rev !tasks);
            totals = !totals;
            metrics = List.rev !metrics;
            result = !result;
          }
      end
  with
  | Sys_error e -> Error e
  | Json.Bad e -> Error (Printf.sprintf "%s: malformed checkpoint: %s" path e)
  | Failure e -> Error (Printf.sprintf "%s: malformed checkpoint: %s" path e)
