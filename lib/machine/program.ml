(** The instruction DSL in which the paper's algorithms are transcribed.

    Each instruction corresponds to one line of the paper's pseudo-code and
    performs {e at most one} shared-memory access, so instruction-level
    interleaving by the scheduler gives exactly the atomicity granularity
    the paper assumes.  Instructions carry the paper's line numbers, which
    serve three purposes:

    - branch targets are expressed as line numbers, so the transcription
      reads like the paper;
    - the per-process persistent variable [LI_p] (the line the crashed
      operation was about to execute) is exposed to recovery code via
      {!type:ctx}, as the model prescribes;
    - recovery code can "proceed from line k" of the operation's own
      program with the {!constructor:Resume} instruction.

    Expressions are pure: they may read the context and the local
    environment but can not access shared memory, which guarantees the
    one-shared-access-per-instruction discipline by construction. *)

type ctx = {
  pid : int;  (** identifier of the executing process *)
  nprocs : int;
  args : Nvm.Value.t array;
      (** the operation's arguments; preserved across crashes and passed
          unchanged to the recovery function, per the model *)
  li_line : int;
      (** [LI_p]: paper line number the crashed operation was about to
          execute; [-1] if the operation never crashed *)
}

type 'a exp = ctx -> Env.t -> 'a
type expr = Nvm.Value.t exp

type instr =
  | Assign of string * expr  (** [local := e], purely local *)
  | Read of string * int exp  (** [local := mem\[a\]] (one shared read) *)
  | Write of int exp * expr  (** [mem\[a\] := e] (one shared write) *)
  | Cas_prim of string * int exp * expr * expr
      (** [local := cas(mem\[a\], old, new)], result is a boolean *)
  | Tas_prim of string * int exp
      (** [local := t&s(mem\[a\])], result is the previous value *)
  | Faa_prim of string * int exp * expr
      (** [local := faa(mem\[a\], delta)], result is the previous value *)
  | Invoke of string * int exp * string * expr array
      (** [local := O.OP(args)]: nested invocation of a recoverable
          operation on the object instance whose id the expression yields *)
  | Branch_if of bool exp * int  (** conditional jump to a paper line *)
  | Jump of int  (** unconditional jump to a paper line *)
  | Ret of expr  (** complete the operation with a response *)
  | Resume of int
      (** recovery only: continue executing the {e operation}'s program
          from the given paper line ("proceed from line k") *)

type t = {
  prog_name : string;
  code : instr array;
  lines : int array;  (** paper line number of each instruction *)
  line_to_pc : (int, int) Hashtbl.t;
}

let make ~name instrs =
  let code = Array.of_list (List.map snd instrs) in
  let lines = Array.of_list (List.map fst instrs) in
  let line_to_pc = Hashtbl.create (Array.length code) in
  Array.iteri
    (fun pc line ->
      if Hashtbl.mem line_to_pc line then
        invalid_arg
          (Printf.sprintf "Program.make(%s): duplicate line number %d" name line);
      Hashtbl.add line_to_pc line pc)
    lines;
  { prog_name = name; code; lines; line_to_pc }

let name t = t.prog_name
let length t = Array.length t.code
let instr t pc = t.code.(pc)

let line_of_pc t pc =
  if pc >= 0 && pc < Array.length t.lines then t.lines.(pc) else -1

let pc_of_line t line =
  match Hashtbl.find_opt t.line_to_pc line with
  | Some pc -> pc
  | None ->
    invalid_arg (Printf.sprintf "Program %s: no instruction at line %d" t.prog_name line)

(* {2 Expression combinators}

   These make the transcription of the paper's pseudo-code read naturally;
   see [lib/objects] for their use. *)

let const v : expr = fun _ _ -> v
let int n = const (Nvm.Value.Int n)
let bool b = const (Nvm.Value.Bool b)
let null : expr = const Nvm.Value.Null
let str s = const (Nvm.Value.Str s)

(** The value of a local variable. *)
let local x : expr = fun _ env -> Env.get env x

(** The [i]-th argument of the operation. *)
let arg i : expr = fun ctx _ -> ctx.args.(i)

(** The executing process's identifier, as a value. *)
let self : expr = fun ctx _ -> Nvm.Value.Pid ctx.pid

(** The executing process's identifier, as an integer. *)
let self_int : int exp = fun ctx _ -> ctx.pid

let nprocs : int exp = fun ctx _ -> ctx.nprocs

(** [LI_p] as an integer, for recovery-code tests such as "if LI_p < 4". *)
let li : int exp = fun ctx _ -> ctx.li_line

let pair a b : expr = fun ctx env -> Nvm.Value.Pair (a ctx env, b ctx env)
let fst_of e : expr = fun ctx env -> Nvm.Value.fst (e ctx env)
let snd_of e : expr = fun ctx env -> Nvm.Value.snd (e ctx env)

let map2 f a b : expr = fun ctx env -> f (a ctx env) (b ctx env)
let add a b = map2 (fun x y -> Nvm.Value.Int (Nvm.Value.as_int x + Nvm.Value.as_int y)) a b

(* boolean expressions *)
let eq a b : bool exp = fun ctx env -> Nvm.Value.equal (a ctx env) (b ctx env)
let neq a b : bool exp = fun ctx env -> not (Nvm.Value.equal (a ctx env) (b ctx env))
let is_null e : bool exp = fun ctx env -> Nvm.Value.is_null (e ctx env)
let not_null e : bool exp = fun ctx env -> not (Nvm.Value.is_null (e ctx env))
let lt a b : bool exp = fun ctx env -> Nvm.Value.as_int (a ctx env) < Nvm.Value.as_int (b ctx env)
let gt a b : bool exp = fun ctx env -> Nvm.Value.as_int (a ctx env) > Nvm.Value.as_int (b ctx env)
let le a b : bool exp = fun ctx env -> Nvm.Value.as_int (a ctx env) <= Nvm.Value.as_int (b ctx env)
let band a b : bool exp = fun ctx env -> a ctx env && b ctx env
let bor a b : bool exp = fun ctx env -> a ctx env || b ctx env
let bnot a : bool exp = fun ctx env -> not (a ctx env)

(* address expressions *)

(** A fixed cell. *)
let at (a : Nvm.Memory.addr) : int exp = fun _ _ -> a

(** Cell [base + i] of an array, where [i] is an integer expression. *)
let slot (base : Nvm.Memory.addr) (i : int exp) : int exp =
 fun ctx env -> base + i ctx env

(** Cell [base + p] where [p] is the executing process. *)
let my_slot (base : Nvm.Memory.addr) : int exp = fun ctx _ -> base + ctx.pid

(** Integer value of a local, as an index expression. *)
let idx x : int exp = fun _ env -> Nvm.Value.as_int (Env.get env x)

(** Pid value of a local, as an index expression. *)
let idx_pid x : int exp = fun _ env -> Nvm.Value.as_pid (Env.get env x)

let pp_instr ppf = function
  | Assign (x, _) -> Fmt.pf ppf "%s := <expr>" x
  | Read (x, _) -> Fmt.pf ppf "%s := read(...)" x
  | Write _ -> Fmt.pf ppf "write(...)"
  | Cas_prim (x, _, _, _) -> Fmt.pf ppf "%s := cas(...)" x
  | Tas_prim (x, _) -> Fmt.pf ppf "%s := t&s(...)" x
  | Faa_prim (x, _, _) -> Fmt.pf ppf "%s := faa(...)" x
  | Invoke (x, _, op, _) -> Fmt.pf ppf "%s := <obj>.%s(...)" x op
  | Branch_if (_, l) -> Fmt.pf ppf "if <cond> goto line %d" l
  | Jump l -> Fmt.pf ppf "goto line %d" l
  | Ret _ -> Fmt.pf ppf "return <expr>"
  | Resume l -> Fmt.pf ppf "proceed from line %d" l

let pp ppf t =
  Fmt.pf ppf "@[<v>%s:@," t.prog_name;
  Array.iteri (fun pc i -> Fmt.pf ppf "  %2d: %a@," t.lines.(pc) pp_instr i) t.code;
  Fmt.pf ppf "@]"
