(** Versioned on-disk checkpoints for resumable exploration.

    {!Explore.sweep} partitions the search into frontier tasks and
    checkpoints {e at task granularity}: a checkpoint records each task's
    root — as the decision path from the search root plus the crash
    budget consumed along it — a completion flag per task, and the
    statistics/metrics accumulated from the expansion phase and the
    tasks completed so far.  In-flight work is deliberately {e not}
    persisted: a killed run discards partially explored tasks and
    re-runs them from their roots on resume, which is what makes the
    resumed totals exactly equal to an uninterrupted run's.

    Format: NDJSON, schema ["nrl-checkpoint/2"] (documented field by
    field in docs/resilience.md).  Version 2 persists only the pending
    task set (totals/metrics cover exactly the completed work); version-1
    files, which carried the full partition with per-task done flags, are
    still accepted by {!load}.  {!save} is atomic (write-to-temporary,
    then [Sys.rename]): a kill mid-save leaves the previous valid
    checkpoint. *)

val schema_version : string
(** ["nrl-checkpoint/2"], the version {!save} writes.  {!load} also
    accepts ["nrl-checkpoint/1"]. *)

type totals = {
  ck_nodes : int;
  ck_terminals : int;
  ck_truncated : int;
  ck_dup : int;
}

type task = {
  ck_path : Schedule.decision list;
      (** decisions from the search root to the task's root, in
          application order *)
  ck_crashes : int;
      (** crash budget consumed on the path — recorded explicitly because
          the engine does not always charge a crash decision at
          terminal-but-extendable nodes, so it cannot be recomputed from
          the path alone *)
  ck_done : bool;
}

type t = {
  scenario : (string * string) list;
      (** printable stamp of what was being explored; a resume must
          present an equal stamp or be rejected *)
  tasks : task array;
  totals : totals;  (** exact: expansion + completed tasks only *)
  metrics : (string * Obs.Metrics.view) list;
      (** metric views on the same accumulation basis, restored with
          {!Obs.Metrics.absorb} *)
  result : (string * string) option;
      (** final [(verdict, detail)] — [("clean", "")] or
          [("violation", reason)] — once the search finished; [None]
          while the checkpoint is resumable *)
}

val save : path:string -> t -> unit
(** Serialize atomically: write [path ^ ".tmp"], then rename over
    [path]. *)

val load : string -> (t, string) result
(** Parse a checkpoint file; [Error] describes unreadable files,
    malformed records and schema mismatches. *)

(** The minimal JSON toolkit the checkpoint reader/writer is built on:
    a recursive-descent parser for the subset our own NDJSON writers
    emit, plus the escaping they all share.  Exposed so sibling NDJSON
    formats (the fuzzer's corpus, tests) parse with the same code
    instead of growing parser clones. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  val parse : string -> t
  (** @raise Bad on anything outside the supported subset. *)

  val member : string -> t -> t
  (** Field of an object.  @raise Bad if missing or not an object. *)

  val to_int : t -> int
  val to_string : t -> string
  val to_bool : t -> bool
  val to_list : t -> t list
end

val json_escape : string -> string
(** The escaping discipline shared by every NDJSON writer in this
    codebase (same as {!Obs.Trace}): ASCII control characters, quotes
    and backslashes. *)

(**/**)

val decision_token : Schedule.decision -> string
val decision_of_token : string -> Schedule.decision
val path_to_string : Schedule.decision list -> string
val path_of_string : string -> Schedule.decision list
