(** The crash-recovery machine — the executable form of the paper's
    individual-process crash-recovery model (Section 2).

    - Shared variables live in simulated NVRAM and survive crashes.
    - Local variables are volatile and are scrambled to arbitrary values
      by a crash.
    - Each process runs a stack of frames, one per pending (possibly
      nested) recoverable operation; the stack structure, operation
      arguments, program counters and [LI_p] persist as system metadata.
    - A recovery step resurrects a process by invoking the recovery
      function of the inner-most pending operation with fresh locals;
      when it completes, recovery cascades outward through interrupted
      parents.
    - A crash during recovery leaves the crashed operation unchanged, so
      the next recovery step re-invokes the same recovery function. *)

type phase = Body | Recovery

type frame = {
  f_obj : Objdef.instance;
  f_op : Objdef.op_def;
  f_args : Nvm.Value.t array;
  mutable f_phase : phase;
  mutable f_pc : int;  (** pc in the current program; system metadata, persists *)
  mutable f_li : int;
      (** [LI_p]: last line of the operation's {e body} that started
          executing; frozen while the recovery function runs *)
  mutable f_interrupted : bool;
      (** set by a crash for every pending frame; an interrupted parent
          runs its own recovery function when its child completes *)
  mutable f_env : Env.t;  (** volatile locals *)
  f_dst : string option;  (** parent's local receiving the response *)
  f_call_id : int;
}

type status = Ready | Crashed

(** Arguments of a scripted operation: fixed, or computed at invocation
    time (deterministically, without mutating the machine). *)
type arg_spec = Args of Nvm.Value.t array | Compute of (Nvm.Memory.t -> Nvm.Value.t array)

type proc = {
  pid : int;
  mutable stack : frame list;  (** inner-most first *)
  mutable script : (Objdef.instance * string * arg_spec) list;
  mutable status : status;
  mutable results : (string * Nvm.Value.t) list;
      (** completed top-level operations, newest first *)
  mutable crashes : int;
}

type t

exception Stuck of string
(** A program ran off the end of its instruction array — an object bug. *)

val create : ?seed:int -> nprocs:int -> unit -> t
(** A fresh machine; [seed] drives the junk used to scramble locals. *)

val mem : t -> Nvm.Memory.t
(** The machine's simulated NVRAM. *)

val registry : t -> Objdef.registry
(** The object registry instances are allocated in. *)

val nprocs : t -> int
(** Number of processes the machine was created with. *)

val total_steps : t -> int
(** Machine steps executed so far — normal steps, crashes and
    recoveries included; restored by {!undo_to}. *)

val set_obs : t -> Obs.Metrics.t option -> unit
(** Attach (or detach, with [None]) a metric registry: from now on the
    machine counts its steps, invocations, responses, crashes,
    recoveries and trail undos into it (names in {!Obs.Names}).  The
    counters are monotone work counters — {!undo_to} does {e not} roll
    them back — and instrumentation touches no memory shared between
    domains, so attaching a registry never changes machine behaviour.
    Handles are resolved here once; the per-event cost is one [option]
    match and one field increment.  {!clone} shares the attachment
    (clones count into the same registry until re-pointed). *)

val obs : t -> Obs.Metrics.t option
(** The registry attached with {!set_obs}, if any — how checker glue
    (e.g. [Workload.Check]) finds where to count without new
    parameters. *)

val junk_state : t -> int
(** State of the machine's junk generator (the source that scrambles
    locals on a crash); included in configuration fingerprints because it
    determines the values future crashes produce. *)

val junk_strategy : t -> Junk.strategy
(** The adversarial junk strategy in force (default {!Junk.Scramble}). *)

val set_junk_strategy : t -> Junk.strategy -> unit
(** Choose how crashed locals are scrambled (see {!Junk.strategy}).  Set
    after scenario setup and before exploration; the choice survives
    {!clone} but is {e not} part of the fingerprint (a run uses one
    strategy throughout). *)

val lure_pool : t -> Nvm.Value.t array
(** The distinct values currently stored in the machine's NVRAM, sorted —
    a ready-made pool for {!Junk.Lure}: junk indistinguishable from
    legitimate persistent data. *)

val apply_junk_strategy : t -> string -> unit
(** Set the strategy by its {!Junk.strategy_name}; ["lure"] builds its
    pool from {!lure_pool} at call time.
    @raise Invalid_argument on an unknown name. *)

val history : t -> History.t
(** The history recorded so far (invocation, response, crash and recovery
    steps, in order). *)

val history_length : t -> int
(** Number of steps recorded so far — O(1); lets an incremental checker
    remember how much of the history it has already consumed. *)

val history_suffix : t -> int -> History.Step.t list
(** [history_suffix t n] is the steps from index [n] (inclusive) to the
    end, in chronological order — the part of the history recorded since
    {!history_length} returned [n].  O(length of the suffix). *)

val proc : t -> int -> proc
(** The process record of pid [p] (shared mutable state — read-only use
    intended). *)

val status : t -> int -> status
(** Whether the process is alive ([Ready]) or down ([Crashed]). *)

val results : t -> int -> (string * Nvm.Value.t) list
(** Completed top-level operations of a process, oldest first. *)

val crash_count : t -> int -> int
(** Number of crash steps injected into the process so far. *)

val set_script : t -> int -> (Objdef.instance * string * arg_spec) list -> unit
(** Install the process's script: top-level operations it will invoke in
    order, each starting when the scheduler next steps an idle process. *)

val append_script : t -> int -> (Objdef.instance * string * arg_spec) list -> unit
(** Append operations to the process's remaining script. *)

val enabled : t -> int -> bool
(** The process is alive and has work (a pending operation or a script
    entry to start). *)

val can_crash : ?mid_op_only:bool -> t -> int -> bool
(** A crash step is allowed: the process is alive, and — with
    [mid_op_only] — has a pending operation. *)

val can_recover : t -> int -> bool
(** A recovery step is allowed: the process is crashed. *)

val next_is_local : t -> int -> bool
(** The process's next transition touches no shared memory (including
    invocation and response steps); used by the partial-order-reduced
    exploration — see {!Explore}. *)

val next_is_ret : t -> int -> bool
(** The process's next transition is a response step. *)

val all_done : t -> bool
(** Every process is alive with an empty stack and an empty script. *)

val step : t -> int -> unit
(** Execute one step of a process: start the next scripted operation, or
    execute one instruction of the inner-most frame.
    @raise Invalid_argument if the process is not {!enabled}. *)

val crash : t -> int -> unit
(** Crash-failure: scramble every pending frame's locals, mark frames
    interrupted, record the crash step (with the inner-most pending
    operation as the crashed operation).
    @raise Invalid_argument if the process is not alive. *)

val recover : t -> int -> unit
(** Recovery step: resurrect the process, switching its inner-most frame
    to the recovery program with fresh locals.
    @raise Invalid_argument if the process has not crashed. *)

val clone : t -> t
(** Independent deep copy sharing only immutable structure (programs,
    instance definitions); used by the exhaustive explorer and the
    valency analysis.  The clone carries no trail (see {!enable_trail}). *)

(** {1 Trail-based backtracking}

    Instead of cloning the machine at every branch point, a depth-first
    exploration can {!enable_trail} once, take a {!mark} before applying a
    decision, and {!undo_to} it afterwards: every mutation between the two
    calls — NVRAM cells and allocations, volatile environments and their
    junk draws, frame control fields, process stacks / scripts / statuses,
    recorded history, and all counters — is reverted in place.  What is
    {e not} restored: the identity of [Env.t] values replaced wholesale by
    recovery (the original environment object is re-installed, which is
    observationally equivalent), and the object registry (immutable after
    setup by construction).  Marks obey stack discipline: undo to marks in
    reverse order of taking them. *)

type mark
(** A position in the machine's undo trail plus a snapshot of its scalar
    counters. *)

val enable_trail : t -> unit
(** Switch the machine into trailed mode (idempotent).  Call after setup
    (registration, allocation, scripting) and before exploration; existing
    frames are adopted.  There is no [disable]: {!clone} yields a
    trail-free machine. *)

val trail_enabled : t -> bool
(** Whether {!enable_trail} has been called on this machine. *)

val mark : t -> mark
(** O(1).  @raise Invalid_argument if the trail is not enabled. *)

val undo_to : t -> mark -> unit
(** Revert every mutation made since the mark was taken, newest first.
    Cost is proportional to the number of mutations reverted.
    @raise Invalid_argument if the trail is not enabled, or on a mark
    already undone past (marks are not re-usable across [undo_to] of an
    earlier mark). *)

val current_program : frame -> Program.t
(** The program the frame is executing: the operation's body, or its
    recovery function while the frame is in the [Recovery] phase. *)

val ctx_of : t -> frame -> int -> Program.ctx
(** The evaluation context ([pid], [nprocs], arguments, [LI_p]) that
    expressions of the frame's program are evaluated in. *)

val pp_proc : proc Fmt.t
(** Short description of a process state, for debugging and error
    reports. *)
