(** Canonical structural fingerprint of a machine configuration.

    Covers everything that determines future behaviour — persistent
    memory, junk-generator state, and per-process control state (status,
    results, remaining script, frame stacks with locals) — and excludes
    history bookkeeping (call ids, step counts, the recorded history):
    two configurations with equal fingerprints generate identical future
    event sequences even when reached by different interleavings.

    The representation is structural (no string building) and the hash
    is computed once at construction, so taking a fingerprint at every
    node of an exploration is affordable.  This module generalises the
    serialisation the impossibility analysis used privately; see
    {!Impossibility.Statekey} for the string-keyed compatibility layer. *)

type t

val of_sim : ?extra:int -> Sim.t -> t
(** [extra] (default 0) is mixed into the fingerprint as opaque path
    context.  The explorer passes the crash budget consumed so far:
    two equal configurations reached having spent different budgets have
    different remaining futures, so deduplicating across them would make
    search statistics depend on traversal order. *)

val equal : t -> t -> bool
val hash : t -> int

val to_string : t -> string
(** Printable canonical serialisation (diagnostics, string-keyed maps). *)

module Table : Hashtbl.S with type key = t

val erased_proc_hash : Sim.t -> int -> int
(** Hash of process [p]'s control state with every [Pid] value erased to
    an own/other token.  The result is invariant under any process
    permutation that fixes [p]'s own/other relation, which makes it a
    sound {e equivariant} tie-breaker for partial-order choices made
    under symmetry reduction (see {!Explore}). *)

(** Lock-free sharded visited-set over fingerprints, shared by all
    exploring domains.  Each shard is an ordered chain of
    open-addressing segments whose slots are [Atomic] and monotone
    ([None] → inserted fingerprint, never changed again); insertion
    probes the chain in one fixed global order and claims the first
    empty slot by CAS, so equal fingerprints — which share the same
    probe sequence — serialise on a single slot and [add] answers
    "fresh" exactly once per distinct fingerprint without taking a lock
    on the fast path.  Shards grow by appending doubled segments under
    a per-shard mutex. *)
module Store : sig
  type fp = t
  type t

  val create : ?shards:int -> unit -> t
  (** [shards] (default 64) is rounded up to a power of two; the shard
      is chosen by the low fingerprint-hash bits, the in-shard probe
      position by the remaining bits. *)

  val add : t -> fp -> bool
  (** [add s fp] is [true] iff [fp] was not yet in the store (it is
      recorded atomically with the test — linearizable across
      domains). *)

  val cardinal : t -> int
  (** Number of distinct fingerprints inserted. *)

  val contention : t -> int
  (** CAS insertions lost to a racing domain — a measure of shard
      contention (exported as a metric by the explorer). *)

  val shards : t -> int
  (** Actual shard count (power of two). *)

  val shard_sizes : t -> int array
  (** Per-shard insert counts, for distribution diagnostics/tests. *)
end

(** Process-id symmetry reduction: quotient the explored state space by
    the group of process permutations that provably commute with every
    machine step.  {!detect} checks the soundness conditions on the root
    configuration (identical per-process scripts up to own-pid renaming,
    pid-oblivious object declarations ({!Objdef.sym_spec}), pid-free
    junk strategy, permutations preserving the crash-enabled set);
    {!canonical} then maps a fingerprint to the least element of its
    orbit so the visited store deduplicates whole orbits.  See
    docs/model.md for the soundness argument. *)
module Symmetry : sig
  type group

  val detect : ?crashes_possible:bool -> crash_procs:int list -> Sim.t -> group option
  (** [detect sim] on the {e root} configuration: [Some g] iff every
      soundness condition holds and the resulting group is non-trivial.
      [crashes_possible] (default [true]) additionally requires every
      object's recovery programs to be pid-oblivious; pass [false] for
      crash-free exploration. *)

  val degree : group -> int
  (** Order of the group (including the identity). *)

  val canonical : group -> t -> t
  (** Least fingerprint of the orbit under the group's permutations
      (deterministic: independent of domain, schedule or insertion
      order). *)
end
