(** Canonical structural fingerprint of a machine configuration.

    Covers everything that determines future behaviour — persistent
    memory, junk-generator state, and per-process control state (status,
    results, remaining script, frame stacks with locals) — and excludes
    history bookkeeping (call ids, step counts, the recorded history):
    two configurations with equal fingerprints generate identical future
    event sequences even when reached by different interleavings.

    The representation is structural (no string building) and the hash
    is computed once at construction, so taking a fingerprint at every
    node of an exploration is affordable.  This module generalises the
    serialisation the impossibility analysis used privately; see
    {!Impossibility.Statekey} for the string-keyed compatibility layer. *)

type t

val of_sim : ?extra:int -> Sim.t -> t
(** [extra] (default 0) is mixed into the fingerprint as opaque path
    context.  The explorer passes the crash budget consumed so far:
    two equal configurations reached having spent different budgets have
    different remaining futures, so deduplicating across them would make
    search statistics depend on traversal order. *)

val equal : t -> t -> bool
val hash : t -> int

val to_string : t -> string
(** Printable canonical serialisation (diagnostics, string-keyed maps). *)

module Table : Hashtbl.S with type key = t

(** Sharded, mutex-protected visited-set over fingerprints, safe to
    share across domains (used by the parallel explorer's state
    deduplication). *)
module Store : sig
  type fp = t
  type t

  val create : ?shards:int -> unit -> t

  val add : t -> fp -> bool
  (** [add s fp] is [true] iff [fp] was not yet in the store (it is
      recorded atomically with the test). *)

  val cardinal : t -> int
end
