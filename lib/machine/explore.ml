(** Exhaustive bounded exploration of schedules.

    For small instances (a few processes, a few operations each, a
    bounded crash budget) the decision tree is small enough to enumerate
    completely — this is what lets the checkers examine {e every} history
    of a bounded instance, turning the paper's universally quantified
    correctness lemmas into machine-checked facts for those bounds.

    Two branching disciplines share one traversal core:

    - {e trail-based in-place backtracking} (the default): the search
      mutates a single machine, taking a {!Sim.mark} before each decision
      and {!Sim.undo_to}-ing it afterwards, so the per-branch cost is the
      few mutations of one step instead of a whole-machine deep copy; and
    - {e clone-per-branch} ([trail = false]): the historical engine,
      copying the machine at every branch point.  Kept as the baseline
      the benchmarks compare against, and because a clone-mode traversal
      hands [on_terminal] a machine that stays valid after the callback
      returns.

    Both visit the same nodes in the same order, so every statistic is
    identical across the two.

    The engine is also domain-parallel: with [jobs > 1] the shallowest
    part of the tree is first expanded breadth-first (in clone mode, so
    each pending subtree root owns an independent machine) until it holds
    enough tasks, which are then fanned out across OCaml 5 domains, each
    running the sequential search — trailed on its own machine — over its
    subtrees.  Statistics are summed at the join; a shared atomic flag
    stops every worker as soon as one finds a violation.  Every node is
    processed exactly once by the same code either way, so
    [terminals]/[truncated]/[nodes] are identical for every [jobs] value.

    Orthogonally, {e state deduplication} ([dedup]) prunes a branch when
    the machine configuration's {!Fingerprint} — extended with the crash
    budget already consumed on the current path, which determines how
    many crash decisions the future still offers — has been visited
    before: converging schedule prefixes are explored once.  Fingerprint
    equality (budget included) implies identical future subtrees, so the
    pruned subtree's behaviours are exactly the representative's — but
    the {e prefix} histories differ, so checks that depend on the full
    history (NRL does) are verified against one representative prefix
    per state.  Deduplicated search is therefore a fast
    under-approximation: any violation it reports is real, while a clean
    sweep certifies one representative history per reachable
    configuration rather than all of them.  See docs/model.md for the
    full soundness discussion. *)

type config = {
  max_steps : int;  (** depth bound per branch (guards busy-wait loops) *)
  max_crashes : int;  (** total crash budget across all processes *)
  crash_procs : int list;  (** processes allowed to crash *)
  crash_mid_op_only : bool;
      (** restrict crash steps to processes with a pending operation *)
  immediate_recovery : bool;
      (** if set, the only decision after a crash of [p] is [Drecover p]
          (smaller trees); otherwise recovery interleaves adversarially *)
  reduce_local : bool;
      (** partial-order reduction: fire local (non-shared-access)
          transitions eagerly, responses first.  Sound and complete for
          violation search — see {!Sim.next_is_local} *)
}

let default_config =
  {
    max_steps = 200;
    max_crashes = 1;
    crash_procs = [];
    crash_mid_op_only = true;
    immediate_recovery = false;
    reduce_local = true;
  }

type stats = {
  mutable terminals : int;  (** complete executions reached *)
  mutable truncated : int;  (** branches cut by the depth bound *)
  mutable nodes : int;
  mutable dup : int;  (** branches pruned by state deduplication *)
}

let zero_stats () = { terminals = 0; truncated = 0; nodes = 0; dup = 0 }

let add_stats into s =
  into.terminals <- into.terminals + s.terminals;
  into.truncated <- into.truncated + s.truncated;
  into.nodes <- into.nodes + s.nodes;
  into.dup <- into.dup + s.dup

let auto_jobs () = max 1 (Domain.recommended_domain_count ())

let decisions cfg ~sym ~crashes sim =
  let n = Sim.nprocs sim in
  let all = List.init n Fun.id in
  let crashed = List.filter (fun p -> Sim.can_recover sim p) all in
  if cfg.immediate_recovery && crashed <> [] then
    List.map (fun p -> Schedule.Drecover p) crashed
  else begin
    let crashes_d =
      if crashes >= cfg.max_crashes then []
      else
        List.filter_map
          (fun p ->
            if Sim.can_crash ~mid_op_only:cfg.crash_mid_op_only sim p then
              Some (Schedule.Dcrash p)
            else None)
          cfg.crash_procs
    in
    let locals =
      if cfg.reduce_local then
        List.filter (fun p -> Sim.enabled sim p && Sim.next_is_local sim p) all
      else []
    in
    match locals with
    | _ :: _ ->
      (* fire one local transition deterministically (responses first);
         crash decisions are still offered so every crash position is
         reachable *)
      let cands =
        match List.filter (fun p -> Sim.next_is_ret sim p) locals with
        | _ :: _ as rets -> rets
        | [] -> locals
      in
      if not sym then Schedule.Dstep (List.hd cands) :: crashes_d
      else begin
        (* under symmetry reduction the choice must be equivariant:
           picking the lowest pid does not commute with pid
           permutations, so two isomorphic configurations could explore
           non-isomorphic subtrees and the quotient would miss states.
           Instead rank candidates by a pid-erased hash of their local
           state — invariant under every permutation — and branch on
           {e all} ties (a sound superset of any single equivariant
           pick). *)
        let scored = List.map (fun p -> (Fingerprint.erased_proc_hash sim p, p)) cands in
        let best = List.fold_left (fun a (h, _) -> min a h) max_int scored in
        List.filter_map
          (fun (h, p) -> if h = best then Some (Schedule.Dstep p) else None)
          scored
        @ crashes_d
      end
    | [] ->
      let steps =
        List.filter_map
          (fun p -> if Sim.enabled sim p then Some (Schedule.Dstep p) else None)
          all
      in
      let recoveries = List.map (fun p -> Schedule.Drecover p) crashed in
      steps @ recoveries @ crashes_d
  end

(* terminal: every process either completed its script or is down for
   good (a crash may be a process's last step, per Definition 3) *)
let terminal sim =
  Sim.all_done sim
  || (let n = Sim.nprocs sim in
      let rec ok p =
        p >= n
        || ((Sim.status sim p = Sim.Crashed || not (Sim.enabled sim p)) && ok (p + 1))
      in
      ok 0)

exception Found of Sim.t * string

exception Stopped
(* raised inside a worker when another worker has flipped the stop flag *)

(** A path checker: per-path state threaded down the DFS, updated after
    every applied decision and asked for a verdict at each terminal.  The
    state type is existential — the explorer only moves values of it
    around — which lets {!Checker}-level state live above this library in
    the dependency order (see [Workload.Check.nrl_incremental]). *)
type path_checker =
  | Path : {
      init : Sim.t -> 'st;
          (** state for the root configuration (folds any history the
              machine recorded during setup) *)
      step : 'st -> Sim.t -> 'st;
          (** consume the history suffix the last decision appended; must
              be pure in ['st] (the same state value is reused across
              sibling branches) and must not retain [Sim.t] *)
      terminal : 'st -> Sim.t -> string option;
          (** verdict for a complete execution, [Some reason] = violation *)
    }
      -> path_checker

type check_mode = [ `Terminal | `Incremental of path_checker ]

(** {1 Budgets}

    Resource bounds on a search.  Budgets make long-running verification
    degrade instead of dying: exceeding the visited-store cap drops the
    dedup store (a degradation — the search keeps going, unpruned) while
    exceeding the deadline or the node budget aborts with a structured
    partial verdict rather than an exception or an unbounded run. *)
type budget = {
  deadline_s : float option;  (** wall-clock bound, seconds from the start of the call *)
  max_nodes : int option;  (** bound on nodes processed (across all domains) *)
  max_visited : int option;
      (** cap on the dedup visited store, in fingerprints; past it, the
          store is dropped (degradation, not abort) *)
}

let no_budget = { deadline_s = None; max_nodes = None; max_visited = None }

type exhaust_reason = [ `Deadline | `Nodes | `Interrupted ]

let exhaust_reason_name = function
  | `Deadline -> "deadline"
  | `Nodes -> "max-nodes"
  | `Interrupted -> "interrupted"

(** A budget-exhausted partial verdict.  The coverage achieved is the
    [stats] value returned alongside: everything counted there was really
    explored and judged. *)
type exhausted = {
  ex_reason : exhaust_reason;
  ex_frontier : int;
      (** independent subtree tasks not yet completed (0 when the search
          was not partitioned) *)
  ex_degraded : string list;
      (** degradation steps taken before giving up, oldest first *)
}

(** Verdict of a budgeted, resumable search ({!sweep}). *)
type outcome =
  | Clean  (** every schedule within the bounds explored, no violation *)
  | Violation of Sim.t * string
  | Exhausted of exhausted

exception Out_of_budget of exhaust_reason
(* internal: unwinds workers when a budget trips; never escapes the
   public entry points *)

(* Budget enforcement state shared by every traversal of one search.
   The node count is a single atomic across domains, so [max_nodes] cuts
   at the same global count wherever the work landed; the deadline and
   the stop callback are polled every [poll_mask + 1] nodes. *)
type limits = {
  l_deadline_ns : int;  (** absolute Clock reading; [max_int] = none *)
  l_max_nodes : int;  (** [max_int] = none *)
  l_nodes : int Atomic.t;
  l_max_visited : int;  (** [max_int] = none *)
  l_dedup_on : bool Atomic.t;
  l_degraded : string list Atomic.t;
  l_should_stop : unit -> bool;
}

let poll_mask = 63

let limits_of ~budget ~should_stop =
  match (budget, should_stop) with
  | { deadline_s = None; max_nodes = None; max_visited = None }, None -> None
  | _ ->
    Some
      {
        l_deadline_ns =
          (match budget.deadline_s with
          | None -> max_int
          | Some s -> Obs.Clock.now_ns () + int_of_float (s *. 1e9));
        l_max_nodes = Option.value budget.max_nodes ~default:max_int;
        l_nodes = Atomic.make 0;
        l_max_visited = Option.value budget.max_visited ~default:max_int;
        l_dedup_on = Atomic.make true;
        l_degraded = Atomic.make [];
        l_should_stop = Option.value should_stop ~default:(fun () -> false);
      }

(* Per-processed-node budget check.  With dedup on, the visited store
   holds exactly one fingerprint per processed node, so the global node
   counter doubles as the store-size reading — no locked cardinality
   scans on the hot path. *)
let check_limits l =
  let n = Atomic.fetch_and_add l.l_nodes 1 + 1 in
  if n > l.l_max_nodes then raise (Out_of_budget `Nodes);
  if
    n > l.l_max_visited
    && Atomic.get l.l_dedup_on
    && Atomic.compare_and_set l.l_dedup_on true false
  then
    Atomic.set l.l_degraded
      (Atomic.get l.l_degraded @ [ "dedup-store-dropped:visited-cap" ]);
  if n land poll_mask = 0 then begin
    if Obs.Clock.now_ns () > l.l_deadline_ns then raise (Out_of_budget `Deadline);
    if l.l_should_stop () then raise (Out_of_budget `Interrupted)
  end

(* Pre-resolved handles for the explorer's per-phase timers.  Each
   traversal context owns its meters — the parallel engine gives every
   worker a private registry (merged at the join, in worker order), so
   timing the hot loop never touches cross-domain state. *)
type meters = {
  m_reg : Obs.Metrics.t;
  m_step : Obs.Metrics.timer;
  m_check : Obs.Metrics.timer;
  m_dedup : Obs.Metrics.timer;
}

let meters_of reg =
  {
    m_reg = reg;
    m_step = Obs.Metrics.timer reg Obs.Names.explore_time_step;
    m_check = Obs.Metrics.timer reg Obs.Names.explore_time_check;
    m_dedup = Obs.Metrics.timer reg Obs.Names.explore_time_dedup;
  }

(* Timing helpers that vanish when unobserved: [now_if] reads the clock
   only when meters are attached, [lap] charges the elapsed time to the
   selected timer. *)
let now_if om = match om with Some _ -> Obs.Clock.now_ns () | None -> 0

let lap om sel t0 =
  match om with Some m -> Obs.Metrics.Timer.add (sel m) (Obs.Clock.now_ns () - t0) | None -> ()

(* Progress ticks are batched: each traversal bumps the shared atomic
   once per [tick_batch] of its own nodes, keeping the per-node cost at
   one private increment. *)
let tick_batch = 8192

(** A pending subtree: a machine owned by the task plus the depth, crash
    count and path-checker state at its root.  [t_path] is the decision
    path from the search root (newest first); it is threaded only by the
    frontier expansion of checkpointing searches and stays [[]]
    otherwise. *)
type 'st task = {
  t_sim : Sim.t;
  t_depth : int;
  t_crashes : int;
  t_state : 'st;
  t_path : Schedule.decision list;
}

(** Everything one traversal needs.  [frontier = Some (d, emit)] turns
    recursion at depth [>= d] into task emission — the frontier-expansion
    phase of the parallel engine processes nodes one BFS level at a time
    through the very same code path the workers later run, so every node
    is visited exactly once regardless of where the tree is split. *)
type 'st ctx = {
  cfg : config;
  stats : stats;
  stop : unit -> bool;
  seen : Fingerprint.Store.t option;
  trail : bool;  (** branch by mark/undo on one machine vs clone-per-branch *)
  step_state : 'st -> Sim.t -> 'st;
  on_terminal : 'st -> Sim.t -> unit;
  frontier : (int * ('st task -> unit)) option;
  om : meters option;  (** this traversal's private phase timers *)
  prog : Obs.Progress.t option;  (** shared across workers; tick-batched *)
  limits : limits option;  (** budget enforcement; [None] costs nothing *)
  sym : Fingerprint.Symmetry.group option;
      (** process-symmetry group: fingerprints are canonicalised under it
          before the visited-store probe, and local-step picks switch to
          the equivariant rule (see [decisions]) *)
  cur_dec : Schedule.decision option ref;
      (** the decision [branch] is currently under — written only while a
          frontier is active (the expanding worker is the only writer),
          read by the emit hook to reconstruct task paths *)
}

let rec go : 'st. 'st ctx -> Sim.t -> int -> int -> 'st -> unit =
 fun ctx sim depth crashes st ->
  if ctx.stop () then raise Stopped;
  match ctx.frontier with
  | Some (fd, emit) when depth >= fd ->
    emit { t_sim = sim; t_depth = depth; t_crashes = crashes; t_state = st; t_path = [] }
  | _ ->
    let fresh =
      match ctx.seen with
      | None -> true
      | Some store
        when match ctx.limits with
             | Some l -> Atomic.get l.l_dedup_on
             | None -> true ->
        let t0 = now_if ctx.om in
        let fp = Fingerprint.of_sim ~extra:crashes sim in
        let fp =
          match ctx.sym with
          | Some g -> Fingerprint.Symmetry.canonical g fp
          | None -> fp
        in
        let r = Fingerprint.Store.add store fp in
        lap ctx.om (fun m -> m.m_dedup) t0;
        r
      | Some _ -> (* dedup store dropped by budget degradation *) true
    in
    if not fresh then
      (* an equivalent configuration (same remaining crash budget) was
         reached by another prefix: its futures have already been (or are
         being) explored *)
      ctx.stats.dup <- ctx.stats.dup + 1
    else begin
      let stats = ctx.stats in
      stats.nodes <- stats.nodes + 1;
      (match ctx.limits with Some l -> check_limits l | None -> ());
      (match ctx.prog with
      | Some p when stats.nodes land (tick_batch - 1) = 0 -> Obs.Progress.tick p ~nodes:tick_batch
      | _ -> ());
      if Sim.all_done sim then begin
        stats.terminals <- stats.terminals + 1;
        let t0 = now_if ctx.om in
        ctx.on_terminal st sim;
        lap ctx.om (fun m -> m.m_check) t0
      end
      else if terminal sim then begin
        (* some process is down with no one else runnable: this is a
           complete execution (check it), but recovery may still extend it *)
        stats.terminals <- stats.terminals + 1;
        let t0 = now_if ctx.om in
        ctx.on_terminal st sim;
        lap ctx.om (fun m -> m.m_check) t0;
        if depth < ctx.cfg.max_steps then
          List.iter
            (fun d -> branch ctx sim depth crashes st d)
            (decisions ctx.cfg ~sym:(ctx.sym <> None) ~crashes sim)
      end
      else if depth >= ctx.cfg.max_steps then stats.truncated <- stats.truncated + 1
      else begin
        let ds = decisions ctx.cfg ~sym:(ctx.sym <> None) ~crashes sim in
        match ds with
        | [] ->
          (* deadlock: crashed processes that may not recover, or empty
             scripts; count as truncated so callers notice *)
          stats.truncated <- stats.truncated + 1
        | _ ->
          List.iter
            (fun d ->
              let crashes' =
                match d with Schedule.Dcrash _ -> crashes + 1 | _ -> crashes
              in
              branch ctx sim depth crashes' st d)
            ds
      end
    end

(* One child edge: apply the decision, advance the path-checker state on
   the appended history suffix, recurse.  Trail mode reverts the shared
   machine afterwards; clone mode gives the child its own machine and
   leaves the parent untouched.  [crashes] is the child's crash count:
   callers charge crash decisions at ordinary interior nodes, while the
   terminal-but-extendable path deliberately passes its own count through
   unchanged (see [go]) to keep node accounting identical with the
   historical engine. *)
and branch : 'st. 'st ctx -> Sim.t -> int -> int -> 'st -> Schedule.decision -> unit =
 fun ctx sim depth crashes st d ->
  (* the [now_if]/[lap] pairs compile to nothing when unobserved; the
     recursive [go] call is never inside a timed interval *)
  (match ctx.frontier with
  | Some _ -> ctx.cur_dec := Some d (* expansion is single-domain; see [expand_frontier] *)
  | None -> ());
  if ctx.trail then begin
    let t0 = now_if ctx.om in
    let m = Sim.mark sim in
    Schedule.apply sim d;
    lap ctx.om (fun mt -> mt.m_step) t0;
    let t1 = now_if ctx.om in
    let st' = ctx.step_state st sim in
    lap ctx.om (fun mt -> mt.m_check) t1;
    go ctx sim (depth + 1) crashes st';
    let t2 = now_if ctx.om in
    Sim.undo_to sim m;
    lap ctx.om (fun mt -> mt.m_step) t2
  end
  else begin
    let t0 = now_if ctx.om in
    let s = Sim.clone sim in
    Schedule.apply s d;
    lap ctx.om (fun mt -> mt.m_step) t0;
    let t1 = now_if ctx.om in
    let st' = ctx.step_state st s in
    lap ctx.om (fun mt -> mt.m_check) t1;
    go ctx s (depth + 1) crashes st'
  end

let never_stop () = false

(* {1 The work-stealing parallel engine} *)

(** A pending subtree in the work-stealing pool, identified purely by
    its decision path from the search root (application order) and the
    crash budget consumed along it.  Carrying paths instead of machines
    is what lets a thief reconstitute the subtree root on its {e own}
    trailed machine — undo to the longest common prefix with its current
    position, replay the rest — and what lets checkpoints persist the
    exact pool contents (a path is exactly a {!Checkpoint.task}). *)
type ptask = { p_path : Schedule.decision list; p_crashes : int }

(* Growable circular deque.  Every operation runs under the owning
   worker's lock (steals are rare and the critical sections are a few
   loads), so the structure itself needs no atomics.  The owner pushes
   and pops at the back — LIFO, so it descends depth-first and its trail
   prefix stays hot — while thieves take from the front: the oldest
   entry, rooted shallowest, hence the biggest subtree to amortise the
   replay. *)
module Dq = struct
  type t = {
    mutable buf : ptask array;
    mutable head : int;  (* index of the oldest element *)
    mutable len : int;
  }

  let dummy = { p_path = []; p_crashes = 0 }
  let create () = { buf = Array.make 64 dummy; head = 0; len = 0 }

  let grow d =
    let buf = Array.make (2 * Array.length d.buf) dummy in
    for i = 0 to d.len - 1 do
      buf.(i) <- d.buf.((d.head + i) mod Array.length d.buf)
    done;
    d.buf <- buf;
    d.head <- 0

  let push_back d t =
    if d.len = Array.length d.buf then grow d;
    d.buf.((d.head + d.len) mod Array.length d.buf) <- t;
    d.len <- d.len + 1

  let pop_back d =
    if d.len = 0 then None
    else begin
      d.len <- d.len - 1;
      let i = (d.head + d.len) mod Array.length d.buf in
      let t = d.buf.(i) in
      d.buf.(i) <- dummy;
      Some t
    end

  let pop_front d =
    if d.len = 0 then None
    else begin
      let t = d.buf.(d.head) in
      d.buf.(d.head) <- dummy;
      d.head <- (d.head + 1) mod Array.length d.buf;
      d.len <- d.len - 1;
      Some t
    end

  let to_list d = List.init d.len (fun i -> d.buf.((d.head + i) mod Array.length d.buf))
end

(* One worker's share of the pool.  [in_progress] is the task the worker
   is currently running; it is only ever written by its owner thread,
   and always under {e some} slot's lock (the victim's at steal time,
   its own at pop and completion), so a snapshot holding every lock sees
   a consistent pool: each live task is in exactly one deque or one
   in-progress slot. *)
type wslot = {
  ws_lock : Mutex.t;
  ws_dq : Dq.t;
  mutable ws_in_progress : ptask option;
}

type ws_result = {
  wsr_failure : exn option;
  wsr_pending : ptask list;  (** tasks left unfinished (empty on a clean drain) *)
  wsr_created : int;  (** tasks ever created, seeds included *)
}

(** Drain [seeds] (and every task dynamically split off them) on [jobs]
    domains with per-worker deques and work stealing.

    Each worker owns a machine cloned from the pristine root.  To start
    a task it {e repositions}: trail-undo to the longest common prefix
    of its current position and the task's path, then silent replay
    (observation suspended) of the rest — replayed edges were already
    counted when the task was split off, so every tree edge lands in the
    engine-invariant counters exactly once, whatever the partition.

    A worker splits a task instead of searching it in place when the
    pool is young ([created < 32·jobs], seeding initial parallelism) or
    starving ([queued < 2·jobs]): the task's root node is then processed
    normally — counted, deduplicated, checked — through {!go} with a
    one-level frontier, and each child edge becomes a new task.  The
    children are buffered during the traversal and only published in the
    completion critical section (accumulator mutex, then the worker's
    own deque lock), together with the task's statistics fold and the
    in-progress slot clear — so any snapshot taken under all the locks
    sees either the parent task pending or its statistics folded and its
    children pending, never half of either.  That atomicity is what
    makes mid-steal checkpoints resume byte-identically.

    [per_task_reg] selects the metric granularity: [true] gives every
    task a fresh registry folded into [acc_reg] at completion (the
    checkpointing engine — persisted metrics cover exactly the completed
    tasks); [false] gives every worker one registry, merged into
    [ctx.om] at the join in worker-id order (deterministic, whatever
    order workers finished in).  Steal counts and idle time always
    accumulate per worker and merge at the join.

    On {!Found}, {!Out_of_budget} or any other escape the first
    exception is published, every worker stops, and the in-flight tasks
    stay in their slots — [wsr_pending] reports them (plus everything
    still queued) so callers can checkpoint or report the remaining
    frontier. *)
let ws_run : type st.
    ctx:st ctx ->
    jobs:int ->
    trace:Obs.Trace.t option ->
    sim0:Sim.t ->
    root_state:st ->
    seeds:ptask list ->
    per_task_reg:bool ->
    obs_on:bool ->
    acc_mutex:Mutex.t ->
    acc_reg:Obs.Metrics.t option ->
    on_fold:(snapshot:(unit -> ptask list) -> unit) ->
    ws_result =
 fun ~ctx ~jobs ~trace ~sim0 ~root_state ~seeds ~per_task_reg ~obs_on ~acc_mutex ~acc_reg
     ~on_fold ->
  let jobs = max 1 jobs in
  let slots =
    Array.init jobs (fun _ ->
        { ws_lock = Mutex.create (); ws_dq = Dq.create (); ws_in_progress = None })
  in
  let live = Atomic.make 0 in  (* tasks created but not yet completed *)
  let queued = Atomic.make 0 in  (* tasks sitting in deques, stealable *)
  let created = Atomic.make 0 in
  let stop_flag = Atomic.make false in
  let failure : exn option Atomic.t = Atomic.make None in
  let publish e =
    ignore (Atomic.compare_and_set failure None (Some e));
    Atomic.set stop_flag true
  in
  (* distribute seeds round-robin so a resumed multi-domain run starts
     balanced instead of making jobs-1 workers steal everything *)
  List.iteri
    (fun i t ->
      Atomic.incr live;
      Atomic.incr queued;
      Atomic.incr created;
      Dq.push_back slots.(i mod jobs).ws_dq t)
    seeds;
  (* call only while holding [acc_mutex] and no slot lock *)
  let snapshot () =
    Array.iter (fun s -> Mutex.lock s.ws_lock) slots;
    let pending =
      Array.fold_left
        (fun acc s ->
          let q = Dq.to_list s.ws_dq in
          match s.ws_in_progress with Some t -> acc @ (t :: q) | None -> acc @ q)
        [] slots
    in
    Array.iter (fun s -> Mutex.unlock s.ws_lock) slots;
    pending
  in
  let expand_initial = 32 * jobs in
  let low_water = 2 * jobs in
  let worker_regs = Array.make jobs None in
  let worker_steals = Array.make jobs 0 in
  let worker_span = Array.make jobs (0, 0) in
  let worker w () =
    let t0 = Obs.Clock.now_ns () in
    let my = slots.(w) in
    let wreg = if obs_on then Some (Obs.Metrics.create ()) else None in
    worker_regs.(w) <- wreg;
    let msteal = Option.map (fun r -> Obs.Metrics.counter r Obs.Names.explore_ws_steals) wreg in
    let midle = Option.map (fun r -> Obs.Metrics.timer r Obs.Names.explore_time_idle) wreg in
    (* the worker's machine, repositioned between tasks *)
    let wsim = ref (Sim.clone sim0) in
    Sim.set_obs !wsim None;
    if ctx.trail then Sim.enable_trail !wsim;
    let cap = ctx.cfg.max_steps + 2 in
    let applied = ref [||] in
    (* [Sim.mark] requires the trail; clone mode never touches [marks] *)
    let marks = if ctx.trail then Array.make cap (Sim.mark !wsim) else [||] in
    (* states.(i): path-checker state after the first [i] decisions of
       [applied]; step functions are pure, so prefixes shared between
       consecutive tasks are reused, not recomputed *)
    let states = Array.make cap root_state in
    let reposition (t : ptask) =
      let target = Array.of_list t.p_path in
      let m = Array.length target in
      if ctx.trail then begin
        let n = Array.length !applied in
        let lcp = ref 0 in
        while !lcp < n && !lcp < m && !applied.(!lcp) = target.(!lcp) do
          incr lcp
        done;
        let lcp = !lcp in
        if lcp < n then Sim.undo_to !wsim marks.(lcp);
        Sim.set_obs !wsim None;
        for i = lcp to m - 1 do
          marks.(i) <- Sim.mark !wsim;
          Schedule.apply !wsim target.(i);
          states.(i + 1) <- ctx.step_state states.(i) !wsim
        done
      end
      else begin
        (* clone discipline: no trail to rewind, so reconstitute from a
           fresh clone of the root *)
        let sim = Sim.clone sim0 in
        Sim.set_obs sim None;
        Array.iteri
          (fun i d ->
            Schedule.apply sim d;
            states.(i + 1) <- ctx.step_state states.(i) sim)
          target;
        wsim := sim
      end;
      applied := target;
      (m, states.(m))
    in
    (* the stats of the task being run, salvaged on abnormal exit in
       join-merge mode (budget aborts report everything explored) *)
    let inflight : stats option ref = ref None in
    let run_task (t : ptask) =
      let depth, st0 = reposition t in
      let treg =
        if per_task_reg then (if obs_on then Some (Obs.Metrics.create ()) else None)
        else wreg
      in
      Sim.set_obs !wsim treg;
      let wstats = zero_stats () in
      inflight := Some wstats;
      let buf = ref [] in
      let split = Atomic.get created < expand_initial || Atomic.get queued < low_water in
      let cur = ref None in
      let emit (tk : st task) =
        (* the frontier is one level below the task root, so [cur] holds
           exactly the decision that leads to this child *)
        let d = match !cur with Some d -> d | None -> assert false in
        buf := { p_path = t.p_path @ [ d ]; p_crashes = tk.t_crashes } :: !buf
      in
      let wctx =
        {
          ctx with
          stats = wstats;
          stop = (fun () -> Atomic.get stop_flag);
          om = Option.map meters_of treg;
          frontier = (if split then Some (depth + 1, emit) else None);
          cur_dec = cur;
        }
      in
      go wctx !wsim depth t.p_crashes st0;
      (* ---- completion: fold + publish children + clear slot ---- *)
      Mutex.lock acc_mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock acc_mutex)
        (fun () ->
          Mutex.lock my.ws_lock;
          (* [buf] is in reverse decision order; pushing it back-to-front
             makes the owner's LIFO pops follow decision order while
             thieves steal from the other end *)
          List.iter
            (fun c ->
              Atomic.incr live;
              Atomic.incr queued;
              Atomic.incr created;
              Dq.push_back my.ws_dq c)
            !buf;
          my.ws_in_progress <- None;
          Mutex.unlock my.ws_lock;
          Atomic.decr live;
          add_stats ctx.stats wstats;
          inflight := None;
          (if per_task_reg then
             match (acc_reg, treg) with
             | Some a, Some r -> Obs.Metrics.merge ~into:a r
             | _ -> ());
          on_fold ~snapshot);
      match ctx.prog with
      | Some p ->
        Obs.Progress.task_done p;
        Obs.Progress.set_tasks p (Atomic.get created)
      | None -> ()
    in
    let try_pop_own () =
      Mutex.lock my.ws_lock;
      let r = Dq.pop_back my.ws_dq in
      (match r with
      | Some t ->
        my.ws_in_progress <- Some t;
        Atomic.decr queued
      | None -> ());
      Mutex.unlock my.ws_lock;
      r
    in
    let try_steal () =
      let r = ref None in
      let v = ref 1 in
      while !r = None && !v < jobs do
        let s = slots.((w + !v) mod jobs) in
        Mutex.lock s.ws_lock;
        (match Dq.pop_front s.ws_dq with
        | Some t ->
          (* claiming into [my] slot under the victim's lock keeps the
             move atomic for snapshots, which hold every lock *)
          my.ws_in_progress <- Some t;
          Atomic.decr queued;
          r := Some t
        | None -> ());
        Mutex.unlock s.ws_lock;
        incr v
      done;
      !r
    in
    let idle_since = ref 0 in
    let end_idle () =
      if !idle_since <> 0 then begin
        (match midle with
        | Some tm -> Obs.Metrics.Timer.add tm (Obs.Clock.now_ns () - !idle_since)
        | None -> ());
        idle_since := 0
      end
    in
    (* salvage: in join-merge mode a budget abort must still report the
       partial work of the in-flight task (the checkpointing engine
       instead discards it, keeping persisted accumulations exact) *)
    let salvage () =
      end_idle ();
      if not per_task_reg then begin
        match !inflight with
        | Some ws ->
          Mutex.lock acc_mutex;
          add_stats ctx.stats ws;
          Mutex.unlock acc_mutex;
          inflight := None
        | None -> ()
      end
    in
    (* spin briefly, then sleep with exponential backoff (capped at 1ms):
       pure spinning starves the working domains when the host has fewer
       cores than workers, and a capped sleep bounds steal latency when it
       doesn't *)
    let misses = ref 0 in
    let back_off () =
      incr misses;
      if !misses <= 64 then Domain.cpu_relax ()
      else
        Unix.sleepf (Float.min 0.001 (1e-6 *. float_of_int (1 lsl Int.min 10 (!misses - 64))))
    in
    (try
       let running = ref true in
       while !running do
         if Atomic.get stop_flag then running := false
         else
           match try_pop_own () with
           | Some t ->
             end_idle ();
             misses := 0;
             run_task t
           | None -> (
             match try_steal () with
             | Some t ->
               end_idle ();
               misses := 0;
               worker_steals.(w) <- worker_steals.(w) + 1;
               (match msteal with Some c -> Obs.Metrics.Counter.incr c | None -> ());
               run_task t
             | None ->
               if Atomic.get live = 0 then running := false
               else begin
                 if !idle_since = 0 && midle <> None then
                   idle_since := Obs.Clock.now_ns ();
                 back_off ()
               end)
       done;
       end_idle ()
     with
    | Stopped -> salvage ()
    | e ->
      salvage ();
      publish e);
    worker_span.(w) <- (t0, Obs.Clock.now_ns ())
  in
  let domains = List.init (jobs - 1) (fun i -> Domain.spawn (worker (i + 1))) in
  worker 0 ();
  List.iter Domain.join domains;
  (* deterministic join: registries merge sorted by worker id, not in
     whatever order the domains finished *)
  (if not per_task_reg then
     match ctx.om with
     | Some m ->
       Array.iter
         (function Some r -> Obs.Metrics.merge ~into:m.m_reg r | None -> ())
         worker_regs
     | None -> ());
  (if per_task_reg then
     (* per-task registries were folded under the lock; the per-worker
        registries only carry steal/idle engine metrics — merge them in
        worker-id order too *)
     match acc_reg with
     | Some a ->
       Array.iter (function Some r -> Obs.Metrics.merge ~into:a r | None -> ()) worker_regs
     | None -> ());
  (match trace with
  | Some tr ->
    Array.iteri
      (fun w (s0, s1) ->
        Obs.Trace.span tr ~name:"explore.worker" ~start_ns:s0 ~dur_ns:(s1 - s0)
          [
            ("worker", Obs.Trace.Int w);
            ("steals", Obs.Trace.Int worker_steals.(w));
          ])
      worker_span
  | None -> ());
  {
    wsr_failure = Atomic.get failure;
    wsr_pending = snapshot ();
    wsr_created = Atomic.get created;
  }

(** The soundness-checked process-symmetry group of [sim]'s root
    configuration under [cfg], if any: recovery obliviousness is only
    required when [cfg] can actually schedule a crash.  Exposed so the
    CLI can report whether a scenario is being quotiented. *)
let symmetry_group cfg sim =
  let crashes_possible = cfg.max_crashes > 0 && cfg.crash_procs <> [] in
  (* when no crash can be scheduled the crash set is inert: don't let it
     constrain the permutations *)
  Fingerprint.Symmetry.detect ~crashes_possible
    ~crash_procs:(if crashes_possible then cfg.crash_procs else [])
    sim

let trace_symmetry ~trace sym =
  match (sym, trace) with
  | Some g, Some tr ->
    Obs.Trace.event tr ~name:"explore.symmetry"
      [ ("degree", Obs.Trace.Int (Fingerprint.Symmetry.degree g)) ]
  | _ -> ()

(** The generic engine all public entry points share: a DFS threading
    ['st] down the path. *)
let run_gen ~cfg ~jobs ~dedup ~trail ~symmetry ~obs ~progress ~trace ~limits ~init
    ~step_state ~on_terminal sim0 =
  let jobs = max 1 jobs in
  let ctx =
    {
      cfg;
      stats = zero_stats ();
      stop = never_stop;
      seen = (if dedup then Some (Fingerprint.Store.create ()) else None);
      trail;
      step_state;
      on_terminal;
      frontier = None;
      om = Option.map meters_of obs;
      prog = progress;
      limits;
      (* the quotient only matters where fingerprints are compared *)
      sym = (if dedup && symmetry then symmetry_group cfg sim0 else None);
      cur_dec = ref None;
    }
  in
  trace_symmetry ~trace ctx.sym;
  let frontier_pending = ref 0 in
  let exhaust = ref None in
  let t_start = if obs <> None || trace <> None then Obs.Clock.now_ns () else 0 in
  (* the finally block runs on clean completion AND on abort-by-exception
     (Found), so the stats mirror, the total timer, the trace span and
     the final progress line reflect whatever was actually explored *)
  let finish () =
    (match obs with
    | Some reg ->
      let c name v = Obs.Metrics.Counter.add (Obs.Metrics.counter reg name) v in
      c Obs.Names.explore_nodes ctx.stats.nodes;
      c Obs.Names.explore_terminals ctx.stats.terminals;
      c Obs.Names.explore_truncated ctx.stats.truncated;
      c Obs.Names.explore_dedup_pruned ctx.stats.dup;
      (match ctx.seen with
      | Some store ->
        c Obs.Names.explore_store_contention (Fingerprint.Store.contention store)
      | None -> ());
      Obs.Metrics.Timer.add
        (Obs.Metrics.timer reg Obs.Names.explore_time_total)
        (Obs.Clock.now_ns () - t_start)
    | None -> ());
    (match trace with
    | Some tr ->
      Obs.Trace.span tr ~name:"explore.search" ~start_ns:t_start
        ~dur_ns:(Obs.Clock.now_ns () - t_start)
        [
          ("jobs", Obs.Trace.Int jobs);
          ("nodes", Obs.Trace.Int ctx.stats.nodes);
          ("terminals", Obs.Trace.Int ctx.stats.terminals);
          ("truncated", Obs.Trace.Int ctx.stats.truncated);
          ("dup", Obs.Trace.Int ctx.stats.dup);
        ]
    | None -> ());
    match progress with Some p -> Obs.Progress.finish p ~nodes:ctx.stats.nodes | None -> ()
  in
  Fun.protect ~finally:finish (fun () ->
      try
        if jobs = 1 then
          if trail || obs <> None then begin
            (* one private clone for the whole search: an abort-by-exception
               from [on_terminal] skips the pending undos, which must not
               corrupt the caller's machine — and counters attach to the
               clone, never to the caller's machine *)
            let sim = Sim.clone sim0 in
            if trail then Sim.enable_trail sim;
            Sim.set_obs sim obs;
            go ctx sim 0 0 (init sim)
          end
          else go ctx sim0 0 0 (init sim0)
        else begin
          (* the shared root: one obs-attached clone whose [init] runs
             exactly once, so init-time counters land once however many
             workers later clone it (the clones re-point their
             observation before running anything) *)
          let root = Sim.clone sim0 in
          Sim.set_obs root obs;
          let root_state = init root in
          let r =
            ws_run ~ctx ~jobs ~trace ~sim0:root ~root_state
              ~seeds:[ { p_path = []; p_crashes = 0 } ]
              ~per_task_reg:false ~obs_on:(obs <> None)
              ~acc_mutex:(Mutex.create ()) ~acc_reg:None
              ~on_fold:(fun ~snapshot:_ -> ())
          in
          frontier_pending := List.length r.wsr_pending;
          (match obs with
          | Some reg ->
            Obs.Metrics.Counter.add
              (Obs.Metrics.counter reg Obs.Names.explore_tasks)
              r.wsr_created
          | None -> ());
          match r.wsr_failure with Some e -> raise e | None -> ()
        end
      with Out_of_budget reason ->
        (* budget aborts are verdicts, not failures: the stats accumulated
           so far (partial worker stats included, merged by [run_tasks])
           describe real coverage *)
        exhaust :=
          Some
            {
              ex_reason = reason;
              ex_frontier = !frontier_pending;
              ex_degraded =
                (match limits with Some l -> Atomic.get l.l_degraded | None -> []);
            };
        (match trace with
        | Some tr ->
          Obs.Trace.event tr ~name:"explore.exhausted"
            [
              ("reason", Obs.Trace.Str (exhaust_reason_name reason));
              ("frontier", Obs.Trace.Int !frontier_pending);
            ]
        | None -> ()));
  (ctx.stats, !exhaust)

(** Depth-first enumeration of all schedules of [sim0] under [cfg],
    calling [on_terminal] on every completed execution.  Returns the
    statistics.  [on_terminal] may raise to abort the search (e.g. on
    the first counterexample).

    [trail] (default true) selects in-place backtracking; the machine
    passed to [on_terminal] and [on_step] is then the search's working
    machine, valid only for the duration of the callback — {!Sim.clone}
    it to keep it.  With [trail = false] every callback receives an
    independent machine.  Statistics are identical either way.

    [on_step] is invoked after every applied decision with the resulting
    configuration — the hook incremental path analyses attach to.

    With [jobs > 1] the tree is split at an adaptive frontier and
    subtrees run concurrently on that many domains; [on_terminal] must
    then be safe to call from several domains at once (checks that only
    touch their own [Sim.t] argument, like the NRL checkers, are).  Use
    {!auto_jobs} to pick a fan-out matching the host.  With [dedup]
    branches reaching a configuration whose fingerprint (including the
    crash budget spent) was already visited are pruned and counted in
    [stats.dup]. *)
let dfs ?(cfg = default_config) ?(jobs = 1) ?(dedup = false) ?(trail = true)
    ?(symmetry = true) ?obs ?progress ?trace ?(budget = no_budget) ?should_stop
    ?on_exhausted ?on_step ~on_terminal sim0 =
  let step_state =
    match on_step with
    | None -> fun () _ -> ()
    | Some f ->
      fun () sim ->
        f sim;
        ()
  in
  let limits = limits_of ~budget ~should_stop in
  let stats, exhaust =
    run_gen ~cfg ~jobs ~dedup ~trail ~symmetry ~obs ~progress ~trace ~limits
      ~init:(fun _ -> ())
      ~step_state
      ~on_terminal:(fun () sim -> on_terminal sim)
      sim0
  in
  (match (exhaust, on_exhausted) with Some e, Some f -> f e | _ -> ());
  stats

(** Search for the first terminal execution that fails the check.
    Returns the violating machine (with its full history) if one exists,
    plus the statistics.

    [check_mode] selects how the verdict is computed: [`Terminal] (the
    default) calls [check] on each complete execution from scratch;
    [`Incremental pc] threads [pc]'s state down the path so work done on
    a shared schedule prefix is shared by all terminals below it, and
    [check] is unused.  Both modes return the same verdict for sound
    checkers (cross-checked in the test suite).

    [jobs], [dedup] and [trail] as in {!dfs}; with [jobs > 1] {e which}
    counterexample is returned may vary between runs, but whether one
    exists does not (and without [dedup], neither do the statistics).
    The returned machine is always an independent snapshot, whatever the
    branching discipline. *)
let find_violation ?(cfg = default_config) ?(jobs = 1) ?(dedup = false) ?(trail = true)
    ?(symmetry = true) ?obs ?progress ?trace ?(budget = no_budget) ?should_stop
    ?on_exhausted ?(check_mode = `Terminal) ~check sim0 =
  (* in trail mode the machine at a terminal is the search's working
     machine, about to be rewound: capture an independent snapshot *)
  let capture sim = if trail then Sim.clone sim else sim in
  let limits = limits_of ~budget ~should_stop in
  try
    let stats, exhaust =
      match (check_mode : check_mode) with
      | `Terminal ->
        run_gen ~cfg ~jobs ~dedup ~trail ~symmetry ~obs ~progress ~trace ~limits
          ~init:(fun _ -> ())
          ~step_state:(fun () _ -> ())
          ~on_terminal:(fun () sim ->
            match check sim with
            | Some reason -> raise (Found (capture sim, reason))
            | None -> ())
          sim0
      | `Incremental (Path p) ->
        run_gen ~cfg ~jobs ~dedup ~trail ~symmetry ~obs ~progress ~trace ~limits
          ~init:p.init ~step_state:p.step
          ~on_terminal:(fun st sim ->
            match p.terminal st sim with
            | Some reason -> raise (Found (capture sim, reason))
            | None -> ())
          sim0
    in
    (match (exhaust, on_exhausted) with Some e, Some f -> f e | _ -> ());
    (None, stats)
  with Found (sim, reason) ->
    (match trace with
    | Some tr -> Obs.Trace.event tr ~name:"explore.violation" [ ("reason", Obs.Trace.Str reason) ]
    | None -> ());
    (Some (sim, reason), zero_stats ())

(* {1 The resilient engine: task-partitioned, budgeted, checkpointable} *)

(** Where and how often to checkpoint; see {!sweep}. *)
type checkpoint_spec = {
  cp_path : string;
  cp_interval_s : float;  (** minimum seconds between periodic saves *)
  cp_scenario : (string * string) list;
      (** stamp persisted into the checkpoint; a resume must present an
          equal stamp (the CLI enforces this) *)
}

(** The resilient search: always partitions the tree into frontier tasks
    (even at [jobs = 1] — by the engine-invariance property the
    statistics do not depend on the partition), processes them on a
    worker pool that folds each {e completed} task's statistics and
    metrics into an accumulator, and (with [checkpoint]) persists the
    accumulator plus per-task completion flags atomically — periodically
    and at every outcome.  In-flight tasks are discarded by a kill and
    re-run from their recorded decision paths on [resume], which is what
    makes a resumed run's verdict and counters exactly equal to an
    uninterrupted run's (the one exception is [dedup]: the visited store
    is rebuilt from scratch on resume, so dup/node counts can shift —
    verdicts remain sound either way).

    Returns the outcome and the coverage achieved.  Unlike
    {!find_violation}, the statistics are returned for every outcome,
    including [Violation] (they describe the work done up to the
    abort). *)
let sweep ?(cfg = default_config) ?(jobs = 1) ?(dedup = false) ?(trail = true)
    ?(symmetry = true) ?obs ?progress ?trace ?(budget = no_budget) ?should_stop
    ?checkpoint ?resume ?(check_mode = `Terminal) ~check sim0 =
  let jobs = max 1 jobs in
  (match resume with
  | Some ck when ck.Checkpoint.result <> None ->
    invalid_arg "Explore.sweep: checkpoint is already finalized (it carries a verdict)"
  | _ -> ());
  let run (type st) (init : Sim.t -> st) (step : st -> Sim.t -> st)
      (term : st -> Sim.t -> string option) =
    let t_start = Obs.Clock.now_ns () in
    let limits = limits_of ~budget ~should_stop in
    (* the accumulator registry exists whenever anyone will read metrics —
       the caller ([obs]) or a checkpoint file *)
    let obs_on = obs <> None || checkpoint <> None || resume <> None in
    let acc = zero_stats () in
    let acc_reg = if obs_on then Some (Obs.Metrics.create ()) else None in
    let acc_mutex = Mutex.create () in
    let capture sim = if trail then Sim.clone sim else sim in
    let ctx0 =
      {
        cfg;
        stats = acc;
        stop = never_stop;
        seen = (if dedup then Some (Fingerprint.Store.create ()) else None);
        trail;
        step_state = step;
        on_terminal =
          (fun st sim ->
            match term st sim with
            | Some reason -> raise (Found (capture sim, reason))
            | None -> ());
        frontier = None;
        om = Option.map meters_of acc_reg;
        prog = progress;
        limits;
        sym = (if dedup && symmetry then symmetry_group cfg sim0 else None);
        cur_dec = ref None;
      }
    in
    trace_symmetry ~trace ctx0.sym;
    (* ---- seeds: the root task, or the checkpointed pending set ---- *)
    let seeds =
      match resume with
      | Some ck ->
        (* adopt the persisted accumulations: totals and metrics cover
           exactly the tasks already completed *)
        acc.nodes <- ck.Checkpoint.totals.Checkpoint.ck_nodes;
        acc.terminals <- ck.Checkpoint.totals.Checkpoint.ck_terminals;
        acc.truncated <- ck.Checkpoint.totals.Checkpoint.ck_truncated;
        acc.dup <- ck.Checkpoint.totals.Checkpoint.ck_dup;
        (match acc_reg with
        | Some reg ->
          List.iter (fun (n, v) -> Obs.Metrics.absorb ~into:reg n v) ck.Checkpoint.metrics
        | None -> ());
        let pending =
          Array.to_list ck.Checkpoint.tasks
          |> List.filter_map (fun t ->
                 if t.Checkpoint.ck_done then None
                 else
                   Some
                     { p_path = t.Checkpoint.ck_path; p_crashes = t.Checkpoint.ck_crashes })
        in
        (match trace with
        | Some tr ->
          Obs.Trace.event tr ~name:"explore.resume"
            [
              ("tasks", Obs.Trace.Int (Array.length ck.Checkpoint.tasks));
              ("pending", Obs.Trace.Int (List.length pending));
            ]
        | None -> ());
        pending
      | None -> [ { p_path = []; p_crashes = 0 } ]
    in
    let finish_obs () =
      (match obs with
      | Some reg ->
        (match acc_reg with Some a -> Obs.Metrics.merge ~into:reg a | None -> ());
        let c name v = Obs.Metrics.Counter.add (Obs.Metrics.counter reg name) v in
        c Obs.Names.explore_nodes acc.nodes;
        c Obs.Names.explore_terminals acc.terminals;
        c Obs.Names.explore_truncated acc.truncated;
        c Obs.Names.explore_dedup_pruned acc.dup;
        Obs.Metrics.Timer.add
          (Obs.Metrics.timer reg Obs.Names.explore_time_total)
          (Obs.Clock.now_ns () - t_start)
      | None -> ());
      (match trace with
      | Some tr ->
        Obs.Trace.span tr ~name:"explore.search" ~start_ns:t_start
          ~dur_ns:(Obs.Clock.now_ns () - t_start)
          [
            ("jobs", Obs.Trace.Int jobs);
            ("nodes", Obs.Trace.Int acc.nodes);
            ("terminals", Obs.Trace.Int acc.terminals);
            ("truncated", Obs.Trace.Int acc.truncated);
            ("dup", Obs.Trace.Int acc.dup);
          ]
      | None -> ());
      match progress with Some p -> Obs.Progress.finish p ~nodes:acc.nodes | None -> ()
    in
    (* persist the {e pending} task set: a resume re-seeds the pool with
       exactly these paths, and the adopted totals/metrics cover exactly
       the completed tasks — nothing is counted twice, nothing is lost *)
    let save_ck ~pending ~result () =
      match checkpoint with
      | None -> ()
      | Some spec ->
        let tasks =
          Array.of_list
            (List.map
               (fun t ->
                 { Checkpoint.ck_path = t.p_path; ck_crashes = t.p_crashes; ck_done = false })
               pending)
        in
        Checkpoint.save ~path:spec.cp_path
          {
            Checkpoint.scenario = spec.cp_scenario;
            tasks;
            totals =
              {
                Checkpoint.ck_nodes = acc.nodes;
                ck_terminals = acc.terminals;
                ck_truncated = acc.truncated;
                ck_dup = acc.dup;
              };
            metrics = (match acc_reg with Some r -> Obs.Metrics.to_list r | None -> []);
            result;
          };
        (match trace with
        | Some tr ->
          Obs.Trace.event tr ~name:"explore.checkpoint.save"
            [
              ("pending", Obs.Trace.Int (Array.length tasks));
              ("final", Obs.Trace.Bool (result <> None));
            ]
        | None -> ())
    in
    (* an initial save right away: a kill during early processing can
       already resume *)
    save_ck ~pending:seeds ~result:None ();
    (match progress with
    | Some p -> Obs.Progress.set_tasks p (List.length seeds)
    | None -> ());
    let last_save = ref (Obs.Clock.now_ns ()) in
    (* runs under [acc_mutex] at every task completion; [snapshot] walks
       every deque and in-progress slot under their locks, so the saved
       pending set is exactly the live pool at a fold boundary *)
    let on_fold ~snapshot =
      match checkpoint with
      | Some spec ->
        let now = Obs.Clock.now_ns () in
        if float_of_int (now - !last_save) >= spec.cp_interval_s *. 1e9 then begin
          last_save := now;
          save_ck ~pending:(snapshot ()) ~result:None ()
        end
      | None -> ()
    in
    (* the root: [init] runs once, its counters (if any) landing on the
       accumulator on a fresh run; on resume they were absorbed from the
       checkpoint already, so the replayed init must count nothing *)
    let root = Sim.clone sim0 in
    (match resume with
    | None -> Sim.set_obs root acc_reg
    | Some _ -> Sim.set_obs root None);
    let root_state = init root in
    let r =
      ws_run ~ctx:ctx0 ~jobs ~trace ~sim0:root ~root_state ~seeds ~per_task_reg:true
        ~obs_on ~acc_mutex ~acc_reg ~on_fold
    in
    (match acc_reg with
    | Some reg ->
      Obs.Metrics.Counter.add
        (Obs.Metrics.counter reg Obs.Names.explore_tasks)
        r.wsr_created;
      (match ctx0.seen with
      | Some store ->
        Obs.Metrics.Counter.add
          (Obs.Metrics.counter reg Obs.Names.explore_store_contention)
          (Fingerprint.Store.contention store)
      | None -> ())
    | None -> ());
    let outcome =
      match r.wsr_failure with
      | Some (Found (sim, reason)) ->
        (match trace with
        | Some tr ->
          Obs.Trace.event tr ~name:"explore.violation" [ ("reason", Obs.Trace.Str reason) ]
        | None -> ());
        save_ck ~pending:r.wsr_pending ~result:(Some ("violation", reason)) ();
        Violation (sim, reason)
      | Some (Out_of_budget reason) ->
        save_ck ~pending:r.wsr_pending ~result:None ();
        let ex =
          {
            ex_reason = reason;
            ex_frontier = List.length r.wsr_pending;
            ex_degraded =
              (match limits with Some l -> Atomic.get l.l_degraded | None -> []);
          }
        in
        (match trace with
        | Some tr ->
          Obs.Trace.event tr ~name:"explore.exhausted"
            [
              ("reason", Obs.Trace.Str (exhaust_reason_name reason));
              ("frontier", Obs.Trace.Int ex.ex_frontier);
            ]
        | None -> ());
        Exhausted ex
      | Some e -> raise e
      | None ->
        save_ck ~pending:[] ~result:(Some ("clean", "")) ();
        Clean
    in
    finish_obs ();
    (outcome, acc)
  in
  match (check_mode : check_mode) with
  | `Terminal -> run (fun _ -> ()) (fun () _ -> ()) (fun () sim -> check sim)
  | `Incremental (Path p) -> run p.init p.step p.terminal
