(** Exhaustive bounded exploration of schedules.

    For small instances (a few processes, a few operations each, a
    bounded crash budget) the decision tree is small enough to enumerate
    completely — this is what lets the checkers examine {e every} history
    of a bounded instance, turning the paper's universally quantified
    correctness lemmas into machine-checked facts for those bounds.

    Two branching disciplines share one traversal core:

    - {e trail-based in-place backtracking} (the default): the search
      mutates a single machine, taking a {!Sim.mark} before each decision
      and {!Sim.undo_to}-ing it afterwards, so the per-branch cost is the
      few mutations of one step instead of a whole-machine deep copy; and
    - {e clone-per-branch} ([trail = false]): the historical engine,
      copying the machine at every branch point.  Kept as the baseline
      the benchmarks compare against, and because a clone-mode traversal
      hands [on_terminal] a machine that stays valid after the callback
      returns.

    Both visit the same nodes in the same order, so every statistic is
    identical across the two.

    The engine is also domain-parallel: with [jobs > 1] the shallowest
    part of the tree is first expanded breadth-first (in clone mode, so
    each pending subtree root owns an independent machine) until it holds
    enough tasks, which are then fanned out across OCaml 5 domains, each
    running the sequential search — trailed on its own machine — over its
    subtrees.  Statistics are summed at the join; a shared atomic flag
    stops every worker as soon as one finds a violation.  Every node is
    processed exactly once by the same code either way, so
    [terminals]/[truncated]/[nodes] are identical for every [jobs] value.

    Orthogonally, {e state deduplication} ([dedup]) prunes a branch when
    the machine configuration's {!Fingerprint} — extended with the crash
    budget already consumed on the current path, which determines how
    many crash decisions the future still offers — has been visited
    before: converging schedule prefixes are explored once.  Fingerprint
    equality (budget included) implies identical future subtrees, so the
    pruned subtree's behaviours are exactly the representative's — but
    the {e prefix} histories differ, so checks that depend on the full
    history (NRL does) are verified against one representative prefix
    per state.  Deduplicated search is therefore a fast
    under-approximation: any violation it reports is real, while a clean
    sweep certifies one representative history per reachable
    configuration rather than all of them.  See docs/model.md for the
    full soundness discussion. *)

type config = {
  max_steps : int;  (** depth bound per branch (guards busy-wait loops) *)
  max_crashes : int;  (** total crash budget across all processes *)
  crash_procs : int list;  (** processes allowed to crash *)
  crash_mid_op_only : bool;
      (** restrict crash steps to processes with a pending operation *)
  immediate_recovery : bool;
      (** if set, the only decision after a crash of [p] is [Drecover p]
          (smaller trees); otherwise recovery interleaves adversarially *)
  reduce_local : bool;
      (** partial-order reduction: fire local (non-shared-access)
          transitions eagerly, responses first.  Sound and complete for
          violation search — see {!Sim.next_is_local} *)
}

let default_config =
  {
    max_steps = 200;
    max_crashes = 1;
    crash_procs = [];
    crash_mid_op_only = true;
    immediate_recovery = false;
    reduce_local = true;
  }

type stats = {
  mutable terminals : int;  (** complete executions reached *)
  mutable truncated : int;  (** branches cut by the depth bound *)
  mutable nodes : int;
  mutable dup : int;  (** branches pruned by state deduplication *)
}

let zero_stats () = { terminals = 0; truncated = 0; nodes = 0; dup = 0 }

let add_stats into s =
  into.terminals <- into.terminals + s.terminals;
  into.truncated <- into.truncated + s.truncated;
  into.nodes <- into.nodes + s.nodes;
  into.dup <- into.dup + s.dup

let auto_jobs () = max 1 (Domain.recommended_domain_count ())

let decisions cfg ~crashes sim =
  let n = Sim.nprocs sim in
  let all = List.init n Fun.id in
  let crashed = List.filter (fun p -> Sim.can_recover sim p) all in
  if cfg.immediate_recovery && crashed <> [] then
    List.map (fun p -> Schedule.Drecover p) crashed
  else begin
    let crashes_d =
      if crashes >= cfg.max_crashes then []
      else
        List.filter_map
          (fun p ->
            if Sim.can_crash ~mid_op_only:cfg.crash_mid_op_only sim p then
              Some (Schedule.Dcrash p)
            else None)
          cfg.crash_procs
    in
    let locals =
      if cfg.reduce_local then
        List.filter (fun p -> Sim.enabled sim p && Sim.next_is_local sim p) all
      else []
    in
    match locals with
    | _ :: _ ->
      (* fire one local transition deterministically (responses first);
         crash decisions are still offered so every crash position is
         reachable *)
      let pick =
        match List.filter (fun p -> Sim.next_is_ret sim p) locals with
        | p :: _ -> p
        | [] -> List.hd locals
      in
      Schedule.Dstep pick :: crashes_d
    | [] ->
      let steps =
        List.filter_map
          (fun p -> if Sim.enabled sim p then Some (Schedule.Dstep p) else None)
          all
      in
      let recoveries = List.map (fun p -> Schedule.Drecover p) crashed in
      steps @ recoveries @ crashes_d
  end

(* terminal: every process either completed its script or is down for
   good (a crash may be a process's last step, per Definition 3) *)
let terminal sim =
  Sim.all_done sim
  || (let n = Sim.nprocs sim in
      let rec ok p =
        p >= n
        || ((Sim.status sim p = Sim.Crashed || not (Sim.enabled sim p)) && ok (p + 1))
      in
      ok 0)

exception Found of Sim.t * string

exception Stopped
(* raised inside a worker when another worker has flipped the stop flag *)

(** A path checker: per-path state threaded down the DFS, updated after
    every applied decision and asked for a verdict at each terminal.  The
    state type is existential — the explorer only moves values of it
    around — which lets {!Checker}-level state live above this library in
    the dependency order (see [Workload.Check.nrl_incremental]). *)
type path_checker =
  | Path : {
      init : Sim.t -> 'st;
          (** state for the root configuration (folds any history the
              machine recorded during setup) *)
      step : 'st -> Sim.t -> 'st;
          (** consume the history suffix the last decision appended; must
              be pure in ['st] (the same state value is reused across
              sibling branches) and must not retain [Sim.t] *)
      terminal : 'st -> Sim.t -> string option;
          (** verdict for a complete execution, [Some reason] = violation *)
    }
      -> path_checker

type check_mode = [ `Terminal | `Incremental of path_checker ]

(** {1 Budgets}

    Resource bounds on a search.  Budgets make long-running verification
    degrade instead of dying: exceeding the visited-store cap drops the
    dedup store (a degradation — the search keeps going, unpruned) while
    exceeding the deadline or the node budget aborts with a structured
    partial verdict rather than an exception or an unbounded run. *)
type budget = {
  deadline_s : float option;  (** wall-clock bound, seconds from the start of the call *)
  max_nodes : int option;  (** bound on nodes processed (across all domains) *)
  max_visited : int option;
      (** cap on the dedup visited store, in fingerprints; past it, the
          store is dropped (degradation, not abort) *)
}

let no_budget = { deadline_s = None; max_nodes = None; max_visited = None }

type exhaust_reason = [ `Deadline | `Nodes | `Interrupted ]

let exhaust_reason_name = function
  | `Deadline -> "deadline"
  | `Nodes -> "max-nodes"
  | `Interrupted -> "interrupted"

(** A budget-exhausted partial verdict.  The coverage achieved is the
    [stats] value returned alongside: everything counted there was really
    explored and judged. *)
type exhausted = {
  ex_reason : exhaust_reason;
  ex_frontier : int;
      (** independent subtree tasks not yet completed (0 when the search
          was not partitioned) *)
  ex_degraded : string list;
      (** degradation steps taken before giving up, oldest first *)
}

(** Verdict of a budgeted, resumable search ({!sweep}). *)
type outcome =
  | Clean  (** every schedule within the bounds explored, no violation *)
  | Violation of Sim.t * string
  | Exhausted of exhausted

exception Out_of_budget of exhaust_reason
(* internal: unwinds workers when a budget trips; never escapes the
   public entry points *)

(* Budget enforcement state shared by every traversal of one search.
   The node count is a single atomic across domains, so [max_nodes] cuts
   at the same global count wherever the work landed; the deadline and
   the stop callback are polled every [poll_mask + 1] nodes. *)
type limits = {
  l_deadline_ns : int;  (** absolute Clock reading; [max_int] = none *)
  l_max_nodes : int;  (** [max_int] = none *)
  l_nodes : int Atomic.t;
  l_max_visited : int;  (** [max_int] = none *)
  l_dedup_on : bool Atomic.t;
  l_degraded : string list Atomic.t;
  l_should_stop : unit -> bool;
}

let poll_mask = 63

let limits_of ~budget ~should_stop =
  match (budget, should_stop) with
  | { deadline_s = None; max_nodes = None; max_visited = None }, None -> None
  | _ ->
    Some
      {
        l_deadline_ns =
          (match budget.deadline_s with
          | None -> max_int
          | Some s -> Obs.Clock.now_ns () + int_of_float (s *. 1e9));
        l_max_nodes = Option.value budget.max_nodes ~default:max_int;
        l_nodes = Atomic.make 0;
        l_max_visited = Option.value budget.max_visited ~default:max_int;
        l_dedup_on = Atomic.make true;
        l_degraded = Atomic.make [];
        l_should_stop = Option.value should_stop ~default:(fun () -> false);
      }

(* Per-processed-node budget check.  With dedup on, the visited store
   holds exactly one fingerprint per processed node, so the global node
   counter doubles as the store-size reading — no locked cardinality
   scans on the hot path. *)
let check_limits l =
  let n = Atomic.fetch_and_add l.l_nodes 1 + 1 in
  if n > l.l_max_nodes then raise (Out_of_budget `Nodes);
  if
    n > l.l_max_visited
    && Atomic.get l.l_dedup_on
    && Atomic.compare_and_set l.l_dedup_on true false
  then
    Atomic.set l.l_degraded
      (Atomic.get l.l_degraded @ [ "dedup-store-dropped:visited-cap" ]);
  if n land poll_mask = 0 then begin
    if Obs.Clock.now_ns () > l.l_deadline_ns then raise (Out_of_budget `Deadline);
    if l.l_should_stop () then raise (Out_of_budget `Interrupted)
  end

(* Pre-resolved handles for the explorer's per-phase timers.  Each
   traversal context owns its meters — the parallel engine gives every
   worker a private registry (merged at the join, in worker order), so
   timing the hot loop never touches cross-domain state. *)
type meters = {
  m_reg : Obs.Metrics.t;
  m_step : Obs.Metrics.timer;
  m_check : Obs.Metrics.timer;
  m_dedup : Obs.Metrics.timer;
}

let meters_of reg =
  {
    m_reg = reg;
    m_step = Obs.Metrics.timer reg Obs.Names.explore_time_step;
    m_check = Obs.Metrics.timer reg Obs.Names.explore_time_check;
    m_dedup = Obs.Metrics.timer reg Obs.Names.explore_time_dedup;
  }

(* Timing helpers that vanish when unobserved: [now_if] reads the clock
   only when meters are attached, [lap] charges the elapsed time to the
   selected timer. *)
let now_if om = match om with Some _ -> Obs.Clock.now_ns () | None -> 0

let lap om sel t0 =
  match om with Some m -> Obs.Metrics.Timer.add (sel m) (Obs.Clock.now_ns () - t0) | None -> ()

(* Progress ticks are batched: each traversal bumps the shared atomic
   once per [tick_batch] of its own nodes, keeping the per-node cost at
   one private increment. *)
let tick_batch = 8192

(** A pending subtree: a machine owned by the task plus the depth, crash
    count and path-checker state at its root.  [t_path] is the decision
    path from the search root (newest first); it is threaded only by the
    frontier expansion of checkpointing searches and stays [[]]
    otherwise. *)
type 'st task = {
  t_sim : Sim.t;
  t_depth : int;
  t_crashes : int;
  t_state : 'st;
  t_path : Schedule.decision list;
}

(** Everything one traversal needs.  [frontier = Some (d, emit)] turns
    recursion at depth [>= d] into task emission — the frontier-expansion
    phase of the parallel engine processes nodes one BFS level at a time
    through the very same code path the workers later run, so every node
    is visited exactly once regardless of where the tree is split. *)
type 'st ctx = {
  cfg : config;
  stats : stats;
  stop : unit -> bool;
  seen : Fingerprint.Store.t option;
  trail : bool;  (** branch by mark/undo on one machine vs clone-per-branch *)
  step_state : 'st -> Sim.t -> 'st;
  on_terminal : 'st -> Sim.t -> unit;
  frontier : (int * ('st task -> unit)) option;
  om : meters option;  (** this traversal's private phase timers *)
  prog : Obs.Progress.t option;  (** shared across workers; tick-batched *)
  limits : limits option;  (** budget enforcement; [None] costs nothing *)
  cur_dec : Schedule.decision option ref;
      (** the decision [branch] is currently under — written only while a
          frontier is active (single-domain expansion), read by the emit
          hook to reconstruct task paths *)
}

let rec go : 'st. 'st ctx -> Sim.t -> int -> int -> 'st -> unit =
 fun ctx sim depth crashes st ->
  if ctx.stop () then raise Stopped;
  match ctx.frontier with
  | Some (fd, emit) when depth >= fd ->
    emit { t_sim = sim; t_depth = depth; t_crashes = crashes; t_state = st; t_path = [] }
  | _ ->
    let fresh =
      match ctx.seen with
      | None -> true
      | Some store
        when match ctx.limits with
             | Some l -> Atomic.get l.l_dedup_on
             | None -> true ->
        let t0 = now_if ctx.om in
        let r = Fingerprint.Store.add store (Fingerprint.of_sim ~extra:crashes sim) in
        lap ctx.om (fun m -> m.m_dedup) t0;
        r
      | Some _ -> (* dedup store dropped by budget degradation *) true
    in
    if not fresh then
      (* an equivalent configuration (same remaining crash budget) was
         reached by another prefix: its futures have already been (or are
         being) explored *)
      ctx.stats.dup <- ctx.stats.dup + 1
    else begin
      let stats = ctx.stats in
      stats.nodes <- stats.nodes + 1;
      (match ctx.limits with Some l -> check_limits l | None -> ());
      (match ctx.prog with
      | Some p when stats.nodes land (tick_batch - 1) = 0 -> Obs.Progress.tick p ~nodes:tick_batch
      | _ -> ());
      if Sim.all_done sim then begin
        stats.terminals <- stats.terminals + 1;
        let t0 = now_if ctx.om in
        ctx.on_terminal st sim;
        lap ctx.om (fun m -> m.m_check) t0
      end
      else if terminal sim then begin
        (* some process is down with no one else runnable: this is a
           complete execution (check it), but recovery may still extend it *)
        stats.terminals <- stats.terminals + 1;
        let t0 = now_if ctx.om in
        ctx.on_terminal st sim;
        lap ctx.om (fun m -> m.m_check) t0;
        if depth < ctx.cfg.max_steps then
          List.iter
            (fun d -> branch ctx sim depth crashes st d)
            (decisions ctx.cfg ~crashes sim)
      end
      else if depth >= ctx.cfg.max_steps then stats.truncated <- stats.truncated + 1
      else begin
        let ds = decisions ctx.cfg ~crashes sim in
        match ds with
        | [] ->
          (* deadlock: crashed processes that may not recover, or empty
             scripts; count as truncated so callers notice *)
          stats.truncated <- stats.truncated + 1
        | _ ->
          List.iter
            (fun d ->
              let crashes' =
                match d with Schedule.Dcrash _ -> crashes + 1 | _ -> crashes
              in
              branch ctx sim depth crashes' st d)
            ds
      end
    end

(* One child edge: apply the decision, advance the path-checker state on
   the appended history suffix, recurse.  Trail mode reverts the shared
   machine afterwards; clone mode gives the child its own machine and
   leaves the parent untouched.  [crashes] is the child's crash count:
   callers charge crash decisions at ordinary interior nodes, while the
   terminal-but-extendable path deliberately passes its own count through
   unchanged (see [go]) to keep node accounting identical with the
   historical engine. *)
and branch : 'st. 'st ctx -> Sim.t -> int -> int -> 'st -> Schedule.decision -> unit =
 fun ctx sim depth crashes st d ->
  (* the [now_if]/[lap] pairs compile to nothing when unobserved; the
     recursive [go] call is never inside a timed interval *)
  (match ctx.frontier with
  | Some _ -> ctx.cur_dec := Some d (* expansion is single-domain; see [expand_frontier] *)
  | None -> ());
  if ctx.trail then begin
    let t0 = now_if ctx.om in
    let m = Sim.mark sim in
    Schedule.apply sim d;
    lap ctx.om (fun mt -> mt.m_step) t0;
    let t1 = now_if ctx.om in
    let st' = ctx.step_state st sim in
    lap ctx.om (fun mt -> mt.m_check) t1;
    go ctx sim (depth + 1) crashes st';
    let t2 = now_if ctx.om in
    Sim.undo_to sim m;
    lap ctx.om (fun mt -> mt.m_step) t2
  end
  else begin
    let t0 = now_if ctx.om in
    let s = Sim.clone sim in
    Schedule.apply s d;
    lap ctx.om (fun mt -> mt.m_step) t0;
    let t1 = now_if ctx.om in
    let st' = ctx.step_state st s in
    lap ctx.om (fun mt -> mt.m_check) t1;
    go ctx s (depth + 1) crashes st'
  end

let never_stop () = false

(* {1 The parallel engine} *)

(** Expand the shallow part of the tree breadth-first until at least
    [target] independent subtree roots are pending (or the tree is
    exhausted).  Interior nodes and shallow terminals are processed —
    and counted — here, through {!go} with a one-level frontier, so the
    split point does not change any statistic.  Expansion runs in clone
    mode regardless of [ctx.trail]: each emitted task must own a machine
    that survives past the expansion loop. *)
let expand_frontier ~ctx ~target ~init sim0 =
  let q = Queue.create () in
  Queue.push { t_sim = sim0; t_depth = 0; t_crashes = 0; t_state = init sim0; t_path = [] } q;
  while (not (Queue.is_empty q)) && Queue.length q < target do
    let t = Queue.pop q in
    (* [cur_dec] is the decision the expansion traversal is currently
       branching under; combined with the popped task's own path it gives
       every emitted child its full decision path from the root.  The
       expansion loop is single-domain and one BFS level deep, so one
       cell per popped task suffices. *)
    let cur = ref None in
    let emit t' =
      let t_path = match !cur with Some d -> d :: t.t_path | None -> t.t_path in
      Queue.push { t' with t_path } q
    in
    let ctx =
      { ctx with trail = false; frontier = Some (t.t_depth + 1, emit); cur_dec = cur }
    in
    go ctx t.t_sim t.t_depth t.t_crashes t.t_state
  done;
  Array.init (Queue.length q) (fun _ -> Queue.pop q)

(** Run [tasks] to completion on [jobs] domains.  Work is claimed from a
    shared atomic index; each worker accumulates private statistics
    (summed into [ctx.stats] at the join).  In trail mode each worker
    enables the trail on each task's machine — tasks own their machines,
    so the in-place discipline stays single-domain.  The first worker to
    catch {!Found} publishes it and flips the stop flag; any other
    exception is also published and re-raised in the caller, so
    [on_terminal]'s abort-by-exception contract survives parallelism. *)
let run_tasks ~ctx ~jobs ~trace ~pending tasks =
  let n = Array.length tasks in
  let completed = Atomic.make 0 in
  if n > 0 then begin
    let next = Atomic.make 0 in
    let stop_flag = Atomic.make false in
    let failure : exn option Atomic.t = Atomic.make None in
    let publish e =
      if Atomic.compare_and_set failure None (Some e) then ();
      Atomic.set stop_flag true
    in
    let worker_stats = Array.init jobs (fun _ -> zero_stats ()) in
    (* one private registry per worker: instrumentation stays
       single-domain and the join below merges them in worker order, so
       aggregated counters are exact, deterministic sums *)
    let worker_obs =
      match ctx.om with
      | None -> [||]
      | Some _ -> Array.init jobs (fun _ -> meters_of (Obs.Metrics.create ()))
    in
    let worker_span = Array.make jobs (0, 0) in
    let worker w () =
      let t0 = Obs.Clock.now_ns () in
      let wctx =
        {
          ctx with
          stats = worker_stats.(w);
          stop = (fun () -> Atomic.get stop_flag);
          frontier = None;
          om = (if worker_obs = [||] then None else Some worker_obs.(w));
        }
      in
      (try
         let continue = ref true in
         while !continue do
           let i = Atomic.fetch_and_add next 1 in
           if i >= n then continue := false
           else begin
             let t = tasks.(i) in
             if wctx.trail then Sim.enable_trail t.t_sim;
             (* the task owns its machine: re-point its counters at this
                worker's registry (they arrive attached to the parent's) *)
             (match wctx.om with
             | Some m -> Sim.set_obs t.t_sim (Some m.m_reg)
             | None -> ());
             go wctx t.t_sim t.t_depth t.t_crashes t.t_state;
             Atomic.incr completed;
             match ctx.prog with Some p -> Obs.Progress.task_done p | None -> ()
           end
         done
       with
      | Stopped -> ()
      | e -> publish e);
      worker_span.(w) <- (t0, Obs.Clock.now_ns ())
    in
    let domains = List.init (jobs - 1) (fun w -> Domain.spawn (worker (w + 1))) in
    worker 0 ();
    List.iter Domain.join domains;
    (* deterministic joins: stats and registries merge in worker order *)
    Array.iter (add_stats ctx.stats) worker_stats;
    (match ctx.om with
    | Some m ->
      Array.iter (fun wm -> Obs.Metrics.merge ~into:m.m_reg wm.m_reg) worker_obs
    | None -> ());
    (match trace with
    | Some tr ->
      Array.iteri
        (fun w (t0, t1) ->
          Obs.Trace.span tr ~name:"explore.worker" ~start_ns:t0 ~dur_ns:(t1 - t0)
            [
              ("worker", Obs.Trace.Int w);
              ("nodes", Obs.Trace.Int worker_stats.(w).nodes);
              ("terminals", Obs.Trace.Int worker_stats.(w).terminals);
            ])
        worker_span
    | None -> ());
    (* recorded before the re-raise so budget aborts can report how much
       of the partition was left *)
    pending := n - Atomic.get completed;
    match Atomic.get failure with Some e -> raise e | None -> ()
  end

(** The generic engine all public entry points share: a DFS threading
    ['st] down the path. *)
let run_gen ~cfg ~jobs ~dedup ~trail ~obs ~progress ~trace ~limits ~init ~step_state
    ~on_terminal sim0 =
  let jobs = max 1 jobs in
  let ctx =
    {
      cfg;
      stats = zero_stats ();
      stop = never_stop;
      seen = (if dedup then Some (Fingerprint.Store.create ()) else None);
      trail;
      step_state;
      on_terminal;
      frontier = None;
      om = Option.map meters_of obs;
      prog = progress;
      limits;
      cur_dec = ref None;
    }
  in
  let frontier_pending = ref 0 in
  let exhaust = ref None in
  let t_start = if obs <> None || trace <> None then Obs.Clock.now_ns () else 0 in
  (* the finally block runs on clean completion AND on abort-by-exception
     (Found), so the stats mirror, the total timer, the trace span and
     the final progress line reflect whatever was actually explored *)
  let finish () =
    (match obs with
    | Some reg ->
      let c name v = Obs.Metrics.Counter.add (Obs.Metrics.counter reg name) v in
      c Obs.Names.explore_nodes ctx.stats.nodes;
      c Obs.Names.explore_terminals ctx.stats.terminals;
      c Obs.Names.explore_truncated ctx.stats.truncated;
      c Obs.Names.explore_dedup_pruned ctx.stats.dup;
      Obs.Metrics.Timer.add
        (Obs.Metrics.timer reg Obs.Names.explore_time_total)
        (Obs.Clock.now_ns () - t_start)
    | None -> ());
    (match trace with
    | Some tr ->
      Obs.Trace.span tr ~name:"explore.search" ~start_ns:t_start
        ~dur_ns:(Obs.Clock.now_ns () - t_start)
        [
          ("jobs", Obs.Trace.Int jobs);
          ("nodes", Obs.Trace.Int ctx.stats.nodes);
          ("terminals", Obs.Trace.Int ctx.stats.terminals);
          ("truncated", Obs.Trace.Int ctx.stats.truncated);
          ("dup", Obs.Trace.Int ctx.stats.dup);
        ]
    | None -> ());
    match progress with Some p -> Obs.Progress.finish p ~nodes:ctx.stats.nodes | None -> ()
  in
  Fun.protect ~finally:finish (fun () ->
      try
        if jobs = 1 then
          if trail || obs <> None then begin
            (* one private clone for the whole search: an abort-by-exception
               from [on_terminal] skips the pending undos, which must not
               corrupt the caller's machine — and counters attach to the
               clone, never to the caller's machine *)
            let sim = Sim.clone sim0 in
            if trail then Sim.enable_trail sim;
            Sim.set_obs sim obs;
            go ctx sim 0 0 (init sim)
          end
          else go ctx sim0 0 0 (init sim0)
        else begin
          (* the expansion root is a clone: expansion-phase counting (clone
             mode, coordinating domain) must not touch the caller's machine
             or race with anything *)
          let root = Sim.clone sim0 in
          Sim.set_obs root obs;
          (* enough tasks that the longest subtree cannot dominate the makespan *)
          let te = if trace <> None then Obs.Clock.now_ns () else 0 in
          let tasks = expand_frontier ~ctx ~target:(32 * jobs) ~init root in
          (match obs with
          | Some reg ->
            Obs.Metrics.Counter.add
              (Obs.Metrics.counter reg Obs.Names.explore_tasks)
              (Array.length tasks)
          | None -> ());
          (match trace with
          | Some tr ->
            Obs.Trace.span tr ~name:"explore.expand" ~start_ns:te
              ~dur_ns:(Obs.Clock.now_ns () - te)
              [ ("tasks", Obs.Trace.Int (Array.length tasks)) ]
          | None -> ());
          (match progress with Some p -> Obs.Progress.set_tasks p (Array.length tasks) | None -> ());
          run_tasks ~ctx ~jobs ~trace ~pending:frontier_pending tasks
        end
      with Out_of_budget reason ->
        (* budget aborts are verdicts, not failures: the stats accumulated
           so far (partial worker stats included, merged by [run_tasks])
           describe real coverage *)
        exhaust :=
          Some
            {
              ex_reason = reason;
              ex_frontier = !frontier_pending;
              ex_degraded =
                (match limits with Some l -> Atomic.get l.l_degraded | None -> []);
            };
        (match trace with
        | Some tr ->
          Obs.Trace.event tr ~name:"explore.exhausted"
            [
              ("reason", Obs.Trace.Str (exhaust_reason_name reason));
              ("frontier", Obs.Trace.Int !frontier_pending);
            ]
        | None -> ()));
  (ctx.stats, !exhaust)

(** Depth-first enumeration of all schedules of [sim0] under [cfg],
    calling [on_terminal] on every completed execution.  Returns the
    statistics.  [on_terminal] may raise to abort the search (e.g. on
    the first counterexample).

    [trail] (default true) selects in-place backtracking; the machine
    passed to [on_terminal] and [on_step] is then the search's working
    machine, valid only for the duration of the callback — {!Sim.clone}
    it to keep it.  With [trail = false] every callback receives an
    independent machine.  Statistics are identical either way.

    [on_step] is invoked after every applied decision with the resulting
    configuration — the hook incremental path analyses attach to.

    With [jobs > 1] the tree is split at an adaptive frontier and
    subtrees run concurrently on that many domains; [on_terminal] must
    then be safe to call from several domains at once (checks that only
    touch their own [Sim.t] argument, like the NRL checkers, are).  Use
    {!auto_jobs} to pick a fan-out matching the host.  With [dedup]
    branches reaching a configuration whose fingerprint (including the
    crash budget spent) was already visited are pruned and counted in
    [stats.dup]. *)
let dfs ?(cfg = default_config) ?(jobs = 1) ?(dedup = false) ?(trail = true) ?obs ?progress
    ?trace ?(budget = no_budget) ?should_stop ?on_exhausted ?on_step ~on_terminal sim0 =
  let step_state =
    match on_step with
    | None -> fun () _ -> ()
    | Some f ->
      fun () sim ->
        f sim;
        ()
  in
  let limits = limits_of ~budget ~should_stop in
  let stats, exhaust =
    run_gen ~cfg ~jobs ~dedup ~trail ~obs ~progress ~trace ~limits ~init:(fun _ -> ())
      ~step_state
      ~on_terminal:(fun () sim -> on_terminal sim)
      sim0
  in
  (match (exhaust, on_exhausted) with Some e, Some f -> f e | _ -> ());
  stats

(** Search for the first terminal execution that fails the check.
    Returns the violating machine (with its full history) if one exists,
    plus the statistics.

    [check_mode] selects how the verdict is computed: [`Terminal] (the
    default) calls [check] on each complete execution from scratch;
    [`Incremental pc] threads [pc]'s state down the path so work done on
    a shared schedule prefix is shared by all terminals below it, and
    [check] is unused.  Both modes return the same verdict for sound
    checkers (cross-checked in the test suite).

    [jobs], [dedup] and [trail] as in {!dfs}; with [jobs > 1] {e which}
    counterexample is returned may vary between runs, but whether one
    exists does not (and without [dedup], neither do the statistics).
    The returned machine is always an independent snapshot, whatever the
    branching discipline. *)
let find_violation ?(cfg = default_config) ?(jobs = 1) ?(dedup = false) ?(trail = true) ?obs
    ?progress ?trace ?(budget = no_budget) ?should_stop ?on_exhausted
    ?(check_mode = `Terminal) ~check sim0 =
  (* in trail mode the machine at a terminal is the search's working
     machine, about to be rewound: capture an independent snapshot *)
  let capture sim = if trail then Sim.clone sim else sim in
  let limits = limits_of ~budget ~should_stop in
  try
    let stats, exhaust =
      match (check_mode : check_mode) with
      | `Terminal ->
        run_gen ~cfg ~jobs ~dedup ~trail ~obs ~progress ~trace ~limits
          ~init:(fun _ -> ())
          ~step_state:(fun () _ -> ())
          ~on_terminal:(fun () sim ->
            match check sim with
            | Some reason -> raise (Found (capture sim, reason))
            | None -> ())
          sim0
      | `Incremental (Path p) ->
        run_gen ~cfg ~jobs ~dedup ~trail ~obs ~progress ~trace ~limits ~init:p.init
          ~step_state:p.step
          ~on_terminal:(fun st sim ->
            match p.terminal st sim with
            | Some reason -> raise (Found (capture sim, reason))
            | None -> ())
          sim0
    in
    (match (exhaust, on_exhausted) with Some e, Some f -> f e | _ -> ());
    (None, stats)
  with Found (sim, reason) ->
    (match trace with
    | Some tr -> Obs.Trace.event tr ~name:"explore.violation" [ ("reason", Obs.Trace.Str reason) ]
    | None -> ());
    (Some (sim, reason), zero_stats ())

(* {1 The resilient engine: task-partitioned, budgeted, checkpointable} *)

(** Where and how often to checkpoint; see {!sweep}. *)
type checkpoint_spec = {
  cp_path : string;
  cp_interval_s : float;  (** minimum seconds between periodic saves *)
  cp_scenario : (string * string) list;
      (** stamp persisted into the checkpoint; a resume must present an
          equal stamp (the CLI enforces this) *)
}

(** The resilient search: always partitions the tree into frontier tasks
    (even at [jobs = 1] — by the engine-invariance property the
    statistics do not depend on the partition), processes them on a
    worker pool that folds each {e completed} task's statistics and
    metrics into an accumulator, and (with [checkpoint]) persists the
    accumulator plus per-task completion flags atomically — periodically
    and at every outcome.  In-flight tasks are discarded by a kill and
    re-run from their recorded decision paths on [resume], which is what
    makes a resumed run's verdict and counters exactly equal to an
    uninterrupted run's (the one exception is [dedup]: the visited store
    is rebuilt from scratch on resume, so dup/node counts can shift —
    verdicts remain sound either way).

    Returns the outcome and the coverage achieved.  Unlike
    {!find_violation}, the statistics are returned for every outcome,
    including [Violation] (they describe the work done up to the
    abort). *)
let sweep ?(cfg = default_config) ?(jobs = 1) ?(dedup = false) ?(trail = true) ?obs
    ?progress ?trace ?(budget = no_budget) ?should_stop ?checkpoint ?resume
    ?(check_mode = `Terminal) ~check sim0 =
  let jobs = max 1 jobs in
  (match resume with
  | Some ck when ck.Checkpoint.result <> None ->
    invalid_arg "Explore.sweep: checkpoint is already finalized (it carries a verdict)"
  | _ -> ());
  let run (type st) (init : Sim.t -> st) (step : st -> Sim.t -> st)
      (term : st -> Sim.t -> string option) =
    let t_start = Obs.Clock.now_ns () in
    let limits = limits_of ~budget ~should_stop in
    (* the accumulator registry exists whenever anyone will read metrics —
       the caller ([obs]) or a checkpoint file *)
    let obs_on = obs <> None || checkpoint <> None || resume <> None in
    let acc = zero_stats () in
    let acc_reg = if obs_on then Some (Obs.Metrics.create ()) else None in
    let acc_mutex = Mutex.create () in
    let capture sim = if trail then Sim.clone sim else sim in
    let ctx0 =
      {
        cfg;
        stats = acc;
        stop = never_stop;
        seen = (if dedup then Some (Fingerprint.Store.create ()) else None);
        trail;
        step_state = step;
        on_terminal =
          (fun st sim ->
            match term st sim with
            | Some reason -> raise (Found (capture sim, reason))
            | None -> ());
        frontier = None;
        om = Option.map meters_of acc_reg;
        prog = progress;
        limits;
        cur_dec = ref None;
      }
    in
    (* ---- partition: expand afresh, or replay the checkpointed tasks ---- *)
    let partition () =
      match resume with
      | Some ck ->
        let all_meta =
          Array.map (fun t -> (t.Checkpoint.ck_path, t.Checkpoint.ck_crashes)) ck.Checkpoint.tasks
        in
        let done_flags = Array.map (fun t -> t.Checkpoint.ck_done) ck.Checkpoint.tasks in
        (* adopt the persisted accumulations: totals and metrics cover
           expansion plus the tasks already completed *)
        acc.nodes <- ck.Checkpoint.totals.Checkpoint.ck_nodes;
        acc.terminals <- ck.Checkpoint.totals.Checkpoint.ck_terminals;
        acc.truncated <- ck.Checkpoint.totals.Checkpoint.ck_truncated;
        acc.dup <- ck.Checkpoint.totals.Checkpoint.ck_dup;
        (match acc_reg with
        | Some reg ->
          List.iter (fun (n, v) -> Obs.Metrics.absorb ~into:reg n v) ck.Checkpoint.metrics
        | None -> ());
        let pending = ref [] in
        Array.iteri
          (fun i (path, crashes) ->
            if not done_flags.(i) then begin
              (* replay the decision path on a fresh clone; replayed work
                 is reconstruction, not exploration, so it must count
                 nothing (the expansion that first built this task was
                 already accounted — and persisted) *)
              let sim = Sim.clone sim0 in
              Sim.set_obs sim None;
              let st = ref (init sim) in
              List.iter
                (fun d ->
                  Schedule.apply sim d;
                  st := step !st sim)
                path;
              pending :=
                ( i,
                  {
                    t_sim = sim;
                    t_depth = List.length path;
                    t_crashes = crashes;
                    t_state = !st;
                    t_path = [];
                  } )
                :: !pending
            end)
          all_meta;
        (match trace with
        | Some tr ->
          Obs.Trace.event tr ~name:"explore.resume"
            [
              ("tasks", Obs.Trace.Int (Array.length all_meta));
              ("pending", Obs.Trace.Int (List.length !pending));
            ]
        | None -> ());
        (all_meta, done_flags, Array.of_list (List.rev !pending))
      | None ->
        let root = Sim.clone sim0 in
        Sim.set_obs root acc_reg;
        let te = if trace <> None then Obs.Clock.now_ns () else 0 in
        let tasks = expand_frontier ~ctx:ctx0 ~target:(32 * jobs) ~init root in
        (match acc_reg with
        | Some reg ->
          Obs.Metrics.Counter.add
            (Obs.Metrics.counter reg Obs.Names.explore_tasks)
            (Array.length tasks)
        | None -> ());
        (match trace with
        | Some tr ->
          Obs.Trace.span tr ~name:"explore.expand" ~start_ns:te
            ~dur_ns:(Obs.Clock.now_ns () - te)
            [ ("tasks", Obs.Trace.Int (Array.length tasks)) ]
        | None -> ());
        let all_meta =
          Array.map (fun t -> (List.rev t.t_path, t.t_crashes)) tasks
        in
        let done_flags = Array.make (Array.length tasks) false in
        (all_meta, done_flags, Array.mapi (fun i t -> (i, t)) tasks)
    in
    let finish_obs () =
      (match obs with
      | Some reg ->
        (match acc_reg with Some a -> Obs.Metrics.merge ~into:reg a | None -> ());
        let c name v = Obs.Metrics.Counter.add (Obs.Metrics.counter reg name) v in
        c Obs.Names.explore_nodes acc.nodes;
        c Obs.Names.explore_terminals acc.terminals;
        c Obs.Names.explore_truncated acc.truncated;
        c Obs.Names.explore_dedup_pruned acc.dup;
        Obs.Metrics.Timer.add
          (Obs.Metrics.timer reg Obs.Names.explore_time_total)
          (Obs.Clock.now_ns () - t_start)
      | None -> ());
      (match trace with
      | Some tr ->
        Obs.Trace.span tr ~name:"explore.search" ~start_ns:t_start
          ~dur_ns:(Obs.Clock.now_ns () - t_start)
          [
            ("jobs", Obs.Trace.Int jobs);
            ("nodes", Obs.Trace.Int acc.nodes);
            ("terminals", Obs.Trace.Int acc.terminals);
            ("truncated", Obs.Trace.Int acc.truncated);
            ("dup", Obs.Trace.Int acc.dup);
          ]
      | None -> ());
      match progress with Some p -> Obs.Progress.finish p ~nodes:acc.nodes | None -> ()
    in
    match partition () with
    | exception Found (sim, reason) ->
      (* the expansion phase itself hit a violating terminal — possible on
         shallow trees whose whole frontier fits in the expansion; there is
         no task list yet, so nothing to checkpoint (a violation ends the
         search for good anyway) *)
      (match trace with
      | Some tr ->
        Obs.Trace.event tr ~name:"explore.violation" [ ("reason", Obs.Trace.Str reason) ]
      | None -> ());
      finish_obs ();
      (Violation (sim, reason), acc)
    | exception Out_of_budget reason ->
      (* exhausted before the partition existed: nothing to checkpoint *)
      let ex =
        {
          ex_reason = reason;
          ex_frontier = 0;
          ex_degraded = (match limits with Some l -> Atomic.get l.l_degraded | None -> []);
        }
      in
      finish_obs ();
      (Exhausted ex, acc)
    | all_meta, done_flags, pending ->
      let last_save = ref (Obs.Clock.now_ns ()) in
      (* call only while holding [acc_mutex] (or after the join) *)
      let save_ck ~result () =
        match checkpoint with
        | None -> ()
        | Some spec ->
          let tasks =
            Array.mapi
              (fun i (path, crashes) ->
                { Checkpoint.ck_path = path; ck_crashes = crashes; ck_done = done_flags.(i) })
              all_meta
          in
          Checkpoint.save ~path:spec.cp_path
            {
              Checkpoint.scenario = spec.cp_scenario;
              tasks;
              totals =
                {
                  Checkpoint.ck_nodes = acc.nodes;
                  ck_terminals = acc.terminals;
                  ck_truncated = acc.truncated;
                  ck_dup = acc.dup;
                };
              metrics = (match acc_reg with Some r -> Obs.Metrics.to_list r | None -> []);
              result;
            };
          (match trace with
          | Some tr ->
            Obs.Trace.event tr ~name:"explore.checkpoint.save"
              [
                ("tasks", Obs.Trace.Int (Array.length all_meta));
                ("done", Obs.Trace.Int (Array.fold_left (fun a d -> if d then a + 1 else a) 0 done_flags));
                ("final", Obs.Trace.Bool (result <> None));
              ]
          | None -> ())
      in
      (* an initial save right after partitioning: a kill during early
         processing can already resume without re-expanding *)
      save_ck ~result:None ();
      (match progress with
      | Some p -> Obs.Progress.set_tasks p (Array.length pending)
      | None -> ());
      (* ---- the worker pool: merge per completed task ---- *)
      let n = Array.length pending in
      let next = Atomic.make 0 in
      let stop_flag = Atomic.make false in
      let failure : exn option Atomic.t = Atomic.make None in
      let publish e =
        if Atomic.compare_and_set failure None (Some e) then ();
        Atomic.set stop_flag true
      in
      let worker _w () =
        try
          let continue = ref true in
          while !continue do
            if Atomic.get stop_flag then continue := false
            else begin
              let i = Atomic.fetch_and_add next 1 in
              if i >= n then continue := false
              else begin
                let gid, t = pending.(i) in
                let wstats = zero_stats () in
                let wreg = if obs_on then Some (Obs.Metrics.create ()) else None in
                let wctx =
                  {
                    ctx0 with
                    stats = wstats;
                    stop = (fun () -> Atomic.get stop_flag);
                    om = Option.map meters_of wreg;
                    cur_dec = ref None;
                  }
                in
                if trail then Sim.enable_trail t.t_sim;
                Sim.set_obs t.t_sim wreg;
                go wctx t.t_sim t.t_depth t.t_crashes t.t_state;
                (* the task completed: fold it into the accumulator.  A
                   task cut short by Found/Out_of_budget never reaches
                   this point — its partial work is discarded, so the
                   accumulator (and any checkpoint of it) stays exact *)
                Mutex.lock acc_mutex;
                Fun.protect
                  ~finally:(fun () -> Mutex.unlock acc_mutex)
                  (fun () ->
                    add_stats acc wstats;
                    (match (acc_reg, wreg) with
                    | Some a, Some w -> Obs.Metrics.merge ~into:a w
                    | _ -> ());
                    done_flags.(gid) <- true;
                    match checkpoint with
                    | Some spec ->
                      let now = Obs.Clock.now_ns () in
                      if float_of_int (now - !last_save) >= spec.cp_interval_s *. 1e9 then begin
                        last_save := now;
                        save_ck ~result:None ()
                      end
                    | None -> ());
                match progress with Some p -> Obs.Progress.task_done p | None -> ()
              end
            end
          done
        with
        | Stopped -> ()
        | e -> publish e
      in
      let domains = List.init (jobs - 1) (fun w -> Domain.spawn (worker (w + 1))) in
      worker 0 ();
      List.iter Domain.join domains;
      let frontier_left =
        Array.fold_left (fun a d -> if d then a else a + 1) 0 done_flags
      in
      let outcome =
        match Atomic.get failure with
        | Some (Found (sim, reason)) ->
          (match trace with
          | Some tr ->
            Obs.Trace.event tr ~name:"explore.violation" [ ("reason", Obs.Trace.Str reason) ]
          | None -> ());
          save_ck ~result:(Some ("violation", reason)) ();
          Violation (sim, reason)
        | Some (Out_of_budget reason) ->
          save_ck ~result:None ();
          let ex =
            {
              ex_reason = reason;
              ex_frontier = frontier_left;
              ex_degraded =
                (match limits with Some l -> Atomic.get l.l_degraded | None -> []);
            }
          in
          (match trace with
          | Some tr ->
            Obs.Trace.event tr ~name:"explore.exhausted"
              [
                ("reason", Obs.Trace.Str (exhaust_reason_name reason));
                ("frontier", Obs.Trace.Int frontier_left);
              ]
          | None -> ());
          Exhausted ex
        | Some e -> raise e
        | None ->
          save_ck ~result:(Some ("clean", "")) ();
          Clean
      in
      finish_obs ();
      (outcome, acc)
  in
  match (check_mode : check_mode) with
  | `Terminal -> run (fun _ -> ()) (fun () _ -> ()) (fun () sim -> check sim)
  | `Incremental (Path p) -> run p.init p.step p.terminal
