(** Exhaustive bounded exploration of schedules.

    For small instances (two or three processes, one or two operations
    each, a bounded crash budget) the decision tree is small enough to
    enumerate completely.  Exploration clones the machine at each branch
    point, so programs run forward only and every leaf carries its own
    history — this is what lets the checkers examine {e every} history of a
    bounded instance, turning the paper's universally quantified
    correctness lemmas into machine-checked facts for those bounds. *)

type config = {
  max_steps : int;  (** depth bound per branch (guards busy-wait loops) *)
  max_crashes : int;  (** total crash budget across all processes *)
  crash_procs : int list;  (** processes allowed to crash *)
  crash_mid_op_only : bool;
      (** restrict crash steps to processes with a pending operation *)
  immediate_recovery : bool;
      (** if set, the only decision after a crash of [p] is [Drecover p]
          (smaller trees); otherwise recovery interleaves adversarially *)
  reduce_local : bool;
      (** partial-order reduction: fire local (non-shared-access)
          transitions eagerly, responses first.  Sound and complete for
          violation search — see {!Sim.next_is_local} *)
}

let default_config =
  {
    max_steps = 200;
    max_crashes = 1;
    crash_procs = [];
    crash_mid_op_only = true;
    immediate_recovery = false;
    reduce_local = true;
  }

type stats = {
  mutable terminals : int;  (** complete executions reached *)
  mutable truncated : int;  (** branches cut by the depth bound *)
  mutable nodes : int;
}

let decisions cfg ~crashes sim =
  let n = Sim.nprocs sim in
  let all = List.init n Fun.id in
  let crashed = List.filter (fun p -> Sim.can_recover sim p) all in
  if cfg.immediate_recovery && crashed <> [] then
    List.map (fun p -> Schedule.Drecover p) crashed
  else begin
    let crashes_d =
      if crashes >= cfg.max_crashes then []
      else
        List.filter_map
          (fun p ->
            if Sim.can_crash ~mid_op_only:cfg.crash_mid_op_only sim p then
              Some (Schedule.Dcrash p)
            else None)
          cfg.crash_procs
    in
    let locals =
      if cfg.reduce_local then
        List.filter (fun p -> Sim.enabled sim p && Sim.next_is_local sim p) all
      else []
    in
    match locals with
    | _ :: _ ->
      (* fire one local transition deterministically (responses first);
         crash decisions are still offered so every crash position is
         reachable *)
      let pick =
        match List.filter (fun p -> Sim.next_is_ret sim p) locals with
        | p :: _ -> p
        | [] -> List.hd locals
      in
      Schedule.Dstep pick :: crashes_d
    | [] ->
      let steps =
        List.filter_map
          (fun p -> if Sim.enabled sim p then Some (Schedule.Dstep p) else None)
          all
      in
      let recoveries = List.map (fun p -> Schedule.Drecover p) crashed in
      steps @ recoveries @ crashes_d
  end

(** Depth-first enumeration of all schedules of [sim0] under [cfg], calling
    [on_terminal] on every completed execution.  Returns the statistics.
    [on_terminal] may raise to abort the search (e.g. on the first
    counterexample). *)
let dfs ?(cfg = default_config) ~on_terminal sim0 =
  let stats = { terminals = 0; truncated = 0; nodes = 0 } in
  (* terminal: every process either completed its script or is down for
     good (a crash may be a process's last step, per Definition 3) *)
  let terminal sim =
    Sim.all_done sim
    || (let n = Sim.nprocs sim in
        let rec ok p =
          p >= n
          || ((Sim.status sim p = Sim.Crashed || not (Sim.enabled sim p)) && ok (p + 1))
        in
        ok 0)
  in
  let rec go sim depth crashes =
    stats.nodes <- stats.nodes + 1;
    if Sim.all_done sim then begin
      stats.terminals <- stats.terminals + 1;
      on_terminal sim
    end
    else if terminal sim then begin
      (* some process is down with no one else runnable: this is a complete
         execution (check it), but recovery may still extend it *)
      stats.terminals <- stats.terminals + 1;
      on_terminal sim;
      if depth < cfg.max_steps then
        List.iter
          (fun d ->
            let s = Sim.clone sim in
            Schedule.apply s d;
            go s (depth + 1) crashes)
          (decisions cfg ~crashes sim)
    end
    else if depth >= cfg.max_steps then stats.truncated <- stats.truncated + 1
    else begin
      let ds = decisions cfg ~crashes sim in
      match ds with
      | [] ->
        (* deadlock: crashed processes that may not recover, or empty
           scripts; count as truncated so callers notice *)
        stats.truncated <- stats.truncated + 1
      | _ ->
        List.iter
          (fun d ->
            let s = Sim.clone sim in
            Schedule.apply s d;
            let crashes' =
              match d with Schedule.Dcrash _ -> crashes + 1 | _ -> crashes
            in
            go s (depth + 1) crashes')
          ds
    end
  in
  go sim0 0 0;
  stats

exception Found of Sim.t * string

(** Search for the first terminal execution whose history fails [check];
    [check] returns [Some reason] on a violation.  Returns the violating
    machine (with its full history) if one exists, plus the statistics. *)
let find_violation ?(cfg = default_config) ~check sim0 =
  try
    let stats =
      dfs ~cfg sim0 ~on_terminal:(fun sim ->
          match check sim with
          | Some reason -> raise (Found (sim, reason))
          | None -> ())
    in
    (None, stats)
  with Found (sim, reason) ->
    (Some (sim, reason), { terminals = 0; truncated = 0; nodes = 0 })
