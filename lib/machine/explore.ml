(** Exhaustive bounded exploration of schedules.

    For small instances (a few processes, a few operations each, a
    bounded crash budget) the decision tree is small enough to enumerate
    completely.  Exploration clones the machine at each branch point, so
    programs run forward only and every leaf carries its own history —
    this is what lets the checkers examine {e every} history of a bounded
    instance, turning the paper's universally quantified correctness
    lemmas into machine-checked facts for those bounds.

    Two engines share one traversal core:

    - the sequential depth-first search ([jobs = 1]), byte-for-byte the
      behaviour of the original engine; and
    - a domain-parallel search ([jobs > 1]) that first expands the
      shallowest part of the tree breadth-first until it holds enough
      independent subtree roots, then fans those subtrees out across
      OCaml 5 domains, each running the sequential search on its own
      cloned machine.  Statistics are summed at the join; a shared
      atomic flag stops every worker as soon as one finds a violation.
      Every node is processed exactly once by the same code either way,
      so [terminals]/[truncated]/[nodes] are identical for every [jobs]
      value.

    Orthogonally, {e state deduplication} ([dedup]) prunes a branch when
    the machine configuration's {!Fingerprint} has been visited before:
    converging schedule prefixes are explored once.  Fingerprint
    equality implies identical future event sequences, so the pruned
    subtree's behaviours are exactly the representative's — but the
    {e prefix} histories differ, so checks that depend on the full
    history (NRL does) are verified against one representative prefix
    per state.  Deduplicated search is therefore a fast
    under-approximation: any violation it reports is real, while a clean
    sweep certifies one representative history per reachable
    configuration rather than all of them.  See docs/model.md for the
    full soundness discussion. *)

type config = {
  max_steps : int;  (** depth bound per branch (guards busy-wait loops) *)
  max_crashes : int;  (** total crash budget across all processes *)
  crash_procs : int list;  (** processes allowed to crash *)
  crash_mid_op_only : bool;
      (** restrict crash steps to processes with a pending operation *)
  immediate_recovery : bool;
      (** if set, the only decision after a crash of [p] is [Drecover p]
          (smaller trees); otherwise recovery interleaves adversarially *)
  reduce_local : bool;
      (** partial-order reduction: fire local (non-shared-access)
          transitions eagerly, responses first.  Sound and complete for
          violation search — see {!Sim.next_is_local} *)
}

let default_config =
  {
    max_steps = 200;
    max_crashes = 1;
    crash_procs = [];
    crash_mid_op_only = true;
    immediate_recovery = false;
    reduce_local = true;
  }

type stats = {
  mutable terminals : int;  (** complete executions reached *)
  mutable truncated : int;  (** branches cut by the depth bound *)
  mutable nodes : int;
  mutable dup : int;  (** branches pruned by state deduplication *)
}

let zero_stats () = { terminals = 0; truncated = 0; nodes = 0; dup = 0 }

let add_stats into s =
  into.terminals <- into.terminals + s.terminals;
  into.truncated <- into.truncated + s.truncated;
  into.nodes <- into.nodes + s.nodes;
  into.dup <- into.dup + s.dup

let decisions cfg ~crashes sim =
  let n = Sim.nprocs sim in
  let all = List.init n Fun.id in
  let crashed = List.filter (fun p -> Sim.can_recover sim p) all in
  if cfg.immediate_recovery && crashed <> [] then
    List.map (fun p -> Schedule.Drecover p) crashed
  else begin
    let crashes_d =
      if crashes >= cfg.max_crashes then []
      else
        List.filter_map
          (fun p ->
            if Sim.can_crash ~mid_op_only:cfg.crash_mid_op_only sim p then
              Some (Schedule.Dcrash p)
            else None)
          cfg.crash_procs
    in
    let locals =
      if cfg.reduce_local then
        List.filter (fun p -> Sim.enabled sim p && Sim.next_is_local sim p) all
      else []
    in
    match locals with
    | _ :: _ ->
      (* fire one local transition deterministically (responses first);
         crash decisions are still offered so every crash position is
         reachable *)
      let pick =
        match List.filter (fun p -> Sim.next_is_ret sim p) locals with
        | p :: _ -> p
        | [] -> List.hd locals
      in
      Schedule.Dstep pick :: crashes_d
    | [] ->
      let steps =
        List.filter_map
          (fun p -> if Sim.enabled sim p then Some (Schedule.Dstep p) else None)
          all
      in
      let recoveries = List.map (fun p -> Schedule.Drecover p) crashed in
      steps @ recoveries @ crashes_d
  end

(* terminal: every process either completed its script or is down for
   good (a crash may be a process's last step, per Definition 3) *)
let terminal sim =
  Sim.all_done sim
  || (let n = Sim.nprocs sim in
      let rec ok p =
        p >= n
        || ((Sim.status sim p = Sim.Crashed || not (Sim.enabled sim p)) && ok (p + 1))
      in
      ok 0)

exception Found of Sim.t * string

exception Stopped
(* raised inside a worker when another worker has flipped the stop flag *)

(** A pending subtree: a cloned machine plus the depth and crash count at
    its root. *)
type task = { t_sim : Sim.t; t_depth : int; t_crashes : int }

(** Everything one traversal needs.  [frontier = Some (d, emit)] turns
    recursion at depth [>= d] into task emission — the frontier-expansion
    phase of the parallel engine processes nodes one BFS level at a time
    through the very same code path the workers later run, so every node
    is visited exactly once regardless of where the tree is split. *)
type ctx = {
  cfg : config;
  stats : stats;
  stop : unit -> bool;
  seen : Fingerprint.Store.t option;
  on_terminal : Sim.t -> unit;
  frontier : (int * (task -> unit)) option;
}

let rec go ctx sim depth crashes =
  if ctx.stop () then raise Stopped;
  match ctx.frontier with
  | Some (fd, emit) when depth >= fd -> emit { t_sim = sim; t_depth = depth; t_crashes = crashes }
  | _ -> (
    match ctx.seen with
    | Some store when not (Fingerprint.Store.add store (Fingerprint.of_sim sim)) ->
      (* an equivalent configuration was reached by another prefix: its
         futures have already been (or are being) explored *)
      ctx.stats.dup <- ctx.stats.dup + 1
    | _ ->
      let stats = ctx.stats in
      stats.nodes <- stats.nodes + 1;
      if Sim.all_done sim then begin
        stats.terminals <- stats.terminals + 1;
        ctx.on_terminal sim
      end
      else if terminal sim then begin
        (* some process is down with no one else runnable: this is a
           complete execution (check it), but recovery may still extend it *)
        stats.terminals <- stats.terminals + 1;
        ctx.on_terminal sim;
        if depth < ctx.cfg.max_steps then
          List.iter
            (fun d ->
              let s = Sim.clone sim in
              Schedule.apply s d;
              go ctx s (depth + 1) crashes)
            (decisions ctx.cfg ~crashes sim)
      end
      else if depth >= ctx.cfg.max_steps then stats.truncated <- stats.truncated + 1
      else begin
        let ds = decisions ctx.cfg ~crashes sim in
        match ds with
        | [] ->
          (* deadlock: crashed processes that may not recover, or empty
             scripts; count as truncated so callers notice *)
          stats.truncated <- stats.truncated + 1
        | _ ->
          List.iter
            (fun d ->
              let s = Sim.clone sim in
              Schedule.apply s d;
              let crashes' =
                match d with Schedule.Dcrash _ -> crashes + 1 | _ -> crashes
              in
              go ctx s (depth + 1) crashes')
            ds
      end)

let never_stop () = false

(* {1 The parallel engine} *)

(** Expand the shallow part of the tree breadth-first until at least
    [target] independent subtree roots are pending (or the tree is
    exhausted).  Interior nodes and shallow terminals are processed —
    and counted — here, through {!go} with a one-level frontier, so the
    split point does not change any statistic. *)
let expand_frontier ~ctx ~target sim0 =
  let q = Queue.create () in
  Queue.push { t_sim = sim0; t_depth = 0; t_crashes = 0 } q;
  while (not (Queue.is_empty q)) && Queue.length q < target do
    let t = Queue.pop q in
    let ctx = { ctx with frontier = Some (t.t_depth + 1, fun t' -> Queue.push t' q) } in
    go ctx t.t_sim t.t_depth t.t_crashes
  done;
  Array.init (Queue.length q) (fun _ -> Queue.pop q)

(** Run [tasks] to completion on [jobs] domains.  Work is claimed from a
    shared atomic index; each worker accumulates private statistics
    (summed into [ctx.stats] at the join).  The first worker to catch
    {!Found} publishes it and flips the stop flag; any other exception is
    also published and re-raised in the caller, so [on_terminal]'s
    abort-by-exception contract survives parallelism. *)
let run_tasks ~ctx ~jobs tasks =
  let n = Array.length tasks in
  if n > 0 then begin
    let next = Atomic.make 0 in
    let stop_flag = Atomic.make false in
    let failure : exn option Atomic.t = Atomic.make None in
    let publish e =
      if Atomic.compare_and_set failure None (Some e) then ();
      Atomic.set stop_flag true
    in
    let worker_stats = Array.init jobs (fun _ -> zero_stats ()) in
    let worker w () =
      let wctx =
        {
          ctx with
          stats = worker_stats.(w);
          stop = (fun () -> Atomic.get stop_flag);
          frontier = None;
        }
      in
      try
        let continue = ref true in
        while !continue do
          let i = Atomic.fetch_and_add next 1 in
          if i >= n then continue := false
          else
            let t = tasks.(i) in
            go wctx t.t_sim t.t_depth t.t_crashes
        done
      with
      | Stopped -> ()
      | e -> publish e
    in
    let domains = List.init (jobs - 1) (fun w -> Domain.spawn (worker (w + 1))) in
    worker 0 ();
    List.iter Domain.join domains;
    Array.iter (add_stats ctx.stats) worker_stats;
    match Atomic.get failure with Some e -> raise e | None -> ()
  end

(** Depth-first enumeration of all schedules of [sim0] under [cfg],
    calling [on_terminal] on every completed execution.  Returns the
    statistics.  [on_terminal] may raise to abort the search (e.g. on
    the first counterexample).

    With [jobs > 1] the tree is split at an adaptive frontier and
    subtrees run concurrently on that many domains; [on_terminal] must
    then be safe to call from several domains at once (checks that only
    touch their own [Sim.t] argument, like the NRL checkers, are).  With
    [dedup] branches reaching a configuration whose fingerprint was
    already visited are pruned and counted in [stats.dup]. *)
let dfs ?(cfg = default_config) ?(jobs = 1) ?(dedup = false) ~on_terminal sim0 =
  let jobs = max 1 jobs in
  let ctx =
    {
      cfg;
      stats = zero_stats ();
      stop = never_stop;
      seen = (if dedup then Some (Fingerprint.Store.create ()) else None);
      on_terminal;
      frontier = None;
    }
  in
  if jobs = 1 then go ctx sim0 0 0
  else begin
    (* enough tasks that the longest subtree cannot dominate the makespan *)
    let tasks = expand_frontier ~ctx ~target:(32 * jobs) sim0 in
    run_tasks ~ctx ~jobs tasks
  end;
  ctx.stats

(** Search for the first terminal execution whose history fails [check];
    [check] returns [Some reason] on a violation.  Returns the violating
    machine (with its full history) if one exists, plus the statistics.
    [jobs] and [dedup] as in {!dfs}; with [jobs > 1] {e which}
    counterexample is returned may vary between runs, but whether one
    exists does not (and without [dedup], neither do the statistics). *)
let find_violation ?(cfg = default_config) ?(jobs = 1) ?(dedup = false) ~check sim0 =
  try
    let stats =
      dfs ~cfg ~jobs ~dedup sim0 ~on_terminal:(fun sim ->
          match check sim with
          | Some reason -> raise (Found (sim, reason))
          | None -> ())
    in
    (None, stats)
  with Found (sim, reason) -> (Some (sim, reason), zero_stats ())
