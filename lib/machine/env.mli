(** Volatile process-local variables.

    In the paper's model each process has local variables stored in
    volatile processor registers; a crash-failure resets them all to
    {e arbitrary} values.  A scrambled environment answers every lookup —
    even of names never bound — with adversarially generated junk, so an
    algorithm that relies on any local value across a crash misbehaves
    loudly in tests. *)

type t

exception Unbound_local of string
(** Raised when reading a local that was never bound in an environment
    that has not been scrambled — an algorithm bug on a crash-free path. *)

val create : unit -> t
(** A fresh, empty, strict environment (used for operation bodies, where
    reading an unbound local is a crash-free-path bug). *)

val create_post_crash : Junk.t -> t
(** A fresh environment for recovery invocations: unbound reads yield
    arbitrary junk, matching the paper's "locals reset to arbitrary
    values". *)

val copy : t -> t
(** Independent copy, for machine cloning.  The copy carries no trail. *)

val set_trail : t -> Nvm.Trail.t option -> unit
(** Attach (or detach) an undo trail: binding updates, cached junk draws
    and {!scramble} then log undo thunks, so {!Nvm.Trail.undo_to} reverts
    the environment — including its junk-generator state — in place. *)

val set : t -> string -> Nvm.Value.t -> unit

val get : t -> string -> Nvm.Value.t
(** Read a local.  After a crash ({!scramble}), unbound names yield junk
    instead of raising. *)

val mem : t -> string -> bool

val scramble : t -> Junk.t -> unit
(** Crash semantics: replace every binding with an arbitrary value and
    switch the environment into scrambled mode. *)

val bindings : t -> (string * Nvm.Value.t) list
(** Sorted bindings, for state hashing and debugging. *)

val junk_state : t -> int option
(** [Some s] iff the environment is in post-crash (scrambled) mode, where
    [s] is its junk-generator state; [None] for a strict environment.
    Used by {!Fingerprint} — the mode and the stream both affect what
    future unbound lookups return. *)

val pp : t Fmt.t
