(** Exhaustive bounded exploration of schedules.

    For small instances the decision tree is enumerated completely, which
    turns the paper's universally-quantified correctness lemmas into
    machine-checked facts for those bounds.

    Branching discipline: by default the search backtracks {e in place}
    on a single machine via {!Sim.mark}/{!Sim.undo_to} (the undo trail),
    so a branch costs the few mutations of one step instead of a
    whole-machine deep copy; [trail = false] selects the historical
    clone-per-branch engine.  Both disciplines visit the same nodes in
    the same order and produce identical statistics.

    A sound partial-order reduction ([reduce_local]) fires local
    (non-shared-access) transitions eagerly, response steps first: among
    all schedules with a given shared-access interleaving this yields the
    history with the {e most} real-time constraints, so the reduced
    search finds a violation iff one exists in the full space.  Crash
    decisions are still offered at every instruction boundary.

    The engine is domain-parallel with {e work stealing}: with
    [jobs > 1] every domain owns a deque of subtree tasks, each task a
    decision path from the root plus its consumed crash budget.  Owners
    pop newest-first (their trail prefix stays hot: starting the next
    task undoes and replays only the path difference), thieves steal
    oldest-first (the shallowest, largest subtrees, amortising the
    replay).  A worker splits its task one level when the pool runs low,
    so load balance adapts to the tree shape instead of being fixed by a
    one-shot fan-out.  Replayed path prefixes are reconstruction, not
    exploration — they are never re-counted — so every node is processed
    exactly once wherever the task boundaries fall and the statistics
    are identical for every [jobs] and [trail] value.

    An optional state-deduplication layer ([dedup], built on
    {!Fingerprint} extended with the consumed crash budget) prunes
    branches that reconverge on an already-visited configuration; the
    visited store is a single lock-free sharded table shared by all
    domains ({!Fingerprint.Store}).  Any violation found under [dedup]
    is real, but a clean deduplicated sweep certifies one representative
    prefix history per reachable configuration rather than all of them.
    On top of [dedup], {e process-symmetry reduction} ([symmetry], on by
    default) canonicalises fingerprints under the group of process
    permutations that provably commute with every machine step —
    detected, not assumed: see {!Fingerprint.Symmetry} and
    docs/model.md — so symmetric scenarios deduplicate whole orbits
    (up to [n!] fewer states).  [symmetry] changes [nodes]/[dup] splits
    exactly like a stronger [dedup] does, never verdicts. *)

type config = {
  max_steps : int;  (** depth bound per branch (guards busy-wait loops) *)
  max_crashes : int;  (** total crash budget across all processes *)
  crash_procs : int list;  (** processes allowed to crash *)
  crash_mid_op_only : bool;
      (** restrict crash steps to processes with a pending operation *)
  immediate_recovery : bool;
      (** if set, the only decision after a crash of [p] is recovering
          [p] (smaller trees, weaker adversary) *)
  reduce_local : bool;  (** the partial-order reduction; on by default *)
}

val default_config : config
(** 200 steps, 1 crash, no crashing processes (set [crash_procs]),
    mid-operation crashes only, adversarial recovery, reduction on. *)

type stats = {
  mutable terminals : int;
      (** complete executions reached (including executions in which a
          crashed process stays down for good, per Definition 3) *)
  mutable truncated : int;  (** branches cut by the depth bound *)
  mutable nodes : int;
  mutable dup : int;
      (** branches pruned because the configuration's fingerprint was
          already visited (always 0 unless [dedup] is set) *)
}

val zero_stats : unit -> stats
(** A fresh all-zero counter record. *)

val auto_jobs : unit -> int
(** A fan-out matching the host: [Domain.recommended_domain_count ()]
    (at least 1).  On a single-domain host this is 1, which skips the
    parallel split — and its frontier-expansion overhead — entirely.
    Passed as [~jobs] when the user asks for [auto]; explicit [~jobs]
    values are never clamped (benchmarks deliberately oversubscribe). *)

val decisions : config -> sym:bool -> crashes:int -> Sim.t -> Schedule.decision list
(** The decisions the explorer branches over at a configuration.  [sym]
    selects the equivariant local-step rule used under symmetry
    reduction (branch on {e all} lowest-ranked local candidates by a
    pid-erased hash, so isomorphic configurations explore isomorphic
    subtrees); without it the historical lowest-pid pick applies. *)

val symmetry_group : config -> Sim.t -> Fingerprint.Symmetry.group option
(** The soundness-checked process-symmetry group of [sim]'s root
    configuration under [config] (recovery obliviousness is only
    required if the config can schedule a crash); [None] when any
    soundness condition fails or only the identity qualifies.  The
    engines call this themselves when [dedup && symmetry]; exposed so
    the CLI can report whether a scenario is quotiented. *)

(** A path checker: per-path analysis state threaded down the DFS.
    [init] produces the state for the root configuration, [step] updates
    it after each applied decision (consume {!Sim.history_suffix} since
    the last known length), and [terminal] delivers the verdict at a
    complete execution.  The state must be used persistently: the same
    value is passed to several children of one node, so [step] must not
    mutate it in place.  Neither [step] nor [terminal] may retain the
    [Sim.t] they are given (in trail mode it is the search's working
    machine). *)
type path_checker =
  | Path : {
      init : Sim.t -> 'st;
      step : 'st -> Sim.t -> 'st;
      terminal : 'st -> Sim.t -> string option;
    }
      -> path_checker

type check_mode = [ `Terminal | `Incremental of path_checker ]

(** {1 Budgets and partial verdicts}

    A budget bounds a search's resources so long-running verification
    degrades gracefully instead of dying: the visited-store cap triggers
    a degradation (the dedup store is dropped and the search continues
    unpruned), while the deadline and node budgets abort the search with
    a structured partial verdict.  Everything counted in the returned
    {!stats} was really explored and judged — a budget abort reports the
    coverage achieved, it never fabricates a clean verdict. *)

type budget = {
  deadline_s : float option;  (** wall-clock bound, seconds from the start of the call *)
  max_nodes : int option;  (** bound on nodes processed (global across domains) *)
  max_visited : int option;
      (** cap on the dedup visited store, in fingerprints; exceeding it
          drops the store (degradation, not abort) *)
}

val no_budget : budget
(** All bounds off — the historical unbounded behaviour. *)

type exhaust_reason = [ `Deadline | `Interrupted | `Nodes ]

val exhaust_reason_name : exhaust_reason -> string
(** ["deadline"], ["max-nodes"] or ["interrupted"]. *)

type exhausted = {
  ex_reason : exhaust_reason;
  ex_frontier : int;
      (** independent subtree tasks not yet completed when the search was
          cut (0 for unpartitioned searches) *)
  ex_degraded : string list;
      (** degradation steps taken before giving up, oldest first *)
}

(** Verdict of a budgeted, resumable search ({!sweep}). *)
type outcome =
  | Clean  (** every schedule within the bounds explored, no violation found *)
  | Violation of Sim.t * string
  | Exhausted of exhausted

val dfs :
  ?cfg:config ->
  ?jobs:int ->
  ?dedup:bool ->
  ?trail:bool ->
  ?symmetry:bool ->
  ?obs:Obs.Metrics.t ->
  ?progress:Obs.Progress.t ->
  ?trace:Obs.Trace.t ->
  ?budget:budget ->
  ?should_stop:(unit -> bool) ->
  ?on_exhausted:(exhausted -> unit) ->
  ?on_step:(Sim.t -> unit) ->
  on_terminal:(Sim.t -> unit) ->
  Sim.t ->
  stats
(** Depth-first enumeration; [on_terminal] is called on every complete
    execution and may raise to abort the search; [on_step] (if given) is
    called after every applied decision with the resulting configuration.

    [trail] (default [true]) backtracks in place: the machine passed to
    the callbacks is then the search's working machine, valid only for
    the duration of the call — {!Sim.clone} it to keep it.  With
    [trail = false] each callback receives an independent machine.  The
    caller's [sim0] is never mutated in either mode.

    [jobs] (default 1) runs the search on that many domains; the
    statistics do not depend on it, but the callbacks must then tolerate
    concurrent calls from distinct domains (callbacks that only touch
    their [Sim.t] argument, such as the NRL checkers, qualify).  [dedup]
    (default false) prunes branches whose configuration fingerprint —
    including the crash budget spent on the path — was already visited;
    the visited store is shared lock-free across domains.  [symmetry]
    (default true, only meaningful with [dedup]) canonicalises
    fingerprints under the detected process-symmetry group; pass [false]
    to compare an unquotiented search.

    {b Observability.}  [obs] attaches a metric registry ({!Obs.Names}
    lists what lands in it): the search's machine counters, the
    explorer's node/terminal/truncated/dup totals, per-phase timers and
    the frontier task count.  With [jobs > 1] every worker counts into a
    private registry, merged into [obs] at the join in worker order —
    aggregated counters are exact sums and the engine-invariant ones
    (see {!Obs.Names.engine_invariant}) are identical for every [jobs]
    and [trail] setting.  Instrumentation adds no shared-memory
    accesses: the only cross-domain state remains the stop flag, the
    work index and (under [dedup]) the fingerprint store, exactly as
    without [obs].  [progress] receives batched node ticks from every
    worker and task-completion events (its output is throttled
    wall-clock, see {!Obs.Progress}); [trace] receives span records —
    [explore.search], one [explore.worker] per domain — written only
    from the coordinating domain, plus an [explore.symmetry] event when
    quotienting is active.

    {b Budgets.}  [budget] bounds the search (see {!budget});
    [should_stop] is polled every few dozen processed nodes and cuts the
    search cooperatively (the hook a signal handler's flag plugs into).
    When a bound trips, the returned statistics cover the work actually
    done (partial subtrees included) and [on_exhausted] — if given —
    receives the structured partial verdict; an [explore.exhausted]
    event goes to [trace].  Exceeding [max_visited] never aborts: the
    dedup store is dropped (recorded in {!exhausted.ex_degraded} if a
    later bound trips) and the search continues unpruned. *)

exception Found of Sim.t * string

val find_violation :
  ?cfg:config ->
  ?jobs:int ->
  ?dedup:bool ->
  ?trail:bool ->
  ?symmetry:bool ->
  ?obs:Obs.Metrics.t ->
  ?progress:Obs.Progress.t ->
  ?trace:Obs.Trace.t ->
  ?budget:budget ->
  ?should_stop:(unit -> bool) ->
  ?on_exhausted:(exhausted -> unit) ->
  ?check_mode:check_mode ->
  check:(Sim.t -> string option) ->
  Sim.t ->
  (Sim.t * string) option * stats
(** First terminal execution judged a violation, with its machine (and so
    its full history — always an independent snapshot, whatever the
    branching discipline), or [None] with the complete search statistics.

    [check_mode] (default [`Terminal]) selects the judge: [`Terminal]
    runs [check] on each complete execution from scratch;
    [`Incremental pc] threads [pc]'s state down the path, sharing the
    work done on common schedule prefixes between all terminals below
    them ([check] is then unused).  A sound incremental checker returns
    the same verdict as its terminal counterpart on every scenario — the
    test suite cross-checks the NRL pair.

    With [jobs > 1], {e which} counterexample is returned may vary
    between runs; whether one exists does not, and without [dedup]
    neither do the statistics.

    [obs], [progress] and [trace] as in {!dfs}; a violating run
    additionally emits an [explore.violation] event to [trace], and its
    [obs] totals cover the work done up to the abort (the returned
    [stats] stay zero, as before).  [budget], [should_stop] and
    [on_exhausted] as in {!dfs}: a budget-cut search that found no
    violation returns [(None, partial_stats)] and reports the cut
    through [on_exhausted] — it is a coverage statement, not a clean
    certificate. *)

(** {1 The resilient engine}

    {!sweep} is the budgeted, checkpointable, resumable front door: it
    runs the same work-stealing pool (even at [jobs = 1] — statistics
    are partition-invariant, so this changes no counter), folds each
    completed task into an accumulator, and can persist the accumulator
    plus the {e pending} task set — every queued deque entry and every
    in-progress task, captured atomically at a task-completion boundary
    — to a {!Checkpoint} file, periodically and at every outcome.  A
    killed sweep resumed from its checkpoint re-seeds the pool with
    exactly those pending paths (in-flight partial work is discarded on
    purpose), which makes the resumed verdict {e and} all
    engine-invariant counters byte-identical to an uninterrupted run —
    except under [dedup], whose visited store restarts empty on resume
    (verdicts stay sound; dup/node splits may shift). *)

type checkpoint_spec = {
  cp_path : string;  (** file to write (atomically: temp + rename) *)
  cp_interval_s : float;  (** minimum seconds between periodic saves *)
  cp_scenario : (string * string) list;
      (** printable stamp persisted into the file; a resume must present
          an equal stamp (the CLI enforces this) *)
}

val sweep :
  ?cfg:config ->
  ?jobs:int ->
  ?dedup:bool ->
  ?trail:bool ->
  ?symmetry:bool ->
  ?obs:Obs.Metrics.t ->
  ?progress:Obs.Progress.t ->
  ?trace:Obs.Trace.t ->
  ?budget:budget ->
  ?should_stop:(unit -> bool) ->
  ?checkpoint:checkpoint_spec ->
  ?resume:Checkpoint.t ->
  ?check_mode:check_mode ->
  check:(Sim.t -> string option) ->
  Sim.t ->
  outcome * stats
(** Budgeted, resumable violation search.  The returned statistics are
    the coverage achieved and accompany {e every} outcome (unlike
    {!find_violation}, a [Violation] outcome reports the work done up to
    the abort rather than zeros).

    [checkpoint] persists progress: once right at the start, then at
    task-completion granularity every [cp_interval_s] seconds, and
    finally at the outcome (a finished search writes its verdict into
    the file; {!Checkpoint.t.result}).  [resume] restores a previously
    saved, unfinalized checkpoint: the persisted totals and metrics are
    adopted into the accumulator and the pending task paths re-seed the
    work-stealing pool, distributed round-robin across the workers — the
    caller must rebuild the {e same} scenario machine and pass equal
    parameters (validate with {!Checkpoint.t.scenario}).
    @raise Invalid_argument if the checkpoint is already finalized.

    [should_stop] is the kill hook: when it flips (e.g. from a
    SIGTERM/SIGINT handler), workers stop at the next node, the
    in-flight tasks are discarded, a final checkpoint is saved and the
    outcome is [Exhausted {ex_reason = `Interrupted; _}].

    Trace events beyond {!dfs}'s: [explore.checkpoint.save] per save,
    [explore.resume] on restore, [explore.exhausted] on budget cuts. *)
