(** Exhaustive bounded exploration of schedules.

    For small instances the decision tree is enumerated completely, which
    turns the paper's universally-quantified correctness lemmas into
    machine-checked facts for those bounds.  Exploration clones the
    machine at each branch point, so every leaf carries its own history.

    A sound partial-order reduction ([reduce_local]) fires local
    (non-shared-access) transitions eagerly, response steps first: among
    all schedules with a given shared-access interleaving this yields the
    history with the {e most} real-time constraints, so the reduced
    search finds a violation iff one exists in the full space.  Crash
    decisions are still offered at every instruction boundary.

    The engine is domain-parallel: with [jobs > 1] the shallow part of
    the tree is expanded breadth-first into independent subtree roots,
    which are fanned out across OCaml 5 domains; every node is processed
    exactly once by the same traversal code wherever the split falls, so
    the statistics are identical for every [jobs] value.  An optional
    state-deduplication layer ([dedup], built on {!Fingerprint}) prunes
    branches that reconverge on an already-visited configuration; any
    violation found under [dedup] is real, but a clean deduplicated sweep
    certifies one representative prefix history per reachable
    configuration rather than all of them — see docs/model.md. *)

type config = {
  max_steps : int;  (** depth bound per branch (guards busy-wait loops) *)
  max_crashes : int;  (** total crash budget across all processes *)
  crash_procs : int list;  (** processes allowed to crash *)
  crash_mid_op_only : bool;
      (** restrict crash steps to processes with a pending operation *)
  immediate_recovery : bool;
      (** if set, the only decision after a crash of [p] is recovering
          [p] (smaller trees, weaker adversary) *)
  reduce_local : bool;  (** the partial-order reduction; on by default *)
}

val default_config : config
(** 200 steps, 1 crash, no crashing processes (set [crash_procs]),
    mid-operation crashes only, adversarial recovery, reduction on. *)

type stats = {
  mutable terminals : int;
      (** complete executions reached (including executions in which a
          crashed process stays down for good, per Definition 3) *)
  mutable truncated : int;  (** branches cut by the depth bound *)
  mutable nodes : int;
  mutable dup : int;
      (** branches pruned because the configuration's fingerprint was
          already visited (always 0 unless [dedup] is set) *)
}

val zero_stats : unit -> stats

val decisions : config -> crashes:int -> Sim.t -> Schedule.decision list
(** The decisions the explorer branches over at a configuration. *)

val dfs :
  ?cfg:config ->
  ?jobs:int ->
  ?dedup:bool ->
  on_terminal:(Sim.t -> unit) ->
  Sim.t ->
  stats
(** Depth-first enumeration; [on_terminal] is called on every complete
    execution and may raise to abort the search.

    [jobs] (default 1) runs the search on that many domains; the
    statistics do not depend on it, but [on_terminal] must then tolerate
    concurrent calls from distinct domains (callbacks that only touch
    their [Sim.t] argument, such as the NRL checkers, qualify).  [dedup]
    (default false) prunes branches whose configuration fingerprint was
    already visited. *)

exception Found of Sim.t * string

val find_violation :
  ?cfg:config ->
  ?jobs:int ->
  ?dedup:bool ->
  check:(Sim.t -> string option) ->
  Sim.t ->
  (Sim.t * string) option * stats
(** First terminal execution for which [check] returns [Some reason],
    with its machine (and so its full history), or [None] with the
    complete search statistics.  With [jobs > 1], {e which}
    counterexample is returned may vary between runs; whether one exists
    does not, and without [dedup] neither do the statistics. *)
