(** The instruction DSL in which the paper's algorithms are transcribed.

    Each instruction corresponds to one line of the paper's pseudo-code
    and performs {e at most one} shared-memory access, so
    instruction-level interleaving gives exactly the atomicity granularity
    the paper assumes.  Instructions carry the paper's line numbers:
    branch targets are lines, [LI_p] is exposed to recovery code as a
    line, and recovery can "proceed from line k" of the operation's own
    program with {!constructor:Resume}.

    Expressions are pure (no shared-memory access), which enforces the
    one-access-per-instruction discipline by construction. *)

type ctx = {
  pid : int;  (** identifier of the executing process *)
  nprocs : int;
  args : Nvm.Value.t array;
      (** the operation's arguments; preserved across crashes and passed
          unchanged to the recovery function *)
  li_line : int;
      (** [LI_p]: the last line of the operation's body that started
          executing; [-1] before any did *)
}

type 'a exp = ctx -> Env.t -> 'a
type expr = Nvm.Value.t exp

type instr =
  | Assign of string * expr  (** [local := e], purely local *)
  | Read of string * int exp  (** [local := mem[a]] — one shared read *)
  | Write of int exp * expr  (** [mem[a] := e] — one shared write *)
  | Cas_prim of string * int exp * expr * expr
      (** [local := cas(mem[a], old, new)]; the result is a boolean *)
  | Tas_prim of string * int exp
      (** [local := t&s(mem[a])]; the result is the previous value *)
  | Faa_prim of string * int exp * expr
      (** [local := faa(mem[a], delta)]; the result is the previous value *)
  | Invoke of string * int exp * string * expr array
      (** [local := O.OP(args)]: nested invocation of a recoverable
          operation on the instance whose id the expression yields *)
  | Branch_if of bool exp * int  (** conditional jump to a paper line *)
  | Jump of int  (** unconditional jump to a paper line *)
  | Ret of expr  (** complete the operation with a response *)
  | Resume of int
      (** recovery only: continue executing the {e operation}'s program
          from the given paper line ("proceed from line k") *)

type t

val make : name:string -> (int * instr) list -> t
(** [make ~name instrs] builds a program from [(paper line, instruction)]
    pairs.  Line numbers must be unique within the program.
    @raise Invalid_argument on duplicate line numbers. *)

val name : t -> string
val length : t -> int
val instr : t -> int -> instr

val line_of_pc : t -> int -> int
(** Paper line of the instruction at a pc; [-1] if out of range. *)

val pc_of_line : t -> int -> int
(** @raise Invalid_argument if no instruction carries that line. *)

(** {2 Expression combinators}

    These make transcriptions read like the paper's pseudo-code; see
    [lib/objects] for usage. *)

val const : Nvm.Value.t -> expr
val int : int -> expr
val bool : bool -> expr
val null : expr
val str : string -> expr

val local : string -> expr
(** The value of a local variable. *)

val arg : int -> expr
(** The operation's [i]-th argument. *)

val self : expr
(** The executing process's identifier, as a [Pid] value. *)

val self_int : int exp
val nprocs : int exp

val li : int exp
(** [LI_p] as an integer, for recovery tests such as "if LI_p < 4". *)

val pair : expr -> expr -> expr
val fst_of : expr -> expr
val snd_of : expr -> expr
val map2 : (Nvm.Value.t -> Nvm.Value.t -> Nvm.Value.t) -> expr -> expr -> expr
val add : expr -> expr -> expr

val eq : expr -> expr -> bool exp
val neq : expr -> expr -> bool exp
val is_null : expr -> bool exp
val not_null : expr -> bool exp
val lt : expr -> expr -> bool exp
val gt : expr -> expr -> bool exp
val le : expr -> expr -> bool exp
val band : bool exp -> bool exp -> bool exp
val bor : bool exp -> bool exp -> bool exp
val bnot : bool exp -> bool exp

val at : Nvm.Memory.addr -> int exp
(** A fixed cell. *)

val slot : Nvm.Memory.addr -> int exp -> int exp
(** Cell [base + i] of an array. *)

val my_slot : Nvm.Memory.addr -> int exp
(** Cell [base + p] where [p] is the executing process. *)

val idx : string -> int exp
(** Integer value of a local, as an index expression. *)

val idx_pid : string -> int exp
(** Pid value of a local, as an index expression. *)

val pp_instr : instr Fmt.t
val pp : t Fmt.t
