(** Universal value type for simulated non-volatile memory.

    Covers every value the paper's algorithms store: integers, booleans,
    process identifiers, [null], strings and pairs (such as Algorithm 1's
    [<flag, value>] and Algorithm 2's [<id, value>]). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Pid of int
  | Str of string
  | Pair of t * t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : t Fmt.t
val to_string : t -> string

exception Type_error of string * t
(** Raised by accessors on a type mismatch — in simulations this usually
    means a crash-scrambled local variable was used uninitialised. *)

val pair : t -> t -> t
val as_int : t -> int
val as_bool : t -> bool
val as_pid : t -> int
val as_pair : t -> t * t
val fst : t -> t
val snd : t -> t
val is_null : t -> bool

val ack : t
(** The acknowledgment response of operations such as WRITE and INC. *)

val junk_stream : int -> unit -> t
(** [junk_stream seed] is a deterministic generator of arbitrary values,
    used to scramble volatile locals when a crash-failure occurs. *)
