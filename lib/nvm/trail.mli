(** A generic undo trail: a log of closures that revert in-place
    mutations, enabling trail-based backtracking instead of
    clone-per-branch exploration.  One trail is shared by every structure
    participating in a machine, so cross-structure undo order is globally
    LIFO — see {!Machine.Sim.mark}. *)

type t

type mark

val create : unit -> t

val push : t -> (unit -> unit) -> unit
(** Log one undo thunk; it runs when the trail is unwound past it. *)

val mark : t -> mark
(** The current trail position — O(1), no copying. *)

val depth : t -> int
(** Number of entries currently on the trail (diagnostics only). *)

val undo_to : t -> mark -> unit
(** Run every undo pushed since the mark, newest first, and reset the
    trail to it.
    @raise Invalid_argument on a mark from another trail or one already
    undone past. *)
