(** Simulated non-volatile shared memory.

    The paper's model provides base objects — persistent shared-memory
    variables supporting atomic read, write and read-modify-write
    operations — whose contents survive crash-failures.  This module is
    that substrate: a growable heap of {!Value.t} cells with atomic
    primitives and per-primitive access statistics.

    Atomicity: the simulator executes one instruction at a time, so every
    primitive here is trivially atomic.  The invariants the real NVRAM
    would enforce (persistence of every completed write) hold by
    construction because cells are never cleared by crash steps. *)

type addr = int

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable rmws : int;
}

type t = {
  mutable cells : Value.t array;
  mutable used : int;
  names : (addr, string) Hashtbl.t;
  stats : stats;
  mutable trail : Trail.t option;
      (** when set, every cell mutation logs an undo thunk so the heap can
          be reverted by {!Trail.undo_to}; access statistics are {e not}
          trailed (the machine snapshots them in its own mark) *)
}

let create () =
  {
    cells = Array.make 64 Value.Null;
    used = 0;
    names = Hashtbl.create 64;
    stats = { reads = 0; writes = 0; rmws = 0 };
    trail = None;
  }

let set_trail t trail = t.trail <- trail

(* The undo thunk indexes [t.cells] afresh, so it stays correct even if
   the cell array is reallocated by growth in between. *)
let log_cell t a =
  match t.trail with
  | None -> ()
  | Some tr ->
    let old = t.cells.(a) in
    Trail.push tr (fun () -> t.cells.(a) <- old)

let stats t = t.stats

let reset_stats t =
  t.stats.reads <- 0;
  t.stats.writes <- 0;
  t.stats.rmws <- 0

let size t = t.used

let ensure t n =
  if n > Array.length t.cells then begin
    let cells = Array.make (max n (2 * Array.length t.cells)) Value.Null in
    Array.blit t.cells 0 cells 0 t.used;
    t.cells <- cells
  end

(* Allocation during a trailed run is legal (though algorithms normally
   allocate only at build time): the undo shrinks [used] back, which is
   all later allocations observe; stale name-table entries are harmless
   diagnostics. *)
let log_alloc t n =
  match t.trail with
  | None -> ()
  | Some tr ->
    let old = t.used in
    ignore n;
    Trail.push tr (fun () -> t.used <- old)

let alloc ?name t init =
  log_alloc t 1;
  ensure t (t.used + 1);
  let a = t.used in
  t.cells.(a) <- init;
  t.used <- t.used + 1;
  (match name with None -> () | Some n -> Hashtbl.replace t.names a n);
  a

let alloc_array ?name t n init =
  if n < 0 then invalid_arg "Memory.alloc_array: negative size";
  log_alloc t n;
  ensure t (t.used + n);
  let base = t.used in
  for i = 0 to n - 1 do
    t.cells.(base + i) <- init
  done;
  t.used <- t.used + n;
  (match name with
  | None -> ()
  | Some nm ->
    for i = 0 to n - 1 do
      Hashtbl.replace t.names (base + i) (Printf.sprintf "%s[%d]" nm i)
    done);
  base

let check t a =
  if a < 0 || a >= t.used then
    invalid_arg (Printf.sprintf "Memory: address %d out of bounds (size %d)" a t.used)

let name t a =
  match Hashtbl.find_opt t.names a with
  | Some n -> n
  | None -> Printf.sprintf "cell#%d" a

let read t a =
  check t a;
  t.stats.reads <- t.stats.reads + 1;
  t.cells.(a)

let write t a v =
  check t a;
  t.stats.writes <- t.stats.writes + 1;
  log_cell t a;
  t.cells.(a) <- v

(* Read-modify-write primitives.  Each counts as a single atomic access. *)

let cas t a ~expected ~desired =
  check t a;
  t.stats.rmws <- t.stats.rmws + 1;
  if Value.equal t.cells.(a) expected then begin
    log_cell t a;
    t.cells.(a) <- desired;
    true
  end
  else false

(** Test-and-set on an integer cell: atomically write 1, return the previous
    value.  The paper's non-resettable TAS base object. *)
let tas t a =
  check t a;
  t.stats.rmws <- t.stats.rmws + 1;
  log_cell t a;
  let prev = t.cells.(a) in
  t.cells.(a) <- Value.Int 1;
  prev

let fetch_and_add t a delta =
  check t a;
  t.stats.rmws <- t.stats.rmws + 1;
  log_cell t a;
  let prev = Value.as_int t.cells.(a) in
  t.cells.(a) <- Value.Int (prev + delta);
  Value.Int prev

(** Non-counting read used by checkers, debuggers and pretty-printers; not
    available to simulated algorithms. *)
let peek t a =
  check t a;
  t.cells.(a)

let snapshot t = Array.sub t.cells 0 t.used

let restore t snap =
  (match t.trail with
  | None -> ()
  | Some tr ->
    let old_cells = Array.sub t.cells 0 t.used and old_used = t.used in
    Trail.push tr (fun () ->
        ensure t old_used;
        Array.blit old_cells 0 t.cells 0 old_used;
        t.used <- old_used));
  ensure t (Array.length snap);
  Array.blit snap 0 t.cells 0 (Array.length snap);
  t.used <- Array.length snap

(* The copy is trail-free: it is an independent snapshot, so undoing the
   original past the copy point must not (and does not) affect it. *)
let copy t =
  {
    cells = Array.copy t.cells;
    used = t.used;
    names = Hashtbl.copy t.names;
    stats = { reads = t.stats.reads; writes = t.stats.writes; rmws = t.stats.rmws };
    trail = None;
  }

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  for a = 0 to t.used - 1 do
    Fmt.pf ppf "%s = %a@," (name t a) Value.pp t.cells.(a)
  done;
  Fmt.pf ppf "@]"
