(** A generic undo trail: a log of closures that revert in-place
    mutations, enabling trail-based backtracking (mutate one structure,
    revert on backtrack) instead of clone-per-branch exploration.

    The trail is a persistent (immutable) list of undo thunks held behind
    one mutable cursor, so a {!mark} is just the list at the time it was
    taken: {!undo_to} runs every thunk pushed since, newest first, and
    physical equality with the saved list tells it where to stop.  LIFO
    order is what makes composite undo correct — if a location was
    mutated twice, the later mutation is reverted first, so the earlier
    thunk re-installs the value the location held at the mark.

    One trail is shared by every structure participating in a machine
    (NVRAM cells, volatile environments, process records), which keeps
    cross-structure undo ordering global without any coordination. *)

type t = { mutable undos : (unit -> unit) list }

type mark = (unit -> unit) list

let create () = { undos = [] }

let push t f = t.undos <- f :: t.undos

let mark t = t.undos

(** Number of entries currently on the trail (diagnostics only). *)
let depth t = List.length t.undos

(** Run every undo pushed since [m] was taken, newest first, and reset
    the trail to [m].  [m] must come from this trail and must not have
    been undone past already; an exhausted trail that never meets [m]
    indicates exactly that misuse.
    @raise Invalid_argument on a foreign or stale mark. *)
let undo_to t (m : mark) =
  let rec go l =
    if l != m then
      match l with
      | f :: rest ->
        f ();
        go rest
      | [] -> invalid_arg "Trail.undo_to: mark is not a prefix of this trail"
  in
  go t.undos;
  t.undos <- m
