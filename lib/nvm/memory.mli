(** Simulated non-volatile shared memory: a heap of {!Value.t} cells with
    atomic read / write / read-modify-write primitives.  Cell contents
    survive crash-failures by construction (crash steps never touch them),
    exactly as the paper's model prescribes for NVRAM variables. *)

type addr = int
type t

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable rmws : int;
}

val create : unit -> t

val alloc : ?name:string -> t -> Value.t -> addr
(** Allocate one persistent cell with the given initial value. *)

val alloc_array : ?name:string -> t -> int -> Value.t -> addr
(** [alloc_array t n init] allocates [n] contiguous cells, returning the base
    address; cell [i] is at [base + i]. *)

val read : t -> addr -> Value.t
val write : t -> addr -> Value.t -> unit

val cas : t -> addr -> expected:Value.t -> desired:Value.t -> bool
(** Atomic compare-and-swap using structural value equality. *)

val tas : t -> addr -> Value.t
(** Atomic test-and-set: writes [Int 1], returns the previous contents. *)

val fetch_and_add : t -> addr -> int -> Value.t
(** Atomic fetch-and-add on an integer cell; returns the previous value. *)

val peek : t -> addr -> Value.t
(** Read without counting an access; for checkers and debugging only. *)

val snapshot : t -> Value.t array
(** Copy of the current heap contents, for state exploration. *)

val restore : t -> Value.t array -> unit
(** Restore a heap snapshot taken with {!snapshot}. *)

val copy : t -> t
(** Independent deep copy (cells, names and statistics). *)

val set_trail : t -> Trail.t option -> unit
(** Attach (or detach) an undo trail.  While attached, every cell
    mutation ([write]/[cas]/[tas]/[fetch_and_add]/[restore]) and every
    allocation logs an undo thunk, so {!Trail.undo_to} reverts the heap
    in-place.  Access {!stats} are deliberately {e not} trailed — the
    machine snapshots them in its own mark.  {!copy} never propagates the
    trail. *)

val name : t -> addr -> string
val size : t -> int
val stats : t -> stats
val reset_stats : t -> unit
val pp : t Fmt.t
