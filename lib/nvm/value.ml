(** Universal value type stored in simulated non-volatile memory cells and in
    volatile process-local variables.

    The paper's model manipulates integers, booleans, process identifiers,
    [null] and pairs (e.g. the [S_p] variable of Algorithm 1 stores a
    [<flag, value>] pair, and the CAS object of Algorithm 2 stores an
    [<id, value>] pair).  A single sum type covers all of them so the
    virtual machine, the history checker and the sequential specifications
    can exchange values freely. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Pid of int  (** a process identifier, kept distinct from plain integers *)
  | Str of string
  | Pair of t * t

let rec equal a b =
  match a, b with
  | Null, Null -> true
  | Bool x, Bool y -> Bool.equal x y
  | Int x, Int y -> Int.equal x y
  | Pid x, Pid y -> Int.equal x y
  | Str x, Str y -> String.equal x y
  | Pair (x1, x2), Pair (y1, y2) -> equal x1 y1 && equal x2 y2
  | (Null | Bool _ | Int _ | Pid _ | Str _ | Pair _), _ -> false

let rec compare a b =
  let tag = function
    | Null -> 0
    | Bool _ -> 1
    | Int _ -> 2
    | Pid _ -> 3
    | Str _ -> 4
    | Pair _ -> 5
  in
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Pid x, Pid y -> Int.compare x y
  | Str x, Str y -> String.compare x y
  | Pair (x1, x2), Pair (y1, y2) ->
    let c = compare x1 y1 in
    if c <> 0 then c else compare x2 y2
  | _, _ -> Int.compare (tag a) (tag b)

let rec hash v =
  match v with
  | Null -> 0x9e37
  | Bool b -> if b then 3 else 5
  | Int i -> Hashtbl.hash i
  | Pid p -> 0x5bd1 lxor Hashtbl.hash p
  | Str s -> Hashtbl.hash s
  | Pair (a, b) -> (hash a * 65599) + hash b

let rec pp ppf v =
  match v with
  | Null -> Fmt.string ppf "null"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Pid p -> Fmt.pf ppf "p%d" p
  | Str s -> Fmt.pf ppf "%S" s
  | Pair (a, b) -> Fmt.pf ppf "<%a,%a>" pp a pp b

let to_string v = Fmt.str "%a" pp v

(* Constructors and accessors; accessors raise [Type_error] on a mismatch,
   which in the simulator indicates either an algorithm bug or a local
   variable that was scrambled by a crash and then used without
   reinitialisation -- exactly the failure the paper's model exposes. *)

exception Type_error of string * t

let type_error what v = raise (Type_error (what, v))

let pair a b = Pair (a, b)

let as_int = function Int i -> i | v -> type_error "int" v
let as_bool = function Bool b -> b | v -> type_error "bool" v
let as_pid = function Pid p -> p | v -> type_error "pid" v
let as_pair = function Pair (a, b) -> (a, b) | v -> type_error "pair" v
let fst = function Pair (a, _) -> a | v -> type_error "pair" v
let snd = function Pair (_, b) -> b | v -> type_error "pair" v

let is_null = function Null -> true | _ -> false

(** The acknowledgment value returned by operations such as WRITE and INC. *)
let ack = Str "ack"

(** Deterministic "arbitrary junk" generator used to scramble volatile local
    variables on a crash.  The stream is seeded so that failing executions
    can be replayed. *)
let junk_stream seed =
  let state = ref seed in
  let next () =
    (* xorshift, kept local to avoid depending on Random's global state *)
    let s = !state in
    let s = s lxor (s lsl 13) in
    let s = s lxor (s lsr 7) in
    let s = s lxor (s lsl 17) in
    state := s;
    s land max_int
  in
  fun () ->
    match next () mod 6 with
    | 0 -> Null
    | 1 -> Bool (next () land 1 = 0)
    | 2 -> Int (next () mod 1024 - 512)
    | 3 -> Pid (next () mod 16)
    | 4 -> Str "junk"
    | _ -> Pair (Int (next () mod 64), Bool (next () land 1 = 0))
