(** Valency analysis over crash-free executions, following the proof of
    Theorem 4.

    A configuration [C] is {e p-valent} if there is a crash-free execution
    starting from [C] in which [p] returns 0 or has already returned 0;
    {e bivalent} if it is p-valent for two distinct processes, and
    {e univalent} otherwise.  The analysis enumerates every reachable
    crash-free configuration (memoised on the canonical state key) and
    computes, for each, the set of processes that can return 0. *)

module Table = Machine.Fingerprint.Table

type t = {
  memo : int Table.t;
      (** configuration fingerprint -> bitmask of processes that can return 0 *)
  mutable configs : int;
}

let create () = { memo = Table.create 4096; configs = 0 }

let returned_zero sim p =
  List.exists (fun (_, v) -> Nvm.Value.equal v (Nvm.Value.Int 0)) (Machine.Sim.results sim p)

(** Bitmask of processes that can return 0 in some crash-free execution
    from [sim]'s configuration. *)
let rec zero_mask t sim =
  let key = Machine.Fingerprint.of_sim sim in
  match Table.find_opt t.memo key with
  | Some m -> m
  | None ->
    t.configs <- t.configs + 1;
    (* break cycles (busy-wait loops) pessimistically: a revisited
       configuration contributes nothing new on this branch *)
    Table.replace t.memo key 0;
    let base =
      let m = ref 0 in
      for p = 0 to Machine.Sim.nprocs sim - 1 do
        if returned_zero sim p then m := !m lor (1 lsl p)
      done;
      !m
    in
    let m = ref base in
    for p = 0 to Machine.Sim.nprocs sim - 1 do
      if Machine.Sim.enabled sim p then begin
        let s = Machine.Sim.clone sim in
        Machine.Sim.step s p;
        m := !m lor zero_mask t s
      end
    done;
    Table.replace t.memo key !m;
    !m

type verdict = Bivalent of int list | Univalent of int | Zerovalent

let classify t sim =
  let m = zero_mask t sim in
  let procs =
    List.filter (fun p -> m land (1 lsl p) <> 0) (List.init (Machine.Sim.nprocs sim) Fun.id)
  in
  match procs with
  | [] -> Zerovalent
  | [ p ] -> Univalent p
  | ps -> Bivalent ps

let pp_verdict ppf = function
  | Bivalent ps -> Fmt.pf ppf "bivalent {%a}" Fmt.(list ~sep:comma int) ps
  | Univalent p -> Fmt.pf ppf "p%d-valent" p
  | Zerovalent -> Fmt.string ppf "no process can return 0"

(** Information about the next step each process would take, used to verify
    the critical-step claim of the proof (both processes must be about to
    apply [t&s] to the same base object). *)
type pending_step = {
  ps_pid : int;
  ps_kind : string;  (** "read" | "write" | "t&s" | "cas" | "local" | ... *)
  ps_addr : Nvm.Memory.addr option;
}

let pending_step sim p =
  let pr = Machine.Sim.proc sim p in
  match pr.Machine.Sim.stack with
  | [] -> None
  | f :: _ ->
    let prog = Machine.Sim.current_program f in
    if f.Machine.Sim.f_pc >= Machine.Program.length prog then None
    else
      let ctx = Machine.Sim.ctx_of sim f p in
      let env = f.Machine.Sim.f_env in
      let kind, addr =
        match Machine.Program.instr prog f.Machine.Sim.f_pc with
        | Machine.Program.Read (_, a) -> ("read", Some (a ctx env))
        | Machine.Program.Write (a, _) -> ("write", Some (a ctx env))
        | Machine.Program.Cas_prim (_, a, _, _) -> ("cas", Some (a ctx env))
        | Machine.Program.Tas_prim (_, a) -> ("t&s", Some (a ctx env))
        | Machine.Program.Faa_prim (_, a, _) -> ("faa", Some (a ctx env))
        | Machine.Program.Invoke _ -> ("invoke", None)
        | Machine.Program.Assign _ | Machine.Program.Branch_if _ | Machine.Program.Jump _
        | Machine.Program.Ret _ | Machine.Program.Resume _ ->
          ("local", None)
      in
      Some { ps_pid = p; ps_kind = kind; ps_addr = addr }

type critical = {
  sim : Machine.Sim.t;  (** the critical configuration *)
  depth : int;  (** steps from the initial configuration *)
  steps : pending_step list;  (** the processes' pending (critical) steps *)
}

(** Search for a {e critical} configuration: a bivalent configuration every
    enabled step of which leads to a univalent configuration.  Follows the
    proof: keep extending inside the bivalent region; because the T&S
    operation is wait-free the region is finite and a critical
    configuration must exist. *)
let find_critical ?(max_depth = 500) t sim0 =
  let rec walk sim depth =
    if depth > max_depth then None
    else begin
      let enabled =
        List.filter (fun p -> Machine.Sim.enabled sim p)
          (List.init (Machine.Sim.nprocs sim) Fun.id)
      in
      let children =
        List.map
          (fun p ->
            let s = Machine.Sim.clone sim in
            Machine.Sim.step s p;
            (p, s))
          enabled
      in
      let bivalent_children =
        List.filter
          (fun (_, s) -> match classify t s with Bivalent _ -> true | _ -> false)
          children
      in
      match bivalent_children with
      | [] ->
        let steps = List.filter_map (fun p -> pending_step sim p) enabled in
        Some { sim; depth; steps }
      | (_, s) :: _ -> walk s (depth + 1)
    end
  in
  match classify t sim0 with Bivalent _ -> walk sim0 0 | _ -> None
