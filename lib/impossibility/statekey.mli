(** Canonical serialisation of a machine configuration — a string-keyed
    compatibility layer over {!Machine.Fingerprint}, which defines what
    the key covers (everything that determines future behaviour; history
    bookkeeping such as call ids is excluded).  Prefer
    {!Machine.Fingerprint} for new hash-table keys. *)

val of_sim : Machine.Sim.t -> string
val frame_key : Machine.Sim.frame -> string
