(** Canonical serialisation of a machine configuration, used to memoise
    the valency analysis.  The key covers everything that determines
    future behaviour (memory, statuses, results, scripts remaining,
    frame stacks with locals) and deliberately excludes history
    bookkeeping such as call ids. *)

val of_sim : Machine.Sim.t -> string
val frame_key : Machine.Sim.frame -> string
