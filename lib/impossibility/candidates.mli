(** Candidate recoverable-TAS implementations whose recovery functions are
    wait-free — the algorithms Theorem 4 proves cannot be correct.  Each
    is a natural attempt; {!Theorem.analyze_candidate} exhibits its
    concrete violating schedule. *)

val reexec : Machine.Sim.t -> name:string -> Machine.Objdef.instance
(** Recovery re-executes the primitive t&s (a crashed winner loses its
    win). *)

val announce : Machine.Sim.t -> name:string -> Machine.Objdef.instance
(** The winner announces itself after the t&s; recovery trusts the
    announcement and re-executes otherwise (fails in the
    win-to-announce window). *)

val pessimistic : Machine.Sim.t -> name:string -> Machine.Objdef.instance
(** Like [announce], but returns 1 when in doubt (fails even solo). *)

type candidate = {
  cand_name : string;
  make : Machine.Sim.t -> name:string -> Machine.Objdef.instance;
}

val all : candidate list
