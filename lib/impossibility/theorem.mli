(** Executable demonstration of Theorem 4: no recoverable non-resettable
    TAS from read/write and non-recoverable TAS base objects can make
    both [T&S] and [T&S.RECOVER] wait-free.

    For an implementation, the analysis reproduces the proof's structure
    on a two-process instance: bivalent initial configuration; critical
    configuration whose pending steps are both t&s on the same base
    object; indistinguishable crash extensions; then either a concrete
    NRL-violating execution (wait-free candidates) or blocking recovery
    (the paper's Algorithm 3). *)

type crash_extension = {
  ret_after_pq : Nvm.Value.t option;
      (** p's response after [p.t&s; q.t&s; crash p; p solo]; [None] if p
          never completed (blocked) *)
  ret_after_qp : Nvm.Value.t option;
  solo_blocked : bool;
  indistinguishable : bool;
      (** both orders produced the same response — the proof's key step *)
}

type report = {
  algorithm : string;
  recovery_wait_free : bool;  (** the implementation's claimed property *)
  initial_bivalent : bool;
  configs_explored : int;
  critical_depth : int option;
  critical_steps_are_tas_on_same_object : bool option;
  crash_extension : crash_extension option;
  violation : string option;  (** a concrete NRL-violating schedule, if any *)
  explored_terminals : int;
  explored_truncated : int;
}

val setup : (Machine.Sim.t -> name:string -> Machine.Objdef.instance) -> Machine.Sim.t
(** Two processes, each scripted to perform a single T&S. *)

val analyze :
  ?solo_bound:int ->
  ?explore_steps:int ->
  ?exhaustive:bool ->
  name:string ->
  recovery_wait_free:bool ->
  (Machine.Sim.t -> name:string -> Machine.Objdef.instance) ->
  report

val analyze_paper_algorithm : ?exhaustive:bool -> unit -> report
(** Algorithm 3.  The exhaustive violation search is off by default: its
    busy-wait recovery unrolls without bound under exploration; NRL
    conformance is established by the randomized torture suite instead. *)

val analyze_candidate : Candidates.candidate -> report

val pp_report : report Fmt.t
