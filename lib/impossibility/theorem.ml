(** Executable demonstration of Theorem 4: no recoverable non-resettable
    TAS from read/write and (non-recoverable) non-resettable TAS base
    objects can make both the [T&S] operation and [T&S.RECOVER] wait-free.

    For a given implementation (the paper's Algorithm 3 or one of the
    wait-free-recovery {!Candidates}), the analysis reproduces the proof's
    structure on a two-process instance:

    + the initial configuration is {e bivalent};
    + following the bivalence-preserving extension, a {e critical}
      configuration is reached, at which both processes' pending steps are
      applications of [t&s] to the {e same} base object;
    + extending the critical configuration by the two t&s steps in either
      order and then crashing the first process yields configurations that
      are {e indistinguishable} to it, so a wait-free recovery returns the
      same value after both — one of which is wrong;
    + a bounded exhaustive search over schedules with one crash either
      finds a concrete NRL-violating execution (wait-free candidates) or
      finds none and instead detects that recovery {e blocks} (the paper's
      algorithm). *)

type crash_extension = {
  ret_after_pq : Nvm.Value.t option;
      (** p's response after [p.t&s; q.t&s; crash p; p solo], [None] if p
          never completed (blocked) *)
  ret_after_qp : Nvm.Value.t option;  (** same for [q.t&s; p.t&s; crash p; p solo] *)
  solo_blocked : bool;  (** p's solo recovery failed to complete within the bound *)
  indistinguishable : bool;
      (** both orders produced the same response — the proof's key step *)
}

type report = {
  algorithm : string;
  recovery_wait_free : bool;  (** claimed property of the implementation *)
  initial_bivalent : bool;
  configs_explored : int;
  critical_depth : int option;
  critical_steps_are_tas_on_same_object : bool option;
  crash_extension : crash_extension option;
  violation : string option;  (** a concrete NRL-violating schedule, if any *)
  explored_terminals : int;
  explored_truncated : int;
}

(** Fresh two-process instance of [maker], both processes scripted to
    perform a single T&S. *)
let setup maker =
  let sim = Machine.Sim.create ~nprocs:2 () in
  let inst = maker sim ~name:"T" in
  for p = 0 to 1 do
    Machine.Sim.set_script sim p [ (inst, "T&S", Machine.Sim.Args [||]) ]
  done;
  sim

(* Run [p] solo for at most [bound] steps or until it has completed its
   operation; returns its T&S response if completed. *)
let solo_run sim p ~bound =
  let steps = ref 0 in
  while
    !steps < bound
    && Machine.Sim.results sim p = []
    && (Machine.Sim.enabled sim p || Machine.Sim.can_recover sim p)
  do
    if Machine.Sim.can_recover sim p then Machine.Sim.recover sim p
    else Machine.Sim.step sim p;
    incr steps
  done;
  match Machine.Sim.results sim p with (_, v) :: _ -> Some v | [] -> None

(* Advance [p] until it is about to execute its pending t&s (kind "t&s"),
   then execute that one step.  Returns false if p never reaches a t&s. *)
let step_through_tas sim p ~bound =
  let rec go n =
    if n > bound then false
    else
      match Valency.pending_step sim p with
      | Some { Valency.ps_kind = "t&s"; _ } ->
        Machine.Sim.step sim p;
        true
      | _ ->
        if Machine.Sim.enabled sim p then begin
          Machine.Sim.step sim p;
          go (n + 1)
        end
        else false
  in
  go 0

let crash_experiment critical_sim ~bound =
  let run order =
    let s = Machine.Sim.clone critical_sim in
    let first, second = order in
    (* both processes are poised at their critical t&s steps *)
    let ok1 = step_through_tas s first ~bound:4 in
    let ok2 = step_through_tas s second ~bound:4 in
    if not (ok1 && ok2) then None
    else begin
      Machine.Sim.crash s 0;
      Machine.Sim.recover s 0;
      Some (solo_run s 0 ~bound)
    end
  in
  let ret_pq = run (0, 1) in
  let ret_qp = run (1, 0) in
  let flat = function Some (Some v) -> Some v | _ -> None in
  let a = flat ret_pq and b = flat ret_qp in
  {
    ret_after_pq = a;
    ret_after_qp = b;
    solo_blocked = (a = None || b = None);
    indistinguishable =
      (match a, b with Some x, Some y -> Nvm.Value.equal x y | None, None -> true | _ -> false);
  }

let spec_for sim o =
  let inst = Machine.Objdef.find (Machine.Sim.registry sim) o in
  Linearize.Spec.of_otype inst.Machine.Objdef.otype

(** Analyse one implementation.  [recovery_wait_free] documents the claimed
    property (true for the candidates, false for Algorithm 3). *)
let analyze ?(solo_bound = 300) ?(explore_steps = 120) ?(exhaustive = true) ~name
    ~recovery_wait_free maker =
  let v = Valency.create () in
  let sim0 = setup maker in
  let initial_bivalent =
    match Valency.classify v sim0 with Valency.Bivalent _ -> true | _ -> false
  in
  let critical = Valency.find_critical v (setup maker) in
  let critical_depth = Option.map (fun c -> c.Valency.depth) critical in
  let critical_same =
    Option.map
      (fun c ->
        match c.Valency.steps with
        | [ a; b ] ->
          a.Valency.ps_kind = "t&s" && b.Valency.ps_kind = "t&s"
          && a.Valency.ps_addr = b.Valency.ps_addr
        | _ -> false)
      critical
  in
  let crash_ext =
    Option.map (fun c -> crash_experiment c.Valency.sim ~bound:solo_bound) critical
  in
  (* bounded exhaustive search for an NRL violation with one crash of p0 *)
  let cfg =
    {
      Machine.Explore.default_config with
      max_steps = explore_steps;
      max_crashes = 1;
      crash_procs = [ 0 ];
      crash_mid_op_only = true;
    }
  in
  let check sim =
    let r =
      Linearize.Nrl.check ~spec_for:(spec_for sim) ~nprocs:(Machine.Sim.nprocs sim)
        (Machine.Sim.history sim)
    in
    if Linearize.Nrl.ok r then None else Some (Linearize.Nrl.explain r)
  in
  let violation, stats =
    if exhaustive then Machine.Explore.find_violation ~cfg ~check (setup maker)
    else (None, Machine.Explore.zero_stats ())
  in
  {
    algorithm = name;
    recovery_wait_free;
    initial_bivalent;
    configs_explored = v.Valency.configs;
    critical_depth;
    critical_steps_are_tas_on_same_object = critical_same;
    crash_extension = crash_ext;
    violation = Option.map snd violation;
    explored_terminals = stats.Machine.Explore.terminals;
    explored_truncated = stats.Machine.Explore.truncated;
  }

(** Algorithm 3 has busy-waiting recovery, so the exhaustive schedule
    search does not terminate usefully (spin loops unroll without bound);
    its NRL conformance is established by the randomized torture suite and
    by bounded exploration with immediate recovery instead.  The valency
    analysis, the critical configuration and the blocking demonstration
    below are the interesting part. *)
let analyze_paper_algorithm ?(exhaustive = false) () =
  analyze ~exhaustive ~name:"Algorithm 3 (paper)" ~recovery_wait_free:false
    (fun sim ~name -> Objects.Tas_obj.make sim ~name)

let analyze_candidate (c : Candidates.candidate) =
  analyze ~name:("candidate " ^ c.Candidates.cand_name) ~recovery_wait_free:true
    c.Candidates.make

let pp_report ppf r =
  Fmt.pf ppf "@[<v>%s:@," r.algorithm;
  Fmt.pf ppf "  recovery claimed wait-free: %b@," r.recovery_wait_free;
  Fmt.pf ppf "  initial configuration bivalent: %b@," r.initial_bivalent;
  Fmt.pf ppf "  crash-free configurations explored: %d@," r.configs_explored;
  (match r.critical_depth with
  | Some d -> Fmt.pf ppf "  critical configuration found at depth %d@," d
  | None -> Fmt.pf ppf "  no critical configuration found@,");
  (match r.critical_steps_are_tas_on_same_object with
  | Some b -> Fmt.pf ppf "  critical steps are t&s on the same base object: %b@," b
  | None -> ());
  (match r.crash_extension with
  | Some e ->
    Fmt.pf ppf "  crash extension: p's solo recovery after (p;q;crash) -> %a, after (q;p;crash) -> %a@,"
      Fmt.(option ~none:(any "blocked") Nvm.Value.pp)
      e.ret_after_pq
      Fmt.(option ~none:(any "blocked") Nvm.Value.pp)
      e.ret_after_qp;
    Fmt.pf ppf "  indistinguishable to p: %b; recovery blocked: %b@," e.indistinguishable
      e.solo_blocked
  | None -> ());
  (match r.violation with
  | Some reason -> Fmt.pf ppf "  NRL violation found: %s@," reason
  | None ->
    Fmt.pf ppf "  no NRL violation in bounded search (%d terminals, %d truncated)@,"
      r.explored_terminals r.explored_truncated);
  Fmt.pf ppf "@]"
