(** Candidate recoverable TAS implementations with {e wait-free} recovery
    functions — the algorithms Theorem 4 proves cannot exist (from
    read/write and non-recoverable TAS base objects).  Each candidate is a
    natural attempt; the explorer exhibits a concrete schedule-with-crash
    under which its history violates NRL, and the valency analysis shows
    where the indistinguishability argument bites.

    For contrast, the paper's Algorithm 3 ({!Objects.Tas_obj}) is correct —
    and its recovery function is blocking, as the theorem says it must
    be. *)

open Machine.Program

let op name body recover = (name, { Machine.Objdef.op_name = name; body; recover })

(** Candidate "reexec": recovery re-executes the primitive t&s.  Fails
    because a winner that crashes before persisting its response loses its
    win: re-execution returns 1, so every completed T&S can return 1. *)
let reexec sim ~name = Objects.Naive.make_tas ~strategy:`Reexecute sim ~name

(** Candidate "announce": the winner announces itself in [Win] after the
    primitive t&s; recovery trusts the announcement ([Win = p] means I
    won) and re-executes otherwise.  Fails in the window between winning
    the t&s and writing [Win]: the crashed winner re-executes, reads 1,
    and nobody ever returns 0. *)
let announce sim ~name =
  let mem = Machine.Sim.mem sim in
  let t = Nvm.Memory.alloc ~name:(name ^ ".t") mem (Nvm.Value.Int 0) in
  let win = Nvm.Memory.alloc ~name:(name ^ ".Win") mem Nvm.Value.Null in
  let body =
    make ~name:"T&S"
      [
        (2, Tas_prim ("ret", at t));
        (3, Branch_if (neq (local "ret") (int 0), 5));
        (4, Write (at win, self));
        (5, Ret (local "ret"));
      ]
  in
  let recover =
    make ~name:"T&S.RECOVER"
      [
        (7, Read ("w", at win));
        (8, Branch_if (bnot (eq (local "w") self), 10));
        (9, Ret (int 0));
        (10, Resume 2);
      ]
  in
  Machine.Objdef.register (Machine.Sim.registry sim) ~otype:"tas" ~name [ op "T&S" body recover ]

(** Candidate "pessimistic": like "announce" but when in doubt returns 1
    instead of re-executing.  Fails even solo: a process that crashes
    right after winning the t&s recovers, sees no announcement, returns 1
    — yet it is the only process, so its (completed) T&S must return 0. *)
let pessimistic sim ~name =
  let mem = Machine.Sim.mem sim in
  let t = Nvm.Memory.alloc ~name:(name ^ ".t") mem (Nvm.Value.Int 0) in
  let win = Nvm.Memory.alloc ~name:(name ^ ".Win") mem Nvm.Value.Null in
  let started =
    Nvm.Memory.alloc_array ~name:(name ^ ".Started") mem (Machine.Sim.nprocs sim)
      (Nvm.Value.Int 0)
  in
  let body =
    make ~name:"T&S"
      [
        (2, Write (my_slot started, int 1));
        (3, Tas_prim ("ret", at t));
        (4, Branch_if (neq (local "ret") (int 0), 6));
        (5, Write (at win, self));
        (6, Ret (local "ret"));
      ]
  in
  let recover =
    make ~name:"T&S.RECOVER"
      [
        (8, Read ("w", at win));
        (9, Branch_if (bnot (eq (local "w") self), 11));
        (10, Ret (int 0));
        (11, Read ("st", my_slot started));
        (12, Branch_if (eq (local "st") (int 0), 14));
        (13, Ret (int 1));  (* in doubt after starting: claim to have lost *)
        (14, Resume 2);
      ]
  in
  Machine.Objdef.register (Machine.Sim.registry sim) ~otype:"tas" ~name [ op "T&S" body recover ]

type candidate = { cand_name : string; make : Machine.Sim.t -> name:string -> Machine.Objdef.instance }

let all =
  [
    { cand_name = "reexec"; make = (fun sim ~name -> reexec sim ~name) };
    { cand_name = "announce"; make = (fun sim ~name -> announce sim ~name) };
    { cand_name = "pessimistic"; make = (fun sim ~name -> pessimistic sim ~name) };
  ]
