(** Canonical serialisation of a machine configuration, used to memoise
    the valency analysis over reachable configurations.

    The key covers everything that determines future behaviour: shared
    memory, and for each process its status, results so far, remaining
    script length, and frame stack (object, operation, phase, pc, [LI],
    interrupted flag, local bindings).  History bookkeeping (call ids) is
    deliberately excluded: two configurations with identical keys generate
    identical future behaviour even if they were reached by different
    interleavings. *)

let frame_key (f : Machine.Sim.frame) =
  let b = Buffer.create 64 in
  Buffer.add_string b (string_of_int f.Machine.Sim.f_obj.Machine.Objdef.id);
  Buffer.add_char b '.';
  Buffer.add_string b f.Machine.Sim.f_op.Machine.Objdef.op_name;
  Buffer.add_string b
    (match f.Machine.Sim.f_phase with Machine.Sim.Body -> "/b" | Machine.Sim.Recovery -> "/r");
  Buffer.add_string b (Printf.sprintf "@%d;li%d" f.Machine.Sim.f_pc f.Machine.Sim.f_li);
  if f.Machine.Sim.f_interrupted then Buffer.add_string b "!";
  Buffer.add_char b '{';
  List.iter
    (fun (k, v) ->
      Buffer.add_string b k;
      Buffer.add_char b '=';
      Buffer.add_string b (Nvm.Value.to_string v);
      Buffer.add_char b ';')
    (Machine.Env.bindings f.Machine.Sim.f_env);
  Buffer.add_char b '}';
  Array.iter
    (fun a ->
      Buffer.add_string b (Nvm.Value.to_string a);
      Buffer.add_char b ',')
    f.Machine.Sim.f_args;
  Buffer.contents b

let of_sim (sim : Machine.Sim.t) =
  let b = Buffer.create 256 in
  Array.iter
    (fun v ->
      Buffer.add_string b (Nvm.Value.to_string v);
      Buffer.add_char b '|')
    (Nvm.Memory.snapshot (Machine.Sim.mem sim));
  for p = 0 to Machine.Sim.nprocs sim - 1 do
    let pr = Machine.Sim.proc sim p in
    Buffer.add_string b
      (match pr.Machine.Sim.status with Machine.Sim.Ready -> "R" | Machine.Sim.Crashed -> "C");
    Buffer.add_string b (string_of_int (List.length pr.Machine.Sim.script));
    Buffer.add_char b ':';
    List.iter
      (fun (op, v) ->
        Buffer.add_string b op;
        Buffer.add_string b (Nvm.Value.to_string v);
        Buffer.add_char b ',')
      pr.Machine.Sim.results;
    Buffer.add_char b '[';
    List.iter
      (fun f ->
        Buffer.add_string b (frame_key f);
        Buffer.add_char b '/')
      pr.Machine.Sim.stack;
    Buffer.add_string b "]#"
  done;
  Buffer.contents b
