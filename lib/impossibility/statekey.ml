(** Canonical serialisation of a machine configuration.

    A thin string-keyed compatibility layer over {!Machine.Fingerprint},
    which holds the actual definition of "everything that determines
    future behaviour" (shared memory, junk-generator state, and for each
    process its status, results, remaining script and frame stack with
    locals).  History bookkeeping (call ids) is excluded: two
    configurations with identical keys generate identical future
    behaviour even if they were reached by different interleavings.

    New code that keys tables on configurations should use
    {!Machine.Fingerprint} directly — structural, hashed once, no string
    building; strings remain useful for ordered maps and debugging. *)

let of_sim (sim : Machine.Sim.t) = Machine.Fingerprint.to_string (Machine.Fingerprint.of_sim sim)

let frame_key (f : Machine.Sim.frame) =
  let b = Buffer.create 64 in
  Buffer.add_string b (string_of_int f.Machine.Sim.f_obj.Machine.Objdef.id);
  Buffer.add_char b '.';
  Buffer.add_string b f.Machine.Sim.f_op.Machine.Objdef.op_name;
  Buffer.add_string b
    (match f.Machine.Sim.f_phase with Machine.Sim.Body -> "/b" | Machine.Sim.Recovery -> "/r");
  Buffer.add_string b (Printf.sprintf "@%d;li%d" f.Machine.Sim.f_pc f.Machine.Sim.f_li);
  if f.Machine.Sim.f_interrupted then Buffer.add_string b "!";
  Buffer.add_char b '{';
  List.iter
    (fun (k, v) ->
      Buffer.add_string b k;
      Buffer.add_char b '=';
      Buffer.add_string b (Nvm.Value.to_string v);
      Buffer.add_char b ';')
    (Machine.Env.bindings f.Machine.Sim.f_env);
  Buffer.add_char b '}';
  Array.iter
    (fun a ->
      Buffer.add_string b (Nvm.Value.to_string a);
      Buffer.add_char b ',')
    f.Machine.Sim.f_args;
  Buffer.contents b
