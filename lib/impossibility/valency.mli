(** Valency analysis over crash-free executions, following the proof of
    Theorem 4.

    A configuration is {e p-valent} if some crash-free execution from it
    has [p] return 0 (or [p] already did); {e bivalent} if p-valent for
    two distinct processes.  The analysis enumerates reachable crash-free
    configurations with memoisation.  It assumes loop-free operation
    bodies (true of every TAS implementation analysed; busy-wait loops
    appear only in recovery code, which crash-free executions never
    run). *)

type t = {
  memo : int Machine.Fingerprint.Table.t;
      (** configuration fingerprint -> zero-returner bitmask *)
  mutable configs : int;  (** distinct configurations explored *)
}

val create : unit -> t

val zero_mask : t -> Machine.Sim.t -> int
(** Bitmask of processes that can return 0 from this configuration. *)

type verdict = Bivalent of int list | Univalent of int | Zerovalent

val classify : t -> Machine.Sim.t -> verdict
val pp_verdict : verdict Fmt.t

(** The next step a process would take, used to verify the proof's
    critical-step claim. *)
type pending_step = {
  ps_pid : int;
  ps_kind : string;  (** "read" | "write" | "t&s" | "cas" | "faa" | "invoke" | "local" *)
  ps_addr : Nvm.Memory.addr option;
}

val pending_step : Machine.Sim.t -> int -> pending_step option

type critical = {
  sim : Machine.Sim.t;  (** the critical configuration *)
  depth : int;
  steps : pending_step list;  (** the processes' pending (critical) steps *)
}

val find_critical : ?max_depth:int -> t -> Machine.Sim.t -> critical option
(** Walk inside the bivalent region until reaching a configuration whose
    every enabled step leads to a univalent configuration. *)
