(* Crash-safe work pool: producers push jobs onto a recoverable stack
   (Treiber over the strict recoverable CAS) while workers pop them, all
   under crash injection.

   The guarantee NRL buys: no job is lost and no job is executed twice,
   even when a producer crashes between its CAS taking effect and its
   response reaching it, or a worker crashes holding a popped job only in
   a volatile register — the cases where naive recovery would re-push or
   re-pop.

     dune exec examples/job_queue.exe [producers] [workers] [jobs] [seed] *)

let () =
  let producers = try int_of_string Sys.argv.(1) with _ -> 2 in
  let workers = try int_of_string Sys.argv.(2) with _ -> 2 in
  let jobs = try int_of_string Sys.argv.(3) with _ -> 4 in
  let seed = try int_of_string Sys.argv.(4) with _ -> 17 in
  let nprocs = producers + workers in
  let sim = Machine.Sim.create ~seed ~nprocs () in
  let pool = Objects.Stack_obj.make sim ~name:"pool" in
  (* producers: push distinct job ids *)
  for p = 0 to producers - 1 do
    Machine.Sim.set_script sim p
      (List.init jobs (fun k ->
           (pool, "PUSH", Machine.Sim.Args [| Workload.Opgen.tagged p (k + 1) |])))
  done;
  (* workers: pop (possibly finding the pool momentarily empty) *)
  let attempts_per_worker = (producers * jobs * 2 / workers) + 2 in
  for w = producers to nprocs - 1 do
    Machine.Sim.set_script sim w
      (List.init attempts_per_worker (fun _ -> (pool, "POP", Machine.Sim.Args [||])))
  done;
  let policy = Machine.Schedule.random ~seed:(seed * 3 + 2) ~crash_prob:0.06 ~max_crashes:12 () in
  (match Machine.Schedule.run ~max_steps:2_000_000 sim policy with
  | Machine.Schedule.Completed -> ()
  | _ -> failwith "the shift did not complete");
  (* drain leftovers *)
  Machine.Sim.append_script sim 0
    (List.init ((producers * jobs) + 1) (fun _ -> (pool, "POP", Machine.Sim.Args [||])));
  (match Machine.Schedule.run sim (Machine.Schedule.round_robin ()) with
  | Machine.Schedule.Completed -> ()
  | _ -> failwith "drain did not complete");
  let executed = Hashtbl.create 16 in
  let dupes = ref 0 in
  for p = 0 to nprocs - 1 do
    List.iter
      (fun (op, v) ->
        if op = "POP" && not (Nvm.Value.equal v Objects.Stack_obj.empty) then begin
          if Hashtbl.mem executed (Nvm.Value.to_string v) then incr dupes;
          Hashtbl.replace executed (Nvm.Value.to_string v) ()
        end)
      (Machine.Sim.results sim p)
  done;
  let crashes =
    List.fold_left (fun a p -> a + Machine.Sim.crash_count sim p) 0 (List.init nprocs Fun.id)
  in
  Printf.printf "shift complete: %d producers x %d jobs, %d workers, %d crashes survived\n"
    producers jobs workers crashes;
  Printf.printf "jobs executed: %d of %d submitted; duplicates: %d\n"
    (Hashtbl.length executed) (producers * jobs) !dupes;
  let verdict = Workload.Check.nrl sim in
  Format.printf "NRL check: %a@." Linearize.Nrl.pp verdict;
  let ok =
    Hashtbl.length executed = producers * jobs && !dupes = 0 && Linearize.Nrl.ok verdict
  in
  exit (if ok then 0 else 1)
