(* Crash torture: run every scenario — the paper's four recoverable
   algorithms, the modular election extension, and the unsound naive
   baselines — under randomized crash-injecting schedules, checking NRL on
   every run.  The paper's algorithms must pass 100%; the naive baselines
   are expected to fail, and the checker prints the first counterexample
   history for each.

     dune exec examples/crash_torture.exe [trials] [crash_prob]           *)

let () =
  let trials = try int_of_string Sys.argv.(1) with _ -> 200 in
  let crash_prob = try float_of_string Sys.argv.(2) with _ -> 0.1 in
  Printf.printf "crash torture: %d trials/scenario, crash probability %.2f\n\n%!" trials
    crash_prob;
  let sound =
    Workload.Scenarios.all_paper ~nprocs:3 ()
    @ [
        Workload.Scenarios.elect ~nprocs:3 ();
        Workload.Scenarios.faa ~nprocs:3 ();
        Workload.Scenarios.stack ~nprocs:3 ();
        Workload.Scenarios.histogram ~nprocs:3 ();
        Workload.Scenarios.queue ~nprocs:3 ();
        Workload.Scenarios.max_register ~nprocs:3 ();
      ]
  in
  let unsound =
    [
      Workload.Scenarios.naive_rw ~strategy:`Optimistic ();
      Workload.Scenarios.naive_cas ~strategy:`Optimistic ();
      Workload.Scenarios.naive_cas ~strategy:`Reexecute ();
      Workload.Scenarios.naive_tas ~nprocs:3 ();
    ]
  in
  Printf.printf "%-28s %8s %8s %8s %10s\n" "scenario" "trials" "passed" "failed" "crashes";
  let run_batch scen =
    let s = Workload.Trial.batch ~crash_prob ~max_crashes:6 ~trials scen in
    Printf.printf "%-28s %8d %8d %8d %10d\n%!" scen.Workload.Trial.scen_name
      s.Workload.Trial.trials s.Workload.Trial.passed s.Workload.Trial.failed
      s.Workload.Trial.total_crashes;
    s
  in
  let sound_ok =
    List.for_all
      (fun scen ->
        let s = run_batch scen in
        s.Workload.Trial.passed = s.Workload.Trial.trials)
      sound
  in
  print_newline ();
  List.iter
    (fun scen ->
      let s = run_batch scen in
      match s.Workload.Trial.first_failure with
      | Some (seed, reason) ->
        Printf.printf "  first violation (seed %d): %s\n" seed reason;
        (* replay and show the offending history *)
        let sim, _ =
          Workload.Trial.run ~seed ~crash_prob ~max_crashes:6 scen
        in
        Format.printf "  history:@.%a@." History.pp (Machine.Sim.history sim)
      | None -> ())
    unsound;
  Printf.printf "\npaper algorithms all sound: %b\n%!" sound_ok;
  exit (if sound_ok then 0 else 1)
