(* Recovery watchdog demonstration: a deliberately livelocking recovery
   stub — the non-terminating recovery Theorem 4 warns about — is run
   under the torture harness's watchdog.  Instead of hanging forever the
   harness trips its traversal fuse (and, in a second round, its retry
   budget) and reports a structured Recovery_stuck diagnostic.

   The CI watchdog smoke runs this under `timeout`: the program must
   detect both failure modes and exit 0 well before the timeout fires.

     dune exec examples/livelock_watchdog.exe                            *)

let () =
  Printf.printf "recovery watchdog: livelocking stubs must fail fast, not hang\n\n%!";

  (* round 1: a recovery that spins on crash points without progressing.
     The fuse bounds how many points one attempt may traverse. *)
  let stats = Runtime.Torture.stats_zero () in
  let rng = Runtime.Torture.rng_create 42 in
  let watchdog =
    { Runtime.Torture.default_watchdog with wd_max_traversed = 10_000 }
  in
  let t0 = Unix.gettimeofday () in
  (match
     Runtime.Torture.with_crashes ~rng ~crash_prob:0.0 ~stats ~watchdog
       ~op:(fun ~cp ->
         while true do
           Runtime.Crash.point cp (* spins forever: never observes progress *)
         done)
       ~recover:(fun ~cp ~traversed ->
         ignore (cp, traversed);
         ())
       ()
   with
  | () ->
    prerr_endline "FAIL: the livelocking operation terminated?!";
    exit 1
  | exception (Runtime.Torture.Recovery_stuck _ as e) ->
    Format.printf "  livelock detected in %.3fs: %a@." (Unix.gettimeofday () -. t0)
      Runtime.Torture.pp_stuck e);

  (* round 2: a recovery that crashes on every attempt.  The retry budget
     bounds how often it is re-invoked; deterministic backoff between
     attempts keeps the retries from hammering the shared lines. *)
  let stats2 = Runtime.Torture.stats_zero () in
  let watchdog2 =
    {
      Runtime.Torture.wd_max_retries = 25;
      wd_max_traversed = 10_000;
      wd_backoff = Runtime.Torture.backoff_spin ~base:4;
    }
  in
  let always_crash ~cp =
    for _ = 1 to 16 do
      Runtime.Crash.point cp
    done
  in
  let t1 = Unix.gettimeofday () in
  (match
     Runtime.Torture.with_crashes ~rng ~crash_prob:1.0 ~stats:stats2 ~watchdog:watchdog2
       ~op:always_crash
       ~recover:(fun ~cp ~traversed ->
         ignore traversed;
         always_crash ~cp)
       ()
   with
  | () ->
    prerr_endline "FAIL: the always-crashing operation terminated?!";
    exit 1
  | exception (Runtime.Torture.Recovery_stuck _ as e) ->
    Format.printf "  retry budget enforced in %.3fs: %a@." (Unix.gettimeofday () -. t1)
      Runtime.Torture.pp_stuck e);

  (* the pinned harness relation survives both interventions *)
  let total_crashes = stats.Runtime.Torture.crashes + stats2.Runtime.Torture.crashes in
  let total_retries = stats.Runtime.Torture.retries + stats2.Runtime.Torture.retries in
  let total_aborted =
    stats.Runtime.Torture.aborted_recoveries + stats2.Runtime.Torture.aborted_recoveries
  in
  Printf.printf
    "\n  crashes=%d retries=%d aborted_recoveries=%d livelocks=%d\n" total_crashes
    total_retries total_aborted
    (stats.Runtime.Torture.livelocks + stats2.Runtime.Torture.livelocks);
  if total_crashes <> total_retries + total_aborted then begin
    prerr_endline "FAIL: crashes <> retries + aborted_recoveries";
    exit 1
  end;
  print_endline "\nwatchdog OK: both failure modes detected, nothing hung"
