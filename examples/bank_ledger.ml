(* Bank ledger: a domain-scale scenario built on the public API.

   A bank keeps one deposit ledger per branch; each ledger is a
   recoverable counter (Algorithm 4), itself built from recoverable
   registers (Algorithm 1).  Teller processes deposit into branches and
   occasionally audit them.  Tellers crash mid-deposit — including inside
   the nested recoverable WRITE — and are resurrected by the system,
   which runs the recovery functions inner-most first.

   The point of NRL: after all tellers finish, every branch balance equals
   exactly the number of deposits made to it — no deposit is lost and
   none is applied twice, no matter where the crashes hit.

     dune exec examples/bank_ledger.exe [tellers] [deposits] [seed]      *)

let () =
  let tellers = try int_of_string Sys.argv.(1) with _ -> 4 in
  let deposits = try int_of_string Sys.argv.(2) with _ -> 6 in
  let seed = try int_of_string Sys.argv.(3) with _ -> 99 in
  let branches = 3 in
  let sim = Machine.Sim.create ~seed ~nprocs:tellers () in
  let ledgers =
    Array.init branches (fun b ->
        Objects.Counter_obj.make sim ~name:(Printf.sprintf "branch%d" b))
  in
  (* deterministic per-teller deposit plan: teller t deposits into branch
     (t + k) mod branches, auditing after each third deposit *)
  let expected = Array.make branches 0 in
  for t = 0 to tellers - 1 do
    let script =
      List.concat
        (List.init deposits (fun k ->
             let b = (t + k) mod branches in
             expected.(b) <- expected.(b) + 1;
             (ledgers.(b), "INC", Machine.Sim.Args [||])
             :: (if k mod 3 = 2 then [ (ledgers.(b), "READ", Machine.Sim.Args [||]) ] else [])))
    in
    Machine.Sim.set_script sim t script
  done;
  let policy = Machine.Schedule.random ~seed:(seed * 13 + 1) ~crash_prob:0.05 ~max_crashes:10 () in
  (match Machine.Schedule.run ~max_steps:1_000_000 sim policy with
  | Machine.Schedule.Completed -> ()
  | _ -> failwith "the banking day did not complete");
  let crashes =
    List.fold_left (fun a t -> a + Machine.Sim.crash_count sim t) 0 (List.init tellers Fun.id)
  in
  Printf.printf "banking day complete: %d tellers, %d deposits each, %d crashes survived\n"
    tellers deposits crashes;
  (* audit: read every ledger in a quiescent final pass *)
  Machine.Sim.set_script sim 0
    (List.init branches (fun b -> (ledgers.(b), "READ", Machine.Sim.Args [||])));
  (match Machine.Schedule.run sim (Machine.Schedule.round_robin ()) with
  | Machine.Schedule.Completed -> ()
  | _ -> failwith "final audit did not complete");
  let finals =
    List.filter_map
      (fun (op, v) -> if op = "READ" then Some (Nvm.Value.as_int v) else None)
      (Machine.Sim.results sim 0)
  in
  (* results are newest-first; the last [branches] READs are the audit *)
  let audit =
    List.rev (List.filteri (fun i _ -> i < branches) (List.rev finals))
  in
  let ok = ref true in
  List.iteri
    (fun b v ->
      let expect = expected.(b) in
      Printf.printf "  branch %d balance: %d (expected %d) %s\n" b v expect
        (if v = expect then "ok" else "MISMATCH");
      if v <> expect then ok := false)
    audit;
  let verdict = Workload.Check.nrl sim in
  Format.printf "NRL check over the full day: %a@." Linearize.Nrl.pp verdict;
  exit (if !ok && Linearize.Nrl.ok verdict then 0 else 1)
