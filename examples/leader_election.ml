(* Leader election / shard assignment: the modular Elect object.

   A fleet of workers must each claim a distinct shard after a cold
   start.  Each worker runs ELECT() on a recoverable slot allocator built
   from an array of the paper's recoverable TAS objects (Algorithm 3).
   Workers crash at arbitrary points — including in the window after a
   nested T&S has completed but before its response was consumed, which
   only works because the paper's T&S is *strict* (Definition 1): its
   response is persisted in Res_p before it returns, and ELECT's recovery
   reads it from there.

     dune exec examples/leader_election.exe [workers] [seed]             *)

let () =
  let workers = try int_of_string Sys.argv.(1) with _ -> 5 in
  let seed = try int_of_string Sys.argv.(2) with _ -> 3 in
  let sim = Machine.Sim.create ~seed ~nprocs:workers () in
  let alloc = Objects.Elect_obj.make sim ~name:"shards" in
  for w = 0 to workers - 1 do
    Machine.Sim.set_script sim w [ (alloc, "ELECT", Machine.Sim.Args [||]) ]
  done;
  let policy = Machine.Schedule.random ~seed:(seed * 7 + 5) ~crash_prob:0.12 ~max_crashes:8 () in
  (match Machine.Schedule.run ~max_steps:1_000_000 sim policy with
  | Machine.Schedule.Completed -> ()
  | _ -> failwith "election did not complete");
  let slots =
    List.map
      (fun w ->
        match List.assoc_opt "ELECT" (Machine.Sim.results sim w) with
        | Some (Nvm.Value.Int s) -> (w, s)
        | _ -> failwith "worker did not elect")
      (List.init workers Fun.id)
  in
  List.iter
    (fun (w, s) ->
      Printf.printf "worker %d -> shard %d%s\n" w s
        (if Machine.Sim.crash_count sim w > 0 then
           Printf.sprintf "  (survived %d crash(es))" (Machine.Sim.crash_count sim w)
         else ""))
    slots;
  let distinct = List.sort_uniq compare (List.map snd slots) in
  Printf.printf "distinct shards: %d of %d\n" (List.length distinct) workers;
  let verdict = Workload.Check.nrl sim in
  Format.printf "NRL check: %a@." Linearize.Nrl.pp verdict;
  exit (if List.length distinct = workers && Linearize.Nrl.ok verdict then 0 else 1)
