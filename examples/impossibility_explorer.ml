(* Impossibility explorer: Theorem 4, executably.

   For the paper's Algorithm 3 and for three natural candidate
   recoverable-TAS implementations whose recovery *is* wait-free, the
   explorer reproduces the proof's structure on a two-process instance:
   bivalent initial configuration, critical configuration whose pending
   steps are both t&s on the same base object, the indistinguishable
   crash extensions — and then either finds a concrete NRL-violating
   execution (the candidates) or shows the recovery blocking (the paper's
   algorithm, which trades wait-freedom of recovery for correctness, as
   the theorem says it must).

     dune exec examples/impossibility_explorer.exe                       *)

let () =
  Format.printf
    "Theorem 4: no recoverable TAS from r/w + t&s base objects has both a@.";
  Format.printf "wait-free T&S and a wait-free T&S.RECOVER.@.@.";
  let paper = Impossibility.Theorem.analyze_paper_algorithm () in
  Format.printf "%a@." Impossibility.Theorem.pp_report paper;
  let all_refuted =
    List.for_all
      (fun c ->
        let r = Impossibility.Theorem.analyze_candidate c in
        Format.printf "%a@." Impossibility.Theorem.pp_report r;
        r.Impossibility.Theorem.violation <> None)
      Impossibility.Candidates.all
  in
  Format.printf
    "@.summary: the paper's algorithm blocks but is correct; every wait-free@.";
  Format.printf "recovery candidate admits a concrete violating schedule: %b@." all_refuted;
  exit (if all_refuted then 0 else 1)
