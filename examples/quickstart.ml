(* Quickstart: the paper's recoverable counter (Algorithm 4), built
   modularly from recoverable read/write registers (Algorithm 1), run
   under a crash-injecting schedule, with the resulting history checked
   against the NRL condition (Definition 4).

     dune exec examples/quickstart.exe *)

let () =
  (* a machine with three processes over simulated NVRAM *)
  let nprocs = 3 in
  let sim = Machine.Sim.create ~seed:2024 ~nprocs () in

  (* the recoverable counter allocates its own array of recoverable
     read/write registers in the machine's persistent memory *)
  let counter = Objects.Counter_obj.make sim ~name:"CTR" in

  (* each process increments twice; process 0 then reads *)
  for p = 0 to nprocs - 1 do
    Machine.Sim.set_script sim p
      [ (counter, "INC", Machine.Sim.Args [||]); (counter, "INC", Machine.Sim.Args [||]) ]
  done;
  Machine.Sim.append_script sim 0 [ (counter, "READ", Machine.Sim.Args [||]) ];

  (* a random schedule that crashes processes mid-operation and resurrects
     them later; the system then runs the recovery function of the
     inner-most pending operation, cascading outward *)
  let policy = Machine.Schedule.random ~seed:7 ~crash_prob:0.06 ~max_crashes:5 () in
  (match Machine.Schedule.run sim policy with
  | Machine.Schedule.Completed -> ()
  | _ -> failwith "execution did not complete");

  Format.printf "history:@.%a@." History.pp (Machine.Sim.history sim);

  List.iter
    (fun p ->
      Format.printf "p%d results: %a (crashed %d times)@." p
        Fmt.(list ~sep:comma (pair ~sep:(any "=") string Nvm.Value.pp))
        (Machine.Sim.results sim p) (Machine.Sim.crash_count sim p))
    [ 0; 1; 2 ];

  (* despite the crashes, every INC is linearized exactly once: *)
  (match List.assoc_opt "READ" (Machine.Sim.results sim 0) with
  | Some v -> Format.printf "final counter value: %a (expected 6)@." Nvm.Value.pp v
  | None -> ());

  (* and the full history satisfies nesting-safe recoverable
     linearizability *)
  let verdict = Workload.Check.nrl sim in
  Format.printf "NRL check: %a@." Linearize.Nrl.pp verdict;
  exit (if Linearize.Nrl.ok verdict then 0 else 1)
