(* The BENCH_native.json document ([nrlsim bench-native --json]) must
   stay parseable by strict JSON consumers — the CI trend scripts read
   it with stock parsers.  Mirrors test_bench_json.ml (the simulator
   suite's document) with the same self-contained parser so the test
   depends on no json library. *)

module B = Runtime.Bench_native_json

(* {1 A tiny strict JSON parser} *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let next () =
    if !pos >= n then raise (Bad "eof");
    let c = s.[!pos] in
    incr pos;
    c
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      incr pos;
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    let g = next () in
    if g <> c then raise (Bad (Printf.sprintf "expected %c, got %c" c g))
  in
  let literal lit v =
    String.iter expect lit;
    v
  in
  let string_body () =
    let b = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents b
      | '\\' -> (
        match next () with
        | '"' ->
          Buffer.add_char b '"';
          go ()
        | '\\' ->
          Buffer.add_char b '\\';
          go ()
        | 'n' ->
          Buffer.add_char b '\n';
          go ()
        | 'u' ->
          let h = String.sub s !pos 4 in
          pos := !pos + 4;
          Buffer.add_char b (Char.chr (int_of_string ("0x" ^ h) land 0xff));
          go ()
        | c -> raise (Bad (Printf.sprintf "bad escape %c" c)))
      | c ->
        Buffer.add_char b c;
        go ()
    in
    go ()
  in
  let number () =
    let start = !pos in
    let is_num c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && is_num s.[!pos] do
      incr pos
    done;
    if !pos = start then raise (Bad "expected a value");
    Num (float_of_string (String.sub s start (!pos - start)))
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '"' ->
      expect '"';
      Str (string_body ())
    | Some '{' ->
      expect '{';
      skip_ws ();
      if peek () = Some '}' then (incr pos; Obj [])
      else
        let rec members acc =
          skip_ws ();
          expect '"';
          let k = string_body () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match next () with
          | ',' -> members ((k, v) :: acc)
          | '}' -> Obj (List.rev ((k, v) :: acc))
          | c -> raise (Bad (Printf.sprintf "bad object separator %c" c))
        in
        members []
    | Some '[' ->
      expect '[';
      skip_ws ();
      if peek () = Some ']' then (incr pos; Arr [])
      else
        let rec elems acc =
          let v = value () in
          skip_ws ();
          match next () with
          | ',' -> elems (v :: acc)
          | ']' -> Arr (List.rev (v :: acc))
          | c -> raise (Bad (Printf.sprintf "bad array separator %c" c))
        in
        elems []
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | _ -> number ()
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then raise (Bad "trailing garbage");
  v

let field name = function
  | Obj kvs -> (
    match List.assoc_opt name kvs with
    | Some v -> v
    | None -> raise (Bad ("missing field " ^ name)))
  | _ -> raise (Bad "not an object")

let as_arr = function Arr l -> l | _ -> raise (Bad "not an array")
let as_str = function Str s -> s | _ -> raise (Bad "not a string")
let as_num = function Num f -> f | _ -> raise (Bad "not a number")

(* {1 A representative document} *)

let sample () =
  {
    B.domains_available = 4;
    duration_s = 0.25;
    throughput =
      [
        {
          B.tp_object = "cas";
          tp_impl = "recoverable";
          tp_mode = "contended";
          tp_width = 1;
          tp_domains = 2;
          tp_ops = 1_000_000;
          tp_seconds = 0.25;
          tp_ops_per_sec = 4_000_000.;
        };
        {
          B.tp_object = "stack";
          tp_impl = "plain";
          tp_mode = "uncontended";
          tp_width = 8;
          tp_domains = 1;
          tp_ops = 10;
          tp_seconds = 0.;
          tp_ops_per_sec = infinity (* a degenerate window must render as null *);
        };
      ];
    latency =
      [
        { B.ns_name = "recoverable t&s (fresh, win)"; ns_ns = 49.2 };
        { B.ns_name = "with \"quotes\""; ns_ns = nan };
      ];
    alloc_per_op =
      [
        { B.al_name = "recoverable faa"; al_words = 0. };
        { B.al_name = "recoverable stack push+pop"; al_words = 9. };
      ];
  }

let test_parses_and_keys () =
  let doc = parse (B.render (sample ())) in
  Alcotest.(check string) "schema tag" B.schema_version (as_str (field "schema" doc));
  Alcotest.(check int) "domains honest" 4
    (int_of_float (as_num (field "domains_available" doc)));
  Alcotest.(check bool) "duration recorded" true
    (as_num (field "duration_s" doc) = 0.25)

let test_throughput_rows () =
  let doc = parse (B.render (sample ())) in
  let rows = as_arr (field "throughput" doc) in
  Alcotest.(check int) "both rows survive" 2 (List.length rows);
  let r0 = List.hd rows in
  Alcotest.(check string) "object" "cas" (as_str (field "object" r0));
  Alcotest.(check string) "impl" "recoverable" (as_str (field "impl" r0));
  Alcotest.(check string) "mode" "contended" (as_str (field "mode" r0));
  Alcotest.(check int) "width" 1 (int_of_float (as_num (field "width" r0)));
  Alcotest.(check int) "domains" 2 (int_of_float (as_num (field "domains" r0)));
  Alcotest.(check int) "ops" 1_000_000 (int_of_float (as_num (field "ops" r0)));
  Alcotest.(check bool) "rate" true (as_num (field "ops_per_sec" r0) = 4_000_000.);
  let r1 = List.nth rows 1 in
  Alcotest.(check bool) "infinite rate becomes null, not inf" true
    (field "ops_per_sec" r1 = Null)

let test_latency_and_alloc_rows () =
  let doc = parse (B.render (sample ())) in
  let ns = as_arr (field "latency" doc) in
  let r0 = List.hd ns in
  Alcotest.(check string) "latency names shared with BENCH_explore"
    "recoverable t&s (fresh, win)" (as_str (field "name" r0));
  Alcotest.(check bool) "ns value" true (as_num (field "ns" r0) = 49.2);
  Alcotest.(check string) "escaped name round-trips" "with \"quotes\""
    (as_str (field "name" (List.nth ns 1)));
  Alcotest.(check bool) "nan becomes null" true (field "ns" (List.nth ns 1) = Null);
  let al = as_arr (field "alloc_per_op" doc) in
  Alcotest.(check bool) "alloc-free row is 0.0" true
    (as_num (field "words" (List.hd al)) = 0.);
  Alcotest.(check bool) "stack allocation documented" true
    (as_num (field "words" (List.nth al 1)) = 9.)

let test_empty_arrays_parse () =
  let doc =
    parse
      (B.render
         {
           B.domains_available = 1;
           duration_s = 0.;
           throughput = [];
           latency = [];
           alloc_per_op = [];
         })
  in
  Alcotest.(check int) "no throughput rows" 0 (List.length (as_arr (field "throughput" doc)));
  Alcotest.(check int) "no latency rows" 0 (List.length (as_arr (field "latency" doc)));
  Alcotest.(check int) "no alloc rows" 0 (List.length (as_arr (field "alloc_per_op" doc)))

let suite =
  [
    Alcotest.test_case "document parses; header fields" `Quick test_parses_and_keys;
    Alcotest.test_case "throughput rows round-trip" `Quick test_throughput_rows;
    Alcotest.test_case "latency/alloc rows round-trip" `Quick test_latency_and_alloc_rows;
    Alcotest.test_case "empty arrays stay valid JSON" `Quick test_empty_arrays_parse;
  ]
