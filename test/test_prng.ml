(* Seed-stability pin for Machine.Schedule.Prng.

   The entire reproducibility story — workload scripts, random schedules,
   fuzz descriptors, corpus byte-identity — bottoms out in this xorshift
   generator producing the same stream for the same seed forever.  These
   tests hardcode actual draw sequences: any change to the generator
   (constants, masking, the zero-seed escape) breaks them loudly, which
   is the point — such a change silently invalidates every pinned seed,
   corpus and reproducer in the repository. *)

module Prng = Machine.Schedule.Prng

let draws f seed n =
  let p = Prng.create seed in
  List.init n (fun _ -> f p)

let test_bits_seed_42 () =
  Alcotest.(check (list int))
    "bits stream, seed 42"
    [
      45454805674;
      2308845766745129663;
      725987310634617210;
      2898498461301208424;
      437794621636219010;
      294408240793393187;
    ]
    (draws Prng.bits 42 6)

let test_int_seed_42 () =
  Alcotest.(check (list int))
    "int 1000 stream, seed 42" [ 674; 663; 210; 424; 10; 187 ]
    (draws (fun p -> Prng.int p 1000) 42 6)

let test_float_seed_42 () =
  (* floats are [bits land 0xFFFFFF / 2^24] — exactly representable, so
     equality (not approximation) is the right check *)
  Alcotest.(check (list (float 0.0)))
    "float stream, seed 42"
    [
      0.31754553318023682; 0.0078544020652770996; 0.8175274133682251; 0.87483835220336914;
    ]
    (draws Prng.float 42 4)

let test_zero_seed_escape () =
  (* seed 0 must not collapse to the all-zero fixed point *)
  Alcotest.(check (list int))
    "bits stream, seed 0"
    [ 667537016594922296; 2928679787554444750; 476251111932968805 ]
    (draws Prng.bits 0 3)

let test_pick_seed_7 () =
  Alcotest.(check (list string))
    "pick stream, seed 7" [ "c"; "d"; "e"; "d"; "a"; "b" ]
    (draws (fun p -> Prng.pick p [ "a"; "b"; "c"; "d"; "e" ]) 7 6)

let test_independent_instances () =
  (* two generators with the same seed advance independently *)
  let a = Prng.create 9 and b = Prng.create 9 in
  let xs = List.init 5 (fun _ -> Prng.bits a) in
  let ys = List.init 5 (fun _ -> Prng.bits b) in
  Alcotest.(check (list int)) "independent but identical" xs ys

let suite =
  [
    Alcotest.test_case "bits pinned (seed 42)" `Quick test_bits_seed_42;
    Alcotest.test_case "int pinned (seed 42)" `Quick test_int_seed_42;
    Alcotest.test_case "float pinned (seed 42)" `Quick test_float_seed_42;
    Alcotest.test_case "zero-seed escape pinned" `Quick test_zero_seed_escape;
    Alcotest.test_case "pick pinned (seed 7)" `Quick test_pick_seed_7;
    Alcotest.test_case "instances independent" `Quick test_independent_instances;
  ]
