(* The resilience layer: search budgets and their structured partial
   verdicts, checkpoint save/load and kill-and-resume determinism (the
   resumed verdict and counters must be byte-identical to an
   uninterrupted run's), adversarial junk strategies (distinct post-crash
   states, identical NRL verdicts on the paper's algorithms), and the
   torture harness's recovery watchdog (bounded retries, livelock fuse,
   the pinned crashes = retries + aborted_recoveries relation). *)

open Machine

let crashy_cfg =
  { Explore.default_config with max_steps = 100; max_crashes = 1; crash_procs = [ 0 ] }

let scen_of = function
  | `Register -> Workload.Scenarios.register ~nprocs:2 ~ops:1 ()
  | `Counter -> Workload.Scenarios.counter ~nprocs:2 ~ops:1 ()
  | `Tas -> Workload.Scenarios.tas ~nprocs:2 ()
  | `Cas -> Workload.Scenarios.cas ~nprocs:2 ~ops:1 ()
  | `NaiveTas -> Workload.Scenarios.naive_tas ~nprocs:2 ()

let build ?junk which =
  let scen = scen_of which in
  let sim = Sim.create ~nprocs:scen.Workload.Trial.nprocs () in
  scen.Workload.Trial.build sim;
  Option.iter (Sim.set_junk_strategy sim) junk;
  sim

(* {1 Budgets} *)

let test_budget_max_nodes () =
  let outcome, stats =
    Explore.sweep ~cfg:crashy_cfg
      ~budget:{ Explore.no_budget with max_nodes = Some 1000 }
      ~check:Workload.Check.nrl_violation (build `Register)
  in
  match outcome with
  | Explore.Exhausted e ->
    Alcotest.(check string) "reason" "max-nodes" (Explore.exhaust_reason_name e.Explore.ex_reason);
    Alcotest.(check bool) "tasks left over" true (e.Explore.ex_frontier > 0);
    Alcotest.(check bool) "partial coverage reported" true (stats.Explore.nodes > 0)
  | _ -> Alcotest.fail "expected Exhausted"

let test_budget_deadline () =
  let outcome, _ =
    Explore.sweep ~cfg:crashy_cfg
      ~budget:{ Explore.no_budget with deadline_s = Some 0.0 }
      ~check:Workload.Check.nrl_violation (build `Register)
  in
  match outcome with
  | Explore.Exhausted e ->
    Alcotest.(check string) "reason" "deadline" (Explore.exhaust_reason_name e.Explore.ex_reason)
  | _ -> Alcotest.fail "expected Exhausted"

let test_should_stop () =
  let outcome, _ =
    Explore.sweep ~cfg:crashy_cfg
      ~should_stop:(fun () -> true)
      ~check:Workload.Check.nrl_violation (build `Register)
  in
  match outcome with
  | Explore.Exhausted e ->
    Alcotest.(check string) "reason" "interrupted"
      (Explore.exhaust_reason_name e.Explore.ex_reason)
  | _ -> Alcotest.fail "expected Exhausted"

let test_find_violation_budget () =
  let cut = ref None in
  let viol, stats =
    Explore.find_violation ~cfg:crashy_cfg
      ~budget:{ Explore.no_budget with max_nodes = Some 500 }
      ~on_exhausted:(fun e -> cut := Some e)
      ~check:Workload.Check.nrl_violation (build `Register)
  in
  Alcotest.(check bool) "no violation claimed" true (viol = None);
  Alcotest.(check bool) "partial stats" true (stats.Explore.nodes > 0);
  match !cut with
  | Some e ->
    Alcotest.(check string) "reason" "max-nodes" (Explore.exhaust_reason_name e.Explore.ex_reason)
  | None -> Alcotest.fail "on_exhausted not called"

let test_visited_cap_degrades_not_aborts () =
  (* the cap on the dedup store is a degradation step: the sweep still
     finishes Clean, it just stops pruning *)
  let outcome, stats =
    Explore.sweep ~cfg:crashy_cfg ~dedup:true
      ~budget:{ Explore.no_budget with max_visited = Some 200 }
      ~check:Workload.Check.nrl_violation (build `Register)
  in
  (match outcome with
  | Explore.Clean -> ()
  | _ -> Alcotest.fail "expected Clean despite the visited cap");
  let _, undegraded =
    Explore.sweep ~cfg:crashy_cfg ~dedup:true ~check:Workload.Check.nrl_violation
      (build `Register)
  in
  Alcotest.(check bool) "pruning stopped once the store was dropped" true
    (stats.Explore.dup <= undegraded.Explore.dup && stats.Explore.nodes >= undegraded.Explore.nodes)

(* {1 Checkpoint persistence} *)

let test_checkpoint_roundtrip () =
  let ck =
    {
      Checkpoint.scenario = [ ("scenario", "register"); ("nprocs", "2") ];
      tasks =
        [|
          {
            Checkpoint.ck_path =
              [ Schedule.Dstep 0; Schedule.Dcrash 1; Schedule.Drecover 1; Schedule.Dhalt ];
            ck_crashes = 1;
            ck_done = true;
          };
          { Checkpoint.ck_path = [ Schedule.Dstep 1 ]; ck_crashes = 0; ck_done = false };
        |];
      totals = { Checkpoint.ck_nodes = 42; ck_terminals = 7; ck_truncated = 1; ck_dup = 3 };
      metrics =
        [
          ("c", Obs.Metrics.Counter 5);
          ("t", Obs.Metrics.Timer { ns = 123; intervals = 2 });
          ( "h",
            Obs.Metrics.Histogram
              { count = 3; sum = 10; max_value = 8; buckets = [ (1, 1); (15, 2) ] } );
        ];
      result = None;
    }
  in
  let path = Filename.temp_file "nrl_ck" ".ndjson" in
  Checkpoint.save ~path ck;
  (match Checkpoint.load path with
  | Error e -> Alcotest.fail e
  | Ok got ->
    Alcotest.(check bool) "identical checkpoint" true (got = ck));
  (* a finalized checkpoint round-trips its verdict *)
  let final = { ck with result = Some ("violation", "because") } in
  Checkpoint.save ~path final;
  (match Checkpoint.load path with
  | Error e -> Alcotest.fail e
  | Ok got -> Alcotest.(check bool) "verdict survives" true (got = final));
  Sys.remove path

let test_resume_rejects_finalized () =
  let ck =
    {
      Checkpoint.scenario = [];
      tasks = [||];
      totals = { Checkpoint.ck_nodes = 0; ck_terminals = 0; ck_truncated = 0; ck_dup = 0 };
      metrics = [];
      result = Some ("clean", "");
    }
  in
  Alcotest.check_raises "finalized checkpoints cannot be resumed"
    (Invalid_argument "Explore.sweep: checkpoint is already finalized (it carries a verdict)")
    (fun () ->
      ignore
        (Explore.sweep ~resume:ck ~check:Workload.Check.nrl_violation (build `Register)))

(* {1 Kill-and-resume determinism} *)

(* the engine-invariant metrics: counters that depend only on the
   explored tree.  Engine metrics (steals, reposition undo traffic,
   dynamic task counts, timers) legitimately vary across jobs and across
   a kill/resume boundary — the invariance contract covers the rest *)
let comparable_views reg =
  List.filter
    (fun (n, v) ->
      Obs.Names.engine_invariant n
      && match (v : Obs.Metrics.view) with Obs.Metrics.Timer _ -> false | _ -> true)
    (Obs.Metrics.to_list reg)

let check_same_views label a b =
  let sa = comparable_views a and sb = comparable_views b in
  List.iter2
    (fun (na, va) (nb, vb) ->
      Alcotest.(check string) (label ^ ": metric name") na nb;
      Alcotest.(check bool) (label ^ ": " ^ na ^ " value identical") true (va = vb))
    sa sb;
  Alcotest.(check int) (label ^ ": metric count") (List.length sa) (List.length sb)

let kill_and_resume ?(cut_jobs = 1) which ~resume_jobs =
  (* uninterrupted baseline *)
  let full_reg = Obs.Metrics.create () in
  let full_outcome, full_stats =
    Explore.sweep ~cfg:crashy_cfg ~obs:full_reg ~check:Workload.Check.nrl_violation
      (build which)
  in
  Alcotest.(check bool) "baseline clean" true (full_outcome = Explore.Clean);
  (* the same sweep, cut down by a node budget and checkpointed *)
  let path = Filename.temp_file "nrl_resume" ".ndjson" in
  let spec =
    { Explore.cp_path = path; cp_interval_s = 0.0; cp_scenario = [ ("t", "x") ] }
  in
  let cut_outcome, cut_stats =
    Explore.sweep ~cfg:crashy_cfg ~jobs:cut_jobs
      ~budget:{ Explore.no_budget with max_nodes = Some 2_000 }
      ~checkpoint:spec ~check:Workload.Check.nrl_violation (build which)
  in
  (match cut_outcome with
  | Explore.Exhausted _ -> ()
  | _ -> Alcotest.fail "the budget should have cut the sweep");
  let ck =
    match Checkpoint.load path with Ok ck -> ck | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "checkpoint is resumable" true (ck.Checkpoint.result = None);
  (* the file persists only the pending task set; completed work shows
     in the adopted totals *)
  Alcotest.(check bool) "completed work persisted" true
    (ck.Checkpoint.totals.Checkpoint.ck_nodes > 0);
  Alcotest.(check int) "persisted totals match the cut run's fold"
    cut_stats.Explore.nodes ck.Checkpoint.totals.Checkpoint.ck_nodes;
  Alcotest.(check bool) "some tasks pending" true
    (Array.length ck.Checkpoint.tasks > 0);
  (* resume on a freshly rebuilt scenario machine *)
  let res_reg = Obs.Metrics.create () in
  let res_outcome, res_stats =
    Explore.sweep ~cfg:crashy_cfg ~jobs:resume_jobs ~obs:res_reg ~resume:ck
      ~checkpoint:spec ~check:Workload.Check.nrl_violation (build which)
  in
  Alcotest.(check bool) "resumed verdict" true (res_outcome = Explore.Clean);
  Alcotest.(check int) "nodes" full_stats.Explore.nodes res_stats.Explore.nodes;
  Alcotest.(check int) "terminals" full_stats.Explore.terminals res_stats.Explore.terminals;
  Alcotest.(check int) "truncated" full_stats.Explore.truncated res_stats.Explore.truncated;
  Alcotest.(check int) "dup" full_stats.Explore.dup res_stats.Explore.dup;
  check_same_views "resumed metrics" full_reg res_reg;
  (* the resumed run finalized the checkpoint file *)
  (match Checkpoint.load path with
  | Ok ck' -> Alcotest.(check bool) "finalized" true (ck'.Checkpoint.result = Some ("clean", ""))
  | Error e -> Alcotest.fail e);
  Sys.remove path

let test_kill_resume_register () = kill_and_resume `Register ~resume_jobs:1
let test_kill_resume_register_jobs () = kill_and_resume `Register ~resume_jobs:2

let test_kill_resume_register_steal () =
  (* cut a 2-domain run (the checkpoint then captures deque entries and
     in-progress tasks of both workers, possibly mid-steal) and resume
     on 2 domains: still byte-identical to the uninterrupted baseline *)
  kill_and_resume ~cut_jobs:2 `Register ~resume_jobs:2

let test_kill_resume_cas () = kill_and_resume `Cas ~resume_jobs:1

(* {1 Adversarial junk} *)

let all_strategies =
  ("lure", Junk.Lure [| Nvm.Value.Str "LURE" |]) :: Junk.constant_strategies

let test_junk_streams () =
  (* the default stream is the historical scramble, byte for byte *)
  let a = Junk.create 7 and b = Junk.create ~strategy:Junk.Scramble 7 in
  for i = 1 to 100 do
    Alcotest.(check bool)
      (Printf.sprintf "draw %d identical" i)
      true
      (Junk.next a = Junk.next b)
  done;
  (* constant strategies produce their constants *)
  let value_of s = Junk.next (Junk.create ~strategy:s 7) in
  Alcotest.(check bool) "zeros" true (value_of Junk.Zeros = Nvm.Value.Int 0);
  Alcotest.(check bool) "ones" true (value_of Junk.Ones = Nvm.Value.Int (-1));
  Alcotest.(check bool) "maxint" true (value_of Junk.MaxInt = Nvm.Value.Int max_int);
  Alcotest.(check bool) "lure draws from the pool" true
    (value_of (Junk.Lure [| Nvm.Value.Str "LURE" |]) = Nvm.Value.Str "LURE");
  Alcotest.(check bool) "empty lure degenerates" true
    (value_of (Junk.Lure [||]) = Nvm.Value.Int 0);
  (* every strategy advances the same generator state per draw: trails
     and fingerprints cannot tell strategies apart by state *)
  let state_after s =
    let j = Junk.create ~strategy:s 7 in
    for _ = 1 to 50 do
      ignore (Junk.next j)
    done;
    Junk.state j
  in
  let reference = state_after Junk.Scramble in
  List.iter
    (fun (name, s) ->
      Alcotest.(check int) (name ^ " state in lockstep") reference (state_after s))
    all_strategies;
  (* copy preserves the strategy *)
  let j = Junk.create ~strategy:Junk.Zeros 7 in
  Alcotest.(check bool) "copy keeps strategy" true (Junk.strategy (Junk.copy j) = Junk.Zeros)

let test_junk_fingerprints_distinct () =
  (* drive a process into the middle of an operation, crash it, and
     check that each strategy leaves a structurally different machine
     configuration (the scrambled locals are part of the fingerprint) *)
  let post_crash strategy =
    let sim = build ~junk:strategy `Counter in
    (* step until the pending operation holds locals — only then does a
       crash draw junk to scramble them with *)
    let has_locals () =
      List.exists
        (fun f -> Env.bindings f.Sim.f_env <> [])
        (Sim.proc sim 0).Sim.stack
    in
    let steps = ref 0 in
    while not (has_locals ()) && !steps < 32 do
      Sim.step sim 0;
      incr steps
    done;
    Alcotest.(check bool) "reached a state with locals" true (has_locals ());
    Sim.crash sim 0;
    Fingerprint.to_string (Fingerprint.of_sim sim)
  in
  let fps = List.map (fun (name, s) -> (name, post_crash s)) all_strategies in
  List.iteri
    (fun i (ni, fi) ->
      List.iteri
        (fun j (nj, fj) ->
          if i < j then
            Alcotest.(check bool)
              (Printf.sprintf "%s vs %s post-crash states differ" ni nj)
              true (fi <> fj))
        fps)
    fps

let test_junk_verdicts_strategy_independent () =
  (* Algorithms 1-4 (recoverable register / counter / T&S / CAS) are
     NRL for every shape of post-crash junk; the naive T&S is broken for
     every shape — the verdict must never depend on the junk.  [dedup]
     keeps the T&S instance tractable (a clean deduped sweep is still a
     certificate: one representative prefix per configuration). *)
  List.iter
    (fun (sname, which, expect_clean) ->
      List.iter
        (fun (jname, strategy) ->
          let viol, _ =
            Explore.find_violation ~cfg:crashy_cfg ~dedup:true
              ~check:Workload.Check.nrl_violation (build ~junk:strategy which)
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s under %s junk" sname jname)
            expect_clean (viol = None))
        all_strategies)
    [
      ("register", `Register, true);
      ("counter", `Counter, true);
      ("tas", `Tas, true);
      ("cas", `Cas, true);
      ("naive-tas", `NaiveTas, false);
    ]

(* {1 Recovery watchdog} *)

let test_crash_fuse () =
  let cp = Runtime.Crash.create () in
  Runtime.Crash.set_fuse cp 3;
  Runtime.Crash.point cp;
  Runtime.Crash.point cp;
  Runtime.Crash.point cp;
  Alcotest.check_raises "fuse blows deterministically" Runtime.Crash.Livelock (fun () ->
      Runtime.Crash.point cp);
  (* an armed point still crashes first *)
  let cp2 = Runtime.Crash.create () in
  Runtime.Crash.set_fuse cp2 100;
  Runtime.Crash.arm cp2 1;
  Runtime.Crash.point cp2;
  Alcotest.check_raises "armed crash fires" Runtime.Crash.Crashed (fun () ->
      Runtime.Crash.point cp2)

let test_watchdog_retries_exhausted () =
  (* a recovery that always crashes again: with a budget of 10 retries the
     harness makes 1 + 10 crashing attempts and then gives up *)
  let reg = Obs.Metrics.create () in
  let stats = Runtime.Torture.stats_zero () in
  let rng = Runtime.Torture.rng_create 42 in
  let watchdog =
    { Runtime.Torture.default_watchdog with wd_max_retries = 10 }
  in
  let always_crash ~cp =
    for _ = 1 to 16 do
      Runtime.Crash.point cp (* traverses past any armed index in 0..11 *)
    done
  in
  (match
     Runtime.Torture.with_crashes ~rng ~crash_prob:1.0 ~stats ~obs:reg ~watchdog
       ~op:always_crash
       ~recover:(fun ~cp ~traversed ->
         ignore traversed;
         always_crash ~cp)
       ()
   with
  | () -> Alcotest.fail "expected Recovery_stuck"
  | exception Runtime.Torture.Recovery_stuck { stuck_kind = `Retries_exhausted; stuck_attempts; _ }
    ->
    Alcotest.(check int) "attempts" 10 stuck_attempts
  | exception e -> Alcotest.fail (Printexc.to_string e));
  Alcotest.(check int) "crashes" 11 stats.Runtime.Torture.crashes;
  Alcotest.(check int) "retries" 10 stats.Runtime.Torture.retries;
  Alcotest.(check int) "aborted" 1 stats.Runtime.Torture.aborted_recoveries;
  Alcotest.(check int) "livelocks" 0 stats.Runtime.Torture.livelocks;
  let cval name =
    match Obs.Metrics.view reg name with Some (Obs.Metrics.Counter v) -> v | _ -> 0
  in
  Alcotest.(check int) "crashes mirrored" stats.Runtime.Torture.crashes
    (cval Obs.Names.torture_crashes);
  Alcotest.(check int) "retries mirrored" stats.Runtime.Torture.retries
    (cval Obs.Names.torture_retries);
  Alcotest.(check int) "aborts mirrored" stats.Runtime.Torture.aborted_recoveries
    (cval Obs.Names.torture_aborted_recoveries)

let test_watchdog_livelock_fuse () =
  (* a recovery that spins on crash points forever trips the traversal
     fuse instead of hanging (crash_prob 0 means the point is unarmed:
     only the fuse can fire) *)
  let stats = Runtime.Torture.stats_zero () in
  let rng = Runtime.Torture.rng_create 1 in
  let watchdog = { Runtime.Torture.default_watchdog with wd_max_traversed = 50 } in
  (match
     Runtime.Torture.with_crashes ~rng ~crash_prob:0.0 ~stats ~watchdog
       ~op:(fun ~cp ->
         while true do
           Runtime.Crash.point cp
         done)
       ~recover:(fun ~cp ~traversed ->
         ignore (cp, traversed);
         ())
       ()
   with
  | () -> Alcotest.fail "expected Recovery_stuck"
  | exception Runtime.Torture.Recovery_stuck { stuck_kind = `Livelock; stuck_traversed; _ } ->
    Alcotest.(check bool) "fuse bounded the spin" true (stuck_traversed > 50)
  | exception e -> Alcotest.fail (Printexc.to_string e));
  Alcotest.(check int) "livelocks" 1 stats.Runtime.Torture.livelocks;
  Alcotest.(check int) "no crash charged" 0 stats.Runtime.Torture.crashes;
  Alcotest.(check int) "invariant holds" stats.Runtime.Torture.crashes
    (stats.Runtime.Torture.retries + stats.Runtime.Torture.aborted_recoveries)

let test_watchdog_invariant_under_torture () =
  (* the pinned relation holds across a real randomized workload *)
  let stats = Runtime.Torture.stats_zero () in
  let rng = Runtime.Torture.rng_create 7 in
  let c = Runtime.Rcounter.create ~nprocs:1 in
  for _ = 1 to 2_000 do
    ignore (Runtime.Torture.rcounter_inc ~rng ~crash_prob:0.4 ~stats c ~pid:0)
  done;
  Alcotest.(check bool) "crash injection exercised" true (stats.Runtime.Torture.crashes > 0);
  Alcotest.(check int) "crashes = retries + aborted_recoveries"
    stats.Runtime.Torture.crashes
    (stats.Runtime.Torture.retries + stats.Runtime.Torture.aborted_recoveries)

let test_heartbeat_stall_detection () =
  let hb = Runtime.Torture.heartbeat ~domains:3 in
  Runtime.Torture.beat hb 0;
  Runtime.Torture.beat hb 2;
  let prev = Runtime.Torture.beats hb in
  Runtime.Torture.beat hb 0;
  Alcotest.(check (list int)) "stalled domains" [ 1; 2 ] (Runtime.Torture.stalled ~prev hb)

let suite =
  [
    Alcotest.test_case "max-nodes budget yields a partial verdict" `Quick test_budget_max_nodes;
    Alcotest.test_case "deadline budget yields a partial verdict" `Quick test_budget_deadline;
    Alcotest.test_case "should_stop interrupts cooperatively" `Quick test_should_stop;
    Alcotest.test_case "find_violation reports budget cuts" `Quick test_find_violation_budget;
    Alcotest.test_case "visited cap degrades, never aborts" `Quick
      test_visited_cap_degrades_not_aborts;
    Alcotest.test_case "checkpoint round-trips" `Quick test_checkpoint_roundtrip;
    Alcotest.test_case "finalized checkpoints are not resumable" `Quick
      test_resume_rejects_finalized;
    Alcotest.test_case "kill-and-resume is deterministic (register)" `Quick
      test_kill_resume_register;
    Alcotest.test_case "kill-and-resume across jobs (register)" `Slow
      test_kill_resume_register_jobs;
    Alcotest.test_case "kill-and-resume cut mid-steal at jobs 2 (register)" `Slow
      test_kill_resume_register_steal;
    Alcotest.test_case "kill-and-resume is deterministic (cas)" `Slow test_kill_resume_cas;
    Alcotest.test_case "junk streams and state lockstep" `Quick test_junk_streams;
    Alcotest.test_case "junk strategies scramble distinctly" `Quick
      test_junk_fingerprints_distinct;
    Alcotest.test_case "NRL verdicts are junk-independent" `Slow
      test_junk_verdicts_strategy_independent;
    Alcotest.test_case "crash fuse" `Quick test_crash_fuse;
    Alcotest.test_case "watchdog aborts exhausted recoveries" `Quick
      test_watchdog_retries_exhausted;
    Alcotest.test_case "watchdog trips the livelock fuse" `Quick test_watchdog_livelock_fuse;
    Alcotest.test_case "crashes = retries + aborted under torture" `Quick
      test_watchdog_invariant_under_torture;
    Alcotest.test_case "heartbeat stall detection" `Quick test_heartbeat_stall_detection;
  ]
