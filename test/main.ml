(* Test entry point: one alcotest run aggregating every suite. *)

let () =
  Alcotest.run "nrl"
    [
      ("nvm", Test_nvm.suite);
      ("machine", Test_machine.suite);
      ("history", Test_history.suite);
      ("linearize", Test_linearize.suite);
      ("objects", Test_objects.suite);
      ("naive", Test_naive.suite);
      ("elect", Test_elect.suite);
      ("faa", Test_faa.suite);
      ("histogram", Test_histogram.suite);
      ("stack", Test_stack.suite);
      ("workload", Test_workload.suite);
      ("bench-json", Test_bench_json.suite);
      ("queue-max", Test_queue_max.suite);
      ("system-crash", Test_system_crash.suite);
      ("explore", Test_explore.suite);
      ("store", Test_store.suite);
      ("impossibility", Test_impossibility.suite);
      ("runtime", Test_runtime.suite);
      ("runtime-ext", Test_runtime_extensions.suite);
      ("native-vs-vm", Test_native_vs_vm.suite);
      ("native-parallel", Test_native_parallel.suite);
      ("bench-native-json", Test_bench_native_json.suite);
      ("obs", Test_obs.suite);
      ("resilience", Test_resilience.suite);
      ("prng", Test_prng.suite);
      ("fuzz", Test_fuzz.suite);
      ("cli", Test_cli.suite);
      ("registration", Test_registration.suite);
    ]
