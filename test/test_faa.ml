(* Tests for the strict-CAS and nested-FAA extensions: strictness of the
   CAS, crash drills at the completion boundary the plain Algorithm 2
   cannot survive in a nesting, conservation of FAA effects under
   crashes, and exhaustive small-instance verification. *)

open Machine

let value = Alcotest.testable Nvm.Value.pp Nvm.Value.equal

let nrl_ok sim =
  match Workload.Check.nrl_violation sim with
  | None -> ()
  | Some reason ->
    Fmt.epr "history:@.%a@." History.pp (Sim.history sim);
    Alcotest.failf "NRL violation: %s" reason

let run_rr sim =
  match Schedule.run sim (Schedule.round_robin ()) with
  | Schedule.Completed -> ()
  | _ -> Alcotest.fail "execution did not complete"

let steps sim p n =
  for _ = 1 to n do
    Sim.step sim p
  done

(* {2 Strict CAS} *)

let test_scas_crash_free () =
  let sim = Sim.create ~nprocs:2 () in
  let inst = Objects.Scas_obj.make sim ~name:"C" in
  Sim.set_script sim 0
    [ (inst, "CAS", Sim.Args [| Nvm.Value.Null; Workload.Opgen.tagged 0 1; Nvm.Value.Int 1 |]) ];
  Sim.set_script sim 1
    [ (inst, "CAS", Sim.Args [| Nvm.Value.Null; Workload.Opgen.tagged 1 1; Nvm.Value.Int 1 |]) ];
  run_rr sim;
  nrl_ok sim;
  Alcotest.(check int) "strict: all responses persisted" 0
    (List.length (Workload.Check.strictness_violations sim));
  let wins =
    List.length
      (List.filter
         (fun p ->
           List.exists (fun (_, v) -> Nvm.Value.equal v (Bool true)) (Sim.results sim p))
         [ 0; 1 ])
  in
  Alcotest.(check int) "one winner" 1 wins

let test_scas_response_survives_crash () =
  (* crash after the response was persisted but before the return: the
     recovery answers from Res_p without touching C *)
  let sim = Sim.create ~seed:71 ~nprocs:2 () in
  let inst, cells = Objects.Scas_obj.make_ex sim ~name:"C" in
  Sim.set_script sim 0
    [ (inst, "CAS", Sim.Args [| Nvm.Value.Null; Workload.Opgen.tagged 0 1; Nvm.Value.Int 5 |]) ];
  (* INV, line 2 read, line 3 branch, line 5 branch, line 7 cas, line 701
     persist *)
  steps sim 0 6;
  Alcotest.check value "response persisted"
    (Nvm.Value.Pair (Int 5, Bool true))
    (Nvm.Memory.peek (Sim.mem sim) (cells.Objects.Scas_obj.res + 0));
  Sim.crash sim 0;
  Sim.recover sim 0;
  run_rr sim;
  nrl_ok sim;
  Alcotest.check value "recovered response" (Bool true)
    (List.assoc "CAS" (Sim.results sim 0))

let test_scas_torture () =
  let scen_build sim =
    let inst, cells = Objects.Scas_obj.make_ex sim ~name:"C" in
    let rng = Schedule.Prng.create 42 in
    for p = 0 to Sim.nprocs sim - 1 do
      Sim.set_script sim p
        (List.init 5 (fun k ->
             if Schedule.Prng.float rng < 0.7 then
               ( inst,
                 "CAS",
                 Sim.Compute
                   (fun mem ->
                     [|
                       Nvm.Value.snd (Nvm.Memory.peek mem cells.Objects.Scas_obj.c);
                       Workload.Opgen.tagged p (k + 1);
                       Nvm.Value.Int (k + 1);
                     |]) )
             else (inst, "READ", Sim.Args [||])))
    done
  in
  let scen = { Workload.Trial.scen_name = "scas"; nprocs = 3; build = scen_build } in
  let s = Workload.Trial.batch ~crash_prob:0.08 ~max_crashes:6 ~trials:120 scen in
  Alcotest.(check int) "all pass NRL" s.Workload.Trial.trials s.Workload.Trial.passed

(* {2 FAA nested on strict CAS} *)

let test_faa_crash_free () =
  let sim = Sim.create ~nprocs:3 () in
  let inst = Objects.Faa_obj.make sim ~name:"F" in
  for p = 0 to 2 do
    Sim.set_script sim p
      [ (inst, "FAA", Sim.Args [| Nvm.Value.Int (p + 1) |]); (inst, "READ", Sim.Args [||]) ]
  done;
  run_rr sim;
  nrl_ok sim;
  (* total added: 1 + 2 + 3 = 6; a final read must see it *)
  Sim.append_script sim 0 [ (inst, "READ", Sim.Args [||]) ];
  run_rr sim;
  match Sim.results sim 0 with
  | results -> (
    match List.rev results with
    | (_, v) :: _ -> Alcotest.check value "sum of deltas" (Int 6) v
    | [] -> Alcotest.fail "no results")

(* the completion-boundary drill: crash exactly after the nested CAS
   completed, before FAA consumed the (volatile) response — the case that
   motivates strictness *)
let test_faa_completion_boundary () =
  let sim = Sim.create ~seed:72 ~nprocs:1 () in
  let inst = Objects.Faa_obj.make sim ~name:"F" in
  Sim.set_script sim 0
    [ (inst, "FAA", Sim.Args [| Nvm.Value.Int 7 |]); (inst, "READ", Sim.Args [||]) ];
  (* run until the nested CAS has completed (stack grew to 2 twice: READ
     then CAS; wait for the second shrink) *)
  let depth () = List.length (Sim.proc sim 0).Sim.stack in
  let nested_completions = ref 0 in
  let prev = ref 1 in
  while !nested_completions < 2 do
    Sim.step sim 0;
    if depth () = 1 && !prev = 2 then incr nested_completions;
    prev := depth ()
  done;
  (* the CAS response now lives only in FAA's volatile local *)
  Sim.crash sim 0;
  Sim.recover sim 0;
  run_rr sim;
  nrl_ok sim;
  (match List.assoc_opt "READ" (Sim.results sim 0) with
  | Some v -> Alcotest.check value "exactly one application of the delta" (Int 7) v
  | None -> Alcotest.fail "READ did not complete");
  Alcotest.(check int) "no strictness violations" 0
    (List.length (Workload.Check.strictness_violations sim))

(* crash at *every* prefix of a solo FAA; the delta must apply exactly
   once in all cases *)
let test_faa_crash_every_position () =
  let bound = 40 in
  for k = 1 to bound do
    let sim = Sim.create ~seed:(500 + k) ~nprocs:1 () in
    let inst = Objects.Faa_obj.make sim ~name:"F" in
    Sim.set_script sim 0
      [ (inst, "FAA", Sim.Args [| Nvm.Value.Int 3 |]); (inst, "READ", Sim.Args [||]) ];
    let crashed = ref false in
    (try
       steps sim 0 k;
       if (Sim.proc sim 0).Sim.stack <> [] then begin
         Sim.crash sim 0;
         Sim.recover sim 0;
         crashed := true
       end
     with Invalid_argument _ -> ());
    ignore !crashed;
    run_rr sim;
    nrl_ok sim;
    match List.assoc_opt "READ" (Sim.results sim 0) with
    | Some v -> Alcotest.check value (Printf.sprintf "value after crash at %d" k) (Int 3) v
    | None -> Alcotest.fail "READ did not complete"
  done

let test_faa_torture () =
  let scen = Workload.Scenarios.faa ~nprocs:3 ~ops:4 () in
  let s = Workload.Trial.batch ~crash_prob:0.06 ~max_crashes:6 ~trials:120 scen in
  Alcotest.(check int) "all pass NRL" s.Workload.Trial.trials s.Workload.Trial.passed;
  Alcotest.(check bool) "crashes exercised" true (s.Workload.Trial.total_crashes > 50)

(* conservation property: final value = sum of completed FAA deltas *)
let prop_faa_conservation =
  QCheck2.Test.make ~name:"faa: final value = sum of deltas" ~count:40
    (QCheck2.Gen.int_range 1 100_000) (fun seed ->
      let nprocs = 2 in
      let sim = Sim.create ~seed ~nprocs () in
      let inst = Objects.Faa_obj.make sim ~name:"F" in
      for p = 0 to nprocs - 1 do
        Sim.set_script sim p
          (List.init 3 (fun k -> (inst, "FAA", Sim.Args [| Nvm.Value.Int (k + 1) |])))
      done;
      let policy = Schedule.random ~crash_prob:0.08 ~max_crashes:5 ~seed:(seed * 13 + 1) () in
      match Schedule.run ~max_steps:200_000 sim policy with
      | Schedule.Completed -> (
        Sim.append_script sim 0 [ (inst, "READ", Sim.Args [||]) ];
        match Schedule.run sim (Schedule.round_robin ()) with
        | Schedule.Completed -> (
          match List.rev (Sim.results sim 0) with
          | (_, Nvm.Value.Int v) :: _ -> v = nprocs * 6
          | _ -> false)
        | _ -> false)
      | _ -> QCheck2.assume_fail ())

(* exhaustive verification, kept tractable: (a) two processes crash-free
   — all interleavings of the nested operations; (b) one process with one
   adversarially placed crash — all crash positions and recovery
   behaviours.  (The 2-proc-with-crash space is ~10^8 terminal executions
   because each FAA nests a READ and a CAS; the randomized torture plus
   these two exhaustive slices cover the same behaviours.) *)
let test_faa_exhaustive () =
  let build ~crash () =
    let sim = Sim.create ~nprocs:(if crash then 1 else 2) () in
    let inst = Objects.Faa_obj.make sim ~name:"F" in
    Sim.set_script sim 0
      [ (inst, "FAA", Sim.Args [| Nvm.Value.Int 1 |]); (inst, "READ", Sim.Args [||]) ];
    if not crash then
      Sim.set_script sim 1 [ (inst, "FAA", Sim.Args [| Nvm.Value.Int 2 |]) ];
    sim
  in
  let check_run ~crash cfg =
    let viol, stats =
      Explore.find_violation ~cfg ~check:Workload.Check.nrl_violation (build ~crash ())
    in
    (match viol with
    | Some (sim, reason) ->
      Fmt.epr "violating history:@.%a@." History.pp (Sim.history sim);
      Alcotest.failf "FAA violated NRL: %s" reason
    | None -> ());
    Alcotest.(check int) "nothing truncated" 0 stats.Explore.truncated
  in
  check_run ~crash:false
    { Explore.default_config with max_steps = 140; max_crashes = 0; crash_procs = [] };
  check_run ~crash:true
    { Explore.default_config with max_steps = 140; max_crashes = 2; crash_procs = [ 0 ] }

let suite =
  [
    Alcotest.test_case "scas: crash-free, strict" `Quick test_scas_crash_free;
    Alcotest.test_case "scas: persisted response survives crash" `Quick test_scas_response_survives_crash;
    Alcotest.test_case "scas: randomized torture" `Slow test_scas_torture;
    Alcotest.test_case "faa: crash-free sum" `Quick test_faa_crash_free;
    Alcotest.test_case "faa: completion boundary" `Quick test_faa_completion_boundary;
    Alcotest.test_case "faa: crash at every position" `Quick test_faa_crash_every_position;
    Alcotest.test_case "faa: randomized torture" `Slow test_faa_torture;
    Alcotest.test_case "faa: exhaustive (2 procs, 1 crash)" `Slow test_faa_exhaustive;
    QCheck_alcotest.to_alcotest prop_faa_conservation;
  ]
