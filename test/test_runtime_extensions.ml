(* Tests for the native (Domains + Atomic) extension objects: strict CAS,
   fetch-and-add and the Treiber stack — recovery drills at every crash
   position and genuinely parallel postcondition checks. *)

open Runtime

(* {2 Strict CAS} *)

let test_rscas_persists_response () =
  let c = Rscas.create ~nprocs:2 0 in
  Alcotest.(check bool) "cas wins" true (Rscas.cas c ~pid:0 ~old:0 ~new_:1 ~seq:5);
  Alcotest.(check (pair int bool)) "response persisted" (5, true)
    (Atomic.get c.Rscas.res.(0));
  Alcotest.(check bool) "failing cas" false (Rscas.cas c ~pid:1 ~old:0 ~new_:2 ~seq:3);
  Alcotest.(check (pair int bool)) "failure persisted" (3, false)
    (Atomic.get c.Rscas.res.(1))

let test_rscas_recover_from_tag () =
  let c = Rscas.create ~nprocs:2 0 in
  ignore (Rscas.cas c ~pid:0 ~old:0 ~new_:1 ~seq:7);
  (* recovery with the same tag answers from the persisted response, even
     though C has moved on *)
  ignore (Rscas.cas c ~pid:1 ~old:1 ~new_:2 ~seq:1);
  Alcotest.(check bool) "recover sees success" true
    (Rscas.cas_recover c ~pid:0 ~old:0 ~new_:1 ~seq:7)

let test_rscas_recover_crash_positions () =
  (* crash the CAS at every position; recovery must converge to a correct
     verdict and install the value exactly once *)
  for k = 0 to 3 do
    let c = Rscas.create ~nprocs:2 0 in
    let cp = Crash.create () in
    Crash.arm cp k;
    (match Rscas.cas ~cp c ~pid:0 ~old:0 ~new_:1 ~seq:1 with
    | ok -> Alcotest.(check bool) (Printf.sprintf "no crash at %d" k) true ok
    | exception Crash.Crashed ->
      Crash.disarm cp;
      Alcotest.(check bool)
        (Printf.sprintf "recovery verdict at %d" k)
        true
        (Rscas.cas_recover c ~pid:0 ~old:0 ~new_:1 ~seq:1));
    Alcotest.(check int) (Printf.sprintf "value installed once at %d" k) 1 (Rscas.read c)
  done

(* {2 FAA} *)

let test_rfaa_basics () =
  let f = Rfaa.create ~nprocs:2 () in
  Alcotest.(check int) "first faa returns 0" 0 (Rfaa.faa f ~pid:0 5);
  Alcotest.(check int) "second returns 5" 5 (Rfaa.faa f ~pid:1 3);
  Alcotest.(check int) "read" 8 (Rfaa.read f)

let test_rfaa_crash_positions () =
  (* solo FAA crashed at every position, recovered via the wrapper
     protocol: the delta applies exactly once and the response is the
     previous value *)
  for k = 0 to 9 do
    let f = Rfaa.create ~nprocs:1 () in
    ignore (Rfaa.faa f ~pid:0 10) (* value now 10 *);
    let cp = Crash.create () in
    let committed = ref false in
    Crash.arm cp k;
    (match Rfaa.faa ~cp ~committed f ~pid:0 7 with
    | v -> Alcotest.(check int) (Printf.sprintf "no crash at %d" k) 10 v
    | exception Crash.Crashed ->
      Crash.disarm cp;
      Alcotest.(check int)
        (Printf.sprintf "recovered response at %d" k)
        10
        (Rfaa.recover ~committed:!committed f ~pid:0 7));
    Alcotest.(check int) (Printf.sprintf "exactly-once at %d" k) 17 (Rfaa.read f)
  done

let test_rfaa_parallel_conservation () =
  let domains = min 4 (Par.max_domains ()) in
  let iters = 2_000 in
  let f = Rfaa.create ~nprocs:domains () in
  let _ = Par.run ~domains ~iters (fun ~pid ~i -> ignore i; ignore (Rfaa.faa f ~pid 1)) in
  Alcotest.(check int) "all deltas applied" (domains * iters) (Rfaa.read f)

(* {2 Stack} *)

let test_rstack_lifo () =
  let s = Rstack.create ~nprocs:1 () in
  Alcotest.(check bool) "empty pop" true (Rstack.pop s ~pid:0 = Rstack.Empty);
  ignore (Rstack.push s ~pid:0 1);
  ignore (Rstack.push s ~pid:0 2);
  Alcotest.(check (option int)) "peek" (Some 2) (Rstack.peek s);
  Alcotest.(check bool) "pop 2" true (Rstack.pop s ~pid:0 = Rstack.Popped 2);
  Alcotest.(check bool) "pop 1" true (Rstack.pop s ~pid:0 = Rstack.Popped 1);
  Alcotest.(check bool) "empty again" true (Rstack.pop s ~pid:0 = Rstack.Empty)

let test_rstack_crash_positions () =
  for k = 0 to 11 do
    let s = Rstack.create ~nprocs:1 () in
    ignore (Rstack.push s ~pid:0 7);
    let cp = Crash.create () in
    let committed = ref false in
    Crash.arm cp k;
    let resp =
      match Rstack.pop ~cp ~committed s ~pid:0 with
      | r -> r
      | exception Crash.Crashed ->
        Crash.disarm cp;
        Rstack.pop_recover ~committed:!committed s ~pid:0
    in
    Alcotest.(check bool) (Printf.sprintf "popped 7 at %d" k) true (resp = Rstack.Popped 7);
    Alcotest.(check bool)
      (Printf.sprintf "stack empty at %d" k)
      true
      (Rstack.pop s ~pid:0 = Rstack.Empty)
  done

let test_rstack_parallel_exactly_once () =
  let domains = min 4 (Par.max_domains ()) in
  let per = 300 in
  let s = Rstack.create ~nprocs:domains () in
  let popped = Array.init domains (fun _ -> ref []) in
  let _ =
    Par.run ~domains ~iters:(2 * per) (fun ~pid ~i ->
        if i < per then ignore (Rstack.push s ~pid ((pid * 1_000_000) + i))
        else
          match Rstack.pop s ~pid with
          | Rstack.Popped v -> popped.(pid) := v :: !(popped.(pid))
          | _ -> ())
  in
  (* drain what is left *)
  let rec drain acc =
    match Rstack.pop s ~pid:0 with
    | Rstack.Popped v -> drain (v :: acc)
    | _ -> acc
  in
  let leftovers = drain [] in
  let all = leftovers @ List.concat_map (fun r -> !r) (Array.to_list popped) in
  Alcotest.(check int) "every push popped exactly once" (domains * per) (List.length all);
  Alcotest.(check int) "no duplicates" (domains * per)
    (List.length (List.sort_uniq compare all))

let suite =
  [
    Alcotest.test_case "rscas: persists responses" `Quick test_rscas_persists_response;
    Alcotest.test_case "rscas: recover from tag" `Quick test_rscas_recover_from_tag;
    Alcotest.test_case "rscas: crash positions" `Quick test_rscas_recover_crash_positions;
    Alcotest.test_case "rfaa: basics" `Quick test_rfaa_basics;
    Alcotest.test_case "rfaa: crash positions" `Quick test_rfaa_crash_positions;
    Alcotest.test_case "rfaa: parallel conservation" `Slow test_rfaa_parallel_conservation;
    Alcotest.test_case "rstack: LIFO" `Quick test_rstack_lifo;
    Alcotest.test_case "rstack: crash positions" `Quick test_rstack_crash_positions;
    Alcotest.test_case "rstack: parallel exactly-once" `Slow test_rstack_parallel_exactly_once;
  ]
