(* The naive baselines must (a) be perfectly linearizable without crashes,
   and (b) exhibit NRL violations under crashes — with targeted schedules
   reproducing the paper's motivating scenarios, and under randomized
   torture with detection by the checker. *)

open Machine

let value = Alcotest.testable Nvm.Value.pp Nvm.Value.equal

let run_rr sim = ignore (Schedule.run sim (Schedule.round_robin ()))

let steps sim p n =
  for _ = 1 to n do
    Sim.step sim p
  done

let drain sim p =
  while Sim.enabled sim p do
    Sim.step sim p
  done

let test_naive_crash_free_all_pass () =
  List.iter
    (fun scen ->
      let s = Workload.Trial.batch ~crash_prob:0.0 ~trials:25 scen in
      Alcotest.(check int)
        (scen.Workload.Trial.scen_name ^ " passes without crashes")
        s.Workload.Trial.trials s.Workload.Trial.passed)
    [
      Workload.Scenarios.naive_rw ~strategy:`Optimistic ();
      Workload.Scenarios.naive_rw ~strategy:`Reexecute ();
      Workload.Scenarios.naive_cas ~strategy:`Optimistic ();
      Workload.Scenarios.naive_cas ~strategy:`Reexecute ();
      Workload.Scenarios.naive_tas ();
    ]

(* Targeted: optimistic WRITE recovery loses a write that never happened *)
let test_naive_rw_optimistic_loses_write () =
  let sim = Sim.create ~seed:51 ~nprocs:1 () in
  let inst = Objects.Naive.make_rw ~strategy:`Optimistic sim ~name:"R" in
  Sim.set_script sim 0
    [ (inst, "WRITE", Sim.Args [| Nvm.Value.Int 1 |]); (inst, "READ", Sim.Args [||]) ];
  Sim.step sim 0 (* INV only; the write of line 2 never executes *);
  Sim.crash sim 0;
  Sim.recover sim 0 (* recovery claims ack *);
  run_rr sim;
  (match List.assoc_opt "READ" (Sim.results sim 0) with
  | Some v -> Alcotest.check value "read misses the acknowledged write" Null v
  | None -> Alcotest.fail "READ did not complete");
  match Workload.Check.nrl_violation sim with
  | Some _ -> ()
  | None -> Alcotest.fail "checker should reject the lost write"

(* Targeted: the paper's introduction — CAS succeeded, crash, re-execution
   reports false although the effect is visible *)
let test_naive_cas_reexec_intro_scenario () =
  let sim = Sim.create ~seed:52 ~nprocs:2 () in
  let inst, _cell = Objects.Naive.make_cas_ex ~strategy:`Reexecute sim ~name:"C" in
  Sim.set_script sim 0
    [ (inst, "CAS", Sim.Args [| Nvm.Value.Null; Workload.Opgen.tagged 0 1 |]) ];
  Sim.set_script sim 1 [ (inst, "READ", Sim.Args [||]) ];
  steps sim 0 2 (* INV + line 2: the primitive cas succeeds *);
  Sim.crash sim 0 (* the true response is lost in a volatile register *);
  drain sim 1 (* q reads the visibly-CASed value *);
  Sim.recover sim 0 (* re-execution: cas now fails, p is told false *);
  run_rr sim;
  (match List.assoc_opt "CAS" (Sim.results sim 0) with
  | Some v -> Alcotest.check value "p wrongly told its CAS failed" (Bool false) v
  | None -> Alcotest.fail "CAS did not complete");
  (match List.assoc_opt "READ" (Sim.results sim 1) with
  | Some v -> Alcotest.check value "q observed p's value" (Workload.Opgen.tagged 0 1) v
  | None -> Alcotest.fail "READ did not complete");
  match Workload.Check.nrl_violation sim with
  | Some _ -> ()
  | None -> Alcotest.fail "checker should reject the lost CAS response"

(* Targeted: optimistic CAS recovery fabricates a success *)
let test_naive_cas_optimistic_fabricates_success () =
  let sim = Sim.create ~seed:53 ~nprocs:2 () in
  let inst, _ = Objects.Naive.make_cas_ex ~strategy:`Optimistic sim ~name:"C" in
  Sim.set_script sim 0
    [ (inst, "CAS", Sim.Args [| Nvm.Value.Null; Workload.Opgen.tagged 0 1 |]) ];
  Sim.set_script sim 1 [ (inst, "READ", Sim.Args [||]) ];
  Sim.step sim 0 (* INV; the primitive cas never executes *);
  Sim.crash sim 0;
  Sim.recover sim 0 (* recovery claims true *);
  run_rr sim;
  (match List.assoc_opt "CAS" (Sim.results sim 0) with
  | Some v -> Alcotest.check value "fabricated success" (Bool true) v
  | None -> Alcotest.fail "CAS did not complete");
  match Workload.Check.nrl_violation sim with
  | Some _ -> ()
  | None -> Alcotest.fail "checker should reject the fabricated CAS success"

(* Targeted: TAS re-execution loses the win; both processes return 1 *)
let test_naive_tas_lost_win () =
  let sim = Sim.create ~seed:54 ~nprocs:2 () in
  let inst = Objects.Naive.make_tas ~strategy:`Reexecute sim ~name:"T" in
  for p = 0 to 1 do
    Sim.set_script sim p [ (inst, "T&S", Sim.Args [||]) ]
  done;
  steps sim 0 2 (* INV + primitive t&s: p0 wins *);
  Sim.crash sim 0;
  drain sim 1 (* p1 completes: returns 1 *);
  Sim.recover sim 0 (* p0 re-executes: also told 1 *);
  run_rr sim;
  let v0 = List.assoc "T&S" (Sim.results sim 0) in
  let v1 = List.assoc "T&S" (Sim.results sim 1) in
  Alcotest.check value "p0 told it lost" (Int 1) v0;
  Alcotest.check value "p1 lost" (Int 1) v1;
  match Workload.Check.nrl_violation sim with
  | Some _ -> ()
  | None -> Alcotest.fail "a TAS history with no winner must be rejected"

(* Randomized: the checker finds violations for every unsound baseline *)
let test_naive_torture_detects_violations () =
  let expect_failures scen =
    let s = Workload.Trial.batch ~crash_prob:0.15 ~max_crashes:6 ~trials:150 scen in
    Alcotest.(check bool)
      (scen.Workload.Trial.scen_name ^ ": some violation detected")
      true
      (s.Workload.Trial.failed > 0)
  in
  expect_failures (Workload.Scenarios.naive_rw ~strategy:`Optimistic ());
  expect_failures (Workload.Scenarios.naive_cas ~strategy:`Optimistic ());
  expect_failures (Workload.Scenarios.naive_cas ~strategy:`Reexecute ());
  expect_failures (Workload.Scenarios.naive_tas ~nprocs:3 ())

(* Re-executing a register write is safe in the restricted two-process
   write+read setting: verified exhaustively. *)
let test_naive_rw_reexec_safe_two_procs () =
  let build () =
    let sim = Sim.create ~nprocs:2 () in
    let inst = Objects.Naive.make_rw ~strategy:`Reexecute sim ~name:"R" in
    Sim.set_script sim 0
      [ (inst, "WRITE", Sim.Args [| Nvm.Value.Int 10 |]); (inst, "READ", Sim.Args [||]) ];
    Sim.set_script sim 1
      [ (inst, "WRITE", Sim.Args [| Nvm.Value.Int 20 |]); (inst, "READ", Sim.Args [||]) ];
    sim
  in
  let cfg =
    { Explore.default_config with max_steps = 80; max_crashes = 1; crash_procs = [ 0 ] }
  in
  let viol, stats =
    Explore.find_violation ~cfg ~check:Workload.Check.nrl_violation (build ())
  in
  Alcotest.(check bool) "no violation exists" true (viol = None);
  Alcotest.(check bool) "nothing truncated" true (stats.Explore.truncated = 0)

(* ... but with a third process observing, a single crash suffices to
   expose *value resurrection*: reads observe [a; b; a] although WRITE(a)
   is a single operation.  The exhaustive search produces the minimal
   counterexample; Algorithm 1 passes the identical workload (checked in
   the experiment suite — its exhaustive run takes ~45s, so here we rely
   on the torture tests). *)
let test_naive_rw_reexec_value_resurrection () =
  let build () =
    let sim = Sim.create ~nprocs:3 () in
    let inst = Objects.Naive.make_rw ~strategy:`Reexecute sim ~name:"R" in
    Sim.set_script sim 0 [ (inst, "WRITE", Sim.Args [| Nvm.Value.Int 10 |]) ];
    Sim.set_script sim 1 [ (inst, "WRITE", Sim.Args [| Nvm.Value.Int 20 |]) ];
    Sim.set_script sim 2 (List.init 3 (fun _ -> (inst, "READ", Sim.Args [||])));
    sim
  in
  let cfg =
    { Explore.default_config with max_steps = 80; max_crashes = 1; crash_procs = [ 0 ] }
  in
  let viol, _ = Explore.find_violation ~cfg ~check:Workload.Check.nrl_violation (build ()) in
  match viol with
  | None -> Alcotest.fail "expected a value-resurrection violation"
  | Some (sim, _) ->
    (* the witness must contain a read of 10 after a read of 20 after a
       read of 10 *)
    let reads =
      List.filter_map
        (function
          | History.Step.Res { opref = { History.Step.op = "READ"; _ }; ret; _ } ->
            Some ret
          | _ -> None)
        (History.to_list (Sim.history sim))
    in
    let rec has_aba = function
      | Nvm.Value.Int 10 :: tl ->
        let rec after_b = function
          | Nvm.Value.Int 20 :: tl2 -> List.exists (Nvm.Value.equal (Nvm.Value.Int 10)) tl2
          | _ :: tl2 -> after_b tl2
          | [] -> false
        in
        after_b tl || has_aba tl
      | _ :: tl -> has_aba tl
      | [] -> false
    in
    Alcotest.(check bool) "reads observe 10,20,10" true (has_aba reads)

let suite =
  [
    Alcotest.test_case "naive objects linearizable without crashes" `Slow test_naive_crash_free_all_pass;
    Alcotest.test_case "naive rw optimistic: lost write" `Quick test_naive_rw_optimistic_loses_write;
    Alcotest.test_case "naive cas reexec: intro scenario" `Quick test_naive_cas_reexec_intro_scenario;
    Alcotest.test_case "naive cas optimistic: fabricated success" `Quick test_naive_cas_optimistic_fabricates_success;
    Alcotest.test_case "naive tas reexec: lost win" `Quick test_naive_tas_lost_win;
    Alcotest.test_case "naive torture: violations detected" `Slow test_naive_torture_detects_violations;
    Alcotest.test_case "naive rw reexec safe with 2 procs (exhaustive)" `Slow
      test_naive_rw_reexec_safe_two_procs;
    Alcotest.test_case "naive rw reexec: value resurrection (3 procs)" `Quick
      test_naive_rw_reexec_value_resurrection;
  ]
