(* Correctness tests for the paper's four algorithms: crash-free sanity,
   targeted crash schedules for every interesting window, randomized crash
   torture (NRL must always hold), and bounded-exhaustive verification of
   the paper's lemmas on small instances. *)

open Machine

let value = Alcotest.testable Nvm.Value.pp Nvm.Value.equal

let nrl_ok sim =
  match Workload.Check.nrl_violation sim with
  | None -> ()
  | Some reason ->
    Fmt.epr "history:@.%a@." History.pp (Sim.history sim);
    Alcotest.failf "NRL violation: %s" reason

let run_rr sim =
  match Schedule.run sim (Schedule.round_robin ()) with
  | Schedule.Completed -> ()
  | _ -> Alcotest.fail "execution did not complete"

(* step process p exactly n times *)
let steps sim p n =
  for _ = 1 to n do
    Sim.step sim p
  done

(* run process p alone until it has no more work (other processes,
   including crashed ones, are left untouched) *)
let drain sim p =
  while Sim.enabled sim p do
    Sim.step sim p
  done

(* {2 Algorithm 1: recoverable read/write register} *)

let test_rw_crash_free () =
  let sim = Sim.create ~nprocs:2 () in
  let inst = Objects.Rw_obj.make sim ~name:"R" in
  Sim.set_script sim 0
    [ (inst, "WRITE", Sim.Args [| Nvm.Value.Int 1 |]); (inst, "READ", Sim.Args [||]) ];
  Sim.set_script sim 1 [ (inst, "READ", Sim.Args [||]) ];
  run_rr sim;
  nrl_ok sim;
  match Sim.results sim 0 with
  | [ ("WRITE", ack); ("READ", v) ] ->
    Alcotest.check value "ack" Nvm.Value.ack ack;
    Alcotest.check value "read own write" (Int 1) v
  | _ -> Alcotest.fail "unexpected results"

(* crash at every position inside WRITE, then recover and complete *)
let test_rw_crash_every_position () =
  (* WRITE body: INV + 4 instructions; crash after k steps for k=1..4 *)
  for k = 1 to 4 do
    let sim = Sim.create ~seed:(100 + k) ~nprocs:2 () in
    let inst, cells = Objects.Rw_obj.make_ex sim ~name:"R" in
    Sim.set_script sim 0 [ (inst, "WRITE", Sim.Args [| Nvm.Value.Int 42 |]) ];
    Sim.set_script sim 1 [ (inst, "READ", Sim.Args [||]) ];
    steps sim 0 k;
    Sim.crash sim 0;
    Sim.recover sim 0;
    run_rr sim;
    nrl_ok sim;
    Alcotest.check value
      (Printf.sprintf "value written (crash after %d steps)" k)
      (Int 42)
      (Nvm.Memory.peek (Sim.mem sim) cells.Objects.Rw_obj.r)
  done

(* the subtle window: p crashes between lines 3 and 5 while q overwrites —
   WRITE.RECOVER must NOT re-execute (p's write is linearized before q's) *)
let test_rw_interleaved_crash_no_reexecution () =
  let sim = Sim.create ~seed:7 ~nprocs:2 () in
  let inst, cells = Objects.Rw_obj.make_ex sim ~name:"R" in
  Sim.set_script sim 0 [ (inst, "WRITE", Sim.Args [| Nvm.Value.Int 10 |]) ];
  Sim.set_script sim 1 [ (inst, "WRITE", Sim.Args [| Nvm.Value.Int 20 |]) ];
  steps sim 0 4 (* p: INV, line 2, line 3, line 4 (R := 10) *);
  Sim.crash sim 0;
  drain sim 1 (* q writes 20 while p is down *);
  Alcotest.check value "q's value in R" (Int 20)
    (Nvm.Memory.peek (Sim.mem sim) cells.Objects.Rw_obj.r);
  Sim.recover sim 0;
  run_rr sim;
  nrl_ok sim;
  (* p must not clobber q's later write by re-executing *)
  Alcotest.check value "R still holds q's value" (Int 20)
    (Nvm.Memory.peek (Sim.mem sim) cells.Objects.Rw_obj.r)

(* crash before line 3: S_p untouched, recovery must re-execute *)
let test_rw_crash_before_s_update_reexecutes () =
  let sim = Sim.create ~seed:8 ~nprocs:1 () in
  let inst, cells = Objects.Rw_obj.make_ex sim ~name:"R" in
  ignore inst;
  Sim.set_script sim 0 [ (inst, "WRITE", Sim.Args [| Nvm.Value.Int 5 |]) ];
  steps sim 0 2 (* INV + line 2 *);
  Sim.crash sim 0;
  Sim.recover sim 0;
  run_rr sim;
  nrl_ok sim;
  Alcotest.check value "write happened on recovery" (Int 5)
    (Nvm.Memory.peek (Sim.mem sim) cells.Objects.Rw_obj.r)

(* repeated crashes during recovery *)
let test_rw_repeated_crashes () =
  let sim = Sim.create ~seed:9 ~nprocs:1 () in
  let inst, cells = Objects.Rw_obj.make_ex sim ~name:"R" in
  Sim.set_script sim 0 [ (inst, "WRITE", Sim.Args [| Nvm.Value.Int 5 |]) ];
  steps sim 0 3;
  Sim.crash sim 0;
  Sim.recover sim 0;
  Sim.step sim 0;
  Sim.crash sim 0;
  Sim.recover sim 0;
  Sim.step sim 0;
  Sim.crash sim 0;
  Sim.recover sim 0;
  run_rr sim;
  nrl_ok sim;
  Alcotest.check value "value eventually written exactly right" (Int 5)
    (Nvm.Memory.peek (Sim.mem sim) cells.Objects.Rw_obj.r)

let test_rw_torture () =
  let scen = Workload.Scenarios.register ~nprocs:3 ~ops:6 () in
  let s = Workload.Trial.batch ~crash_prob:0.08 ~max_crashes:6 ~trials:120 scen in
  Alcotest.(check int) "all trials pass NRL" s.Workload.Trial.trials s.Workload.Trial.passed;
  Alcotest.(check bool) "crashes actually injected" true (s.Workload.Trial.total_crashes > 50)

(* Lemma 2, exhaustively on a small instance *)
let test_rw_exhaustive_lemma2 () =
  let build () =
    let sim = Sim.create ~nprocs:2 () in
    let inst = Objects.Rw_obj.make sim ~name:"R" in
    Sim.set_script sim 0
      [ (inst, "WRITE", Sim.Args [| Nvm.Value.Int 10 |]); (inst, "READ", Sim.Args [||]) ];
    Sim.set_script sim 1
      [ (inst, "WRITE", Sim.Args [| Nvm.Value.Int 20 |]); (inst, "READ", Sim.Args [||]) ];
    sim
  in
  let cfg =
    { Explore.default_config with max_steps = 100; max_crashes = 1; crash_procs = [ 0 ] }
  in
  let viol, stats =
    Explore.find_violation ~cfg ~check:Workload.Check.nrl_violation (build ())
  in
  (match viol with
  | Some (sim, reason) ->
    Fmt.epr "violating history:@.%a@." History.pp (Sim.history sim);
    Alcotest.failf "Lemma 2 violated: %s" reason
  | None -> ());
  Alcotest.(check bool) "nothing truncated" true (stats.Explore.truncated = 0);
  Alcotest.(check bool) "search nontrivial" true (stats.Explore.terminals > 1000)

(* {2 Algorithm 2: recoverable CAS} *)

let test_cas_crash_free () =
  let sim = Sim.create ~nprocs:2 () in
  let inst = Objects.Cas_obj.make sim ~name:"C" in
  Sim.set_script sim 0
    [
      Workload.Opgen.cas_fixed ~pid:0 inst ~old:Nvm.Value.Null ~seq:1;
      (inst, "READ", Sim.Args [||]);
    ];
  Sim.set_script sim 1 [ Workload.Opgen.cas_fixed ~pid:1 inst ~old:Nvm.Value.Null ~seq:1 ];
  run_rr sim;
  nrl_ok sim;
  (* exactly one of the two CASes from null succeeded *)
  let wins =
    List.length
      (List.concat_map
         (fun p ->
           List.filter (fun (op, v) -> op = "CAS" && Nvm.Value.equal v (Bool true))
             (Sim.results sim p))
         [ 0; 1 ])
  in
  Alcotest.(check int) "exactly one winner" 1 wins

(* the paper's introductory scenario: crash right after a successful cas;
   recovery must report true even after another process overwrites C *)
let test_cas_crash_after_success_reports_true () =
  let sim = Sim.create ~seed:21 ~nprocs:2 () in
  let inst, cells = Objects.Cas_obj.make_ex sim ~name:"C" in
  Sim.set_script sim 0 [ Workload.Opgen.cas_fixed ~pid:0 inst ~old:Nvm.Value.Null ~seq:1 ];
  Sim.set_script sim 1
    [
      ( inst,
        "CAS",
        Sim.Compute
          (fun mem ->
            (* q CASes from whatever it would read *)
            let c = Nvm.Memory.peek mem cells.Objects.Cas_obj.c in
            [| Nvm.Value.snd c; Workload.Opgen.tagged 1 1 |]) );
    ];
  (* p runs through its successful cas (INV, line 2, line 3, line 5, line 7) *)
  steps sim 0 5;
  Sim.crash sim 0;
  (* q's CAS executes fully while p is down: it must help p by writing to
     R[p][q] *)
  drain sim 1;
  Sim.recover sim 0;
  run_rr sim;
  nrl_ok sim;
  match List.assoc_opt "CAS" (Sim.results sim 0) with
  | Some v -> Alcotest.check value "p learns its CAS succeeded" (Bool true) v
  | None -> Alcotest.fail "p's CAS did not complete"

let test_cas_crash_before_cas_reexecutes () =
  let sim = Sim.create ~seed:22 ~nprocs:2 () in
  let inst = Objects.Cas_obj.make sim ~name:"C" in
  Sim.set_script sim 0 [ Workload.Opgen.cas_fixed ~pid:0 inst ~old:Nvm.Value.Null ~seq:1 ];
  steps sim 0 2 (* INV + line 2 (read) *);
  Sim.crash sim 0;
  Sim.recover sim 0;
  run_rr sim;
  nrl_ok sim;
  match List.assoc_opt "CAS" (Sim.results sim 0) with
  | Some v -> Alcotest.check value "solo CAS eventually succeeds" (Bool true) v
  | None -> Alcotest.fail "p's CAS did not complete"

let test_cas_torture () =
  let scen = Workload.Scenarios.cas ~nprocs:3 ~ops:6 () in
  let s = Workload.Trial.batch ~crash_prob:0.08 ~max_crashes:6 ~trials:120 scen in
  Alcotest.(check int) "all trials pass NRL" s.Workload.Trial.trials s.Workload.Trial.passed

(* Lemma 3, exhaustively on a small instance *)
let test_cas_exhaustive_lemma3 () =
  let build () =
    let sim = Sim.create ~nprocs:2 () in
    let inst = Objects.Cas_obj.make sim ~name:"C" in
    Sim.set_script sim 0
      [
        Workload.Opgen.cas_fixed ~pid:0 inst ~old:Nvm.Value.Null ~seq:1;
        (inst, "READ", Sim.Args [||]);
      ];
    Sim.set_script sim 1
      [
        Workload.Opgen.cas_fixed ~pid:1 inst ~old:Nvm.Value.Null ~seq:1;
        (inst, "READ", Sim.Args [||]);
      ];
    sim
  in
  let cfg =
    { Explore.default_config with max_steps = 100; max_crashes = 1; crash_procs = [ 0 ] }
  in
  let viol, stats =
    Explore.find_violation ~cfg ~check:Workload.Check.nrl_violation (build ())
  in
  (match viol with
  | Some (sim, reason) ->
    Fmt.epr "violating history:@.%a@." History.pp (Sim.history sim);
    Alcotest.failf "Lemma 3 violated: %s" reason
  | None -> ());
  Alcotest.(check bool) "nothing truncated" true (stats.Explore.truncated = 0)

(* {2 Algorithm 3: recoverable TAS} *)

let test_tas_crash_free_unique_winner () =
  let sim = Sim.create ~nprocs:4 () in
  let inst = Objects.Tas_obj.make sim ~name:"T" in
  for p = 0 to 3 do
    Sim.set_script sim p [ (inst, "T&S", Sim.Args [||]) ]
  done;
  run_rr sim;
  nrl_ok sim;
  let zeros =
    List.length
      (List.filter
         (fun p -> List.exists (fun (_, v) -> Nvm.Value.equal v (Int 0)) (Sim.results sim p))
         [ 0; 1; 2; 3 ])
  in
  Alcotest.(check int) "exactly one winner" 1 zeros

let test_tas_strictness () =
  let sim = Sim.create ~nprocs:2 () in
  let inst = Objects.Tas_obj.make sim ~name:"T" in
  for p = 0 to 1 do
    Sim.set_script sim p [ (inst, "T&S", Sim.Args [||]) ]
  done;
  run_rr sim;
  Alcotest.(check int) "T&S responses all persisted before returning" 0
    (List.length (Workload.Check.strictness_violations sim))

(* winner crashes right after the base t&s, before announcing: the
   recovering process must still conclude it won (via the awaits and the
   Winner protocol) *)
let test_tas_winner_crash_before_announce () =
  let sim = Sim.create ~seed:31 ~nprocs:2 () in
  let inst = Objects.Tas_obj.make sim ~name:"T" in
  for p = 0 to 1 do
    Sim.set_script sim p [ (inst, "T&S", Sim.Args [||]) ]
  done;
  (* p0: INV, line 2, line 3 read doorway, branch, line 6, line 7, line 8 t&s *)
  steps sim 0 7;
  Sim.crash sim 0;
  (* q completes its T&S while p is down (loses: doorway closed) *)
  drain sim 1;
  Sim.recover sim 0;
  run_rr sim;
  nrl_ok sim;
  let v0 = List.assoc "T&S" (Sim.results sim 0) in
  let v1 = List.assoc "T&S" (Sim.results sim 1) in
  Alcotest.check value "p0 won" (Int 0) v0;
  Alcotest.check value "p1 lost" (Int 1) v1

(* recovery must block while another process is inside the doorway *)
let test_tas_recovery_blocks () =
  let sim = Sim.create ~seed:32 ~nprocs:2 () in
  let inst = Objects.Tas_obj.make sim ~name:"T" in
  for p = 0 to 1 do
    Sim.set_script sim p [ (inst, "T&S", Sim.Args [||]) ]
  done;
  steps sim 0 7 (* p0 through its base t&s *);
  steps sim 1 3 (* p1 through line 2 (R[1] := 1): now R[1] = 1 *);
  Sim.crash sim 0;
  Sim.recover sim 0;
  (* p0's recovery alone cannot finish: it awaits R[1] \in {0, >2} *)
  let budget = 500 in
  let stepped = ref 0 in
  (try
     while !stepped < budget && Sim.results sim 0 = [] do
       Sim.step sim 0;
       incr stepped
     done
   with _ -> ());
  Alcotest.(check bool) "recovery is blocked on p1" true (Sim.results sim 0 = []);
  (* letting p1 finish unblocks p0 *)
  run_rr sim;
  nrl_ok sim;
  Alcotest.(check bool) "p0 completed after p1" true (Sim.results sim 0 <> [])

let test_tas_torture () =
  let scen = Workload.Scenarios.tas ~nprocs:4 () in
  let s = Workload.Trial.batch ~crash_prob:0.1 ~max_crashes:4 ~trials:150 scen in
  Alcotest.(check int) "all trials pass NRL" s.Workload.Trial.trials s.Workload.Trial.passed

(* footnote 3: the readable-base variant must behave identically *)
let test_tas_readable_base_variant () =
  (* unique winner, crash-free *)
  let sim = Sim.create ~nprocs:4 () in
  let inst = Objects.Tas_obj.make ~readable_base:true sim ~name:"T" in
  for p = 0 to 3 do
    Sim.set_script sim p [ (inst, "T&S", Sim.Args [||]) ]
  done;
  run_rr sim;
  nrl_ok sim;
  let zeros =
    List.length
      (List.filter
         (fun p -> List.exists (fun (_, v) -> Nvm.Value.equal v (Int 0)) (Sim.results sim p))
         [ 0; 1; 2; 3 ])
  in
  Alcotest.(check int) "readable variant: exactly one winner" 1 zeros;
  (* randomized torture *)
  let scen =
    {
      Workload.Trial.scen_name = "tas-readable";
      nprocs = 4;
      build =
        (fun sim ->
          let inst = Objects.Tas_obj.make ~readable_base:true sim ~name:"T" in
          for p = 0 to 3 do
            Sim.set_script sim p [ (inst, "T&S", Sim.Args [||]) ]
          done);
    }
  in
  let s = Workload.Trial.batch ~crash_prob:0.1 ~max_crashes:4 ~trials:150 scen in
  Alcotest.(check int) "readable variant: torture" s.Workload.Trial.trials
    s.Workload.Trial.passed

(* {2 Algorithm 4: recoverable counter} *)

let test_counter_crash_free () =
  let sim = Sim.create ~nprocs:3 () in
  let inst = Objects.Counter_obj.make sim ~name:"CTR" in
  for p = 0 to 2 do
    Sim.set_script sim p [ (inst, "INC", Sim.Args [||]); (inst, "INC", Sim.Args [||]) ]
  done;
  Sim.append_script sim 0 [ (inst, "READ", Sim.Args [||]) ];
  run_rr sim;
  nrl_ok sim;
  match List.assoc_opt "READ" (Sim.results sim 0) with
  | Some v -> Alcotest.check value "six increments" (Int 6) v
  | None -> Alcotest.fail "READ did not complete"

(* crash inside the nested WRITE: WRITE.RECOVER runs, then INC.RECOVER sees
   LI = 4 and returns without double-incrementing *)
let test_counter_no_double_increment () =
  (* INC: INV, line 2 = invoke READ (INV, 8, 9/Ret), line 3, line 4 = invoke
     WRITE (INV, 2, 3, 4, 5/Ret), line 5/Ret.  Crash at every prefix length
     and check the final count is exactly 1. *)
  for k = 1 to 10 do
    let sim = Sim.create ~seed:(400 + k) ~nprocs:1 () in
    let inst = Objects.Counter_obj.make sim ~name:"CTR" in
    Sim.set_script sim 0 [ (inst, "INC", Sim.Args [||]); (inst, "READ", Sim.Args [||]) ];
    (try steps sim 0 k with Invalid_argument _ -> ());
    if Sim.status sim 0 = Sim.Ready && (Sim.proc sim 0).Sim.stack <> [] then begin
      Sim.crash sim 0;
      Sim.recover sim 0
    end;
    run_rr sim;
    nrl_ok sim;
    match List.assoc_opt "READ" (Sim.results sim 0) with
    | Some v ->
      Alcotest.check value (Printf.sprintf "count after crash at %d" k) (Int 1) v
    | None -> Alcotest.fail "READ did not complete"
  done

let test_counter_strict_read () =
  let sim = Sim.create ~nprocs:2 () in
  let inst = Objects.Counter_obj.make sim ~name:"CTR" in
  Sim.set_script sim 0 [ (inst, "INC", Sim.Args [||]); (inst, "READ", Sim.Args [||]) ];
  Sim.set_script sim 1 [ (inst, "READ", Sim.Args [||]) ];
  run_rr sim;
  Alcotest.(check int) "READ responses persisted (strict)" 0
    (List.length (Workload.Check.strictness_violations sim))

let test_counter_torture () =
  let scen = Workload.Scenarios.counter ~nprocs:3 ~ops:4 () in
  let s = Workload.Trial.batch ~crash_prob:0.05 ~max_crashes:6 ~trials:80 scen in
  Alcotest.(check int) "all trials pass NRL" s.Workload.Trial.trials s.Workload.Trial.passed

(* conservation: when every process completes, the persistent registers sum
   to exactly the number of INCs — each INC linearized exactly once *)
let prop_counter_conservation =
  QCheck2.Test.make ~name:"counter: sum of registers = completed INCs" ~count:40
    (QCheck2.Gen.int_range 1 100_000) (fun seed ->
      let nprocs = 2 in
      let incs = 3 in
      let sim = Sim.create ~seed ~nprocs () in
      let inst = Objects.Counter_obj.make sim ~name:"CTR" in
      for p = 0 to nprocs - 1 do
        Sim.set_script sim p (List.init incs (fun _ -> (inst, "INC", Sim.Args [||])))
      done;
      let policy =
        Schedule.random ~crash_prob:0.08 ~max_crashes:5 ~seed:(seed * 31 + 7) ()
      in
      match Schedule.run ~max_steps:100_000 sim policy with
      | Schedule.Completed ->
        (* final READ via a fresh quiescent run *)
        Sim.append_script sim 0 [ (inst, "READ", Sim.Args [||]) ];
        (match Schedule.run sim (Schedule.round_robin ()) with
        | Schedule.Completed -> (
          match List.assoc_opt "READ" (Sim.results sim 0) with
          | Some (Nvm.Value.Int n) -> n = nprocs * incs
          | _ -> false)
        | _ -> false)
      | _ -> QCheck2.assume_fail ())

(* property: NRL holds under randomized torture for all four algorithms *)
let prop_nrl_torture =
  QCheck2.Test.make ~name:"NRL holds under random crash schedules (all algorithms)"
    ~count:60
    QCheck2.Gen.(pair (int_range 1 1_000_000) (int_range 0 3))
    (fun (seed, which) ->
      let scen =
        match which with
        | 0 -> Workload.Scenarios.register ~nprocs:2 ~ops:4 ()
        | 1 -> Workload.Scenarios.cas ~nprocs:2 ~ops:4 ()
        | 2 -> Workload.Scenarios.tas ~nprocs:3 ()
        | _ -> Workload.Scenarios.counter ~nprocs:2 ~ops:3 ()
      in
      let _, r = Workload.Trial.run ~seed ~crash_prob:0.1 ~max_crashes:5 scen in
      r.Workload.Trial.nrl_ok)

let suite =
  [
    Alcotest.test_case "rw: crash-free" `Quick test_rw_crash_free;
    Alcotest.test_case "rw: crash at every position" `Quick test_rw_crash_every_position;
    Alcotest.test_case "rw: no re-execution after overwrite" `Quick test_rw_interleaved_crash_no_reexecution;
    Alcotest.test_case "rw: early crash re-executes" `Quick test_rw_crash_before_s_update_reexecutes;
    Alcotest.test_case "rw: repeated crashes" `Quick test_rw_repeated_crashes;
    Alcotest.test_case "rw: randomized torture" `Slow test_rw_torture;
    Alcotest.test_case "rw: Lemma 2 exhaustive (2 procs, 1 crash)" `Slow test_rw_exhaustive_lemma2;
    Alcotest.test_case "cas: crash-free, one winner" `Quick test_cas_crash_free;
    Alcotest.test_case "cas: intro scenario (crash after success)" `Quick test_cas_crash_after_success_reports_true;
    Alcotest.test_case "cas: crash before cas re-executes" `Quick test_cas_crash_before_cas_reexecutes;
    Alcotest.test_case "cas: randomized torture" `Slow test_cas_torture;
    Alcotest.test_case "cas: Lemma 3 exhaustive (2 procs, 1 crash)" `Slow test_cas_exhaustive_lemma3;
    Alcotest.test_case "tas: unique winner" `Quick test_tas_crash_free_unique_winner;
    Alcotest.test_case "tas: strictness" `Quick test_tas_strictness;
    Alcotest.test_case "tas: winner crash before announce" `Quick test_tas_winner_crash_before_announce;
    Alcotest.test_case "tas: recovery blocks on active process" `Quick test_tas_recovery_blocks;
    Alcotest.test_case "tas: randomized torture" `Slow test_tas_torture;
    Alcotest.test_case "tas: readable-base variant (footnote 3)" `Slow test_tas_readable_base_variant;
    Alcotest.test_case "counter: crash-free" `Quick test_counter_crash_free;
    Alcotest.test_case "counter: no double increment" `Quick test_counter_no_double_increment;
    Alcotest.test_case "counter: strict READ" `Quick test_counter_strict_read;
    Alcotest.test_case "counter: randomized torture" `Slow test_counter_torture;
    QCheck_alcotest.to_alcotest prop_counter_conservation;
    QCheck_alcotest.to_alcotest prop_nrl_torture;
  ]
