(* The suite list in main.ml is append-only and easy to forget: a new
   test_*.ml that compiles but is never added to the run is silently
   dead.  This test closes the loop in both directions by comparing the
   test directory's contents against main.ml's source (dune copies both
   into the build directory, so the current directory at test runtime is
   the authoritative file set). *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_files () =
  Sys.readdir "."
  |> Array.to_list
  |> List.filter (fun f ->
         String.length f > 8
         && String.sub f 0 5 = "test_"
         && Filename.check_suffix f ".ml")
  |> List.sort compare

let module_of file = String.capitalize_ascii (Filename.chop_suffix file ".ml")

let main_src () = In_channel.with_open_bin "main.ml" In_channel.input_all

let test_every_file_is_wired () =
  let src = main_src () in
  List.iter
    (fun f ->
      let reference = module_of f ^ ".suite" in
      if not (contains ~needle:reference src) then
        Alcotest.failf
          "%s exists but %s is not in main.ml's suite list — its tests never run" f reference)
    (test_files ())

let test_every_suite_has_a_file () =
  (* scan main.ml for Test_<name>.suite references and require the file *)
  let src = main_src () in
  let files = test_files () in
  let n = String.length src in
  let is_ident c = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_' in
  let rec scan i =
    if i + 5 >= n then ()
    else if String.sub src i 5 = "Test_" then begin
      let j = ref (i + 5) in
      while !j < n && is_ident src.[!j] do incr j done;
      let modname = String.sub src i (!j - i) in
      if !j + 6 <= n && String.sub src !j 6 = ".suite" then begin
        let file = String.uncapitalize_ascii modname ^ ".ml" in
        if not (List.mem file files) then
          Alcotest.failf "main.ml runs %s.suite but %s does not exist" modname file
      end;
      scan !j
    end
    else scan (i + 1)
  in
  scan 0

let test_this_suite_is_wired () =
  (* the registration check must itself be registered, or a later edit
     could drop it along with everything it guards *)
  Alcotest.(check bool) "Test_registration.suite in main.ml" true
    (contains ~needle:"Test_registration.suite" (main_src ()))

let suite =
  [
    Alcotest.test_case "every test_*.ml is in main.ml" `Quick test_every_file_is_wired;
    Alcotest.test_case "every wired suite has a file" `Quick test_every_suite_has_a_file;
    Alcotest.test_case "registration check is itself wired" `Quick test_this_suite_is_wired;
  ]
