(* Golden/expect tests for the nrlsim CLI: the help surface, the shape of
   the --stats counter section, and the exit-code contract pinned in
   docs/cli.md (0 clean, 2 violation found, 3 budget/signal cut short,
   124 command-line error).

   The executable is a declared dune dependency of this test, so it is
   always the one built from the current tree.  Tests run with the test
   directory as the working directory; the binary lives at
   ../bin/nrlsim.exe in the build tree. *)

let exe = Filename.concat (Filename.concat ".." "bin") "nrlsim.exe"

(* Run [exe args], capturing combined stdout+stderr and the exit code. *)
let run_cli args =
  let out = Filename.temp_file "nrl_cli" ".out" in
  let cmd =
    Printf.sprintf "%s > %s 2>&1"
      (Filename.quote_command exe args)
      (Filename.quote out)
  in
  let code = Sys.command cmd in
  let output = In_channel.with_open_bin out In_channel.input_all in
  Sys.remove out;
  (code, output)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let assert_contains out needle =
  if not (contains ~needle out) then
    Alcotest.failf "output does not mention %S:\n%s" needle out

(* {2 Help surface} *)

let test_help_lists_subcommands () =
  let code, out = run_cli [ "--help=plain" ] in
  Alcotest.(check int) "--help exits 0" 0 code;
  (* the golden part: every subcommand with its one-line purpose *)
  List.iter (assert_contains out)
    [
      "check [OPTION]";
      "One seeded run with the full history and NRL verdict";
      "explore [OPTION]";
      "Bounded exhaustive schedule exploration (use small instances)";
      "fuzz [OPTION]";
      "Coverage-guided scenario fuzzing with counterexample shrinking";
      "list [OPTION]";
      "List available scenarios";
      "run [OPTION]";
      "Randomized crash-torture batch with NRL checking";
      "theorem [OPTION]";
      "Theorem 4 analysis";
    ]

let test_fuzz_help_lists_flags () =
  let code, out = run_cli [ "fuzz"; "--help=plain" ] in
  Alcotest.(check int) "fuzz --help exits 0" 0 code;
  List.iter (assert_contains out)
    [
      "--seeds"; "--seed"; "--kinds"; "--budget"; "--corpus"; "--resume"; "--shrink";
      "--zoo"; "--zoo-budget"; "--replay"; "--stats"; "--trace";
    ]

(* {2 --stats counter section shape} *)

let test_run_stats_counter_section () =
  let code, out = run_cli [ "run"; "counter"; "--trials"; "5"; "--stats" ] in
  Alcotest.(check int) "clean batch exits 0" 0 code;
  let lines = String.split_on_char '\n' out in
  let rec after = function
    | [] -> Alcotest.failf "no 'counters:' section in:\n%s" out
    | "counters:" :: tl -> tl
    | _ :: tl -> after tl
  in
  let rec section acc = function
    | l :: tl when String.length l > 2 && String.sub l 0 2 = "  " -> section (l :: acc) tl
    | _ -> List.rev acc
  in
  let counters = section [] (after lines) in
  if counters = [] then Alcotest.failf "empty counter section in:\n%s" out;
  let names =
    List.map
      (fun l ->
        match String.split_on_char ' ' (String.trim l) with
        | name :: rest ->
          (* shape: two-space indent, name, spaces, integer value *)
          (match List.filter (fun s -> s <> "") rest with
          | [ v ] when int_of_string_opt v <> None -> name
          | _ -> Alcotest.failf "malformed counter line %S" l)
        | [] -> Alcotest.failf "malformed counter line %S" l)
      counters
  in
  (* every printed counter is catalogued, engine-invariant, and the
     section is sorted by name *)
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (n ^ " catalogued as a counter") true
        (Obs.Names.kind_of n = Some Obs.Names.Counter);
      Alcotest.(check bool) (n ^ " engine-invariant") true (Obs.Names.engine_invariant n))
    names;
  Alcotest.(check (list string)) "sorted by name" (List.sort compare names) names;
  (* the core machine counters are always present for a torture batch *)
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " present") true (List.mem n names))
    [ "sim.steps"; "sim.crashes"; "sim.recoveries"; "nrl.checks" ]

(* {2 Exit codes (docs/cli.md)} *)

let test_exit_0_clean () =
  let code, _ = run_cli [ "run"; "counter"; "--trials"; "3" ] in
  Alcotest.(check int) "clean run exits 0" 0 code

let test_exit_2_violation () =
  (* counter-read-skip-persist is pinned (test_fuzz) to violate at the
     very first campaign seed *)
  let code, out =
    run_cli [ "fuzz"; "--kinds"; "counter-read-skip-persist"; "--seeds"; "1"; "--shrink"; "false" ]
  in
  Alcotest.(check int) "violation exits 2" 2 code;
  assert_contains out "violation at seed"

let test_exit_3_budget () =
  (* a seed budget far beyond what fits into ~1s of wall clock *)
  let code, out = run_cli [ "fuzz"; "--seeds"; "1000000"; "--budget"; "1s" ] in
  Alcotest.(check int) "budget cut exits 3" 3 code;
  assert_contains out "stopped:"

let test_exit_124_cli_errors () =
  let cases =
    [
      [ "run"; "--no-such-flag" ];
      [ "fuzz"; "--replay"; "garbage" ];
      [ "fuzz"; "--kinds"; "no-such-kind"; "--seeds"; "1" ];
      [ "fuzz"; "--budget"; "soon" ];
    ]
  in
  List.iter
    (fun args ->
      let code, _ = run_cli args in
      Alcotest.(check int) (String.concat " " args ^ " exits 124") 124 code)
    cases

let test_replay_roundtrip () =
  (* a violating campaign prints a replay line; replaying it must violate *)
  let _, out =
    run_cli [ "fuzz"; "--kinds"; "tas-skip-res"; "--seeds"; "1" ]
  in
  let marker = "--replay '" in
  let idx =
    let rec find i =
      if i + String.length marker > String.length out then
        Alcotest.failf "no replay line in:\n%s" out
      else if String.sub out i (String.length marker) = marker then i + String.length marker
      else find (i + 1)
    in
    find 0
  in
  let stop = String.index_from out idx '\'' in
  let desc = String.sub out idx (stop - idx) in
  let code, out2 = run_cli [ "fuzz"; "--replay"; desc ] in
  Alcotest.(check int) "replayed reproducer exits 2" 2 code;
  assert_contains out2 "VIOLATION"

let suite =
  [
    Alcotest.test_case "help lists all subcommands" `Quick test_help_lists_subcommands;
    Alcotest.test_case "fuzz help lists its flags" `Quick test_fuzz_help_lists_flags;
    Alcotest.test_case "run --stats counter section shape" `Quick
      test_run_stats_counter_section;
    Alcotest.test_case "exit 0 on a clean run" `Quick test_exit_0_clean;
    Alcotest.test_case "exit 2 on a violation" `Quick test_exit_2_violation;
    Alcotest.test_case "exit 3 on budget exhaustion" `Quick test_exit_3_budget;
    Alcotest.test_case "exit 124 on CLI errors" `Quick test_exit_124_cli_errors;
    Alcotest.test_case "printed reproducers replay" `Quick test_replay_roundtrip;
  ]
