(* The observability layer: registry semantics (merge is an exact sum),
   the engine-invariance contract (counter values identical across
   --jobs and --trail for the same workload), the NDJSON trace schema
   (round-tripped through the same JSON reader that validates the bench
   schema), the torture-harness counters, and catalogue coverage (a run
   cannot emit a metric name the catalogue does not document). *)

open Machine

(* {1 Registry semantics} *)

let test_counter_basics () =
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter reg "x" in
  Obs.Metrics.Counter.incr c;
  Obs.Metrics.Counter.add c 4;
  Alcotest.(check int) "value" 5 (Obs.Metrics.Counter.value c);
  (* the handle is stable: a second lookup sees the same cell *)
  Obs.Metrics.Counter.incr (Obs.Metrics.counter reg "x");
  Alcotest.(check int) "shared cell" 6 (Obs.Metrics.Counter.value c);
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Obs.Metrics: x already exists as a counter (wanted a timer)")
    (fun () -> ignore (Obs.Metrics.timer reg "x"))

let test_histogram_buckets () =
  let reg = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram reg "h" in
  List.iter (Obs.Metrics.Histogram.observe h) [ 0; 1; 2; 3; 4; 1000 ];
  Alcotest.(check int) "count" 6 (Obs.Metrics.Histogram.count h);
  Alcotest.(check int) "sum" 1010 (Obs.Metrics.Histogram.sum h);
  Alcotest.(check int) "max" 1000 (Obs.Metrics.Histogram.max_value h);
  match Obs.Metrics.view reg "h" with
  | Some (Obs.Metrics.Histogram { buckets; _ }) ->
    (* 0 -> le 0; 1 -> le 1; 2,3 -> le 3; 4 -> le 7; 1000 -> le 1023 *)
    Alcotest.(check (list (pair int int)))
      "buckets"
      [ (0, 1); (1, 1); (3, 2); (7, 1); (1023, 1) ]
      buckets
  | _ -> Alcotest.fail "histogram view missing"

let test_merge_is_exact_sum () =
  let a = Obs.Metrics.create () and b = Obs.Metrics.create () in
  Obs.Metrics.Counter.add (Obs.Metrics.counter a "c") 3;
  Obs.Metrics.Counter.add (Obs.Metrics.counter b "c") 4;
  Obs.Metrics.Timer.add (Obs.Metrics.timer b "t") 100;
  Obs.Metrics.Histogram.observe (Obs.Metrics.histogram a "h") 2;
  Obs.Metrics.Histogram.observe (Obs.Metrics.histogram b "h") 9;
  Obs.Metrics.merge ~into:a b;
  (match Obs.Metrics.view a "c" with
  | Some (Obs.Metrics.Counter n) -> Alcotest.(check int) "counter sum" 7 n
  | _ -> Alcotest.fail "counter missing");
  (match Obs.Metrics.view a "t" with
  | Some (Obs.Metrics.Timer { ns; intervals }) ->
    Alcotest.(check int) "timer ns" 100 ns;
    Alcotest.(check int) "timer intervals" 1 intervals
  | _ -> Alcotest.fail "timer missing");
  (match Obs.Metrics.view a "h" with
  | Some (Obs.Metrics.Histogram { count; sum; max_value; _ }) ->
    Alcotest.(check int) "hist count" 2 count;
    Alcotest.(check int) "hist sum" 11 sum;
    Alcotest.(check int) "hist max" 9 max_value
  | _ -> Alcotest.fail "histogram missing");
  (* source unchanged *)
  match Obs.Metrics.view b "c" with
  | Some (Obs.Metrics.Counter n) -> Alcotest.(check int) "source intact" 4 n
  | _ -> Alcotest.fail "source counter missing"

(* {1 Engine invariance} *)

let crashy_cfg =
  { Explore.default_config with max_steps = 100; max_crashes = 1; crash_procs = [ 0 ] }

let explore_registry ~jobs ~trail ~incremental () =
  let reg = Obs.Metrics.create () in
  let scen = Workload.Scenarios.register ~nprocs:2 ~ops:1 () in
  let sim = Sim.create ~nprocs:2 () in
  scen.Workload.Trial.build sim;
  let check_mode =
    if incremental then `Incremental (Workload.Check.nrl_incremental ()) else `Terminal
  in
  let viol, _ =
    Explore.find_violation ~cfg:crashy_cfg ~jobs ~trail ~obs:reg ~check_mode
      ~check:Workload.Check.nrl_violation sim
  in
  Alcotest.(check bool) "no violation" true (viol = None);
  reg

let invariant_counters reg =
  List.filter_map
    (fun (name, v) ->
      match v with
      | Obs.Metrics.Counter n when Obs.Names.engine_invariant name -> Some (name, n)
      | _ -> None)
    (Obs.Metrics.to_list reg)

let test_counters_invariant_across_engines () =
  List.iter
    (fun incremental ->
      let baseline =
        invariant_counters (explore_registry ~jobs:1 ~trail:true ~incremental ())
      in
      Alcotest.(check bool) "baseline counts something" true (baseline <> []);
      List.iter
        (fun (jobs, trail) ->
          let got = invariant_counters (explore_registry ~jobs ~trail ~incremental ()) in
          Alcotest.(check (list (pair string int)))
            (Printf.sprintf "jobs=%d trail=%b incremental=%b" jobs trail incremental)
            baseline got)
        [ (1, false); (2, true); (2, false); (4, true); (4, false) ])
    [ false; true ]

(* the resume axis of the matrix: a sweep interrupted by a node budget
   and resumed from its checkpoint must report the same invariant
   counters as an uninterrupted sweep, for every engine configuration *)
let sweep_registry ~jobs ~trail ~incremental ~interrupt () =
  let reg = Obs.Metrics.create () in
  let scen = Workload.Scenarios.register ~nprocs:2 ~ops:1 () in
  let build () =
    let sim = Sim.create ~nprocs:2 () in
    scen.Workload.Trial.build sim;
    sim
  in
  let check_mode () =
    if incremental then `Incremental (Workload.Check.nrl_incremental ()) else `Terminal
  in
  let outcome =
    if not interrupt then
      fst
        (Explore.sweep ~cfg:crashy_cfg ~jobs ~trail ~obs:reg ~check_mode:(check_mode ())
           ~check:Workload.Check.nrl_violation (build ()))
    else begin
      let path = Filename.temp_file "nrl_obs_resume" ".ndjson" in
      let spec = { Explore.cp_path = path; cp_interval_s = 0.0; cp_scenario = [] } in
      (match
         Explore.sweep ~cfg:crashy_cfg ~jobs ~trail
           ~budget:{ Explore.no_budget with max_nodes = Some 2_000 }
           ~checkpoint:spec ~check_mode:(check_mode ())
           ~check:Workload.Check.nrl_violation (build ())
       with
      | Explore.Exhausted _, _ -> ()
      | _ -> Alcotest.fail "budget should have cut the sweep");
      let ck =
        match Checkpoint.load path with Ok ck -> ck | Error e -> Alcotest.fail e
      in
      Sys.remove path;
      fst
        (Explore.sweep ~cfg:crashy_cfg ~jobs ~trail ~obs:reg ~resume:ck
           ~check_mode:(check_mode ()) ~check:Workload.Check.nrl_violation (build ()))
    end
  in
  Alcotest.(check bool) "clean sweep" true (outcome = Explore.Clean);
  reg

(* the steal axis: the jobs > 1 rows above are only evidence if work was
   actually stolen between domains.  Pin a run in which steals happened
   (workers other than the seed owner must steal their first task, so on
   a multi-queue pool this is the common case; retry for scheduler luck)
   and assert the engine-invariant counters are still byte-identical. *)
let test_counters_invariant_under_steals () =
  let baseline =
    invariant_counters (explore_registry ~jobs:1 ~trail:true ~incremental:true ())
  in
  let steals_of reg =
    match Obs.Metrics.view reg Obs.Names.explore_ws_steals with
    | Some (Obs.Metrics.Counter n) -> n
    | _ -> 0
  in
  let rec attempt k =
    let reg = explore_registry ~jobs:4 ~trail:true ~incremental:true () in
    if steals_of reg > 0 then reg
    else if k = 0 then Alcotest.fail "no steals observed at jobs=4 in 25 runs"
    else attempt (k - 1)
  in
  let reg = attempt 25 in
  Alcotest.(check (list (pair string int)))
    "invariant counters identical in a run with real steals" baseline
    (invariant_counters reg)

let test_counters_invariant_across_resume () =
  List.iter
    (fun incremental ->
      let baseline =
        invariant_counters
          (sweep_registry ~jobs:1 ~trail:true ~incremental ~interrupt:false ())
      in
      Alcotest.(check bool) "baseline counts something" true (baseline <> []);
      List.iter
        (fun (jobs, trail) ->
          let got =
            invariant_counters (sweep_registry ~jobs ~trail ~incremental ~interrupt:true ())
          in
          Alcotest.(check (list (pair string int)))
            (Printf.sprintf "resumed jobs=%d trail=%b incremental=%b" jobs trail incremental)
            baseline got)
        [ (1, true); (1, false); (2, true) ])
    [ false; true ]

(* {1 The NDJSON trace schema} *)

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let obj_field name j = Test_bench_json.field name j

let test_trace_roundtrip () =
  let path = Filename.temp_file "nrl_trace" ".ndjson" in
  let tr = Obs.Trace.create ~path in
  Obs.Trace.event tr ~name:"e"
    [
      ("i", Obs.Trace.Int 42);
      ("s", Obs.Trace.Str "quote\"back\\slash");
      ("b", Obs.Trace.Bool true);
      ("nan", Obs.Trace.Float Float.nan);
    ];
  Obs.Trace.span tr ~name:"sp" ~start_ns:5 ~dur_ns:7 [ ("w", Obs.Trace.Int 0) ];
  let reg = Obs.Metrics.create () in
  Obs.Metrics.Counter.add (Obs.Metrics.counter reg Obs.Names.explore_nodes) 42;
  Obs.Metrics.Timer.add (Obs.Metrics.timer reg Obs.Names.explore_time_total) 1234;
  Obs.Metrics.Histogram.observe (Obs.Metrics.histogram reg Obs.Names.trail_undo_depth) 3;
  Obs.Trace.metrics tr reg;
  Obs.Trace.close tr;
  Obs.Trace.close tr (* idempotent *);
  let lines = read_lines path in
  Sys.remove path;
  Alcotest.(check int) "line count" 6 (List.length lines);
  (* every line is a standalone JSON object with a "type" field *)
  let parsed = List.map Test_bench_json.parse lines in
  let typ j = Test_bench_json.as_str (obj_field "type" j) in
  (match parsed with
  | meta :: rest ->
    Alcotest.(check string) "meta first" "meta" (typ meta);
    Alcotest.(check string) "schema tag" Obs.Trace.schema_version
      (Test_bench_json.as_str (obj_field "schema" meta));
    Alcotest.(check string) "clock contract" "ns-since-process-start"
      (Test_bench_json.as_str (obj_field "clock" meta));
    let event = List.find (fun j -> typ j = "event") rest in
    let fields = obj_field "fields" event in
    Alcotest.(check string) "event name" "e"
      (Test_bench_json.as_str (obj_field "name" event));
    Alcotest.(check bool) "event has timestamp" true
      (Test_bench_json.as_num (obj_field "ts_ns" event) >= 0.);
    Alcotest.(check (float 0.)) "int field" 42. (Test_bench_json.as_num (obj_field "i" fields));
    Alcotest.(check string) "escaped string survives" "quote\"back\\slash"
      (Test_bench_json.as_str (obj_field "s" fields));
    Alcotest.(check bool) "bool field" true
      (Test_bench_json.as_bool (obj_field "b" fields));
    (match obj_field "nan" fields with
    | Test_bench_json.Null -> ()
    | _ -> Alcotest.fail "nan must serialise as null");
    let span = List.find (fun j -> typ j = "span") rest in
    Alcotest.(check (float 0.)) "span start" 5. (Test_bench_json.as_num (obj_field "start_ns" span));
    Alcotest.(check (float 0.)) "span duration" 7. (Test_bench_json.as_num (obj_field "dur_ns" span));
    let counter = List.find (fun j -> typ j = "counter") rest in
    Alcotest.(check string) "counter name" Obs.Names.explore_nodes
      (Test_bench_json.as_str (obj_field "name" counter));
    Alcotest.(check (float 0.)) "counter value" 42.
      (Test_bench_json.as_num (obj_field "value" counter));
    let timer = List.find (fun j -> typ j = "timer") rest in
    Alcotest.(check (float 0.)) "timer ns" 1234. (Test_bench_json.as_num (obj_field "ns" timer));
    let hist = List.find (fun j -> typ j = "histogram") rest in
    (match obj_field "buckets" hist with
    | Test_bench_json.Arr [ b ] ->
      Alcotest.(check (float 0.)) "bucket le" 3. (Test_bench_json.as_num (obj_field "le" b));
      Alcotest.(check (float 0.)) "bucket n" 1. (Test_bench_json.as_num (obj_field "n" b))
    | _ -> Alcotest.fail "histogram buckets malformed")
  | [] -> Alcotest.fail "empty trace")

let test_explore_trace_is_schema_valid () =
  let path = Filename.temp_file "nrl_explore_trace" ".ndjson" in
  let tr = Obs.Trace.create ~path in
  let reg = Obs.Metrics.create () in
  let scen = Workload.Scenarios.register ~nprocs:2 ~ops:1 () in
  let sim = Sim.create ~nprocs:2 () in
  scen.Workload.Trial.build sim;
  let _ =
    Explore.find_violation ~cfg:crashy_cfg ~jobs:2 ~obs:reg ~trace:tr
      ~check:Workload.Check.nrl_violation sim
  in
  Obs.Trace.metrics tr reg;
  Obs.Trace.close tr;
  let lines = read_lines path in
  Sys.remove path;
  Alcotest.(check bool) "trace non-trivial" true (List.length lines > 3);
  List.iteri
    (fun i line ->
      let j = Test_bench_json.parse line in
      let typ = Test_bench_json.as_str (obj_field "type" j) in
      if i = 0 then Alcotest.(check string) "meta first" "meta" typ
      else
        Alcotest.(check bool)
          (Printf.sprintf "line %d has a known type (%s)" i typ)
          true
          (List.mem typ [ "event"; "span"; "counter"; "timer"; "histogram" ]))
    lines

(* {1 Catalogue coverage} *)

let test_run_emits_only_catalogued_names () =
  let reg = explore_registry ~jobs:2 ~trail:true ~incremental:true () in
  List.iter
    (fun (name, _) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s is catalogued" name)
        true
        (Obs.Names.kind_of name <> None))
    (Obs.Metrics.to_list reg)

let test_catalogue_kinds_match_registry () =
  let reg = explore_registry ~jobs:1 ~trail:true ~incremental:false () in
  List.iter
    (fun (name, v) ->
      let kind =
        match (v : Obs.Metrics.view) with
        | Obs.Metrics.Counter _ -> Obs.Names.Counter
        | Obs.Metrics.Timer _ -> Obs.Names.Timer
        | Obs.Metrics.Histogram _ -> Obs.Names.Histogram
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s kind matches catalogue" name)
        true
        (Obs.Names.kind_of name = Some kind))
    (Obs.Metrics.to_list reg)

(* {1 Torture-harness counters} *)

let test_torture_counters () =
  let reg = Obs.Metrics.create () in
  let c = Runtime.Rcounter.create ~nprocs:1 in
  let stats = Runtime.Torture.stats_zero () in
  let rng = Runtime.Torture.rng_create 42 in
  let n = 500 in
  for _ = 1 to n do
    Runtime.Torture.rcounter_inc ~rng ~crash_prob:0.3 ~stats ~obs:reg c ~pid:0
  done;
  let cval name =
    match Obs.Metrics.view reg name with Some (Obs.Metrics.Counter v) -> v | _ -> 0
  in
  Alcotest.(check int) "ops mirrors stats" stats.Runtime.Torture.ops
    (cval Obs.Names.torture_ops);
  Alcotest.(check int) "ops count" n (cval Obs.Names.torture_ops);
  Alcotest.(check int) "crashes mirrors stats" stats.Runtime.Torture.crashes
    (cval Obs.Names.torture_crashes);
  Alcotest.(check bool) "crash injection exercised" true
    (cval Obs.Names.torture_crashes > 0);
  Alcotest.(check int) "retries mirrors stats" stats.Runtime.Torture.retries
    (cval Obs.Names.torture_retries);
  Alcotest.(check bool) "crashes are retried" true (cval Obs.Names.torture_retries > 0);
  (* the pinned harness relation: every fired crash point leads to
     exactly one more recovery attempt, unless the watchdog aborted *)
  Alcotest.(check int) "crashes = retries + aborted_recoveries"
    (cval Obs.Names.torture_crashes)
    (cval Obs.Names.torture_retries + cval Obs.Names.torture_aborted_recoveries)

(* {1 Progress reporter} *)

let test_progress_final_line () =
  let path = Filename.temp_file "nrl_progress" ".txt" in
  let oc = open_out path in
  let p = Obs.Progress.create ~out:oc ~interval:3600.0 ~label:"t" () in
  Obs.Progress.set_tasks p 4;
  Obs.Progress.task_done p;
  Obs.Progress.tick p ~nodes:100 (* interval not elapsed: stays silent *);
  Obs.Progress.finish p ~nodes:123;
  close_out oc;
  let lines = read_lines path in
  Sys.remove path;
  match lines with
  | [ line ] ->
    Alcotest.(check bool) "exact node total" true
      (let has sub =
         let n = String.length line and m = String.length sub in
         let rec go i = i + m <= n && (String.sub line i m = sub || go (i + 1)) in
         go 0
       in
       has "123 nodes" && has "tasks 1/4" && has "done")
  | l -> Alcotest.fail (Printf.sprintf "expected exactly the final line, got %d" (List.length l))

let suite =
  [
    Alcotest.test_case "counter basics" `Quick test_counter_basics;
    Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "merge is an exact sum" `Quick test_merge_is_exact_sum;
    Alcotest.test_case "counters invariant across jobs and trail" `Slow
      test_counters_invariant_across_engines;
    Alcotest.test_case "counters invariant under real steals" `Slow
      test_counters_invariant_under_steals;
    Alcotest.test_case "counters invariant across kill-and-resume" `Slow
      test_counters_invariant_across_resume;
    Alcotest.test_case "trace round-trips through the JSON reader" `Quick test_trace_roundtrip;
    Alcotest.test_case "explorer trace is schema-valid" `Quick
      test_explore_trace_is_schema_valid;
    Alcotest.test_case "runs emit only catalogued names" `Quick
      test_run_emits_only_catalogued_names;
    Alcotest.test_case "catalogue kinds match the registry" `Quick
      test_catalogue_kinds_match_registry;
    Alcotest.test_case "torture counters" `Quick test_torture_counters;
    Alcotest.test_case "progress final line" `Quick test_progress_final_line;
  ]
