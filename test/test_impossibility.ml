(* Tests for the Theorem 4 machinery: valency analysis, critical
   configurations, the crash-extension experiment and candidate
   refutation. *)

open Impossibility

let test_initial_bivalent_paper () =
  let r = Theorem.analyze_paper_algorithm () in
  Alcotest.(check bool) "bivalent initial" true r.Theorem.initial_bivalent

let test_critical_config_paper () =
  let r = Theorem.analyze_paper_algorithm () in
  Alcotest.(check bool) "critical configuration exists" true (r.Theorem.critical_depth <> None);
  Alcotest.(check (option bool))
    "critical steps are t&s on the same base object" (Some true)
    r.Theorem.critical_steps_are_tas_on_same_object

let test_paper_recovery_blocks () =
  let r = Theorem.analyze_paper_algorithm () in
  match r.Theorem.crash_extension with
  | Some e ->
    Alcotest.(check bool) "recovery blocks after the crash extension" true
      e.Theorem.solo_blocked
  | None -> Alcotest.fail "no crash extension performed"

let test_candidates_refuted () =
  List.iter
    (fun c ->
      let r = Theorem.analyze_candidate c in
      Alcotest.(check bool)
        (c.Candidates.cand_name ^ ": initial bivalent")
        true r.Theorem.initial_bivalent;
      (match r.Theorem.crash_extension with
      | Some e ->
        Alcotest.(check bool)
          (c.Candidates.cand_name ^ ": recovery did not block (wait-free)")
          false e.Theorem.solo_blocked;
        Alcotest.(check bool)
          (c.Candidates.cand_name ^ ": crash extensions indistinguishable")
          true e.Theorem.indistinguishable
      | None -> Alcotest.fail "no crash extension");
      Alcotest.(check bool)
        (c.Candidates.cand_name ^ ": concrete NRL violation found")
        true
        (r.Theorem.violation <> None))
    Candidates.all

let test_valency_zero_mask_solo () =
  (* a single process doing T&S on the paper's algorithm: only it can
     return 0 *)
  let sim = Machine.Sim.create ~nprocs:1 () in
  let inst = Objects.Tas_obj.make sim ~name:"T" in
  Machine.Sim.set_script sim 0 [ (inst, "T&S", Machine.Sim.Args [||]) ];
  let v = Valency.create () in
  (match Valency.classify v sim with
  | Valency.Univalent 0 -> ()
  | other -> Alcotest.failf "expected p0-valent, got %a" Valency.pp_verdict other);
  Alcotest.(check bool) "explored some configs" true (v.Valency.configs > 0)

let test_statekey_distinguishes () =
  let mk () =
    let sim = Machine.Sim.create ~nprocs:2 () in
    let inst = Objects.Tas_obj.make sim ~name:"T" in
    for p = 0 to 1 do
      Machine.Sim.set_script sim p [ (inst, "T&S", Machine.Sim.Args [||]) ]
    done;
    sim
  in
  let a = mk () in
  let b = mk () in
  Alcotest.(check string) "identical configs, identical keys" (Statekey.of_sim a)
    (Statekey.of_sim b);
  Machine.Sim.step b 0;
  Alcotest.(check bool) "different configs, different keys" true
    (Statekey.of_sim a <> Statekey.of_sim b)

let test_pending_step_detects_tas () =
  let sim = Machine.Sim.create ~nprocs:1 () in
  let inst = Objects.Naive.make_tas ~strategy:`Reexecute sim ~name:"T" in
  Machine.Sim.set_script sim 0 [ (inst, "T&S", Machine.Sim.Args [||]) ];
  Machine.Sim.step sim 0 (* INV; next = Tas_prim *);
  match Valency.pending_step sim 0 with
  | Some s ->
    Alcotest.(check string) "kind" "t&s" s.Valency.ps_kind;
    Alcotest.(check bool) "address known" true (s.Valency.ps_addr <> None)
  | None -> Alcotest.fail "expected a pending step"

let suite =
  [
    Alcotest.test_case "paper alg: initial bivalent" `Slow test_initial_bivalent_paper;
    Alcotest.test_case "paper alg: critical config, t&s steps" `Slow test_critical_config_paper;
    Alcotest.test_case "paper alg: recovery blocks" `Slow test_paper_recovery_blocks;
    Alcotest.test_case "wait-free candidates all refuted" `Slow test_candidates_refuted;
    Alcotest.test_case "solo valency" `Quick test_valency_zero_mask_solo;
    Alcotest.test_case "state keys" `Quick test_statekey_distinguishes;
    Alcotest.test_case "pending step detection" `Quick test_pending_step_detects_tas;
  ]
