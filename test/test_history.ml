(* Tests for histories, subhistories and (recoverable) well-formedness,
   built from hand-crafted step sequences. *)

open History

let opref obj op : Step.opref = { Step.obj; obj_name = Printf.sprintf "o%d" obj; op }

let inv ?(pid = 0) ?(obj = 0) ?(op = "OP") id =
  Step.Inv { pid; opref = opref obj op; args = [||]; call_id = id }

let res ?(pid = 0) ?(obj = 0) ?(op = "OP") ?(ret = Nvm.Value.ack) ?persisted id =
  Step.Res { pid; opref = opref obj op; ret; call_id = id; persisted }

let crash ?(pid = 0) ?crashed () =
  Step.Crash { pid; crashed = Option.map (fun (obj, id) -> (opref obj "OP", id)) crashed }

let rec_ ?(pid = 0) () = Step.Rec { pid }

let wf_ok r = Alcotest.(check bool) "well-formed" true (Wellformed.is_ok r)
let wf_bad r = Alcotest.(check bool) "violation detected" false (Wellformed.is_ok r)

let test_n_of_removes_crashes () =
  let h = of_list [ inv 1; crash ~crashed:(0, 1) (); rec_ (); res 1 ] in
  Alcotest.(check int) "N(H) length" 2 (length (n_of h));
  Alcotest.(check bool) "crash-free" true (is_crash_free (n_of h));
  Alcotest.(check bool) "original not crash-free" false (is_crash_free h)

let test_by_proc () =
  let h = of_list [ inv ~pid:0 1; inv ~pid:1 2; res ~pid:1 2; res ~pid:0 1 ] in
  Alcotest.(check int) "p0 steps" 2 (length (by_proc h 0));
  Alcotest.(check int) "p1 steps" 2 (length (by_proc h 1))

let test_by_object_includes_matching_crash () =
  (* crash of p0 inside an operation on object 0; its matching recovery
     must be included in H|0 but not in H|1 *)
  let h =
    of_list
      [
        inv ~obj:0 1;
        inv ~pid:1 ~obj:1 2;
        crash ~crashed:(0, 1) ();
        res ~pid:1 ~obj:1 2;
        rec_ ();
        res ~obj:0 1;
      ]
  in
  Alcotest.(check int) "H|0 has inv,crash,rec,res" 4 (length (by_object h 0));
  Alcotest.(check int) "H|1 has inv,res" 2 (length (by_object h 1))

let test_ops_of () =
  let h = of_list [ inv 1; inv ~pid:1 2; res ~pid:1 2; ] in
  let ops = ops_of h in
  Alcotest.(check int) "two ops" 2 (List.length ops);
  let pending = List.filter (fun o -> o.ret = None) ops in
  Alcotest.(check int) "one pending" 1 (List.length pending)

let test_happens_before () =
  let h = of_list [ inv 1; res 1; inv ~pid:1 2; res ~pid:1 2 ] in
  match ops_of h with
  | [ a; b ] ->
    Alcotest.(check bool) "a < b" true (happens_before a b);
    Alcotest.(check bool) "not b < a" false (happens_before b a);
    Alcotest.(check bool) "not concurrent" false (concurrent a b)
  | _ -> Alcotest.fail "expected two ops"

let test_concurrent () =
  let h = of_list [ inv 1; inv ~pid:1 2; res 1; res ~pid:1 2 ] in
  match ops_of h with
  | [ a; b ] -> Alcotest.(check bool) "concurrent" true (concurrent a b)
  | _ -> Alcotest.fail "expected two ops"

let test_wf_accepts_good () =
  wf_ok (Wellformed.check_well_formed (of_list [ inv 1; res 1; inv 2; res 2 ]));
  (* proper nesting on distinct objects *)
  wf_ok
    (Wellformed.check_well_formed
       (of_list [ inv ~obj:0 1; inv ~obj:1 2; res ~obj:1 2; res ~obj:0 1 ]))

let test_wf_rejects_double_invocation () =
  wf_bad (Wellformed.check_well_formed (of_list [ inv ~obj:0 1; inv ~obj:0 2 ]))

let test_wf_rejects_response_without_invocation () =
  wf_bad (Wellformed.check_well_formed (of_list [ res 1 ]))

let test_wf_rejects_bad_nesting () =
  (* op2 invoked inside op1 but responds after op1: violates requirement 2 *)
  wf_bad
    (Wellformed.check_well_formed
       (of_list [ inv ~obj:0 1; inv ~obj:1 2; res ~obj:0 1; res ~obj:1 2 ]))

let test_wf_rejects_crashy_history () =
  wf_bad (Wellformed.check_well_formed (of_list [ inv 1; crash ~crashed:(0, 1) () ]))

let test_rwf_accepts_crash_as_last_step () =
  wf_ok
    (Wellformed.check_recoverable_well_formed (of_list [ inv 1; crash ~crashed:(0, 1) () ]))

let test_rwf_accepts_crash_rec_pairs () =
  wf_ok
    (Wellformed.check_recoverable_well_formed
       (of_list [ inv 1; crash ~crashed:(0, 1) (); rec_ (); crash ~crashed:(0, 1) (); rec_ (); res 1 ]))

let test_rwf_rejects_unmatched_crash () =
  (* p0 takes another step after a crash without a recovery step *)
  wf_bad
    (Wellformed.check_recoverable_well_formed
       (of_list [ inv 1; crash ~crashed:(0, 1) (); res 1 ]))

let test_rwf_rejects_rec_without_crash () =
  wf_bad (Wellformed.check_recoverable_well_formed (of_list [ inv 1; rec_ (); res 1 ]))

(* Lemma 1: every history the machine produces is recoverable well-formed.
   Property-tested over random seeds and scenarios. *)
let prop_lemma1 =
  QCheck2.Test.make ~name:"Lemma 1: machine histories are recoverable well-formed"
    ~count:60
    QCheck2.Gen.(pair (int_range 1 10_000) (int_range 0 3))
    (fun (seed, which) ->
      let scen =
        match which with
        | 0 -> Workload.Scenarios.register ~nprocs:2 ~ops:4 ()
        | 1 -> Workload.Scenarios.cas ~nprocs:2 ~ops:4 ()
        | 2 -> Workload.Scenarios.tas ~nprocs:3 ()
        | _ -> Workload.Scenarios.counter ~nprocs:2 ~ops:3 ()
      in
      let sim, _ = Workload.Trial.run ~seed ~crash_prob:0.1 ~max_crashes:4 scen in
      Wellformed.is_ok
        (Wellformed.check_recoverable_well_formed (Machine.Sim.history sim)))

let suite =
  [
    Alcotest.test_case "N(H) removes crash/rec" `Quick test_n_of_removes_crashes;
    Alcotest.test_case "H|p" `Quick test_by_proc;
    Alcotest.test_case "H|O includes matching crash+rec" `Quick test_by_object_includes_matching_crash;
    Alcotest.test_case "ops_of" `Quick test_ops_of;
    Alcotest.test_case "happens-before" `Quick test_happens_before;
    Alcotest.test_case "concurrency" `Quick test_concurrent;
    Alcotest.test_case "well-formed accepted" `Quick test_wf_accepts_good;
    Alcotest.test_case "double invocation rejected" `Quick test_wf_rejects_double_invocation;
    Alcotest.test_case "response w/o invocation rejected" `Quick test_wf_rejects_response_without_invocation;
    Alcotest.test_case "bad nesting rejected" `Quick test_wf_rejects_bad_nesting;
    Alcotest.test_case "crashes rejected by crash-free wf" `Quick test_wf_rejects_crashy_history;
    Alcotest.test_case "crash as last step ok (Def 3)" `Quick test_rwf_accepts_crash_as_last_step;
    Alcotest.test_case "repeated crash/rec ok (Def 3)" `Quick test_rwf_accepts_crash_rec_pairs;
    Alcotest.test_case "unmatched crash rejected" `Quick test_rwf_rejects_unmatched_crash;
    Alcotest.test_case "rec without crash rejected" `Quick test_rwf_rejects_rec_without_crash;
    QCheck_alcotest.to_alcotest prop_lemma1;
  ]
