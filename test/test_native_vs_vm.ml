(* Cross-check: the native runtime against the simulator.

   The same deterministic solo op sequences run through both backends:
   lib/runtime on real OCaml atomics with a crash/recovery drilled at
   every [Crash.point], and the simulator objects (lib/objects on the
   machine's simulated NVM) with a crash drilled after every machine
   step.  The two backends count steps differently — the simulator
   steps individual memory accesses of the pseudocode interpreter, the
   native code its [Crash.point] markers — so the comparison is on the
   abstract responses, which for these solo sequences are unique:

   - a CAS from the initial value succeeds (response [true]),
   - a lone T&S wins (response 0),
   - a solo FAA returns the initial value 0 and applies its delta
     exactly once,
   - a push of 7 acknowledges and the following pop returns 7.

   Both backends must report exactly these responses at every crash
   position; a disagreement means one of them lost or duplicated an
   operation across the crash. *)

open Machine
open Runtime

let value = Alcotest.testable Nvm.Value.pp Nvm.Value.equal

let nrl_ok sim =
  match Workload.Check.nrl_violation sim with
  | None -> ()
  | Some reason ->
    Fmt.epr "history:@.%a@." History.pp (Sim.history sim);
    Alcotest.failf "NRL violation: %s" reason

let run_rr sim =
  match Schedule.run sim (Schedule.round_robin ()) with
  | Schedule.Completed -> ()
  | _ -> Alcotest.fail "execution did not complete"

let steps sim p n =
  for _ = 1 to n do
    Sim.step sim p
  done

(* {2 Drill harnesses} *)

(* how many crash points a crash-free run of [op] traverses (arm far
   past the end; [traversed] must be read before [disarm] resets it) *)
let native_positions op =
  let cp = Crash.create () in
  Crash.arm cp max_int;
  ignore (op cp);
  let n = Crash.traversed cp in
  Crash.disarm cp;
  n

(* run [op] with a crash armed at position [k]; on crash the harness
   plays the system's role and invokes [recover] *)
let native_drill ~op ~recover k =
  let cp = Crash.create () in
  Crash.arm cp k;
  match op cp with
  | r ->
    Crash.disarm cp;
    r
  | exception Crash.Crashed ->
    Crash.disarm cp;
    recover ()

(* crash the solo simulator process after [k] steps (if its operation
   is still open), recover, run to completion, check NRL *)
let vm_drill sim k =
  (try
     steps sim 0 k;
     if (Sim.proc sim 0).Sim.stack <> [] then begin
       Sim.crash sim 0;
       Sim.recover sim 0
     end
   with Invalid_argument _ -> () (* script exhausted before step k *));
  run_rr sim;
  nrl_ok sim

(* enough steps to cover any solo op in the scripts below, crash or not *)
let vm_bound = 60

(* {2 CAS} *)

let test_cas_cross_check () =
  let drills =
    [
      ( "poly",
        fun k ->
          let c = Rcas.create ~nprocs:1 0 in
          let ret =
            native_drill k
              ~op:(fun cp -> Rcas.cas ~cp c ~pid:0 ~old:0 ~new_:1)
              ~recover:(fun () -> Rcas.cas_recover c ~pid:0 ~old:0 ~new_:1)
          in
          (ret, Rcas.read c) );
      ( "int",
        fun k ->
          let c = Rcas.Int.create ~nprocs:1 0 in
          let ret =
            native_drill k
              ~op:(fun cp -> Rcas.Int.cas ~cp c ~pid:0 ~old:0 ~new_:1)
              ~recover:(fun () -> Rcas.Int.cas_recover c ~pid:0 ~old:0 ~new_:1)
          in
          (ret, Rcas.Int.read c) );
    ]
  in
  let n =
    native_positions (fun cp ->
        ignore (Rcas.Int.cas ~cp (Rcas.Int.create ~nprocs:1 0) ~pid:0 ~old:0 ~new_:1))
  in
  Alcotest.(check bool) "the native drill covers real positions" true (n > 0);
  for k = 0 to n do
    List.iter
      (fun (name, drill) ->
        let ret, v = drill k in
        Alcotest.(check bool)
          (Printf.sprintf "native %s CAS succeeds, crash at %d" name k)
          true ret;
        Alcotest.(check int)
          (Printf.sprintf "native %s CAS applied once, crash at %d" name k)
          1 v)
      drills
  done;
  for k = 1 to vm_bound do
    let sim = Sim.create ~seed:(900 + k) ~nprocs:1 () in
    let inst = Objects.Cas_obj.make sim ~name:"C" in
    Sim.set_script sim 0
      [ Workload.Opgen.cas_fixed ~pid:0 inst ~old:Nvm.Value.Null ~seq:1 ];
    vm_drill sim k;
    Alcotest.check value
      (Printf.sprintf "vm CAS succeeds, crash after step %d" k)
      (Bool true)
      (List.assoc "CAS" (Sim.results sim 0))
  done

(* {2 T&S} *)

let test_tas_cross_check () =
  let n =
    native_positions (fun cp ->
        ignore (Rtas.test_and_set ~cp (Rtas.create ~nprocs:1) ~pid:0))
  in
  Alcotest.(check bool) "the native drill covers real positions" true (n > 0);
  for k = 0 to n do
    let t = Rtas.create ~nprocs:1 in
    let ret =
      native_drill k
        ~op:(fun cp -> Rtas.test_and_set ~cp t ~pid:0)
        ~recover:(fun () -> Rtas.recover t ~pid:0)
    in
    Alcotest.(check int)
      (Printf.sprintf "native lone T&S wins, crash at %d" k)
      0 ret;
    Alcotest.(check int)
      (Printf.sprintf "native T&S response persisted, crash at %d" k)
      0 (Rtas.response t ~pid:0)
  done;
  for k = 1 to vm_bound do
    let sim = Sim.create ~seed:(940 + k) ~nprocs:1 () in
    let inst = Objects.Tas_obj.make sim ~name:"T" in
    Sim.set_script sim 0 [ (inst, "T&S", Sim.Args [||]) ];
    vm_drill sim k;
    Alcotest.check value
      (Printf.sprintf "vm lone T&S wins, crash after step %d" k)
      (Int 0)
      (List.assoc "T&S" (Sim.results sim 0))
  done

(* {2 FAA} *)

let test_faa_cross_check () =
  let delta = 3 in
  let drills =
    [
      ( "poly",
        fun k ->
          let f = Rfaa.create ~nprocs:1 () in
          let committed = ref false in
          let ret =
            native_drill k
              ~op:(fun cp -> Rfaa.faa ~cp ~committed f ~pid:0 delta)
              ~recover:(fun () -> Rfaa.recover ~committed:!committed f ~pid:0 delta)
          in
          (ret, Rfaa.read f) );
      ( "int",
        fun k ->
          let f = Rfaa.Int.create ~nprocs:1 () in
          let committed = ref false in
          let ret =
            native_drill k
              ~op:(fun cp -> Rfaa.Int.faa ~cp ~committed f ~pid:0 delta)
              ~recover:(fun () -> Rfaa.Int.recover ~committed:!committed f ~pid:0 delta)
          in
          (ret, Rfaa.Int.read f) );
    ]
  in
  let n =
    native_positions (fun cp ->
        let f = Rfaa.Int.create ~nprocs:1 () in
        ignore (Rfaa.Int.faa ~cp f ~pid:0 delta))
  in
  Alcotest.(check bool) "the native drill covers real positions" true (n > 0);
  for k = 0 to n do
    List.iter
      (fun (name, drill) ->
        let ret, v = drill k in
        Alcotest.(check int)
          (Printf.sprintf "native %s FAA returns the initial value, crash at %d" name k)
          0 ret;
        Alcotest.(check int)
          (Printf.sprintf "native %s FAA applied exactly once, crash at %d" name k)
          delta v)
      drills
  done;
  for k = 1 to vm_bound do
    let sim = Sim.create ~seed:(980 + k) ~nprocs:1 () in
    let inst = Objects.Faa_obj.make sim ~name:"F" in
    Sim.set_script sim 0
      [
        (inst, "FAA", Sim.Args [| Nvm.Value.Int delta |]); (inst, "READ", Sim.Args [||]);
      ];
    vm_drill sim k;
    Alcotest.check value
      (Printf.sprintf "vm FAA returns the initial value, crash after step %d" k)
      (Int 0)
      (List.assoc "FAA" (Sim.results sim 0));
    Alcotest.check value
      (Printf.sprintf "vm FAA applied exactly once, crash after step %d" k)
      (Int delta)
      (List.assoc "READ" (Sim.results sim 0))
  done

(* {2 Stack} *)

let test_stack_cross_check () =
  (* two native passes per implementation: drill the push (then pop
     crash-free), and drill the pop (after a crash-free push) *)
  let poly_push k =
    let s = Rstack.create ~nprocs:1 () in
    let committed = ref false in
    let r1 =
      native_drill k
        ~op:(fun cp -> Rstack.push ~cp ~committed s ~pid:0 7)
        ~recover:(fun () -> Rstack.push_recover ~committed:!committed s ~pid:0 7)
    in
    (match r1 with
    | Rstack.Pushed -> ()
    | _ -> Alcotest.failf "poly push response wrong, crash at %d" k);
    (match Rstack.pop s ~pid:0 with
    | Rstack.Popped 7 -> ()
    | _ -> Alcotest.failf "poly push lost or duplicated, crash at %d" k);
    match Rstack.pop s ~pid:0 with
    | Rstack.Empty -> ()
    | _ -> Alcotest.failf "poly stack not empty after pop, crash at %d" k
  in
  let poly_pop k =
    let s = Rstack.create ~nprocs:1 () in
    ignore (Rstack.push s ~pid:0 7);
    let committed = ref false in
    let r =
      native_drill k
        ~op:(fun cp -> Rstack.pop ~cp ~committed s ~pid:0)
        ~recover:(fun () -> Rstack.pop_recover ~committed:!committed s ~pid:0)
    in
    (match r with
    | Rstack.Popped 7 -> ()
    | _ -> Alcotest.failf "poly pop response wrong, crash at %d" k);
    if Rstack.peek s <> None then
      Alcotest.failf "poly pop applied more or less than once, crash at %d" k
  in
  let int_push k =
    let s = Rstack.Int.create ~nprocs:1 () in
    let committed = ref false in
    let r1 =
      native_drill k
        ~op:(fun cp -> Rstack.Int.push ~cp ~committed s ~pid:0 7)
        ~recover:(fun () -> Rstack.Int.push_recover ~committed:!committed s ~pid:0 7)
    in
    Alcotest.(check int)
      (Printf.sprintf "int push response, crash at %d" k)
      Rstack.Int.resp_pushed r1;
    (match Rstack.Int.decode (Rstack.Int.pop s ~pid:0) with
    | Rstack.Popped 7 -> ()
    | _ -> Alcotest.failf "int push lost or duplicated, crash at %d" k);
    Alcotest.(check int)
      (Printf.sprintf "int stack empty after pop, crash at %d" k)
      Rstack.Int.resp_empty
      (Rstack.Int.pop s ~pid:0)
  in
  let int_pop k =
    let s = Rstack.Int.create ~nprocs:1 () in
    ignore (Rstack.Int.push s ~pid:0 7);
    let committed = ref false in
    let r =
      native_drill k
        ~op:(fun cp -> Rstack.Int.pop ~cp ~committed s ~pid:0)
        ~recover:(fun () -> Rstack.Int.pop_recover ~committed:!committed s ~pid:0)
    in
    (match Rstack.Int.decode r with
    | Rstack.Popped 7 -> ()
    | _ -> Alcotest.failf "int pop response wrong, crash at %d" k);
    if Rstack.Int.peek s <> None then
      Alcotest.failf "int pop applied more or less than once, crash at %d" k
  in
  let n_push =
    native_positions (fun cp ->
        ignore (Rstack.Int.push ~cp (Rstack.Int.create ~nprocs:1 ()) ~pid:0 7))
  in
  let n_pop =
    native_positions (fun cp ->
        let s = Rstack.Int.create ~nprocs:1 () in
        ignore (Rstack.Int.push s ~pid:0 7);
        ignore (Rstack.Int.pop ~cp s ~pid:0))
  in
  Alcotest.(check bool) "the native drill covers real positions" true
    (n_push > 0 && n_pop > 0);
  for k = 0 to n_push do
    poly_push k;
    int_push k
  done;
  for k = 0 to n_pop do
    poly_pop k;
    int_pop k
  done;
  for k = 1 to vm_bound do
    let sim = Sim.create ~seed:(1020 + k) ~nprocs:1 () in
    let inst = Objects.Stack_obj.make sim ~name:"S" in
    Sim.set_script sim 0
      [ (inst, "PUSH", Sim.Args [| Nvm.Value.Int 7 |]); (inst, "POP", Sim.Args [||]) ];
    vm_drill sim k;
    Alcotest.check value
      (Printf.sprintf "vm pop returns the pushed value, crash after step %d" k)
      (Int 7)
      (List.assoc "POP" (Sim.results sim 0))
  done

let suite =
  [
    Alcotest.test_case "cas: both backends agree at every crash position" `Quick
      test_cas_cross_check;
    Alcotest.test_case "t&s: both backends agree at every crash position" `Quick
      test_tas_cross_check;
    Alcotest.test_case "faa: both backends agree at every crash position" `Quick
      test_faa_cross_check;
    Alcotest.test_case "stack: both backends agree at every crash position" `Quick
      test_stack_cross_check;
  ]
