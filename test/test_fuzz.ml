(* Tests for the coverage-guided scenario fuzzer (lib/fuzz).

   The pinned facts here are the PR's acceptance criteria: every zoo
   mutant is caught within the default per-mutant seed budget, shrunk
   counterexamples still violate when replayed from their printed form,
   and a fixed-seed campaign writes a byte-identical corpus whether it
   runs uninterrupted, is re-run, or is resumed mid-way. *)

module Gen = Fuzz.Gen
module Corpus = Fuzz.Corpus
module Shrink = Fuzz.Shrink
module Campaign = Fuzz.Campaign
module Prng = Machine.Schedule.Prng

let slurp path = In_channel.with_open_bin path In_channel.input_all

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) ("nrl_fuzz_test_" ^ name)

(* {2 Descriptors} *)

let test_descriptor_roundtrip () =
  for seed = 1 to 200 do
    let rng = Prng.create seed in
    let d = Gen.sample ~rng ~kinds:Gen.all_kinds in
    match Gen.of_string (Gen.to_string d) with
    | Ok d' -> Alcotest.(check string) "round-trip" (Gen.to_string d) (Gen.to_string d')
    | Error m -> Alcotest.failf "descriptor did not parse back: %s" m
  done

let test_descriptor_parse_errors () =
  let rejected s =
    match Gen.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "parsed malformed descriptor %S" s
  in
  rejected "";
  rejected "garbage";
  rejected "kind=register,n=2,ops=3";
  (* missing fields *)
  rejected
    "kind=nonsense,n=2,ops=3,mix=500,seed=1,sched=2,crash=50,rec=500,sys=0,maxc=2,steps=500,junk=zeros";
  rejected
    "kind=register,n=2,ops=3,mix=500,seed=1,sched=2,crash=50,rec=500,sys=0,maxc=2,steps=500,junk=bogus";
  rejected
    "kind=register,n=zero,ops=3,mix=500,seed=1,sched=2,crash=50,rec=500,sys=0,maxc=2,steps=500,junk=zeros"

let test_sample_respects_kinds () =
  let rng = Prng.create 3 in
  for _ = 1 to 50 do
    let d = Gen.sample ~rng ~kinds:[ "cas"; "tas" ] in
    Alcotest.(check bool) "kind in list" true (List.mem d.Gen.kind [ "cas"; "tas" ])
  done

let test_run_deterministic () =
  let rng = Prng.create 11 in
  let d = Gen.sample ~rng ~kinds:Gen.base_kinds in
  let c1 = ref [] and c2 = ref [] in
  let v1 = Gen.run ~collect:(fun h -> c1 := h :: !c1) d in
  let v2 = Gen.run ~collect:(fun h -> c2 := h :: !c2) d in
  Alcotest.(check (option string)) "same verdict" v1.Gen.v_violation v2.Gen.v_violation;
  Alcotest.(check int) "same steps" v1.Gen.v_steps v2.Gen.v_steps;
  Alcotest.(check (list int)) "same coverage stream" !c1 !c2

(* {2 Zoo detection (pinned budget)} *)

let test_zoo_all_detected () =
  let dets = Campaign.zoo ~shrink:false ~base_seed:1 () in
  Alcotest.(check int) "every registered mutant measured" (List.length Objects.Zoo.all)
    (List.length dets);
  List.iter
    (fun z ->
      match z.Campaign.z_found with
      | Some _ -> ()
      | None ->
        Alcotest.failf "mutant %s not detected within %d seeds"
          z.Campaign.z_mutant.Objects.Zoo.m_name Campaign.default_zoo_budget)
    dets

let test_zoo_shrunk_reproducers_violate () =
  let dets = Campaign.zoo ~shrink:true ~base_seed:1 () in
  List.iter
    (fun z ->
      match z.Campaign.z_found, z.Campaign.z_shrunk with
      | Some _, Some o ->
        (* replay from the printed form, as a user would *)
        let printed = Gen.to_string o.Shrink.s_desc in
        let d =
          match Gen.of_string printed with
          | Ok d -> d
          | Error m -> Alcotest.failf "reproducer %s does not parse: %s" printed m
        in
        let v = Gen.run d in
        (match v.Gen.v_violation with
        | Some _ -> ()
        | None ->
          Alcotest.failf "shrunk reproducer for %s no longer violates: %s"
            z.Campaign.z_mutant.Objects.Zoo.m_name printed)
      | Some _, None ->
        Alcotest.failf "mutant %s detected but not shrunk"
          z.Campaign.z_mutant.Objects.Zoo.m_name
      | None, _ ->
        Alcotest.failf "mutant %s not detected" z.Campaign.z_mutant.Objects.Zoo.m_name)
    dets

let test_shrink_never_grows () =
  let dets = Campaign.zoo ~shrink:true ~base_seed:1 () in
  List.iter
    (fun z ->
      match z.Campaign.z_found, z.Campaign.z_shrunk with
      | Some (d0, _), Some o ->
        let d = o.Shrink.s_desc in
        let le what a b =
          if a > b then
            Alcotest.failf "%s grew while shrinking %s: %d > %d" what
              z.Campaign.z_mutant.Objects.Zoo.m_name a b
        in
        le "nprocs" d.Gen.nprocs d0.Gen.nprocs;
        le "ops" d.Gen.ops d0.Gen.ops;
        le "max_crashes" d.Gen.max_crashes d0.Gen.max_crashes;
        le "max_steps" d.Gen.max_steps d0.Gen.max_steps;
        le "system_pm" d.Gen.system_pm d0.Gen.system_pm
      | _ -> ())
    dets

(* {2 Corpus persistence} *)

let small_cfg path =
  { Campaign.default_cfg with seeds = 40; corpus_path = Some path; shrink = true }

let test_corpus_roundtrip () =
  let a = tmp "rt_a.ndjson" and b = tmp "rt_b.ndjson" in
  (match Campaign.run (small_cfg a) with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  (match Corpus.load a with
  | Error m -> Alcotest.fail m
  | Ok c ->
    Corpus.save ~path:b c;
    Alcotest.(check string) "load/save is the identity" (slurp a) (slurp b);
    Alcotest.(check int) "entries round-trip with their coverage" c.Corpus.stats.Corpus.corpus_entries
      (List.length c.Corpus.entries));
  Sys.remove a;
  Sys.remove b

let test_corpus_load_errors () =
  let reject name content =
    let p = tmp name in
    Out_channel.with_open_bin p (fun oc -> output_string oc content);
    (match Corpus.load p with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "loaded malformed corpus %s" name);
    Sys.remove p
  in
  (match Corpus.load (tmp "does_not_exist.ndjson") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "loaded a missing file");
  reject "empty.ndjson" "";
  reject "schema.ndjson" "{\"schema\":\"nrl-corpus/999\"}\n";
  reject "junk.ndjson" "{\"schema\":\"nrl-corpus/1\"}\nnot json\n";
  reject "unknown.ndjson" "{\"schema\":\"nrl-corpus/1\"}\n{\"type\":\"mystery\"}\n"

let test_campaign_byte_identical_rerun () =
  let a = tmp "id_a.ndjson" and b = tmp "id_b.ndjson" in
  (match Campaign.run (small_cfg a), Campaign.run (small_cfg b) with
  | Ok ra, Ok rb ->
    Alcotest.(check string) "same corpus bytes" (slurp a) (slurp b);
    Alcotest.(check int) "same runs" ra.Campaign.r_stats.Corpus.runs
      rb.Campaign.r_stats.Corpus.runs;
    Alcotest.(check bool) "finished" true (ra.Campaign.r_finished && rb.Campaign.r_finished)
  | Error m, _ | _, Error m -> Alcotest.fail m);
  Sys.remove a;
  Sys.remove b

let test_campaign_resume_byte_identical () =
  let a = tmp "res_a.ndjson" and c = tmp "res_c.ndjson" in
  (match Campaign.run (small_cfg a) with Ok _ -> () | Error m -> Alcotest.fail m);
  (* interrupted run: first 15 indices only... *)
  (match Campaign.run { (small_cfg c) with seeds = 15 } with
  | Ok r -> Alcotest.(check int) "partial ran 15" 15 r.Campaign.r_stats.Corpus.runs
  | Error m -> Alcotest.fail m);
  (* ...then resumed to the full budget *)
  (match Campaign.run { (small_cfg c) with resume = true } with
  | Ok r ->
    Alcotest.(check bool) "resumed to completion" true r.Campaign.r_finished;
    Alcotest.(check int) "cumulative runs" 40 r.Campaign.r_stats.Corpus.runs
  | Error m -> Alcotest.fail m);
  Alcotest.(check string) "resumed corpus byte-identical to uninterrupted" (slurp a) (slurp c);
  Sys.remove a;
  Sys.remove c

let test_campaign_stamp_mismatch_rejected () =
  let p = tmp "stamp.ndjson" in
  (match Campaign.run { (small_cfg p) with seeds = 5 } with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  (match Campaign.run { (small_cfg p) with seeds = 5; base_seed = 999; resume = true } with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "resumed a corpus from a different base seed");
  Sys.remove p

let test_campaign_sound_algorithms_clean () =
  (match Campaign.run { Campaign.default_cfg with seeds = 40 } with
  | Ok r ->
    Alcotest.(check int) "no violations on Algorithms 1-4" 0
      r.Campaign.r_stats.Corpus.violations;
    Alcotest.(check int) "every seed ran" 40 r.Campaign.r_stats.Corpus.runs
  | Error m -> Alcotest.fail m)

let test_campaign_finds_and_shrinks_zoo_kind () =
  let obs = Obs.Metrics.create () in
  match
    Campaign.run ~obs
      { Campaign.default_cfg with seeds = 3; kinds = [ "counter-read-skip-persist" ] }
  with
  | Error m -> Alcotest.fail m
  | Ok r ->
    Alcotest.(check bool) "violations found" true (r.Campaign.r_violations <> []);
    List.iter
      (fun x ->
        match x.Corpus.x_shrunk with
        | None -> Alcotest.fail "violation not shrunk"
        | Some printed -> (
          match Gen.of_string printed with
          | Error m -> Alcotest.failf "shrunk descriptor does not parse: %s" m
          | Ok d ->
            Alcotest.(check bool) "shrunk reproducer violates" true
              ((Gen.run d).Gen.v_violation <> None)))
      r.Campaign.r_violations;
    (* the obs counters mirror the campaign's own statistics *)
    let counter n =
      match Obs.Metrics.view obs n with
      | Some (Obs.Metrics.Counter v) -> v
      | _ -> Alcotest.failf "counter %s not emitted" n
    in
    Alcotest.(check int) "fuzz.violations counter" r.Campaign.r_stats.Corpus.violations
      (counter Obs.Names.fuzz_violations);
    Alcotest.(check int) "fuzz.corpus_entries counter"
      r.Campaign.r_stats.Corpus.corpus_entries
      (counter Obs.Names.fuzz_corpus_entries);
    Alcotest.(check int) "fuzz.shrink_steps counter" r.Campaign.r_stats.Corpus.shrink_steps
      (counter Obs.Names.fuzz_shrink_steps);
    (* fuzz.runs = campaign runs + shrink re-runs *)
    Alcotest.(check int) "fuzz.runs counter"
      (r.Campaign.r_stats.Corpus.runs + r.Campaign.r_stats.Corpus.shrink_steps)
      (counter Obs.Names.fuzz_runs)

let test_campaign_should_stop () =
  let p = tmp "stop.ndjson" in
  let n = ref 0 in
  let should_stop () =
    incr n;
    !n > 10
  in
  (match Campaign.run ~should_stop { (small_cfg p) with seeds = 1000 } with
  | Ok r ->
    Alcotest.(check bool) "not finished" false r.Campaign.r_finished;
    Alcotest.(check int) "stopped after 10 indices" 10 r.Campaign.r_stats.Corpus.runs;
    (match Corpus.load p with
    | Ok c ->
      Alcotest.(check int) "resumable at the next index" 10 c.Corpus.next;
      Alcotest.(check bool) "no final result yet" true (c.Corpus.result = None)
    | Error m -> Alcotest.fail m)
  | Error m -> Alcotest.fail m);
  Sys.remove p

let suite =
  [
    Alcotest.test_case "descriptor print/parse round-trip" `Quick test_descriptor_roundtrip;
    Alcotest.test_case "descriptor parse errors" `Quick test_descriptor_parse_errors;
    Alcotest.test_case "sample respects kind list" `Quick test_sample_respects_kinds;
    Alcotest.test_case "run is deterministic" `Quick test_run_deterministic;
    Alcotest.test_case "zoo: all mutants detected in budget" `Quick test_zoo_all_detected;
    Alcotest.test_case "zoo: shrunk reproducers still violate" `Quick
      test_zoo_shrunk_reproducers_violate;
    Alcotest.test_case "shrink never grows a descriptor" `Quick test_shrink_never_grows;
    Alcotest.test_case "corpus load/save round-trip" `Quick test_corpus_roundtrip;
    Alcotest.test_case "corpus load errors" `Quick test_corpus_load_errors;
    Alcotest.test_case "campaign re-run byte-identical" `Quick
      test_campaign_byte_identical_rerun;
    Alcotest.test_case "campaign resume byte-identical" `Quick
      test_campaign_resume_byte_identical;
    Alcotest.test_case "campaign stamp mismatch rejected" `Quick
      test_campaign_stamp_mismatch_rejected;
    Alcotest.test_case "campaign clean on sound algorithms" `Quick
      test_campaign_sound_algorithms_clean;
    Alcotest.test_case "campaign finds and shrinks zoo kind" `Quick
      test_campaign_finds_and_shrinks_zoo_kind;
    Alcotest.test_case "campaign honours should_stop" `Quick test_campaign_should_stop;
  ]
