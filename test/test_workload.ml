(* Tests for the workload generators: the paper's preconditions must hold
   by construction (distinct written values, never old = new, one T&S per
   process), and the trial machinery must be reproducible. *)

open Machine

let test_register_values_distinct () =
  let rng = Schedule.Prng.create 5 in
  let sim = Sim.create ~nprocs:3 () in
  let inst = Objects.Rw_obj.make sim ~name:"R" in
  let values =
    List.concat_map
      (fun pid ->
        List.filter_map
          (fun (_, op, spec) ->
            match op, spec with
            | "WRITE", Sim.Args a -> Some a.(0)
            | _ -> None)
          (Workload.Opgen.register_ops ~rng ~pid ~count:20 ~write_ratio:1.0 inst))
      [ 0; 1; 2 ]
  in
  Alcotest.(check int) "all written values distinct" (List.length values)
    (List.length (List.sort_uniq Nvm.Value.compare values))

let test_tagged_distinct_across_procs () =
  let a = Workload.Opgen.tagged 0 1 in
  let b = Workload.Opgen.tagged 1 1 in
  let c = Workload.Opgen.tagged 0 2 in
  Alcotest.(check bool) "pid distinguishes" false (Nvm.Value.equal a b);
  Alcotest.(check bool) "seq distinguishes" false (Nvm.Value.equal a c)

let test_cas_ops_never_old_eq_new () =
  (* the CAS generator computes old at invocation from the current cell;
     new is a fresh tagged value, so old = new would require the tag to
     already be installed — run a batch and confirm via the recorded
     arguments *)
  let scen = Workload.Scenarios.cas ~nprocs:3 ~ops:8 () in
  let sim, _ = Workload.Trial.run ~seed:3 ~crash_prob:0.05 scen in
  List.iter
    (fun s ->
      match s with
      | History.Step.Inv { opref = { History.Step.op = "CAS"; _ }; args; _ } ->
        Alcotest.(check bool) "old <> new" false (Nvm.Value.equal args.(0) args.(1))
      | _ -> ())
    (History.to_list (Machine.Sim.history sim))

let test_tas_once_per_proc () =
  let scen = Workload.Scenarios.tas ~nprocs:4 () in
  let sim, _ = Workload.Trial.run ~seed:1 ~crash_prob:0.0 scen in
  List.iter
    (fun p ->
      let invocations =
        List.length
          (List.filter
             (function
               | History.Step.Inv { pid; opref = { History.Step.op = "T&S"; _ }; _ } ->
                 pid = p
               | _ -> false)
             (History.to_list (Machine.Sim.history sim)))
      in
      Alcotest.(check int) (Printf.sprintf "p%d invokes T&S once" p) 1 invocations)
    [ 0; 1; 2; 3 ]

let test_batch_reproducible () =
  let scen = Workload.Scenarios.counter ~nprocs:2 ~ops:3 () in
  let s1 = Workload.Trial.batch ~crash_prob:0.1 ~trials:20 scen in
  let s2 = Workload.Trial.batch ~crash_prob:0.1 ~trials:20 scen in
  Alcotest.(check bool) "same summary" true (s1 = s2)

let test_batch_seed_sensitivity () =
  (* different base seeds must change the executions (crash counts) *)
  let scen = Workload.Scenarios.register ~nprocs:3 ~ops:6 () in
  let s1 = Workload.Trial.batch ~base_seed:1 ~crash_prob:0.1 ~trials:20 scen in
  let s2 = Workload.Trial.batch ~base_seed:1000 ~crash_prob:0.1 ~trials:20 scen in
  Alcotest.(check bool) "different crash totals" true
    (s1.Workload.Trial.total_crashes <> s2.Workload.Trial.total_crashes)

let test_spec_for_threads_init () =
  let sim = Sim.create ~nprocs:2 () in
  let inst = Objects.Rw_obj.make ~init:(Nvm.Value.Int 42) sim ~name:"R" in
  match Workload.Check.spec_for sim inst.Machine.Objdef.id with
  | Some spec -> (
    let st = spec.Linearize.Spec.initial ~nprocs:2 in
    match st.Linearize.Spec.apply ~pid:0 ~op:"READ" ~args:[||] with
    | [ (v, _) ] ->
      Alcotest.(check bool) "initial value threaded" true (Nvm.Value.equal v (Int 42))
    | _ -> Alcotest.fail "unexpected spec outcomes")
  | None -> Alcotest.fail "no spec for register"

let test_spec_for_unknown_otype () =
  let sim = Sim.create ~nprocs:1 () in
  let inst =
    Machine.Objdef.register (Sim.registry sim) ~otype:"mystery" ~name:"X" []
  in
  Alcotest.(check bool) "no spec for unknown type" true
    (Workload.Check.spec_for sim inst.Machine.Objdef.id = None)

(* property: generated register workloads keep per-process sequence
   numbers strictly increasing *)
let prop_register_seq_monotone =
  QCheck2.Test.make ~name:"register workload: per-process tags strictly increase" ~count:50
    (QCheck2.Gen.int_range 1 10_000) (fun seed ->
      let rng = Schedule.Prng.create seed in
      let sim = Sim.create ~nprocs:1 () in
      let inst = Objects.Rw_obj.make sim ~name:"R" in
      let ops = Workload.Opgen.register_ops ~rng ~pid:0 ~count:15 ~write_ratio:1.0 inst in
      let seqs =
        List.filter_map
          (fun (_, _, spec) ->
            match spec with
            | Sim.Args [| Nvm.Value.Pair (_, Nvm.Value.Int s) |] -> Some s
            | _ -> None)
          ops
      in
      let rec increasing = function
        | a :: (b :: _ as tl) -> a < b && increasing tl
        | _ -> true
      in
      increasing seqs)

(* {2 1000-seed generator invariants}

   The paper's algorithms assume their workloads respect three
   preconditions (Section 2 assumptions restated at each algorithm):
   written values are globally distinct, CAS never uses [old = new], and
   T&S is invoked at most once per process.  The generators must deliver
   them for {e every} seed, not just the ones unit tests happen to use. *)

let prop_register_values_globally_distinct =
  QCheck2.Test.make ~name:"register workload: values distinct across processes (1k seeds)"
    ~count:1000
    (QCheck2.Gen.int_range 1 1_000_000)
    (fun seed ->
      let rng = Schedule.Prng.create seed in
      let sim = Sim.create ~nprocs:4 () in
      let inst = Objects.Rw_obj.make sim ~name:"R" in
      let values =
        List.concat_map
          (fun pid ->
            List.filter_map
              (fun (_, op, spec) ->
                match op, spec with "WRITE", Sim.Args a -> Some a.(0) | _ -> None)
              (Workload.Opgen.register_ops ~rng ~pid ~count:8 ~write_ratio:0.7 inst))
          [ 0; 1; 2; 3 ]
      in
      List.length values = List.length (List.sort_uniq Nvm.Value.compare values))

let prop_cas_never_old_eq_new =
  (* the [old] argument is computed at invocation time, so the property
     must be checked on executed histories — crashes included *)
  QCheck2.Test.make ~name:"cas workload: old <> new on executed histories (1k seeds)"
    ~count:1000
    (QCheck2.Gen.int_range 1 1_000_000)
    (fun seed ->
      let scen = Workload.Scenarios.cas ~nprocs:2 ~ops:4 ~rng_seed:seed () in
      let sim, _ = Workload.Trial.run ~max_steps:2_000 ~seed ~crash_prob:0.05 scen in
      List.for_all
        (function
          | History.Step.Inv { opref = { History.Step.op = "CAS"; _ }; args; _ } ->
            not (Nvm.Value.equal args.(0) args.(1))
          | _ -> true)
        (History.to_list (Machine.Sim.history sim)))

let prop_tas_exactly_once_per_proc =
  QCheck2.Test.make ~name:"tas workload: exactly one T&S per process (1k seeds)"
    ~count:1000
    QCheck2.Gen.(pair (int_range 1 1_000_000) (int_range 2 5))
    (fun (seed, nprocs) ->
      let scen = Workload.Scenarios.tas ~nprocs () in
      let sim, _ = Workload.Trial.run ~seed ~crash_prob:0.1 ~max_crashes:4 scen in
      let h = History.to_list (Machine.Sim.history sim) in
      List.for_all
        (fun p ->
          1
          = List.length
              (List.filter
                 (function
                   | History.Step.Inv { pid; opref = { History.Step.op = "T&S"; _ }; _ } ->
                     pid = p
                   | _ -> false)
                 h))
        (List.init nprocs Fun.id))

let suite =
  [
    Alcotest.test_case "register workload: distinct values" `Quick test_register_values_distinct;
    Alcotest.test_case "tagged values distinct" `Quick test_tagged_distinct_across_procs;
    Alcotest.test_case "cas workload: old <> new" `Quick test_cas_ops_never_old_eq_new;
    Alcotest.test_case "tas workload: once per process" `Quick test_tas_once_per_proc;
    Alcotest.test_case "batch reproducible" `Quick test_batch_reproducible;
    Alcotest.test_case "batch seed sensitivity" `Quick test_batch_seed_sensitivity;
    Alcotest.test_case "spec_for threads initial values" `Quick test_spec_for_threads_init;
    Alcotest.test_case "spec_for unknown otype" `Quick test_spec_for_unknown_otype;
    QCheck_alcotest.to_alcotest prop_register_seq_monotone;
    QCheck_alcotest.to_alcotest prop_register_values_globally_distinct;
    QCheck_alcotest.to_alcotest prop_cas_never_old_eq_new;
    QCheck_alcotest.to_alcotest prop_tas_exactly_once_per_proc;
  ]
