(* Tests for the recoverable stack (Treiber over strict CAS): LIFO
   behaviour, crash drills at every position of PUSH and POP (including
   the empty-POP path and the completion boundary), torture, and
   conservation of elements. *)

open Machine

let value = Alcotest.testable Nvm.Value.pp Nvm.Value.equal

let nrl_ok sim =
  match Workload.Check.nrl_violation sim with
  | None -> ()
  | Some reason ->
    Fmt.epr "history:@.%a@." History.pp (Sim.history sim);
    Alcotest.failf "NRL violation: %s" reason

let run_rr sim =
  match Schedule.run sim (Schedule.round_robin ()) with
  | Schedule.Completed -> ()
  | _ -> Alcotest.fail "execution did not complete"

let test_lifo () =
  let sim = Sim.create ~nprocs:1 () in
  let inst = Objects.Stack_obj.make sim ~name:"S" in
  Sim.set_script sim 0
    [
      (inst, "POP", Sim.Args [||]);
      (inst, "PUSH", Sim.Args [| Nvm.Value.Int 1 |]);
      (inst, "PUSH", Sim.Args [| Nvm.Value.Int 2 |]);
      (inst, "PEEK", Sim.Args [||]);
      (inst, "POP", Sim.Args [||]);
      (inst, "POP", Sim.Args [||]);
      (inst, "POP", Sim.Args [||]);
    ];
  run_rr sim;
  nrl_ok sim;
  let rets = List.map snd (Sim.results sim 0) in
  Alcotest.(check (list value)) "LIFO order"
    [ Objects.Stack_obj.empty; Nvm.Value.ack; Nvm.Value.ack; Int 2; Int 2; Int 1;
      Objects.Stack_obj.empty ]
    rets

let test_crash_every_position () =
  (* a PUSH and a POP, crash after k steps for all k; the sequence of
     responses must stay legal (checked by NRL) and POP must return the
     pushed value *)
  for k = 1 to 50 do
    let sim = Sim.create ~seed:(900 + k) ~nprocs:1 () in
    let inst = Objects.Stack_obj.make sim ~name:"S" in
    Sim.set_script sim 0
      [
        (inst, "PUSH", Sim.Args [| Nvm.Value.Int 7 |]);
        (inst, "POP", Sim.Args [||]);
        (inst, "POP", Sim.Args [||]);
      ];
    (try
       for _ = 1 to k do
         Sim.step sim 0
       done;
       if (Sim.proc sim 0).Sim.stack <> [] then begin
         Sim.crash sim 0;
         Sim.recover sim 0
       end
     with Invalid_argument _ -> ());
    run_rr sim;
    nrl_ok sim;
    match List.map snd (Sim.results sim 0) with
    | [ a; p1; p2 ] ->
      Alcotest.check value (Printf.sprintf "push ack (crash@%d)" k) Nvm.Value.ack a;
      Alcotest.check value (Printf.sprintf "pop value (crash@%d)" k) (Int 7) p1;
      Alcotest.check value (Printf.sprintf "second pop empty (crash@%d)" k)
        Objects.Stack_obj.empty p2
    | _ -> Alcotest.fail "unexpected results"
  done

let test_torture () =
  let scen = Workload.Scenarios.stack ~nprocs:3 ~ops:5 () in
  let s = Workload.Trial.batch ~crash_prob:0.06 ~max_crashes:6 ~trials:120 scen in
  Alcotest.(check int) "all pass NRL" s.Workload.Trial.trials s.Workload.Trial.passed;
  Alcotest.(check bool) "crashes exercised" true (s.Workload.Trial.total_crashes > 50)

(* conservation: pushes minus successful pops = final stack depth *)
let prop_conservation =
  QCheck2.Test.make ~name:"stack: pushes - pops = final depth" ~count:30
    (QCheck2.Gen.int_range 1 100_000) (fun seed ->
      let nprocs = 2 in
      let sim = Sim.create ~seed ~nprocs () in
      let inst = Objects.Stack_obj.make sim ~name:"S" in
      for p = 0 to nprocs - 1 do
        Sim.set_script sim p
          [
            (inst, "PUSH", Sim.Args [| Workload.Opgen.tagged p 1 |]);
            (inst, "PUSH", Sim.Args [| Workload.Opgen.tagged p 2 |]);
            (inst, "POP", Sim.Args [||]);
          ]
      done;
      let policy = Schedule.random ~crash_prob:0.08 ~max_crashes:5 ~seed:(seed * 3 + 11) () in
      let nonempty_pops () =
        List.length
          (List.concat_map
             (fun p ->
               List.filter
                 (fun (op, v) ->
                   op = "POP" && not (Nvm.Value.equal v Objects.Stack_obj.empty))
                 (Sim.results sim p))
             (List.init nprocs Fun.id))
      in
      match Schedule.run ~max_steps:200_000 sim policy with
      | Schedule.Completed -> (
        (* drain the stack; afterwards every pushed element must have been
           popped exactly once across the whole run *)
        Sim.append_script sim 0
          (List.init ((nprocs * 2) + 1) (fun _ -> (inst, "POP", Sim.Args [||])));
        match Schedule.run sim (Schedule.round_robin ()) with
        | Schedule.Completed -> nonempty_pops () = nprocs * 2
        | _ -> false)
      | _ -> QCheck2.assume_fail ())

(* exhaustive verification, kept tractable (each stack op nests a READ
   and a CAS, and contention adds retry rounds, so the full 2-proc
   multi-op crash space is astronomically large): (a) two processes, one
   PUSH each, crash-free — all interleavings including the retry round of
   the loser; (b) one process, PUSH then POP, up to two adversarially
   placed crashes. *)
let test_exhaustive () =
  let build ~crash () =
    let sim = Sim.create ~nprocs:(if crash then 1 else 2) () in
    let inst = Objects.Stack_obj.make sim ~name:"S" in
    if crash then
      Sim.set_script sim 0
        [ (inst, "PUSH", Sim.Args [| Nvm.Value.Int 1 |]); (inst, "POP", Sim.Args [||]) ]
    else begin
      Sim.set_script sim 0 [ (inst, "PUSH", Sim.Args [| Nvm.Value.Int 1 |]) ];
      Sim.set_script sim 1 [ (inst, "PUSH", Sim.Args [| Nvm.Value.Int 2 |]) ]
    end;
    sim
  in
  let check_run ~crash cfg =
    let viol, stats =
      Explore.find_violation ~cfg ~check:Workload.Check.nrl_violation (build ~crash ())
    in
    (match viol with
    | Some (sim, reason) ->
      Fmt.epr "violating history:@.%a@." History.pp (Sim.history sim);
      Alcotest.failf "stack violated NRL: %s" reason
    | None -> ());
    Alcotest.(check int) "nothing truncated" 0 stats.Explore.truncated
  in
  check_run ~crash:false
    { Explore.default_config with max_steps = 160; max_crashes = 0; crash_procs = [] };
  check_run ~crash:true
    { Explore.default_config with max_steps = 160; max_crashes = 2; crash_procs = [ 0 ] }

let suite =
  [
    Alcotest.test_case "stack: LIFO" `Quick test_lifo;
    Alcotest.test_case "stack: crash at every position" `Quick test_crash_every_position;
    Alcotest.test_case "stack: randomized torture" `Slow test_torture;
    Alcotest.test_case "stack: exhaustive slices" `Slow test_exhaustive;
    QCheck_alcotest.to_alcotest prop_conservation;
  ]
