(* Multi-domain correctness smoke for the native runtime: aggregate
   invariants raced on real domains through {!Runtime.Par}.  These are
   not linearizability checks (the simulator's exhaustive exploration
   owns those) — they are the cheap algebraic facts that any lost or
   duplicated effect would break: a CAS chain advances by exactly its
   success count, a counter totals the per-domain increments, FAA
   conserves its deltas, and a one-shot T&S elects exactly one winner.

   Skipped gracefully on single-core hosts: the invariants hold
   trivially without parallelism, so running them there would only
   dilute the suite. *)

open Runtime

let domains_available = Domain.recommended_domain_count ()
let racers = min 4 domains_available
let skip_if_single () = if domains_available < 2 then Alcotest.skip ()

(* every domain CASes the current value to its successor; successes
   counted per domain.  The cell advances by one per success and only
   from its current value, so final value = total successes — any
   duplicated or phantom success breaks the equality. *)
let test_cas_one_winner_per_generation () =
  skip_if_single ();
  let c = Rcas.Int.create ~nprocs:racers 0 in
  let iters = 2_000 in
  let wins = Pad.flat_make racers 0 in
  ignore
    (Par.run ~domains:racers ~iters (fun ~pid ~i:_ ->
         let v = Rcas.Int.read c in
         if Rcas.Int.cas c ~pid ~old:v ~new_:(v + 1) then
           wins.(Pad.slot pid) <- wins.(Pad.slot pid) + 1));
  let total = ref 0 in
  for p = 0 to racers - 1 do
    total := !total + wins.(Pad.slot p)
  done;
  Alcotest.(check bool) "somebody won" true (!total > 0);
  Alcotest.(check int) "final value = total successful CASes" !total (Rcas.Int.read c)

let test_counter_conservation () =
  skip_if_single ();
  let t = Rcounter.Int.create ~nprocs:racers in
  let iters = 5_000 in
  ignore (Par.run ~domains:racers ~iters (fun ~pid ~i:_ -> Rcounter.Int.inc t ~pid));
  Alcotest.(check int) "total = sum of per-domain incs" (racers * iters)
    (Rcounter.Int.read t ~pid:0)

let test_tas_one_winner () =
  skip_if_single ();
  let t = Rtas.create ~nprocs:racers in
  let rets = Pad.flat_make racers (-1) in
  ignore
    (Par.run ~domains:racers ~iters:1 (fun ~pid ~i:_ ->
         rets.(Pad.slot pid) <- Rtas.test_and_set t ~pid));
  let winners = ref 0 in
  for p = 0 to racers - 1 do
    let r = rets.(Pad.slot p) in
    Alcotest.(check bool) (Printf.sprintf "p%d response well-formed" p) true
      (r = 0 || r = 1);
    if r = 0 then incr winners
  done;
  Alcotest.(check int) "exactly one winner" 1 !winners;
  (* the fused tas word must announce the same winner the responses do *)
  let announced = ref (-1) in
  for p = 0 to racers - 1 do
    if rets.(Pad.slot p) = 0 then announced := p
  done;
  Alcotest.(check int) "winner persisted in the object" 0
    (Rtas.response t ~pid:!announced)

(* FAA conservation under a randomized per-domain op count: the final
   value must equal iters * sum of the per-domain deltas *)
let prop_faa_conservation =
  QCheck2.Test.make ~name:"native faa: final value = sum of deltas" ~count:5
    (QCheck2.Gen.int_range 50 2_000) (fun iters ->
      if domains_available < 2 then true
      else begin
        let f = Rfaa.Int.create ~nprocs:racers () in
        ignore
          (Par.run ~domains:racers ~iters (fun ~pid ~i:_ ->
               ignore (Rfaa.Int.faa f ~pid (pid + 1))));
        Rfaa.Int.read f = iters * (racers * (racers + 1) / 2)
      end)

let suite =
  [
    Alcotest.test_case "cas: value advances once per success" `Slow
      test_cas_one_winner_per_generation;
    Alcotest.test_case "counter: total = sum of incs" `Slow test_counter_conservation;
    Alcotest.test_case "t&s: exactly one winner" `Slow test_tas_one_winner;
    QCheck_alcotest.to_alcotest prop_faa_conservation;
  ]
