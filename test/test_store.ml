(* The shared visited store and the process-symmetry quotient: the two
   halves of the deduplication layer the work-stealing engine hangs off
   Fingerprint.  The store must be linearizable under concurrent
   insertion (a lost or doubled "fresh" answer corrupts node counts and
   can prune unexplored states); the quotient must never change a
   verdict — pinned here against unquotiented ground truth on every
   bug-zoo mutant, the scenarios explicitly built to be caught. *)

module F = Machine.Fingerprint
module Sim = Machine.Sim
module Explore = Machine.Explore

(* Distinct fingerprints on demand: one configuration, distinct opaque
   path context (the [extra] the explorer uses for the crash budget). *)
let make_fps n =
  let sim = Sim.create ~nprocs:2 () in
  Array.init n (fun i -> F.of_sim ~extra:i sim)

(* {1 The store} *)

let test_fresh_exactly_once () =
  let store = F.Store.create () in
  let fps = make_fps 500 in
  Array.iter (fun fp -> Alcotest.(check bool) "first insert fresh" true (F.Store.add store fp)) fps;
  Array.iter
    (fun fp -> Alcotest.(check bool) "re-insert not fresh" false (F.Store.add store fp))
    fps;
  Alcotest.(check int) "cardinal" 500 (F.Store.cardinal store)

let test_shard_rounding () =
  Alcotest.(check int) "shard count rounds up to a power of two" 8
    (F.Store.shards (F.Store.create ~shards:5 ()))

(* Concurrent insertion is linearizable: across racing domains every
   distinct fingerprint is reported fresh exactly once, none is lost.
   Domains insert overlapping random samples so the CAS paths race on
   purpose; the per-domain fresh counts must sum to the union size. *)
let prop_concurrent_inserts =
  QCheck2.Test.make ~name:"store: concurrent inserts lose and double nothing" ~count:8
    (QCheck2.Gen.int_range 1 1_000_000) (fun seed ->
      let n = 2_000 and domains = 4 in
      let fps = make_fps n in
      let rng = Random.State.make [| seed |] in
      (* sample before spawning: Random.State is not domain-safe *)
      let picks =
        Array.init domains (fun _ ->
            Array.of_list
              (List.filter
                 (fun _ -> Random.State.float rng 1.0 < 0.6)
                 (List.init n Fun.id)))
      in
      let union = Array.make n false in
      Array.iter (Array.iter (fun i -> union.(i) <- true)) picks;
      let distinct = Array.fold_left (fun a b -> if b then a + 1 else a) 0 union in
      (* few shards on purpose: more CAS collisions per slot *)
      let store = F.Store.create ~shards:4 () in
      let workers =
        Array.map
          (fun pick ->
            Domain.spawn (fun () ->
                Array.fold_left
                  (fun fresh i -> if F.Store.add store fps.(i) then fresh + 1 else fresh)
                  0 pick))
          picks
      in
      let fresh_total = Array.fold_left (fun a d -> a + Domain.join d) 0 workers in
      fresh_total = distinct && F.Store.cardinal store = distinct)

let test_shard_distribution () =
  let store = F.Store.create ~shards:64 () in
  let n = 4_096 in
  Array.iter (fun fp -> ignore (F.Store.add store fp)) (make_fps n);
  let sizes = F.Store.shard_sizes store in
  Alcotest.(check int) "shard sizes sum to cardinal" n (Array.fold_left ( + ) 0 sizes);
  let mean = n / Array.length sizes in
  Array.iteri
    (fun i sz ->
      if sz > 4 * mean then
        Alcotest.failf "shard %d holds %d inserts (mean %d): hash is not spreading" i sz mean)
    sizes

(* {1 Symmetry soundness on the bug zoo} *)

(* Symmetric workloads per base algorithm: every process runs the same
   script up to own-pid renaming ([Opgen.tagged p] carries [Pid p], which
   the detector erases), so the quotient is active wherever the object's
   declaration allows it. *)
let symmetric_script algo (inst : Machine.Objdef.instance) p =
  match algo with
  | "register" ->
    [
      (inst, "WRITE", Sim.Args [| Workload.Opgen.tagged p 0 |]);
      (inst, "READ", Sim.Args [||]);
    ]
  | "cas" ->
    [ (inst, "CAS", Sim.Args [| Nvm.Value.Null; Workload.Opgen.tagged p 0 |]) ]
  | "tas" -> [ (inst, "T&S", Sim.Args [||]) ]
  | "counter" -> [ (inst, "INC", Sim.Args [||]); (inst, "READ", Sim.Args [||]) ]
  | _ -> assert false

let build_mutant m ~nprocs =
  let sim = Sim.create ~nprocs () in
  let inst, _ = Objects.Zoo.make m sim ~name:"Z" in
  for p = 0 to nprocs - 1 do
    Sim.set_script sim p (symmetric_script m.Objects.Zoo.m_algo inst p)
  done;
  sim

let verdict ~cfg ~symmetry sim =
  let viol, stats =
    Explore.find_violation ~cfg ~dedup:true ~symmetry
      ~check_mode:(`Incremental (Workload.Check.nrl_incremental ()))
      ~check:Workload.Check.nrl_violation sim
  in
  (Option.is_some viol, stats)

(* Every mutant, crashes enabled: the canonical and uncanonical searches
   must agree on whether a violation exists.  The quotient is active for
   the Algorithm 1 mutants (recovery pid-oblivious); for the TAS/CAS
   mutants the detector must refuse (their recoveries scan pids in fixed
   order), which is itself part of the soundness contract. *)
let test_zoo_verdicts_pinned () =
  let nprocs = 2 in
  let cfg =
    {
      Explore.default_config with
      max_steps = 120;
      max_crashes = 1;
      crash_procs = List.init nprocs Fun.id;
    }
  in
  let caught = ref 0 in
  List.iter
    (fun m ->
      let name = m.Objects.Zoo.m_name in
      let active = Explore.symmetry_group cfg (build_mutant m ~nprocs) <> None in
      (match m.Objects.Zoo.m_algo with
      | "register" ->
        Alcotest.(check bool) (name ^ ": quotient active under crashes") true active
      | "tas" | "cas" ->
        Alcotest.(check bool)
          (name ^ ": detector refuses pid-ordered recovery under crashes")
          false active
      | _ -> ());
      let found_q, _ = verdict ~cfg ~symmetry:true (build_mutant m ~nprocs) in
      let found_g, _ = verdict ~cfg ~symmetry:false (build_mutant m ~nprocs) in
      if found_g then incr caught;
      Alcotest.(check bool) (name ^ ": quotiented verdict = ground truth") found_g found_q)
    Objects.Zoo.all;
  (* the pinning is only evidence if the exhaustive bound actually
     exposes bugs at this instance size *)
  Alcotest.(check bool) "some mutants are caught" true (!caught > 0)

(* Crash-free axis: recovery obliviousness is moot, so the quotient is
   active for every register/cas/tas mutant; the state-space shrinks and
   the clean verdict must survive. *)
let test_zoo_verdicts_pinned_crash_free () =
  let nprocs = 2 in
  let cfg = { Explore.default_config with max_steps = 120; max_crashes = 0 } in
  List.iter
    (fun m ->
      let name = m.Objects.Zoo.m_name in
      if m.Objects.Zoo.m_algo <> "counter" then
        Alcotest.(check bool)
          (name ^ ": quotient active crash-free")
          true
          (Explore.symmetry_group cfg (build_mutant m ~nprocs) <> None);
      let found_q, stats_q = verdict ~cfg ~symmetry:true (build_mutant m ~nprocs) in
      let found_g, stats_g = verdict ~cfg ~symmetry:false (build_mutant m ~nprocs) in
      Alcotest.(check bool) (name ^ ": crash-free verdicts agree") found_g found_q;
      if (not found_g) && m.Objects.Zoo.m_algo <> "counter" then
        Alcotest.(check bool)
          (name ^ ": quotient explored no more than ground truth")
          true
          (stats_q.Explore.nodes <= stats_g.Explore.nodes))
    Objects.Zoo.all

(* The canonical map itself: idempotent, orbit-minimal on the sound
   scenario whose quotient T8 measures. *)
let test_canonical_idempotent () =
  let nprocs = 3 in
  let sim = Sim.create ~nprocs () in
  let inst = Objects.Tas_obj.make sim ~name:"T" in
  for p = 0 to nprocs - 1 do
    Sim.set_script sim p (Workload.Opgen.tas_ops inst)
  done;
  let cfg = { Explore.default_config with max_crashes = 0 } in
  match Explore.symmetry_group cfg sim with
  | None -> Alcotest.fail "symmetric tas scenario not detected"
  | Some g ->
    Alcotest.(check int) "full symmetric group on 3 processes" 6 (F.Symmetry.degree g);
    let fp = F.of_sim sim in
    let c = F.Symmetry.canonical g fp in
    Alcotest.(check bool) "canonical is idempotent" true
      (F.equal c (F.Symmetry.canonical g c))

let suite =
  [
    Alcotest.test_case "fresh exactly once, cardinal exact" `Quick test_fresh_exactly_once;
    Alcotest.test_case "shard count rounds to a power of two" `Quick test_shard_rounding;
    QCheck_alcotest.to_alcotest prop_concurrent_inserts;
    Alcotest.test_case "shard distribution is sane" `Quick test_shard_distribution;
    Alcotest.test_case "zoo verdicts pinned, crashes enabled" `Slow test_zoo_verdicts_pinned;
    Alcotest.test_case "zoo verdicts pinned, crash-free" `Slow
      test_zoo_verdicts_pinned_crash_free;
    Alcotest.test_case "canonical map idempotent, full group" `Quick
      test_canonical_idempotent;
  ]
