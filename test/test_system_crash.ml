(* Full-system crash tests: every process fails at the same instant (the
   paper's individual-process model subsumes this as N simultaneous
   crashes); recovery proceeds process by process, and NRL must still
   hold for every algorithm. *)

open Machine

let value = Alcotest.testable Nvm.Value.pp Nvm.Value.equal

let nrl_ok sim =
  match Workload.Check.nrl_violation sim with
  | None -> ()
  | Some reason ->
    Fmt.epr "history:@.%a@." History.pp (Sim.history sim);
    Alcotest.failf "NRL violation: %s" reason

let run_rr sim =
  match Schedule.run sim (Schedule.round_robin ()) with
  | Schedule.Completed -> ()
  | _ -> Alcotest.fail "execution did not complete"

(* targeted: all three processes mid-operation on the counter, then the
   whole system goes down and comes back *)
let test_counter_full_system_crash () =
  let sim = Sim.create ~seed:13 ~nprocs:3 () in
  let inst = Objects.Counter_obj.make sim ~name:"CTR" in
  for p = 0 to 2 do
    Sim.set_script sim p [ (inst, "INC", Sim.Args [||]) ]
  done;
  (* advance each process to a different depth inside its INC *)
  Sim.step sim 0 (* INV *);
  Sim.step sim 1;
  Sim.step sim 1 (* inside the nested READ *);
  for _ = 1 to 6 do
    Sim.step sim 2 (* deep inside the nested WRITE *)
  done;
  (* lights out *)
  for p = 0 to 2 do
    Sim.crash sim p
  done;
  (* power back on: processes resurrect one by one *)
  for p = 0 to 2 do
    Sim.recover sim p
  done;
  Sim.append_script sim 0 [ (inst, "READ", Sim.Args [||]) ];
  run_rr sim;
  nrl_ok sim;
  match List.assoc_opt "READ" (Sim.results sim 0) with
  | Some v -> Alcotest.check value "all three INCs survive the blackout" (Int 3) v
  | None -> Alcotest.fail "READ missing"

(* randomized: every algorithm under repeated system-wide crashes *)
let test_system_crash_torture () =
  List.iter
    (fun scen ->
      let passed = ref 0 in
      let trials = 60 in
      for seed = 1 to trials do
        let sim = Sim.create ~seed ~nprocs:scen.Workload.Trial.nprocs () in
        scen.Workload.Trial.build sim;
        let policy =
          Schedule.random ~crash_prob:0.0 ~system_crash_prob:0.01 ~max_crashes:4
            ~seed:(seed * 101 + 7) ()
        in
        match Schedule.run ~max_steps:200_000 sim policy with
        | Schedule.Completed ->
          if Workload.Check.nrl_violation sim = None then incr passed
        | _ -> ()
      done;
      Alcotest.(check int)
        (scen.Workload.Trial.scen_name ^ " under system crashes")
        trials !passed)
    (Workload.Scenarios.all_paper ~nprocs:3 ()
    @ [
        Workload.Scenarios.elect ~nprocs:3 ();
        Workload.Scenarios.faa ~nprocs:3 ();
        Workload.Scenarios.stack ~nprocs:3 ();
        Workload.Scenarios.queue ~nprocs:3 ();
      ])

(* the history records one crash step per process, all adjacent *)
let test_system_crash_history_shape () =
  let sim = Sim.create ~seed:5 ~nprocs:2 () in
  let inst = Objects.Rw_obj.make sim ~name:"R" in
  for p = 0 to 1 do
    Sim.set_script sim p [ (inst, "WRITE", Sim.Args [| Workload.Opgen.tagged p 1 |]) ]
  done;
  Sim.step sim 0;
  Sim.step sim 1;
  Sim.crash sim 0;
  Sim.crash sim 1;
  let crash_pids =
    List.filter_map
      (function History.Step.Crash { pid; _ } -> Some pid | _ -> None)
      (History.to_list (Sim.history sim))
  in
  Alcotest.(check (list int)) "both crash steps recorded" [ 0; 1 ] crash_pids;
  Sim.recover sim 0;
  Sim.recover sim 1;
  run_rr sim;
  nrl_ok sim

let suite =
  [
    Alcotest.test_case "counter: full-system blackout" `Quick test_counter_full_system_crash;
    Alcotest.test_case "system-crash torture (all objects)" `Slow test_system_crash_torture;
    Alcotest.test_case "history shape" `Quick test_system_crash_history_shape;
  ]
