(* Tests for the exhaustive scheduler: enumeration counts on hand-sized
   instances, the partial-order reduction's consistency with the
   unreduced search, and crashed-forever terminals. *)

open Machine

let toy sim obj_name =
  let open Program in
  let cell = Nvm.Memory.alloc ~name:obj_name (Sim.mem sim) (Nvm.Value.Int 0) in
  let body =
    make ~name:"BUMP"
      [
        (2, Read ("v", at cell));
        (3, Write (at cell, add (local "v") (int 1)));
        (4, Ret (local "v"));
      ]
  in
  let recover = make ~name:"BUMP.RECOVER" [ (10, Resume 2) ] in
  Objdef.register (Sim.registry sim) ~otype:"toy" ~name:obj_name
    [ ("BUMP", { Objdef.op_name = "BUMP"; body; recover }) ]

let build_two () =
  let sim = Sim.create ~nprocs:2 () in
  let inst = toy sim "X" in
  for p = 0 to 1 do
    Sim.set_script sim p [ (inst, "BUMP", Sim.Args [||]) ]
  done;
  sim

let test_crash_free_enumeration_count () =
  (* with reduction, only the 2 shared accesses per process interleave:
     C(4,2) = 6 distinct complete schedules *)
  let cfg =
    { Explore.default_config with max_steps = 40; max_crashes = 0; crash_procs = [] }
  in
  let stats = Explore.dfs ~cfg ~on_terminal:(fun _ -> ()) (build_two ()) in
  Alcotest.(check int) "terminals" 6 stats.Explore.terminals;
  Alcotest.(check int) "no truncation" 0 stats.Explore.truncated

let test_unreduced_enumeration_larger () =
  let cfg =
    {
      Explore.default_config with
      max_steps = 40;
      max_crashes = 0;
      crash_procs = [];
      reduce_local = false;
    }
  in
  let stats = Explore.dfs ~cfg ~on_terminal:(fun _ -> ()) (build_two ()) in
  (* every interleaving of 4 steps per process (INV, read, write, ret):
     C(8,4) = 70 *)
  Alcotest.(check int) "unreduced terminals" 70 stats.Explore.terminals

let test_reduction_preserves_outcomes () =
  (* the set of (final cell value, per-process results) outcomes must be
     identical with and without reduction *)
  let outcomes cfg =
    let acc = ref [] in
    let _ =
      Explore.dfs ~cfg
        ~on_terminal:(fun sim ->
          let v = Nvm.Value.to_string (Nvm.Memory.peek (Sim.mem sim) 0) in
          let res =
            List.map (fun p -> List.map snd (Sim.results sim p)) [ 0; 1 ]
            |> List.map (List.map Nvm.Value.to_string)
          in
          acc := (v, res) :: !acc)
        (build_two ())
    in
    List.sort_uniq compare !acc
  in
  let reduced =
    outcomes { Explore.default_config with max_steps = 40; max_crashes = 0; crash_procs = [] }
  in
  let unreduced =
    outcomes
      {
        Explore.default_config with
        max_steps = 40;
        max_crashes = 0;
        crash_procs = [];
        reduce_local = false;
      }
  in
  Alcotest.(check (list (pair string (list (list string))))) "same outcome sets" unreduced reduced

let test_crash_branches_reachable () =
  (* with a crash budget, some terminal must contain a crash step *)
  let cfg =
    { Explore.default_config with max_steps = 60; max_crashes = 1; crash_procs = [ 0 ] }
  in
  let saw_crash = ref false in
  let stats =
    Explore.dfs ~cfg
      ~on_terminal:(fun sim ->
        if
          List.exists
            (function History.Step.Crash _ -> true | _ -> false)
            (History.to_list (Sim.history sim))
        then saw_crash := true)
      (build_two ())
  in
  Alcotest.(check bool) "crashes explored" true !saw_crash;
  Alcotest.(check bool) "more terminals than crash-free" true (stats.Explore.terminals > 6)

let test_crashed_forever_terminal () =
  (* a process that crashes and never recovers: the execution where the
     other finishes must still be counted as terminal *)
  let sim = build_two () in
  Sim.step sim 0 (* INV *);
  Sim.step sim 0 (* read *);
  Sim.crash sim 0;
  let cfg =
    { Explore.default_config with max_steps = 40; max_crashes = 0; crash_procs = [] }
  in
  let down_terminals = ref 0 in
  let _ =
    Explore.dfs ~cfg
      ~on_terminal:(fun s -> if Sim.status s 0 = Sim.Crashed then incr down_terminals)
      sim
  in
  Alcotest.(check bool) "crashed-forever terminals seen" true (!down_terminals > 0)

let test_find_violation_reports_toy () =
  (* the toy BUMP object is not linearizable as a counter under crashes
     (re-execution duplicates the increment), so with a "faa_register"-like
     spec a violation must be found; here we just check the plumbing by
     requiring that a violation-free predicate returns None *)
  let cfg =
    { Explore.default_config with max_steps = 40; max_crashes = 0; crash_procs = [] }
  in
  let v, _ = Explore.find_violation ~cfg ~check:(fun _ -> None) (build_two ()) in
  Alcotest.(check bool) "no violation when predicate never fires" true (v = None);
  let v, _ =
    Explore.find_violation ~cfg ~check:(fun _ -> Some "always") (build_two ())
  in
  Alcotest.(check bool) "first terminal reported" true (v <> None)

(* {2 The domain-parallel engine} *)

let stats_triple (s : Explore.stats) = (s.Explore.terminals, s.Explore.truncated, s.Explore.nodes)

let seed_scenario name ~nprocs ~ops =
  let build =
    match name with
    | "register" -> (Workload.Scenarios.register ~nprocs ~ops ()).Workload.Trial.build
    | "cas" -> (Workload.Scenarios.cas ~nprocs ~ops ()).Workload.Trial.build
    | "tas" -> (Workload.Scenarios.tas ~nprocs ()).Workload.Trial.build
    | "naive-rw-optimistic" ->
      (Workload.Scenarios.naive_rw ~strategy:`Optimistic ~nprocs ~ops ()).Workload.Trial.build
    | "naive-cas-reexec" ->
      (Workload.Scenarios.naive_cas ~strategy:`Reexecute ~nprocs ~ops ()).Workload.Trial.build
    | _ -> assert false
  in
  fun () ->
    let sim = Sim.create ~nprocs () in
    build sim;
    sim

let crashy_cfg = { Explore.default_config with max_steps = 100; max_crashes = 1; crash_procs = [ 0 ] }

let test_parallel_determinism () =
  (* jobs = 1..4 must report exactly the sequential statistics: every node
     is processed once by the same traversal code wherever the frontier
     splits the tree *)
  List.iter
    (fun (name, nprocs, ops) ->
      let build = seed_scenario name ~nprocs ~ops in
      let expected = stats_triple (Explore.dfs ~cfg:crashy_cfg ~on_terminal:ignore (build ())) in
      List.iter
        (fun jobs ->
          let got =
            stats_triple
              (Explore.dfs ~cfg:crashy_cfg ~jobs ~on_terminal:ignore (build ()))
          in
          Alcotest.(check (triple int int int))
            (Printf.sprintf "%s: jobs=%d = sequential" name jobs)
            expected got)
        [ 1; 2; 3; 4 ])
    [ ("register", 2, 2); ("cas", 2, 1) ]

let test_parallel_violation_verdict () =
  (* the verdict (violation exists or not) must not depend on the domain
     count; which counterexample is produced may *)
  List.iter
    (fun jobs ->
      let v, _ =
        Explore.find_violation ~cfg:crashy_cfg ~jobs ~check:Workload.Check.nrl_violation
          (seed_scenario "naive-rw-optimistic" ~nprocs:2 ~ops:2 ())
      in
      Alcotest.(check bool)
        (Printf.sprintf "naive baseline violation found with jobs=%d" jobs)
        true (v <> None);
      (match v with
      | Some (_, reason) ->
        Alcotest.(check bool) "reason mentions linearizability" true
          (String.length reason > 0)
      | None -> ());
      let v, stats =
        Explore.find_violation ~cfg:crashy_cfg ~jobs ~check:Workload.Check.nrl_violation
          (seed_scenario "register" ~nprocs:2 ~ops:1 ())
      in
      Alcotest.(check bool)
        (Printf.sprintf "paper register clean with jobs=%d" jobs)
        true
        (v = None && stats.Explore.terminals > 0))
    [ 1; 2; 4 ]

let test_parallel_on_terminal_abort () =
  (* a non-Found exception raised by on_terminal in a worker domain must
     surface in the caller (the abort-by-exception contract) *)
  let seen = Atomic.make 0 in
  let build = seed_scenario "register" ~nprocs:2 ~ops:1 in
  match
    Explore.dfs ~cfg:crashy_cfg ~jobs:2
      ~on_terminal:(fun _ -> if Atomic.fetch_and_add seen 1 >= 10 then Stdlib.Exit |> raise)
      (build ())
  with
  | _ -> Alcotest.fail "expected the callback's exception to propagate"
  | exception Stdlib.Exit -> ()

(* {2 State deduplication} *)

let test_dedup_prunes_and_preserves_clean_verdict () =
  let build = seed_scenario "register" ~nprocs:2 ~ops:2 in
  let full = Explore.dfs ~cfg:crashy_cfg ~on_terminal:ignore (build ()) in
  let deduped = Explore.dfs ~cfg:crashy_cfg ~dedup:true ~on_terminal:ignore (build ()) in
  Alcotest.(check bool) "prunes converging prefixes" true (deduped.Explore.dup > 0);
  Alcotest.(check bool) "explores strictly fewer nodes" true
    (deduped.Explore.nodes < full.Explore.nodes);
  Alcotest.(check int) "full sweep untouched by dedup accounting" 0 full.Explore.dup;
  let v, _ =
    Explore.find_violation ~cfg:crashy_cfg ~dedup:true ~check:Workload.Check.nrl_violation
      (build ())
  in
  Alcotest.(check bool) "paper register still clean under dedup" true (v = None)

let test_dedup_still_finds_state_visible_violation () =
  (* dedup under-approximates prefix histories but any violation it finds
     is real; the naive re-executing CAS corrupts the *state*, so its
     violation survives deduplication (at every jobs count) *)
  List.iter
    (fun jobs ->
      let v, _ =
        Explore.find_violation ~cfg:crashy_cfg ~jobs ~dedup:true
          ~check:Workload.Check.nrl_violation
          (seed_scenario "naive-cas-reexec" ~nprocs:2 ~ops:2 ())
      in
      Alcotest.(check bool)
        (Printf.sprintf "naive-cas-reexec violation survives dedup (jobs=%d)" jobs)
        true (v <> None))
    [ 1; 2 ]

(* {2 The jobs x dedup x trail matrix} *)

(* crash-free bound for the recoverable T&S: each of its single ops is
   dozens of machine instructions, so a crash budget makes the tree
   astronomically large; 40 steps complete every crash-free
   interleaving of two processes (truncated = 0, checked below) *)
let tas_free_cfg = { Explore.default_config with max_steps = 40; max_crashes = 0 }

let test_jobs_dedup_trail_matrix () =
  (* every statistic must be independent of the branching discipline
     (trail vs clone) and of the domain fan-out.  Deduplication changes
     the counts by design (pruned subtrees), so the pin is per dedup
     setting: all six jobs x trail combinations agree with the
     sequential clone engine.  Nothing may be truncated: with no depth
     cut-offs the deduplicated counts are a pure reachability fixpoint
     (each fingerprint processed exactly once, out-degrees a function of
     the configuration alone), hence independent of which worker won the
     race to a configuration *)
  List.iter
    (fun (name, nprocs, ops, cfg) ->
      let build = seed_scenario name ~nprocs ~ops in
      List.iter
        (fun dedup ->
          let expected =
            Explore.dfs ~cfg ~dedup ~trail:false ~on_terminal:ignore (build ())
          in
          Alcotest.(check int)
            (Printf.sprintf "%s dedup=%b: nothing truncated" name dedup)
            0 expected.Explore.truncated;
          List.iter
            (fun jobs ->
              List.iter
                (fun trail ->
                  let got =
                    Explore.dfs ~cfg ~jobs ~dedup ~trail ~on_terminal:ignore (build ())
                  in
                  Alcotest.(check (triple int int int))
                    (Printf.sprintf "%s: jobs=%d dedup=%b trail=%b" name jobs dedup trail)
                    (stats_triple expected) (stats_triple got);
                  Alcotest.(check int)
                    (Printf.sprintf "%s: dup count jobs=%d dedup=%b trail=%b" name jobs dedup
                       trail)
                    expected.Explore.dup got.Explore.dup)
                [ false; true ])
            [ 1; 2; 3 ])
        [ false; true ])
    [ ("register", 2, 1, crashy_cfg); ("tas", 2, 0, tas_free_cfg) ]

(* {2 Incremental checking} *)

let all_seed_scenarios =
  (* tas gets a tight depth bound: its single ops expand to dozens of
     machine instructions, and a crash budget at depth 100 is an
     astronomically large tree *)
  [
    ("register", 2, 1, crashy_cfg);
    ("cas", 2, 1, crashy_cfg);
    ("tas", 2, 0, { crashy_cfg with Explore.max_steps = 20 });
    ("naive-rw-optimistic", 2, 2, crashy_cfg);
    ("naive-cas-reexec", 2, 2, crashy_cfg);
  ]

let test_incremental_matches_terminal () =
  (* `Incremental threads Nrl.Incremental state down the path instead of
     re-checking each terminal from scratch; the verdict (violation
     exists or clean) and the complete-sweep statistics must coincide
     with `Terminal on every scenario, in both branching disciplines *)
  List.iter
    (fun (name, nprocs, ops, cfg) ->
      let build = seed_scenario name ~nprocs ~ops in
      let vt, st =
        Explore.find_violation ~cfg ~check_mode:`Terminal
          ~check:Workload.Check.nrl_violation (build ())
      in
      List.iter
        (fun trail ->
          let vi, si =
            Explore.find_violation ~cfg ~trail
              ~check_mode:(`Incremental (Workload.Check.nrl_incremental ()))
              ~check:Workload.Check.nrl_violation (build ())
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s: same verdict (trail=%b)" name trail)
            (vt <> None) (vi <> None);
          if vt = None then
            Alcotest.(check (triple int int int))
              (Printf.sprintf "%s: same clean-sweep stats (trail=%b)" name trail)
              (stats_triple st) (stats_triple si))
        [ true; false ])
    all_seed_scenarios

let test_incremental_counterexample_is_violating () =
  (* the machine captured by the incremental mode must itself fail the
     terminal checker: the two judges agree on the witness, not just on
     existence *)
  let v, _ =
    Explore.find_violation ~cfg:crashy_cfg
      ~check_mode:(`Incremental (Workload.Check.nrl_incremental ()))
      ~check:(fun _ -> None)
      (seed_scenario "naive-rw-optimistic" ~nprocs:2 ~ops:2 ())
  in
  match v with
  | None -> Alcotest.fail "expected the naive baseline to fail incrementally"
  | Some (sim, _) ->
    Alcotest.(check bool)
      "terminal checker rejects the captured machine" true
      (Workload.Check.nrl_violation sim <> None)

let test_on_step_hook_runs_per_decision () =
  (* on_step must fire once per applied decision: nodes = steps + 1 root
     (every non-root node is entered by exactly one decision; terminal
     extensions re-enter the same count) *)
  let build = seed_scenario "register" ~nprocs:2 ~ops:1 in
  let steps = ref 0 in
  let stats =
    Explore.dfs ~cfg:crashy_cfg ~on_step:(fun _ -> incr steps) ~on_terminal:ignore (build ())
  in
  Alcotest.(check bool) "hook fired" true (!steps > 0);
  Alcotest.(check bool)
    "at least one application per non-root node" true
    (!steps >= stats.Explore.nodes - 1)

let test_dedup_stats_deterministic () =
  let build = seed_scenario "register" ~nprocs:2 ~ops:2 in
  let a = Explore.dfs ~cfg:crashy_cfg ~dedup:true ~on_terminal:ignore (build ()) in
  let b = Explore.dfs ~cfg:crashy_cfg ~dedup:true ~on_terminal:ignore (build ()) in
  Alcotest.(check (triple int int int)) "repeatable" (stats_triple a) (stats_triple b);
  Alcotest.(check int) "repeatable dup count" a.Explore.dup b.Explore.dup

let suite =
  [
    Alcotest.test_case "reduced enumeration count" `Quick test_crash_free_enumeration_count;
    Alcotest.test_case "unreduced enumeration count" `Quick test_unreduced_enumeration_larger;
    Alcotest.test_case "reduction preserves outcomes" `Quick test_reduction_preserves_outcomes;
    Alcotest.test_case "crash branches reachable" `Quick test_crash_branches_reachable;
    Alcotest.test_case "crashed-forever terminals" `Quick test_crashed_forever_terminal;
    Alcotest.test_case "find_violation plumbing" `Quick test_find_violation_reports_toy;
    Alcotest.test_case "parallel: stats determinism jobs=1..4" `Quick test_parallel_determinism;
    Alcotest.test_case "parallel: violation verdict invariant" `Quick
      test_parallel_violation_verdict;
    Alcotest.test_case "parallel: on_terminal abort propagates" `Quick
      test_parallel_on_terminal_abort;
    Alcotest.test_case "dedup: prunes, clean verdict preserved" `Quick
      test_dedup_prunes_and_preserves_clean_verdict;
    Alcotest.test_case "dedup: state-visible violation survives" `Quick
      test_dedup_still_finds_state_visible_violation;
    Alcotest.test_case "dedup: deterministic statistics" `Quick test_dedup_stats_deterministic;
    Alcotest.test_case "matrix: jobs x dedup x trail" `Quick test_jobs_dedup_trail_matrix;
    Alcotest.test_case "incremental = terminal verdicts" `Quick test_incremental_matches_terminal;
    Alcotest.test_case "incremental counterexample violates" `Quick
      test_incremental_counterexample_is_violating;
    Alcotest.test_case "on_step hook" `Quick test_on_step_hook_runs_per_decision;
  ]
