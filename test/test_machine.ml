(* Tests for the crash-recovery machine: environments, programs, the step
   engine, crash/recovery semantics, LI tracking and cloning. *)

open Machine

let value = Alcotest.testable Nvm.Value.pp Nvm.Value.equal

(* {2 Env} *)

let test_env_basics () =
  let e = Env.create () in
  Env.set e "x" (Nvm.Value.Int 1);
  Alcotest.check value "get" (Int 1) (Env.get e "x");
  Alcotest.(check bool) "mem" true (Env.mem e "x");
  Alcotest.check_raises "unbound raises before scramble" (Env.Unbound_local "y") (fun () ->
      ignore (Env.get e "y"))

let test_env_scramble () =
  let e = Env.create () in
  Env.set e "x" (Nvm.Value.Int 1);
  Env.scramble e (Junk.create 3);
  (* after a crash, any lookup succeeds but yields arbitrary junk *)
  let _ = Env.get e "x" in
  let _ = Env.get e "never_bound" in
  Alcotest.(check bool) "scrambled env answers everything" true true

let test_env_copy_isolated () =
  let e = Env.create () in
  Env.set e "x" (Nvm.Value.Int 1);
  let e2 = Env.copy e in
  Env.set e2 "x" (Nvm.Value.Int 2);
  Alcotest.check value "original unchanged" (Int 1) (Env.get e "x")

let test_junk_copy () =
  let j = Junk.create 5 in
  ignore (Junk.next j);
  let j2 = Junk.copy j in
  Alcotest.check value "copied stream continues identically" (Junk.next j) (Junk.next j2)

(* {2 Program} *)

let test_program_lines () =
  let open Program in
  let p =
    make ~name:"t" [ (2, Assign ("x", int 1)); (3, Jump 5); (5, Ret (local "x")) ]
  in
  Alcotest.(check int) "length" 3 (length p);
  Alcotest.(check int) "pc_of_line 5" 2 (pc_of_line p 5);
  Alcotest.(check int) "line_of_pc 1" 3 (line_of_pc p 1);
  Alcotest.check_raises "duplicate lines rejected"
    (Invalid_argument "Program.make(d): duplicate line number 2") (fun () ->
      ignore (make ~name:"d" [ (2, Jump 2); (2, Jump 2) ]))

(* {2 A tiny recoverable object for machine-level tests: a write-once cell
   with a deliberately trivial recovery that re-executes. } *)

let toy_obj sim =
  let open Program in
  let mem = Sim.mem sim in
  let cell = Nvm.Memory.alloc ~name:"toy" mem Nvm.Value.Null in
  let body =
    make ~name:"SET"
      [ (2, Assign ("v", arg 0)); (3, Write (at cell, local "v")); (4, Ret (local "v")) ]
  in
  let recover = make ~name:"SET.RECOVER" [ (10, Resume 2) ] in
  let get_body = make ~name:"GET" [ (2, Read ("v", at cell)); (3, Ret (local "v")) ] in
  let get_rec = make ~name:"GET.RECOVER" [ (10, Resume 2) ] in
  ( Objdef.register (Sim.registry sim) ~otype:"toy" ~name:"toy"
      [
        ("SET", { Objdef.op_name = "SET"; body; recover });
        ("GET", { Objdef.op_name = "GET"; body = get_body; recover = get_rec });
      ],
    cell )

let test_step_runs_op () =
  let sim = Sim.create ~nprocs:1 () in
  let inst, cell = toy_obj sim in
  Sim.set_script sim 0 [ (inst, "SET", Sim.Args [| Nvm.Value.Int 9 |]) ];
  let out = Schedule.run sim (Schedule.round_robin ()) in
  Alcotest.(check bool) "completed" true (out = Schedule.Completed);
  Alcotest.check value "cell written" (Int 9) (Nvm.Memory.peek (Sim.mem sim) cell);
  (match Sim.results sim 0 with
  | [ ("SET", v) ] -> Alcotest.check value "result" (Int 9) v
  | _ -> Alcotest.fail "expected one result");
  let h = Sim.history sim in
  Alcotest.(check int) "history: inv + res" 2 (History.length h)

let test_crash_scrambles_and_recovers () =
  let sim = Sim.create ~seed:11 ~nprocs:1 () in
  let inst, cell = toy_obj sim in
  Sim.set_script sim 0 [ (inst, "SET", Sim.Args [| Nvm.Value.Int 5 |]) ];
  (* start the op, execute the Assign, crash before the Write *)
  Sim.step sim 0;
  (* INV *)
  Sim.step sim 0;
  (* Assign *)
  Sim.crash sim 0;
  Alcotest.(check bool) "crashed" true (Sim.status sim 0 = Sim.Crashed);
  Alcotest.check value "cell still null after crash" Null (Nvm.Memory.peek (Sim.mem sim) cell);
  Sim.recover sim 0;
  let out = Schedule.run sim (Schedule.round_robin ()) in
  Alcotest.(check bool) "completed after recovery" true (out = Schedule.Completed);
  Alcotest.check value "write re-executed" (Int 5) (Nvm.Memory.peek (Sim.mem sim) cell);
  let h = Sim.history sim in
  let kinds =
    List.map
      (function
        | History.Step.Inv _ -> "inv"
        | History.Step.Res _ -> "res"
        | History.Step.Crash _ -> "crash"
        | History.Step.Rec _ -> "rec")
      (History.to_list h)
  in
  Alcotest.(check (list string)) "history shape" [ "inv"; "crash"; "rec"; "res" ] kinds

let test_crash_with_no_pending_op () =
  let sim = Sim.create ~nprocs:1 () in
  let inst, _ = toy_obj sim in
  Sim.set_script sim 0 [ (inst, "SET", Sim.Args [| Nvm.Value.Int 1 |]) ];
  Sim.crash sim 0;
  (match History.to_list (Sim.history sim) with
  | [ History.Step.Crash { crashed = None; _ } ] -> ()
  | _ -> Alcotest.fail "expected idle crash step");
  Sim.recover sim 0;
  let out = Schedule.run sim (Schedule.round_robin ()) in
  Alcotest.(check bool) "script completes after idle crash" true (out = Schedule.Completed)

let test_li_tracks_last_started_line () =
  let sim = Sim.create ~nprocs:1 () in
  let inst, _ = toy_obj sim in
  Sim.set_script sim 0 [ (inst, "SET", Sim.Args [| Nvm.Value.Int 1 |]) ];
  Sim.step sim 0 (* INV *);
  let f = List.hd (Sim.proc sim 0).Sim.stack in
  Alcotest.(check int) "li before any instruction" (-1) f.Sim.f_li;
  Sim.step sim 0 (* line 2 *);
  Alcotest.(check int) "li after line 2" 2 f.Sim.f_li;
  Sim.step sim 0 (* line 3 *);
  Alcotest.(check int) "li after line 3" 3 f.Sim.f_li

let test_invalid_transitions_rejected () =
  let sim = Sim.create ~nprocs:1 () in
  let inst, _ = toy_obj sim in
  Sim.set_script sim 0 [ (inst, "SET", Sim.Args [| Nvm.Value.Int 1 |]) ];
  Alcotest.check_raises "recover when not crashed"
    (Invalid_argument "Sim.recover: p0 has not crashed") (fun () -> Sim.recover sim 0);
  Sim.crash sim 0;
  Alcotest.check_raises "step while crashed" (Invalid_argument "Sim.step: p0 is not ready")
    (fun () -> Sim.step sim 0);
  Alcotest.check_raises "crash while crashed" (Invalid_argument "Sim.crash: p0 is not ready")
    (fun () -> Sim.crash sim 0)

let test_clone_isolation () =
  let sim = Sim.create ~nprocs:1 () in
  let inst, cell = toy_obj sim in
  Sim.set_script sim 0 [ (inst, "SET", Sim.Args [| Nvm.Value.Int 3 |]) ];
  Sim.step sim 0;
  let c = Sim.clone sim in
  let out = Schedule.run c (Schedule.round_robin ()) in
  Alcotest.(check bool) "clone completed" true (out = Schedule.Completed);
  Alcotest.check value "clone wrote" (Int 3) (Nvm.Memory.peek (Sim.mem c) cell);
  Alcotest.check value "original untouched" Null (Nvm.Memory.peek (Sim.mem sim) cell);
  Alcotest.(check int) "original history unchanged" 1 (History.length (Sim.history sim))

let test_determinism_same_seed () =
  let run () =
    let scen = Workload.Scenarios.counter ~nprocs:2 ~ops:3 () in
    let sim, r = Workload.Trial.run ~seed:5 ~crash_prob:0.05 scen in
    (r, Fmt.str "%a" History.pp (Sim.history sim))
  in
  let r1, h1 = run () in
  let r2, h2 = run () in
  Alcotest.(check bool) "same outcome" true (r1 = r2);
  Alcotest.(check string) "same history" h1 h2

let test_round_robin_completes_multi () =
  let sim = Sim.create ~nprocs:3 () in
  let inst, _ = toy_obj sim in
  for p = 0 to 2 do
    Sim.set_script sim p [ (inst, "SET", Sim.Args [| Nvm.Value.Int p |]) ]
  done;
  let out = Schedule.run sim (Schedule.round_robin ()) in
  Alcotest.(check bool) "all done" true (out = Schedule.Completed && Sim.all_done sim)

let test_compute_args () =
  let sim = Sim.create ~nprocs:1 () in
  let inst, cell = toy_obj sim in
  Sim.set_script sim 0
    [
      (inst, "SET", Sim.Args [| Nvm.Value.Int 7 |]);
      (inst, "SET", Sim.Compute (fun mem ->
           [| Nvm.Value.Int (Nvm.Value.as_int (Nvm.Memory.peek mem cell) + 1) |]));
    ];
  let out = Schedule.run sim (Schedule.round_robin ()) in
  Alcotest.(check bool) "completed" true (out = Schedule.Completed);
  Alcotest.check value "computed from current state" (Int 8) (Nvm.Memory.peek (Sim.mem sim) cell)

let test_next_is_local () =
  let sim = Sim.create ~nprocs:1 () in
  let inst, _ = toy_obj sim in
  Sim.set_script sim 0 [ (inst, "SET", Sim.Args [| Nvm.Value.Int 1 |]) ];
  Alcotest.(check bool) "script start is local (INV)" true (Sim.next_is_local sim 0);
  Sim.step sim 0 (* INV; next = Assign *);
  Alcotest.(check bool) "assign is local" true (Sim.next_is_local sim 0);
  Sim.step sim 0 (* next = Write *);
  Alcotest.(check bool) "write is shared" false (Sim.next_is_local sim 0);
  Sim.step sim 0 (* next = Ret *);
  Alcotest.(check bool) "ret is local" true (Sim.next_is_local sim 0);
  Alcotest.(check bool) "ret detected" true (Sim.next_is_ret sim 0)

let test_stuck_on_fallthrough () =
  (* a body that ends without Ret is an object bug: the machine reports it *)
  let sim = Sim.create ~nprocs:1 () in
  let open Program in
  let body = make ~name:"BAD" [ (2, Assign ("x", int 1)) ] in
  let recover = make ~name:"BAD.RECOVER" [ (10, Resume 2) ] in
  let inst =
    Objdef.register (Sim.registry sim) ~otype:"toy" ~name:"bad"
      [ ("BAD", { Objdef.op_name = "BAD"; body; recover }) ]
  in
  Sim.set_script sim 0 [ (inst, "BAD", Sim.Args [||]) ];
  Sim.step sim 0 (* INV *);
  Sim.step sim 0 (* the Assign *);
  Alcotest.check_raises "fallthrough detected"
    (Sim.Stuck "p0: pc 1 out of range in BAD") (fun () -> Sim.step sim 0)

let test_scrambled_locals_are_junk_not_crash () =
  (* after a crash, even never-bound locals read as junk: an algorithm
     that uses them misbehaves but the machine itself keeps going *)
  let sim = Sim.create ~seed:3 ~nprocs:1 () in
  let open Program in
  let body =
    make ~name:"USES_JUNK"
      [ (2, Assign ("x", int 1)); (3, Ret (local "never_set_after_crash")) ]
  in
  let recover = make ~name:"R" [ (10, Resume 3) ] in
  let inst =
    Objdef.register (Sim.registry sim) ~otype:"toy" ~name:"j"
      [ ("USES_JUNK", { Objdef.op_name = "USES_JUNK"; body; recover }) ]
  in
  Sim.set_script sim 0 [ (inst, "USES_JUNK", Sim.Args [||]) ];
  Sim.step sim 0;
  Sim.step sim 0 (* Assign; about to Ret an unbound local *);
  Sim.crash sim 0;
  Sim.recover sim 0;
  Sim.step sim 0 (* Resume 3 *);
  Sim.step sim 0 (* Ret of a junk value: must not raise *);
  Alcotest.(check int) "op completed with junk" 1 (List.length (Sim.results sim 0))

let test_explore_immediate_recovery_smaller () =
  let build () =
    let sim = Sim.create ~nprocs:2 () in
    let inst = Objects.Rw_obj.make sim ~name:"R" in
    for p = 0 to 1 do
      Sim.set_script sim p [ (inst, "WRITE", Sim.Args [| Nvm.Value.Int p |]) ]
    done;
    sim
  in
  let run cfg = (Explore.dfs ~cfg ~on_terminal:(fun _ -> ()) (build ())).Explore.terminals in
  let adversarial =
    run { Explore.default_config with max_steps = 80; max_crashes = 1; crash_procs = [ 0 ] }
  in
  let immediate =
    run
      {
        Explore.default_config with
        max_steps = 80;
        max_crashes = 1;
        crash_procs = [ 0 ];
        immediate_recovery = true;
      }
  in
  Alcotest.(check bool) "immediate recovery explores fewer executions" true
    (immediate < adversarial);
  Alcotest.(check bool) "both nontrivial" true (immediate > 0)

let test_explore_crash_budget_zero () =
  let build () =
    let sim = Sim.create ~nprocs:1 () in
    let inst = Objects.Rw_obj.make sim ~name:"R" in
    Sim.set_script sim 0 [ (inst, "WRITE", Sim.Args [| Nvm.Value.Int 1 |]) ];
    sim
  in
  let cfg =
    { Explore.default_config with max_steps = 40; max_crashes = 0; crash_procs = [ 0 ] }
  in
  let saw_crash = ref false in
  let _ =
    Explore.dfs ~cfg
      ~on_terminal:(fun sim ->
        if Machine.Sim.crash_count sim 0 > 0 then saw_crash := true)
      (build ())
  in
  Alcotest.(check bool) "no crashes with zero budget" false !saw_crash

(* random schedule policy sanity: crash budget respected *)
let test_random_policy_budget () =
  let scen = Workload.Scenarios.register ~nprocs:2 ~ops:4 () in
  let sim, r = Workload.Trial.run ~seed:3 ~crash_prob:0.9 ~max_crashes:2 scen in
  ignore sim;
  Alcotest.(check bool) "crash budget respected" true (r.Workload.Trial.crashes <= 2)

let suite =
  [
    Alcotest.test_case "env basics" `Quick test_env_basics;
    Alcotest.test_case "env scramble" `Quick test_env_scramble;
    Alcotest.test_case "env copy isolation" `Quick test_env_copy_isolated;
    Alcotest.test_case "junk copy" `Quick test_junk_copy;
    Alcotest.test_case "program lines" `Quick test_program_lines;
    Alcotest.test_case "step runs an operation" `Quick test_step_runs_op;
    Alcotest.test_case "crash scrambles, recovery completes" `Quick test_crash_scrambles_and_recovers;
    Alcotest.test_case "idle crash" `Quick test_crash_with_no_pending_op;
    Alcotest.test_case "LI tracks last started line" `Quick test_li_tracks_last_started_line;
    Alcotest.test_case "invalid transitions rejected" `Quick test_invalid_transitions_rejected;
    Alcotest.test_case "clone isolation" `Quick test_clone_isolation;
    Alcotest.test_case "determinism with same seed" `Quick test_determinism_same_seed;
    Alcotest.test_case "round robin completes" `Quick test_round_robin_completes_multi;
    Alcotest.test_case "computed script args" `Quick test_compute_args;
    Alcotest.test_case "next_is_local classification" `Quick test_next_is_local;
    Alcotest.test_case "random policy crash budget" `Quick test_random_policy_budget;
    Alcotest.test_case "stuck on fallthrough" `Quick test_stuck_on_fallthrough;
    Alcotest.test_case "junk locals don't kill the machine" `Quick test_scrambled_locals_are_junk_not_crash;
    Alcotest.test_case "explore: immediate recovery smaller" `Quick test_explore_immediate_recovery_smaller;
    Alcotest.test_case "explore: zero crash budget" `Quick test_explore_crash_budget_zero;
  ]
