(* Unit and property tests for the NVRAM substrate: values and memory. *)

open Nvm

let value = Alcotest.testable Value.pp Value.equal

let test_value_equal () =
  Alcotest.(check bool) "null = null" true (Value.equal Null Null);
  Alcotest.(check bool) "int 3 = int 3" true (Value.equal (Int 3) (Int 3));
  Alcotest.(check bool) "int <> pid" false (Value.equal (Int 3) (Pid 3));
  Alcotest.(check bool)
    "pairs compare structurally" true
    (Value.equal (Value.pair (Int 1) (Bool true)) (Value.pair (Int 1) (Bool true)));
  Alcotest.(check bool)
    "pairs differ in snd" false
    (Value.equal (Value.pair (Int 1) (Bool true)) (Value.pair (Int 1) (Bool false)))

let test_value_accessors () =
  Alcotest.(check int) "as_int" 7 (Value.as_int (Int 7));
  Alcotest.(check bool) "as_bool" true (Value.as_bool (Bool true));
  Alcotest.(check int) "as_pid" 2 (Value.as_pid (Pid 2));
  Alcotest.check value "fst" (Int 1) (Value.fst (Value.pair (Int 1) (Int 2)));
  Alcotest.check value "snd" (Int 2) (Value.snd (Value.pair (Int 1) (Int 2)));
  Alcotest.check_raises "as_int on bool" (Value.Type_error ("int", Bool true)) (fun () ->
      ignore (Value.as_int (Bool true)))

let test_value_compare_consistent () =
  let vs =
    [ Value.Null; Bool false; Bool true; Int (-1); Int 5; Pid 0; Pid 3; Str "x";
      Value.pair (Int 1) Null; Value.pair Null (Pid 2) ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.(check bool)
            (Fmt.str "compare/equal agree on %a %a" Value.pp a Value.pp b)
            (Value.equal a b)
            (Value.compare a b = 0);
          if Value.equal a b then
            Alcotest.(check int)
              (Fmt.str "hash agrees on %a" Value.pp a)
              (Value.hash a) (Value.hash b))
        vs)
    vs

let test_alloc_read_write () =
  let m = Memory.create () in
  let a = Memory.alloc ~name:"x" m (Value.Int 0) in
  let b = Memory.alloc m Value.Null in
  Alcotest.check value "initial" (Int 0) (Memory.read m a);
  Memory.write m a (Int 42);
  Alcotest.check value "after write" (Int 42) (Memory.read m a);
  Alcotest.check value "other cell untouched" Null (Memory.read m b);
  Alcotest.(check string) "named" "x" (Memory.name m a);
  Alcotest.(check int) "size" 2 (Memory.size m)

let test_alloc_array () =
  let m = Memory.create () in
  let base = Memory.alloc_array ~name:"A" m 4 (Value.Int 7) in
  for i = 0 to 3 do
    Alcotest.check value (Printf.sprintf "A[%d]" i) (Int 7) (Memory.read m (base + i))
  done;
  Memory.write m (base + 2) (Int 9);
  Alcotest.check value "A[2] updated" (Int 9) (Memory.read m (base + 2));
  Alcotest.check value "A[1] untouched" (Int 7) (Memory.read m (base + 1));
  Alcotest.(check string) "array cell name" "A[3]" (Memory.name m (base + 3))

let test_cas_prim () =
  let m = Memory.create () in
  let a = Memory.alloc m (Value.Int 1) in
  Alcotest.(check bool) "cas succeeds" true (Memory.cas m a ~expected:(Int 1) ~desired:(Int 2));
  Alcotest.check value "cas wrote" (Int 2) (Memory.read m a);
  Alcotest.(check bool) "cas fails" false (Memory.cas m a ~expected:(Int 1) ~desired:(Int 3));
  Alcotest.check value "failed cas left value" (Int 2) (Memory.read m a)

let test_tas_prim () =
  let m = Memory.create () in
  let a = Memory.alloc m (Value.Int 0) in
  Alcotest.check value "first tas returns 0" (Int 0) (Memory.tas m a);
  Alcotest.check value "cell now 1" (Int 1) (Memory.read m a);
  Alcotest.check value "second tas returns 1" (Int 1) (Memory.tas m a)

let test_faa_prim () =
  let m = Memory.create () in
  let a = Memory.alloc m (Value.Int 10) in
  Alcotest.check value "faa returns prev" (Int 10) (Memory.fetch_and_add m a 5);
  Alcotest.check value "cell updated" (Int 15) (Memory.read m a)

let test_stats () =
  let m = Memory.create () in
  let a = Memory.alloc m (Value.Int 0) in
  ignore (Memory.read m a);
  ignore (Memory.read m a);
  Memory.write m a (Int 1);
  ignore (Memory.cas m a ~expected:(Int 1) ~desired:(Int 2));
  ignore (Memory.tas m a);
  let s = Memory.stats m in
  Alcotest.(check int) "reads" 2 s.Memory.reads;
  Alcotest.(check int) "writes" 1 s.Memory.writes;
  Alcotest.(check int) "rmws" 2 s.Memory.rmws;
  Memory.reset_stats m;
  Alcotest.(check int) "reads reset" 0 (Memory.stats m).Memory.reads

let test_peek_not_counted () =
  let m = Memory.create () in
  let a = Memory.alloc m (Value.Int 0) in
  ignore (Memory.peek m a);
  Alcotest.(check int) "peek doesn't count" 0 (Memory.stats m).Memory.reads

let test_snapshot_restore () =
  let m = Memory.create () in
  let a = Memory.alloc m (Value.Int 1) in
  let b = Memory.alloc m (Value.Str "s") in
  let snap = Memory.snapshot m in
  Memory.write m a (Int 99);
  Memory.write m b Null;
  Memory.restore m snap;
  Alcotest.check value "a restored" (Int 1) (Memory.read m a);
  Alcotest.check value "b restored" (Str "s") (Memory.read m b)

let test_copy_independent () =
  let m = Memory.create () in
  let a = Memory.alloc ~name:"a" m (Value.Int 1) in
  let m2 = Memory.copy m in
  Memory.write m a (Int 2);
  Alcotest.check value "copy unaffected" (Int 1) (Memory.read m2 a);
  Alcotest.(check string) "copy keeps names" "a" (Memory.name m2 a)

let test_out_of_bounds () =
  let m = Memory.create () in
  let _ = Memory.alloc m Value.Null in
  Alcotest.check_raises "read oob"
    (Invalid_argument "Memory: address 5 out of bounds (size 1)") (fun () ->
      ignore (Memory.read m 5))

let test_growth () =
  let m = Memory.create () in
  (* force several internal growths *)
  let addrs = List.init 500 (fun i -> Memory.alloc m (Value.Int i)) in
  List.iteri
    (fun i a -> Alcotest.check value (Printf.sprintf "cell %d" i) (Int i) (Memory.read m a))
    addrs

let test_junk_stream_deterministic () =
  let j1 = Value.junk_stream 7 in
  let j2 = Value.junk_stream 7 in
  for i = 0 to 99 do
    Alcotest.check value (Printf.sprintf "junk %d" i) (j1 ()) (j2 ())
  done

(* property: value compare is a total order (antisymmetric, transitive on a sample) *)
let value_gen =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      if n <= 0 then
        oneof
          [ return Value.Null;
            map (fun b -> Value.Bool b) bool;
            map (fun i -> Value.Int i) (int_range (-100) 100);
            map (fun i -> Value.Pid i) (int_range 0 7) ]
      else
        frequency
          [ (3, self 0); (1, map2 Value.pair (self (n / 2)) (self (n / 2))) ])

let prop_compare_antisym =
  QCheck2.Test.make ~name:"Value.compare antisymmetric" ~count:500
    (QCheck2.Gen.pair value_gen value_gen) (fun (a, b) ->
      let c1 = Value.compare a b and c2 = Value.compare b a in
      (c1 = 0 && c2 = 0) || (c1 > 0 && c2 < 0) || (c1 < 0 && c2 > 0))

let prop_equal_hash =
  QCheck2.Test.make ~name:"Value.equal implies equal hash" ~count:500 value_gen (fun v ->
      Value.hash v = Value.hash v && Value.equal v v)

let suite =
  [
    Alcotest.test_case "value equality" `Quick test_value_equal;
    Alcotest.test_case "value accessors" `Quick test_value_accessors;
    Alcotest.test_case "compare/equal/hash consistent" `Quick test_value_compare_consistent;
    Alcotest.test_case "alloc/read/write" `Quick test_alloc_read_write;
    Alcotest.test_case "array allocation" `Quick test_alloc_array;
    Alcotest.test_case "cas primitive" `Quick test_cas_prim;
    Alcotest.test_case "tas primitive" `Quick test_tas_prim;
    Alcotest.test_case "faa primitive" `Quick test_faa_prim;
    Alcotest.test_case "access statistics" `Quick test_stats;
    Alcotest.test_case "peek not counted" `Quick test_peek_not_counted;
    Alcotest.test_case "snapshot/restore" `Quick test_snapshot_restore;
    Alcotest.test_case "copy independence" `Quick test_copy_independent;
    Alcotest.test_case "out of bounds" `Quick test_out_of_bounds;
    Alcotest.test_case "heap growth" `Quick test_growth;
    Alcotest.test_case "junk stream deterministic" `Quick test_junk_stream_deterministic;
    QCheck_alcotest.to_alcotest prop_compare_antisym;
    QCheck_alcotest.to_alcotest prop_equal_hash;
  ]
