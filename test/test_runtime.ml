(* Tests for the real-multicore (Domains + Atomic) implementations:
   single-process recovery drills at every crash position, and genuinely
   parallel executions checking the algorithms' postconditions. *)

open Runtime

(* {2 Recoverable register drills} *)

(* run WRITE with a crash at position k, recover, and check the final value
   and that recovery is idempotent under a second crash *)
let test_rrw_recovery_all_positions () =
  (* WRITE traverses 4 crash points (before each of lines 2-5) *)
  for k = 0 to 3 do
    let r = Rrw.create ~nprocs:2 (0, 0) in
    let cp = Crash.create () in
    Crash.arm cp k;
    (try
       Rrw.write ~cp r ~pid:0 (0, 1);
       Alcotest.failf "crash point %d did not fire" k
     with Crash.Crashed -> ());
    Crash.disarm cp;
    Rrw.write_recover r ~pid:0 (0, 1);
    Alcotest.(check (pair int int))
      (Printf.sprintf "value after crash at %d" k)
      (0, 1) (Rrw.read r)
  done

let test_rrw_recovery_crash_inside_recovery () =
  let r = Rrw.create ~nprocs:2 (0, 0) in
  let cp = Crash.create () in
  Crash.arm cp 2;
  (try Rrw.write ~cp r ~pid:0 (0, 5) with Crash.Crashed -> ());
  (* crash again inside the recovery function *)
  Crash.arm cp 1;
  (try Rrw.write_recover ~cp r ~pid:0 (0, 5) with Crash.Crashed -> ());
  Crash.disarm cp;
  Rrw.write_recover r ~pid:0 (0, 5);
  Alcotest.(check (pair int int)) "value after nested crash" (0, 5) (Rrw.read r)

(* recovery must not clobber a later write by another process *)
let test_rrw_no_reexecution_after_overwrite () =
  let r = Rrw.create ~nprocs:2 (0, 0) in
  let cp = Crash.create () in
  (* crash right after the write of line 4 (crash point 3 = before S_p
     update of line 5) *)
  Crash.arm cp 3;
  (try Rrw.write ~cp r ~pid:0 (0, 1) with Crash.Crashed -> ());
  Crash.disarm cp;
  (* another process overwrites *)
  Rrw.write r ~pid:1 (1, 9);
  Rrw.write_recover r ~pid:0 (0, 1);
  Alcotest.(check (pair int int)) "later write preserved" (1, 9) (Rrw.read r)

(* {2 Recoverable CAS drills} *)

let test_rcas_recovery_after_success () =
  let c = Rcas.create ~nprocs:2 0 in
  let cp = Crash.create () in
  (* crash after the successful primitive cas: points are read(0),
     [help(1)], cas — with id = null there is no help write, so cas is
     point 1 and the crash must come after it: arm past the end *)
  Crash.arm cp 5;
  let ok = Rcas.cas ~cp c ~pid:0 ~old:0 ~new_:1 in
  Alcotest.(check bool) "cas succeeded" true ok;
  Crash.disarm cp;
  (* pretend the response was lost; recovery must still report success *)
  Alcotest.(check bool) "recovery reports success" true
    (Rcas.cas_recover c ~pid:0 ~old:0 ~new_:1)

let test_rcas_recovery_after_overwrite_with_helping () =
  let c = Rcas.create ~nprocs:2 0 in
  Alcotest.(check bool) "p0 cas" true (Rcas.cas c ~pid:0 ~old:0 ~new_:1);
  (* p1's cas must first help p0 by writing into the matrix *)
  Alcotest.(check bool) "p1 cas" true (Rcas.cas c ~pid:1 ~old:1 ~new_:2);
  (* now C no longer holds p0's pair, but the helping entry does *)
  Alcotest.(check bool) "p0 recovery still reports success" true
    (Rcas.cas_recover c ~pid:0 ~old:0 ~new_:1)

let test_rcas_recovery_before_effect_reexecutes () =
  let c = Rcas.create ~nprocs:2 0 in
  let cp = Crash.create () in
  Crash.arm cp 0 (* crash at the read of line 2 *);
  (try ignore (Rcas.cas ~cp c ~pid:0 ~old:0 ~new_:1) with Crash.Crashed -> ());
  Crash.disarm cp;
  Alcotest.(check bool) "re-execution succeeds" true (Rcas.cas_recover c ~pid:0 ~old:0 ~new_:1);
  Alcotest.(check int) "value installed" 1 (Rcas.read c)

let test_rcas_failed_cas_reports_false () =
  let c = Rcas.create ~nprocs:2 0 in
  Alcotest.(check bool) "p1 installs 5" true (Rcas.cas c ~pid:1 ~old:0 ~new_:5);
  Alcotest.(check bool) "p0 cas from stale old fails" false (Rcas.cas c ~pid:0 ~old:0 ~new_:1);
  Alcotest.(check bool) "p0 recovery also reports failure... by re-executing" false
    (Rcas.cas_recover c ~pid:0 ~old:0 ~new_:1)

(* {2 Recoverable TAS drills} *)

let test_rtas_solo () =
  let t = Rtas.create ~nprocs:2 in
  Alcotest.(check int) "solo wins" 0 (Rtas.test_and_set t ~pid:0);
  Alcotest.(check int) "second process loses" 1 (Rtas.test_and_set t ~pid:1)

let test_rtas_crash_positions_solo () =
  (* crash a solo T&S at each position; recovery must return 0 (the lone
     process must win) *)
  for k = 0 to 8 do
    let t = Rtas.create ~nprocs:1 in
    let cp = Crash.create () in
    Crash.arm cp k;
    match Rtas.test_and_set ~cp t ~pid:0 with
    | ret -> Alcotest.(check int) (Printf.sprintf "uncrashed at %d" k) 0 ret
    | exception Crash.Crashed ->
      Crash.disarm cp;
      Alcotest.(check int) (Printf.sprintf "recovery after crash at %d" k) 0
        (Rtas.recover t ~pid:0)
  done

let test_rtas_strict_response_persisted () =
  let t = Rtas.create ~nprocs:2 in
  let r0 = Rtas.test_and_set t ~pid:0 in
  Alcotest.(check int) "Res_p persisted" r0 (Rtas.response t ~pid:0)

(* {2 Parallel executions on real domains} *)

let test_parallel_tas_unique_winner () =
  let domains = min 4 (Par.max_domains ()) in
  let t = Rtas.create ~nprocs:domains in
  let wins = Atomic.make 0 in
  let r =
    Par.run ~domains ~iters:1 (fun ~pid ~i ->
        ignore i;
        if Rtas.test_and_set t ~pid = 0 then Atomic.incr wins)
  in
  ignore r;
  Alcotest.(check int) "exactly one winner across domains" 1 (Atomic.get wins)

let test_parallel_counter_conservation () =
  let domains = min 4 (Par.max_domains ()) in
  let iters = 2_000 in
  let c = Rcounter.create ~nprocs:domains in
  let _ = Par.run ~domains ~iters (fun ~pid ~i -> ignore i; Rcounter.inc c ~pid) in
  Alcotest.(check int) "all increments counted" (domains * iters) (Rcounter.read c ~pid:0)

let test_parallel_recoverable_register_last_write_wins () =
  let domains = min 4 (Par.max_domains ()) in
  let iters = 1_000 in
  let r = Rrw.create ~nprocs:domains (-1, -1) in
  let _ =
    Par.run ~domains ~iters (fun ~pid ~i -> Rrw.write r ~pid (pid, i))
  in
  let p, i = Rrw.read r in
  Alcotest.(check bool) "final value is some process's last write" true
    (p >= 0 && p < domains && i = iters - 1)

let test_parallel_rcas_successful_cas_count () =
  (* each domain CASes from the value it just read to a distinct tagged
     value; successful CASes form a chain, so the number of successes
     equals the chain length, which we count via a side counter *)
  let domains = min 4 (Par.max_domains ()) in
  let c = Rcas.create ~nprocs:domains 0 in
  let wins = Atomic.make 0 in
  let _ =
    Par.run ~domains ~iters:500 (fun ~pid ~i ->
        let old = Rcas.read c in
        let new_ = 1 + (pid * 1_000_000) + i in
        if old <> new_ && Rcas.cas c ~pid ~old ~new_ then Atomic.incr wins)
  in
  let final = Rcas.read c in
  Alcotest.(check bool) "some CAS succeeded and final value is a tagged write" true
    (Atomic.get wins > 0 && final > 0)

(* {2 Parallel crash torture: operations abort at random shared-access
   boundaries on real domains and recover via the wrapper that plays the
   paper's "system"} *)

let test_parallel_counter_crash_torture () =
  let domains = min 4 (Par.max_domains ()) in
  let iters = 2_000 in
  let c = Rcounter.create ~nprocs:domains in
  let stats = Array.init domains (fun _ -> Torture.stats_zero ()) in
  let _ =
    Par.run ~domains ~iters (fun ~pid ~i ->
        ignore i;
        let rng = Torture.rng_create ((pid * 7919) + i + 1) in
        Torture.rcounter_inc ~rng ~crash_prob:0.2 ~stats:stats.(pid) c ~pid)
  in
  let total_crashes = Array.fold_left (fun a s -> a + s.Torture.crashes) 0 stats in
  Alcotest.(check int) "conservation under parallel crashes" (domains * iters)
    (Rcounter.read c ~pid:0);
  Alcotest.(check bool) "crashes actually injected" true (total_crashes > 100)

let test_parallel_tas_crash_torture () =
  (* repeat whole elections; each must produce exactly one winner despite
     crashes in both the operation and its recovery *)
  for round = 1 to 25 do
    let domains = min 4 (Par.max_domains ()) in
    let t = Rtas.create ~nprocs:domains in
    let wins = Atomic.make 0 in
    let stats = Array.init domains (fun _ -> Torture.stats_zero ()) in
    let _ =
      Par.run ~domains ~iters:1 (fun ~pid ~i ->
          ignore i;
          let rng = Torture.rng_create ((round * 131) + pid + 1) in
          if Torture.rtas ~rng ~crash_prob:0.5 ~stats:stats.(pid) t ~pid = 0 then
            Atomic.incr wins)
    in
    Alcotest.(check int)
      (Printf.sprintf "round %d: exactly one winner" round)
      1 (Atomic.get wins)
  done

let test_parallel_rrw_crash_torture () =
  let domains = min 4 (Par.max_domains ()) in
  let iters = 2_000 in
  let r = Rrw.create ~nprocs:domains (-1, -1) in
  let stats = Array.init domains (fun _ -> Torture.stats_zero ()) in
  let _ =
    Par.run ~domains ~iters (fun ~pid ~i ->
        let rng = Torture.rng_create ((pid * 31) + i + 1) in
        Torture.rrw_write ~rng ~crash_prob:0.2 ~stats:stats.(pid) r ~pid (pid, i))
  in
  let p, i = Rrw.read r in
  Alcotest.(check bool) "final value is a real write" true
    (p >= 0 && p < domains && i >= 0 && i < iters)

let suite =
  [
    Alcotest.test_case "rrw: recovery at all crash positions" `Quick test_rrw_recovery_all_positions;
    Alcotest.test_case "rrw: crash inside recovery" `Quick test_rrw_recovery_crash_inside_recovery;
    Alcotest.test_case "rrw: no re-execution after overwrite" `Quick test_rrw_no_reexecution_after_overwrite;
    Alcotest.test_case "rcas: recovery after success" `Quick test_rcas_recovery_after_success;
    Alcotest.test_case "rcas: helping matrix" `Quick test_rcas_recovery_after_overwrite_with_helping;
    Alcotest.test_case "rcas: re-execution before effect" `Quick test_rcas_recovery_before_effect_reexecutes;
    Alcotest.test_case "rcas: failed cas" `Quick test_rcas_failed_cas_reports_false;
    Alcotest.test_case "rtas: solo" `Quick test_rtas_solo;
    Alcotest.test_case "rtas: crash positions solo" `Quick test_rtas_crash_positions_solo;
    Alcotest.test_case "rtas: strict response" `Quick test_rtas_strict_response_persisted;
    Alcotest.test_case "parallel tas: unique winner" `Slow test_parallel_tas_unique_winner;
    Alcotest.test_case "parallel counter: conservation" `Slow test_parallel_counter_conservation;
    Alcotest.test_case "parallel register: last write wins" `Slow test_parallel_recoverable_register_last_write_wins;
    Alcotest.test_case "parallel cas: successful chain" `Slow test_parallel_rcas_successful_cas_count;
    Alcotest.test_case "parallel counter: crash torture" `Slow test_parallel_counter_crash_torture;
    Alcotest.test_case "parallel tas: crash torture" `Slow test_parallel_tas_crash_torture;
    Alcotest.test_case "parallel rrw: crash torture" `Slow test_parallel_rrw_crash_torture;
  ]
