(* Tests for the three-level nested histogram (histogram -> counter ->
   register): recovery cascades through all three levels. *)

open Machine

let value = Alcotest.testable Nvm.Value.pp Nvm.Value.equal

let nrl_ok sim =
  match Workload.Check.nrl_violation sim with
  | None -> ()
  | Some reason ->
    Fmt.epr "history:@.%a@." History.pp (Sim.history sim);
    Alcotest.failf "NRL violation: %s" reason

let run_rr sim =
  match Schedule.run sim (Schedule.round_robin ()) with
  | Schedule.Completed -> ()
  | _ -> Alcotest.fail "execution did not complete"

let test_crash_free () =
  let sim = Sim.create ~nprocs:2 () in
  let inst = Objects.Histogram_obj.make ~k:3 sim ~name:"H" in
  Sim.set_script sim 0
    [
      (inst, "RECORD", Sim.Args [| Nvm.Value.Int 0 |]);
      (inst, "RECORD", Sim.Args [| Nvm.Value.Int 1 |]);
      (inst, "TOTAL", Sim.Args [||]);
    ];
  Sim.set_script sim 1
    [
      (inst, "RECORD", Sim.Args [| Nvm.Value.Int 1 |]);
      (inst, "BUCKET", Sim.Args [| Nvm.Value.Int 1 |]);
    ];
  run_rr sim;
  nrl_ok sim;
  (match List.assoc_opt "TOTAL" (Sim.results sim 0) with
  | Some v -> Alcotest.check value "total" (Int 3) v
  | None -> Alcotest.fail "TOTAL missing");
  Alcotest.(check int) "strict responses persisted" 0
    (List.length (Workload.Check.strictness_violations sim))

(* crash at every prefix of a three-level RECORD; the count must end up
   exactly 1 *)
let test_record_crash_every_position () =
  for k = 1 to 14 do
    let sim = Sim.create ~seed:(800 + k) ~nprocs:1 () in
    let inst = Objects.Histogram_obj.make ~k:2 sim ~name:"H" in
    Sim.set_script sim 0
      [
        (inst, "RECORD", Sim.Args [| Nvm.Value.Int 1 |]);
        (inst, "BUCKET", Sim.Args [| Nvm.Value.Int 1 |]);
      ];
    (try
       for _ = 1 to k do
         Sim.step sim 0
       done;
       if (Sim.proc sim 0).Sim.stack <> [] then begin
         Sim.crash sim 0;
         Sim.recover sim 0
       end
     with Invalid_argument _ -> ());
    run_rr sim;
    nrl_ok sim;
    match List.assoc_opt "BUCKET" (Sim.results sim 0) with
    | Some v -> Alcotest.check value (Printf.sprintf "count after crash at %d" k) (Int 1) v
    | None -> Alcotest.fail "BUCKET missing"
  done

(* deep-stack crash: force the crash while the *register* level is
   pending (stack depth 3), so all three recovery functions run *)
let test_deep_cascade () =
  let sim = Sim.create ~seed:91 ~nprocs:1 () in
  let inst = Objects.Histogram_obj.make ~k:2 sim ~name:"H" in
  Sim.set_script sim 0
    [
      (inst, "RECORD", Sim.Args [| Nvm.Value.Int 0 |]);
      (inst, "BUCKET", Sim.Args [| Nvm.Value.Int 0 |]);
    ];
  let depth () = List.length (Sim.proc sim 0).Sim.stack in
  (* run until stack depth 3 (histogram -> INC -> register op) *)
  while depth () < 3 do
    Sim.step sim 0
  done;
  Sim.crash sim 0;
  Sim.recover sim 0;
  run_rr sim;
  nrl_ok sim;
  match List.assoc_opt "BUCKET" (Sim.results sim 0) with
  | Some v -> Alcotest.check value "count exactly 1 after deep crash" (Int 1) v
  | None -> Alcotest.fail "BUCKET missing"

let test_torture () =
  let scen = Workload.Scenarios.histogram ~nprocs:3 ~ops:4 () in
  let s = Workload.Trial.batch ~crash_prob:0.05 ~max_crashes:6 ~trials:100 scen in
  Alcotest.(check int) "all pass NRL" s.Workload.Trial.trials s.Workload.Trial.passed;
  Alcotest.(check bool) "crashes exercised" true (s.Workload.Trial.total_crashes > 40)

(* conservation across random crashes *)
let prop_conservation =
  QCheck2.Test.make ~name:"histogram: total = completed RECORDs" ~count:30
    (QCheck2.Gen.int_range 1 100_000) (fun seed ->
      let nprocs = 2 in
      let records = 3 in
      let sim = Sim.create ~seed ~nprocs () in
      let inst = Objects.Histogram_obj.make ~k:2 sim ~name:"H" in
      for p = 0 to nprocs - 1 do
        Sim.set_script sim p
          (List.init records (fun i ->
               (inst, "RECORD", Sim.Args [| Nvm.Value.Int (i mod 2) |])))
      done;
      let policy = Schedule.random ~crash_prob:0.08 ~max_crashes:5 ~seed:(seed * 11 + 7) () in
      match Schedule.run ~max_steps:200_000 sim policy with
      | Schedule.Completed -> (
        Sim.append_script sim 0 [ (inst, "TOTAL", Sim.Args [||]) ];
        match Schedule.run sim (Schedule.round_robin ()) with
        | Schedule.Completed ->
          List.assoc_opt "TOTAL" (Sim.results sim 0)
          = Some (Nvm.Value.Int (nprocs * records))
        | _ -> false)
      | _ -> QCheck2.assume_fail ())

let suite =
  [
    Alcotest.test_case "histogram: crash-free" `Quick test_crash_free;
    Alcotest.test_case "histogram: crash at every position" `Quick test_record_crash_every_position;
    Alcotest.test_case "histogram: deep three-level cascade" `Quick test_deep_cascade;
    Alcotest.test_case "histogram: randomized torture" `Slow test_torture;
    QCheck_alcotest.to_alcotest prop_conservation;
  ]
