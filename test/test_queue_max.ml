(* Tests for the queue and max-register extensions built on the generic
   retry loop. *)

open Machine

let value = Alcotest.testable Nvm.Value.pp Nvm.Value.equal

let nrl_ok sim =
  match Workload.Check.nrl_violation sim with
  | None -> ()
  | Some reason ->
    Fmt.epr "history:@.%a@." History.pp (Sim.history sim);
    Alcotest.failf "NRL violation: %s" reason

let run_rr sim =
  match Schedule.run sim (Schedule.round_robin ()) with
  | Schedule.Completed -> ()
  | _ -> Alcotest.fail "execution did not complete"

(* {2 Queue} *)

let test_fifo () =
  let sim = Sim.create ~nprocs:1 () in
  let inst = Objects.Queue_obj.make sim ~name:"Q" in
  Sim.set_script sim 0
    [
      (inst, "DEQ", Sim.Args [||]);
      (inst, "ENQ", Sim.Args [| Nvm.Value.Int 1 |]);
      (inst, "ENQ", Sim.Args [| Nvm.Value.Int 2 |]);
      (inst, "FRONT", Sim.Args [||]);
      (inst, "DEQ", Sim.Args [||]);
      (inst, "DEQ", Sim.Args [||]);
      (inst, "DEQ", Sim.Args [||]);
    ];
  run_rr sim;
  nrl_ok sim;
  Alcotest.(check (list value)) "FIFO order"
    [ Objects.Queue_obj.empty; Nvm.Value.ack; Nvm.Value.ack; Int 1; Int 1; Int 2;
      Objects.Queue_obj.empty ]
    (List.map snd (Sim.results sim 0))

let test_queue_crash_every_position () =
  for k = 1 to 50 do
    let sim = Sim.create ~seed:(1100 + k) ~nprocs:1 () in
    let inst = Objects.Queue_obj.make sim ~name:"Q" in
    Sim.set_script sim 0
      [
        (inst, "ENQ", Sim.Args [| Nvm.Value.Int 7 |]);
        (inst, "ENQ", Sim.Args [| Nvm.Value.Int 8 |]);
        (inst, "DEQ", Sim.Args [||]);
        (inst, "DEQ", Sim.Args [||]);
      ];
    (try
       for _ = 1 to k do
         Sim.step sim 0
       done;
       if (Sim.proc sim 0).Sim.stack <> [] then begin
         Sim.crash sim 0;
         Sim.recover sim 0
       end
     with Invalid_argument _ -> ());
    run_rr sim;
    nrl_ok sim;
    match List.map snd (Sim.results sim 0) with
    | [ _; _; d1; d2 ] ->
      Alcotest.check value (Printf.sprintf "first deq (crash@%d)" k) (Int 7) d1;
      Alcotest.check value (Printf.sprintf "second deq (crash@%d)" k) (Int 8) d2
    | _ -> Alcotest.fail "unexpected results"
  done

let test_queue_torture () =
  let scen = Workload.Scenarios.queue ~nprocs:3 ~ops:5 () in
  let s = Workload.Trial.batch ~crash_prob:0.06 ~max_crashes:6 ~trials:100 scen in
  Alcotest.(check int) "all pass NRL" s.Workload.Trial.trials s.Workload.Trial.passed

(* {2 Max register} *)

let test_max_monotone () =
  let sim = Sim.create ~nprocs:1 () in
  let inst = Objects.Max_register_obj.make sim ~name:"M" in
  Sim.set_script sim 0
    [
      (inst, "WRITE_MAX", Sim.Args [| Nvm.Value.Int 5 |]);
      (inst, "WRITE_MAX", Sim.Args [| Nvm.Value.Int 3 |]);
      (inst, "READ", Sim.Args [||]);
      (inst, "WRITE_MAX", Sim.Args [| Nvm.Value.Int 9 |]);
      (inst, "READ", Sim.Args [||]);
    ];
  run_rr sim;
  nrl_ok sim;
  match List.filter_map (fun (op, v) -> if op = "READ" then Some v else None)
          (Sim.results sim 0)
  with
  | [ r1; r2 ] ->
    Alcotest.check value "dominated write ignored" (Int 5) r1;
    Alcotest.check value "larger write applied" (Int 9) r2
  | _ -> Alcotest.fail "unexpected results"

let test_max_crash_every_position () =
  for k = 1 to 40 do
    let sim = Sim.create ~seed:(1200 + k) ~nprocs:1 () in
    let inst = Objects.Max_register_obj.make sim ~name:"M" in
    Sim.set_script sim 0
      [
        (inst, "WRITE_MAX", Sim.Args [| Nvm.Value.Int 5 |]);
        (inst, "WRITE_MAX", Sim.Args [| Nvm.Value.Int 3 |]);
        (inst, "READ", Sim.Args [||]);
      ];
    (try
       for _ = 1 to k do
         Sim.step sim 0
       done;
       if (Sim.proc sim 0).Sim.stack <> [] then begin
         Sim.crash sim 0;
         Sim.recover sim 0
       end
     with Invalid_argument _ -> ());
    run_rr sim;
    nrl_ok sim;
    match List.assoc_opt "READ" (Sim.results sim 0) with
    | Some v -> Alcotest.check value (Printf.sprintf "max after crash at %d" k) (Int 5) v
    | None -> Alcotest.fail "READ missing"
  done

let test_max_torture () =
  let scen = Workload.Scenarios.max_register ~nprocs:3 ~ops:5 () in
  let s = Workload.Trial.batch ~crash_prob:0.06 ~max_crashes:6 ~trials:100 scen in
  Alcotest.(check int) "all pass NRL" s.Workload.Trial.trials s.Workload.Trial.passed

(* property: the final max equals the maximum of completed WRITE_MAX args *)
let prop_max_is_max =
  QCheck2.Test.make ~name:"max-register: final value = max of writes" ~count:30
    (QCheck2.Gen.int_range 1 100_000) (fun seed ->
      let nprocs = 2 in
      let sim = Sim.create ~seed ~nprocs () in
      let inst = Objects.Max_register_obj.make sim ~name:"M" in
      let expected = ref 0 in
      for p = 0 to nprocs - 1 do
        Sim.set_script sim p
          (List.init 3 (fun k ->
               let v = 1 + ((seed + (p * 37) + (k * 11)) mod 90) in
               expected := max !expected v;
               (inst, "WRITE_MAX", Sim.Args [| Nvm.Value.Int v |])))
      done;
      let policy = Schedule.random ~crash_prob:0.08 ~max_crashes:5 ~seed:(seed + 77) () in
      match Schedule.run ~max_steps:200_000 sim policy with
      | Schedule.Completed -> (
        Sim.append_script sim 0 [ (inst, "READ", Sim.Args [||]) ];
        match Schedule.run sim (Schedule.round_robin ()) with
        | Schedule.Completed ->
          List.assoc_opt "READ" (Sim.results sim 0) = Some (Nvm.Value.Int !expected)
        | _ -> false)
      | _ -> QCheck2.assume_fail ())

let suite =
  [
    Alcotest.test_case "queue: FIFO" `Quick test_fifo;
    Alcotest.test_case "queue: crash at every position" `Quick test_queue_crash_every_position;
    Alcotest.test_case "queue: randomized torture" `Slow test_queue_torture;
    Alcotest.test_case "max: monotone semantics" `Quick test_max_monotone;
    Alcotest.test_case "max: crash at every position" `Quick test_max_crash_every_position;
    Alcotest.test_case "max: randomized torture" `Slow test_max_torture;
    QCheck_alcotest.to_alcotest prop_max_is_max;
  ]
